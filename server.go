package repro

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// This file is the multi-tenant join service: one shared serving fleet
// (the same servers/shards/replicas a Session would own privately),
// multiplexing many concurrent join sessions from different tenants
// over its metered links. Three mechanisms arbitrate the sharing:
//
//   - admission control: each tenant runs at most MaxConcurrent joins
//     at once (further Runs queue), and a tenant whose Eq. (1) spend
//     has crossed its ByteQuota is rejected with a typed error
//     (ErrOverQuota / *netsim.QuotaError) before any bytes move;
//   - probe scheduling: every link's batcher queues submissions in
//     per-tenant lanes, and a shared client.Scheduler decides which
//     lane's probes enter each envelope — strict priority tiers,
//     deficit-round-robin byte fairness within a tier, and a starvation
//     bound so even the lowest tier keeps moving;
//   - metered attribution: every frame a tenant causes is attributed to
//     it on every link it crosses (netsim tenant columns), so per-tenant
//     bills are exact — the tenants' slices sum to each link's total —
//     and quotas are enforced against real metered bytes, retries and
//     envelope shares included.
//
// Single-tenant Sessions never enter tenant mode and stay bit-identical
// to the pre-multi-tenant goldens.

// ErrOverQuota matches (via errors.Is) the typed *netsim.QuotaError a
// Run returns when its tenant has exhausted its byte quota.
var ErrOverQuota = netsim.ErrOverQuota

// ErrUnknownTenant is returned by Run for tenant names the server was
// not configured with.
var ErrUnknownTenant = errors.New("repro: unknown tenant")

// QuotaError is the typed quota-rejection error (netsim.QuotaError):
// use errors.As to read the tenant, its spend, and its quota.
type QuotaError = netsim.QuotaError

// TenantID names one tenant of a Server.
type TenantID = netsim.TenantID

// TenantConfig is one tenant's service class.
type TenantConfig struct {
	// Priority is the strict scheduling tier: a tenant of higher
	// Priority gets its probes into every link envelope before any
	// lower-priority tenant is considered. Default 0.
	Priority int
	// Weight is the deficit-round-robin weight among same-priority
	// tenants: under backlog, byte shares within a tier converge to the
	// weight ratio. Values below 1 mean 1.
	Weight int
	// ByteQuota, when positive, bounds the tenant's fleet-wide Eq. (1)
	// wire-byte spend. A Run (or an individual probe) admitted after the
	// quota is crossed is rejected with a *QuotaError; the run that
	// crosses the boundary completes its in-flight frames, so a tenant
	// may finish marginally over budget but never starts new work there.
	ByteQuota int64
	// MaxConcurrent bounds the tenant's simultaneously executing joins;
	// further Runs block until a slot frees (or their context ends).
	// 0 means unlimited.
	MaxConcurrent int
}

// ServerConfig configures NewServer.
type ServerConfig struct {
	// Fleet describes the shared serving fleet, exactly as a Session
	// would be configured: datasets, link, shards, replicas, batching,
	// retries. BatchSize defaults to 8 when unset — per-tenant lanes
	// need a batcher as their injection point; set BatchSize to 1
	// explicitly to serve without multiplexing (quotas and attribution
	// still apply, scheduling degenerates to arrival order).
	Fleet SessionConfig
	// Tenants declares the service classes. Tenants must be declared
	// here to run; probes of undeclared tenants are rejected.
	Tenants map[TenantID]TenantConfig
}

// Server is a long-lived multi-tenant join service over one shared
// fleet. Create it once, then call Run (or Session) from any number of
// goroutines; Close shuts the fleet down.
type Server struct {
	cfg    ServerConfig
	fleet  *fleet
	ledger *netsim.Ledger
	sched  *client.Scheduler

	mu      sync.Mutex
	tenants map[TenantID]*tenantState
	closed  bool
}

// tenantState is one tenant's serving state: its environment over the
// shared fleet, the concurrency gate, and the prepare latch.
type tenantState struct {
	cfg   TenantConfig
	env   *core.Env
	slots chan struct{} // nil = unlimited

	prepMu   sync.Mutex
	prepared bool
}

// NewServer assembles the shared fleet and one environment per tenant.
func NewServer(cfg ServerConfig) (*Server, error) {
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("repro: server needs at least one tenant")
	}
	if cfg.Fleet.BatchSize == 0 {
		cfg.Fleet.BatchSize = 8
	}
	ledger := netsim.NewLedger()
	sched := client.NewScheduler(ledger)
	for id, tc := range cfg.Tenants {
		sched.SetPolicy(id, client.TenantPolicy{Priority: tc.Priority, Weight: tc.Weight})
		if tc.ByteQuota > 0 {
			ledger.SetQuota(id, tc.ByteQuota)
		}
	}
	f, err := buildFleet(cfg.Fleet, client.WithLedger(ledger), client.WithScheduler(sched))
	if err != nil {
		return nil, err
	}
	srv := &Server{
		cfg: cfg, fleet: f, ledger: ledger, sched: sched,
		tenants: make(map[TenantID]*tenantState, len(cfg.Tenants)),
	}
	for id, tc := range cfg.Tenants {
		env := f.newEnv(cfg.Fleet,
			&tenantProbe{p: f.remR, id: id},
			&tenantProbe{p: f.remS, id: id})
		ts := &tenantState{cfg: tc, env: env}
		if tc.MaxConcurrent > 0 {
			ts.slots = make(chan struct{}, tc.MaxConcurrent)
		}
		srv.tenants[id] = ts
	}
	return srv, nil
}

// Tenants returns the configured tenant names, sorted.
func (s *Server) Tenants() []TenantID {
	ids := make([]TenantID, 0, len(s.tenants))
	for id := range s.tenants {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Ledger exposes the fleet's quota ledger (spend inspection, runtime
// quota adjustment).
func (s *Server) Ledger() *netsim.Ledger { return s.ledger }

// Scheduler exposes the fleet's probe scheduler (runtime policy
// adjustment).
func (s *Server) Scheduler() *client.Scheduler { return s.sched }

// Spent returns the tenant's accumulated fleet-wide wire-byte spend.
func (s *Server) Spent(id TenantID) int64 { return s.ledger.Spent(id) }

// Usage re-exports the per-link traffic snapshot type.
type Usage = netsim.Usage

// TenantUsage returns the tenant's attributed traffic on the two
// relations (summed over all links of each; zero for unknown tenants).
func (s *Server) TenantUsage(id TenantID) (r, u Usage) {
	s.mu.Lock()
	st, ok := s.tenants[id]
	s.mu.Unlock()
	if !ok {
		return Usage{}, Usage{}
	}
	return st.env.Usage()
}

// tenant looks a tenant up, failing unknown names with ErrUnknownTenant.
func (s *Server) tenant(id TenantID) (*tenantState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("repro: server closed")
	}
	st, ok := s.tenants[id]
	if !ok {
		return nil, fmt.Errorf("repro: tenant %q: %w", string(id), ErrUnknownTenant)
	}
	return st, nil
}

// Run executes one join on behalf of tenant id. It blocks while the
// tenant is at MaxConcurrent, rejects with a *QuotaError once the
// tenant's byte quota is exhausted, and otherwise behaves exactly like
// Session.Run — every probe it issues travels the shared links under
// the server's scheduling policy and is attributed to the tenant.
func (s *Server) Run(ctx context.Context, id TenantID, alg Algorithm, spec Spec) (*Result, error) {
	if alg == nil {
		return nil, fmt.Errorf("repro: nil algorithm")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	st, err := s.tenant(id)
	if err != nil {
		return nil, err
	}
	// Admission: quota first (cheap, typed), then the concurrency gate.
	if qerr := s.ledger.Check(id); qerr != nil {
		return nil, fmt.Errorf("repro: tenant %q: %w", string(id), qerr)
	}
	if st.slots != nil {
		select {
		case st.slots <- struct{}{}:
			defer func() { <-st.slots }()
		case <-ctx.Done():
			return nil, fmt.Errorf("repro: tenant %q: %w", string(id), ctx.Err())
		}
	}
	if s.cfg.Fleet.RunTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Fleet.RunTimeout)
		defer cancel()
	}
	// First run of a tenant prepares its environment exactly once;
	// concurrent first runs serialize here (prepare mutates the env).
	st.prepMu.Lock()
	if !st.prepared {
		if err := st.env.Prepare(ctx); err != nil {
			st.prepMu.Unlock()
			return nil, err
		}
		st.prepared = true
	}
	st.prepMu.Unlock()
	return alg.Run(ctx, st.env, spec)
}

// Env exposes a tenant's environment for advanced use (custom
// algorithms, meter inspection). All its probes carry the tenant's
// identity.
func (s *Server) Env(id TenantID) (*Env, error) {
	st, err := s.tenant(id)
	if err != nil {
		return nil, err
	}
	return st.env, nil
}

// Close shuts the shared fleet down. In-flight runs fail as their
// transports close.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	return s.fleet.close()
}

// --- tenant probe ----------------------------------------------------------

// tenantProbe wraps a shared-fleet endpoint with one tenant's identity:
// every call travels under a context stamped with the tenant (so the
// meters attribute and the ledger bills it), Usage reports the tenant's
// attributed slice (so Stats of a run cover the tenant's own traffic,
// not the fleet's), and Close is a no-op (the fleet outlives any one
// tenant's environment).
type tenantProbe struct {
	p  core.Probe
	id netsim.TenantID
}

func (t *tenantProbe) tag(ctx context.Context) context.Context {
	return netsim.WithTenant(ctx, t.id)
}

func (t *tenantProbe) Name() string { return t.p.Name() }

func (t *tenantProbe) Info(ctx context.Context) (wire.Info, error) {
	return t.p.Info(t.tag(ctx))
}

func (t *tenantProbe) Count(ctx context.Context, w geom.Rect) (int, error) {
	return t.p.Count(t.tag(ctx), w)
}

func (t *tenantProbe) Window(ctx context.Context, w geom.Rect) ([]geom.Object, error) {
	return t.p.Window(t.tag(ctx), w)
}

func (t *tenantProbe) AvgArea(ctx context.Context, w geom.Rect) (float64, error) {
	return t.p.AvgArea(t.tag(ctx), w)
}

func (t *tenantProbe) Range(ctx context.Context, p geom.Point, eps float64) ([]geom.Object, error) {
	return t.p.Range(t.tag(ctx), p, eps)
}

func (t *tenantProbe) RangeCount(ctx context.Context, p geom.Point, eps float64) (int, error) {
	return t.p.RangeCount(t.tag(ctx), p, eps)
}

func (t *tenantProbe) BucketRange(ctx context.Context, pts []geom.Point, eps float64) ([][]geom.Object, error) {
	return t.p.BucketRange(t.tag(ctx), pts, eps)
}

func (t *tenantProbe) BucketRangeCount(ctx context.Context, pts []geom.Point, eps float64) ([]int64, error) {
	return t.p.BucketRangeCount(t.tag(ctx), pts, eps)
}

func (t *tenantProbe) LevelMBRs(ctx context.Context, level int) ([]geom.Rect, error) {
	return t.p.LevelMBRs(t.tag(ctx), level)
}

func (t *tenantProbe) MBRMatch(ctx context.Context, rects []geom.Rect, eps float64) ([]geom.Object, error) {
	return t.p.MBRMatch(t.tag(ctx), rects, eps)
}

func (t *tenantProbe) UploadJoin(ctx context.Context, objs []geom.Object, eps float64) ([]geom.Pair, error) {
	return t.p.UploadJoin(t.tag(ctx), objs, eps)
}

func (t *tenantProbe) GoBatch(ctx context.Context, reqs [][]byte) []*client.Call {
	return t.p.GoBatch(t.tag(ctx), reqs)
}

func (t *tenantProbe) Flush() { t.p.Flush() }

func (t *tenantProbe) Usage() netsim.Usage {
	if tu, ok := t.p.(interface {
		TenantUsage(netsim.TenantID) netsim.Usage
	}); ok {
		return tu.TenantUsage(t.id)
	}
	return t.p.Usage()
}

func (t *tenantProbe) PricePerByte() float64 { return t.p.PricePerByte() }

func (t *tenantProbe) Retries() int64 { return t.p.Retries() }

// Close is a no-op: the shared fleet is owned by the Server, not any
// one tenant's environment.
func (t *tenantProbe) Close() error { return nil }
