package repro

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

// goldenBatchedBytes pins the exact metered wire bytes of the same fixed
// workload as goldenBytes, but with probe multiplexing at BatchSize 4
// and 16 (sequential execution, where the batched framing is
// deterministic: probe groups are chunked by the outer list and flushed
// explicitly, never by the linger timer). Together with the unchanged
// goldenBytes table this pins both halves of the batching contract:
// BatchSize 1 is bit-identical to the pre-batching protocol, and the
// batched framing itself never drifts silently. SemiJoin is absent: its
// three round trips are dependent, so batching leaves them untouched
// (TestBatchedSemiJoinMatchesOracle covers it).
var goldenBatchedBytes = map[string][2]int{
	"grid/distance/batch16":         {3300, 13088},
	"grid/distance/batch4":          {3570, 13178},
	"grid/iceberg/batch16":          {3300, 13088},
	"grid/iceberg/batch4":           {3570, 13178},
	"grid/intersection/batch16":     {3120, 12948},
	"grid/intersection/batch4":      {3390, 13038},
	"mobiJoin/distance/batch16":     {4150, 4206},
	"mobiJoin/distance/batch4":      {4150, 4386},
	"mobiJoin/iceberg/batch16":      {4150, 4258},
	"mobiJoin/iceberg/batch4":       {4150, 4438},
	"mobiJoin/intersection/batch16": {4056, 4134},
	"mobiJoin/intersection/batch4":  {4056, 4296},
	"naive/distance/batch16":        {14028, 14088},
	"naive/distance/batch4":         {14028, 14088},
	"naive/iceberg/batch16":         {14028, 14088},
	"naive/iceberg/batch4":          {14028, 14088},
	"naive/intersection/batch16":    {13948, 13948},
	"naive/intersection/batch4":     {13948, 13948},
	"srJoin/distance/batch16":       {2518, 2474},
	"srJoin/distance/batch4":        {2518, 2474},
	"srJoin/iceberg/batch16":        {2518, 2482},
	"srJoin/iceberg/batch4":         {2518, 2482},
	"srJoin/intersection/batch16":   {1572, 1552},
	"srJoin/intersection/batch4":    {1572, 1552},
	"upJoin/distance/batch16":       {2244, 3384},
	"upJoin/distance/batch4":        {2514, 3384},
	"upJoin/iceberg/batch16":        {2244, 3384},
	"upJoin/iceberg/batch4":         {2514, 3384},
	"upJoin/intersection/batch16":   {3440, 2984},
	"upJoin/intersection/batch4":    {3440, 2984},
}

func TestGoldenBatchedByteAccounting(t *testing.T) {
	robjs := GaussianClusters(600, 4, 250, World, 101)
	sobjs := GaussianClusters(600, 4, 250, World, 102)

	specs := map[string]Spec{
		"intersection": {Kind: Intersection},
		"distance":     {Kind: Distance, Eps: 75},
		"iceberg":      {Kind: IcebergSemi, Eps: 75, MinMatches: 2},
	}
	algs := map[string]Algorithm{
		"naive":    Naive{},
		"grid":     Grid{},
		"mobiJoin": MobiJoin{},
		"upJoin":   UpJoin{},
		"srJoin":   SrJoin{},
	}

	var missing []string
	for algName := range algs {
		for specName := range specs {
			for _, batch := range []int{4, 16} {
				name := fmt.Sprintf("%s/%s/batch%d", algName, specName, batch)
				t.Run(name, func(t *testing.T) {
					parts := strings.Split(name, "/")
					var bs int
					fmt.Sscanf(parts[2], "batch%d", &bs)
					sess, err := NewSession(SessionConfig{
						R: robjs, S: sobjs, Buffer: 500, Window: World,
						Seed: 7, PublishIndexes: true, BatchSize: bs,
					})
					if err != nil {
						t.Fatal(err)
					}
					defer sess.Close()
					res, err := sess.Run(algs[parts[0]], specs[parts[1]])
					if err != nil {
						t.Fatal(err)
					}
					got := [2]int{res.Stats.R.WireBytes, res.Stats.S.WireBytes}
					want, ok := goldenBatchedBytes[name]
					if !ok {
						missing = append(missing, fmt.Sprintf("%q: {%d, %d},", name, got[0], got[1]))
						t.Errorf("no golden for %s: got {%d, %d}", name, got[0], got[1])
						return
					}
					if got != want {
						t.Errorf("%s: metered bytes {R, S} = {%d, %d}, golden {%d, %d}",
							name, got[0], got[1], want[0], want[1])
					}
				})
			}
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		t.Logf("golden entries:\n%s", strings.Join(missing, "\n"))
	}
}
