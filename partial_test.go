package repro

import (
	"testing"
)

// TestAllowPartialIsFreeWithoutFaults pins the degraded-mode opt-in's
// zero-cost guarantee: on a fault-free fleet, AllowPartial changes
// nothing on the wire — byte accounting, query counts, and the result
// set are identical to a strict run, and the Completeness report says
// "complete". Only when shards actually die does the mode change
// behavior.
func TestAllowPartialIsFreeWithoutFaults(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  SessionConfig
	}{
		{"unsharded", SessionConfig{}},
		{"sharded", SessionConfig{Shards: 2}},
		{"replicated", SessionConfig{Shards: 2, Replicas: 2}},
		{"replicated-breakers", SessionConfig{Shards: 2, Replicas: 2, Breakers: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func(partial bool) *Result {
				cfg := tc.cfg
				cfg.R = GaussianClusters(400, 4, 250, World, 5)
				cfg.S = GaussianClusters(400, 4, 250, World, 6)
				cfg.Buffer = 400
				cfg.Seed = 9
				cfg.AllowPartial = partial
				sess := newTestSession(t, cfg)
				res, err := sess.Run(UpJoin{}, Spec{Kind: Distance, Eps: 75})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			strict := run(false)
			partial := run(true)
			if strict.Stats.TotalBytes() != partial.Stats.TotalBytes() ||
				strict.Stats.TotalQueries() != partial.Stats.TotalQueries() {
				t.Fatalf("AllowPartial changed fault-free accounting: %d bytes/%d queries vs %d/%d",
					strict.Stats.TotalBytes(), strict.Stats.TotalQueries(),
					partial.Stats.TotalBytes(), partial.Stats.TotalQueries())
			}
			if len(strict.Pairs) != len(partial.Pairs) {
				t.Fatalf("AllowPartial changed fault-free results: %d vs %d pairs",
					len(strict.Pairs), len(partial.Pairs))
			}
			for i := range strict.Pairs {
				if strict.Pairs[i] != partial.Pairs[i] {
					t.Fatalf("pair %d differs: %v vs %v", i, strict.Pairs[i], partial.Pairs[i])
				}
			}
			if strict.Completeness != nil {
				t.Fatalf("strict run carries a Completeness report: %v", strict.Completeness)
			}
			if partial.Completeness == nil || !partial.Completeness.Complete() {
				t.Fatalf("fault-free partial run not reported complete: %v", partial.Completeness)
			}
		})
	}
}

// TestAllowPartialQueryBudget pins that a session-level QueryBudget does
// not change fault-free results either — the budget only bites when
// retries, hedges, or failovers would otherwise stack past it.
func TestAllowPartialQueryBudget(t *testing.T) {
	run := func(cfg SessionConfig) *Result {
		cfg.R = GaussianClusters(300, 4, 250, World, 7)
		cfg.S = GaussianClusters(300, 4, 250, World, 8)
		cfg.Buffer = 400
		cfg.Seed = 3
		sess := newTestSession(t, cfg)
		res, err := sess.Run(UpJoin{}, Spec{Kind: Distance, Eps: 100})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(SessionConfig{Shards: 2, Replicas: 2})
	budgeted := run(SessionConfig{Shards: 2, Replicas: 2, QueryBudget: 1e9})
	if plain.Stats.TotalBytes() != budgeted.Stats.TotalBytes() {
		t.Fatalf("QueryBudget changed fault-free accounting: %d vs %d",
			plain.Stats.TotalBytes(), budgeted.Stats.TotalBytes())
	}
	if len(plain.Pairs) != len(budgeted.Pairs) {
		t.Fatalf("QueryBudget changed fault-free results")
	}
}
