// Command spatialjoin runs a spatial join between two live spatialserve
// servers from the "mobile device", printing the result size and the
// byte bill. It is the CLI face of the library's core loop.
//
// Usage:
//
//	spatialjoin -r 127.0.0.1:7001 -s 127.0.0.1:7002 \
//	    -alg upjoin -kind distance -eps 150 -buffer 800 [-bucket] \
//	    [-window minx,miny,maxx,maxy] [-m 10] [-pairs] [-parallel 4] [-batch 16]
//
// A relation served by several shard servers (spatialserve -shard i/N) is
// addressed with a comma-separated list instead of -r / -s:
//
//	spatialjoin -shards-r 127.0.0.1:7001,127.0.0.1:7002 \
//	    -shards-s 127.0.0.1:7003,127.0.0.1:7004 -alg upjoin -kind distance -eps 150
//
// The device then scatter–gathers every query across the shard links
// (COUNTs sum, window replies merge) and the join result is identical to
// the unsharded run. With -tree-fanout N (N >= 2) the shard endpoints
// stack under a hierarchical aggregation tree: interior nodes partially
// merge replies so the root link carries O(N) frames per query instead
// of O(shards) — same results, per-level byte breakdown printed when the
// tree is deeper than one level.
//
// -breakers arms circuit breakers on a+b replica groups, -budget bounds
// each logical query end-to-end, and -allow-partial turns a run with
// unreachable shards into a degraded success: the result is a lower
// bound, a completeness report is printed, and the process exits 3.
//
// With -connect the command is a thin client of a spatialjoind daemon
// instead of a device: the join request (same -alg/-kind/-eps/-m/-pairs
// flags) is submitted over the daemon's JSON-lines protocol on behalf of
// -tenant, runs on the daemon's shared fleet under its admission and
// scheduling policy, and the reply prints the tenant's attributed byte
// bill. A tenant whose fleet-wide byte quota is exhausted is rejected
// with the daemon's typed quota error and exit code 4.
//
// Exit codes: 0 — exact result; 1 — failure; 2 — usage error;
// 3 — partial result (only with -allow-partial; the printed completeness
// report lists the unreachable shards); 4 — tenant over byte quota
// (only with -connect).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/geom"
	"repro/internal/health"
	"repro/internal/netsim"
	"repro/internal/shard"
)

func parseWindow(s string) (geom.Rect, error) {
	if s == "" {
		return geom.Rect{}, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return geom.Rect{}, fmt.Errorf("window needs 4 comma-separated numbers")
	}
	var v [4]float64
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return geom.Rect{}, err
		}
		v[i] = f
	}
	return geom.R(v[0], v[1], v[2], v[3]), nil
}

// dialProbe connects one relation's endpoint: a single server (addr), or
// a scatter–gather router over a comma-separated shard address list.
// Each shard entry may itself be a `+`-separated replica group
// ("a+b,c+d" = two shards, two replicas each): the replicas are wired
// behind a shard.ReplicaSet that load-balances, fails over, and — with
// hedgePct > 0 — hedges straggling probes against a sibling replica.
// With reg non-nil, replica groups get circuit breakers; budget bounds
// each logical probe end-to-end; solo forces even a single server behind
// a one-shard router so degraded partial-result mode has an absorbing
// scatter layer to record gaps in. treeFanout >= 2 stacks the shard
// endpoints under a hierarchical aggregation tree on the device: groups
// of that many consecutive shards sit behind interior Aggregator nodes
// that partially merge replies, so the root link carries O(fanout)
// frames per query instead of O(shards).
func dialProbe(name, addr, shardList string, conns, treeFanout int, price, hedgePct float64,
	reg *health.Registry, budget time.Duration, solo bool, copts []client.Option) (core.Probe, error) {
	dial := func(label, a string) (*client.Remote, error) {
		tr, err := netsim.DialTCPPool(a, conns)
		if err != nil {
			return nil, err
		}
		rem, err := client.NewRemote(label, tr, netsim.DefaultLink(), price, copts...)
		if err != nil {
			tr.Close()
			return nil, err
		}
		return rem, nil
	}
	if shardList == "" {
		rem, err := dial(name+"("+addr+")", addr)
		if err != nil || !solo {
			return rem, err
		}
		router, err := shard.NewRouter(name, []shard.Endpoint{rem}, shard.WithParallelism(conns))
		if err != nil {
			rem.Close()
			return nil, err
		}
		return router, nil
	}
	groups := strings.Split(shardList, ",")
	eps := make([]shard.Endpoint, 0, len(groups))
	closeAll := func() {
		for _, e := range eps {
			e.Close()
		}
	}
	for i, group := range groups {
		sname := fmt.Sprintf("%s%d/%d", name, i+1, len(groups))
		replicas := strings.Split(group, "+")
		rems := make([]*client.Remote, 0, len(replicas))
		for j, a := range replicas {
			a = strings.TrimSpace(a)
			if a == "" {
				closeAll()
				return nil, fmt.Errorf("empty address in -shards-%s", strings.ToLower(name))
			}
			label := fmt.Sprintf("%s(%s)", sname, a)
			if len(replicas) > 1 {
				label = fmt.Sprintf("%s-r%d(%s)", sname, j+1, a)
			}
			rem, err := dial(label, a)
			if err != nil {
				for _, r := range rems {
					r.Close()
				}
				closeAll()
				return nil, err
			}
			rems = append(rems, rem)
		}
		if len(rems) == 1 {
			eps = append(eps, rems[0])
			continue
		}
		rset, err := shard.NewReplicaSet(sname, rems, shard.ReplicaConfig{
			HedgePct: hedgePct,
			Seed:     int64(i),
			Health:   reg,
			Budget:   budget,
		})
		if err != nil {
			for _, r := range rems {
				r.Close()
			}
			closeAll()
			return nil, err
		}
		eps = append(eps, rset)
	}
	if treeFanout >= 2 {
		return shard.NewTree(name, eps, treeFanout, netsim.DefaultLink(), shard.WithParallelism(conns))
	}
	return shard.NewRouter(name, eps, shard.WithParallelism(conns))
}

func algorithm(name string) (core.Algorithm, error) {
	switch strings.ToLower(name) {
	case "naive":
		return core.Naive{}, nil
	case "grid":
		return core.Grid{}, nil
	case "mobijoin", "mobi":
		return core.MobiJoin{}, nil
	case "upjoin", "up":
		return core.UpJoin{}, nil
	case "srjoin", "sr":
		return core.SrJoin{}, nil
	case "semijoin", "semi":
		return core.SemiJoin{}, nil
	case "auto":
		return core.Auto{}, nil
	}
	return nil, fmt.Errorf("unknown algorithm %q", name)
}

func main() {
	var (
		rAddr    = flag.String("r", "", "address of the R server (required unless -shards-r)")
		sAddr    = flag.String("s", "", "address of the S server (required unless -shards-s)")
		rShards  = flag.String("shards-r", "", "comma-separated shard server addresses for R (overrides -r; a+b lists replicas of one shard)")
		sShards  = flag.String("shards-s", "", "comma-separated shard server addresses for S (overrides -s; a+b lists replicas of one shard)")
		alg      = flag.String("alg", "upjoin", "naive, grid, mobijoin, upjoin, srjoin, semijoin, auto")
		algAlias = flag.String("algo", "", "alias for -alg")
		explain  = flag.Bool("explain", false, "print the planner's phase-by-phase report (candidate table, estimated vs metered bytes, re-plans); richest with -alg auto")
		kind     = flag.String("kind", "distance", "intersection, distance, iceberg")
		eps      = flag.Float64("eps", 150, "distance threshold")
		m        = flag.Int("m", 10, "iceberg minimum matches")
		buffer   = flag.Int("buffer", 800, "device buffer in objects")
		bucket   = flag.Bool("bucket", false, "use bucket query submission")
		priceR   = flag.Float64("price-r", 1, "per-byte tariff for R")
		priceS   = flag.Float64("price-s", 1, "per-byte tariff for S")
		window   = flag.String("window", "", "query window minx,miny,maxx,maxy (default: whole space)")
		pairs    = flag.Bool("pairs", false, "print the result pairs/objects")
		parallel = flag.Int("parallel", 1, "max in-flight requests (1 = the paper's sequential device)")
		batch    = flag.Int("batch", 1, "multiplex up to this many probes per frame (1 = one frame per probe)")
		timeout  = flag.Duration("timeout", 0, "overall join deadline (0 = none)")
		tryTO    = flag.Duration("try-timeout", 0, "per-query attempt deadline (0 = none)")
		retries  = flag.Int("retries", 4, "max attempts per query over the real, lossy link (1 = fail fast)")
		hedgePct = flag.Float64("hedge-pct", 0, "hedge a probe past this latency percentile of its replica set (0 = off; needs a+b replica groups)")
		budget   = flag.Duration("budget", 0, "per-query deadline budget shared by retries, hedges and failovers (0 = none)")
		breakers = flag.Bool("breakers", false, "arm circuit breakers on a+b replica groups: skip open-circuit replicas before probing, recover via background INFO probes")
		fanout   = flag.Int("tree-fanout", 0, "stack shard endpoints under a hierarchical aggregation tree with this fanout per interior node (0 = flat scatter; needs -shards-r/-shards-s)")
		partial  = flag.Bool("allow-partial", false, "return a lower-bound result when shards stay unreachable, with a completeness report and exit code 3")
		connect  = flag.String("connect", "", "submit the join to a spatialjoind daemon at this address instead of acting as the device (needs -tenant)")
		tenant   = flag.String("tenant", "", "tenant to run as on the daemon (with -connect)")
	)
	flag.Parse()
	if *connect != "" {
		runDaemonClient(*connect, *tenant, *alg, *algAlias, *kind, *eps, *m, *pairs)
		return
	}
	if (*rAddr == "" && *rShards == "") || (*sAddr == "" && *sShards == "") {
		fmt.Fprintln(os.Stderr, "spatialjoin: -r/-shards-r and -s/-shards-s are required")
		os.Exit(2)
	}

	// ^C / SIGTERM cancels the join mid-flight instead of leaving the
	// servers with half-written frames.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	algName := *alg
	if *algAlias != "" {
		algName = *algAlias
	}
	a, err := algorithm(algName)
	fatal(err)
	win, err := parseWindow(*window)
	fatal(err)

	var spec core.Spec
	switch strings.ToLower(*kind) {
	case "intersection":
		spec = core.Spec{Kind: core.Intersection}
	case "distance":
		spec = core.Spec{Kind: core.Distance, Eps: *eps}
	case "iceberg":
		spec = core.Spec{Kind: core.IcebergSemi, Eps: *eps, MinMatches: *m}
	default:
		fatal(fmt.Errorf("unknown join kind %q", *kind))
	}

	conns := *parallel
	if conns < 1 {
		conns = 1
	}
	policy := client.RetryPolicy{
		MaxAttempts:   *retries,
		Backoff:       5 * time.Millisecond,
		PerTryTimeout: *tryTO,
		Budget:        *budget,
	}
	copts := []client.Option{client.WithRetry(policy)}
	if *batch > 1 {
		copts = append(copts, client.WithBatch(client.BatchConfig{MaxBatch: *batch}))
	}
	var reg *health.Registry
	if *breakers {
		reg = health.NewRegistry(health.Config{})
	}
	remR, err := dialProbe("R", *rAddr, *rShards, conns, *fanout, *priceR, *hedgePct, reg, *budget, *partial, copts)
	fatal(err)
	defer remR.Close()
	remS, err := dialProbe("S", *sAddr, *sShards, conns, *fanout, *priceS, *hedgePct, reg, *budget, *partial, copts)
	fatal(err)
	defer remS.Close()
	if reg != nil {
		// Deferred after the remotes so it runs first: the recovery
		// probers must stop before the transports they probe close.
		defer reg.Close()
	}

	model := costmodel.Default()
	model.Bucket = *bucket
	model.PriceR, model.PriceS = *priceR, *priceS
	env := core.NewEnv(remR, remS, client.Device{BufferObjects: *buffer}, model, win)
	env.Parallelism = *parallel
	env.BatchSize = *batch
	env.AllowPartial = *partial

	// -explain with a fixed algorithm streams the phase events live (the
	// fixed algorithms build no Explain of their own); Auto's structured
	// report prints after the run either way.
	var phaseMu sync.Mutex
	if *explain {
		env.Observer = func(e core.PhaseEvent) {
			phaseMu.Lock()
			defer phaseMu.Unlock()
			fmt.Printf("phase %-8s %-28s nr=%-6d ns=%-6d est=%-10.0f wire=%-10d %s\n",
				e.Kind, e.Name, e.NR, e.NS, e.EstBytes, e.WireBytes, e.Note)
		}
	}

	res, err := a.Run(ctx, env, spec)
	fatal(err)

	if *explain && res.Explain != nil {
		res.Explain.Render(os.Stdout)
	}

	st := res.Stats
	if spec.Kind == core.IcebergSemi {
		fmt.Printf("%s: %d qualifying R objects\n", a.Name(), len(res.Objects))
		if *pairs {
			for _, o := range res.Objects {
				fmt.Printf("  %d %v\n", o.ID, o.MBR)
			}
		}
	} else {
		fmt.Printf("%s: %d pairs\n", a.Name(), len(res.Pairs))
		if *pairs {
			for _, p := range res.Pairs {
				fmt.Printf("  (%d, %d)\n", p.RID, p.SID)
			}
		}
	}
	fmt.Printf("wire bytes: %d total (R %d / S %d), %d queries (%d aggregate)\n",
		st.TotalBytes(), st.R.WireBytes, st.S.WireBytes, st.TotalQueries(), st.AggQueries)
	fmt.Printf("decisions: HBSJ %d, NLSJ %d, repartitions %d, pruned %d\n",
		st.HBSJ, st.NLSJ, st.Repartitions, st.Pruned)
	fmt.Printf("monetary cost: %.6f\n", st.MoneyCost)
	if len(st.RLevels) > 1 || len(st.SLevels) > 1 {
		fmt.Printf("tree levels (wire bytes, root first): R %v / S %v\n", st.RLevels, st.SLevels)
	}
	if n := remR.Retries() + remS.Retries(); n > 0 {
		fmt.Printf("retries: %d re-issued requests (retransmissions metered)\n", n)
	}
	if h := st.R.HedgedWireBytes + st.S.HedgedWireBytes; h > 0 {
		fmt.Printf("hedged: %d speculative frames, %d wire bytes (included in the totals)\n",
			st.R.HedgedMessages+st.S.HedgedMessages, h)
	}
	if o, k := st.R.BreakerOpens+st.S.BreakerOpens, st.R.BreakerSkips+st.S.BreakerSkips; o+k > 0 {
		fmt.Printf("breakers: %d circuit(s) opened, %d probe(s) skipped proactively\n", o, k)
	}
	if comp := res.Completeness; comp != nil && !comp.Complete() {
		// The pairs above are a lower bound: every reported pair is real,
		// but contributions from the listed shards are missing. Exit 3
		// distinguishes a degraded success from a failure (1).
		fmt.Printf("completeness: %d/%d shards answered — the result is a lower bound\n",
			comp.ShardsAnswered, comp.ShardsTotal)
		for _, g := range comp.Gaps {
			fmt.Printf("  missing %s/%s: ≤%d objects unaccounted, %d queries absorbed: %s\n",
				g.Relation, g.Shard, g.Count, g.Queries, g.Reason)
		}
		os.Exit(3)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "spatialjoin: %v\n", err)
		os.Exit(1)
	}
}

// daemonRequest / daemonReply mirror spatialjoind's JSON-lines protocol.
type daemonRequest struct {
	Tenant     string  `json:"tenant"`
	Alg        string  `json:"alg"`
	Kind       string  `json:"kind"`
	Eps        float64 `json:"eps"`
	MinMatches int     `json:"min_matches,omitempty"`
	Pairs      bool    `json:"pairs,omitempty"`
}

type daemonReply struct {
	Alg        string   `json:"alg"`
	Pairs      int      `json:"pairs"`
	Objects    int      `json:"objects"`
	PairList   [][2]int `json:"pair_list"`
	ObjectList []int    `json:"object_list"`
	WireR      int      `json:"wire_r"`
	WireS      int      `json:"wire_s"`
	TotalBytes int      `json:"total_bytes"`
	Money      float64  `json:"money"`
	Spent      int64    `json:"spent"`
	Quota      int64    `json:"quota"`
	Err        string   `json:"err"`
	ErrKind    string   `json:"err_kind"`
}

// runDaemonClient submits one join to a spatialjoind daemon and prints
// the reply in the same shape as a local run. Quota rejections exit 4 so
// scripts can tell "over budget" from "broken".
func runDaemonClient(addr, tenant, alg, algAlias, kind string, eps float64, m int, pairs bool) {
	if tenant == "" {
		fmt.Fprintln(os.Stderr, "spatialjoin: -connect needs -tenant")
		os.Exit(2)
	}
	if algAlias != "" {
		alg = algAlias
	}
	conn, err := net.Dial("tcp", addr)
	fatal(err)
	defer conn.Close()
	req := daemonRequest{Tenant: tenant, Alg: alg, Kind: kind, Eps: eps, MinMatches: m, Pairs: pairs}
	if err := json.NewEncoder(conn).Encode(req); err != nil {
		fatal(err)
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	if !sc.Scan() {
		fatal(fmt.Errorf("daemon at %s closed the connection without a reply", addr))
	}
	var rep daemonReply
	fatal(json.Unmarshal(sc.Bytes(), &rep))
	if rep.Err != "" {
		fmt.Fprintf(os.Stderr, "spatialjoin: daemon: %s\n", rep.Err)
		if rep.ErrKind == "quota" {
			fmt.Fprintf(os.Stderr, "spatialjoin: tenant %q over byte quota (spent %d of %d)\n",
				tenant, rep.Spent, rep.Quota)
			os.Exit(4)
		}
		os.Exit(1)
	}
	if rep.Objects > 0 && rep.Pairs == 0 {
		fmt.Printf("%s: %d qualifying R objects\n", rep.Alg, rep.Objects)
		for _, id := range rep.ObjectList {
			fmt.Printf("  %d\n", id)
		}
	} else {
		fmt.Printf("%s: %d pairs\n", rep.Alg, rep.Pairs)
		for _, p := range rep.PairList {
			fmt.Printf("  (%d, %d)\n", p[0], p[1])
		}
	}
	fmt.Printf("wire bytes: %d total (R %d / S %d)\n", rep.TotalBytes, rep.WireR, rep.WireS)
	fmt.Printf("monetary cost: %.6f\n", rep.Money)
	fmt.Printf("tenant %s: %d bytes spent fleet-wide\n", tenant, rep.Spent)
}
