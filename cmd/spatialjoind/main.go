// Command spatialjoind is the multi-tenant join service daemon: it owns
// one shared serving fleet (both relations, metered links, batching,
// optional sharding knobs of the embedded library) and admits join
// requests from many tenants over a line-oriented JSON protocol on TCP.
// Tenants are declared up front with a service class — strict scheduling
// priority, deficit-round-robin weight, fleet-wide byte quota, and a
// concurrency cap — and every probe a tenant's join issues is scheduled
// into the shared links' envelopes under that policy and attributed to
// the tenant on the meters, so each tenant is billed its exact Eq. (1)
// slice.
//
// Usage:
//
//	spatialjoind -data-r r.spd -data-s s.spd -addr 127.0.0.1:7500 \
//	    -tenants "fast:prio=10;bulk:weight=1,quota=50000000,conc=4" \
//	    [-buffer 800] [-parallel 4] [-batch 16] [-rtt 2ms]
//
// The tenant spec is a semicolon-separated list of name:key=value pairs
// with keys prio (strict tier, higher first), weight (DRR weight within
// a tier, ≥1), quota (fleet-wide wire-byte budget, 0 = unlimited), and
// conc (max concurrent joins, 0 = unlimited). A bare name declares a
// default-class tenant.
//
// Protocol: one JSON object per line. Request:
//
//	{"tenant":"fast","alg":"upjoin","kind":"distance","eps":75,"pairs":true}
//
// Reply (one line): result counts, the tenant's attributed byte bill,
// and on failure an err string plus err_kind ∈ {bad-request,
// unknown-tenant, quota, run}. "quota" rejections carry the tenant's
// spent/quota counters; the spatialjoin client maps them to exit code 4.
//
// On SIGINT/SIGTERM the daemon stops accepting, cancels in-flight runs,
// and exits 0.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/dataset"
)

// joinRequest is one tenant's join submission.
type joinRequest struct {
	Tenant     string  `json:"tenant"`
	Alg        string  `json:"alg"`
	Kind       string  `json:"kind"`
	Eps        float64 `json:"eps"`
	MinMatches int     `json:"min_matches,omitempty"`
	Pairs      bool    `json:"pairs,omitempty"`
}

// joinReply is the daemon's answer. Err/ErrKind are empty on success.
type joinReply struct {
	Alg        string   `json:"alg,omitempty"`
	Pairs      int      `json:"pairs"`
	Objects    int      `json:"objects"`
	PairList   [][2]int `json:"pair_list,omitempty"`
	ObjectList []int    `json:"object_list,omitempty"`
	WireR      int      `json:"wire_r"`
	WireS      int      `json:"wire_s"`
	TotalBytes int      `json:"total_bytes"`
	Money      float64  `json:"money"`
	Spent      int64    `json:"spent"`
	Quota      int64    `json:"quota,omitempty"`
	Err        string   `json:"err,omitempty"`
	ErrKind    string   `json:"err_kind,omitempty"`
}

// parseTenants parses the -tenants spec: "name[:k=v[,k=v...]][;...]".
func parseTenants(spec string) (map[repro.TenantID]repro.TenantConfig, error) {
	out := make(map[repro.TenantID]repro.TenantConfig)
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, attrs, _ := strings.Cut(entry, ":")
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("tenant entry %q has no name", entry)
		}
		var tc repro.TenantConfig
		if attrs != "" {
			for _, kv := range strings.Split(attrs, ",") {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("tenant %s: attribute %q is not key=value", name, kv)
				}
				k, v = strings.TrimSpace(k), strings.TrimSpace(v)
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("tenant %s: %s=%q is not a number", name, k, v)
				}
				switch k {
				case "prio", "priority":
					tc.Priority = int(n)
				case "weight":
					tc.Weight = int(n)
				case "quota":
					tc.ByteQuota = n
				case "conc":
					tc.MaxConcurrent = int(n)
				default:
					return nil, fmt.Errorf("tenant %s: unknown attribute %q (want prio, weight, quota, conc)", name, k)
				}
			}
		}
		if _, dup := out[repro.TenantID(name)]; dup {
			return nil, fmt.Errorf("tenant %s declared twice", name)
		}
		out[repro.TenantID(name)] = tc
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no tenants declared")
	}
	return out, nil
}

func algorithm(name string) (core.Algorithm, error) {
	switch strings.ToLower(name) {
	case "", "upjoin", "up":
		return core.UpJoin{}, nil
	case "naive":
		return core.Naive{}, nil
	case "grid":
		return core.Grid{}, nil
	case "mobijoin", "mobi":
		return core.MobiJoin{}, nil
	case "srjoin", "sr":
		return core.SrJoin{}, nil
	case "semijoin", "semi":
		return core.SemiJoin{}, nil
	case "auto":
		return core.Auto{}, nil
	}
	return nil, fmt.Errorf("unknown algorithm %q", name)
}

func buildSpec(req joinRequest) (repro.Spec, error) {
	switch strings.ToLower(req.Kind) {
	case "intersection":
		return repro.Spec{Kind: repro.Intersection}, nil
	case "", "distance":
		return repro.Spec{Kind: repro.Distance, Eps: req.Eps}, nil
	case "iceberg":
		return repro.Spec{Kind: repro.IcebergSemi, Eps: req.Eps, MinMatches: req.MinMatches}, nil
	}
	return repro.Spec{}, fmt.Errorf("unknown join kind %q", req.Kind)
}

// serveConn answers one client connection: one JSON request per line,
// one JSON reply per line, joins run under ctx (daemon shutdown cancels
// them).
func serveConn(ctx context.Context, conn net.Conn, srv *repro.Server) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var req joinRequest
		var rep joinReply
		if err := json.Unmarshal([]byte(line), &req); err != nil {
			rep = joinReply{Err: err.Error(), ErrKind: "bad-request"}
		} else {
			rep = runJoin(ctx, srv, req)
		}
		if err := enc.Encode(rep); err != nil {
			return
		}
	}
}

func runJoin(ctx context.Context, srv *repro.Server, req joinRequest) joinReply {
	id := repro.TenantID(req.Tenant)
	alg, err := algorithm(req.Alg)
	if err != nil {
		return joinReply{Err: err.Error(), ErrKind: "bad-request"}
	}
	spec, err := buildSpec(req)
	if err != nil {
		return joinReply{Err: err.Error(), ErrKind: "bad-request"}
	}
	res, err := srv.Run(ctx, id, alg, spec)
	if err != nil {
		rep := joinReply{Alg: alg.Name(), Err: err.Error(), ErrKind: "run", Spent: srv.Spent(id)}
		var qe *repro.QuotaError
		switch {
		case errors.As(err, &qe):
			rep.ErrKind = "quota"
			rep.Spent, rep.Quota = qe.Spent, qe.Quota
		case errors.Is(err, repro.ErrUnknownTenant):
			rep.ErrKind = "unknown-tenant"
		}
		return rep
	}
	st := res.Stats
	rep := joinReply{
		Alg:        alg.Name(),
		Pairs:      len(res.Pairs),
		Objects:    len(res.Objects),
		WireR:      st.R.WireBytes,
		WireS:      st.S.WireBytes,
		TotalBytes: st.TotalBytes(),
		Money:      st.MoneyCost,
		Spent:      srv.Spent(id),
	}
	if req.Pairs {
		if len(res.Pairs) > 0 {
			rep.PairList = make([][2]int, len(res.Pairs))
			for i, p := range res.Pairs {
				rep.PairList[i] = [2]int{int(p.RID), int(p.SID)}
			}
		}
		for _, o := range res.Objects {
			rep.ObjectList = append(rep.ObjectList, int(o.ID))
		}
	}
	return rep
}

func main() {
	var (
		dataR    = flag.String("data-r", "", "dataset file for relation R (required)")
		dataS    = flag.String("data-s", "", "dataset file for relation S (required)")
		addr     = flag.String("addr", "127.0.0.1:0", "listen address")
		tenants  = flag.String("tenants", "", "tenant classes, \"name:prio=P,weight=W,quota=Q,conc=C;...\" (required)")
		buffer   = flag.Int("buffer", 800, "device buffer in objects")
		parallel = flag.Int("parallel", 4, "per-run parallelism and fleet worker pool size")
		batch    = flag.Int("batch", 16, "multiplex up to this many probes per link envelope (the scheduler's injection point)")
		rtt      = flag.Duration("rtt", 0, "simulated link RTT on the fleet's metered links (0 = none)")
		bucket   = flag.Bool("bucket", false, "use bucket query submission")
	)
	flag.Parse()
	if *dataR == "" || *dataS == "" {
		fmt.Fprintln(os.Stderr, "spatialjoind: -data-r and -data-s are required")
		os.Exit(2)
	}
	if *tenants == "" {
		fmt.Fprintln(os.Stderr, "spatialjoind: -tenants is required")
		os.Exit(2)
	}
	tcs, err := parseTenants(*tenants)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spatialjoind: -tenants: %v\n", err)
		os.Exit(2)
	}
	r, err := dataset.LoadFile(*dataR)
	fatal(err)
	s, err := dataset.LoadFile(*dataS)
	fatal(err)

	link := repro.DefaultLink()
	link.RTT = *rtt
	srv, err := repro.NewServer(repro.ServerConfig{
		Fleet: repro.SessionConfig{
			R: r, S: s,
			Buffer:      *buffer,
			Parallelism: *parallel,
			BatchSize:   *batch,
			Bucket:      *bucket,
			Link:        link,
		},
		Tenants: tcs,
	})
	fatal(err)
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	fatal(err)
	fmt.Printf("serving %d+%d objects to %d tenants on %s (batch=%d parallel=%d)\n",
		len(r), len(s), len(tcs), ln.Addr(), *batch, *parallel)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var wg sync.WaitGroup
	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			break // listener closed by shutdown
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			serveConn(ctx, conn, srv)
		}()
	}
	// Give in-flight runs a moment to observe the cancellation, then go.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
	}
	fmt.Println("drained cleanly")
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "spatialjoind: %v\n", err)
		os.Exit(1)
	}
}
