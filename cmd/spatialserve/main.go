// Command spatialserve serves one spatial dataset over TCP with the
// repository's wire protocol, playing the role of one of the paper's
// non-cooperative servers.
//
// Usage:
//
//	spatialserve -data hotels.spd -addr 127.0.0.1:7001 [-publish-index] [-shard i/N] [-replica r/M]
//
// -publish-index enables the cooperative SemiJoin message types; leave it
// off to model the paper's default non-cooperative server.
//
// -shard i/N serves only the i-th of N horizontal shards of the dataset
// (1-based), using the deterministic assignment of internal/shard — the
// same partitioning the spatialjoin router expects. Boot N such processes
// (i = 1..N) and point spatialjoin's -shards-r/-shards-s at all of them
// to serve one relation from many servers.
//
// -replica r/M is a purely diagnostic label: replicas of one shard serve
// *identical* data (that is what makes probes idempotent and hedging and
// failover safe), so the flag only tags the server name — logs and the
// spatialjoin per-shard accounting then show which replica answered.
// Boot M identically-sharded processes with r = 1..M and join their
// addresses with "+" in spatialjoin's -shards-r/-shards-s.
//
// On SIGINT or SIGTERM the server drains: it stops accepting connections,
// finishes the requests already read off the sockets, and exits 0 once
// everything is flushed (or exits 1 when -drain-timeout passes first). A
// second signal forces an immediate exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/dataset"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/shard"
)

// parseShard parses "i/N" (a 1-based index out of N), the shared syntax
// of -shard and -replica.
func parseShard(s string) (i, n int, err error) {
	a, b, ok := strings.Cut(s, "/")
	if ok {
		i, err = strconv.Atoi(strings.TrimSpace(a))
		if err == nil {
			n, err = strconv.Atoi(strings.TrimSpace(b))
		}
	}
	if !ok || err != nil || n < 1 || i < 1 || i > n {
		return 0, 0, fmt.Errorf("invalid index %q: want i/N with 1 <= i <= N", s)
	}
	return i, n, nil
}

// stallHandler wraps h so a seeded fraction of requests sleeps for d
// before being served. The schedule is drawn per request under a lock,
// so it is deterministic for a sequential client; the sleep itself runs
// unlocked and never blocks other workers.
func stallHandler(h netsim.Handler, prob float64, d time.Duration, seed int64) netsim.Handler {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(seed))
	return netsim.HandlerFunc(func(req []byte) []byte {
		mu.Lock()
		stall := rng.Float64() < prob
		mu.Unlock()
		if stall {
			time.Sleep(d)
		}
		return h.Handle(req)
	})
}

func main() {
	var (
		data    = flag.String("data", "", "dataset file from datagen (required)")
		addr    = flag.String("addr", "127.0.0.1:0", "listen address")
		publish = flag.Bool("publish-index", false, "expose R-tree internals (SemiJoin support)")
		name    = flag.String("name", "", "server name (defaults to the data file)")
		drain   = flag.Duration("drain-timeout", 10*time.Second, "max time to drain in-flight requests on shutdown")
		shardNo = flag.String("shard", "", "serve shard i of N of the dataset, as \"i/N\" (1-based; default: whole dataset)")
		replica = flag.String("replica", "", "label this process replica r of M of its shard, as \"r/M\" (name-only: replicas serve identical data)")

		// Chaos drills against live TCP servers: stall a seeded fraction
		// of requests before answering. Combined with the client's
		// -try-timeout/-budget/-breakers this exercises hedging, failover
		// and breaker trips over real sockets (frame drops and severs are
		// modeled client-side by the chaos harness).
		chaosProb  = flag.Float64("chaos-delay-prob", 0, "stall this fraction of requests by -chaos-delay (0 = off)")
		chaosDelay = flag.Duration("chaos-delay", 0, "how long a stalled request sleeps before being served")
		chaosSeed  = flag.Int64("chaos-seed", 1, "seed for the stall schedule")
	)
	flag.Parse()
	if *data == "" {
		fmt.Fprintln(os.Stderr, "spatialserve: -data is required")
		os.Exit(2)
	}
	objs, err := dataset.LoadFile(*data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spatialserve: %v\n", err)
		os.Exit(1)
	}
	if *name == "" {
		*name = *data
	}
	if *shardNo != "" {
		i, n, err := parseShard(*shardNo)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spatialserve: -shard: %v\n", err)
			os.Exit(2)
		}
		objs = shard.Assign(objs, n)[i-1]
		*name = fmt.Sprintf("%s[%d/%d]", *name, i, n)
	}
	if *replica != "" {
		r, m, err := parseShard(*replica)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spatialserve: -replica: %v\n", err)
			os.Exit(2)
		}
		*name = fmt.Sprintf("%s-r%d/%d", *name, r, m)
	}
	var opts []server.Option
	if *publish {
		opts = append(opts, server.PublishIndex())
	}
	var h netsim.Handler = server.New(*name, objs, opts...)
	if *chaosProb > 0 && *chaosDelay > 0 {
		h = stallHandler(h, *chaosProb, *chaosDelay, *chaosSeed)
	}
	srv, err := netsim.ListenAndServe(*addr, h)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spatialserve: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("serving %d objects from %s on %s (publish-index=%v)\n",
		len(objs), *data, srv.Addr(), *publish)

	// SIGINT covers ^C; SIGTERM is what container runtimes and process
	// managers send first — both must drain, not kill.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	first := <-sig
	fmt.Printf("received %v; draining (send again to force exit)\n", first)
	go func() {
		second := <-sig
		fmt.Fprintf(os.Stderr, "spatialserve: received %v during drain; forcing exit\n", second)
		os.Exit(1)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "spatialserve: drain incomplete: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("drained cleanly")
}
