// Command spatialserve serves one spatial dataset over TCP with the
// repository's wire protocol, playing the role of one of the paper's
// non-cooperative servers.
//
// Usage:
//
//	spatialserve -data hotels.spd -addr 127.0.0.1:7001 [-publish-index]
//
// -publish-index enables the cooperative SemiJoin message types; leave it
// off to model the paper's default non-cooperative server.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/dataset"
	"repro/internal/netsim"
	"repro/internal/server"
)

func main() {
	var (
		data    = flag.String("data", "", "dataset file from datagen (required)")
		addr    = flag.String("addr", "127.0.0.1:0", "listen address")
		publish = flag.Bool("publish-index", false, "expose R-tree internals (SemiJoin support)")
		name    = flag.String("name", "", "server name (defaults to the data file)")
	)
	flag.Parse()
	if *data == "" {
		fmt.Fprintln(os.Stderr, "spatialserve: -data is required")
		os.Exit(2)
	}
	objs, err := dataset.LoadFile(*data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spatialserve: %v\n", err)
		os.Exit(1)
	}
	if *name == "" {
		*name = *data
	}
	var opts []server.Option
	if *publish {
		opts = append(opts, server.PublishIndex())
	}
	srv, err := netsim.ListenAndServe(*addr, server.New(*name, objs, opts...))
	if err != nil {
		fmt.Fprintf(os.Stderr, "spatialserve: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("serving %d objects from %s on %s (publish-index=%v)\n",
		len(objs), *data, srv.Addr(), *publish)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("\nshutting down")
	srv.Close()
}
