// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a stable JSON document on stdout, aggregating repeated -count
// samples per benchmark by median. It backs `make bench`, which records
// the repository's performance trajectory as BENCH_<date>.json files
// (BENCH_baseline.json is the committed seed point; see
// docs/PERFORMANCE.md).
//
//	go test -run '^$' -bench . -benchmem -count 6 ./bench | benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is the aggregated record of one benchmark.
type Result struct {
	Name    string  `json:"name"`
	Samples int     `json:"samples"`
	NsPerOp float64 `json:"ns_per_op"`
	// BPerOp and AllocsPerOp are present when -benchmem was on.
	BPerOp      *float64 `json:"b_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds any extra b.ReportMetric columns (e.g. "bytes").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	Date       string   `json:"date"`
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

func main() {
	report := Report{Date: time.Now().UTC().Format("2006-01-02")}
	samples := map[string]map[string][]float64{} // name -> unit -> values
	var order []string

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			report.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			report.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			report.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			report.Pkg = strings.TrimPrefix(line, "pkg: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		if _, seen := samples[name]; !seen {
			samples[name] = map[string][]float64{}
			order = append(order, name)
		}
		// The tail is value/unit pairs: "1234 ns/op  56 B/op  7 allocs/op".
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			samples[name][fields[i+1]] = append(samples[name][fields[i+1]], v)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	for _, name := range order {
		units := samples[name]
		r := Result{Name: name, NsPerOp: median(units["ns/op"])}
		r.Samples = len(units["ns/op"])
		if vs, ok := units["B/op"]; ok {
			v := median(vs)
			r.BPerOp = &v
		}
		if vs, ok := units["allocs/op"]; ok {
			v := median(vs)
			r.AllocsPerOp = &v
		}
		for unit, vs := range units {
			switch unit {
			case "ns/op", "B/op", "allocs/op":
			default:
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[unit] = median(vs)
			}
		}
		report.Benchmarks = append(report.Benchmarks, r)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
