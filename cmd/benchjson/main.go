// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a stable JSON document on stdout, aggregating repeated -count
// samples per benchmark by median. It backs `make bench`, which records
// the repository's performance trajectory as BENCH_<date>.json files
// (BENCH_baseline.json is the committed seed point; see
// docs/PERFORMANCE.md).
//
//	go test -run '^$' -bench . -benchmem -count 6 ./bench | benchjson
//
// With -compare it instead diffs two such documents and reports per-
// benchmark deltas, exiting 1 when any time or allocation regression
// exceeds the threshold — the blocking regression gate behind
// `make bench-compare`. Benchmarks matching -skip are still printed but
// never gate: use it for timing-dependent benchmarks (hedging races
// real timers, so their medians — and even their allocation counts —
// swing with machine load):
//
//	benchjson -compare -threshold 25 -skip Hedged BENCH_baseline.json BENCH_new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is the aggregated record of one benchmark.
type Result struct {
	Name    string  `json:"name"`
	Samples int     `json:"samples"`
	NsPerOp float64 `json:"ns_per_op"`
	// BPerOp and AllocsPerOp are present when -benchmem was on.
	BPerOp      *float64 `json:"b_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds any extra b.ReportMetric columns (e.g. "bytes").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	Date       string   `json:"date"`
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// readReport loads one benchjson document from disk.
func readReport(path string) (Report, error) {
	var r Report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// compare diffs new against old and returns the number of regressions
// beyond threshold percent — in time, or in allocations (allocation
// medians are stable for compute-bound benchmarks but not perfectly so
// for scheduling-driven ones, hence the same percentage tolerance
// rather than an any-increase rule). Benchmarks present on only one
// side are reported but never counted as regressions (new benchmarks
// appear legitimately as the suite grows), and benchmarks matching skip
// are informational only.
func compare(old, cur Report, threshold float64, skip *regexp.Regexp, w *bufio.Writer) int {
	defer w.Flush()
	oldBy := map[string]Result{}
	for _, r := range old.Benchmarks {
		oldBy[r.Name] = r
	}
	newNames := map[string]bool{}
	regressions := 0
	fmt.Fprintf(w, "%-40s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, nr := range cur.Benchmarks {
		newNames[nr.Name] = true
		or, ok := oldBy[nr.Name]
		if !ok {
			fmt.Fprintf(w, "%-40s %14s %14.0f %9s\n", nr.Name, "-", nr.NsPerOp, "new")
			continue
		}
		gated := skip == nil || !skip.MatchString(nr.Name)
		delta := 0.0
		if or.NsPerOp > 0 {
			delta = (nr.NsPerOp - or.NsPerOp) / or.NsPerOp * 100
		}
		mark := ""
		switch {
		case delta > threshold && gated:
			mark = "  REGRESSION"
			regressions++
		case delta > threshold:
			mark = "  (skipped)"
		case delta < -threshold:
			mark = "  improved"
		}
		fmt.Fprintf(w, "%-40s %14.0f %14.0f %+8.1f%%%s\n", nr.Name, or.NsPerOp, nr.NsPerOp, delta, mark)
		if or.AllocsPerOp != nil && nr.AllocsPerOp != nil && *or.AllocsPerOp > 0 {
			if d := (*nr.AllocsPerOp - *or.AllocsPerOp) / *or.AllocsPerOp * 100; d > threshold {
				mark := "  REGRESSION (allocs)"
				if gated {
					regressions++
				} else {
					mark = "  (skipped allocs)"
				}
				fmt.Fprintf(w, "%-40s %14.0f %14.0f %+8.1f%%%s\n",
					nr.Name+" [allocs]", *or.AllocsPerOp, *nr.AllocsPerOp, d, mark)
			}
		}
	}
	for _, or := range old.Benchmarks {
		if !newNames[or.Name] {
			fmt.Fprintf(w, "%-40s %14.0f %14s %9s\n", or.Name, or.NsPerOp, "-", "gone")
		}
	}
	if regressions > 0 {
		fmt.Fprintf(w, "\n%d regression(s) beyond %.0f%%\n", regressions, threshold)
	}
	return regressions
}

func runCompare(oldPath, newPath string, threshold float64, skipPat string) int {
	var skip *regexp.Regexp
	if skipPat != "" {
		var err error
		if skip, err = regexp.Compile(skipPat); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: bad -skip pattern: %v\n", err)
			return 2
		}
	}
	old, err := readReport(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	cur, err := readReport(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	if compare(old, cur, threshold, skip, bufio.NewWriter(os.Stdout)) > 0 {
		return 1
	}
	return 0
}

func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

func main() {
	var (
		comparePair = flag.Bool("compare", false, "compare two benchjson files: benchjson -compare old.json new.json")
		threshold   = flag.Float64("threshold", 25, "regression threshold in percent for -compare")
		skipPat     = flag.String("skip", "", "regexp of benchmarks reported but not gated by -compare")
	)
	flag.Parse()
	if *comparePair {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		os.Exit(runCompare(flag.Arg(0), flag.Arg(1), *threshold, *skipPat))
	}

	report := Report{Date: time.Now().UTC().Format("2006-01-02")}
	samples := map[string]map[string][]float64{} // name -> unit -> values
	var order []string

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			report.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			report.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			report.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			report.Pkg = strings.TrimPrefix(line, "pkg: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		if _, seen := samples[name]; !seen {
			samples[name] = map[string][]float64{}
			order = append(order, name)
		}
		// The tail is value/unit pairs: "1234 ns/op  56 B/op  7 allocs/op".
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			samples[name][fields[i+1]] = append(samples[name][fields[i+1]], v)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	for _, name := range order {
		units := samples[name]
		r := Result{Name: name, NsPerOp: median(units["ns/op"])}
		r.Samples = len(units["ns/op"])
		if vs, ok := units["B/op"]; ok {
			v := median(vs)
			r.BPerOp = &v
		}
		if vs, ok := units["allocs/op"]; ok {
			v := median(vs)
			r.AllocsPerOp = &v
		}
		for unit, vs := range units {
			switch unit {
			case "ns/op", "B/op", "allocs/op":
			default:
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[unit] = median(vs)
			}
		}
		report.Benchmarks = append(report.Benchmarks, r)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
