// Command figures regenerates the paper's evaluation figures (§5) and
// prints each as a fixed-width table of mean total transferred bytes.
//
// Usage:
//
//	figures [-fig 6a|6b|7a|7b|8a|8b|all] [-runs N] [-seed N]
//	        [-points N] [-sigma F] [-eps F] [-buffer N]
//
// The defaults mirror the paper: 1000-point synthetic datasets, buffer
// 800 objects, 10 seeded repetitions per point.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/harness"
)

func main() {
	var (
		fig    = flag.String("fig", "all", "figure to regenerate (6a, 6b, 7a, 7b, 8a, 8b, all)")
		runs   = flag.Int("runs", 10, "seeded repetitions per data point")
		seed   = flag.Int64("seed", 1, "base seed")
		points = flag.Int("points", 1000, "synthetic dataset cardinality")
		sigma  = flag.Float64("sigma", 0, "Gaussian cluster spread (0 = default)")
		eps    = flag.Float64("eps", 0, "distance-join threshold (0 = default)")
		buffer = flag.Int("buffer", 800, "device buffer in objects")
	)
	flag.Parse()

	cfg := harness.Defaults()
	cfg.Runs = *runs
	cfg.BaseSeed = *seed
	cfg.Points = *points
	cfg.Buffer = *buffer
	if *sigma > 0 {
		cfg.Sigma = *sigma
	}
	if *eps > 0 {
		cfg.Eps = *eps
	}

	var ids []string
	if *fig == "all" {
		for id := range harness.All {
			ids = append(ids, id)
		}
		sort.Strings(ids)
	} else {
		if _, ok := harness.All[*fig]; !ok {
			fmt.Fprintf(os.Stderr, "figures: unknown figure %q\n", *fig)
			os.Exit(2)
		}
		ids = []string{*fig}
	}

	for _, id := range ids {
		start := time.Now()
		table, err := harness.All[id](cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", id, err)
			os.Exit(1)
		}
		table.Render(os.Stdout)
		fmt.Printf("(%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
