// Command datagen generates spatial datasets in the repository's binary
// format, for use with spatialserve and spatialjoin.
//
// Usage:
//
//	datagen -kind clusters -n 1000 -k 4 -sigma 250 -seed 1 -out data.spd
//	datagen -kind uniform -n 1000 -seed 2 -out uni.spd
//	datagen -kind railway -n 35000 -seed 3 -out rail.spd
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/geom"
)

func main() {
	var (
		kind  = flag.String("kind", "clusters", "dataset kind: clusters, uniform, railway, rects")
		n     = flag.Int("n", 1000, "object count (approximate for railway)")
		k     = flag.Int("k", 4, "cluster count (clusters/rects)")
		sigma = flag.Float64("sigma", 250, "Gaussian cluster spread")
		side  = flag.Float64("side", 50, "max rectangle side (rects)")
		seed  = flag.Int64("seed", 1, "generator seed")
		out   = flag.String("out", "", "output file (required)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "datagen: -out is required")
		os.Exit(2)
	}

	var objs []geom.Object
	switch *kind {
	case "clusters":
		objs = dataset.GaussianClusters(*n, *k, *sigma, dataset.World, *seed)
	case "uniform":
		objs = dataset.Uniform(*n, dataset.World, *seed)
	case "rects":
		objs = dataset.ClusteredRects(*n, *k, *sigma, *side, dataset.World, *seed)
	case "railway":
		cfg := dataset.DefaultRailway()
		cfg.Segments = *n
		objs = dataset.Railway(cfg, *seed)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	if err := dataset.SaveFile(*out, objs); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	b := dataset.Bounds(objs)
	fmt.Printf("wrote %d objects to %s (bounds %v)\n", len(objs), *out, b)
}
