//go:build race

package repro

// raceEnabled gates timing- and allocation-sensitive assertions: the
// race detector's instrumentation distorts both.
const raceEnabled = true
