// Package repro is the public facade of the reproduction of
// "Ad-hoc Distributed Spatial Joins on Mobile Devices" (Kalnis, Mamoulis,
// Bakiras, Li — IPDPS 2006).
//
// It wires together the building blocks under internal/ into a small,
// documented API: start dataset servers (in-process goroutine peers or
// real TCP), connect a simulated mobile device to them over metered
// links, and evaluate spatial joins with the paper's algorithms while
// accounting every transferred byte.
//
// Quick start:
//
//	hotels := repro.GaussianClusters(1000, 4, 300, repro.World, 1)
//	bars := repro.GaussianClusters(1000, 4, 300, repro.World, 2)
//	sess, _ := repro.NewSession(repro.SessionConfig{
//		R: hotels, S: bars, Buffer: 800,
//	})
//	defer sess.Close()
//	res, _ := sess.Run(repro.UpJoin{}, repro.Spec{Kind: repro.Distance, Eps: 150})
//	fmt.Println(len(res.Pairs), "pairs for", res.Stats.TotalBytes(), "bytes")
//
// Setting SessionConfig.Parallelism > 1 enables the concurrent execution
// engine: independent requests to the two servers overlap, sibling
// partitions run on a worker pool, and downloads pipeline with device-side
// joins — with bit-identical results and byte accounting (see
// docs/ARCHITECTURE.md).
//
// See README.md for a tour and docs/ARCHITECTURE.md for the layer stack
// and the concurrency model.
package repro

import (
	"context"
	"fmt"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/health"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/shard"
)

// Re-exported geometry and result types.
type (
	// Point is a location in the plane.
	Point = geom.Point
	// Rect is an axis-aligned rectangle (MBR).
	Rect = geom.Rect
	// Object is a spatial object: ID plus MBR.
	Object = geom.Object
	// Pair is one join result.
	Pair = geom.Pair
)

// Re-exported join specification and results.
type (
	// Spec describes a join query (kind, ε, iceberg threshold).
	Spec = core.Spec
	// Kind selects the join predicate family.
	Kind = core.Kind
	// Result is a join outcome with byte-accounting stats.
	Result = core.Result
	// Stats summarizes the traffic and decisions of one execution.
	Stats = core.Stats
	// Algorithm is one join evaluation strategy.
	Algorithm = core.Algorithm
	// Env is the execution environment handed to algorithms.
	Env = core.Env
	// LinkConfig describes the physical link of Eq. (1) (MTU, header
	// bytes, simulated RTT).
	LinkConfig = netsim.LinkConfig
	// RetryPolicy governs re-issuing queries after transient transport
	// faults; the zero value disables retries.
	RetryPolicy = client.RetryPolicy
)

// Link presets from the paper.
var (
	// DefaultLink is the WiFi/Ethernet link (MTU 1500, BH 40).
	DefaultLink = netsim.DefaultLink
	// DialupLink is the dial-up alternative (MTU 576, BH 40).
	DialupLink = netsim.DialupLink
	// DefaultRetry is a sane retry policy for lossy links.
	DefaultRetry = client.DefaultRetry
)

// Join kinds.
const (
	// Intersection is the MBR-intersection join.
	Intersection = core.Intersection
	// Distance is the ε-distance join.
	Distance = core.Distance
	// IcebergSemi is the iceberg distance semi-join.
	IcebergSemi = core.IcebergSemi
)

// The paper's algorithms.
type (
	// Naive downloads both datasets (§3 strawman).
	Naive = core.Naive
	// Grid is regular-grid partitioning with COUNT pruning (§3).
	Grid = core.Grid
	// MobiJoin is the SSTD 2003 baseline analysed in §3.2.
	MobiJoin = core.MobiJoin
	// UpJoin is the Uniform Partition Join (§4.1).
	UpJoin = core.UpJoin
	// SrJoin is the Similarity Related Join (§4.2).
	SrJoin = core.SrJoin
	// SemiJoin is the cooperative indexed comparator (§5.3).
	SemiJoin = core.SemiJoin
	// Auto is the online cost-based planner: it observes first (COUNTs,
	// live link stats, shard skew), scores every candidate operator with
	// the §3.1 model hydrated from those observations, commits the
	// cheapest, and can re-plan mid-join when a measurement contradicts
	// the estimate it committed on. Result.Explain carries its account.
	Auto = core.Auto
)

// Observability of the execution engine: every run decomposes into
// observe/plan/transfer/re-plan phases, reported to Env.Observer.
type (
	// PhaseEvent is one phase boundary of a run (see Env.Observer).
	PhaseEvent = core.PhaseEvent
	// PhaseKind classifies a phase boundary.
	PhaseKind = core.PhaseKind
	// Explain is the online planner's phase-by-phase account, attached to
	// Result.Explain by the Auto algorithm.
	Explain = core.Explain
)

// Phase kinds.
const (
	// PhaseObserve is a statistics phase (COUNT/INFO queries).
	PhaseObserve = core.PhaseObserve
	// PhasePlan is a planning decision.
	PhasePlan = core.PhasePlan
	// PhaseTransfer is an object-moving phase.
	PhaseTransfer = core.PhaseTransfer
	// PhaseReplan marks a mid-join revision of an earlier plan.
	PhaseReplan = core.PhaseReplan
)

// Dataset helpers.
var (
	// World is the default data space.
	World = dataset.World
	// GaussianClusters generates the paper's synthetic workload.
	GaussianClusters = dataset.GaussianClusters
	// Uniform generates uniform points.
	Uniform = dataset.Uniform
	// Railway generates the synthetic railway substitute dataset.
	Railway = dataset.Railway
	// Oracle computes the reference result locally.
	Oracle = core.Oracle
)

// DefaultRailway is the ~35K-segment configuration of §5.2.
func DefaultRailway() dataset.RailwayConfig { return dataset.DefaultRailway() }

// SessionConfig configures NewSession.
type SessionConfig struct {
	// R and S are the two datasets to serve.
	R, S []Object
	// Buffer is the device capacity in objects (0 = unlimited).
	Buffer int
	// PriceR and PriceS are per-byte tariffs; 0 means 1 unit each.
	PriceR, PriceS float64
	// Window restricts the join spatially; zero means whole space.
	Window Rect
	// Bucket enables bucket query submission (§3.1).
	Bucket bool
	// PublishIndexes enables the SemiJoin comparator's cooperative
	// protocol on both servers.
	PublishIndexes bool
	// Seed drives algorithm-internal randomness.
	Seed int64
	// Parallelism bounds the number of concurrently in-flight operations
	// per run. 0 or 1 reproduces the paper's single-threaded device;
	// higher values enable the concurrent execution engine (parallel
	// dual-server probing, a worker pool over sibling partitions, and
	// download/join pipelining). Results and metered byte counts are
	// identical to the sequential run; only wall-clock time changes. The
	// in-process servers are given one worker goroutine per unit of
	// parallelism.
	Parallelism int
	// BatchSize, when > 1, multiplexes independent probes into MsgBatch
	// envelopes of up to this many sub-requests per link, amortizing
	// frame headers, packet overhead (Eq. 1), and — on RTT-bearing links
	// — round trips across the batch. 0 or 1 keeps every request in its
	// own frame, bit-identical to the pre-batching wire format. Results
	// are identical at every batch size; only the framing (and hence the
	// byte totals) changes. Sequential runs frame deterministically; see
	// docs/ARCHITECTURE.md ("Batched probe multiplexing").
	BatchSize int
	// Link selects the physical link parameters of both metered links.
	// The zero value means the paper's default WiFi link (MTU 1500,
	// BH 40); an invalid configuration fails NewSession.
	Link LinkConfig
	// Retry is the per-query retry policy applied to both remotes. The
	// zero value disables retries (the paper's fail-fast device). Retried
	// requests are charged to the meter per attempt, so a faulty link
	// costs real bytes — failure-free runs meter identically with any
	// policy.
	Retry RetryPolicy
	// RunTimeout, when positive, bounds every Run/RunContext call with a
	// deadline. Canceling the deadline (or the caller's context) aborts
	// the join promptly and joins all worker goroutines.
	RunTimeout time.Duration
	// Shards, when > 1, splits each relation across this many in-process
	// servers (spatial-tile assignment with a hash fallback; every object
	// lands on exactly one shard) and routes all queries through a
	// scatter–gather shard.Router: COUNTs fan out to the overlapping
	// shards and sum, window/bucket replies merge in deterministic order,
	// so every algorithm returns the exact unsharded result. 0 or 1 keeps
	// the paper's one-server-per-relation setting; Shards == 1 runs the
	// router as a pass-through, bit-identical on the wire to the
	// unsharded protocol. Sharded byte totals differ from unsharded ones
	// (one link per shard, its own INFO, per-shard pruning) and are pinned
	// by their own golden test.
	Shards int
	// TreeFanout, when >= 2 (and smaller than Shards), routes each
	// relation through a hierarchical aggregation tree instead of the
	// flat scatter: interior Aggregator nodes front groups of TreeFanout
	// consecutive shards, partially merging COUNT sums and ID-ordered
	// object lists level by level, so the root link carries O(TreeFanout)
	// replies per query regardless of the fleet size. Results are
	// bit-identical to the flat router's; byte totals additionally
	// account the interior uplinks (Stats.RLevels/SLevels break wire
	// bytes out per tree level). 0 keeps the flat scatter.
	TreeFanout int
	// Replicas, when > 1, serves every shard (or the whole relation when
	// unsharded) from this many identical replica servers behind a
	// shard.ReplicaSet: probes load-balance round-robin across the
	// replica links, fail over to a sibling replica on transport faults
	// (after the per-link Retry policy is exhausted), and — with HedgePct
	// set — hedge stragglers against a second replica. 0 or 1 keeps one
	// server per shard. Each probe still travels exactly one replica link
	// (absent hedges), so the summed byte totals match the unreplicated
	// goldens bit for bit.
	Replicas int
	// HedgePct, when > 0 (e.g. 95), arms hedged reads on every replica
	// set: a probe still in flight past that percentile of the recent
	// attempt-latency window is raced against the next replica,
	// fastest-of-two, loser cancelled. Hedge traffic costs real bytes and
	// is sub-accounted in Stats (Usage.HedgedWireBytes). Ignored unless
	// Replicas > 1.
	HedgePct float64
	// Breakers arms a circuit breaker per replica endpoint (Replicas > 1
	// only): a replica whose link keeps failing is declared dead after a
	// few consecutive failures, skipped by selection and hedging before
	// any probe is wasted on it, and re-closed by cheap background INFO
	// probes once it answers again. Breaker activity is exported in
	// Stats (Usage.BreakerOpens / BreakerSkips). With BreakerConfig's
	// zero fields the health.Config defaults apply.
	Breakers bool
	// Breaker tunes the armed breakers (thresholds, cool-down, probe
	// cadence); ignored unless Breakers is set.
	Breaker BreakerConfig
	// AllowPartial opts runs into degraded partial results: when a shard
	// is unreachable (every replica open-circuit, or its sub-query
	// exhausted its retries), the run completes over the shards that
	// answered and Result.Completeness reports the gaps — answered/total
	// shards, the unreachable shards' advertised bounds and cardinality,
	// and the affected query count. The pairs of a partial result are a
	// lower bound: every reported pair is real. Off (the default), any
	// shard failure fails the run — bit-identical to before.
	AllowPartial bool
	// QueryBudget, when positive, bounds each logical probe end to end:
	// its retries, backoffs, hedges, and failovers all draw from this one
	// deadline instead of stacking flat per-try timeouts. Applied to both
	// the per-link retry loop and the replica-set probe loop.
	QueryBudget time.Duration
}

// BreakerConfig re-exports the circuit-breaker tuning knobs
// (health.Config): failure thresholds, open cool-down, and the recovery
// prober's cadence and budget.
type BreakerConfig = health.Config

// Completeness describes which shards contributed to a partial result.
type Completeness = health.Completeness

// Gap is one unreachable shard's missing contribution.
type Gap = health.Gap

// Session is a ready-to-run device↔servers assembly using in-process
// goroutine servers. Create one per joined dataset pair; run as many
// algorithms as desired (each Run sees only its own traffic).
type Session struct {
	env        *core.Env
	remR, remS core.Probe
	reg        *health.Registry // nil unless Breakers armed
	runTimeout time.Duration
}

// fleet is the assembled serving side of one SessionConfig: the two
// relation endpoints (bare remotes, or routers over shards/replicas),
// the optional breaker registry, and the resolved link/tariff
// parameters the cost model needs. A Session owns one privately; a
// Server shares one among all its tenants.
type fleet struct {
	remR, remS     core.Probe
	reg            *health.Registry // nil unless Breakers armed
	link           LinkConfig
	priceR, priceS float64
}

// close releases the fleet (breaker probers first, so no background
// probe races a closing transport).
func (f *fleet) close() error {
	if f.reg != nil {
		f.reg.Close()
	}
	err1 := f.remR.Close()
	err2 := f.remS.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// buildFleet starts the in-process servers of cfg and wires the metered
// client side to them, with extra client options (a Server's scheduler
// and ledger) appended after the session-derived ones. An invalid link
// configuration is reported here, at the configuration boundary.
func buildFleet(cfg SessionConfig, extra ...client.Option) (*fleet, error) {
	if cfg.PriceR == 0 {
		cfg.PriceR = 1
	}
	if cfg.PriceS == 0 {
		cfg.PriceS = 1
	}
	link := cfg.Link
	if link == (LinkConfig{}) {
		link = netsim.DefaultLink()
	}
	var opts []server.Option
	if cfg.PublishIndexes {
		opts = append(opts, server.PublishIndex())
	}
	workers := cfg.Parallelism
	if workers < 1 {
		workers = 1
	}
	retry := cfg.Retry
	if cfg.QueryBudget > 0 {
		retry.Budget = cfg.QueryBudget
	}
	copts := []client.Option{client.WithRetry(retry)}
	if cfg.BatchSize > 1 {
		copts = append(copts, client.WithBatch(client.BatchConfig{MaxBatch: cfg.BatchSize}))
	}
	copts = append(copts, extra...)
	var reg *health.Registry
	if cfg.Breakers && cfg.Replicas > 1 {
		reg = health.NewRegistry(cfg.Breaker)
	}
	var remR, remS core.Probe
	if cfg.Shards >= 1 || cfg.Replicas > 1 || cfg.AllowPartial {
		// The relation is served sharded and/or replicated: partition
		// servers behind a scatter–gather router, each shard optionally a
		// replica set (the 1-shard, 1-replica router is a pure
		// pass-through, bit-identical on the wire to a direct remote).
		// AllowPartial routes through here too — the router is the layer
		// that absorbs sub-query failures into completeness gaps.
		lcfg := shard.LocalConfig{
			Shards: cfg.Shards, Replicas: cfg.Replicas, Workers: workers,
			TreeFanout: cfg.TreeFanout,
			HedgePct:   cfg.HedgePct, Link: link,
			ServerOpts: opts, ClientOpts: copts,
			Health: reg, Budget: cfg.QueryBudget,
		}
		lcfg.Price = cfg.PriceR
		routerR, err := shard.ServeLocal("R", cfg.R, lcfg)
		if err != nil {
			if reg != nil {
				reg.Close()
			}
			return nil, fmt.Errorf("repro: %w", err)
		}
		lcfg.Price = cfg.PriceS
		routerS, err := shard.ServeLocal("S", cfg.S, lcfg)
		if err != nil {
			routerR.Close()
			if reg != nil {
				reg.Close()
			}
			return nil, fmt.Errorf("repro: %w", err)
		}
		remR, remS = routerR, routerS
	} else {
		srvR := server.New("R", cfg.R, opts...)
		srvS := server.New("S", cfg.S, opts...)
		rtR := netsim.ServeParallel(srvR, workers)
		rtS := netsim.ServeParallel(srvS, workers)
		r, err := client.NewRemote("R", rtR, link, cfg.PriceR, copts...)
		if err != nil {
			rtR.Close()
			rtS.Close()
			return nil, fmt.Errorf("repro: %w", err)
		}
		s, err := client.NewRemote("S", rtS, link, cfg.PriceS, copts...)
		if err != nil {
			r.Close()
			rtS.Close()
			return nil, fmt.Errorf("repro: %w", err)
		}
		remR, remS = r, s
	}
	return &fleet{
		remR: remR, remS: remS, reg: reg,
		link: link, priceR: cfg.PriceR, priceS: cfg.PriceS,
	}, nil
}

// newEnv wires one device environment over the given relation endpoints
// (the fleet's own, or per-tenant wrappers of them).
func (f *fleet) newEnv(cfg SessionConfig, remR, remS core.Probe) *core.Env {
	model := costmodel.Default()
	model.Bucket = cfg.Bucket
	model.Link = f.link
	model.PriceR, model.PriceS = f.priceR, f.priceS
	env := core.NewEnv(remR, remS, client.Device{BufferObjects: cfg.Buffer}, model, cfg.Window)
	env.Seed = cfg.Seed
	env.Parallelism = cfg.Parallelism
	env.BatchSize = cfg.BatchSize
	env.AllowPartial = cfg.AllowPartial
	return env
}

// NewSession starts in-process servers for cfg.R and cfg.S (one per
// relation, or cfg.Shards each) and wires a device environment to them.
// An invalid link configuration is reported here, at the configuration
// boundary.
func NewSession(cfg SessionConfig) (*Session, error) {
	f, err := buildFleet(cfg)
	if err != nil {
		return nil, err
	}
	env := f.newEnv(cfg, f.remR, f.remS)
	return &Session{
		env: env, remR: f.remR, remS: f.remS, reg: f.reg,
		runTimeout: cfg.RunTimeout,
	}, nil
}

// Run executes one algorithm. Stats cover only this run's traffic.
func (s *Session) Run(alg Algorithm, spec Spec) (*Result, error) {
	return s.RunContext(context.Background(), alg, spec)
}

// RunContext executes one algorithm under ctx: canceling it (or exceeding
// the session's RunTimeout, when configured) aborts the join promptly —
// in-flight round trips are interrupted, all worker goroutines join
// before the call returns, and the context's error is reported. Stats
// cover only this run's traffic.
func (s *Session) RunContext(ctx context.Context, alg Algorithm, spec Spec) (*Result, error) {
	if alg == nil {
		return nil, fmt.Errorf("repro: nil algorithm")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if s.runTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.runTimeout)
		defer cancel()
	}
	return alg.Run(ctx, s.env, spec)
}

// Env exposes the underlying environment for advanced use (custom
// algorithms, inspecting meters).
func (s *Session) Env() *Env { return s.env }

// Close shuts down the server goroutines. The breaker registry's
// recovery probers are stopped first — and waited for — so no background
// INFO probe outlives the session or races a closing transport.
func (s *Session) Close() error {
	if s.reg != nil {
		s.reg.Close()
	}
	err1 := s.remR.Close()
	err2 := s.remS.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// Pt builds a Point.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// R builds a Rect from two corners.
func R(x1, y1, x2, y2 float64) Rect { return geom.R(x1, y1, x2, y2) }

// PointObject builds a point Object.
func PointObject(id uint32, p Point) Object { return geom.PointObject(id, p) }
