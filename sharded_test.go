package repro

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/shard"
)

// shardedDatasets are the workload kinds the sharded oracle suite runs:
// clustered points (the paper's synthetic workload), uniform points (no
// skew for the tile assignment to exploit), and railway line segments
// (MBR data, so objects straddle shard-tile boundaries).
func shardedDatasets(t *testing.T) map[string][2][]Object {
	t.Helper()
	rail := dataset.RailwayConfig{Segments: 400, Stations: 20, Degree: 3, Bounds: World, Jitter: 25}
	return map[string][2][]Object{
		"clusters": {
			GaussianClusters(300, 4, 900, World, 81),
			GaussianClusters(300, 4, 900, World, 82),
		},
		"uniform": {
			Uniform(300, World, 83),
			Uniform(300, World, 84),
		},
		"railway": {
			Railway(rail, 85),
			GaussianClusters(300, 6, 400, World, 86),
		},
	}
}

// TestShardedMatchesOracle is the sharding correctness guarantee: every
// algorithm × dataset kind × shard count ∈ {1, 2, 4} × parallelism ∈
// {1, 4} returns exactly the local oracle's result. Sharding changes
// which servers hold which objects and how replies merge — never the
// logical answers the device computes from them. Run under -race this
// also exercises the router's scatter/gather synchronization.
func TestShardedMatchesOracle(t *testing.T) {
	specs := map[string]Spec{
		"intersection": {Kind: Intersection},
		"distance":     {Kind: Distance, Eps: 200},
		"iceberg":      {Kind: IcebergSemi, Eps: 200, MinMatches: 2},
	}
	algs := map[string]Algorithm{
		"naive":    Naive{},
		"grid":     Grid{},
		"mobiJoin": MobiJoin{},
		"upJoin":   UpJoin{},
		"srJoin":   SrJoin{},
		"semiJoin": SemiJoin{},
	}
	for kindName, ds := range shardedDatasets(t) {
		robjs, sobjs := ds[0], ds[1]
		for specName, spec := range specs {
			want := Oracle(robjs, sobjs, spec, World)
			// Guard against a vacuous suite: the distance oracle must be
			// non-trivial for every dataset kind (the seeds are fixed, so
			// an empty one means the workload regressed).
			if spec.Kind == Distance && len(want.Pairs) == 0 {
				t.Fatalf("%s/%s: empty distance oracle makes the suite vacuous", kindName, specName)
			}
			for algName, alg := range algs {
				if algName == "semiJoin" && spec.Kind == IcebergSemi {
					continue // semiJoin has no iceberg semantics
				}
				for _, shards := range []int{1, 2, 4} {
					for _, par := range []int{1, 4} {
						name := fmt.Sprintf("%s/%s/%s/shards%d/par%d", kindName, specName, algName, shards, par)
						t.Run(name, func(t *testing.T) {
							sess, err := NewSession(SessionConfig{
								R: robjs, S: sobjs, Buffer: 300, Window: World,
								Seed: 5, Shards: shards, Parallelism: par,
								PublishIndexes: true,
							})
							if err != nil {
								t.Fatal(err)
							}
							defer sess.Close()
							got, err := sess.Run(alg, spec)
							if err != nil {
								t.Fatal(err)
							}
							assertShardedResult(t, name, spec, got, want)
						})
					}
				}
			}
		}
	}
}

// TestShardedBucketAndBatchMatchOracle covers the remaining probe paths
// through the router: bucket query submission (BucketRange /
// BucketRangeCount scatter with per-probe reassembly) and MsgBatch
// multiplexing (GoBatch routing through the per-shard-link batchers).
func TestShardedBucketAndBatchMatchOracle(t *testing.T) {
	robjs := GaussianClusters(300, 4, 900, World, 87)
	sobjs := GaussianClusters(300, 4, 900, World, 88)
	specs := map[string]Spec{
		"distance": {Kind: Distance, Eps: 200},
		"iceberg":  {Kind: IcebergSemi, Eps: 200, MinMatches: 2},
	}
	for specName, spec := range specs {
		want := Oracle(robjs, sobjs, spec, World)
		for _, mode := range []struct {
			name   string
			bucket bool
			batch  int
		}{
			{"bucket", true, 0},
			{"batch4", false, 4},
			{"bucket-batch8", true, 8},
		} {
			for _, par := range []int{1, 4} {
				name := fmt.Sprintf("%s/%s/shards3/par%d", specName, mode.name, par)
				t.Run(name, func(t *testing.T) {
					sess, err := NewSession(SessionConfig{
						R: robjs, S: sobjs, Buffer: 300, Window: World,
						Seed: 5, Shards: 3, Parallelism: par,
						Bucket: mode.bucket, BatchSize: mode.batch,
					})
					if err != nil {
						t.Fatal(err)
					}
					defer sess.Close()
					got, err := sess.Run(UpJoin{}, spec)
					if err != nil {
						t.Fatal(err)
					}
					assertShardedResult(t, name, spec, got, want)
				})
			}
		}
	}
}

func assertShardedResult(t *testing.T, name string, spec Spec, got, want *core.Result) {
	t.Helper()
	if spec.Kind == IcebergSemi {
		if len(got.Objects) != len(want.Objects) {
			t.Fatalf("%s: %d iceberg objects, oracle %d", name, len(got.Objects), len(want.Objects))
		}
		for i := range got.Objects {
			if got.Objects[i].ID != want.Objects[i].ID {
				t.Fatalf("%s: iceberg object %d = id %d, oracle id %d",
					name, i, got.Objects[i].ID, want.Objects[i].ID)
			}
		}
		return
	}
	if len(got.Pairs) != len(want.Pairs) {
		t.Fatalf("%s: %d pairs, oracle %d", name, len(got.Pairs), len(want.Pairs))
	}
	for i := range got.Pairs {
		if got.Pairs[i] != want.Pairs[i] {
			t.Fatalf("%s: pair %d = %+v, oracle %+v", name, i, got.Pairs[i], want.Pairs[i])
		}
	}
}

// --- sharded chaos / failure-injection suite ------------------------------

// shardedChaosEnv wires a core.Env whose relations are 2-shard routers
// with seeded fault injection below every shard link's meter, plus a
// retry policy generous enough that every query eventually lands.
func shardedChaosEnv(t *testing.T, robjs, sobjs []Object, par int, seed int64) *core.Env {
	t.Helper()
	workers := par
	if workers < 1 {
		workers = 1
	}
	retry := client.RetryPolicy{MaxAttempts: 12, Backoff: 50 * time.Microsecond}
	build := func(name string, objs []Object, seed int64) *shard.Router {
		parts := shard.Assign(objs, 2)
		rems := make([]*client.Remote, len(parts))
		for i, part := range parts {
			sname := fmt.Sprintf("%s%d/2", name, i+1)
			cfg := netsim.FaultConfig{
				Seed:           seed + int64(i),
				DropProb:       0.12,
				SeverProb:      0.08,
				DelayProb:      0.02,
				Delay:          100 * time.Microsecond,
				MaxConsecutive: 3,
			}
			ft := netsim.NewFaulty(netsim.ServeParallel(server.New(sname, part), workers), cfg)
			rem, err := client.NewRemote(sname, ft, netsim.DefaultLink(), 1, client.WithRetry(retry))
			if err != nil {
				t.Fatal(err)
			}
			rems[i] = rem
		}
		router, err := shard.NewRouter(name, shard.Remotes(rems), shard.WithParallelism(workers))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { router.Close() })
		return router
	}
	env := core.NewEnv(build("R", robjs, seed), build("S", sobjs, seed+100),
		client.Device{BufferObjects: 500}, costmodel.Default(), geom.Rect{})
	env.Parallelism = par
	return env
}

// TestShardedChaosMatchesOracle extends the PR 3 chaos suite to sharded
// relations: with drops and severed responses injected independently on
// all four shard links, the retried scatter still produces the oracle
// result.
func TestShardedChaosMatchesOracle(t *testing.T) {
	robjs := GaussianClusters(250, 4, 900, World, 91)
	sobjs := GaussianClusters(250, 4, 900, World, 92)
	window := dataset.Bounds(robjs).Union(dataset.Bounds(sobjs))
	spec := Spec{Kind: Distance, Eps: 200}
	want := Oracle(robjs, sobjs, spec, window)
	if len(want.Pairs) == 0 {
		t.Fatal("empty distance oracle makes the chaos suite vacuous")
	}
	for _, alg := range []Algorithm{UpJoin{}, Grid{}, Naive{}} {
		for _, par := range []int{1, 4} {
			env := shardedChaosEnv(t, robjs, sobjs, par, int64(len(alg.Name()))*10+int64(par))
			got, err := alg.Run(context.Background(), env, spec)
			if err != nil {
				t.Fatalf("%s p=%d under faults: %v", alg.Name(), par, err)
			}
			if len(got.Pairs) != len(want.Pairs) {
				t.Fatalf("%s p=%d: %d pairs, oracle %d", alg.Name(), par, len(got.Pairs), len(want.Pairs))
			}
			for i := range got.Pairs {
				if got.Pairs[i] != want.Pairs[i] {
					t.Fatalf("%s p=%d: pair %d differs", alg.Name(), par, i)
				}
			}
		}
	}
}

// killableRT passes round trips through until killed, then fails every
// call — a shard server process dying mid-join.
type killableRT struct {
	inner  netsim.RoundTripper
	killed atomic.Bool
}

var errShardKilled = errors.New("shard server killed")

func (k *killableRT) RoundTrip(ctx context.Context, req []byte) ([]byte, error) {
	if k.killed.Load() {
		return nil, errShardKilled
	}
	return k.inner.RoundTrip(ctx, req)
}

func (k *killableRT) Close() error { return k.inner.Close() }

// TestShardedKillOneServerMidJoin kills one of four shard servers while a
// join is running: the run must fail promptly with an error naming the
// dead shard (not a generic cancellation), every worker goroutine must
// join, and nothing may leak once the session closes.
func TestShardedKillOneServerMidJoin(t *testing.T) {
	for _, par := range []int{1, 4} {
		baseline := runtime.NumGoroutine()
		robjs := GaussianClusters(400, 4, 300, World, 93)
		sobjs := GaussianClusters(400, 4, 300, World, 94)
		workers := par
		if workers < 1 {
			workers = 1
		}
		// A simulated RTT keeps the join in flight long enough to kill the
		// shard mid-run on any scheduler.
		link := netsim.DefaultLink()
		link.RTT = 2 * time.Millisecond
		var kill *killableRT
		build := func(name string, objs []Object, killable bool) *shard.Router {
			parts := shard.Assign(objs, 2)
			rems := make([]*client.Remote, len(parts))
			for i, part := range parts {
				sname := fmt.Sprintf("%s%d/2", name, i+1)
				var rt netsim.RoundTripper = netsim.ServeParallel(server.New(sname, part), workers)
				if killable && i == 1 {
					kill = &killableRT{inner: rt}
					rt = kill
				}
				rem, err := client.NewRemote(sname, rt, link, 1)
				if err != nil {
					t.Fatal(err)
				}
				rems[i] = rem
			}
			router, err := shard.NewRouter(name, shard.Remotes(rems), shard.WithParallelism(workers))
			if err != nil {
				t.Fatal(err)
			}
			return router
		}
		routerR := build("R", robjs, false)
		routerS := build("S", sobjs, true)
		env := core.NewEnv(routerR, routerS, client.Device{BufferObjects: 200}, costmodel.Default(), geom.Rect{})
		env.Parallelism = par

		done := make(chan error, 1)
		go func() {
			_, err := UpJoin{}.Run(context.Background(), env, Spec{Kind: Distance, Eps: 120})
			done <- err
		}()
		time.Sleep(5 * time.Millisecond)
		kill.killed.Store(true)
		select {
		case err := <-done:
			// The join may have finished before the kill landed (small
			// workload, fast scheduler); a nil error is only acceptable in
			// that case.
			if err != nil {
				if !errors.Is(err, errShardKilled) {
					t.Fatalf("p=%d: err = %v, want the shard fault as root cause", par, err)
				}
				if !strings.Contains(err.Error(), "S2/2") {
					t.Fatalf("p=%d: err %q does not name the killed shard", par, err)
				}
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("p=%d: join did not return after shard kill", par)
		}
		routerR.Close()
		routerS.Close()
		waitShardedGoroutines(t, baseline)
	}
}

// waitShardedGoroutines polls until the goroutine count settles back to
// at most base.
func waitShardedGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d > %d\n%s", runtime.NumGoroutine(), base, buf[:n])
}
