// Package geom provides the 2-D geometric primitives used throughout the
// repository: points, axis-aligned rectangles (MBRs), regular grids and the
// spatial objects exchanged between the mobile client and the dataset
// servers.
//
// All coordinates are float64 in an arbitrary Cartesian plane. Rectangles
// are closed on all sides: a point lying exactly on an edge is contained,
// and two rectangles sharing only an edge intersect. This matches the
// usual MBR-filter semantics of spatial join literature, where borderline
// candidates are kept and resolved during refinement.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// DistTo returns the Euclidean distance between p and q.
func (p Point) DistTo(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

// DistSqTo returns the squared Euclidean distance between p and q.
// It avoids the square root for comparison-only call sites.
func (p Point) DistSqTo(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Rect is a closed, axis-aligned rectangle with MinX <= MaxX and
// MinY <= MaxY. The zero Rect is the degenerate point at the origin.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// R builds a Rect from two corner coordinates, normalizing the order so
// that the result is valid even if the corners are swapped.
func R(x1, y1, x2, y2 float64) Rect {
	if x1 > x2 {
		x1, x2 = x2, x1
	}
	if y1 > y2 {
		y1, y2 = y2, y1
	}
	return Rect{MinX: x1, MinY: y1, MaxX: x2, MaxY: y2}
}

// RectFromPoint returns the degenerate rectangle covering exactly p.
func RectFromPoint(p Point) Rect {
	return Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
}

// RectFromCenter returns the rectangle centered at p with half-extents hx
// and hy. Negative half-extents are treated as zero.
func RectFromCenter(p Point, hx, hy float64) Rect {
	if hx < 0 {
		hx = 0
	}
	if hy < 0 {
		hy = 0
	}
	return Rect{MinX: p.X - hx, MinY: p.Y - hy, MaxX: p.X + hx, MaxY: p.Y + hy}
}

// Valid reports whether r has non-inverted extents.
func (r Rect) Valid() bool {
	return r.MinX <= r.MaxX && r.MinY <= r.MaxY &&
		!math.IsNaN(r.MinX) && !math.IsNaN(r.MinY) &&
		!math.IsNaN(r.MaxX) && !math.IsNaN(r.MaxY)
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r. Degenerate rectangles have area zero.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Perimeter returns the perimeter of r.
func (r Rect) Perimeter() float64 { return 2 * (r.Width() + r.Height()) }

// Center returns the centroid of r.
func (r Rect) Center() Point {
	return Point{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2}
}

// Intersects reports whether r and s share at least one point
// (closed-rectangle semantics: touching edges intersect).
func (r Rect) Intersects(s Rect) bool {
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX &&
		r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Contains reports whether s lies entirely inside r (edges included).
func (r Rect) Contains(s Rect) bool {
	return r.MinX <= s.MinX && s.MaxX <= r.MaxX &&
		r.MinY <= s.MinY && s.MaxY <= r.MaxY
}

// ContainsPoint reports whether p lies inside r (edges included).
func (r Rect) ContainsPoint(p Point) bool {
	return r.MinX <= p.X && p.X <= r.MaxX && r.MinY <= p.Y && p.Y <= r.MaxY
}

// Intersection returns the overlap of r and s and whether it is non-empty.
// When the rectangles only touch, the result is a degenerate rectangle.
func (r Rect) Intersection(s Rect) (Rect, bool) {
	if !r.Intersects(s) {
		return Rect{}, false
	}
	return Rect{
		MinX: math.Max(r.MinX, s.MinX),
		MinY: math.Max(r.MinY, s.MinY),
		MaxX: math.Min(r.MaxX, s.MaxX),
		MaxY: math.Min(r.MaxY, s.MaxY),
	}, true
}

// Union returns the smallest rectangle covering both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		MinX: math.Min(r.MinX, s.MinX),
		MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX),
		MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// Expand grows r by d on every side (Minkowski sum with a 2d×2d square).
// A negative d shrinks r; the result is clamped to a degenerate rectangle
// at the center if the shrink exceeds the extent.
func (r Rect) Expand(d float64) Rect {
	out := Rect{MinX: r.MinX - d, MinY: r.MinY - d, MaxX: r.MaxX + d, MaxY: r.MaxY + d}
	if out.MinX > out.MaxX {
		c := (r.MinX + r.MaxX) / 2
		out.MinX, out.MaxX = c, c
	}
	if out.MinY > out.MaxY {
		c := (r.MinY + r.MaxY) / 2
		out.MinY, out.MaxY = c, c
	}
	return out
}

// DistToPoint returns the minimum Euclidean distance from p to r.
// It is zero when p lies inside r.
func (r Rect) DistToPoint(p Point) float64 {
	dx := math.Max(0, math.Max(r.MinX-p.X, p.X-r.MaxX))
	dy := math.Max(0, math.Max(r.MinY-p.Y, p.Y-r.MaxY))
	return math.Hypot(dx, dy)
}

// MaxDistToPoint returns the maximum Euclidean distance from p to any
// point of r — the distance to the farthest corner. Together with
// DistToPoint it brackets every point of r: if MaxDistToPoint(p) <= eps,
// the whole rectangle (and any rectangle contained in it) lies within eps
// of p.
func (r Rect) MaxDistToPoint(p Point) float64 {
	dx := math.Max(p.X-r.MinX, r.MaxX-p.X)
	dy := math.Max(p.Y-r.MinY, r.MaxY-p.Y)
	return math.Hypot(dx, dy)
}

// MinDist returns the minimum Euclidean distance between r and s.
// It is zero when the rectangles intersect.
func (r Rect) MinDist(s Rect) float64 {
	dx := math.Max(0, math.Max(s.MinX-r.MaxX, r.MinX-s.MaxX))
	dy := math.Max(0, math.Max(s.MinY-r.MaxY, r.MinY-s.MaxY))
	return math.Hypot(dx, dy)
}

// WithinDist reports whether the minimum distance between r and s is at
// most eps. It avoids the square root of MinDist.
func (r Rect) WithinDist(s Rect, eps float64) bool {
	dx := math.Max(0, math.Max(s.MinX-r.MaxX, r.MinX-s.MaxX))
	dy := math.Max(0, math.Max(s.MinY-r.MaxY, r.MinY-s.MaxY))
	return dx*dx+dy*dy <= eps*eps
}

// Quadrant returns the i-th quadrant of r for i in [0,4), ordered
// row-major from the bottom-left: 0=SW, 1=SE, 2=NW, 3=NE.
func (r Rect) Quadrant(i int) Rect {
	cx, cy := (r.MinX+r.MaxX)/2, (r.MinY+r.MaxY)/2
	switch i {
	case 0:
		return Rect{MinX: r.MinX, MinY: r.MinY, MaxX: cx, MaxY: cy}
	case 1:
		return Rect{MinX: cx, MinY: r.MinY, MaxX: r.MaxX, MaxY: cy}
	case 2:
		return Rect{MinX: r.MinX, MinY: cy, MaxX: cx, MaxY: r.MaxY}
	case 3:
		return Rect{MinX: cx, MinY: cy, MaxX: r.MaxX, MaxY: r.MaxY}
	}
	panic(fmt.Sprintf("geom: quadrant index %d out of range [0,4)", i))
}

// Quadrants returns the four quadrants of r in the order SW, SE, NW, NE.
func (r Rect) Quadrants() [4]Rect {
	return [4]Rect{r.Quadrant(0), r.Quadrant(1), r.Quadrant(2), r.Quadrant(3)}
}

// Grid partitions r into a regular k×k grid and returns the k² cells in
// row-major order starting from the bottom-left cell. Cell boundaries are
// computed from exact fractions of the extents so that adjacent cells
// share edges without gaps. Grid panics if k < 1.
func (r Rect) Grid(k int) []Rect {
	if k < 1 {
		panic(fmt.Sprintf("geom: grid dimension %d < 1", k))
	}
	cells := make([]Rect, 0, k*k)
	w, h := r.Width(), r.Height()
	for row := 0; row < k; row++ {
		y0 := r.MinY + h*float64(row)/float64(k)
		y1 := r.MinY + h*float64(row+1)/float64(k)
		for col := 0; col < k; col++ {
			x0 := r.MinX + w*float64(col)/float64(k)
			x1 := r.MinX + w*float64(col+1)/float64(k)
			cells = append(cells, Rect{MinX: x0, MinY: y0, MaxX: x1, MaxY: y1})
		}
	}
	return cells
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.4g,%.4g]x[%.4g,%.4g]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.4g,%.4g)", p.X, p.Y) }
