package geom

// Object is a spatial object as stored by the dataset servers and
// exchanged over the wire: an opaque identifier plus its minimum bounding
// rectangle. Point datasets use degenerate MBRs.
//
// Identifiers are unique within one dataset; the join algorithms use them
// for duplicate elimination and for pairing results.
type Object struct {
	ID  uint32
	MBR Rect
}

// PointObject builds an Object with a degenerate MBR at p.
func PointObject(id uint32, p Point) Object {
	return Object{ID: id, MBR: RectFromPoint(p)}
}

// IsPoint reports whether the object's MBR is degenerate (zero extent).
func (o Object) IsPoint() bool {
	return o.MBR.MinX == o.MBR.MaxX && o.MBR.MinY == o.MBR.MaxY
}

// Center returns the centroid of the object's MBR. For point objects this
// is the point itself.
func (o Object) Center() Point { return o.MBR.Center() }

// Pair is one result of a spatial join: the identifiers of the two
// qualifying objects, R-side first.
type Pair struct {
	RID, SID uint32
}

// RefPoint returns the duplicate-avoidance reference point for a candidate
// pair of MBRs, following the reference-point technique of Dittrich and
// Seeger (ICDE 2000): the bottom-left corner of the intersection of the
// two (ε-expanded, if applicable) rectangles. A pair is reported by the
// partition that contains its reference point, and by no other partition.
//
// The boolean result is false when the rectangles do not intersect, in
// which case the pair cannot be a join candidate at all.
func RefPoint(a, b Rect) (Point, bool) {
	inter, ok := a.Intersection(b)
	if !ok {
		return Point{}, false
	}
	return Point{X: inter.MinX, Y: inter.MinY}, true
}

// RefPointWithin reports whether the reference point of the candidate pair
// (a, b) lies inside the partition window w. Join operators evaluating a
// partition w report a pair only when this holds, so that pairs found in
// several overlapping partitions are emitted exactly once.
func RefPointWithin(a, b Rect, w Rect) bool {
	p, ok := RefPoint(a, b)
	if !ok {
		return false
	}
	return w.ContainsPoint(p)
}

// RefPointEps is the distance-join generalization of RefPoint: the
// bottom-left corner of the intersection of the two MBRs each expanded by
// eps/2 — the symmetric ε/2 expansion the paper applies to partition
// cells (§3). For any pair within (box) distance eps the expanded MBRs
// intersect, and the reference point is within box-distance eps/2 of both
// objects, so the pair is always discoverable from the partition cell
// containing the point once that cell's fetch windows are expanded by
// eps/2. With eps = 0 it degenerates to RefPoint.
func RefPointEps(a, b Rect, eps float64) (Point, bool) {
	if eps > 0 {
		a = a.Expand(eps / 2)
		b = b.Expand(eps / 2)
	}
	return RefPoint(a, b)
}
