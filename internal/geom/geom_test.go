package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRNormalizesCorners(t *testing.T) {
	r := R(5, 7, 1, 2)
	want := Rect{MinX: 1, MinY: 2, MaxX: 5, MaxY: 7}
	if r != want {
		t.Fatalf("R(5,7,1,2) = %v, want %v", r, want)
	}
	if !r.Valid() {
		t.Fatalf("normalized rect reported invalid: %v", r)
	}
}

func TestRectBasics(t *testing.T) {
	r := R(0, 0, 4, 2)
	if got := r.Width(); got != 4 {
		t.Errorf("Width = %v, want 4", got)
	}
	if got := r.Height(); got != 2 {
		t.Errorf("Height = %v, want 2", got)
	}
	if got := r.Area(); got != 8 {
		t.Errorf("Area = %v, want 8", got)
	}
	if got := r.Perimeter(); got != 12 {
		t.Errorf("Perimeter = %v, want 12", got)
	}
	if got := r.Center(); got != Pt(2, 1) {
		t.Errorf("Center = %v, want (2,1)", got)
	}
}

func TestIntersectsClosedSemantics(t *testing.T) {
	a := R(0, 0, 1, 1)
	cases := []struct {
		name string
		b    Rect
		want bool
	}{
		{"overlapping", R(0.5, 0.5, 2, 2), true},
		{"edge touching", R(1, 0, 2, 1), true},
		{"corner touching", R(1, 1, 2, 2), true},
		{"disjoint", R(1.1, 1.1, 2, 2), false},
		{"contained", R(0.25, 0.25, 0.75, 0.75), true},
		{"containing", R(-1, -1, 2, 2), true},
		{"degenerate point inside", RectFromPoint(Pt(0.5, 0.5)), true},
		{"degenerate point on edge", RectFromPoint(Pt(1, 0.5)), true},
		{"degenerate point outside", RectFromPoint(Pt(1.001, 0.5)), false},
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("%s: Intersects = %v, want %v", c.name, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("%s (swapped): Intersects = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestContains(t *testing.T) {
	a := R(0, 0, 10, 10)
	if !a.Contains(R(0, 0, 10, 10)) {
		t.Error("rect should contain itself")
	}
	if !a.Contains(R(2, 2, 8, 8)) {
		t.Error("rect should contain inner rect")
	}
	if a.Contains(R(2, 2, 11, 8)) {
		t.Error("rect should not contain overflowing rect")
	}
	if !a.ContainsPoint(Pt(10, 10)) {
		t.Error("corner point should be contained")
	}
	if a.ContainsPoint(Pt(10.0001, 10)) {
		t.Error("outside point should not be contained")
	}
}

func TestIntersection(t *testing.T) {
	a := R(0, 0, 4, 4)
	b := R(2, 2, 6, 6)
	got, ok := a.Intersection(b)
	if !ok {
		t.Fatal("expected non-empty intersection")
	}
	if want := R(2, 2, 4, 4); got != want {
		t.Fatalf("Intersection = %v, want %v", got, want)
	}
	if _, ok := a.Intersection(R(5, 5, 6, 6)); ok {
		t.Fatal("expected empty intersection")
	}
	// Touching rectangles intersect in a degenerate rect.
	got, ok = a.Intersection(R(4, 0, 8, 4))
	if !ok || got.Area() != 0 || got.MinX != 4 {
		t.Fatalf("touching intersection = %v ok=%v, want degenerate at x=4", got, ok)
	}
}

func TestUnion(t *testing.T) {
	a := R(0, 0, 1, 1)
	b := R(2, 3, 4, 5)
	if got, want := a.Union(b), R(0, 0, 4, 5); got != want {
		t.Fatalf("Union = %v, want %v", got, want)
	}
}

func TestExpand(t *testing.T) {
	r := R(2, 2, 4, 4)
	if got, want := r.Expand(1), R(1, 1, 5, 5); got != want {
		t.Fatalf("Expand(1) = %v, want %v", got, want)
	}
	// Over-shrinking clamps to the center.
	got := r.Expand(-5)
	if got.Width() != 0 || got.Height() != 0 || got.Center() != Pt(3, 3) {
		t.Fatalf("Expand(-5) = %v, want degenerate at (3,3)", got)
	}
}

func TestDistToPoint(t *testing.T) {
	r := R(0, 0, 2, 2)
	cases := []struct {
		p    Point
		want float64
	}{
		{Pt(1, 1), 0},
		{Pt(2, 2), 0},
		{Pt(3, 2), 1},
		{Pt(2, 5), 3},
		{Pt(5, 6), 5}, // 3-4-5 triangle from corner (2,2)
		{Pt(-3, -4), 5},
	}
	for _, c := range cases {
		if got := r.DistToPoint(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("DistToPoint(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestMaxDistToPoint(t *testing.T) {
	r := R(0, 0, 10, 10)
	cases := []struct {
		p    Point
		want float64
	}{
		{Pt(0, 0), math.Hypot(10, 10)},   // corner: farthest is opposite corner
		{Pt(5, 5), math.Hypot(5, 5)},     // center
		{Pt(-10, 5), math.Hypot(20, 5)},  // outside left
		{Pt(5, 25), math.Hypot(5, 25)},   // outside above
		{Pt(10, 10), math.Hypot(10, 10)}, // corner
	}
	for _, tc := range cases {
		if got := r.MaxDistToPoint(tc.p); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("MaxDistToPoint(%v) = %v, want %v", tc.p, got, tc.want)
		}
		// Bracketing invariant with the minimum distance.
		if r.DistToPoint(tc.p) > r.MaxDistToPoint(tc.p) {
			t.Errorf("DistToPoint(%v) exceeds MaxDistToPoint", tc.p)
		}
	}
}

func TestMinDistAndWithinDist(t *testing.T) {
	a := R(0, 0, 1, 1)
	b := R(4, 5, 6, 7)
	want := math.Hypot(3, 4)
	if got := a.MinDist(b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("MinDist = %v, want %v", got, want)
	}
	if !a.WithinDist(b, 5) {
		t.Error("WithinDist(5) should hold at exactly distance 5")
	}
	if a.WithinDist(b, 4.999) {
		t.Error("WithinDist(4.999) should not hold")
	}
	if !a.WithinDist(R(0.5, 0.5, 2, 2), 0) {
		t.Error("intersecting rects are within distance 0")
	}
}

func TestQuadrants(t *testing.T) {
	r := R(0, 0, 4, 4)
	q := r.Quadrants()
	want := [4]Rect{R(0, 0, 2, 2), R(2, 0, 4, 2), R(0, 2, 2, 4), R(2, 2, 4, 4)}
	if q != want {
		t.Fatalf("Quadrants = %v, want %v", q, want)
	}
	var area float64
	for _, c := range q {
		area += c.Area()
	}
	if area != r.Area() {
		t.Fatalf("quadrant areas sum to %v, want %v", area, r.Area())
	}
}

func TestQuadrantPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for quadrant index 4")
		}
	}()
	R(0, 0, 1, 1).Quadrant(4)
}

func TestGrid(t *testing.T) {
	r := R(0, 0, 3, 3)
	cells := r.Grid(3)
	if len(cells) != 9 {
		t.Fatalf("Grid(3) returned %d cells, want 9", len(cells))
	}
	// First cell is bottom-left, last is top-right.
	if cells[0] != R(0, 0, 1, 1) {
		t.Errorf("first cell = %v, want [0,1]x[0,1]", cells[0])
	}
	if cells[8] != R(2, 2, 3, 3) {
		t.Errorf("last cell = %v, want [2,3]x[2,3]", cells[8])
	}
	var area float64
	for _, c := range cells {
		area += c.Area()
		if !r.Contains(c) {
			t.Errorf("cell %v not contained in %v", c, r)
		}
	}
	if math.Abs(area-r.Area()) > 1e-9 {
		t.Errorf("cell areas sum to %v, want %v", area, r.Area())
	}
}

func TestGridPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Grid(0)")
		}
	}()
	R(0, 0, 1, 1).Grid(0)
}

func TestGridOneIsIdentity(t *testing.T) {
	r := R(-3, 2, 7, 9)
	cells := r.Grid(1)
	if len(cells) != 1 || cells[0] != r {
		t.Fatalf("Grid(1) = %v, want [%v]", cells, r)
	}
}

func TestPointDistances(t *testing.T) {
	p, q := Pt(0, 0), Pt(3, 4)
	if got := p.DistTo(q); got != 5 {
		t.Errorf("DistTo = %v, want 5", got)
	}
	if got := p.DistSqTo(q); got != 25 {
		t.Errorf("DistSqTo = %v, want 25", got)
	}
}

// randomRect produces a modest-range valid rectangle from a rand source.
func randomRect(rnd *rand.Rand) Rect {
	x := rnd.Float64()*200 - 100
	y := rnd.Float64()*200 - 100
	return R(x, y, x+rnd.Float64()*50, y+rnd.Float64()*50)
}

func TestQuickIntersectionSymmetricAndContained(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	f := func() bool {
		a, b := randomRect(rnd), randomRect(rnd)
		i1, ok1 := a.Intersection(b)
		i2, ok2 := b.Intersection(a)
		if ok1 != ok2 || i1 != i2 {
			return false
		}
		if ok1 && (!a.Contains(i1) || !b.Contains(i1)) {
			return false
		}
		return ok1 == a.Intersects(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnionContainsBoth(t *testing.T) {
	rnd := rand.New(rand.NewSource(2))
	f := func() bool {
		a, b := randomRect(rnd), randomRect(rnd)
		u := a.Union(b)
		return u.Contains(a) && u.Contains(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMinDistConsistentWithIntersects(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	f := func() bool {
		a, b := randomRect(rnd), randomRect(rnd)
		d := a.MinDist(b)
		if a.Intersects(b) {
			return d == 0
		}
		return d > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGridPartitionCoversWithoutOverlapCounting(t *testing.T) {
	rnd := rand.New(rand.NewSource(4))
	f := func() bool {
		r := randomRect(rnd)
		if r.Area() == 0 {
			return true
		}
		k := 1 + rnd.Intn(5)
		cells := r.Grid(k)
		// Any interior sample point must fall in at least one cell, and
		// strictly interior points of cells in exactly one cell.
		for i := 0; i < 20; i++ {
			p := Pt(r.MinX+rnd.Float64()*r.Width(), r.MinY+rnd.Float64()*r.Height())
			n := 0
			for _, c := range cells {
				if c.ContainsPoint(p) {
					n++
				}
			}
			if n < 1 || n > 4 { // up to 4 on shared corners
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickExpandGrowsArea(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	f := func() bool {
		r := randomRect(rnd)
		d := rnd.Float64() * 10
		e := r.Expand(d)
		return e.Contains(r) && e.Width() >= r.Width() && e.Height() >= r.Height()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDistToPointZeroIffInside(t *testing.T) {
	rnd := rand.New(rand.NewSource(6))
	f := func() bool {
		r := randomRect(rnd)
		p := Pt(rnd.Float64()*400-200, rnd.Float64()*400-200)
		d := r.DistToPoint(p)
		if r.ContainsPoint(p) {
			return d == 0
		}
		return d > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestObjectHelpers(t *testing.T) {
	o := PointObject(7, Pt(2, 3))
	if !o.IsPoint() {
		t.Error("PointObject should be a point")
	}
	if o.Center() != Pt(2, 3) {
		t.Errorf("Center = %v, want (2,3)", o.Center())
	}
	box := Object{ID: 8, MBR: R(0, 0, 2, 2)}
	if box.IsPoint() {
		t.Error("box object should not be a point")
	}
}

func TestRefPoint(t *testing.T) {
	a := R(0, 0, 2, 2)
	b := R(1, 1, 3, 3)
	p, ok := RefPoint(a, b)
	if !ok || p != Pt(1, 1) {
		t.Fatalf("RefPoint = %v ok=%v, want (1,1) true", p, ok)
	}
	if _, ok := RefPoint(a, R(5, 5, 6, 6)); ok {
		t.Fatal("disjoint rects should have no reference point")
	}
}

func TestRefPointWithinPartitionsReportOnce(t *testing.T) {
	// A pair straddling two partitions is reported by exactly one of them.
	a := R(0.9, 0.4, 1.1, 0.6) // straddles x=1 boundary
	b := R(0.95, 0.45, 1.05, 0.55)
	left := R(0, 0, 1, 1)
	right := R(1, 0, 2, 1)
	nLeft := RefPointWithin(a, b, left)
	nRight := RefPointWithin(a, b, right)
	if nLeft == nRight {
		t.Fatalf("pair should be reported by exactly one partition, got left=%v right=%v", nLeft, nRight)
	}
}
