package core

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"math/rand"
	"sync"

	"repro/internal/geom"
)

// This file is the concurrent execution engine shared by all algorithms.
//
// The paper's device is single-threaded, but nothing in the cost model
// requires serial execution: the two servers are independent (a COUNT to R
// never depends on the reply from S), sibling partitions produced by
// recursive splitting are independent subproblems, and the device can join
// one partition's objects while the next partition is still downloading.
// The engine exploits exactly — and only — that independence:
//
//   - both() overlaps one R-side and one S-side operation (dual-radio
//     probing);
//   - fanout() runs independent sibling tasks on a bounded worker pool,
//     which also pipelines naturally: while one sibling's task is joining
//     downloaded objects on the CPU, another's is blocked on its window
//     download;
//   - the result sink and the iceberg probe ledger are mutex-protected,
//     and decision counters are atomics.
//
// Determinism is preserved by construction. The set of requests issued for
// a partition depends only on that partition (never on scheduling), every
// accumulated quantity is an order-independent sum, and pairs are sorted
// and deduplicated at result assembly — so a parallel run returns the same
// result set and meters the same byte totals as the sequential run. The
// two scheduling-sensitive exceptions are handled explicitly: UpJoin's
// random confirmation windows derive from a per-window hash instead of a
// shared RNG stream (windowRand), and iceberg bucket count-probes — whose
// bucket grouping depends on which partition first claims an object — fall
// back to sequential sibling order (fanoutSiblings).

// gate is the bounded worker pool of one run: a semaphore of
// Parallelism-1 slots for extra goroutines (the calling goroutine is the
// implicit last worker). A nil *gate means sequential execution.
type gate struct {
	slots chan struct{}
}

// newGate returns the pool for the given parallelism, or nil for
// sequential execution.
func newGate(parallelism int) *gate {
	if parallelism <= 1 {
		return nil
	}
	return &gate{slots: make(chan struct{}, parallelism-1)}
}

// parallel reports whether this run uses the concurrent engine.
func (x *exec) parallel() bool { return x.par != nil }

// both runs two independent operations, overlapping them when the engine
// is parallel and a pool slot is free; otherwise f then g sequentially.
// It returns f's error first (matching the sequential call order), then
// g's. The first failure cancels the run context, so the other operation
// is interrupted mid-round-trip instead of running to completion; the
// root-cause error is reported, not the secondary cancellation.
func (x *exec) both(f, g func() error) error {
	if x.par != nil {
		select {
		case x.par.slots <- struct{}{}:
			errc := make(chan error, 1)
			go func() {
				defer func() { <-x.par.slots }()
				err := f()
				x.fail(err)
				errc <- err
			}()
			gerr := g()
			x.fail(gerr)
			ferr := <-errc
			if ferr != nil {
				return x.cause(ferr)
			}
			return x.cause(gerr)
		default:
			// Pool saturated: run inline rather than oversubscribe.
		}
	}
	if err := f(); err != nil {
		x.fail(err)
		return x.cause(err)
	}
	if err := g(); err != nil {
		x.fail(err)
		return x.cause(err)
	}
	return nil
}

// fanout runs n independent tasks f(0..n-1). Sequentially it stops at the
// first error, exactly like the loops it replaces. In parallel it
// schedules each task on the pool when a slot is free (running it inline
// otherwise, so the caller's goroutine always contributes work and the
// engine cannot deadlock however deep the recursion), waits for all
// scheduled tasks, and returns the first error observed. The first error
// — or a cancellation of the parent context — cancels the run context:
// no further tasks start, and tasks already in flight are interrupted at
// their next round trip instead of running to completion, so fanout
// returns promptly and never leaks a worker.
func (x *exec) fanout(n int, f func(i int) error) error {
	if x.par == nil || n < 2 {
		for i := 0; i < n; i++ {
			if x.ctx.Err() != nil {
				return x.cause(x.ctx.Err())
			}
			if err := f(i); err != nil {
				x.fail(err)
				return x.cause(err)
			}
		}
		return nil
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	record := func(err error) {
		x.fail(err)
		if err != nil {
			mu.Lock()
			if first == nil {
				first = err
			}
			mu.Unlock()
		}
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return first != nil
	}
	for i := 0; i < n; i++ {
		if failed() || x.ctx.Err() != nil {
			break
		}
		i := i
		if i == n-1 {
			record(f(i))
			break
		}
		select {
		case x.par.slots <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-x.par.slots }()
				record(f(i))
			}()
		default:
			record(f(i))
		}
	}
	wg.Wait()
	if first == nil && x.ctx.Err() != nil {
		return x.cause(x.ctx.Err())
	}
	return x.cause(first)
}

// fanoutSiblings is fanout for sibling partitions. It degrades to
// sequential order for iceberg runs that combine bucket mode with
// count-probes: there, the bucket grouping of aggregate count-probes
// depends on which partition first claims each R object, so concurrent
// siblings would make the wire framing — and hence the metered bytes —
// scheduling-dependent. Iceberg bucket runs that cannot use count-probes
// (windowed, or MBR data) have no shared ledger and fan out normally.
func (x *exec) fanoutSiblings(n int, f func(i int) error) error {
	if x.spec.Kind == IcebergSemi && x.env.Model.Bucket && x.icebergCountable() {
		for i := 0; i < n; i++ {
			if x.ctx.Err() != nil {
				return x.cause(x.ctx.Err())
			}
			if err := f(i); err != nil {
				x.fail(err)
				return x.cause(err)
			}
		}
		return nil
	}
	return x.fanout(n, f)
}

// countBoth issues the two root COUNT queries of a window in parallel.
func (x *exec) countBoth(w geom.Rect) (nr, ns cnt, err error) {
	err = x.both(
		func() error {
			n, err := x.count(sideR, w)
			nr = exact(n)
			return err
		},
		func() error {
			n, err := x.count(sideS, w)
			ns = exact(n)
			return err
		},
	)
	if err == nil && x.observing() {
		x.emit(PhaseObserve, "observe/count", w, nr.n, ns.n, 2*x.bytesModel().Taq(), "")
	}
	return nr, ns, err
}

// ensureExactBoth re-counts both sides of w where the given counts are
// estimates, overlapping the two independent COUNTs.
func (x *exec) ensureExactBoth(w geom.Rect, nr, ns cnt) (rn, sn cnt, err error) {
	err = x.both(
		func() error {
			var err error
			rn, err = x.ensureExact(sideR, w, nr)
			return err
		},
		func() error {
			var err error
			sn, err = x.ensureExact(sideS, w, ns)
			return err
		},
	)
	return rn, sn, err
}

// quadrantCountsBoth gathers both sides' quadrant counts of w,
// overlapping the R-side and S-side query batches.
func (x *exec) quadrantCountsBoth(w geom.Rect, nr, ns cnt) (qr, qs [4]cnt, err error) {
	err = x.both(
		func() error {
			var err error
			qr, err = x.quadrantCounts(sideR, w, nr)
			return err
		},
		func() error {
			var err error
			qs, err = x.quadrantCounts(sideS, w, ns)
			return err
		},
	)
	if err == nil && x.observing() {
		x.emit(PhaseObserve, "observe/quadrants", w, nr.n, ns.n, 8*x.bytesModel().Taq(), "")
	}
	return qr, qs, err
}

// windowRand returns a deterministic RNG for decisions about dataset d on
// window w, derived from the run seed and the window geometry. Unlike a
// shared sequential RNG stream, the draw for a window does not depend on
// how many windows were visited before it, so randomized decisions (and
// the requests they trigger) are identical under any scheduling.
func windowRand(seed int64, d side, w geom.Rect) *rand.Rand {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(seed + 1))
	put(uint64(d))
	put(math.Float64bits(w.MinX))
	put(math.Float64bits(w.MinY))
	put(math.Float64bits(w.MaxX))
	put(math.Float64bits(w.MaxY))
	return rand.New(rand.NewSource(int64(h.Sum64())))
}
