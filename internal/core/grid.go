package core

import (
	"context"

	"repro/internal/geom"
)

// Grid is the partition-and-prune baseline of §3: the space is divided
// into a regular K×K grid; for every cell a COUNT query is posted to both
// servers, empty cells are pruned, and the rest are joined on the device
// (splitting recursively when a cell does not fit in memory). It is
// oblivious to data distribution and never considers NLSJ.
type Grid struct {
	// K is the grid dimension; 0 means the default of 4.
	K int
}

// Name implements Algorithm.
func (g Grid) Name() string { return "grid" }

// Run implements Algorithm.
func (g Grid) Run(ctx context.Context, env *Env, spec Spec) (*Result, error) {
	k := g.K
	if k <= 0 {
		k = 4
	}
	x, err := newExec(ctx, env, spec, "grid")
	if err != nil {
		return nil, err
	}
	defer x.close()
	cells := x.window.Grid(k)
	// Both paths run the same two-phase graph — a COUNT sweep that
	// observes every cell, then a transfer phase over the surviving cells
	// — differing only in how the count queries are framed (individual
	// frames vs MsgBatch envelopes).
	if x.batching() {
		err = gridBatched(x, cells)
	} else {
		err = gridSweep(x, cells)
	}
	if err != nil {
		return nil, err
	}
	return x.finish(), nil
}

// gridSweep is the unbatched two-phase grid. Phase one observes: one R
// COUNT per cell, then one S COUNT per cell R left non-empty — exactly
// the request set of the historical per-cell loop (the S count was always
// conditional on the R count), so the metered totals are unchanged; only
// the order moves, and byte accounting is order-independent. Phase two
// transfers: every surviving cell joins via doHBSJ. The seam between the
// phases is what the online planner observes and resumes from.
func gridSweep(x *exec, cells []geom.Rect) error {
	nr := make([]int, len(cells))
	err := x.fanout(len(cells), func(i int) error {
		n, err := x.count(sideR, cells[i])
		if err != nil {
			return err
		}
		nr[i] = n
		return nil
	})
	if err != nil {
		return err
	}
	var alive []int
	for i, n := range nr {
		if n == 0 {
			x.dec.pruned.Add(1)
		} else {
			alive = append(alive, i)
		}
	}
	x.emit(PhaseObserve, "observe/grid-counts-r", x.window, 0, 0,
		float64(len(cells))*x.bytesModel().Taq(), "")
	if len(alive) == 0 {
		return nil
	}
	ns := make([]int, len(alive))
	err = x.fanout(len(alive), func(i int) error {
		n, err := x.count(sideS, cells[alive[i]])
		if err != nil {
			return err
		}
		ns[i] = n
		return nil
	})
	if err != nil {
		return err
	}
	x.emit(PhaseObserve, "observe/grid-counts-s", x.window, 0, 0,
		float64(len(alive))*x.bytesModel().Taq(), "")
	return x.fanoutSiblings(len(alive), func(i int) error {
		if ns[i] == 0 {
			x.dec.pruned.Add(1)
			return nil
		}
		return x.doHBSJ(cells[alive[i]], exact(nr[alive[i]]), exact(ns[i]), 1)
	})
}

// gridBatched issues exactly the COUNT query set of the sequential grid
// — every cell's R count, then the S count of each cell R left non-empty
// — but multiplexed phase by phase: all R counts coalesce into
// ⌈cells/BatchSize⌉ envelopes, then the surviving cells' S counts, then
// the surviving cells join on the worker pool. On an RTT-bearing link
// this turns the K²(+) sequential count round trips into a handful.
func gridBatched(x *exec, cells []geom.Rect) error {
	nr, err := x.batchCounts(sideR, cells)
	if err != nil {
		return err
	}
	var alive []int
	for i, n := range nr {
		if n == 0 {
			x.dec.pruned.Add(1)
		} else {
			alive = append(alive, i)
		}
	}
	if len(alive) == 0 {
		return nil
	}
	aliveCells := make([]geom.Rect, len(alive))
	for i, ci := range alive {
		aliveCells[i] = cells[ci]
	}
	ns, err := x.batchCounts(sideS, aliveCells)
	if err != nil {
		return err
	}
	return x.fanoutSiblings(len(alive), func(i int) error {
		if ns[i] == 0 {
			x.dec.pruned.Add(1)
			return nil
		}
		return x.doHBSJ(aliveCells[i], exact(nr[alive[i]]), exact(ns[i]), 1)
	})
}
