package core

import "repro/internal/geom"

// Grid is the partition-and-prune baseline of §3: the space is divided
// into a regular K×K grid; for every cell a COUNT query is posted to both
// servers, empty cells are pruned, and the rest are joined on the device
// (splitting recursively when a cell does not fit in memory). It is
// oblivious to data distribution and never considers NLSJ.
type Grid struct {
	// K is the grid dimension; 0 means the default of 4.
	K int
}

// Name implements Algorithm.
func (g Grid) Name() string { return "grid" }

// Run implements Algorithm.
func (g Grid) Run(env *Env, spec Spec) (*Result, error) {
	k := g.K
	if k <= 0 {
		k = 4
	}
	x, err := newExec(env, spec)
	if err != nil {
		return nil, err
	}
	r0, s0 := env.Usage()
	for _, cell := range x.window.Grid(k) {
		if err := gridCell(x, cell); err != nil {
			return nil, err
		}
	}
	res := x.result()
	res.Stats = env.statsSince(r0, s0, x.dec)
	return res, nil
}

func gridCell(x *exec, w geom.Rect) error {
	nr, err := x.count(sideR, w)
	if err != nil {
		return err
	}
	if nr == 0 {
		x.dec.pruned++
		return nil
	}
	ns, err := x.count(sideS, w)
	if err != nil {
		return err
	}
	if ns == 0 {
		x.dec.pruned++
		return nil
	}
	// doHBSJ splits recursively (with pruning) when the cell exceeds the
	// device buffer.
	return x.doHBSJ(w, exact(nr), exact(ns), 1)
}
