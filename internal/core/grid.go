package core

import (
	"context"

	"repro/internal/geom"
)

// Grid is the partition-and-prune baseline of §3: the space is divided
// into a regular K×K grid; for every cell a COUNT query is posted to both
// servers, empty cells are pruned, and the rest are joined on the device
// (splitting recursively when a cell does not fit in memory). It is
// oblivious to data distribution and never considers NLSJ.
type Grid struct {
	// K is the grid dimension; 0 means the default of 4.
	K int
}

// Name implements Algorithm.
func (g Grid) Name() string { return "grid" }

// Run implements Algorithm.
func (g Grid) Run(ctx context.Context, env *Env, spec Spec) (*Result, error) {
	k := g.K
	if k <= 0 {
		k = 4
	}
	x, err := newExec(ctx, env, spec)
	if err != nil {
		return nil, err
	}
	defer x.close()
	r0, s0 := env.Usage()
	cells := x.window.Grid(k)
	// Grid cells are independent subproblems: the worker pool processes
	// them concurrently, overlapping one cell's download/join with its
	// neighbours' COUNT probes. A batching run multiplexes the COUNT
	// phases instead.
	if x.batching() {
		err = gridBatched(x, cells)
	} else {
		err = x.fanoutSiblings(len(cells), func(i int) error {
			return gridCell(x, cells[i])
		})
	}
	if err != nil {
		return nil, err
	}
	res := x.result()
	res.Stats = env.statsSince(r0, s0, &x.dec)
	return res, nil
}

func gridCell(x *exec, w geom.Rect) error {
	// The S-side COUNT is skipped when R is empty, so the two probes stay
	// sequential within a cell — parallelizing them would issue requests
	// the sequential plan avoids, breaking byte-for-byte equivalence.
	nr, err := x.count(sideR, w)
	if err != nil {
		return err
	}
	if nr == 0 {
		x.dec.pruned.Add(1)
		return nil
	}
	ns, err := x.count(sideS, w)
	if err != nil {
		return err
	}
	if ns == 0 {
		x.dec.pruned.Add(1)
		return nil
	}
	// doHBSJ splits recursively (with pruning) when the cell exceeds the
	// device buffer.
	return x.doHBSJ(w, exact(nr), exact(ns), 1)
}

// gridBatched issues exactly the COUNT query set of the sequential grid
// — every cell's R count, then the S count of each cell R left non-empty
// — but multiplexed phase by phase: all R counts coalesce into
// ⌈cells/BatchSize⌉ envelopes, then the surviving cells' S counts, then
// the surviving cells join on the worker pool. On an RTT-bearing link
// this turns the K²(+) sequential count round trips into a handful.
func gridBatched(x *exec, cells []geom.Rect) error {
	nr, err := x.batchCounts(sideR, cells)
	if err != nil {
		return err
	}
	var alive []int
	for i, n := range nr {
		if n == 0 {
			x.dec.pruned.Add(1)
		} else {
			alive = append(alive, i)
		}
	}
	if len(alive) == 0 {
		return nil
	}
	aliveCells := make([]geom.Rect, len(alive))
	for i, ci := range alive {
		aliveCells[i] = cells[ci]
	}
	ns, err := x.batchCounts(sideS, aliveCells)
	if err != nil {
		return err
	}
	return x.fanoutSiblings(len(alive), func(i int) error {
		if ns[i] == 0 {
			x.dec.pruned.Add(1)
			return nil
		}
		return x.doHBSJ(aliveCells[i], exact(nr[alive[i]]), exact(ns[i]), 1)
	})
}
