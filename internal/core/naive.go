package core

import (
	"context"

	"repro/internal/geom"
)

// Naive downloads both datasets entirely and joins them on the device —
// the strawman of §3. It respects the buffer by recursively splitting
// windows that do not fit, but performs no pruning: window queries are
// issued for every partition even when one side is empty, so the
// transfer cost is always at least the size of both datasets.
type Naive struct{}

// Name implements Algorithm.
func (Naive) Name() string { return "naive" }

// Run implements Algorithm.
func (Naive) Run(ctx context.Context, env *Env, spec Spec) (*Result, error) {
	x, err := newExec(ctx, env, spec, "naive")
	if err != nil {
		return nil, err
	}
	defer x.close()
	if err := naiveWindow(x, x.window, 0); err != nil {
		return nil, err
	}
	return x.finish(), nil
}

func naiveWindow(x *exec, w geom.Rect, depth int) error {
	// COUNT queries are needed for memory safety only (deciding whether
	// the downloads fit); they never prune. Both sides are always counted,
	// so the two queries overlap under a parallel environment.
	cr, cs, err := x.countBoth(w)
	if err != nil {
		return err
	}
	nr, ns := cr.n, cs.n
	if !x.env.Device.CanHold(nr+ns) && !x.splittable(w, depth) {
		// Degenerate window denser than the buffer: stream probes to stay
		// memory-honest instead of overflowing the device.
		outer := sideS
		if nr < ns {
			outer = sideR
		}
		return x.doNLSJ(w, outer, exact(nr), exact(ns))
	}
	if !x.env.Device.CanHold(nr+ns) && depth < maxDepth {
		x.dec.repart.Add(1)
		quads := w.Quadrants()
		return x.fanoutSiblings(4, func(i int) error {
			return naiveWindow(x, quads[i], depth+1)
		})
	}
	// Leaf: download both windows unconditionally (no emptiness pruning)
	// and join on the device.
	x.dec.hbsj.Add(1)
	var robjs, sobjs []geom.Object
	err = x.both(
		func() error {
			var err error
			robjs, err = x.env.R.Window(x.ctx, x.fetchWindow(sideR, w))
			return err
		},
		func() error {
			var err error
			sobjs, err = x.env.S.Window(x.ctx, x.fetchWindow(sideS, w))
			return err
		},
	)
	if err != nil {
		return err
	}
	x.joinLocal(robjs, sobjs)
	return nil
}
