package core

import (
	"context"
	"fmt"
	"os"
	"testing"

	"repro/internal/dataset"
)

func TestProbeShapes(t *testing.T) {
	if os.Getenv("TRACE_DEBUG") == "" {
		t.Skip("debug only; set TRACE_DEBUG=1")
	}
	for _, k := range []int{2, 4, 16, 128} {
		robjs := dataset.GaussianClusters(1000, k, 150, dataset.World, 1002)
		sobjs := dataset.GaussianClusters(1000, k, 150, dataset.World, 1003)
		for _, alg := range []Algorithm{MobiJoin{}, UpJoin{}, SrJoin{}} {
			env := testEnv(t, robjs, sobjs, 800)
			env.Window = dataset.World
			res, err := alg.Run(context.Background(), env, Spec{Kind: Distance, Eps: 75})
			if err != nil {
				t.Fatal(err)
			}
			st := res.Stats
			fmt.Printf("k=%3d %-9s bytes=%7d agg=%4d hbsj=%3d nlsj=%3d repart=%3d pruned=%4d pairs=%5d Rdown=%7d Sdown=%7d up=%6d\n",
				k, alg.Name(), st.TotalBytes(), st.AggQueries, st.HBSJ, st.NLSJ, st.Repartitions, st.Pruned, len(res.Pairs),
				st.R.DownWireBytes, st.S.DownWireBytes, st.R.UpWireBytes+st.S.UpWireBytes)
		}
	}
}
