package core

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/geom"
)

// This file is the observable-phase seam of the execution engine. Every
// algorithm's run decomposes into the same three phase families —
// observation (COUNT/INFO statistics), planning (cost-model decisions),
// and transfer (object movement) — and the engine reports each phase
// boundary to Env.Observer as a PhaseEvent carrying both the model's
// estimate and the bytes actually metered so far. The online planner
// (internal/plan, driven by the Auto algorithm) consumes the same seam:
// observation phases feed it live statistics, and because their results
// (counts, quadrant counts, downloaded outer objects) are returned as
// values rather than buried in a monolithic Run, a later phase can
// resume from them after a re-plan instead of re-paying for them.

// PhaseKind classifies a phase boundary.
type PhaseKind int

// Phase kinds.
const (
	// PhaseObserve is a statistics phase: COUNT/RANGE-COUNT/INFO queries
	// whose answers feed the cost model, never the result.
	PhaseObserve PhaseKind = iota
	// PhasePlan is a planning decision: no traffic of its own, records the
	// operator chosen and the estimate it was chosen on.
	PhasePlan
	// PhaseTransfer is an object-moving phase: window downloads, probe
	// streams, semi-join relays.
	PhaseTransfer
	// PhaseReplan marks a revision of an earlier plan: a repartition forced
	// by the buffer, or the online planner switching operators mid-join
	// after an observation contradicted the estimate it committed on.
	PhaseReplan
)

// String implements fmt.Stringer.
func (k PhaseKind) String() string {
	switch k {
	case PhaseObserve:
		return "observe"
	case PhasePlan:
		return "plan"
	case PhaseTransfer:
		return "transfer"
	case PhaseReplan:
		return "replan"
	default:
		return fmt.Sprintf("PhaseKind(%d)", int(k))
	}
}

// PhaseEvent is one phase boundary of a run, reported to Env.Observer.
type PhaseEvent struct {
	// Algorithm is the running algorithm's name.
	Algorithm string
	// Kind classifies the phase.
	Kind PhaseKind
	// Name identifies the phase within its kind, e.g. "observe/quadrants"
	// or "transfer/nlsj-probes".
	Name string
	// Window is the partition the phase acted on.
	Window geom.Rect
	// NR and NS are the window's per-side counts as known at emission
	// (zero when unknown).
	NR, NS int
	// EstBytes is the cost model's unpriced wire-byte estimate for the
	// phase (Eq. 1–8), zero when no estimate applies.
	EstBytes float64
	// WireBytes is the run's metered wire bytes over both links at
	// emission, so consecutive events bracket each phase's real cost.
	WireBytes int
	// Note carries free-form detail (chosen operator, re-plan reason).
	Note string
}

// PhaseReport is one phase of an Explain: the model's estimate against
// the bytes the meter recorded while the phase ran.
type PhaseReport struct {
	Name      string
	Kind      PhaseKind
	EstBytes  float64
	WireBytes int
	Note      string
}

// CandidateReport is one scored operator of the online planner's
// candidate table, retained for Explain.
type CandidateReport struct {
	Op       string
	Cost     float64
	Bytes    float64
	Queries  float64
	Feasible bool
	Note     string
}

// Explain is the planner's account of an adaptive run: the candidate
// table the plan was chosen from, the phases executed, and any mid-join
// re-plans. Attached to Result by the Auto algorithm (nil otherwise).
type Explain struct {
	// Algorithm is the adaptive algorithm's name ("auto").
	Algorithm string
	// Chosen is the operator the plan committed to (the final one, after
	// any re-plan).
	Chosen string
	// Replans counts mid-join operator switches.
	Replans int
	// Phases lists the executed phases in emission order. EstBytes is the
	// model's estimate for the phase; WireBytes is the run's cumulative
	// metered total at emission, so consecutive entries bracket each
	// phase's real cost.
	Phases []PhaseReport
	// PhasesDropped counts phase events beyond the log cap (deep
	// recursions emit one transfer per leaf).
	PhasesDropped int
	// Candidates is the scored operator table of the (last) plan phase,
	// cheapest first.
	Candidates []CandidateReport
}

// Render writes the explain report as fixed-width text.
func (e *Explain) Render(w interface{ Write([]byte) (int, error) }) {
	fmt.Fprintf(w, "plan: %s chose %s (%d re-plan(s))\n", e.Algorithm, e.Chosen, e.Replans)
	if len(e.Candidates) > 0 {
		fmt.Fprintf(w, "  %-12s %12s %12s %9s  %s\n", "candidate", "est cost", "est bytes", "queries", "note")
		for _, c := range e.Candidates {
			feas := ""
			if !c.Feasible {
				feas = " (infeasible)"
			}
			fmt.Fprintf(w, "  %-12s %12.0f %12.0f %9.0f  %s%s\n", c.Op, c.Cost, c.Bytes, c.Queries, c.Note, feas)
		}
	}
	if len(e.Phases) > 0 {
		fmt.Fprintf(w, "  %-28s %12s %12s %12s  %s\n", "phase", "est bytes", "phase wire", "total wire", "note")
		prev := 0
		for _, p := range e.Phases {
			est := "-"
			if p.EstBytes > 0 {
				est = fmt.Sprintf("%.0f", p.EstBytes)
			}
			fmt.Fprintf(w, "  %-28s %12s %12d %12d  %s\n", p.Name, est, p.WireBytes-prev, p.WireBytes, p.Note)
			prev = p.WireBytes
		}
		if e.PhasesDropped > 0 {
			fmt.Fprintf(w, "  ... %d further phase event(s) beyond the log cap\n", e.PhasesDropped)
		}
	}
}

// observing reports whether this run has a phase observer attached (or an
// explain report being assembled).
func (x *exec) observing() bool { return x.env.Observer != nil || x.explain != nil }

// wireSince returns the run's metered wire bytes over both links so far.
// Meters may still be hot when called mid-phase under parallelism; the
// value is a monotone snapshot, exact at phase boundaries where the
// engine is quiescent.
func (x *exec) wireSince() int {
	r, s := x.env.Usage()
	return r.WireBytes - x.r0.WireBytes + s.WireBytes - x.s0.WireBytes
}

// maxExplainPhases caps the phase log of an Explain: deep recursions emit
// one transfer event per leaf partition, and an unbounded log would turn
// the diagnostic into the memory hog.
const maxExplainPhases = 96

// emit reports one phase boundary to the observer and, on adaptive runs,
// appends it to the Explain's phase log. A no-op for fixed algorithms
// without an observer, so they pay nothing for the seam.
func (x *exec) emit(kind PhaseKind, name string, w geom.Rect, nr, ns int, est float64, note string) {
	if x.env.Observer == nil && x.explain == nil {
		return
	}
	wire := x.wireSince()
	if x.env.Observer != nil {
		x.env.Observer(PhaseEvent{
			Algorithm: x.alg,
			Kind:      kind,
			Name:      name,
			Window:    w,
			NR:        nr,
			NS:        ns,
			EstBytes:  est,
			WireBytes: wire,
			Note:      note,
		})
	}
	if x.explain != nil {
		x.explainMu.Lock()
		if len(x.explain.Phases) < maxExplainPhases {
			x.explain.Phases = append(x.explain.Phases, PhaseReport{
				Name: name, Kind: kind, EstBytes: est, WireBytes: wire, Note: note,
			})
		} else {
			x.explain.PhasesDropped++
		}
		x.explainMu.Unlock()
	}
}

// bytesModel returns the run's cost model with unit tariffs: estimates in
// plain wire bytes, directly comparable to the meter.
func (x *exec) bytesModel() costmodel.Params {
	p := x.env.Model
	p.PriceR, p.PriceS = 1, 1
	return p
}
