package core

import (
	"context"
	"fmt"
	"os"
	"testing"

	"repro/internal/dataset"
)

func TestTraceRailwayDebug(t *testing.T) {
	if os.Getenv("TRACE_DEBUG") == "" {
		t.Skip("debug only")
	}
	rail := dataset.Railway(dataset.DefaultRailway(), 1)
	sobjs := dataset.GaussianClusters(1000, 8, 250, dataset.World, 3)
	env := testEnv(t, rail, sobjs, 800)
	env.Window = dataset.World
	env.Model.Bucket = true
	lines := 0
	env.Trace = func(f string, a ...any) {
		lines++
		if lines < 80 {
			fmt.Printf(f+"\n", a...)
		}
	}
	res, err := UpJoin{}.Run(context.Background(), env, Spec{Kind: Distance, Eps: 25})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	fmt.Printf("TOTAL bytes=%d agg=%d hbsj=%d nlsj=%d repart=%d pruned=%d pairs=%d Rdown=%d Sdown=%d up=%d\n",
		st.TotalBytes(), st.AggQueries, st.HBSJ, st.NLSJ, st.Repartitions, st.Pruned, len(res.Pairs),
		st.R.DownWireBytes, st.S.DownWireBytes, st.R.UpWireBytes+st.S.UpWireBytes)
}
