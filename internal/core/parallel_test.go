package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/costmodel"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/netsim"
	"repro/internal/server"
)

// newTestExec builds a bare exec (no environment) for engine-level tests.
func newTestExec(par *gate) *exec {
	x := &exec{par: par}
	x.ctx, x.cancelRun = context.WithCancel(context.Background())
	return x
}

// testEnvParallel is testEnv with the concurrent engine enabled: the
// in-process servers get one worker per unit of parallelism and the
// environment carries the knob.
func testEnvParallel(t *testing.T, robjs, sobjs []geom.Object, buffer, parallelism int, opts ...server.Option) *Env {
	t.Helper()
	workers := parallelism
	if workers < 1 {
		workers = 1
	}
	trR := netsim.ServeParallel(server.New("R", robjs, opts...), workers)
	trS := netsim.ServeParallel(server.New("S", sobjs, opts...), workers)
	r := mustRemote(t, "R", trR, netsim.DefaultLink(), 1)
	s := mustRemote(t, "S", trS, netsim.DefaultLink(), 1)
	t.Cleanup(func() { r.Close(); s.Close() })
	env := NewEnv(r, s, client.Device{BufferObjects: buffer}, costmodel.Default(), geom.Rect{})
	env.Parallelism = parallelism
	return env
}

// runBoth executes alg sequentially and with Parallelism 4 over identical
// servers and returns both results.
func runBoth(t *testing.T, alg Algorithm, spec Spec, robjs, sobjs []geom.Object, buffer int, bucket bool) (seq, par *Result) {
	t.Helper()
	envSeq := testEnvParallel(t, robjs, sobjs, buffer, 1)
	envSeq.Model.Bucket = bucket
	envSeq.Seed = 3
	seq, err := alg.Run(context.Background(), envSeq, spec)
	if err != nil {
		t.Fatalf("%s sequential: %v", alg.Name(), err)
	}
	envPar := testEnvParallel(t, robjs, sobjs, buffer, 4)
	envPar.Model.Bucket = bucket
	envPar.Seed = 3
	par, err = alg.Run(context.Background(), envPar, spec)
	if err != nil {
		t.Fatalf("%s parallel: %v", alg.Name(), err)
	}
	return seq, par
}

// TestParallelMatchesSequential is the engine's core guarantee: with
// Parallelism 4, every algorithm returns exactly the sequential result
// and meters exactly the sequential byte count, for every join kind and
// for bucket submission. Run under -race this also exercises the sink,
// ledger, and meter synchronization.
func TestParallelMatchesSequential(t *testing.T) {
	robjs := dataset.GaussianClusters(600, 4, 300, dataset.World, 201)
	sobjs := dataset.GaussianClusters(600, 4, 300, dataset.World, 202)
	specs := []struct {
		name   string
		spec   Spec
		bucket bool
	}{
		{"distance", Spec{Kind: Distance, Eps: 120}, false},
		{"distance-bucket", Spec{Kind: Distance, Eps: 120}, true},
		{"intersection", Spec{Kind: Intersection}, false},
		{"iceberg", Spec{Kind: IcebergSemi, Eps: 200, MinMatches: 3}, false},
		{"iceberg-bucket", Spec{Kind: IcebergSemi, Eps: 200, MinMatches: 3}, true},
	}
	for _, sc := range specs {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			for _, alg := range allAlgorithms() {
				for _, buffer := range []int{150, 800} {
					seq, par := runBoth(t, alg, sc.spec, robjs, sobjs, buffer, sc.bucket)
					if !pairSetsEqual(seq.Pairs, par.Pairs) {
						t.Fatalf("%s buffer=%d: parallel %d pairs, sequential %d",
							alg.Name(), buffer, len(par.Pairs), len(seq.Pairs))
					}
					if len(seq.Objects) != len(par.Objects) {
						t.Fatalf("%s buffer=%d: parallel %d objects, sequential %d",
							alg.Name(), buffer, len(par.Objects), len(seq.Objects))
					}
					for i := range seq.Objects {
						if seq.Objects[i].ID != par.Objects[i].ID {
							t.Fatalf("%s buffer=%d: object %d differs", alg.Name(), buffer, i)
						}
					}
					if seq.Stats.TotalBytes() != par.Stats.TotalBytes() {
						t.Fatalf("%s buffer=%d: parallel metered %d bytes, sequential %d",
							alg.Name(), buffer, par.Stats.TotalBytes(), seq.Stats.TotalBytes())
					}
					if seq.Stats.TotalQueries() != par.Stats.TotalQueries() {
						t.Fatalf("%s buffer=%d: parallel %d queries, sequential %d",
							alg.Name(), buffer, par.Stats.TotalQueries(), seq.Stats.TotalQueries())
					}
					if seq.Stats.AggQueries != par.Stats.AggQueries {
						t.Fatalf("%s buffer=%d: parallel %d aggregate queries, sequential %d",
							alg.Name(), buffer, par.Stats.AggQueries, seq.Stats.AggQueries)
					}
				}
			}
		})
	}
}

// TestParallelMatchesOracle pins the parallel engine directly against the
// local oracle on a workload whose small buffer forces deep recursive
// splitting (lots of sibling fan-out).
func TestParallelMatchesOracle(t *testing.T) {
	robjs := dataset.GaussianClusters(500, 8, 200, dataset.World, 211)
	sobjs := dataset.GaussianClusters(500, 8, 200, dataset.World, 212)
	spec := Spec{Kind: Distance, Eps: 100}
	want := Oracle(robjs, sobjs, spec, dataset.Bounds(robjs).Union(dataset.Bounds(sobjs)))
	for _, alg := range allAlgorithms() {
		env := testEnvParallel(t, robjs, sobjs, 100, 8)
		got, err := alg.Run(context.Background(), env, spec)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if !pairSetsEqual(got.Pairs, want.Pairs) {
			t.Fatalf("%s parallel: %d pairs, oracle %d", alg.Name(), len(got.Pairs), len(want.Pairs))
		}
	}
}

// TestParallelSemiJoin covers the cooperative comparator under the
// concurrent engine (its three protocol hops are inherently sequential,
// but the environment preparation overlaps its INFO round trips).
func TestParallelSemiJoin(t *testing.T) {
	robjs := dataset.Uniform(200, dataset.World, 221)
	sobjs := dataset.Uniform(300, dataset.World, 222)
	spec := Spec{Kind: Distance, Eps: 150}
	want := Oracle(robjs, sobjs, spec, dataset.World)
	env := testEnvParallel(t, robjs, sobjs, 800, 4, server.PublishIndex())
	env.Window = dataset.World
	got, err := SemiJoin{}.Run(context.Background(), env, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !pairSetsEqual(got.Pairs, want.Pairs) {
		t.Fatalf("semiJoin parallel: %d pairs, oracle %d", len(got.Pairs), len(want.Pairs))
	}
}

// TestParallelOverTCP runs the concurrent engine over the pooled TCP
// transport and checks byte-count parity with the channel transport.
func TestParallelOverTCP(t *testing.T) {
	robjs := dataset.GaussianClusters(200, 4, 200, dataset.World, 231)
	sobjs := dataset.GaussianClusters(200, 4, 200, dataset.World, 232)
	spec := Spec{Kind: Distance, Eps: 120}

	envCh := testEnvParallel(t, robjs, sobjs, 300, 4)
	envCh.Seed = 7
	a, err := UpJoin{}.Run(context.Background(), envCh, spec)
	if err != nil {
		t.Fatal(err)
	}

	srvR, err := netsim.ListenAndServe("127.0.0.1:0", server.New("R", robjs))
	if err != nil {
		t.Fatal(err)
	}
	defer srvR.Close()
	srvS, err := netsim.ListenAndServe("127.0.0.1:0", server.New("S", sobjs))
	if err != nil {
		t.Fatal(err)
	}
	defer srvS.Close()
	trR, err := netsim.DialTCPPool(srvR.Addr(), 4)
	if err != nil {
		t.Fatal(err)
	}
	trS, err := netsim.DialTCPPool(srvS.Addr(), 4)
	if err != nil {
		t.Fatal(err)
	}
	r := mustRemote(t, "R", trR, netsim.DefaultLink(), 1)
	s := mustRemote(t, "S", trS, netsim.DefaultLink(), 1)
	defer r.Close()
	defer s.Close()
	env := NewEnv(r, s, client.Device{BufferObjects: 300}, costmodel.Default(), geom.Rect{})
	env.Seed = 7
	env.Parallelism = 4
	b, err := UpJoin{}.Run(context.Background(), env, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !pairSetsEqual(a.Pairs, b.Pairs) {
		t.Fatalf("TCP parallel: %d pairs, channel %d", len(b.Pairs), len(a.Pairs))
	}
	if a.Stats.TotalBytes() != b.Stats.TotalBytes() {
		t.Fatalf("transport changed accounting: channel %d vs TCP %d",
			a.Stats.TotalBytes(), b.Stats.TotalBytes())
	}
}

// TestWindowRandDeterministic pins the scheduling-independence of
// UpJoin's randomized confirmation probes: the RNG for a window depends
// only on (seed, side, window), never on visit order.
func TestWindowRandDeterministic(t *testing.T) {
	w := geom.R(100, 200, 900, 1000)
	a := randomQuadrantWindow(windowRand(3, sideR, w), w)
	b := randomQuadrantWindow(windowRand(3, sideR, w), w)
	if a != b {
		t.Fatalf("same (seed, side, window) must give the same probe: %v vs %v", a, b)
	}
	if c := randomQuadrantWindow(windowRand(3, sideS, w), w); c == a {
		t.Fatal("different sides should (generically) give different probes")
	}
	if d := randomQuadrantWindow(windowRand(4, sideR, w), w); d == a {
		t.Fatal("different seeds should (generically) give different probes")
	}
}

// TestFanoutBounded checks the pool never runs more than Parallelism
// tasks at once and degrades to pure sequential order when nil. Each
// task dwells briefly so overlap actually occurs: the bound must be hit
// (proving concurrency happens) but never exceeded.
func TestFanoutBounded(t *testing.T) {
	x := newTestExec(newGate(3))
	var (
		mu      sync.Mutex
		active  int
		maxSeen int
	)
	err := x.fanout(64, func(int) error {
		mu.Lock()
		active++
		if active > maxSeen {
			maxSeen = active
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		mu.Lock()
		active--
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxSeen > 3 {
		t.Fatalf("pool of 3 ran %d tasks at once", maxSeen)
	}
	if maxSeen < 3 {
		t.Fatalf("pool of 3 never reached 3 concurrent tasks (max %d); no overlap happened", maxSeen)
	}

	var order []int
	xs := newTestExec(nil) // sequential
	if err := xs.fanout(5, func(i int) error {
		order = append(order, i)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential fanout out of order: %v", order)
		}
	}
}

// TestFanoutStopsLaunchingAfterError checks the cheap-abort behavior:
// once a task fails, no further tasks are launched (running ones may
// finish, but whole subtrees are not started on a dead run).
func TestFanoutStopsLaunchingAfterError(t *testing.T) {
	boom := fmt.Errorf("boom")

	// Sequential: deterministic stop at the first failure.
	var seqRuns int
	xs := newTestExec(nil)
	if err := xs.fanout(10, func(i int) error {
		seqRuns++
		if i == 2 {
			return boom
		}
		return nil
	}); err != boom {
		t.Fatalf("sequential fanout error = %v, want boom", err)
	}
	if seqRuns != 3 {
		t.Fatalf("sequential fanout ran %d tasks after failure at index 2", seqRuns)
	}

	// Parallel: every task fails instantly; after the first recorded
	// failure the launch loop must break, so far fewer than n start.
	x := newTestExec(newGate(3))
	var launched atomic.Int64
	err := x.fanout(1000, func(int) error {
		launched.Add(1)
		return boom
	})
	if err != boom {
		t.Fatalf("parallel fanout error = %v, want boom", err)
	}
	if n := launched.Load(); n >= 1000 {
		t.Fatalf("parallel fanout launched all %d tasks despite immediate failures", n)
	}
}
