package core

import (
	"context"
	"math"

	"repro/internal/geom"
)

func sqrtf(v float64) float64 { return math.Sqrt(v) }

// UpJoin is the Uniform Partition Join of §4.1 (Fig. 3). Before choosing
// a physical operator for a window it tests each dataset's distribution
// for uniformity (Eq. 9, parameter Alpha), confirmed by one extra COUNT
// at a randomly placed quadrant-sized window; cost estimates are only
// trusted — and physical operators applied — on windows whose relevant
// datasets are uniform, otherwise the window is repartitioned. Statistics
// are requested only for datasets that are "large enough" for them to pay
// off (Eq. 10), and a dataset found uniform is never re-tested deeper in
// the recursion.
type UpJoin struct {
	// Alpha is the uniformity tolerance of Eq. (9); 0 means the paper's
	// default of 0.25 (chosen in Fig. 6a).
	Alpha float64
}

// Name implements Algorithm.
func (UpJoin) Name() string { return "upJoin" }

func (u UpJoin) alpha() float64 {
	if u.Alpha <= 0 {
		return 0.25
	}
	return u.Alpha
}

// Run implements Algorithm.
func (u UpJoin) Run(ctx context.Context, env *Env, spec Spec) (*Result, error) {
	x, err := newExec(ctx, env, spec, "upJoin")
	if err != nil {
		return nil, err
	}
	defer x.close()
	nr, ns, err := x.countBoth(x.window)
	if err != nil {
		return nil, err
	}
	up := &upState{exec: x, alpha: u.alpha()}
	err = up.join(x.window, dsState{n: nr}, dsState{n: ns}, 0)
	if err != nil {
		return nil, err
	}
	return x.finish(), nil
}

type upState struct {
	*exec
	alpha float64
}

// dsState is the per-window knowledge about one dataset: its count, an
// optional uniformity verdict inherited from an ancestor window, and the
// quadrant counts if they were measured.
type dsState struct {
	n cnt
	// uniform is meaningful only when tested is true.
	uniform, tested bool
	// quads holds quadrant counts (measured or estimated).
	quads    [4]cnt
	hasQuads bool
}

// large implements Eq. (10): statistics pay off only when downloading the
// window would cost more than three aggregate queries.
func (u *upState) large(n int) bool {
	p := u.env.Model
	return p.TB(n*p.BObj) > 3*p.Taq()
}

// uniformTest implements Eq. (9): every quadrant count must be close to
// the |Dw|/4 expectation. The tolerance is α·(|Dw|/4) plus two standard
// deviations of binomial sampling noise (a quadrant of a truly uniform
// window is Binomial(n, 1/4), sd = √(3n/16)).
//
// Interpretation note: read literally, Eq. (9) tolerates α·|Dw| — four
// times looser — under which a 35K-object dataset never looks skewed at
// coarse windows and UpJoin degenerates to MobiJoin's behaviour on the
// real-data workloads; read as α·|Dw|/4 exactly, uniform datasets fail
// the test through sampling noise alone and UpJoin over-partitions
// everywhere. The share-plus-noise form reproduces both Fig. 6(a)'s α
// sensitivity and Fig. 8's real-data behaviour; see DESIGN.md.
func (u *upState) uniformTest(n int, qs [4]cnt) bool {
	exp := float64(n) / 4
	tol := u.alpha*exp + 2*sqrtf(float64(n)*3/16)
	for _, q := range qs {
		d := float64(q.n) - exp
		if d < 0 {
			d = -d
		}
		if d >= tol {
			return false
		}
	}
	return true
}

// inspect gathers the distribution knowledge for dataset d on window w,
// following lines 2-7 of Fig. 3.
func (u *upState) inspect(d side, w geom.Rect, st dsState) (dsState, error) {
	if st.tested && st.uniform {
		// Already found uniform at an ancestor: estimate quadrants.
		st.quads = estQuads(st.n.n)
		st.hasQuads = true
		return st, nil
	}
	if !u.large(st.n.n) {
		// Too small for statistics: assume uniform (Fig. 3 line 7).
		st.tested, st.uniform = true, true
		st.quads = estQuads(st.n.n)
		st.hasQuads = true
		return st, nil
	}
	// Resume from quadrant counts already measured by an earlier phase
	// (the online planner's observe phase seeds them) instead of paying
	// for them again; UpJoin's own recursion never pre-sets them.
	qs := st.quads
	if !st.hasQuads {
		var err error
		qs, err = u.quadrantCounts(d, w, st.n)
		if err != nil {
			return st, err
		}
	}
	st.quads, st.hasQuads = qs, true
	st.tested = true
	if !u.uniformTest(st.n.n, qs) {
		st.uniform = false
		return st, nil
	}
	// Statistics look uniform: confirm with one COUNT at a random
	// quadrant-sized window inside w (Fig. 3 line 6). The window derives
	// from a per-(dataset, window) RNG, not a shared stream, so the probe
	// — and its metered bytes — is the same under any scheduling.
	probe := randomQuadrantWindow(windowRand(u.env.Seed, d, w), w)
	u.dec.agg.Add(1)
	pn, err := u.countRemote(d, u.fetchWindow(d, probe))
	if err != nil {
		return st, err
	}
	var one [4]cnt
	one[0] = exact(pn)
	one[1] = exact(st.n.n / 4) // neutral entries so only the probe is tested
	one[2] = exact(st.n.n / 4)
	one[3] = exact(st.n.n / 4)
	st.uniform = u.uniformTest(st.n.n, one)
	return st, nil
}

// estQuads distributes n uniformly over four quadrants (estimates).
func estQuads(n int) [4]cnt {
	q := n / 4
	rem := n - 3*q
	return [4]cnt{approx(q), approx(q), approx(q), approx(rem)}
}

// randomQuadrantWindow returns a quadrant-sized window placed uniformly
// at random inside w.
func randomQuadrantWindow(rng interface{ Float64() float64 }, w geom.Rect) geom.Rect {
	hw, hh := w.Width()/2, w.Height()/2
	x0 := w.MinX + rng.Float64()*hw
	y0 := w.MinY + rng.Float64()*hh
	return geom.Rect{MinX: x0, MinY: y0, MaxX: x0 + hw, MaxY: y0 + hh}
}

// join is the recursive body of Fig. 3.
func (u *upState) join(w geom.Rect, rst, sst dsState, depth int) error {
	// Prune only on *measured* empty windows. Estimated counts (from a
	// uniformity assumption) can be zero while the window holds objects;
	// those flow on, and the physical operators re-count exactly before
	// acting.
	if (rst.n.exact && rst.n.n == 0) || (sst.n.exact && sst.n.n == 0) {
		u.dec.pruned.Add(1)
		return nil
	}
	if !u.splittable(w, depth) {
		// Splitting can no longer prune (cell at ε scale, or degenerate
		// data at the depth bound): stop gathering statistics and apply
		// the cheapest feasible physical operator.
		return u.forcePhysical(w, rst.n, sst.n)
	}

	// The two datasets' statistics are gathered independently, so the
	// R-side and S-side inspection batches overlap on a parallel link.
	err := u.both(
		func() error {
			var err error
			rst, err = u.inspect(sideR, w, rst)
			return err
		},
		func() error {
			var err error
			sst, err = u.inspect(sideS, w, sst)
			return err
		},
	)
	if err != nil {
		return err
	}

	// Fig. 3 separates cost from feasibility: c1 is the raw transfer cost
	// of HBSJ (line 8), while the memory constraint is checked explicitly
	// on line 10 — "if both datasets are uniform AND there is enough
	// memory then HBSJ, else repartition". Computing c1 as +Inf when the
	// buffer is short would wrongly divert to the NLSJ branch instead of
	// repartitioning.
	rawModel := u.env.Model
	rawModel.Buffer = 0
	st := u.modelStats(w, rst.n, sst.n)
	c1 := rawModel.C1(st)
	c2 := rawModel.C2(st)
	c3 := rawModel.C3(st)
	// Outer = cheaper NLSJ direction; inner is the other dataset, whose
	// skew decides whether NLSJ is safe (Fig. 3 lines 12-14).
	cNL, outer := c3, sideS
	innerUniform := rst.tested && rst.uniform
	if c2 < c3 {
		cNL, outer = c2, sideR
		innerUniform = sst.tested && sst.uniform
	}

	// lookahead estimates the cost of repartitioning once using the
	// *measured* quadrant counts (the statistics just paid for in
	// inspect) instead of MobiJoin's uniformity assumption: the next
	// level's aggregate queries plus, for every quadrant that would not
	// be pruned, its cheapest physical operator. Repartitioning is
	// worthwhile only when this distribution-aware estimate undercuts
	// the window's own operator — the Eq. (10) principle ("statistics
	// must cost less than they can save") carried over to the
	// repartitioning decision. This replaces the pseudocode's purely
	// qualitative "repartition when skewed" rule, which on datasets that
	// are skewed at every scale (road/rail networks) never stops paying
	// for statistics; see DESIGN.md.
	lookahead := 8 * u.env.Model.Taq()
	rq, sq := rst.quads, sst.quads
	if !rst.hasQuads {
		rq = estQuads(rst.n.n)
	}
	if !sst.hasQuads {
		sq = estQuads(sst.n.n)
	}
	for i, q := range w.Quadrants() {
		if rq[i].n == 0 || sq[i].n == 0 {
			continue // would be pruned: no further cost
		}
		sti := u.modelStats(q, rq[i], sq[i])
		ci := rawModel.C2(sti)
		if c3i := rawModel.C3(sti); c3i < ci {
			ci = c3i
		}
		if c1i := rawModel.C1(sti); c1i < ci {
			ci = c1i
		}
		lookahead += ci
	}

	if c1 < cNL {
		bothUniform := rst.uniform && sst.uniform
		if (bothUniform || lookahead >= c1) && u.env.Device.CanHold(rst.n.n+sst.n.n) {
			u.trace("upJoin %v d=%d nr=%d ns=%d uniform(R=%v,S=%v) -> HBSJ", w, depth, rst.n.n, sst.n.n, rst.uniform, sst.uniform)
			return u.doHBSJ(w, rst.n, sst.n, depth)
		}
		u.trace("upJoin %v d=%d nr=%d ns=%d uniform(R=%v,S=%v) c1=%.0f cNL=%.0f la=%.0f -> recurse", w, depth, rst.n.n, sst.n.n, rst.uniform, sst.uniform, c1, cNL, lookahead)
		return u.recurse(w, rst, sst, depth)
	}
	if innerUniform || lookahead >= cNL {
		u.trace("upJoin %v d=%d nr=%d ns=%d -> NLSJ outer=%d", w, depth, rst.n.n, sst.n.n, outer)
		return u.doNLSJ(w, outer, rst.n, sst.n)
	}
	u.trace("upJoin %v d=%d nr=%d ns=%d c1=%.0f cNL=%.0f la=%.0f inner skewed -> recurse", w, depth, rst.n.n, sst.n.n, c1, cNL, lookahead)
	return u.recurse(w, rst, sst, depth)
}

// recurse repartitions w into quadrants, reusing measured quadrant counts
// and propagating uniformity verdicts downward. The quadrants are
// independent subproblems and run on the worker pool.
func (u *upState) recurse(w geom.Rect, rst, sst dsState, depth int) error {
	u.dec.repart.Add(1)
	if !rst.hasQuads {
		rst.quads = estQuads(rst.n.n)
	}
	if !sst.hasQuads {
		sst.quads = estQuads(sst.n.n)
	}
	quads := w.Quadrants()
	return u.fanoutSiblings(4, func(i int) error {
		cr := dsState{n: rst.quads[i], uniform: rst.uniform, tested: rst.tested && rst.uniform}
		cs := dsState{n: sst.quads[i], uniform: sst.uniform, tested: sst.tested && sst.uniform}
		return u.join(quads[i], cr, cs, depth+1)
	})
}

// forcePhysical applies the cheapest feasible physical operator without
// any further partitioning.
func (u *upState) forcePhysical(w geom.Rect, nr, ns cnt) error {
	c1, c2, c3 := u.costs(w, nr, ns)
	if c1 <= c2 && c1 <= c3 {
		return u.doHBSJ(w, nr, ns, maxDepth)
	}
	if c2 <= c3 {
		return u.doNLSJ(w, sideR, nr, ns)
	}
	return u.doNLSJ(w, sideS, nr, ns)
}
