// Package core implements the paper's contribution: adaptive,
// distribution-aware algorithms for evaluating ad-hoc spatial joins on a
// mobile device against two non-cooperative servers, minimizing
// transferred bytes.
//
// Algorithms (all implement Algorithm):
//
//   - Naive      — download both datasets (splitting only for memory).
//   - Grid       — regular-grid partitioning with COUNT pruning (§3).
//   - MobiJoin   — recursive cost-based partitioning with the uniformity
//     assumption of [9] (§3.2); the baseline the paper improves upon.
//   - UpJoin     — Uniform Partition Join (§4.1, Fig. 3).
//   - SrJoin     — Similarity Related Join (§4.2, Fig. 5).
//   - SemiJoin   — the cooperative, index-publishing comparator (§5.3).
//
// Join semantics are defined by Spec: MBR-intersection join, ε-distance
// join, or iceberg distance semi-join (R objects matching at least m
// objects of S). For a query window W, the result contains every pair
// (r, s) with pred(r, s), s intersecting W, and r intersecting W expanded
// by ε. Pairs are globally deduplicated, so all algorithms return
// identical result sets — a property the tests enforce against a
// brute-force oracle.
package core

import (
	"cmp"
	"context"
	"fmt"
	"slices"

	"repro/internal/geom"
	"repro/internal/health"
	"repro/internal/memjoin"
	"repro/internal/netsim"
)

// Kind selects the join predicate family.
type Kind int

// Join kinds.
const (
	// Intersection is the MBR-intersection join (filter step).
	Intersection Kind = iota
	// Distance is the ε-distance join: MinDist(r, s) <= Eps.
	Distance
	// IcebergSemi is the iceberg distance semi-join: return objects of R
	// within Eps of at least MinMatches objects of S.
	IcebergSemi
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Intersection:
		return "intersection"
	case Distance:
		return "distance"
	case IcebergSemi:
		return "iceberg-semi"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Spec describes one join query.
type Spec struct {
	Kind Kind
	// Eps is the distance threshold for Distance and IcebergSemi.
	Eps float64
	// MinMatches is the iceberg threshold m (IcebergSemi only).
	MinMatches int
}

// Validate reports configuration errors.
func (sp Spec) Validate() error {
	switch sp.Kind {
	case Intersection:
		if sp.Eps != 0 {
			return fmt.Errorf("core: intersection join with eps %v", sp.Eps)
		}
	case Distance:
		if sp.Eps < 0 {
			return fmt.Errorf("core: negative eps %v", sp.Eps)
		}
	case IcebergSemi:
		if sp.Eps < 0 || sp.MinMatches < 1 {
			return fmt.Errorf("core: iceberg needs eps >= 0 and m >= 1")
		}
	default:
		return fmt.Errorf("core: unknown kind %d", sp.Kind)
	}
	return nil
}

func (sp Spec) pred() memjoin.Pred {
	if sp.Kind == Intersection {
		return memjoin.Intersection()
	}
	return memjoin.WithinDist(sp.Eps)
}

// Stats summarizes one execution: metered traffic per server plus
// decision counters for diagnostics and ablations.
type Stats struct {
	// R and S are the metered traffic on each server link.
	R, S netsim.Usage
	// AggQueries counts aggregate queries (COUNT, RANGE-COUNT, AVG-AREA).
	AggQueries int
	// HBSJ, NLSJ, Repartitions, Pruned count the decisions taken.
	HBSJ, NLSJ, Repartitions, Pruned int
	// MoneyCost is Σ price × wire bytes over both links.
	MoneyCost float64
	// RLevels and SLevels break each relation's wire bytes out per
	// hierarchical-aggregation-tree level, root outward: index 0 is the
	// links into the root device (the fan-in the partial merges keep
	// ~flat), deeper indexes the interior and leaf levels whose traffic
	// grows with the fleet. Nil for flat or unsharded relations; R/S
	// above already include every level's bytes.
	RLevels, SLevels []int
}

// TotalBytes is the headline metric of every figure: wire bytes over both
// links, including packet headers (Eq. 1).
func (st Stats) TotalBytes() int { return st.R.WireBytes + st.S.WireBytes }

// TotalQueries is the number of uplink requests across both servers.
func (st Stats) TotalQueries() int { return st.R.Queries + st.S.Queries }

// Result is the outcome of one join execution.
type Result struct {
	// Pairs holds the qualifying (R, S) pairs, sorted and deduplicated
	// (Intersection and Distance kinds).
	Pairs []geom.Pair
	// Objects holds the qualifying R objects for IcebergSemi, sorted by ID.
	Objects []geom.Object
	Stats   Stats
	// Completeness describes which shards contributed, set only on runs
	// with Env.AllowPartial. Complete() reports a full answer; with gaps
	// the pairs are a lower bound (every reported pair is real; pairs
	// touching the unreachable shards are missing).
	Completeness *health.Completeness
	// Explain is the online planner's phase-by-phase account (candidate
	// table, estimated vs metered bytes, re-plans). Set only by the Auto
	// algorithm; nil for the fixed algorithms.
	Explain *Explain
}

// Algorithm is one join evaluation strategy.
type Algorithm interface {
	// Name identifies the algorithm in reports ("upJoin", "srJoin", ...).
	Name() string
	// Run evaluates spec in env and returns the result. Implementations
	// must leave meters un-reset; the caller snapshots usage around Run.
	//
	// Run honors ctx: cancellation or an expired deadline aborts the
	// execution promptly — every in-flight round trip is interrupted, all
	// worker goroutines of the concurrent engine are joined before Run
	// returns, and the context's error is reported. A nil ctx is treated
	// as context.Background().
	Run(ctx context.Context, env *Env, spec Spec) (*Result, error)
}

// Oracle computes the reference result locally from raw object slices,
// with the same semantics the distributed algorithms implement: a pair
// qualifies when the predicate holds and its reference point
// (geom.RefPointEps) lies in the query window. Passing the union of the
// dataset bounds (or any containing rectangle) as the window yields the
// whole-space join, matching algorithms run with an unset Env.Window.
// Oracle is exported for tests and examples.
func Oracle(r, s []geom.Object, spec Spec, window geom.Rect) *Result {
	pred := spec.pred()
	if spec.Eps > 0 {
		// The root window is a partition cell like any other: it is
		// expanded by ε/2 so hull-edge reference points stay inside.
		window = window.Expand(spec.Eps / 2)
	}
	var pairs []geom.Pair
	robjs := make(map[uint32]geom.Object)
	for _, a := range r {
		for _, b := range s {
			if !pred.Match(a.MBR, b.MBR) {
				continue
			}
			if p, ok := geom.RefPointEps(a.MBR, b.MBR, spec.Eps); !ok || !window.ContainsPoint(p) {
				continue
			}
			pairs = append(pairs, geom.Pair{RID: a.ID, SID: b.ID})
			robjs[a.ID] = a
		}
	}
	pairs = memjoin.DedupPairs(pairs)
	res := &Result{Pairs: pairs}
	if spec.Kind == IcebergSemi {
		res.Objects = icebergFilter(pairs, robjs, spec.MinMatches)
		res.Pairs = nil
	}
	return res
}

// icebergFilter groups pairs by RID and keeps R objects with at least m
// matches, sorted by ID. Geometry comes from robjs where known; IDs
// without geometry get degenerate MBRs.
func icebergFilter(pairs []geom.Pair, robjs map[uint32]geom.Object, m int) []geom.Object {
	counts := make(map[uint32]int)
	for _, p := range pairs {
		counts[p.RID]++
	}
	var out []geom.Object
	for id, n := range counts {
		if n >= m {
			if o, ok := robjs[id]; ok {
				out = append(out, o)
			} else {
				out = append(out, geom.Object{ID: id})
			}
		}
	}
	slices.SortFunc(out, func(a, b geom.Object) int { return cmp.Compare(a.ID, b.ID) })
	return out
}
