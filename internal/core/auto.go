package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/costmodel"
	"repro/internal/geom"
	"repro/internal/netsim"
	"repro/internal/plan"
	"repro/internal/wire"
)

// Auto is the online cost-based planner: instead of running one fixed
// strategy it observes first and commits late. The run decomposes into
// the observable phases the engine exposes (phase.go):
//
//  1. observe — the two root COUNTs, the endpoints' live link stats
//     (measured RTT, retry rates, tariffs) and, when the relations are
//     sharded, the per-shard INFO skew. All of it is either free
//     (already-paid INFO round trips, passive RTT observation) or the
//     two aggregate queries every adaptive algorithm pays anyway.
//  2. plan — every candidate operator is scored by internal/plan under
//     the §3.1 model hydrated from those observations. If the winner
//     beats the best partition-family alternative by the commit margin,
//     it commits immediately; otherwise the planner buys one round of
//     quadrant statistics (8 aggregate queries) and re-plans on the
//     measured distribution.
//  3. transfer — the committed operator runs, delegating to the same
//     phase-split primitives the fixed algorithms use, seeded with every
//     statistic already measured so nothing is paid twice.
//  4. re-plan — a committed NLSJ re-evaluates itself once the outer
//     window is on the device: if the inner side's measured quadrant
//     densities reveal that the remaining probes are dearer than
//     downloading the inner windows per quadrant and joining against the
//     held outer objects, it switches mid-join (the downloaded outer
//     objects are reused, never re-paid).
//
// The Result carries an Explain: the scored candidate table, the phase
// log with estimated-vs-metered bytes, and any mid-join switches.
type Auto struct {
	// Planner configures the decision margins; the zero value uses the
	// defaults of package plan.
	Planner plan.Planner
}

// Name implements Algorithm.
func (Auto) Name() string { return "auto" }

// Run implements Algorithm.
func (al Auto) Run(ctx context.Context, env *Env, spec Spec) (*Result, error) {
	x, err := newExec(ctx, env, spec, "auto")
	if err != nil {
		return nil, err
	}
	defer x.close()
	x.explain = &Explain{Algorithm: "auto"}
	a := &autoState{exec: x, pl: al.Planner}

	nr, ns, err := x.countBoth(x.window)
	if err != nil {
		return nil, err
	}
	if nr.n == 0 || ns.n == 0 {
		x.dec.pruned.Add(1)
		x.explain.Chosen = "none (empty window)"
		return x.finish(), nil
	}

	obs := a.observations(nr, ns)
	d := a.pl.Choose(obs)
	a.recordPlan("plan/initial", d)

	if !a.pl.CommitsWithoutStats(d) {
		// The winner is not clear enough to skip statistics: buy one round
		// of quadrant counts and re-plan on the measured distribution.
		qr, qs, err := x.quadrantCountsBoth(x.window, nr, ns)
		if err != nil {
			return nil, err
		}
		obs.QuadR, obs.QuadS = quadInts(qr), quadInts(qs)
		a.qr, a.qs, a.hasQuads = qr, qs, true
		d = a.pl.Choose(obs)
		a.recordPlan("plan/refined", d)
	}

	x.explain.Chosen = d.Chosen.Op.String()
	if err := a.execute(d, obs, nr, ns); err != nil {
		return nil, err
	}
	return x.finish(), nil
}

// autoState is the per-run state of the adaptive algorithm: the shared
// engine, the planner, and the quadrant statistics once measured.
type autoState struct {
	*exec
	pl     plan.Planner
	qr, qs [4]cnt
	// hasQuads marks qr/qs as measured (the refine step ran).
	hasQuads bool
}

// observations assembles the planner's input from everything the run has
// measured or can read for free.
func (a *autoState) observations(nr, ns cnt) plan.Observations {
	st := a.modelStats(a.window, nr, ns)
	return plan.Observations{
		Window:      a.window,
		NR:          nr.n,
		NS:          ns.n,
		Eps:         a.spec.Eps,
		Iceberg:     a.spec.Kind == IcebergSemi,
		CountProbeR: st.CountProbeR,
		AvgAreaR:    st.AvgAreaR,
		AvgAreaS:    st.AvgAreaS,
		TreeHeightR: a.env.infoR.TreeHeight,
		TreeHeightS: a.env.infoS.TreeHeight,
		WholeSpace:  a.env.Window.Contains(a.env.infoR.Bounds.Union(a.env.infoS.Bounds)),
		Buffer:      a.env.Device.BufferObjects,
		Bucket:      a.env.Model.Bucket,
		LinkR:       linkObs(a.env.R),
		LinkS:       linkObs(a.env.S),
		SkewR:       shardSkew(a.ctx, a.env.R),
		SkewS:       shardSkew(a.ctx, a.env.S),
	}
}

// linkObs reads one endpoint's live link observation: the lock-free RTT
// stats when the endpoint exposes them, plus its tariff and retry/query
// counters for the effective-price computation.
func linkObs(p Probe) plan.LinkObs {
	lo := plan.LinkObs{
		Price:   p.PricePerByte(),
		Retries: p.Retries(),
		Queries: int64(p.Usage().Queries),
	}
	if ls, ok := p.(interface{ LinkStats() netsim.LinkSnapshot }); ok {
		snap := ls.LinkStats()
		lo.Config, lo.RTT, lo.Samples = snap.Config, snap.RTT, snap.Samples
	}
	return lo
}

// shardSkew reads the peak-to-mean per-shard cardinality ratio of a
// sharded endpoint from its (already fetched) INFO metadata; 1 for bare
// remotes and evenly loaded routers. A free density prior: no query is
// issued for it.
func shardSkew(ctx context.Context, p Probe) float64 {
	si, ok := p.(interface {
		ShardInfos(context.Context) ([]wire.Info, error)
	})
	if !ok {
		return 1
	}
	infos, err := si.ShardInfos(ctx)
	if err != nil || len(infos) < 2 {
		return 1
	}
	var total, peak int64
	for _, info := range infos {
		total += info.Count
		if info.Count > peak {
			peak = info.Count
		}
	}
	if total == 0 {
		return 1
	}
	skew := float64(peak) * float64(len(infos)) / float64(total)
	if skew < 1 {
		skew = 1
	}
	return skew
}

// recordPlan stores a decision in the explain report and emits the plan
// phase event.
func (a *autoState) recordPlan(name string, d plan.Decision) {
	reports := make([]CandidateReport, len(d.Candidates))
	for i, c := range d.Candidates {
		reports[i] = CandidateReport{
			Op: c.Op.String(), Cost: c.Cost, Bytes: c.Bytes,
			Queries: c.Queries, Feasible: c.Feasible, Note: c.Note,
		}
	}
	a.explainMu.Lock()
	a.explain.Candidates = reports
	a.explainMu.Unlock()
	a.emit(PhasePlan, name, a.window, 0, 0, d.Chosen.Bytes,
		fmt.Sprintf("chose %s (est cost %.0f)", d.Chosen.Op, d.Chosen.Cost))
}

// execute runs the committed operator, delegating to the fixed
// algorithms' phase-split bodies seeded with the measured statistics.
func (a *autoState) execute(d plan.Decision, obs plan.Observations, nr, ns cnt) error {
	switch d.Chosen.Op {
	case plan.OpHBSJ:
		return a.doHBSJ(a.window, nr, ns, 0)
	case plan.OpNLSJR:
		return a.runNLSJ(sideR, nr, ns, d, obs)
	case plan.OpNLSJS:
		return a.runNLSJ(sideS, nr, ns, d, obs)
	case plan.OpSemiJoin:
		return semiJoinRun(a.exec)
	case plan.OpGrid:
		return a.runGrid(nr, ns)
	case plan.OpPartition:
		return a.runPartition(nr, ns)
	default:
		return fmt.Errorf("core: auto cannot execute operator %v", d.Chosen.Op)
	}
}

// quadInts strips the exactness annotations for the planner.
func quadInts(q [4]cnt) *[4]int {
	var out [4]int
	for i, c := range q {
		out[i] = c.n
	}
	return &out
}

// runGrid executes the one-level measured-quadrant plan: every quadrant
// both sides left non-empty is processed with its cheapest physical
// operator (splitting further inside doHBSJ when the buffer requires
// it). The quadrant counts were measured by the refine step — OpGrid is
// only ever chosen from a refined plan — so no aggregate query is
// re-paid here.
func (a *autoState) runGrid(nr, ns cnt) error {
	quads := a.window.Quadrants()
	// Measured level-one densities, assumed self-similar inside each
	// quadrant: a clustered side keeps clustering at finer scales, so an
	// NLSJ probe into it returns proportionally fatter replies than the
	// uniform Eq. 4/5 estimate claims. The denominator is the window
	// total, matching the planner's convention (eps-expanded quadrant
	// counts overlap, so their sum would understate the skew).
	dR := measuredDensity(a.qr, nr.n)
	dS := measuredDensity(a.qs, ns.n)
	return a.fanoutSiblings(4, func(i int) error {
		cr, cs := a.qr[i], a.qs[i]
		if (cr.exact && cr.n == 0) || (cs.exact && cs.n == 0) {
			a.dec.pruned.Add(1)
			return nil
		}
		if cr.n == 0 || cs.n == 0 {
			// Derived estimate says empty: confirm before pruning.
			var err error
			if cr, cs, err = a.ensureExactBoth(quads[i], cr, cs); err != nil {
				return err
			}
			if cr.n == 0 || cs.n == 0 {
				a.dec.pruned.Add(1)
				return nil
			}
		}
		// Like SrJoin's leaf dispatch, C1 is estimated without the memory
		// constraint: doHBSJ splits recursively (with pruning) when the
		// quadrant does not fit, which is almost always cheaper than an
		// NLSJ with a large outer window.
		model := a.env.Model
		model.Buffer = 0
		st := a.modelStats(quads[i], cr, cs)
		c1 := model.C1(st)
		st2 := st
		st2.DensityFactor = dS // C2 probes into S
		c2 := model.C2(st2)
		st3 := st
		st3.DensityFactor = dR // C3 probes into R
		c3 := model.C3(st3)
		switch {
		case c1 <= c2 && c1 <= c3:
			return a.doHBSJ(quads[i], cr, cs, 1)
		case c2 <= c3:
			return a.doNLSJ(quads[i], sideR, cr, cs)
		default:
			return a.doNLSJ(quads[i], sideS, cr, cs)
		}
	})
}

// measuredDensity is the peak-to-mean ratio of measured quadrant counts
// against the window total n (≥ 1); 1 when nothing was counted.
func measuredDensity(q [4]cnt, n int) float64 {
	peak := 0
	for _, c := range q {
		if c.n > peak {
			peak = c.n
		}
	}
	if n == 0 || peak == 0 {
		return 1
	}
	d := float64(peak) * 4 / float64(n)
	if d < 1 {
		d = 1
	}
	return d
}

// runPartition delegates to the similarity-driven adaptive recursion
// (SrJoin, Fig. 5), seeded with the quadrant counts the refine step
// already measured so the root observation round is not re-paid: when
// the planner picks OpPartition after refining, Auto's wire bill is
// exactly SrJoin's.
func (a *autoState) runPartition(nr, ns cnt) error {
	sr := &srState{exec: a.exec, rho: 0.30}
	if a.hasQuads {
		return sr.joinWithQuads(a.window, nr, ns, a.qr, a.qs, 0)
	}
	return sr.join(a.window, nr, ns, 0)
}

// runNLSJ executes a committed nested-loop plan with a density
// checkpoint between its two phases: after the outer window is
// downloaded (a sunk, reusable observation) and before any probe is
// sent, the planner may buy the inner side's quadrant counts and compare
// the remaining probe bill against switching to per-quadrant inner
// downloads joined on the device against the held outer objects.
func (a *autoState) runNLSJ(outer side, nr, ns cnt, d plan.Decision, obs plan.Observations) error {
	w := a.window
	outerObjs, done, err := a.nlsjOuterPhase(w, outer, nr, ns)
	if done || err != nil {
		return err
	}

	inner := sideS
	innerCnt := ns
	if outer == sideS {
		inner = sideR
		innerCnt = nr
	}
	if a.shouldCheckpoint(outer, outerObjs, innerCnt, d.Params, obs) {
		iq, err := a.quadrantCounts(inner, w, innerCnt)
		if err != nil {
			return err
		}
		a.emit(PhaseObserve, "observe/nlsj-checkpoint", w, nr.n, ns.n,
			4*a.bytesModel().Taq(), "inner quadrant densities")
		probeRem, gridRem := a.pl.NLSJRemainder(d.Params, obs, outer == sideR,
			a.outerByQuad(w, outerObjs), quadCounts(iq))
		if gridRem*a.pl.ReplanFactor() < probeRem {
			a.explainMu.Lock()
			a.explain.Replans++
			a.explain.Chosen = "grid-from-outer"
			a.explainMu.Unlock()
			a.emit(PhaseReplan, "replan/nlsj-to-grid", w, nr.n, ns.n, gridRem,
				fmt.Sprintf("probe remainder est %.0f > grid remainder est %.0f×%.2f; switching",
					probeRem, gridRem, a.pl.ReplanFactor()))
			quads := w.Quadrants()
			return a.fanoutSiblings(4, func(i int) error {
				return a.fetchJoin(quads[i], outer, outerObjs, iq[i], 1)
			})
		}
		a.emit(PhasePlan, "plan/nlsj-keep", w, nr.n, ns.n, probeRem,
			fmt.Sprintf("probe remainder est %.0f <= grid remainder est %.0f×%.2f; keeping NLSJ",
				probeRem, gridRem, a.pl.ReplanFactor()))
	}
	return a.nlsjProbePhase(w, outer, outerObjs)
}

// shouldCheckpoint decides whether measuring the inner side's quadrant
// densities can pay for itself: never for iceberg count-probes (each
// probe's reply is a fixed eight bytes — density cannot change the
// bill), and otherwise only when the estimated remaining probe traffic
// exceeds a multiple of the checkpoint's own aggregate-query cost, the
// Eq. (10) principle applied mid-join.
func (a *autoState) shouldCheckpoint(outer side, outerObjs []geom.Object, innerCnt cnt, prm costmodel.Params, obs plan.Observations) bool {
	if a.spec.Kind == IcebergSemi && outer == sideR && a.icebergCountable() {
		return false
	}
	if len(outerObjs) < 8 {
		return false
	}
	st := costmodel.Stats{
		W: a.window, Eps: a.spec.Eps,
		AvgAreaR: obs.AvgAreaR, AvgAreaS: obs.AvgAreaS,
	}
	outerAvg, innerAvg := obs.AvgAreaR, obs.AvgAreaS
	if outer == sideS {
		outerAvg, innerAvg = obs.AvgAreaS, obs.AvgAreaR
	}
	per := st.PerProbeMatches(innerCnt.n, outerAvg, innerAvg)
	remaining := float64(len(outerObjs)) *
		(prm.QueryBytes() + prm.TB(int(math.Ceil(per*float64(prm.BObj)))))
	checkpoint := 4 * prm.Taq()
	return remaining > 3*checkpoint
}

// outerByQuad assigns each held outer object to the quadrant of w
// nearest its center — a free, local statistic estimating where the
// remaining probes would land.
func (a *autoState) outerByQuad(w geom.Rect, objs []geom.Object) [4]int {
	quads := w.Quadrants()
	var out [4]int
	for _, o := range objs {
		c := o.Center()
		best, bestDist := 0, math.Inf(1)
		for i, q := range quads {
			if q.ContainsPoint(c) {
				best = i
				break
			}
			if d := q.DistToPoint(c); d < bestDist {
				best, bestDist = i, d
			}
		}
		out[best]++
	}
	return out
}

func quadCounts(q [4]cnt) [4]int {
	var out [4]int
	for i, c := range q {
		out[i] = c.n
	}
	return out
}

// fetchJoin is the grid-from-outer executor for one window: download the
// inner side's window and join it on the device against the held outer
// objects that can still form a pair there (the same server-side filter
// a fresh download of the outer window would apply — so the pair set is
// exactly what the abandoned probes would have produced). When the inner
// window does not fit next to the relevant outer objects, the window is
// split recursively with inner-side COUNT pruning; quadrants no held
// outer object can touch are pruned locally, for free.
func (a *autoState) fetchJoin(w geom.Rect, outer side, outerObjs []geom.Object, innerCnt cnt, depth int) error {
	inner := sideS
	if outer == sideS {
		inner = sideR
	}
	fw := a.fetchWindow(outer, w)
	rel := outerObjs[:0:0]
	for _, o := range outerObjs {
		if o.MBR.Intersects(fw) {
			rel = append(rel, o)
		}
	}
	if len(rel) == 0 {
		a.dec.pruned.Add(1)
		return nil
	}
	var err error
	if innerCnt, err = a.ensureExact(inner, w, innerCnt); err != nil {
		return err
	}
	if innerCnt.n == 0 {
		a.dec.pruned.Add(1)
		return nil
	}
	if a.env.Device.CanHold(len(rel)+innerCnt.n) || !a.splittable(w, depth) {
		a.dec.hbsj.Add(1)
		innerObjs, err := a.remote(inner).Window(a.ctx, a.fetchWindow(inner, w))
		if err != nil {
			return err
		}
		if a.observing() {
			p := a.bytesModel()
			a.emit(PhaseTransfer, "transfer/grid-inner", w, len(rel), innerCnt.n,
				p.QueryBytes()+p.TB(innerCnt.n*p.BObj), "inner window joined against held outer objects")
		}
		if outer == sideR {
			a.joinLocal(rel, innerObjs)
		} else {
			a.joinLocal(innerObjs, rel)
		}
		return nil
	}
	a.dec.repart.Add(1)
	iq, err := a.quadrantCounts(inner, w, innerCnt)
	if err != nil {
		return err
	}
	quads := w.Quadrants()
	return a.fanoutSiblings(4, func(i int) error {
		return a.fetchJoin(quads[i], outer, outerObjs, iq[i], depth+1)
	})
}
