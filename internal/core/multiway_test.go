package core

import (
	"context"
	"testing"

	"repro/internal/client"
	"repro/internal/costmodel"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/netsim"
	"repro/internal/server"
)

func chainRemotes(t *testing.T, datasets [][]geom.Object) []Probe {
	t.Helper()
	remotes := make([]Probe, len(datasets))
	for i, objs := range datasets {
		tr := netsim.Serve(server.New("D", objs))
		r := mustRemote(t, "D", tr, netsim.DefaultLink(), 1)
		t.Cleanup(func() { r.Close() })
		remotes[i] = r
	}
	return remotes
}

func tuplesEqual(a, b []Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i].IDs) != len(b[i].IDs) {
			return false
		}
		for k := range a[i].IDs {
			if a[i].IDs[k] != b[i].IDs[k] {
				return false
			}
		}
	}
	return true
}

func TestMultiwayThreeDatasetsMatchesOracle(t *testing.T) {
	// Hotels near restaurants near metro stations: three co-located
	// cluster sets so the chain is non-empty.
	datasets := [][]geom.Object{
		dataset.GaussianClusters(150, 3, 300, dataset.World, 201),
		dataset.GaussianClusters(200, 3, 300, dataset.World, 201),
		dataset.GaussianClusters(150, 3, 300, dataset.World, 201),
	}
	eps := []float64{150, 150}
	remotes := chainRemotes(t, datasets)
	res, err := Multiway{}.RunChain(context.Background(), remotes, client.Device{BufferObjects: 500},
		costmodel.Default(), dataset.World, eps)
	if err != nil {
		t.Fatal(err)
	}
	want := MultiwayOracle(datasets, eps, dataset.World)
	if len(want) == 0 {
		t.Fatal("vacuous: oracle chain empty")
	}
	if !tuplesEqual(res.Tuples, want) {
		t.Fatalf("got %d tuples, oracle %d", len(res.Tuples), len(want))
	}
	if len(res.StepStats) != 2 {
		t.Fatalf("expected 2 link stats, got %d", len(res.StepStats))
	}
	if res.TotalBytes() <= 0 {
		t.Fatal("no traffic metered")
	}
	for _, tu := range res.Tuples {
		if len(tu.IDs) != 3 {
			t.Fatalf("tuple arity %d, want 3", len(tu.IDs))
		}
	}
}

func TestMultiwayEmptyLinkShortCircuits(t *testing.T) {
	// The middle dataset is far from the first, so link 0 is empty and
	// link 1 must not be evaluated.
	far := make([]geom.Object, 50)
	for i := range far {
		far[i] = geom.PointObject(uint32(i), geom.Pt(9800+float64(i%7), 9800+float64(i/7)))
	}
	near := make([]geom.Object, 50)
	for i := range near {
		near[i] = geom.PointObject(uint32(i), geom.Pt(100+float64(i%7), 100+float64(i/7)))
	}
	datasets := [][]geom.Object{near, far, near}
	remotes := chainRemotes(t, datasets)
	res, err := Multiway{}.RunChain(context.Background(), remotes, client.Device{BufferObjects: 500},
		costmodel.Default(), dataset.World, []float64{50, 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 0 {
		t.Fatalf("chain should be empty, got %d tuples", len(res.Tuples))
	}
	if len(res.StepStats) != 1 {
		t.Fatalf("link 1 should not run after an empty link 0; got %d stats", len(res.StepStats))
	}
}

func TestMultiwayFourDatasets(t *testing.T) {
	datasets := [][]geom.Object{
		dataset.GaussianClusters(80, 2, 300, dataset.World, 301),
		dataset.GaussianClusters(120, 2, 300, dataset.World, 301),
		dataset.GaussianClusters(120, 2, 300, dataset.World, 301),
		dataset.GaussianClusters(80, 2, 300, dataset.World, 301),
	}
	eps := []float64{200, 200, 200}
	remotes := chainRemotes(t, datasets)
	res, err := Multiway{Inner: SrJoin{}}.RunChain(context.Background(), remotes, client.Device{BufferObjects: 500},
		costmodel.Default(), dataset.World, eps)
	if err != nil {
		t.Fatal(err)
	}
	want := MultiwayOracle(datasets, eps, dataset.World)
	if !tuplesEqual(res.Tuples, want) {
		t.Fatalf("got %d tuples, oracle %d", len(res.Tuples), len(want))
	}
	if len(want) == 0 {
		t.Fatal("vacuous: oracle chain empty")
	}
}

func TestMultiwayValidation(t *testing.T) {
	datasets := [][]geom.Object{
		dataset.Uniform(10, dataset.World, 1),
		dataset.Uniform(10, dataset.World, 2),
	}
	remotes := chainRemotes(t, datasets)
	if _, err := (Multiway{}).RunChain(context.Background(), remotes[:1], client.Device{}, costmodel.Default(), dataset.World, nil); err == nil {
		t.Fatal("single dataset should be rejected")
	}
	if _, err := (Multiway{}).RunChain(context.Background(), remotes, client.Device{}, costmodel.Default(), dataset.World, []float64{1, 2}); err == nil {
		t.Fatal("threshold count mismatch should be rejected")
	}
}

func TestMultiwayOracleDegenerate(t *testing.T) {
	if got := MultiwayOracle(nil, nil, dataset.World); got != nil {
		t.Fatal("nil datasets should yield nil")
	}
	one := [][]geom.Object{dataset.Uniform(5, dataset.World, 1)}
	if got := MultiwayOracle(one, nil, dataset.World); got != nil {
		t.Fatal("single dataset should yield nil")
	}
}
