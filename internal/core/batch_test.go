package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/costmodel"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/netsim"
	"repro/internal/server"
)

// testEnvBatch is testEnvParallel with probe batching enabled on both
// links. The generous linger keeps sequential framing deterministic even
// under -race scheduling (core flushes its probe groups explicitly, so
// the timer is a backstop only).
func testEnvBatch(t *testing.T, robjs, sobjs []geom.Object, buffer, parallelism, batch int, opts ...server.Option) *Env {
	t.Helper()
	workers := parallelism
	if workers < 1 {
		workers = 1
	}
	var copts []client.Option
	if batch > 1 {
		copts = append(copts, client.WithBatch(client.BatchConfig{
			MaxBatch: batch, Linger: 50 * time.Millisecond, MaxLinger: 50 * time.Millisecond,
		}))
	}
	trR := netsim.ServeParallel(server.New("R", robjs, opts...), workers)
	trS := netsim.ServeParallel(server.New("S", sobjs, opts...), workers)
	r := mustRemote(t, "R", trR, netsim.DefaultLink(), 1, copts...)
	s := mustRemote(t, "S", trS, netsim.DefaultLink(), 1, copts...)
	t.Cleanup(func() { r.Close(); s.Close() })
	env := NewEnv(r, s, client.Device{BufferObjects: buffer}, costmodel.Default(), geom.Rect{})
	env.Parallelism = parallelism
	env.BatchSize = batch
	return env
}

// TestBatchedMatchesOracle is the batching correctness guarantee: for
// every algorithm × join kind × BatchSize ∈ {1, 4, 16} × Parallelism ∈
// {1, 4}, the result set is identical to the local oracle. Batching
// changes framing only, never the query answers that reach the device.
func TestBatchedMatchesOracle(t *testing.T) {
	robjs := dataset.GaussianClusters(400, 4, 300, dataset.World, 61)
	sobjs := dataset.GaussianClusters(400, 4, 300, dataset.World, 62)
	window := dataset.Bounds(robjs).Union(dataset.Bounds(sobjs))

	specs := map[string]Spec{
		"intersection": {Kind: Intersection},
		"distance":     {Kind: Distance, Eps: 90},
		"iceberg":      {Kind: IcebergSemi, Eps: 90, MinMatches: 2},
	}
	algs := []Algorithm{Naive{}, Grid{}, MobiJoin{}, UpJoin{}, SrJoin{}}

	for specName, spec := range specs {
		want := Oracle(robjs, sobjs, spec, window)
		for _, alg := range algs {
			for _, batch := range []int{1, 4, 16} {
				for _, par := range []int{1, 4} {
					name := fmt.Sprintf("%s/%s/batch%d/par%d", alg.Name(), specName, batch, par)
					t.Run(name, func(t *testing.T) {
						env := testEnvBatch(t, robjs, sobjs, 300, par, batch)
						env.Seed = 5
						got, err := alg.Run(context.Background(), env, spec)
						if err != nil {
							t.Fatal(err)
						}
						assertSameResult(t, name, spec, got, want)
					})
				}
			}
		}
	}
}

// TestBatchedSemiJoinMatchesOracle covers the cooperative comparator: its
// three round trips are dependent (each consumes the previous answer), so
// nothing coalesces, but a batching environment must not disturb it.
func TestBatchedSemiJoinMatchesOracle(t *testing.T) {
	robjs := dataset.GaussianClusters(300, 3, 300, dataset.World, 63)
	sobjs := dataset.GaussianClusters(500, 3, 300, dataset.World, 64)
	window := dataset.Bounds(robjs).Union(dataset.Bounds(sobjs))
	spec := Spec{Kind: Distance, Eps: 90}
	want := Oracle(robjs, sobjs, spec, window)

	env := testEnvBatch(t, robjs, sobjs, 300, 1, 16, server.PublishIndex())
	got, err := SemiJoin{}.Run(context.Background(), env, spec)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "semiJoin/batch16", spec, got, want)
}

// TestBatchSizeOneIsBitIdentical: BatchSize 1 (and 0) must produce the
// exact frame sequence — and therefore byte totals — of a pre-batching
// run. This is the compatibility half of the golden guarantee.
func TestBatchSizeOneIsBitIdentical(t *testing.T) {
	robjs := dataset.GaussianClusters(400, 4, 300, dataset.World, 65)
	sobjs := dataset.GaussianClusters(400, 4, 300, dataset.World, 66)
	spec := Spec{Kind: Distance, Eps: 90}

	run := func(batch int) Stats {
		env := testEnvBatch(t, robjs, sobjs, 300, 1, batch)
		env.Seed = 5
		res, err := UpJoin{}.Run(context.Background(), env, spec)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}
	plain, one := run(0), run(1)
	if plain.R != one.R || plain.S != one.S {
		t.Errorf("BatchSize 1 changed accounting:\n  0: R %+v S %+v\n  1: R %+v S %+v",
			plain.R, plain.S, one.R, one.S)
	}
}

// TestBatchingReducesFrames pins the tentpole target: at BatchSize 16 a
// probe-heavy run must cross the wire in at most half the frames of the
// unbatched run, for both UpJoin and Grid. (Latency gains on RTT-bearing
// links follow directly: fewer frames = fewer sequential round trips.)
func TestBatchingReducesFrames(t *testing.T) {
	robjs := dataset.GaussianClusters(500, 2, 200, dataset.World, 67)
	sobjs := dataset.GaussianClusters(500, 2, 200, dataset.World, 68)
	spec := Spec{Kind: Distance, Eps: 90}

	for _, alg := range []Algorithm{UpJoin{}, Grid{}} {
		t.Run(alg.Name(), func(t *testing.T) {
			frames := func(batch int) (int, *Result) {
				env := testEnvBatch(t, robjs, sobjs, 250, 1, batch)
				env.Seed = 5
				res, err := alg.Run(context.Background(), env, spec)
				if err != nil {
					t.Fatal(err)
				}
				return res.Stats.R.Messages + res.Stats.S.Messages, res
			}
			plain, resPlain := frames(1)
			batched, resBatched := frames(16)
			if 2*batched > plain {
				t.Errorf("frames: %d unbatched vs %d at BatchSize 16 — want at least 2× fewer", plain, batched)
			}
			assertSameResult(t, alg.Name(), spec, resBatched, resPlain)
			t.Logf("%s: %d frames → %d frames (%.1f×)", alg.Name(), plain, batched, float64(plain)/float64(batched))
		})
	}
}

// TestBatchedSequentialFramingDeterministic: at Parallelism 1 the framing
// (and hence every meter counter) of a batched run must be reproducible —
// the property the batched golden pins.
func TestBatchedSequentialFramingDeterministic(t *testing.T) {
	robjs := dataset.GaussianClusters(400, 4, 300, dataset.World, 69)
	sobjs := dataset.GaussianClusters(400, 4, 300, dataset.World, 70)
	spec := Spec{Kind: Distance, Eps: 90}

	run := func() (netsim.Usage, netsim.Usage) {
		env := testEnvBatch(t, robjs, sobjs, 300, 1, 4)
		env.Seed = 5
		res, err := UpJoin{}.Run(context.Background(), env, spec)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.R, res.Stats.S
	}
	r1, s1 := run()
	for i := 0; i < 3; i++ {
		r2, s2 := run()
		if r1 != r2 || s1 != s2 {
			t.Fatalf("run %d metered differently:\n  first R %+v S %+v\n  now   R %+v S %+v", i+2, r1, s1, r2, s2)
		}
	}
}

// TestBatchedMultiwayMatchesOracle: the chain join hands BatchSize to
// every link's environment; the tuples must match the oracle chain.
func TestBatchedMultiwayMatchesOracle(t *testing.T) {
	datasets := [][]geom.Object{
		dataset.GaussianClusters(150, 3, 300, dataset.World, 201),
		dataset.GaussianClusters(200, 3, 300, dataset.World, 201),
		dataset.GaussianClusters(150, 3, 300, dataset.World, 201),
	}
	eps := []float64{150, 150}
	remotes := make([]Probe, len(datasets))
	for i, objs := range datasets {
		tr := netsim.Serve(server.New("D", objs))
		r := mustRemote(t, "D", tr, netsim.DefaultLink(), 1,
			client.WithBatch(client.BatchConfig{MaxBatch: 8}))
		t.Cleanup(func() { r.Close() })
		remotes[i] = r
	}
	res, err := Multiway{BatchSize: 8}.RunChain(context.Background(), remotes,
		client.Device{BufferObjects: 500}, costmodel.Default(), dataset.World, eps)
	if err != nil {
		t.Fatal(err)
	}
	want := MultiwayOracle(datasets, eps, dataset.World)
	if len(want) == 0 {
		t.Fatal("vacuous: oracle chain empty")
	}
	if !tuplesEqual(res.Tuples, want) {
		t.Fatalf("got %d tuples, oracle %d", len(res.Tuples), len(want))
	}
}

// assertSameResult compares two results under the spec's semantics.
func assertSameResult(t *testing.T, name string, spec Spec, got, want *Result) {
	t.Helper()
	if spec.Kind == IcebergSemi {
		if len(got.Objects) != len(want.Objects) {
			t.Fatalf("%s: %d objects, want %d", name, len(got.Objects), len(want.Objects))
		}
		for i := range got.Objects {
			if got.Objects[i].ID != want.Objects[i].ID {
				t.Fatalf("%s: object %d = id %d, want %d", name, i, got.Objects[i].ID, want.Objects[i].ID)
			}
		}
		return
	}
	if len(got.Pairs) != len(want.Pairs) {
		t.Fatalf("%s: %d pairs, want %d", name, len(got.Pairs), len(want.Pairs))
	}
	for i := range got.Pairs {
		if got.Pairs[i] != want.Pairs[i] {
			t.Fatalf("%s: pair %d = %v, want %v", name, i, got.Pairs[i], want.Pairs[i])
		}
	}
}
