package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/client"
	"repro/internal/costmodel"
	"repro/internal/geom"
)

// Multiway evaluates the paper's stated future-work extension (§6):
// a chain of spatial joins over more than two non-cooperative servers,
// R₀ ⋈ R₁ ⋈ ... ⋈ Rₙ₋₁. Each link of the chain is evaluated as an
// independent pairwise join with the configured two-dataset algorithm
// (so each link benefits from the full adaptive machinery), and the
// device merges consecutive links by hash-joining on the shared
// dataset's object IDs. A link with an empty result empties the chain,
// so evaluation stops early.
//
// Result tuples are ID vectors, one ID per dataset in chain order.
type Multiway struct {
	// Inner is the pairwise algorithm; nil means UpJoin{}.
	Inner Algorithm
	// Parallelism is handed to every link's environment (see
	// Env.Parallelism). Links themselves stay sequential: each consumes
	// the previous link's result.
	Parallelism int
	// BatchSize is handed to every link's environment (see
	// Env.BatchSize); the remotes should be constructed with a matching
	// client.WithBatch.
	BatchSize int
}

// ModelParams aliases the cost-model parameter set for multiway callers.
type ModelParams = costmodel.Params

// Tuple is one multiway result: IDs[i] identifies the qualifying object
// of the i-th dataset in the chain.
type Tuple struct {
	IDs []uint32
}

// MultiwayResult carries the result tuples and each link's Stats.
type MultiwayResult struct {
	Tuples []Tuple
	// StepStats holds the pairwise Stats of every evaluated link, in
	// chain order; links skipped by early termination are absent.
	StepStats []Stats
}

// TotalBytes sums the wire bytes of all evaluated links.
func (r *MultiwayResult) TotalBytes() int {
	total := 0
	for _, st := range r.StepStats {
		total += st.TotalBytes()
	}
	return total
}

// RunChain evaluates the chain over the given probe endpoints (single
// servers or shard routers) with per-link distance thresholds: eps[i]
// constrains the join between datasets i and i+1 (len(eps) =
// len(remotes)-1; a 0 threshold means MBR intersection). Canceling ctx
// aborts the chain between and within links.
func (m Multiway) RunChain(ctx context.Context, remotes []Probe, device client.Device, model ModelParams, window geom.Rect, eps []float64) (*MultiwayResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(remotes) < 2 {
		return nil, fmt.Errorf("core: multiway needs at least two datasets")
	}
	if len(eps) != len(remotes)-1 {
		return nil, fmt.Errorf("core: multiway needs %d thresholds, got %d", len(remotes)-1, len(eps))
	}
	inner := m.Inner
	if inner == nil {
		inner = UpJoin{}
	}

	res := &MultiwayResult{}
	var tuples []Tuple
	for step := 0; step < len(remotes)-1; step++ {
		env := NewEnv(remotes[step], remotes[step+1], device, model, window)
		env.Seed = int64(step + 1)
		env.Parallelism = m.Parallelism
		env.BatchSize = m.BatchSize
		link, err := inner.Run(ctx, env, stepSpec(eps[step]))
		if err != nil {
			return nil, fmt.Errorf("core: multiway link %d: %w", step, err)
		}
		res.StepStats = append(res.StepStats, link.Stats)

		if step == 0 {
			tuples = make([]Tuple, 0, len(link.Pairs))
			for _, p := range link.Pairs {
				tuples = append(tuples, Tuple{IDs: []uint32{p.RID, p.SID}})
			}
		} else {
			tuples = extendTuples(tuples, link.Pairs)
		}
		if len(tuples) == 0 {
			break // an empty link empties the whole chain
		}
	}
	sortTuples(tuples)
	res.Tuples = tuples
	return res, nil
}

// extendTuples hash-joins the accumulated tuples with the next link's
// pairs on the shared dataset's IDs (the tuples' last position = the
// pairs' R side).
func extendTuples(tuples []Tuple, pairs []geom.Pair) []Tuple {
	byShared := make(map[uint32][]uint32)
	for _, p := range pairs {
		byShared[p.RID] = append(byShared[p.RID], p.SID)
	}
	var merged []Tuple
	for _, t := range tuples {
		for _, sid := range byShared[t.IDs[len(t.IDs)-1]] {
			ids := make([]uint32, len(t.IDs)+1)
			copy(ids, t.IDs)
			ids[len(t.IDs)] = sid
			merged = append(merged, Tuple{IDs: ids})
		}
	}
	return merged
}

func stepSpec(eps float64) Spec {
	if eps > 0 {
		return Spec{Kind: Distance, Eps: eps}
	}
	return Spec{Kind: Intersection}
}

func sortTuples(ts []Tuple) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i].IDs, ts[j].IDs
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}

// MultiwayOracle computes the reference chain result locally with the
// same link semantics, for tests and examples.
func MultiwayOracle(datasets [][]geom.Object, eps []float64, window geom.Rect) []Tuple {
	if len(datasets) < 2 || len(eps) != len(datasets)-1 {
		return nil
	}
	var tuples []Tuple
	for step := 0; step < len(datasets)-1; step++ {
		link := Oracle(datasets[step], datasets[step+1], stepSpec(eps[step]), window)
		if step == 0 {
			tuples = make([]Tuple, 0, len(link.Pairs))
			for _, p := range link.Pairs {
				tuples = append(tuples, Tuple{IDs: []uint32{p.RID, p.SID}})
			}
		} else {
			tuples = extendTuples(tuples, link.Pairs)
		}
		if len(tuples) == 0 {
			break
		}
	}
	sortTuples(tuples)
	return tuples
}
