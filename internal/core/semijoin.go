package core

import (
	"context"
	"fmt"

	"repro/internal/geom"
)

// SemiJoin is the distributed indexed-join comparator of §5.3, adapted
// from Tan, Ooi and Abel [16]. It requires both servers to publish their
// R-tree metadata (server.PublishIndex) and works as follows, with the
// PDA acting as the mediator between the two non-cooperating servers:
//
//  1. Identify the smaller dataset from the advertised cardinalities;
//     call it the target and the other the source.
//  2. Download one level of the source's R-tree MBRs (the second-to-last
//     level, as in the paper's experiments) and upload them to the
//     target server.
//  3. The target returns its objects that fall inside (or within ε of)
//     any of those MBRs; the PDA relays them to the source server.
//  4. The source joins the uploaded objects against its dataset and
//     returns the qualifying pairs to the PDA.
//
// Every hop crosses the PDA's metered links, so the reported byte counts
// include both the downloads and the uploads, as in the paper.
type SemiJoin struct{}

// Name implements Algorithm.
func (SemiJoin) Name() string { return "semiJoin" }

// Run implements Algorithm.
func (SemiJoin) Run(ctx context.Context, env *Env, spec Spec) (*Result, error) {
	if spec.Kind == IcebergSemi {
		return nil, fmt.Errorf("core: semiJoin does not support iceberg semantics")
	}
	x, err := newExec(ctx, env, spec, "semiJoin")
	if err != nil {
		return nil, err
	}
	defer x.close()
	if err := semiJoinRun(x); err != nil {
		return nil, err
	}
	return x.finish(), nil
}

// semiJoinRun is the three-phase semi-join body, shared between the fixed
// SemiJoin algorithm and the online planner's OpSemiJoin delegation:
// level download, MBR match, upload join — each an observable transfer
// phase.
func semiJoinRun(x *exec) error {
	env, spec := x.env, x.spec
	infoR, infoS := env.infoR, env.infoS
	if infoR.TreeHeight == 0 || infoS.TreeHeight == 0 {
		return fmt.Errorf("core: semiJoin requires both servers to publish their index")
	}
	// SemiJoin moves whole-dataset structure, so it evaluates the join
	// over the entire data space; restricted query windows would need
	// object geometry the protocol does not relay.
	if !env.Window.Contains(infoR.Bounds.Union(infoS.Bounds)) {
		return fmt.Errorf("core: semiJoin supports whole-space windows only")
	}

	// The source contributes the MBR level; it is the *larger* dataset
	// (its objects never cross the link — only its MBRs and, at the end,
	// the result pairs). The smaller (target) dataset's objects are
	// relayed through the PDA.
	source, target := sideS, sideR
	sourceInfo := infoS
	if infoR.Count > infoS.Count {
		source, target = sideR, sideS
		sourceInfo = infoR
	}

	// Second-to-last level: one above the leaves, or the leaves when the
	// tree is a single level.
	level := 1
	if sourceInfo.TreeHeight < 2 {
		level = 0
	}
	mbrs, err := x.remote(source).LevelMBRs(x.ctx, level)
	if err != nil {
		return err
	}
	x.emit(PhaseTransfer, "transfer/semijoin-mbrs", x.window, 0, 0, 0, "level MBRs downloaded")

	// Relay the MBRs to the target: the upload is metered as part of the
	// MBR-MATCH request, whose response is the qualifying target objects.
	targetObjs, err := x.remote(target).MBRMatch(x.ctx, mbrs, spec.Eps)
	if err != nil {
		return err
	}
	x.emit(PhaseTransfer, "transfer/semijoin-match", x.window, 0, 0, 0, "MBR match relayed")

	// Relay the qualifying objects to the source for the final join.
	pairs, err := x.remote(source).UploadJoin(x.ctx, targetObjs, spec.Eps)
	if err != nil {
		return err
	}
	x.emit(PhaseTransfer, "transfer/semijoin-upload", x.window, 0, 0, 0, "upload join done")

	// UploadJoin returns pairs with the uploaded (target) ID first;
	// normalize so RID is always the R-side object.
	norm := make([]geom.Pair, 0, len(pairs))
	for _, p := range pairs {
		if target == sideR {
			norm = append(norm, geom.Pair{RID: p.RID, SID: p.SID})
		} else {
			norm = append(norm, geom.Pair{RID: p.SID, SID: p.RID})
		}
	}

	// R-side geometry is known only when R was the target.
	rGeom := make(map[uint32]geom.Object, len(targetObjs))
	if target == sideR {
		for _, o := range targetObjs {
			rGeom[o.ID] = o
		}
	}
	x.addPairs(norm, rGeom)
	return nil
}
