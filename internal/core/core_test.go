package core

import (
	"context"
	"testing"

	"repro/internal/client"
	"repro/internal/costmodel"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/netsim"
	"repro/internal/server"
)

// mustRemote wraps client.NewRemote for links known valid at test time.
func mustRemote(t testing.TB, name string, rt netsim.RoundTripper, link netsim.LinkConfig, price float64, opts ...client.Option) *client.Remote {
	t.Helper()
	r, err := client.NewRemote(name, rt, link, price, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// testEnv spins up two in-process servers over the given objects and
// returns an environment with the requested buffer size.
func testEnv(t *testing.T, robjs, sobjs []geom.Object, buffer int, opts ...server.Option) *Env {
	t.Helper()
	srvR := server.New("R", robjs, opts...)
	srvS := server.New("S", sobjs, opts...)
	trR := netsim.Serve(srvR)
	trS := netsim.Serve(srvS)
	r := mustRemote(t, "R", trR, netsim.DefaultLink(), 1)
	s := mustRemote(t, "S", trS, netsim.DefaultLink(), 1)
	t.Cleanup(func() { r.Close(); s.Close() })
	dev := client.Device{BufferObjects: buffer}
	return NewEnv(r, s, dev, costmodel.Default(), geom.Rect{})
}

func pairSetsEqual(a, b []geom.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func allAlgorithms() []Algorithm {
	return []Algorithm{Naive{}, Grid{}, MobiJoin{}, UpJoin{}, SrJoin{}}
}

func TestAllAlgorithmsMatchOracleDistanceJoin(t *testing.T) {
	totalPairs := 0
	for _, k := range []int{1, 4, 128} {
		for _, buffer := range []int{100, 800, 5000} {
			robjs := dataset.GaussianClusters(300, k, 300, dataset.World, int64(k)*10+1)
			sobjs := dataset.GaussianClusters(300, k, 300, dataset.World, int64(k)*10+2)
			spec := Spec{Kind: Distance, Eps: 120}
			want := Oracle(robjs, sobjs, spec, dataset.Bounds(robjs).Union(dataset.Bounds(sobjs)))
			totalPairs += len(want.Pairs)
			for _, alg := range allAlgorithms() {
				env := testEnv(t, robjs, sobjs, buffer)
				got, err := alg.Run(context.Background(), env, spec)
				if err != nil {
					t.Fatalf("k=%d buffer=%d %s: %v", k, buffer, alg.Name(), err)
				}
				if !pairSetsEqual(got.Pairs, want.Pairs) {
					t.Fatalf("k=%d buffer=%d %s: %d pairs, oracle %d",
						k, buffer, alg.Name(), len(got.Pairs), len(want.Pairs))
				}
				if got.Stats.TotalBytes() == 0 {
					t.Fatalf("%s: no traffic metered", alg.Name())
				}
			}
		}
	}
	// With independent cluster centers some k values legitimately join
	// empty (that is the pruning scenario); the suite as a whole must
	// still exercise non-empty results.
	if totalPairs == 0 {
		t.Fatal("vacuous suite: no oracle pairs in any configuration")
	}
}

func TestAllAlgorithmsMatchOracleIntersectionJoin(t *testing.T) {
	robjs := dataset.ClusteredRects(300, 4, 400, 150, dataset.World, 31)
	sobjs := dataset.ClusteredRects(300, 4, 400, 150, dataset.World, 32)
	spec := Spec{Kind: Intersection}
	want := Oracle(robjs, sobjs, spec, dataset.Bounds(robjs).Union(dataset.Bounds(sobjs)))
	if len(want.Pairs) == 0 {
		t.Fatal("vacuous: oracle found nothing")
	}
	for _, alg := range allAlgorithms() {
		env := testEnv(t, robjs, sobjs, 400)
		got, err := alg.Run(context.Background(), env, spec)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if !pairSetsEqual(got.Pairs, want.Pairs) {
			t.Fatalf("%s: %d pairs, oracle %d", alg.Name(), len(got.Pairs), len(want.Pairs))
		}
	}
}

func TestAlgorithmsWithBucketSubmission(t *testing.T) {
	robjs := dataset.GaussianClusters(400, 2, 250, dataset.World, 41)
	sobjs := dataset.GaussianClusters(400, 8, 250, dataset.World, 42)
	spec := Spec{Kind: Distance, Eps: 150}
	want := Oracle(robjs, sobjs, spec, dataset.Bounds(robjs).Union(dataset.Bounds(sobjs)))
	for _, alg := range allAlgorithms() {
		env := testEnv(t, robjs, sobjs, 300)
		env.Model.Bucket = true
		got, err := alg.Run(context.Background(), env, spec)
		if err != nil {
			t.Fatalf("%s bucket: %v", alg.Name(), err)
		}
		if !pairSetsEqual(got.Pairs, want.Pairs) {
			t.Fatalf("%s bucket: %d pairs, oracle %d", alg.Name(), len(got.Pairs), len(want.Pairs))
		}
	}
}

func TestSemiJoinMatchesOracle(t *testing.T) {
	robjs := dataset.Railway(dataset.RailwayConfig{
		Segments: 3000, Stations: 40, Degree: 2, Bounds: dataset.World, Jitter: 20}, 51)
	sobjs := dataset.GaussianClusters(300, 4, 300, dataset.World, 52)
	spec := Spec{Kind: Distance, Eps: 100}
	want := Oracle(robjs, sobjs, spec, dataset.World)
	if len(want.Pairs) == 0 {
		t.Fatal("vacuous: oracle found nothing")
	}
	env := testEnv(t, robjs, sobjs, 800, server.PublishIndex())
	env.Window = dataset.World
	got, err := SemiJoin{}.Run(context.Background(), env, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !pairSetsEqual(got.Pairs, want.Pairs) {
		t.Fatalf("semiJoin: %d pairs, oracle %d", len(got.Pairs), len(want.Pairs))
	}
}

func TestSemiJoinRequiresPublishedIndex(t *testing.T) {
	robjs := dataset.Uniform(100, dataset.World, 61)
	sobjs := dataset.Uniform(100, dataset.World, 62)
	env := testEnv(t, robjs, sobjs, 800) // no PublishIndex
	if _, err := (SemiJoin{}).Run(context.Background(), env, Spec{Kind: Distance, Eps: 100}); err == nil {
		t.Fatal("semiJoin without published indexes should fail")
	}
}

func TestIcebergSemiJoin(t *testing.T) {
	robjs := dataset.GaussianClusters(200, 4, 200, dataset.World, 71)
	sobjs := dataset.GaussianClusters(600, 4, 200, dataset.World, 72)
	for _, m := range []int{1, 3, 10} {
		spec := Spec{Kind: IcebergSemi, Eps: 300, MinMatches: m}
		want := Oracle(robjs, sobjs, spec, dataset.Bounds(robjs).Union(dataset.Bounds(sobjs)))
		for _, alg := range allAlgorithms() {
			env := testEnv(t, robjs, sobjs, 400)
			got, err := alg.Run(context.Background(), env, spec)
			if err != nil {
				t.Fatalf("%s m=%d: %v", alg.Name(), m, err)
			}
			if len(got.Objects) != len(want.Objects) {
				t.Fatalf("%s m=%d: %d objects, oracle %d",
					alg.Name(), m, len(got.Objects), len(want.Objects))
			}
			for i := range want.Objects {
				if got.Objects[i].ID != want.Objects[i].ID {
					t.Fatalf("%s m=%d: object %d id %d, oracle %d",
						alg.Name(), m, i, got.Objects[i].ID, want.Objects[i].ID)
				}
			}
		}
	}
}

func TestEmptyDatasetsPruneEverything(t *testing.T) {
	sobjs := dataset.Uniform(100, dataset.World, 81)
	for _, alg := range allAlgorithms() {
		env := testEnv(t, nil, sobjs, 800)
		env.Window = dataset.World
		got, err := alg.Run(context.Background(), env, Spec{Kind: Distance, Eps: 100})
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if len(got.Pairs) != 0 {
			t.Fatalf("%s: %d pairs from empty R", alg.Name(), len(got.Pairs))
		}
	}
}

func TestWindowedJoinRestrictsResults(t *testing.T) {
	robjs := dataset.Uniform(400, dataset.World, 91)
	sobjs := dataset.Uniform(400, dataset.World, 92)
	window := geom.R(0, 0, 5000, 5000) // bottom-left quarter
	spec := Spec{Kind: Distance, Eps: 200}
	want := Oracle(robjs, sobjs, spec, window)
	full := Oracle(robjs, sobjs, spec, dataset.World)
	if len(want.Pairs) == 0 || len(want.Pairs) >= len(full.Pairs) {
		t.Fatalf("vacuous window test: %d vs %d pairs", len(want.Pairs), len(full.Pairs))
	}
	for _, alg := range allAlgorithms() {
		env := testEnv(t, robjs, sobjs, 800)
		env.Window = window
		got, err := alg.Run(context.Background(), env, spec)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if !pairSetsEqual(got.Pairs, want.Pairs) {
			t.Fatalf("%s windowed: %d pairs, oracle %d", alg.Name(), len(got.Pairs), len(want.Pairs))
		}
	}
}

func TestCoincidentPointsOverflowingBufferTerminate(t *testing.T) {
	// 50 identical points on each side with a buffer of 10: no split can
	// separate them, so algorithms must hit the depth guard and still
	// terminate (NLSJ streams, HBSJ errors out or is avoided).
	var robjs, sobjs []geom.Object
	for i := 0; i < 50; i++ {
		robjs = append(robjs, geom.PointObject(uint32(i), geom.Pt(5000, 5000)))
		sobjs = append(sobjs, geom.PointObject(uint32(i), geom.Pt(5000, 5000)))
	}
	spec := Spec{Kind: Distance, Eps: 10}
	for _, alg := range []Algorithm{MobiJoin{}, UpJoin{}, SrJoin{}} {
		env := testEnv(t, robjs, sobjs, 10)
		env.Window = dataset.World
		got, err := alg.Run(context.Background(), env, spec)
		if err != nil {
			// An explicit depth-guard error is acceptable; a hang is not.
			t.Logf("%s: %v", alg.Name(), err)
			continue
		}
		if len(got.Pairs) != 2500 {
			t.Fatalf("%s: %d pairs, want 2500", alg.Name(), len(got.Pairs))
		}
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Kind: Intersection, Eps: 5},
		{Kind: Distance, Eps: -1},
		{Kind: IcebergSemi, Eps: 5, MinMatches: 0},
		{Kind: Kind(99)},
	}
	for _, sp := range bad {
		if err := sp.Validate(); err == nil {
			t.Errorf("spec %+v should be invalid", sp)
		}
	}
	good := []Spec{
		{Kind: Intersection},
		{Kind: Distance, Eps: 0},
		{Kind: Distance, Eps: 10},
		{Kind: IcebergSemi, Eps: 10, MinMatches: 1},
	}
	for _, sp := range good {
		if err := sp.Validate(); err != nil {
			t.Errorf("spec %+v should be valid: %v", sp, err)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	// Same seed on both sides: overlapping clusters guarantee that some
	// partition reaches a physical operator.
	robjs := dataset.GaussianClusters(300, 2, 200, dataset.World, 101)
	sobjs := dataset.GaussianClusters(300, 2, 200, dataset.World, 101)
	env := testEnv(t, robjs, sobjs, 200)
	got, err := UpJoin{}.Run(context.Background(), env, Spec{Kind: Distance, Eps: 100})
	if err != nil {
		t.Fatal(err)
	}
	st := got.Stats
	if st.TotalBytes() != st.R.WireBytes+st.S.WireBytes {
		t.Fatal("TotalBytes mismatch")
	}
	if st.TotalBytes() <= 0 || st.TotalQueries() <= 0 {
		t.Fatalf("implausible stats: %+v", st)
	}
	if st.AggQueries == 0 {
		t.Fatal("UpJoin must issue aggregate queries")
	}
	if st.HBSJ+st.NLSJ == 0 {
		t.Fatal("no physical operator was ever applied")
	}
	if st.MoneyCost != float64(st.TotalBytes()) {
		t.Fatalf("unit tariffs: money %v != bytes %d", st.MoneyCost, st.TotalBytes())
	}
}

func TestPrunedCounterOnSkewedData(t *testing.T) {
	// Anti-correlated clusters (Fig. 2a): R in two corners, S in the two
	// other corners; UpJoin should prune aggressively.
	var robjs, sobjs []geom.Object
	id := uint32(0)
	for i := 0; i < 250; i++ {
		robjs = append(robjs, geom.PointObject(id, geom.Pt(1000+float64(i%50), 1000+float64(i/50))))
		robjs = append(robjs, geom.PointObject(id+1, geom.Pt(9000+float64(i%50), 9000+float64(i/50))))
		sobjs = append(sobjs, geom.PointObject(id+2, geom.Pt(1000+float64(i%50), 9000+float64(i/50))))
		sobjs = append(sobjs, geom.PointObject(id+3, geom.Pt(9000+float64(i%50), 1000+float64(i/50))))
		id += 4
	}
	env := testEnv(t, robjs, sobjs, 800)
	env.Window = dataset.World
	got, err := UpJoin{}.Run(context.Background(), env, Spec{Kind: Distance, Eps: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Pairs) != 0 {
		t.Fatalf("anti-correlated data should join empty, got %d pairs", len(got.Pairs))
	}
	if got.Stats.Pruned == 0 {
		t.Fatal("expected pruning on anti-correlated clusters")
	}
	// UpJoin must beat Naive by a wide margin here.
	envN := testEnv(t, robjs, sobjs, 800)
	envN.Window = dataset.World
	naive, err := Naive{}.Run(context.Background(), envN, Spec{Kind: Distance, Eps: 50})
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.TotalBytes()*2 >= naive.Stats.TotalBytes() {
		t.Fatalf("UpJoin (%d bytes) should be far cheaper than Naive (%d bytes)",
			got.Stats.TotalBytes(), naive.Stats.TotalBytes())
	}
}

func TestAlgorithmsOverTCP(t *testing.T) {
	robjs := dataset.GaussianClusters(200, 4, 200, dataset.World, 111)
	sobjs := dataset.GaussianClusters(200, 4, 200, dataset.World, 112)
	spec := Spec{Kind: Distance, Eps: 150}
	want := Oracle(robjs, sobjs, spec, dataset.Bounds(robjs).Union(dataset.Bounds(sobjs)))

	srvR, err := netsim.ListenAndServe("127.0.0.1:0", server.New("R", robjs))
	if err != nil {
		t.Fatal(err)
	}
	defer srvR.Close()
	srvS, err := netsim.ListenAndServe("127.0.0.1:0", server.New("S", sobjs))
	if err != nil {
		t.Fatal(err)
	}
	defer srvS.Close()
	trR, err := netsim.DialTCP(srvR.Addr())
	if err != nil {
		t.Fatal(err)
	}
	trS, err := netsim.DialTCP(srvS.Addr())
	if err != nil {
		t.Fatal(err)
	}
	r := mustRemote(t, "R", trR, netsim.DefaultLink(), 1)
	s := mustRemote(t, "S", trS, netsim.DefaultLink(), 1)
	defer r.Close()
	defer s.Close()
	env := NewEnv(r, s, client.Device{BufferObjects: 300}, costmodel.Default(), geom.Rect{})
	got, err := UpJoin{}.Run(context.Background(), env, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !pairSetsEqual(got.Pairs, want.Pairs) {
		t.Fatalf("TCP upJoin: %d pairs, oracle %d", len(got.Pairs), len(want.Pairs))
	}
}

func TestChannelAndTCPSameByteCounts(t *testing.T) {
	robjs := dataset.GaussianClusters(150, 2, 200, dataset.World, 121)
	sobjs := dataset.GaussianClusters(150, 2, 200, dataset.World, 122)
	spec := Spec{Kind: Distance, Eps: 100}

	envCh := testEnv(t, robjs, sobjs, 200)
	envCh.Seed = 7
	a, err := UpJoin{}.Run(context.Background(), envCh, spec)
	if err != nil {
		t.Fatal(err)
	}

	srvR, _ := netsim.ListenAndServe("127.0.0.1:0", server.New("R", robjs))
	defer srvR.Close()
	srvS, _ := netsim.ListenAndServe("127.0.0.1:0", server.New("S", sobjs))
	defer srvS.Close()
	trR, _ := netsim.DialTCP(srvR.Addr())
	trS, _ := netsim.DialTCP(srvS.Addr())
	r := mustRemote(t, "R", trR, netsim.DefaultLink(), 1)
	s := mustRemote(t, "S", trS, netsim.DefaultLink(), 1)
	defer r.Close()
	defer s.Close()
	envTCP := NewEnv(r, s, client.Device{BufferObjects: 200}, costmodel.Default(), geom.Rect{})
	envTCP.Seed = 7
	b, err := UpJoin{}.Run(context.Background(), envTCP, spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.TotalBytes() != b.Stats.TotalBytes() {
		t.Fatalf("transport changed accounting: channel %d vs TCP %d",
			a.Stats.TotalBytes(), b.Stats.TotalBytes())
	}
}

func TestOracleWindowSemantics(t *testing.T) {
	r := []geom.Object{geom.PointObject(1, geom.Pt(10, 10)), geom.PointObject(2, geom.Pt(90, 90))}
	s := []geom.Object{geom.PointObject(5, geom.Pt(12, 10)), geom.PointObject(6, geom.Pt(88, 90))}
	spec := Spec{Kind: Distance, Eps: 5}
	full := Oracle(r, s, spec, geom.R(0, 0, 100, 100))
	if len(full.Pairs) != 2 {
		t.Fatalf("full oracle: %d pairs", len(full.Pairs))
	}
	half := Oracle(r, s, spec, geom.R(0, 0, 50, 50))
	if len(half.Pairs) != 1 || half.Pairs[0] != (geom.Pair{RID: 1, SID: 5}) {
		t.Fatalf("half oracle: %v", half.Pairs)
	}
}

func TestKindString(t *testing.T) {
	if Intersection.String() != "intersection" || Distance.String() != "distance" ||
		IcebergSemi.String() != "iceberg-semi" {
		t.Fatal("kind strings wrong")
	}
	if Kind(42).String() == "" {
		t.Fatal("unknown kind should still print")
	}
}
