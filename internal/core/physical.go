package core

import (
	"fmt"
	"sync"

	"repro/internal/bufpool"
	"repro/internal/client"
	"repro/internal/geom"
	"repro/internal/memjoin"
	"repro/internal/wire"
)

// joinScratch is the reusable device-side state of one local join or
// probe collection: the pair buffer handed to the grid join and the
// R-geometry map handed to the sink. Pooled because HBSJ partitions and
// NLSJ probes run concurrently under a parallel environment.
type joinScratch struct {
	pairs []geom.Pair
	rg    map[uint32]geom.Object
}

var joinScratchPool = sync.Pool{
	New: func() any { return &joinScratch{rg: make(map[uint32]geom.Object)} },
}

func getJoinScratch() *joinScratch {
	sc := joinScratchPool.Get().(*joinScratch)
	sc.pairs = sc.pairs[:0]
	clear(sc.rg)
	return sc
}

// doHBSJ executes the hash-based spatial join on partition w: download
// both windows and join on the device. When the buffer cannot hold both,
// the window is split into quadrants recursively with COUNT pruning at
// each level, exactly as §3/§4.2 describe ("HBSJ is recursively executed
// and pruning can also be applied at each recursion level").
//
// Under a parallel environment the R-side and S-side requests of each
// step (re-counts, quadrant counts, window downloads) overlap, and the
// four quadrants of a split are processed by the worker pool — so while
// one quadrant's objects are being joined on the device, a sibling's
// download is in flight.
func (x *exec) doHBSJ(w geom.Rect, nr, ns cnt, depth int) error {
	if nr.exact && ns.exact && (nr.n == 0 || ns.n == 0) {
		x.dec.pruned.Add(1)
		return nil
	}
	var err error
	if nr, ns, err = x.ensureExactBoth(w, nr, ns); err != nil {
		return err
	}
	if nr.n == 0 || ns.n == 0 {
		x.dec.pruned.Add(1)
		return nil
	}
	if !x.env.Device.CanHold(nr.n + ns.n) {
		if !x.splittable(w, depth) {
			// The window is denser than the buffer and cannot be split
			// usefully: stream the join as NLSJ probes instead (always
			// feasible — outer objects are probed one bucket at a time).
			outer := sideS
			if nr.n < ns.n {
				outer = sideR
			}
			return x.doNLSJ(w, outer, nr, ns)
		}
		x.dec.repart.Add(1)
		x.emit(PhaseReplan, "replan/hbsj-split", w, nr.n, ns.n, 0, "buffer exceeded, splitting")
		qr, qs, err := x.quadrantCountsBoth(w, nr, ns)
		if err != nil {
			return err
		}
		quads := w.Quadrants()
		return x.fanoutSiblings(4, func(i int) error {
			return x.doHBSJ(quads[i], qr[i], qs[i], depth+1)
		})
	}

	x.dec.hbsj.Add(1)
	if x.observing() {
		x.emit(PhaseTransfer, "transfer/hbsj", w, nr.n, ns.n, x.bytesModel().C1(x.modelStats(w, nr, ns)), "")
	}
	var robjs, sobjs []geom.Object
	err = x.both(
		func() error {
			var err error
			robjs, err = x.env.R.Window(x.ctx, x.fetchWindow(sideR, w))
			return err
		},
		func() error {
			var err error
			sobjs, err = x.env.S.Window(x.ctx, x.fetchWindow(sideS, w))
			return err
		},
	)
	if err != nil {
		return err
	}
	x.joinLocal(robjs, sobjs)
	return nil
}

// joinLocal joins two downloaded windows on the device and records the
// pairs. Global dedup happens at result assembly, so the reference-point
// rule is not needed here. The pair buffer and geometry map come from the
// pooled scratch; addPairs copies out of both, so they are safe to reuse
// immediately.
func (x *exec) joinLocal(robjs, sobjs []geom.Object) {
	sc := getJoinScratch()
	sc.pairs = memjoin.GridJoin(robjs, sobjs, x.pred, memjoin.Options{}, sc.pairs)
	for _, o := range robjs {
		sc.rg[o.ID] = o
	}
	x.addPairs(sc.pairs, sc.rg)
	joinScratchPool.Put(sc)
}

// doNLSJ executes the nested-loop spatial join on partition w with the
// given outer side: an outer phase that downloads the outer window,
// then a probe phase querying the inner server once per outer object
// (or in buckets, Eq. 6, when the model is configured for bucket
// submission). The two phases are separate methods so the online
// planner can insert a density checkpoint between them — the downloaded
// outer objects are a resumable observation, reused whichever operator
// finishes the window. Under a parallel environment the per-object
// probes are spread over the worker pool; each probe is an independent
// request, so the probe set — and the metered bytes — do not depend on
// scheduling.
//
// For iceberg semi-joins with outer R over a whole-space window, probes
// are aggregate RANGE-COUNT queries: only the per-object match count is
// transferred, never the matching objects.
func (x *exec) doNLSJ(w geom.Rect, outer side, nr, ns cnt) error {
	outerObjs, done, err := x.nlsjOuterPhase(w, outer, nr, ns)
	if done || err != nil {
		return err
	}
	return x.nlsjProbePhase(w, outer, outerObjs)
}

// nlsjOuterPhase is NLSJ's first phase: confirm the counts, prune empty
// windows, and download the outer relation's window. done reports that
// the window needs no probe phase (pruned or empty download).
func (x *exec) nlsjOuterPhase(w geom.Rect, outer side, nr, ns cnt) (outerObjs []geom.Object, done bool, err error) {
	if nr, ns, err = x.ensureExactBoth(w, nr, ns); err != nil {
		return nil, true, err
	}
	if nr.n == 0 || ns.n == 0 {
		x.dec.pruned.Add(1)
		return nil, true, nil
	}
	x.dec.nlsj.Add(1)

	outerObjs, err = x.remote(outer).Window(x.ctx, x.fetchWindow(outer, w))
	if err != nil {
		return nil, true, err
	}
	if x.observing() {
		p := x.bytesModel()
		x.emit(PhaseTransfer, "transfer/nlsj-outer", w, nr.n, ns.n,
			p.QueryBytes()+p.TB(len(outerObjs)*p.BObj), "outer window downloaded")
	}
	return outerObjs, len(outerObjs) == 0, nil
}

// nlsjProbePhase is NLSJ's second phase: probe the inner server with the
// outer objects downloaded by nlsjOuterPhase.
func (x *exec) nlsjProbePhase(w geom.Rect, outer side, outerObjs []geom.Object) error {
	inner := sideS
	if outer == sideS {
		inner = sideR
	}
	if x.spec.Kind == IcebergSemi && outer == sideR && x.icebergCountable() {
		return x.icebergCountProbes(outerObjs)
	}

	if x.env.Model.Bucket {
		err := x.bucketProbes(w, outer, inner, outerObjs)
		if err != errNonPointBucket {
			return err
		}
		// Bucket probing requires point outers; fall back to per-object
		// probing otherwise.
	}
	return x.singleProbes(w, outer, inner, outerObjs)
}

// singleProbes sends one query per outer object: an ε-RANGE query for
// point outers, a WINDOW query over the ε-expanded MBR otherwise (the
// paper's "simulate ε-RANGE by a WINDOW query", §3). Under a batching
// run the same probe set travels multiplexed instead.
func (x *exec) singleProbes(w geom.Rect, outer, inner side, outerObjs []geom.Object) error {
	if x.batching() {
		return x.singleProbesBatched(w, outer, inner, outerObjs)
	}
	rin := x.remote(inner)
	return x.fanout(len(outerObjs), func(i int) error {
		o := outerObjs[i]
		var matches []geom.Object
		var err error
		if o.IsPoint() && x.spec.Eps > 0 {
			matches, err = rin.Range(x.ctx, o.Center(), x.spec.Eps)
		} else {
			probe := o.MBR
			if x.spec.Eps > 0 {
				probe = probe.Expand(x.spec.Eps)
			}
			matches, err = rin.Window(x.ctx, probe)
		}
		if err != nil {
			return err
		}
		x.collectProbe(w, outer, o, matches)
		return nil
	})
}

// probeReq encodes the probe frame singleProbes would issue for one
// outer object, into a pooled buffer.
func (x *exec) probeReq(o geom.Object) []byte {
	if o.IsPoint() && x.spec.Eps > 0 {
		return wire.AppendRange(bufpool.Get(), o.Center(), x.spec.Eps)
	}
	probe := o.MBR
	if x.spec.Eps > 0 {
		probe = probe.Expand(x.spec.Eps)
	}
	return wire.AppendWindow(bufpool.Get(), probe)
}

// singleProbesBatched issues exactly the probe set of singleProbes, but
// multiplexed through batchRound: each BatchSize chunk of outer objects
// is one MsgBatch envelope answered by one reply.
func (x *exec) singleProbesBatched(w geom.Rect, outer, inner side, outerObjs []geom.Object) error {
	return x.batchRound(x.remote(inner), len(outerObjs),
		func(i int) []byte { return x.probeReq(outerObjs[i]) },
		func(i int, c *client.Call) error {
			matches, err := c.Objects()
			if err != nil {
				return err
			}
			x.collectProbe(w, outer, outerObjs[i], matches)
			return nil
		})
}

// errNonPointBucket signals that bucket probing is not applicable.
var errNonPointBucket = fmt.Errorf("core: bucket probes require point outer objects")

// bucketProbes submits outer objects as bucket ε-RANGE queries sized to
// the device buffer. Only point outers are supported (the bucket wire
// format carries probe points). The chunking is fixed by the outer list
// before any request is issued, so concurrent buckets stay byte-identical
// to sequential ones.
func (x *exec) bucketProbes(w geom.Rect, outer, inner side, outerObjs []geom.Object) error {
	for _, o := range outerObjs {
		if !o.IsPoint() || x.spec.Eps <= 0 {
			return errNonPointBucket
		}
	}
	rin := x.remote(inner)
	bucket := x.env.Device.BufferObjects
	if bucket <= 0 || bucket > len(outerObjs) {
		bucket = len(outerObjs)
	}
	nChunks := (len(outerObjs) + bucket - 1) / bucket
	return x.fanout(nChunks, func(ci int) error {
		start := ci * bucket
		end := start + bucket
		if end > len(outerObjs) {
			end = len(outerObjs)
		}
		chunk := outerObjs[start:end]
		pts := make([]geom.Point, len(chunk))
		for i, o := range chunk {
			pts[i] = o.Center()
		}
		groups, err := rin.BucketRange(x.ctx, pts, x.spec.Eps)
		if err != nil {
			return err
		}
		for i, g := range groups {
			x.collectProbe(w, outer, chunk[i], g)
		}
		return nil
	})
}

// collectProbe records the pairs produced by one outer object's probe.
// Matches are filtered by the predicate (window probes over-approximate
// distance) and by the query-window semantics.
func (x *exec) collectProbe(w geom.Rect, outer side, o geom.Object, matches []geom.Object) {
	sc := getJoinScratch()
	for _, m := range matches {
		if !x.pred.Match(o.MBR, m.MBR) {
			continue
		}
		var r, s geom.Object
		if outer == sideR {
			r, s = o, m
		} else {
			r, s = m, o
		}
		// Window semantics: the pair's reference point must lie in the
		// effective query window.
		if p, ok := geom.RefPointEps(r.MBR, s.MBR, x.spec.Eps); !ok || !x.window.ContainsPoint(p) {
			continue
		}
		sc.pairs = append(sc.pairs, geom.Pair{RID: r.ID, SID: s.ID})
		sc.rg[r.ID] = r
	}
	x.addPairs(sc.pairs, sc.rg)
	joinScratchPool.Put(sc)
}

// icebergCountable reports whether aggregate count-probes preserve the
// iceberg semantics: the query window must cover the whole S dataset
// (RANGE-COUNT counts matches anywhere in S) and the R objects must be
// points (RANGE-COUNT probes are points).
func (x *exec) icebergCountable() bool {
	return x.pointData(sideR) && x.window.Contains(x.env.infoS.Bounds)
}

// icebergCountProbes obtains each outer R object's global match count
// with one aggregate query (or one bucket of them), transferring eight
// bytes per probe instead of the matching objects. Each R id is probed at
// most once across the whole execution: ids are claimed in the shared
// ledger (under the sink mutex) before any probe is issued, so concurrent
// partitions sharing an object through overlapping ε/2-expanded fetch
// windows never probe it twice.
func (x *exec) icebergCountProbes(outerObjs []geom.Object) error {
	fresh := outerObjs[:0:0]
	x.mu.Lock()
	for _, o := range outerObjs {
		if !x.probed[o.ID] {
			x.probed[o.ID] = true
			x.robjs[o.ID] = o
			fresh = append(fresh, o)
		}
	}
	x.mu.Unlock()
	if len(fresh) == 0 {
		return nil
	}
	if x.env.Model.Bucket {
		pts := make([]geom.Point, len(fresh))
		for i, o := range fresh {
			pts[i] = o.Center()
		}
		x.dec.agg.Add(int64(len(fresh)))
		ns, err := x.env.S.BucketRangeCount(x.ctx, pts, x.spec.Eps)
		if err != nil {
			return err
		}
		x.mu.Lock()
		for i, n := range ns {
			x.counts[fresh[i].ID] = int(n)
		}
		x.mu.Unlock()
		return nil
	}
	if x.batching() {
		return x.icebergCountProbesBatched(fresh)
	}
	return x.fanout(len(fresh), func(i int) error {
		o := fresh[i]
		x.dec.agg.Add(1)
		n, err := x.env.S.RangeCount(x.ctx, o.Center(), x.spec.Eps)
		if err != nil {
			return err
		}
		x.mu.Lock()
		x.counts[o.ID] = n
		x.mu.Unlock()
		return nil
	})
}

// icebergCountProbesBatched multiplexes the aggregate count-probes
// through batchRound: chunks of BatchSize RANGE-COUNT sub-requests per
// envelope, eight bytes of answer per probe, one frame header per
// chunk. The probe set — and the claim order in the shared ledger,
// already fixed by the caller — is identical to the unbatched path.
func (x *exec) icebergCountProbesBatched(fresh []geom.Object) error {
	x.dec.agg.Add(int64(len(fresh)))
	return x.batchRound(x.env.S, len(fresh),
		func(i int) []byte { return wire.AppendRangeCount(bufpool.Get(), fresh[i].Center(), x.spec.Eps) },
		func(i int, c *client.Call) error {
			n, err := c.Count()
			if err != nil {
				return err
			}
			x.mu.Lock()
			x.counts[fresh[i].ID] = n
			x.mu.Unlock()
			return nil
		})
}
