package core

import (
	"context"
	"errors"
	"sync"

	"repro/internal/bufpool"
	"repro/internal/client"
	"repro/internal/costmodel"
	"repro/internal/geom"
	"repro/internal/health"
	"repro/internal/memjoin"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// maxDepth bounds the recursive partitioning of all algorithms. At 32
// levels the cells of any realistic window are far below coordinate
// resolution; hitting the bound (e.g. many coincident points exceeding
// the buffer) forces a physical operator instead of further splitting.
const maxDepth = 32

// side identifies a dataset within an execution.
type side int

const (
	sideR side = iota
	sideS
)

// exec carries the per-run state shared by all algorithms: environment,
// spec, predicate, result sink, decision counters, and the worker pool of
// the concurrent engine (see parallel.go). The sink and the iceberg
// ledger are guarded by mu; decision counters are atomics.
type exec struct {
	env  *Env
	spec Spec
	pred memjoin.Pred
	dec  decisions
	par  *gate // nil = sequential execution
	// alg is the running algorithm's name, stamped on phase events.
	alg string
	// r0 and s0 are the meter snapshots taken when the run began (after
	// prepare), so Stats and phase events cover exactly this run.
	r0, s0 netsim.Usage
	// rl0 and sl0 snapshot the per-tree-level usage of each relation at
	// run start (nil for flat/unsharded relations), so Stats.RLevels and
	// SLevels cover exactly this run too.
	rl0, sl0 []netsim.Usage
	// explain, non-nil only for the adaptive algorithm, accumulates the
	// phase-by-phase estimated-vs-metered report attached to the Result.
	// Its phase log is appended from concurrent workers under explainMu.
	explain   *Explain
	explainMu sync.Mutex
	// ctx is the run's context: a cancellable child of the caller's
	// context. The first error anywhere in the run cancels it, so every
	// sibling probe or download in flight is interrupted instead of
	// running to completion against a failed execution.
	ctx       context.Context
	cancelRun context.CancelFunc
	// window is the effective query window of this run: env.Window
	// expanded by ε/2 (the root is a partition cell like any other), so
	// that reference points on the window hull are not lost. Oracle
	// applies the same expansion.
	window geom.Rect
	// rep collects the completeness gaps of a degraded run. Non-nil only
	// under Env.AllowPartial; it rides in ctx (health.WithReport) so the
	// shard routers can record the shards they routed around.
	rep *health.Report

	// failMu guards failErr, the first non-cancellation error of the run
	// (the root cause reported by Run when secondary workers fail with
	// context.Canceled after the run context was torn down).
	failMu  sync.Mutex
	failErr error

	// sink (all fields below are guarded by mu)
	mu     sync.Mutex
	pairs  []geom.Pair
	robjs  map[uint32]geom.Object // R geometry seen (for iceberg output)
	counts map[uint32]int         // iceberg: exact global match count per R id
	probed map[uint32]bool        // iceberg: R ids already count-probed
}

func newExec(ctx context.Context, env *Env, spec Spec, alg string) (*exec, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	var rep *health.Report
	if env.AllowPartial {
		// Installed before prepare so even the INFO fetch may degrade:
		// every query of the run (prepare included) carries the collector.
		rep = health.NewReport()
		ctx = health.WithReport(ctx, rep)
	}
	if err := env.prepare(ctx); err != nil {
		return nil, err
	}
	x := &exec{
		env:   env,
		spec:  spec,
		pred:  spec.pred(),
		par:   newGate(env.Parallelism),
		alg:   alg,
		robjs: make(map[uint32]geom.Object),
		rep:   rep,
	}
	// Snapshot the meters after prepare: INFO traffic belongs to the
	// environment, not to any one run, exactly as when the algorithms
	// snapshotted around newExec themselves.
	x.r0, x.s0 = env.Usage()
	x.rl0, x.sl0 = levelUsages(env.R), levelUsages(env.S)
	x.ctx, x.cancelRun = context.WithCancel(ctx)
	x.window = env.Window
	if spec.Eps > 0 {
		x.window = env.Window.Expand(spec.Eps / 2)
	}
	if spec.Kind == IcebergSemi {
		x.counts = make(map[uint32]int)
		x.probed = make(map[uint32]bool)
	}
	return x, nil
}

// close releases the run context. Algorithms defer it so an aborted run
// does not leak its context's resources.
func (x *exec) close() { x.cancelRun() }

// fail records err as the run's root failure — unless it is a secondary
// cancellation triggered by an earlier failure — and cancels the run
// context, interrupting every sibling operation still in flight.
func (x *exec) fail(err error) {
	if err == nil {
		return
	}
	x.failMu.Lock()
	if x.failErr == nil && !errors.Is(err, context.Canceled) {
		x.failErr = err
	}
	x.failMu.Unlock()
	x.cancelRun()
}

// cause maps a phase error to the run's root failure: once fail has
// recorded a real error, sibling workers observe context.Canceled, and
// reporting that instead of the root cause would hide the actual fault.
func (x *exec) cause(err error) error {
	if err == nil {
		return nil
	}
	x.failMu.Lock()
	defer x.failMu.Unlock()
	if x.failErr != nil {
		return x.failErr
	}
	return err
}

// trace emits a decision-log line when the environment requests it.
func (x *exec) trace(format string, args ...any) {
	if x.env.Trace != nil {
		x.env.Trace(format, args...)
	}
}

// remote returns the probe endpoint for one side.
func (x *exec) remote(d side) Probe {
	if d == sideR {
		return x.env.R
	}
	return x.env.S
}

// pointData reports whether the side's dataset is point-only (from INFO).
func (x *exec) pointData(d side) bool {
	if d == sideR {
		return x.env.infoR.PointData
	}
	return x.env.infoS.PointData
}

// fetchWindow returns the window used to retrieve either side's objects
// for partition w: for distance joins the cell is expanded by ε/2 on
// every side (§3: "the cells are extended by ε/2 at each side before they
// are sent as window queries"), so that any pair whose reference point
// (geom.RefPointEps) lies in w has both objects inside the fetch windows.
func (x *exec) fetchWindow(d side, w geom.Rect) geom.Rect {
	if x.spec.Eps > 0 {
		return w.Expand(x.spec.Eps / 2)
	}
	return w
}

// splittable reports whether partitioning w further can possibly help.
// Below a cell extent of ~2ε the ε-expansion of the R-side fetch windows
// dominates the cell itself, so quadrant counts cannot shrink and no
// pruning is possible; recursing there only burns aggregate queries (and,
// in degenerate cases, never terminates). The depth bound covers ε = 0
// workloads with coincident objects.
func (x *exec) splittable(w geom.Rect, depth int) bool {
	if depth >= maxDepth {
		return false
	}
	if x.spec.Eps > 0 {
		lim := 2 * x.spec.Eps
		if w.Width() <= lim && w.Height() <= lim {
			return false
		}
	}
	return true
}

// count issues one COUNT aggregate query for side d on partition w.
func (x *exec) count(d side, w geom.Rect) (int, error) {
	x.dec.agg.Add(1)
	return x.countRemote(d, x.fetchWindow(d, w))
}

// batching reports whether this run multiplexes probes into MsgBatch
// envelopes.
func (x *exec) batching() bool { return x.env.BatchSize > 1 }

// countRemote issues one COUNT on the already-fetch-expanded window fw.
// Under a batching parallel run the lone query goes through the link's
// batcher, so counts issued by concurrent sibling partitions coalesce
// via the linger trigger. Sequential runs keep the blocking path: no
// concurrent caller can ever arrive, so parking the query would only
// add latency (and the deterministic framing the goldens pin must not
// depend on timer behaviour).
func (x *exec) countRemote(d side, fw geom.Rect) (int, error) {
	if x.batching() && x.parallel() {
		c := x.remote(d).GoBatch(x.ctx, [][]byte{wire.AppendCount(bufpool.Get(), fw)})[0]
		return c.Count()
	}
	return x.remote(d).Count(x.ctx, fw)
}

// batchRound is the shared shape of every multiplexed probe loop: n
// probes on one remote, chunked by BatchSize — the chunking fixed before
// any request is issued, so sequential runs produce a deterministic
// frame sequence — with each chunk submitted atomically (GoBatch) and
// flushed as one probe group, and chunks fanned out on the worker pool
// so in-flight envelopes stay bounded by Parallelism. encode builds the
// i-th request frame (into a pooled buffer whose ownership passes to
// the client); collect consumes the i-th completed Call.
//
// collect is invoked for every call of a chunk even after one has
// failed: each Call must be drained by exactly one accessor so its
// pooled reply frame is recycled. Work collected after the first error
// is discarded with the failed run.
func (x *exec) batchRound(rem Probe, n int, encode func(i int) []byte, collect func(i int, c *client.Call) error) error {
	bs := x.env.BatchSize
	nChunks := (n + bs - 1) / bs
	return x.fanout(nChunks, func(ci int) error {
		start := ci * bs
		end := min(start+bs, n)
		reqs := make([][]byte, end-start)
		for i := range reqs {
			reqs[i] = encode(start + i)
		}
		calls := rem.GoBatch(x.ctx, reqs)
		rem.Flush()
		var firstErr error
		for i, c := range calls {
			if err := collect(start+i, c); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	})
}

// batchCounts issues one COUNT per window for side d, multiplexed
// through batchRound. Counts are returned in window order.
func (x *exec) batchCounts(d side, ws []geom.Rect) ([]int, error) {
	x.dec.agg.Add(int64(len(ws)))
	ns := make([]int, len(ws))
	err := x.batchRound(x.remote(d), len(ws),
		func(i int) []byte { return wire.AppendCount(bufpool.Get(), x.fetchWindow(d, ws[i])) },
		func(i int, c *client.Call) error {
			n, err := c.Count()
			if err != nil {
				return err
			}
			ns[i] = n
			return nil
		})
	if err != nil {
		return nil, err
	}
	return ns, nil
}

// cnt is a partition-count annotated with whether it was measured (true)
// or estimated under a uniformity assumption (false).
type cnt struct {
	n     int
	exact bool
}

func exact(n int) cnt  { return cnt{n: n, exact: true} }
func approx(n int) cnt { return cnt{n: n} }

// ensureExact re-counts w when c is an estimate. Physical operators call
// it before acting, implementing UpJoin's "issue additional aggregate
// queries only when accuracy is crucial".
func (x *exec) ensureExact(d side, w geom.Rect, c cnt) (cnt, error) {
	if c.exact {
		return c, nil
	}
	n, err := x.count(d, w)
	if err != nil {
		return c, err
	}
	return exact(n), nil
}

// quadrantCounts returns the exact counts of the four quadrants of w for
// side d. For point datasets it issues three COUNT queries and derives
// the fourth from the parent count (|Dw'4| = |Dw| - Σ|Dw'i|, §4.1); MBR
// datasets replicate across quadrants, so all four are queried.
func (x *exec) quadrantCounts(d side, w geom.Rect, parent cnt) ([4]cnt, error) {
	var out [4]cnt
	q := w.Quadrants()
	// Point datasets derive the fourth count from the parent (§4.1:
	// |Dw'4| = |Dw| − Σ|Dw'i|). With ε = 0 the quadrants partition w
	// exactly and the derived value is exact; with ε > 0 the ε/2-expanded
	// fetch windows overlap, so the derived value is only an estimate and
	// is marked approximate — the physical operators re-count before
	// trusting it (in particular, an approximate zero never prunes).
	derive := x.pointData(d) && parent.exact
	last := 4
	if derive {
		last = 3
	}
	sum := 0
	if x.batching() && last > 1 {
		// One envelope for the whole quadrant batch instead of one frame
		// (and one RTT, sequentially) per quadrant. The copy keeps q from
		// escaping on the (hot, unbatched) path below: slicing the array
		// into batchCounts directly would heap-allocate it even when this
		// branch is never taken.
		ws := make([]geom.Rect, last)
		copy(ws, q[:])
		ns, err := x.batchCounts(d, ws)
		if err != nil {
			return out, err
		}
		for i, n := range ns {
			out[i] = exact(n)
			sum += n
		}
	} else {
		for i := 0; i < last; i++ {
			n, err := x.count(d, q[i])
			if err != nil {
				return out, err
			}
			out[i] = exact(n)
			sum += n
		}
	}
	if derive {
		n := parent.n - sum
		if n < 0 {
			n = 0
		}
		if x.spec.Eps == 0 {
			out[3] = exact(n)
		} else {
			out[3] = approx(n)
		}
	}
	return out, nil
}

// --- result sink ---------------------------------------------------------

// addPairs records join pairs; R geometry is remembered for iceberg
// output when provided. Safe for concurrent workers; result assembly
// sorts and deduplicates, so insertion order does not matter.
func (x *exec) addPairs(ps []geom.Pair, rGeom map[uint32]geom.Object) {
	x.mu.Lock()
	x.pairs = append(x.pairs, ps...)
	for id, o := range rGeom {
		x.robjs[id] = o
	}
	x.mu.Unlock()
}

// result assembles the Result, deduplicating pairs globally. It must be
// called only after every worker of the run has joined.
func (x *exec) result() *Result {
	pairs := memjoin.DedupPairs(x.pairs)
	res := &Result{}
	switch x.spec.Kind {
	case IcebergSemi:
		// Merge pair-derived counts with probe-derived counts. An R id is
		// counted either via probes (exact global count, recorded once)
		// or via deduplicated pairs — never both, enforced by probed[].
		counts := make(map[uint32]int, len(x.counts))
		for id, n := range x.counts {
			counts[id] = n
		}
		for _, p := range pairs {
			if !x.probed[p.RID] {
				counts[p.RID]++
			}
		}
		var pseudo []geom.Pair
		for id, n := range counts {
			for i := 0; i < n; i++ {
				pseudo = append(pseudo, geom.Pair{RID: id, SID: uint32(i)})
			}
		}
		res.Objects = icebergFilter(pseudo, x.robjs, x.spec.MinMatches)
	default:
		res.Pairs = pairs
	}
	if x.rep != nil {
		gaps := x.rep.Gaps()
		total := probeShards(x.env.R) + probeShards(x.env.S)
		res.Completeness = &health.Completeness{
			ShardsTotal:    total,
			ShardsAnswered: total - len(gaps),
			Gaps:           gaps,
		}
	}
	return res
}

// finish assembles the Result with this run's traffic stats (and, for
// adaptive runs, the explain report). It must be called only after every
// worker of the run has joined.
func (x *exec) finish() *Result {
	res := x.result()
	res.Stats = x.env.statsSince(x.r0, x.s0, &x.dec)
	res.Stats.RLevels = levelWireSince(x.env.R, x.rl0)
	res.Stats.SLevels = levelWireSince(x.env.S, x.sl0)
	res.Explain = x.explain
	return res
}

// probeShards counts the failure domains behind one relation endpoint: a
// router reports its shard count, a bare remote is one domain.
func probeShards(p Probe) int {
	if ns, ok := p.(interface{ NumShards() int }); ok {
		return ns.NumShards()
	}
	return 1
}

// --- cost-model adapters ---------------------------------------------------

// modelStats assembles the Stats consumed by the cost model for window w.
func (x *exec) modelStats(w geom.Rect, nr, ns cnt) costmodel.Stats {
	st := costmodel.Stats{W: w, NR: nr.n, NS: ns.n, Eps: x.spec.Eps}
	if x.spec.Kind == IcebergSemi && x.icebergCountable() {
		st.CountProbeR = true
	}
	if !x.pointData(sideR) || !x.pointData(sideS) {
		// Rough Minkowski widening from the dataset-level average object
		// size; per-window AVG-AREA queries are issued only by algorithms
		// that opt in (kept simple: dataset bounds / cardinality).
		st.AvgAreaR = avgObjArea(x.env.infoR.Bounds, int(x.env.infoR.Count), x.pointData(sideR))
		st.AvgAreaS = avgObjArea(x.env.infoS.Bounds, int(x.env.infoS.Count), x.pointData(sideS))
	}
	return st
}

// avgObjArea is a crude prior for the mean object MBR area: a small
// fraction of the per-object share of the data space. Points have zero.
func avgObjArea(bounds geom.Rect, n int, points bool) float64 {
	if points || n == 0 {
		return 0
	}
	return bounds.Area() / float64(n) * 0.05
}

// costs returns (c1, c2, c3) for window w under the environment's model.
func (x *exec) costs(w geom.Rect, nr, ns cnt) (c1, c2, c3 float64) {
	st := x.modelStats(w, nr, ns)
	p := x.env.Model
	return p.C1(st), p.C2(st), p.C3(st)
}
