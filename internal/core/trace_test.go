package core

import (
	"context"
	"fmt"
	"os"
	"testing"

	"repro/internal/dataset"
)

func TestTraceUpJoinDebug(t *testing.T) {
	if os.Getenv("TRACE_DEBUG") == "" {
		t.Skip("debug only")
	}
	robjs := dataset.GaussianClusters(1000, 4, 250, dataset.World, 1+0*1000+4*2)
	sobjs := dataset.GaussianClusters(1000, 4, 250, dataset.World, 2+0*1000+4*2)
	env := testEnv(t, robjs, sobjs, 800)
	env.Window = dataset.World
	env.Trace = func(f string, a ...any) { fmt.Printf(f+"\n", a...) }
	res, err := UpJoin{}.Run(context.Background(), env, Spec{Kind: Distance, Eps: 75})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	fmt.Printf("TOTAL bytes=%d agg=%d hbsj=%d nlsj=%d repart=%d pruned=%d pairs=%d\n",
		st.TotalBytes(), st.AggQueries, st.HBSJ, st.NLSJ, st.Repartitions, st.Pruned, len(res.Pairs))
	env2 := testEnv(t, robjs, sobjs, 800)
	env2.Window = dataset.World
	res2, _ := SrJoin{}.Run(context.Background(), env2, Spec{Kind: Distance, Eps: 75})
	fmt.Printf("SRJOIN bytes=%d agg=%d\n", res2.Stats.TotalBytes(), res2.Stats.AggQueries)
}
