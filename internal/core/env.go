package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/client"
	"repro/internal/costmodel"
	"repro/internal/geom"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// Env is the execution environment of one join: the two metered remote
// datasets, the device constraints, the cost-model parameters used for
// decisions, and the query window.
type Env struct {
	// R and S are the two dataset servers, reached over metered links.
	R, S *client.Remote
	// Device carries the buffer constraint.
	Device client.Device
	// Model parameterizes the cost equations; Model.Buffer should match
	// Device.BufferObjects (NewEnv enforces it).
	Model costmodel.Params
	// Window is the query window. The zero Rect means "whole space": it
	// is replaced by the union of the advertised dataset bounds.
	Window geom.Rect
	// Seed drives the algorithm-internal randomness (UpJoin's random
	// confirmation windows). Fixed per run for reproducibility.
	Seed int64
	// Parallelism bounds the number of concurrently in-flight remote
	// operations of one run. 0 or 1 reproduces the paper's single-threaded
	// PDA: every round trip strictly sequential. Higher values enable the
	// concurrent execution engine — independent R-side and S-side requests
	// issue in parallel, sibling partitions are processed by a bounded
	// worker pool, and partition downloads overlap device-side joins — while
	// issuing exactly the same set of requests, so results and metered byte
	// counts are identical to the sequential run.
	Parallelism int
	// BatchSize, when > 1, multiplexes independent probes of one run into
	// MsgBatch envelopes of up to this many sub-requests per link,
	// amortizing the per-frame packet overhead of Eq. (1) and — on
	// RTT-bearing links — the round trips across the batch. The remotes
	// should be constructed with a matching client.WithBatch so stragglers
	// coalesce too; without it, probe groups simply travel as individual
	// frames. 0 or 1 keeps every request in its own frame, bit-identical
	// to the pre-batching wire format. Batched runs issue exactly the same
	// query set and return identical results; only the framing (and hence
	// the byte totals) changes. Under sequential execution the framing is
	// deterministic: probe groups are chunked by the outer list before any
	// request is issued.
	BatchSize int
	// Trace, when non-nil, receives one line per algorithm decision
	// (window visited, operator chosen, counts). Intended for debugging
	// and for the decision-log ablations; not part of the cost model.
	// Under Parallelism > 1 the callback may fire from several goroutines
	// at once and must be safe for concurrent calls.
	Trace func(format string, args ...any)

	infoR, infoS wire.Info
	prepared     bool
}

// NewEnv assembles an environment. The window may be the zero Rect to
// join over the entire advertised data space.
func NewEnv(r, s *client.Remote, device client.Device, model costmodel.Params, window geom.Rect) *Env {
	model.Buffer = device.BufferObjects
	return &Env{R: r, S: s, Device: device, Model: model, Window: window}
}

// prepare fetches dataset metadata once per environment (two INFO round
// trips, metered like everything else — and overlapped when the
// environment is parallel) and resolves the query window. When one side's
// INFO fails under a parallel environment, the other side's in-flight
// request is canceled rather than awaited.
func (e *Env) prepare(ctx context.Context) error {
	if e.prepared {
		return nil
	}
	fetchR := func(ctx context.Context) error {
		info, err := e.R.Info(ctx)
		if err != nil {
			return fmt.Errorf("core: info from R: %w", err)
		}
		e.infoR = info
		return nil
	}
	fetchS := func(ctx context.Context) error {
		info, err := e.S.Info(ctx)
		if err != nil {
			return fmt.Errorf("core: info from S: %w", err)
		}
		e.infoS = info
		return nil
	}
	if e.Parallelism > 1 {
		fctx, cancel := context.WithCancel(ctx)
		defer cancel()
		errc := make(chan error, 1)
		go func() { errc <- fetchR(fctx) }()
		errS := fetchS(fctx)
		if errS != nil {
			cancel() // interrupt the R-side INFO instead of waiting it out
		}
		errR := <-errc
		// Prefer a real failure over the secondary cancellation it caused.
		if errR != nil && !errors.Is(errR, context.Canceled) {
			return errR
		}
		if errS != nil {
			return errS
		}
		if errR != nil {
			return errR
		}
	} else {
		if err := fetchR(ctx); err != nil {
			return err
		}
		if err := fetchS(ctx); err != nil {
			return err
		}
	}
	if e.Window == (geom.Rect{}) {
		e.Window = e.infoR.Bounds.Union(e.infoS.Bounds)
	}
	e.prepared = true
	return nil
}

// Usage returns the combined traffic snapshot of both links.
func (e *Env) Usage() (r, s netsim.Usage) { return e.R.Usage(), e.S.Usage() }

// statsSince builds a Stats from meter snapshots taken before the run.
// It must be called only after every worker goroutine of the run has
// joined, so the meters are quiescent and the snapshots exact.
func (e *Env) statsSince(r0, s0 netsim.Usage, dec *decisions) Stats {
	r1, s1 := e.R.Usage(), e.S.Usage()
	diff := func(a, b netsim.Usage) netsim.Usage {
		return netsim.Usage{
			Messages:      a.Messages - b.Messages,
			PayloadBytes:  a.PayloadBytes - b.PayloadBytes,
			WireBytes:     a.WireBytes - b.WireBytes,
			Packets:       a.Packets - b.Packets,
			UpWireBytes:   a.UpWireBytes - b.UpWireBytes,
			DownWireBytes: a.DownWireBytes - b.DownWireBytes,
			Queries:       a.Queries - b.Queries,
		}
	}
	ru, su := diff(r1, r0), diff(s1, s0)
	return Stats{
		R: ru, S: su,
		AggQueries:   int(dec.agg.Load()),
		HBSJ:         int(dec.hbsj.Load()),
		NLSJ:         int(dec.nlsj.Load()),
		Repartitions: int(dec.repart.Load()),
		Pruned:       int(dec.pruned.Load()),
		MoneyCost: e.R.Meter().PricePerByte()*float64(ru.WireBytes) +
			e.S.Meter().PricePerByte()*float64(su.WireBytes),
	}
}

// decisions counts the choices an execution made. The counters are
// atomics so concurrent workers can record decisions without contention;
// each counter is an order-independent sum, so parallel and sequential
// executions of the same plan report identical totals.
type decisions struct {
	agg, hbsj, nlsj, repart, pruned atomic.Int64
}
