package core

import (
	"fmt"

	"repro/internal/client"
	"repro/internal/costmodel"
	"repro/internal/geom"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// Env is the execution environment of one join: the two metered remote
// datasets, the device constraints, the cost-model parameters used for
// decisions, and the query window.
type Env struct {
	// R and S are the two dataset servers, reached over metered links.
	R, S *client.Remote
	// Device carries the buffer constraint.
	Device client.Device
	// Model parameterizes the cost equations; Model.Buffer should match
	// Device.BufferObjects (NewEnv enforces it).
	Model costmodel.Params
	// Window is the query window. The zero Rect means "whole space": it
	// is replaced by the union of the advertised dataset bounds.
	Window geom.Rect
	// Seed drives the algorithm-internal randomness (UpJoin's random
	// confirmation windows). Fixed per run for reproducibility.
	Seed int64
	// Trace, when non-nil, receives one line per algorithm decision
	// (window visited, operator chosen, counts). Intended for debugging
	// and for the decision-log ablations; not part of the cost model.
	Trace func(format string, args ...any)

	infoR, infoS wire.Info
	prepared     bool
}

// NewEnv assembles an environment. The window may be the zero Rect to
// join over the entire advertised data space.
func NewEnv(r, s *client.Remote, device client.Device, model costmodel.Params, window geom.Rect) *Env {
	model.Buffer = device.BufferObjects
	return &Env{R: r, S: s, Device: device, Model: model, Window: window}
}

// prepare fetches dataset metadata once per environment (two INFO round
// trips, metered like everything else) and resolves the query window.
func (e *Env) prepare() error {
	if e.prepared {
		return nil
	}
	var err error
	if e.infoR, err = e.R.Info(); err != nil {
		return fmt.Errorf("core: info from R: %w", err)
	}
	if e.infoS, err = e.S.Info(); err != nil {
		return fmt.Errorf("core: info from S: %w", err)
	}
	if e.Window == (geom.Rect{}) {
		e.Window = e.infoR.Bounds.Union(e.infoS.Bounds)
	}
	e.prepared = true
	return nil
}

// Usage returns the combined traffic snapshot of both links.
func (e *Env) Usage() (r, s netsim.Usage) { return e.R.Usage(), e.S.Usage() }

// statsSince builds a Stats from meter snapshots taken before the run.
func (e *Env) statsSince(r0, s0 netsim.Usage, dec decisions) Stats {
	r1, s1 := e.R.Usage(), e.S.Usage()
	diff := func(a, b netsim.Usage) netsim.Usage {
		return netsim.Usage{
			Messages:      a.Messages - b.Messages,
			PayloadBytes:  a.PayloadBytes - b.PayloadBytes,
			WireBytes:     a.WireBytes - b.WireBytes,
			Packets:       a.Packets - b.Packets,
			UpWireBytes:   a.UpWireBytes - b.UpWireBytes,
			DownWireBytes: a.DownWireBytes - b.DownWireBytes,
			Queries:       a.Queries - b.Queries,
		}
	}
	ru, su := diff(r1, r0), diff(s1, s0)
	return Stats{
		R: ru, S: su,
		AggQueries:   dec.agg,
		HBSJ:         dec.hbsj,
		NLSJ:         dec.nlsj,
		Repartitions: dec.repart,
		Pruned:       dec.pruned,
		MoneyCost: e.R.Meter().PricePerByte()*float64(ru.WireBytes) +
			e.S.Meter().PricePerByte()*float64(su.WireBytes),
	}
}

// decisions counts the choices an execution made.
type decisions struct {
	agg, hbsj, nlsj, repart, pruned int
}
