package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/client"
	"repro/internal/costmodel"
	"repro/internal/geom"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// Probe is the query surface of one logical relation: everything the
// algorithms need from a dataset endpoint. It is satisfied by
// *client.Remote (one server, one metered link — the paper's setting)
// and by *shard.Router (one relation partitioned across many servers,
// scatter–gathered behind the same surface), so every algorithm runs
// unmodified against either. The semantic contract is the one the
// dataset server implements: COUNT/RANGE-COUNT answer exact
// cardinalities, WINDOW/RANGE return each qualifying object exactly
// once, bucket queries answer probe-by-probe in submission order, and
// Info advertises the relation's true cardinality and bounds. Usage and
// PricePerByte aggregate the endpoint's metered traffic (a router sums
// its shard links).
type Probe interface {
	// Name identifies the endpoint in errors and diagnostics.
	Name() string
	// Info returns the relation's advertised metadata.
	Info(ctx context.Context) (wire.Info, error)
	// Count returns the number of objects intersecting w.
	Count(ctx context.Context, w geom.Rect) (int, error)
	// Window returns all objects intersecting w.
	Window(ctx context.Context, w geom.Rect) ([]geom.Object, error)
	// AvgArea returns the mean MBR area of objects intersecting w.
	AvgArea(ctx context.Context, w geom.Rect) (float64, error)
	// Range returns the objects within distance eps of p.
	Range(ctx context.Context, p geom.Point, eps float64) ([]geom.Object, error)
	// RangeCount returns the number of objects within distance eps of p.
	RangeCount(ctx context.Context, p geom.Point, eps float64) (int, error)
	// BucketRange answers many ε-range probes at once, one result group
	// per probe in probe order.
	BucketRange(ctx context.Context, pts []geom.Point, eps float64) ([][]geom.Object, error)
	// BucketRangeCount is the aggregate variant of BucketRange.
	BucketRangeCount(ctx context.Context, pts []geom.Point, eps float64) ([]int64, error)
	// LevelMBRs returns the MBRs of one R-tree level (SemiJoin only).
	LevelMBRs(ctx context.Context, level int) ([]geom.Rect, error)
	// MBRMatch returns the distinct objects intersecting (within eps of)
	// any of the rects (SemiJoin only).
	MBRMatch(ctx context.Context, rects []geom.Rect, eps float64) ([]geom.Object, error)
	// UploadJoin ships objects to the relation, which joins them against
	// its dataset and returns pairs with the uploaded ID first (SemiJoin
	// only).
	UploadJoin(ctx context.Context, objs []geom.Object, eps float64) ([]geom.Pair, error)
	// GoBatch submits pre-encoded request frames for multiplexed delivery
	// and returns one Call future per request; Flush dispatches whatever
	// is pending. See client.Remote.GoBatch.
	GoBatch(ctx context.Context, reqs [][]byte) []*client.Call
	Flush()
	// Usage returns the endpoint's accumulated metered traffic (summed
	// over shard links for a router).
	Usage() netsim.Usage
	// PricePerByte is the per-byte tariff of the endpoint's link(s).
	PricePerByte() float64
	// Retries reports how many re-issued attempts the endpoint has made.
	Retries() int64
	// Close releases the endpoint's transport(s).
	Close() error
}

// Env is the execution environment of one join: the two metered remote
// datasets, the device constraints, the cost-model parameters used for
// decisions, and the query window.
type Env struct {
	// R and S are the two dataset relations, reached over metered links —
	// a single server each (*client.Remote) or a sharded relation behind
	// a scatter–gather router (*shard.Router).
	R, S Probe
	// Device carries the buffer constraint.
	Device client.Device
	// Model parameterizes the cost equations; Model.Buffer should match
	// Device.BufferObjects (NewEnv enforces it).
	Model costmodel.Params
	// Window is the query window. The zero Rect means "whole space": it
	// is replaced by the union of the advertised dataset bounds.
	Window geom.Rect
	// Seed drives the algorithm-internal randomness (UpJoin's random
	// confirmation windows). Fixed per run for reproducibility.
	Seed int64
	// Parallelism bounds the number of concurrently in-flight remote
	// operations of one run. 0 or 1 reproduces the paper's single-threaded
	// PDA: every round trip strictly sequential. Higher values enable the
	// concurrent execution engine — independent R-side and S-side requests
	// issue in parallel, sibling partitions are processed by a bounded
	// worker pool, and partition downloads overlap device-side joins — while
	// issuing exactly the same set of requests, so results and metered byte
	// counts are identical to the sequential run.
	Parallelism int
	// BatchSize, when > 1, multiplexes independent probes of one run into
	// MsgBatch envelopes of up to this many sub-requests per link,
	// amortizing the per-frame packet overhead of Eq. (1) and — on
	// RTT-bearing links — the round trips across the batch. The remotes
	// should be constructed with a matching client.WithBatch so stragglers
	// coalesce too; without it, probe groups simply travel as individual
	// frames. 0 or 1 keeps every request in its own frame, bit-identical
	// to the pre-batching wire format. Batched runs issue exactly the same
	// query set and return identical results; only the framing (and hence
	// the byte totals) changes. Under sequential execution the framing is
	// deterministic: probe groups are chunked by the outer list before any
	// request is issued.
	BatchSize int
	// Trace, when non-nil, receives one line per algorithm decision
	// (window visited, operator chosen, counts). Intended for debugging
	// and for the decision-log ablations; not part of the cost model.
	// Under Parallelism > 1 the callback may fire from several goroutines
	// at once and must be safe for concurrent calls.
	Trace func(format string, args ...any)
	// Observer, when non-nil, receives one PhaseEvent at every phase
	// boundary of a run: observation phases (COUNT statistics), plan
	// decisions, transfers, and re-plans, each carrying the cost model's
	// estimate next to the bytes metered so far. Purely diagnostic — the
	// fixed algorithms issue the same requests with or without it. Under
	// Parallelism > 1 the callback may fire from several goroutines at
	// once and must be safe for concurrent calls.
	Observer func(PhaseEvent)
	// AllowPartial opts a run into degraded partial results: when a
	// shard is unreachable (every replica open-circuit, or its sub-query
	// exhausted its retries), the routers record the gap and the run
	// completes over the shards that answered instead of failing. The
	// Result then carries a Completeness report and its pairs are a
	// lower bound on the true join. Off (the default), any shard failure
	// fails the run — bit-identical behavior to before this knob existed.
	AllowPartial bool

	infoR, infoS wire.Info
	prepared     bool
}

// NewEnv assembles an environment. The window may be the zero Rect to
// join over the entire advertised data space.
func NewEnv(r, s Probe, device client.Device, model costmodel.Params, window geom.Rect) *Env {
	model.Buffer = device.BufferObjects
	return &Env{R: r, S: s, Device: device, Model: model, Window: window}
}

// prepare fetches dataset metadata once per environment (two INFO round
// trips, metered like everything else — and overlapped when the
// environment is parallel) and resolves the query window. When one side's
// INFO fails under a parallel environment, the other side's in-flight
// request is canceled rather than awaited.
func (e *Env) prepare(ctx context.Context) error {
	if e.prepared {
		return nil
	}
	fetchR := func(ctx context.Context) error {
		info, err := e.R.Info(ctx)
		if err != nil {
			return fmt.Errorf("core: info from R: %w", err)
		}
		e.infoR = info
		return nil
	}
	fetchS := func(ctx context.Context) error {
		info, err := e.S.Info(ctx)
		if err != nil {
			return fmt.Errorf("core: info from S: %w", err)
		}
		e.infoS = info
		return nil
	}
	if e.Parallelism > 1 {
		fctx, cancel := context.WithCancel(ctx)
		defer cancel()
		errc := make(chan error, 1)
		go func() { errc <- fetchR(fctx) }()
		errS := fetchS(fctx)
		if errS != nil {
			cancel() // interrupt the R-side INFO instead of waiting it out
		}
		errR := <-errc
		// Prefer a real failure over the secondary cancellation it caused.
		if errR != nil && !errors.Is(errR, context.Canceled) {
			return errR
		}
		if errS != nil {
			return errS
		}
		if errR != nil {
			return errR
		}
	} else {
		if err := fetchR(ctx); err != nil {
			return err
		}
		if err := fetchS(ctx); err != nil {
			return err
		}
	}
	if e.Window == (geom.Rect{}) {
		e.Window = e.infoR.Bounds.Union(e.infoS.Bounds)
	}
	e.prepared = true
	return nil
}

// Prepare eagerly fetches dataset metadata and resolves the query
// window, exactly as the first Run would. A multi-tenant server calls it
// once per tenant environment before admitting concurrent runs: prepare
// mutates the environment (cached INFOs, resolved window), so it must
// not race with itself — Prepare gives the caller a way to sequence that
// first fetch explicitly.
func (e *Env) Prepare(ctx context.Context) error { return e.prepare(ctx) }

// Usage returns the combined traffic snapshot of both links.
func (e *Env) Usage() (r, s netsim.Usage) { return e.R.Usage(), e.S.Usage() }

// levelUsages snapshots the per-tree-level traffic of a relation served
// through a hierarchical aggregation tree (shard.Router.LevelUsages).
// Probes without the seam — bare remotes — yield nil.
func levelUsages(p Probe) []netsim.Usage {
	if lu, ok := p.(interface{ LevelUsages() []netsim.Usage }); ok {
		return lu.LevelUsages()
	}
	return nil
}

// levelWireSince diffs a relation's per-level wire bytes against the
// run-start snapshot. Flat topologies (one level — the root links ARE
// the leaf links) report nil: per-level totals only say something beyond
// Stats' own byte columns when there is more than one level.
func levelWireSince(p Probe, before []netsim.Usage) []int {
	after := levelUsages(p)
	if len(after) <= 1 {
		return nil
	}
	out := make([]int, len(after))
	for i, u := range after {
		out[i] = u.WireBytes
		if i < len(before) {
			out[i] -= before[i].WireBytes
		}
	}
	return out
}

// statsSince builds a Stats from meter snapshots taken before the run.
// It must be called only after every worker goroutine of the run has
// joined, so the meters are quiescent and the snapshots exact.
func (e *Env) statsSince(r0, s0 netsim.Usage, dec *decisions) Stats {
	r1, s1 := e.R.Usage(), e.S.Usage()
	diff := func(a, b netsim.Usage) netsim.Usage {
		return netsim.Usage{
			Messages:        a.Messages - b.Messages,
			PayloadBytes:    a.PayloadBytes - b.PayloadBytes,
			WireBytes:       a.WireBytes - b.WireBytes,
			Packets:         a.Packets - b.Packets,
			UpWireBytes:     a.UpWireBytes - b.UpWireBytes,
			DownWireBytes:   a.DownWireBytes - b.DownWireBytes,
			Queries:         a.Queries - b.Queries,
			HedgedMessages:  a.HedgedMessages - b.HedgedMessages,
			HedgedWireBytes: a.HedgedWireBytes - b.HedgedWireBytes,
			BreakerOpens:    a.BreakerOpens - b.BreakerOpens,
			BreakerSkips:    a.BreakerSkips - b.BreakerSkips,
		}
	}
	ru, su := diff(r1, r0), diff(s1, s0)
	return Stats{
		R: ru, S: su,
		AggQueries:   int(dec.agg.Load()),
		HBSJ:         int(dec.hbsj.Load()),
		NLSJ:         int(dec.nlsj.Load()),
		Repartitions: int(dec.repart.Load()),
		Pruned:       int(dec.pruned.Load()),
		MoneyCost: e.R.PricePerByte()*float64(ru.WireBytes) +
			e.S.PricePerByte()*float64(su.WireBytes),
	}
}

// decisions counts the choices an execution made. The counters are
// atomics so concurrent workers can record decisions without contention;
// each counter is an order-independent sum, so parallel and sequential
// executions of the same plan report identical totals.
type decisions struct {
	agg, hbsj, nlsj, repart, pruned atomic.Int64
}
