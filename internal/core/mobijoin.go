package core

import (
	"context"
	"math"

	"repro/internal/geom"
)

// MobiJoin is the algorithm of Mamoulis et al. (SSTD 2003) as analysed in
// §3.2: at every window it estimates the four costs c1..c4 and follows
// the cheapest action, where c4 — the repartitioning cost, Eq. (8) — is
// estimated under the assumption that the data inside the window are
// uniform. The recursion always uses a fixed 2×2 grid.
//
// The uniformity assumption is MobiJoin's documented weakness (Fig. 2):
// it makes NLSJ look attractive on anti-correlated clusters that one more
// split would have pruned entirely, and it makes HBSJ absorb whole
// cluster groups as soon as the buffer allows, doubling the transfer.
// This implementation reproduces that behaviour deliberately.
type MobiJoin struct{}

// Name implements Algorithm.
func (MobiJoin) Name() string { return "mobiJoin" }

// Run implements Algorithm.
func (MobiJoin) Run(ctx context.Context, env *Env, spec Spec) (*Result, error) {
	x, err := newExec(ctx, env, spec, "mobiJoin")
	if err != nil {
		return nil, err
	}
	defer x.close()
	nr, ns, err := x.countBoth(x.window)
	if err != nil {
		return nil, err
	}
	if err := mobiJoin(x, x.window, nr, ns, 0); err != nil {
		return nil, err
	}
	return x.finish(), nil
}

func mobiJoin(x *exec, w geom.Rect, nr, ns cnt, depth int) error {
	// Prune only on measured zeros; derived estimates (distance joins)
	// are confirmed by the physical operators before they can prune.
	if (nr.exact && nr.n == 0) || (ns.exact && ns.n == 0) {
		x.dec.pruned.Add(1)
		return nil
	}
	if nr.n == 0 || ns.n == 0 {
		// Approximate zero: resolve it now — the window is either empty
		// (prune) or nearly so (the operator choice needs real counts).
		var err error
		if nr, ns, err = x.ensureExactBoth(w, nr, ns); err != nil {
			return err
		}
		if nr.n == 0 || ns.n == 0 {
			x.dec.pruned.Add(1)
			return nil
		}
	}
	c1, c2, c3 := x.costs(w, nr, ns)
	c4 := x.env.Model.C4Uniform(x.modelStats(w, nr, ns), 2)
	if !x.splittable(w, depth) {
		c4 = math.Inf(1) // splitting cannot help; pick a physical operator
	}

	best, action := c1, 1
	if c2 < best {
		best, action = c2, 2
	}
	if c3 < best {
		best, action = c3, 3
	}
	if c4 < best {
		action = 4
	}

	switch action {
	case 1:
		return x.doHBSJ(w, nr, ns, depth)
	case 2:
		return x.doNLSJ(w, sideR, nr, ns)
	case 3:
		return x.doNLSJ(w, sideS, nr, ns)
	default:
		x.dec.repart.Add(1)
		qr, qs, err := x.quadrantCountsBoth(w, nr, ns)
		if err != nil {
			return err
		}
		quads := w.Quadrants()
		return x.fanoutSiblings(4, func(i int) error {
			return mobiJoin(x, quads[i], qr[i], qs[i], depth+1)
		})
	}
}
