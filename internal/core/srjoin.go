package core

import (
	"repro/internal/geom"
)

// SrJoin is the Similarity Related Join of §4.2 (Fig. 5). For every
// window it computes a density bitmap per dataset (Eq. 11, parameter
// Rho): bit i is set when quadrant i is denser than rho times the
// window's average density. Equal bitmaps mean the two distributions are
// similar, so repartitioning cannot prune anything — each non-empty
// quadrant is processed with the cheaper physical operator immediately.
// Different bitmaps suggest prunable structure, so quadrants are
// repartitioned aggressively (the repartitioning estimate counts only the
// aggregate queries), unless a physical operator is already cheaper than
// the three aggregate queries a further split would cost.
type SrJoin struct {
	// Rho is the density threshold of Eq. (11) as a fraction of the mean
	// density; 0 means the paper's default of 0.30 (chosen in Fig. 6b).
	Rho float64
}

// Name implements Algorithm.
func (SrJoin) Name() string { return "srJoin" }

func (s SrJoin) rho() float64 {
	if s.Rho <= 0 {
		return 0.30
	}
	return s.Rho
}

// Run implements Algorithm.
func (s SrJoin) Run(env *Env, spec Spec) (*Result, error) {
	x, err := newExec(env, spec)
	if err != nil {
		return nil, err
	}
	r0, s0 := env.Usage()
	nr, err := x.count(sideR, x.window)
	if err != nil {
		return nil, err
	}
	ns, err := x.count(sideS, x.window)
	if err != nil {
		return nil, err
	}
	sr := &srState{exec: x, rho: s.rho()}
	if nr == 0 || ns == 0 {
		x.dec.pruned++
	} else if err := sr.join(x.window, exact(nr), exact(ns), 0); err != nil {
		return nil, err
	}
	res := x.result()
	res.Stats = env.statsSince(r0, s0, x.dec)
	return res, nil
}

type srState struct {
	*exec
	rho float64
}

// bitmap computes the Eq. (11) density bitmap for equal-area quadrants:
// bit i set iff count_i > rho * n/4.
func (s *srState) bitmap(n int, qs [4]cnt) [4]bool {
	thresh := s.rho * float64(n) / 4
	var b [4]bool
	for i, q := range qs {
		b[i] = float64(q.n) > thresh
	}
	return b
}

// join is the recursive body of Fig. 5. The caller guarantees nr, ns > 0.
func (s *srState) join(w geom.Rect, nr, ns cnt, depth int) error {
	qr, err := s.quadrantCounts(sideR, w, nr)
	if err != nil {
		return err
	}
	qs, err := s.quadrantCounts(sideS, w, ns)
	if err != nil {
		return err
	}
	similar := s.bitmap(nr.n, qr) == s.bitmap(ns.n, qs)
	quads := w.Quadrants()

	for i, q := range quads {
		if (qr[i].exact && qr[i].n == 0) || (qs[i].exact && qs[i].n == 0) {
			s.dec.pruned++
			continue
		}
		if qr[i].n == 0 || qs[i].n == 0 {
			// Derived estimate says empty: confirm before pruning.
			var err error
			if qr[i], err = s.ensureExact(sideR, q, qr[i]); err != nil {
				return err
			}
			if qs[i], err = s.ensureExact(sideS, q, qs[i]); err != nil {
				return err
			}
			if qr[i].n == 0 || qs[i].n == 0 {
				s.dec.pruned++
				continue
			}
		}
		// SrJoin estimates c1 without the memory constraint: HBSJ splits
		// recursively with pruning when the quadrant does not fit
		// ("HBSJ is recursively executed and pruning can also be applied
		// at each recursion level", §4.2).
		model := s.env.Model
		model.Buffer = 0
		st := s.modelStats(q, qr[i], qs[i])
		c1 := model.C1(st)
		c2 := model.C2(st)
		c3 := model.C3(st)
		cheapest := c1
		if c2 < cheapest {
			cheapest = c2
		}
		if c3 < cheapest {
			cheapest = c3
		}

		apply := similar || cheapest < 3*s.env.Model.Taq() || !s.splittable(q, depth+1)
		if !apply {
			if err := s.recurse(q, qr[i], qs[i], depth); err != nil {
				return err
			}
			continue
		}
		switch {
		case c1 <= c2 && c1 <= c3:
			err = s.doHBSJ(q, qr[i], qs[i], depth+1)
		case c2 <= c3:
			err = s.doNLSJ(q, sideR, qr[i], qs[i])
		default:
			err = s.doNLSJ(q, sideS, qr[i], qs[i])
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (s *srState) recurse(q geom.Rect, nr, ns cnt, depth int) error {
	s.dec.repart++
	return s.join(q, nr, ns, depth+1)
}
