package core

import (
	"context"

	"repro/internal/geom"
)

// SrJoin is the Similarity Related Join of §4.2 (Fig. 5). For every
// window it computes a density bitmap per dataset (Eq. 11, parameter
// Rho): bit i is set when quadrant i is denser than rho times the
// window's average density. Equal bitmaps mean the two distributions are
// similar, so repartitioning cannot prune anything — each non-empty
// quadrant is processed with the cheaper physical operator immediately.
// Different bitmaps suggest prunable structure, so quadrants are
// repartitioned aggressively (the repartitioning estimate counts only the
// aggregate queries), unless a physical operator is already cheaper than
// the three aggregate queries a further split would cost.
type SrJoin struct {
	// Rho is the density threshold of Eq. (11) as a fraction of the mean
	// density; 0 means the paper's default of 0.30 (chosen in Fig. 6b).
	Rho float64
}

// Name implements Algorithm.
func (SrJoin) Name() string { return "srJoin" }

func (s SrJoin) rho() float64 {
	if s.Rho <= 0 {
		return 0.30
	}
	return s.Rho
}

// Run implements Algorithm.
func (s SrJoin) Run(ctx context.Context, env *Env, spec Spec) (*Result, error) {
	x, err := newExec(ctx, env, spec, "srJoin")
	if err != nil {
		return nil, err
	}
	defer x.close()
	nr, ns, err := x.countBoth(x.window)
	if err != nil {
		return nil, err
	}
	sr := &srState{exec: x, rho: s.rho()}
	if nr.n == 0 || ns.n == 0 {
		x.dec.pruned.Add(1)
	} else if err := sr.join(x.window, nr, ns, 0); err != nil {
		return nil, err
	}
	return x.finish(), nil
}

type srState struct {
	*exec
	rho float64
}

// bitmap computes the Eq. (11) density bitmap for equal-area quadrants:
// bit i set iff count_i > rho * n/4.
func (s *srState) bitmap(n int, qs [4]cnt) [4]bool {
	thresh := s.rho * float64(n) / 4
	var b [4]bool
	for i, q := range qs {
		b[i] = float64(q.n) > thresh
	}
	return b
}

// join is the recursive body of Fig. 5. The caller guarantees nr, ns > 0.
// The four quadrants are independent once their counts and the similarity
// verdict are known, so they are handed to the worker pool.
func (s *srState) join(w geom.Rect, nr, ns cnt, depth int) error {
	qr, qs, err := s.quadrantCountsBoth(w, nr, ns)
	if err != nil {
		return err
	}
	return s.joinWithQuads(w, nr, ns, qr, qs, depth)
}

// joinWithQuads is join resumed after the observation phase: the caller
// already holds the window's quadrant counts (its own, or inherited from
// the online planner's observe phase), so no aggregate query is re-paid.
func (s *srState) joinWithQuads(w geom.Rect, nr, ns cnt, qr, qs [4]cnt, depth int) error {
	similar := s.bitmap(nr.n, qr) == s.bitmap(ns.n, qs)
	quads := w.Quadrants()

	return s.fanoutSiblings(4, func(i int) error {
		q := quads[i]
		cr, cs := qr[i], qs[i]
		if (cr.exact && cr.n == 0) || (cs.exact && cs.n == 0) {
			s.dec.pruned.Add(1)
			return nil
		}
		if cr.n == 0 || cs.n == 0 {
			// Derived estimate says empty: confirm before pruning.
			var err error
			if cr, cs, err = s.ensureExactBoth(q, cr, cs); err != nil {
				return err
			}
			if cr.n == 0 || cs.n == 0 {
				s.dec.pruned.Add(1)
				return nil
			}
		}
		// SrJoin estimates c1 without the memory constraint: HBSJ splits
		// recursively with pruning when the quadrant does not fit
		// ("HBSJ is recursively executed and pruning can also be applied
		// at each recursion level", §4.2).
		model := s.env.Model
		model.Buffer = 0
		st := s.modelStats(q, cr, cs)
		c1 := model.C1(st)
		c2 := model.C2(st)
		c3 := model.C3(st)
		cheapest := c1
		if c2 < cheapest {
			cheapest = c2
		}
		if c3 < cheapest {
			cheapest = c3
		}

		apply := similar || cheapest < 3*s.env.Model.Taq() || !s.splittable(q, depth+1)
		if !apply {
			return s.recurse(q, cr, cs, depth)
		}
		switch {
		case c1 <= c2 && c1 <= c3:
			return s.doHBSJ(q, cr, cs, depth+1)
		case c2 <= c3:
			return s.doNLSJ(q, sideR, cr, cs)
		default:
			return s.doNLSJ(q, sideS, cr, cs)
		}
	})
}

func (s *srState) recurse(q geom.Rect, nr, ns cnt, depth int) error {
	s.dec.repart.Add(1)
	return s.join(q, nr, ns, depth+1)
}
