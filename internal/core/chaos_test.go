package core

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/costmodel"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/netsim"
	"repro/internal/server"
)

// chaosEnv wires an environment whose two links inject seeded faults
// (drops, severed responses, delays) below the meters, with a retry
// policy generous enough that every query eventually lands.
func chaosEnv(t *testing.T, robjs, sobjs []geom.Object, buffer, parallelism int, seed int64, opts ...server.Option) (*Env, *netsim.Faulty, *netsim.Faulty) {
	t.Helper()
	workers := parallelism
	if workers < 1 {
		workers = 1
	}
	cfg := netsim.FaultConfig{
		Seed:           seed,
		DropProb:       0.12,
		SeverProb:      0.08,
		DelayProb:      0.02,
		Delay:          100 * time.Microsecond,
		MaxConsecutive: 3,
	}
	ftR := netsim.NewFaulty(netsim.ServeParallel(server.New("R", robjs, opts...), workers), cfg)
	cfg.Seed = seed + 1
	ftS := netsim.NewFaulty(netsim.ServeParallel(server.New("S", sobjs, opts...), workers), cfg)
	retry := client.RetryPolicy{MaxAttempts: 12, Backoff: 50 * time.Microsecond}
	r := mustRemote(t, "R", ftR, netsim.DefaultLink(), 1, client.WithRetry(retry))
	s := mustRemote(t, "S", ftS, netsim.DefaultLink(), 1, client.WithRetry(retry))
	t.Cleanup(func() { r.Close(); s.Close() })
	env := NewEnv(r, s, client.Device{BufferObjects: buffer}, costmodel.Default(), geom.Rect{})
	env.Parallelism = parallelism
	return env, ftR, ftS
}

// TestChaosAllAlgorithmsMatchOracle is the headline fault-tolerance
// guarantee: with requests dropped and responses severed on both links,
// every algorithm × join kind still returns the oracle result — the
// retry layer re-issues idempotent queries until the execution completes,
// and no fault can corrupt or duplicate results.
func TestChaosAllAlgorithmsMatchOracle(t *testing.T) {
	robjs := dataset.GaussianClusters(300, 4, 300, dataset.World, 41)
	sobjs := dataset.GaussianClusters(300, 4, 300, dataset.World, 42)
	window := dataset.Bounds(robjs).Union(dataset.Bounds(sobjs))

	specs := map[string]Spec{
		"intersection": {Kind: Intersection},
		"distance":     {Kind: Distance, Eps: 120},
		"iceberg":      {Kind: IcebergSemi, Eps: 120, MinMatches: 2},
	}
	algs := append(allAlgorithms(), SemiJoin{})

	totalFaults := 0
	for specName, spec := range specs {
		want := Oracle(robjs, sobjs, spec, window)
		for _, alg := range algs {
			if _, ok := alg.(SemiJoin); ok && spec.Kind == IcebergSemi {
				continue // semiJoin has no iceberg semantics
			}
			for _, par := range []int{1, 4} {
				name := specName + "/" + alg.Name()
				env, ftR, ftS := chaosEnv(t, robjs, sobjs, 800, par, int64(len(name))*100+int64(par), server.PublishIndex())
				got, err := alg.Run(context.Background(), env, spec)
				if err != nil {
					t.Fatalf("%s p=%d under faults: %v", name, par, err)
				}
				if spec.Kind == IcebergSemi {
					if len(got.Objects) != len(want.Objects) {
						t.Fatalf("%s p=%d: %d iceberg objects, oracle %d", name, par, len(got.Objects), len(want.Objects))
					}
					for i := range got.Objects {
						if got.Objects[i].ID != want.Objects[i].ID {
							t.Fatalf("%s p=%d: iceberg object %d = id %d, oracle %d", name, par, i, got.Objects[i].ID, want.Objects[i].ID)
						}
					}
				} else if !pairSetsEqual(got.Pairs, want.Pairs) {
					t.Fatalf("%s p=%d: %d pairs, oracle %d", name, par, len(got.Pairs), len(want.Pairs))
				}
				fr, fs := ftR.Stats(), ftS.Stats()
				totalFaults += fr.Drops + fr.Severs + fs.Drops + fs.Severs
			}
		}
	}
	if totalFaults == 0 {
		t.Fatal("vacuous chaos suite: no faults were injected")
	}
}

// TestChaosRetransmissionsAreMetered pins the accounting rule for
// faults: a run over faulty links must meter strictly more uplink bytes
// than the same run over clean links (every re-issued request is a real
// transmission, Eq. 1), while returning the identical result.
func TestChaosRetransmissionsAreMetered(t *testing.T) {
	robjs := dataset.GaussianClusters(300, 4, 300, dataset.World, 51)
	sobjs := dataset.GaussianClusters(300, 4, 300, dataset.World, 52)
	spec := Spec{Kind: Distance, Eps: 120}

	clean := testEnv(t, robjs, sobjs, 800)
	base, err := UpJoin{}.Run(context.Background(), clean, spec)
	if err != nil {
		t.Fatal(err)
	}
	env, ftR, ftS := chaosEnv(t, robjs, sobjs, 800, 1, 7)
	faulty, err := UpJoin{}.Run(context.Background(), env, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !pairSetsEqual(base.Pairs, faulty.Pairs) {
		t.Fatal("faulty run returned different pairs")
	}
	fr, fs := ftR.Stats(), ftS.Stats()
	if fr.Drops+fr.Severs+fs.Drops+fs.Severs == 0 {
		t.Skip("no faults injected on this schedule")
	}
	if faulty.Stats.R.UpWireBytes+faulty.Stats.S.UpWireBytes <= base.Stats.R.UpWireBytes+base.Stats.S.UpWireBytes {
		t.Fatalf("retransmissions not metered: faulty uplink %d <= clean uplink %d",
			faulty.Stats.R.UpWireBytes+faulty.Stats.S.UpWireBytes,
			base.Stats.R.UpWireBytes+base.Stats.S.UpWireBytes)
	}
	if env.R.Retries()+env.S.Retries() == 0 {
		t.Fatal("faults were injected but no retries recorded")
	}
}

// blockingHandler answers through the wrapped handler for the first
// `after` requests, then blocks every further call until release is
// closed — a model of a server that hangs mid-join. reached is closed
// when the first call blocks, so tests know the join is provably stuck.
type blockingHandler struct {
	inner   netsim.Handler
	after   int32
	served  atomic.Int32
	once    sync.Once
	reached chan struct{}
	release chan struct{}
}

func (h *blockingHandler) Handle(req []byte) []byte {
	if h.served.Add(1) > h.after {
		h.once.Do(func() { close(h.reached) })
		<-h.release
	}
	return h.inner.Handle(req)
}

// waitGoroutines polls until the goroutine count settles back to at most
// base, failing the test otherwise.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d > %d\n%s", runtime.NumGoroutine(), base, buf[:n])
}

// TestCancelMidJoinReturnsPromptly hangs the R server after a few
// requests, cancels the context mid-join, and requires (a) a prompt
// return with context.Canceled, and (b) zero leaked goroutines once the
// transports close — the executor must join every worker even though the
// server never answered.
func TestCancelMidJoinReturnsPromptly(t *testing.T) {
	for _, par := range []int{1, 4} {
		baseline := runtime.NumGoroutine()
		robjs := dataset.GaussianClusters(400, 4, 300, dataset.World, 61)
		sobjs := dataset.GaussianClusters(400, 4, 300, dataset.World, 62)
		hang := &blockingHandler{
			inner:   server.New("R", robjs),
			after:   4,
			reached: make(chan struct{}),
			release: make(chan struct{}),
		}
		workers := par
		if workers < 1 {
			workers = 1
		}
		trR := netsim.ServeParallel(hang, workers)
		trS := netsim.ServeParallel(server.New("S", sobjs), workers)
		r := mustRemote(t, "R", trR, netsim.DefaultLink(), 1)
		s := mustRemote(t, "S", trS, netsim.DefaultLink(), 1)
		env := NewEnv(r, s, client.Device{BufferObjects: 200}, costmodel.Default(), geom.Rect{})
		env.Parallelism = par

		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := UpJoin{}.Run(ctx, env, Spec{Kind: Distance, Eps: 120})
			done <- err
		}()
		// Wait until a request is provably blocked inside the hung server,
		// then cancel.
		select {
		case <-hang.reached:
		case <-time.After(2 * time.Second):
			t.Fatalf("p=%d: join never hit the hung server", par)
		}
		start := time.Now()
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("p=%d: err = %v, want context.Canceled", par, err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("p=%d: Run did not return within 2s of cancellation", par)
		}
		if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
			t.Fatalf("p=%d: cancellation took %v, want prompt return", par, elapsed)
		}
		// Release the hung handler so the server workers can exit, then
		// close everything and verify no goroutine outlives the run.
		close(hang.release)
		r.Close()
		s.Close()
		waitGoroutines(t, baseline)
	}
}

// TestDeadlineBoundsSlowLink runs a join against a link with a real
// simulated RTT under a deadline far below the total round-trip budget:
// the run must stop with DeadlineExceeded soon after the deadline, not
// after the full join.
func TestDeadlineBoundsSlowLink(t *testing.T) {
	robjs := dataset.GaussianClusters(400, 4, 300, dataset.World, 71)
	sobjs := dataset.GaussianClusters(400, 4, 300, dataset.World, 72)
	link := netsim.DefaultLink()
	link.RTT = 20 * time.Millisecond
	trR := netsim.Serve(server.New("R", robjs))
	trS := netsim.Serve(server.New("S", sobjs))
	r := mustRemote(t, "R", trR, link, 1)
	s := mustRemote(t, "S", trS, link, 1)
	t.Cleanup(func() { r.Close(); s.Close() })
	env := NewEnv(r, s, client.Device{BufferObjects: 200}, costmodel.Default(), geom.Rect{})

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := UpJoin{}.Run(ctx, env, Spec{Kind: Distance, Eps: 120})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	// Generous bound: deadline + one RTT + scheduling slack.
	if elapsed > 500*time.Millisecond {
		t.Fatalf("deadline overrun: run took %v against a 50ms deadline", elapsed)
	}
}

// errPermanent is the deterministic link failure of
// TestFirstErrorCancelsSiblings.
var errPermanent = errors.New("injected permanent link failure")

// failAfter passes through until `after` round trips have been issued,
// then fails every call.
type failAfter struct {
	rt    netsim.RoundTripper
	after int32
	n     atomic.Int32
}

func (f *failAfter) RoundTrip(ctx context.Context, req []byte) ([]byte, error) {
	if f.n.Add(1) > f.after {
		return nil, errPermanent
	}
	return f.rt.RoundTrip(ctx, req)
}

func (f *failAfter) Close() error { return f.rt.Close() }

// TestFirstErrorCancelsSiblings fails the S link permanently after a few
// requests while R keeps answering: the run must surface the S failure —
// the root cause, not a secondary cancellation — at any parallelism.
func TestFirstErrorCancelsSiblings(t *testing.T) {
	robjs := dataset.GaussianClusters(400, 4, 300, dataset.World, 81)
	sobjs := dataset.GaussianClusters(400, 4, 300, dataset.World, 82)
	for _, par := range []int{1, 4} {
		workers := par
		if workers < 1 {
			workers = 1
		}
		trR := netsim.ServeParallel(server.New("R", robjs), workers)
		trS := &failAfter{rt: netsim.ServeParallel(server.New("S", sobjs), workers), after: 4}
		r := mustRemote(t, "R", trR, netsim.DefaultLink(), 1)
		s := mustRemote(t, "S", trS, netsim.DefaultLink(), 1)
		env := NewEnv(r, s, client.Device{BufferObjects: 200}, costmodel.Default(), geom.Rect{})
		env.Parallelism = par

		_, err := UpJoin{}.Run(context.Background(), env, Spec{Kind: Distance, Eps: 120})
		if err == nil {
			t.Fatalf("p=%d: run succeeded despite failed S transport", par)
		}
		if errors.Is(err, context.Canceled) {
			t.Fatalf("p=%d: root cause hidden behind cancellation: %v", par, err)
		}
		if !errors.Is(err, errPermanent) {
			t.Fatalf("p=%d: err = %v, want the injected S failure", par, err)
		}
		if !strings.Contains(err.Error(), "S") {
			t.Fatalf("p=%d: error does not name the failed server: %v", par, err)
		}
		r.Close()
		s.Close()
	}
}
