package core

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/client"
	"repro/internal/costmodel"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/wire"
)

// --- UpJoin internals -----------------------------------------------------

func upStateForTest(t *testing.T, alpha float64) *upState {
	t.Helper()
	env := testEnv(t, dataset.Uniform(10, dataset.World, 1), dataset.Uniform(10, dataset.World, 2), 100)
	x, err := newExec(context.Background(), env, Spec{Kind: Distance, Eps: 10}, "test")
	if err != nil {
		t.Fatal(err)
	}
	return &upState{exec: x, alpha: alpha}
}

func TestUniformTestAcceptsBalancedQuadrants(t *testing.T) {
	u := upStateForTest(t, 0.25)
	qs := [4]cnt{exact(250), exact(251), exact(249), exact(250)}
	if !u.uniformTest(1000, qs) {
		t.Fatal("balanced quadrants should pass")
	}
}

func TestUniformTestRejectsConcentration(t *testing.T) {
	u := upStateForTest(t, 0.25)
	qs := [4]cnt{exact(1000), exact(0), exact(0), exact(0)}
	if u.uniformTest(1000, qs) {
		t.Fatal("fully concentrated quadrants should fail")
	}
}

func TestUniformTestAlphaMonotonic(t *testing.T) {
	// A distribution rejected at small α may pass at large α, never the
	// reverse.
	qs := [4]cnt{exact(400), exact(200), exact(200), exact(200)}
	strict := upStateForTest(t, 0.05)
	loose := upStateForTest(t, 0.9)
	if strict.uniformTest(1000, qs) && !loose.uniformTest(1000, qs) {
		t.Fatal("loosening alpha must not reject a previously accepted window")
	}
	if !loose.uniformTest(1000, qs) {
		t.Fatal("α=0.9 should accept a mild 40/20/20/20 imbalance")
	}
}

func TestEstQuadsConservesCount(t *testing.T) {
	for _, n := range []int{0, 1, 3, 4, 7, 1000} {
		qs := estQuads(n)
		sum := 0
		for _, q := range qs {
			if q.exact {
				t.Fatalf("estimated quadrants must be approximate")
			}
			sum += q.n
		}
		if sum != n {
			t.Fatalf("estQuads(%d) sums to %d", n, sum)
		}
	}
}

func TestRandomQuadrantWindowInsideParent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	w := geom.R(100, 200, 900, 1000)
	for i := 0; i < 200; i++ {
		probe := randomQuadrantWindow(rng, w)
		if !w.Contains(probe) {
			t.Fatalf("probe %v escapes parent %v", probe, w)
		}
		if dw := probe.Width() - w.Width()/2; dw > 1e-9 || dw < -1e-9 {
			t.Fatalf("probe %v is not quadrant-sized (width %v)", probe, probe.Width())
		}
		if dh := probe.Height() - w.Height()/2; dh > 1e-9 || dh < -1e-9 {
			t.Fatalf("probe %v is not quadrant-sized (height %v)", probe, probe.Height())
		}
	}
}

// --- SrJoin internals -----------------------------------------------------

func TestSrJoinBitmap(t *testing.T) {
	env := testEnv(t, dataset.Uniform(10, dataset.World, 1), dataset.Uniform(10, dataset.World, 2), 100)
	x, err := newExec(context.Background(), env, Spec{Kind: Distance, Eps: 10}, "test")
	if err != nil {
		t.Fatal(err)
	}
	s := &srState{exec: x, rho: 0.3}
	// Threshold is ρ·n/4 = 0.3·100/4 = 7.5: bits set for counts > 7.5.
	bm := s.bitmap(100, [4]cnt{exact(8), exact(7), exact(0), exact(50)})
	want := [4]bool{true, false, false, true}
	if bm != want {
		t.Fatalf("bitmap = %v, want %v", bm, want)
	}
}

// --- exec internals --------------------------------------------------------

func TestSplittableStopsAtEpsScale(t *testing.T) {
	env := testEnv(t, dataset.Uniform(10, dataset.World, 1), dataset.Uniform(10, dataset.World, 2), 100)
	x, err := newExec(context.Background(), env, Spec{Kind: Distance, Eps: 100}, "test")
	if err != nil {
		t.Fatal(err)
	}
	if !x.splittable(geom.R(0, 0, 1000, 1000), 0) {
		t.Fatal("large cell should be splittable")
	}
	if x.splittable(geom.R(0, 0, 150, 150), 0) {
		t.Fatal("cell below 2ε should not be splittable")
	}
	if x.splittable(geom.R(0, 0, 1000, 1000), maxDepth) {
		t.Fatal("depth bound must stop splitting")
	}
	// ε = 0: only the depth bound applies.
	x0, err := newExec(context.Background(), env, Spec{Kind: Intersection}, "test")
	if err != nil {
		t.Fatal(err)
	}
	if !x0.splittable(geom.R(0, 0, 0.001, 0.001), 5) {
		t.Fatal("intersection joins split regardless of cell size")
	}
}

func TestQuadrantCountDerivation(t *testing.T) {
	objs := dataset.Uniform(400, dataset.World, 31)
	env := testEnv(t, objs, objs, 100)
	// ε = 0: derivation is exact and costs 3 queries per side.
	x, err := newExec(context.Background(), env, Spec{Kind: Intersection}, "test")
	if err != nil {
		t.Fatal(err)
	}
	parent, err := x.count(sideR, dataset.World)
	if err != nil {
		t.Fatal(err)
	}
	before := x.dec.agg.Load()
	qs, err := x.quadrantCounts(sideR, dataset.World, exact(parent))
	if err != nil {
		t.Fatal(err)
	}
	if got := x.dec.agg.Load() - before; got != 3 {
		t.Fatalf("expected 3 aggregate queries, got %d", got)
	}
	sum := 0
	for _, q := range qs {
		if !q.exact {
			t.Fatal("ε=0 derivation must be exact")
		}
		sum += q.n
	}
	if sum != parent {
		t.Fatalf("quadrants sum to %d, parent %d", sum, parent)
	}

	// ε > 0: the derived fourth count is approximate.
	xd, err := newExec(context.Background(), env, Spec{Kind: Distance, Eps: 50}, "test")
	if err != nil {
		t.Fatal(err)
	}
	parentD, err := xd.count(sideR, dataset.World)
	if err != nil {
		t.Fatal(err)
	}
	qsD, err := xd.quadrantCounts(sideR, dataset.World, exact(parentD))
	if err != nil {
		t.Fatal(err)
	}
	if qsD[3].exact {
		t.Fatal("ε>0 derived count must be approximate")
	}
}

// --- failure injection ------------------------------------------------------

// faultyHandler answers the first okUntil requests normally, then returns
// protocol garbage.
type faultyHandler struct {
	inner   netsim.Handler
	okUntil int
	n       int
}

func (f *faultyHandler) Handle(req []byte) []byte {
	f.n++
	if f.n > f.okUntil {
		return []byte{0xFF, 0x01, 0x02} // not a valid frame type
	}
	return f.inner.Handle(req)
}

func TestAlgorithmsSurfaceMidJoinFailures(t *testing.T) {
	robjs := dataset.GaussianClusters(300, 4, 250, dataset.World, 41)
	sobjs := dataset.GaussianClusters(300, 4, 250, dataset.World, 41)
	for _, alg := range allAlgorithms() {
		srvR := server.New("R", robjs)
		srvS := server.New("S", sobjs)
		trR := netsim.Serve(&faultyHandler{inner: srvR, okUntil: 5})
		trS := netsim.Serve(srvS)
		r := mustRemote(t, "R", trR, netsim.DefaultLink(), 1)
		s := mustRemote(t, "S", trS, netsim.DefaultLink(), 1)
		env := NewEnv(r, s, client.Device{BufferObjects: 400}, costmodel.Default(), dataset.World)
		_, err := alg.Run(context.Background(), env, Spec{Kind: Distance, Eps: 100})
		r.Close()
		s.Close()
		if err == nil {
			t.Errorf("%s: garbage frames mid-join must surface an error", alg.Name())
		}
	}
}

// refusingHandler refuses every request with a server error.
type refusingHandler struct{}

func (refusingHandler) Handle(req []byte) []byte {
	return wire.EncodeError("service unavailable")
}

func TestAlgorithmsSurfaceServerRefusal(t *testing.T) {
	trR := netsim.Serve(refusingHandler{})
	trS := netsim.Serve(refusingHandler{})
	r := mustRemote(t, "R", trR, netsim.DefaultLink(), 1)
	s := mustRemote(t, "S", trS, netsim.DefaultLink(), 1)
	defer r.Close()
	defer s.Close()
	env := NewEnv(r, s, client.Device{BufferObjects: 400}, costmodel.Default(), dataset.World)
	_, err := UpJoin{}.Run(context.Background(), env, Spec{Kind: Distance, Eps: 100})
	if err == nil || !strings.Contains(err.Error(), "service unavailable") {
		t.Fatalf("err = %v, want surfaced refusal", err)
	}
}

func TestTraceHookReceivesDecisions(t *testing.T) {
	robjs := dataset.GaussianClusters(200, 2, 250, dataset.World, 51)
	sobjs := dataset.GaussianClusters(200, 2, 250, dataset.World, 51)
	env := testEnv(t, robjs, sobjs, 300)
	lines := 0
	env.Trace = func(format string, args ...any) { lines++ }
	if _, err := (UpJoin{}).Run(context.Background(), env, Spec{Kind: Distance, Eps: 100}); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("trace hook never fired")
	}
}
