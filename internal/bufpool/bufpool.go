// Package bufpool is the byte-buffer free list shared by the wire codec,
// the transports, and the server handlers. One pool serves all frame
// sizes: buffers circulate from the encoder of one endpoint to the
// decoder of the other and come back, so the steady state of a serving
// loop performs no buffer allocation at all.
//
// Ownership convention (see docs/PERFORMANCE.md): whoever calls Get — or
// receives a frame from a party that documents handing ownership over —
// must either Put the buffer exactly once after its bytes are dead, or
// drop it (dropping is always safe, it merely re-allocates later). A
// buffer must never be Put while any decoded view of it is still in use,
// and never Put twice.
package bufpool

import "sync"

// maxPooled bounds the capacity of recycled buffers. Frames larger than
// this (whole-dataset downloads in the hundreds of megabytes would need a
// pathological workload) are left to the garbage collector rather than
// pinned in the pool forever.
const maxPooled = 8 << 20

// entry boxes a slice so that Get/Put cycles allocate nothing: the boxes
// themselves are recycled through entryPool when their payload moves out.
type entry struct{ b []byte }

var bufPool = sync.Pool{
	New: func() any { return &entry{b: make([]byte, 0, 1024)} },
}

var entryPool = sync.Pool{
	New: func() any { return new(entry) },
}

// Get returns an empty buffer (len 0) with whatever capacity the pool has
// on hand. Append to it; hand it back with Put when its bytes are dead.
func Get() []byte {
	e := bufPool.Get().(*entry)
	b := e.b
	e.b = nil
	entryPool.Put(e)
	return b[:0]
}

// GetCap returns an empty buffer with capacity at least n. A pooled
// buffer that is too small goes back to the pool (it keeps serving
// smaller requests) rather than being dropped.
func GetCap(n int) []byte {
	b := Get()
	if cap(b) < n {
		Put(b)
		b = make([]byte, 0, n)
	}
	return b
}

// SameBacking reports whether two slices share one allocation, by
// comparing the address of the last element of each slice's capacity. It
// catches any aliasing (including sub-slices at different offsets) —
// exactly what a releaser must check before Putting both slices.
func SameBacking(a, b []byte) bool {
	return cap(a) > 0 && cap(b) > 0 && &a[:cap(a)][cap(a)-1] == &b[:cap(b)][cap(b)-1]
}

// Put recycles b. It is safe to Put buffers that did not come from Get
// (they join the pool); it is never safe to Put the same buffer twice or
// while its bytes are still referenced.
func Put(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooled {
		return
	}
	e := entryPool.Get().(*entry)
	e.b = b[:0]
	bufPool.Put(e)
}
