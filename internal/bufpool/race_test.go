//go:build race

package bufpool

// raceEnabled gates allocation-count assertions: under -race, sync.Pool
// randomly drops items and the instrumentation allocates, so
// AllocsPerRun results are meaningless.
const raceEnabled = true
