package bufpool

import "testing"

func TestGetPutCycle(t *testing.T) {
	b := Get()
	if len(b) != 0 {
		t.Fatalf("Get returned len %d", len(b))
	}
	b = append(b, 1, 2, 3)
	Put(b)
	c := Get()
	if len(c) != 0 {
		t.Fatalf("recycled buffer has len %d", len(c))
	}
}

func TestGetCap(t *testing.T) {
	b := GetCap(1 << 16)
	if cap(b) < 1<<16 {
		t.Fatalf("GetCap(64K) cap = %d", cap(b))
	}
	if len(b) != 0 {
		t.Fatalf("GetCap returned len %d", len(b))
	}
	Put(b)
}

func TestPutForeignAndOversized(t *testing.T) {
	Put(make([]byte, 100))         // foreign buffer joins the pool
	Put(make([]byte, maxPooled+1)) // oversized buffer is dropped
	Put(nil)                       // nil is a no-op
	if b := Get(); b == nil && cap(b) != 0 {
		t.Fatal("pool corrupted")
	}
}

func TestSameBacking(t *testing.T) {
	a := make([]byte, 10, 20)
	if !SameBacking(a, a) {
		t.Fatal("slice does not share backing with itself")
	}
	if !SameBacking(a, a[3:7]) {
		t.Fatal("offset sub-slice not detected as aliasing")
	}
	if SameBacking(a, make([]byte, 10)) {
		t.Fatal("distinct allocations reported as aliasing")
	}
	if SameBacking(nil, a) || SameBacking(a, nil) {
		t.Fatal("nil slice reported as aliasing")
	}
}

// TestSteadyStateAllocs checks the headline property: a Get/Put cycle at
// steady state performs zero allocations.
func TestSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc counts are meaningless")
	}
	// Warm the pool so entry boxes exist.
	for i := 0; i < 16; i++ {
		Put(Get())
	}
	avg := testing.AllocsPerRun(1000, func() {
		b := Get()
		b = append(b, 'x')
		Put(b)
	})
	if avg > 0.05 {
		t.Fatalf("Get/Put cycle allocates %v times per run", avg)
	}
}
