// Package dataset generates and serializes the spatial workloads of the
// paper's evaluation (§5):
//
//   - GaussianClusters: n points clustered around k randomly selected
//     centers with Gaussian spread — the synthetic workload, with k from 1
//     (maximally skewed) to 128 (effectively uniform).
//   - Uniform: n independently uniform points.
//   - Railway: a synthetic stand-in for the "railway segments of Germany"
//     real dataset (~35K short segment MBRs concentrated along a sparse
//     network). See DESIGN.md §2 for the substitution rationale.
//
// All generators are deterministic given a seed.
package dataset

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/geom"
)

// World is the default data space used by the experiments.
var World = geom.R(0, 0, 10000, 10000)

// GaussianClusters generates n point objects grouped in k clusters whose
// centers are uniform in bounds and whose members are normally
// distributed around the center with standard deviation sigma (same in x
// and y). Points falling outside bounds are clamped to it, as MBRs
// outside the advertised space would never be reachable by window
// queries. IDs are 0..n-1.
func GaussianClusters(n, k int, sigma float64, bounds geom.Rect, seed int64) []geom.Object {
	if n < 0 || k < 1 {
		panic("dataset: need n >= 0 and k >= 1")
	}
	rnd := rand.New(rand.NewSource(seed))
	centers := make([]geom.Point, k)
	for i := range centers {
		centers[i] = geom.Pt(
			bounds.MinX+rnd.Float64()*bounds.Width(),
			bounds.MinY+rnd.Float64()*bounds.Height(),
		)
	}
	objs := make([]geom.Object, n)
	for i := range objs {
		c := centers[i%k]
		p := geom.Pt(
			clamp(c.X+rnd.NormFloat64()*sigma, bounds.MinX, bounds.MaxX),
			clamp(c.Y+rnd.NormFloat64()*sigma, bounds.MinY, bounds.MaxY),
		)
		objs[i] = geom.PointObject(uint32(i), p)
	}
	return objs
}

// Uniform generates n independently uniform point objects in bounds.
func Uniform(n int, bounds geom.Rect, seed int64) []geom.Object {
	rnd := rand.New(rand.NewSource(seed))
	objs := make([]geom.Object, n)
	for i := range objs {
		objs[i] = geom.PointObject(uint32(i), geom.Pt(
			bounds.MinX+rnd.Float64()*bounds.Width(),
			bounds.MinY+rnd.Float64()*bounds.Height(),
		))
	}
	return objs
}

// ClusteredRects generates n small rectangle objects around k cluster
// centers, for intersection-join workloads over non-point data. Each MBR
// has uniform extents in (0, maxSide] per axis.
func ClusteredRects(n, k int, sigma, maxSide float64, bounds geom.Rect, seed int64) []geom.Object {
	pts := GaussianClusters(n, k, sigma, bounds, seed)
	rnd := rand.New(rand.NewSource(seed ^ 0x5eed))
	for i := range pts {
		c := pts[i].MBR.Center()
		hw := rnd.Float64() * maxSide / 2
		hh := rnd.Float64() * maxSide / 2
		mbr := geom.RectFromCenter(c, hw, hh)
		mbr, _ = clampRect(mbr, bounds)
		pts[i].MBR = mbr
	}
	return pts
}

// RailwayConfig parameterizes the synthetic railway generator.
type RailwayConfig struct {
	// Segments is the approximate number of segment objects (the paper's
	// dataset has ~35K).
	Segments int
	// Stations is the number of network vertices.
	Stations int
	// Degree is the average number of links per station.
	Degree int
	// Bounds is the data space.
	Bounds geom.Rect
	// Jitter is the per-subsegment lateral deviation, making the lines
	// look like curved tracks rather than straight chords.
	Jitter float64
}

// DefaultRailway mirrors the paper's real dataset scale: ~35K segments,
// concentrated along a sparse corridor network so that — like the real
// Germany railway data — large parts of the space are empty and
// prunable.
func DefaultRailway() RailwayConfig {
	return RailwayConfig{
		Segments: 35000,
		Stations: 150,
		Degree:   3,
		Bounds:   World,
		Jitter:   25,
	}
}

// Railway synthesizes a rail-network dataset: stations are random points
// (denser in a few metropolitan hot spots), edges connect each station to
// its nearest unconnected neighbors, and each edge is subdivided into
// short jittered sub-segments whose MBRs form the objects. The result is
// a large, strongly skewed line-segment dataset comparable to the
// Germany railway data used in §5.2.
func Railway(cfg RailwayConfig, seed int64) []geom.Object {
	if cfg.Segments <= 0 || cfg.Stations < 2 {
		panic("dataset: railway config needs Segments > 0 and Stations >= 2")
	}
	rnd := rand.New(rand.NewSource(seed))
	b := cfg.Bounds

	// Stations: 90% in metro hot spots, 10% spread out. Metro areas are
	// dense two-dimensional webs (like city rail networks); the few
	// intercity corridors leave wide empty regions between them.
	metros := 5 + rnd.Intn(3)
	metroCenters := make([]geom.Point, metros)
	for i := range metroCenters {
		metroCenters[i] = geom.Pt(
			b.MinX+(0.15+0.7*rnd.Float64())*b.Width(),
			b.MinY+(0.15+0.7*rnd.Float64())*b.Height(),
		)
	}
	stations := make([]geom.Point, cfg.Stations)
	for i := range stations {
		if rnd.Float64() < 0.9 {
			c := metroCenters[rnd.Intn(metros)]
			stations[i] = geom.Pt(
				clamp(c.X+rnd.NormFloat64()*b.Width()*0.06, b.MinX, b.MaxX),
				clamp(c.Y+rnd.NormFloat64()*b.Height()*0.06, b.MinY, b.MaxY),
			)
		} else {
			stations[i] = geom.Pt(
				b.MinX+rnd.Float64()*b.Width(),
				b.MinY+rnd.Float64()*b.Height(),
			)
		}
	}

	// Edges: connect each station to its Degree nearest neighbors.
	type edge struct{ a, b int }
	seen := map[[2]int]bool{}
	var edges []edge
	for i := range stations {
		type cand struct {
			j int
			d float64
		}
		cands := make([]cand, 0, len(stations)-1)
		for j := range stations {
			if j != i {
				cands = append(cands, cand{j, stations[i].DistSqTo(stations[j])})
			}
		}
		sort.Slice(cands, func(x, y int) bool { return cands[x].d < cands[y].d })
		for d := 0; d < cfg.Degree && d < len(cands); d++ {
			a, bb := i, cands[d].j
			if a > bb {
				a, bb = bb, a
			}
			key := [2]int{a, bb}
			if !seen[key] {
				seen[key] = true
				edges = append(edges, edge{a, bb})
			}
		}
	}

	// Total track length determines sub-segment length so that the total
	// object count approximates cfg.Segments.
	var totalLen float64
	for _, e := range edges {
		totalLen += stations[e.a].DistTo(stations[e.b])
	}
	segLen := totalLen / float64(cfg.Segments)
	if segLen <= 0 {
		segLen = 1
	}

	objs := make([]geom.Object, 0, cfg.Segments+len(edges))
	id := uint32(0)
	for _, e := range edges {
		from, to := stations[e.a], stations[e.b]
		length := from.DistTo(to)
		steps := int(math.Ceil(length / segLen))
		if steps < 1 {
			steps = 1
		}
		// Unit normal for lateral jitter.
		nx, ny := -(to.Y-from.Y)/length, (to.X-from.X)/length
		prev := from
		for s := 1; s <= steps; s++ {
			t := float64(s) / float64(steps)
			jit := 0.0
			if s < steps {
				// Smooth jitter: sinusoidal bow plus noise.
				jit = cfg.Jitter * (math.Sin(t*math.Pi)*0.5 + (rnd.Float64() - 0.5))
			}
			cur := geom.Pt(
				clamp(from.X+(to.X-from.X)*t+nx*jit, b.MinX, b.MaxX),
				clamp(from.Y+(to.Y-from.Y)*t+ny*jit, b.MinY, b.MaxY),
			)
			objs = append(objs, geom.Object{ID: id, MBR: geom.R(prev.X, prev.Y, cur.X, cur.Y)})
			id++
			prev = cur
		}
	}
	return objs
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// clampRect shifts/clips r into bounds; the bool reports whether any
// clipping occurred.
func clampRect(r geom.Rect, bounds geom.Rect) (geom.Rect, bool) {
	out, ok := r.Intersection(bounds)
	if !ok {
		// Entirely outside: collapse to the nearest boundary point.
		c := r.Center()
		p := geom.Pt(clamp(c.X, bounds.MinX, bounds.MaxX), clamp(c.Y, bounds.MinY, bounds.MaxY))
		return geom.RectFromPoint(p), true
	}
	return out, out != r
}

// Bounds returns the union MBR of the objects, or the zero Rect when the
// slice is empty.
func Bounds(objs []geom.Object) geom.Rect {
	if len(objs) == 0 {
		return geom.Rect{}
	}
	b := objs[0].MBR
	for _, o := range objs[1:] {
		b = b.Union(o.MBR)
	}
	return b
}
