package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/geom"
)

// File format: magic "SPD1", uint32 count, then count records of
// uint32 id + 4×float64 MBR, all little-endian. Coordinates are stored at
// full precision; the wire protocol's float32 narrowing applies only to
// transfers, not to storage.

var magic = [4]byte{'S', 'P', 'D', '1'}

// Write serializes objs to w.
func Write(w io.Writer, objs []geom.Object) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(objs))); err != nil {
		return err
	}
	var rec [4 + 8*4]byte
	for _, o := range objs {
		binary.LittleEndian.PutUint32(rec[0:], o.ID)
		binary.LittleEndian.PutUint64(rec[4:], math.Float64bits(o.MBR.MinX))
		binary.LittleEndian.PutUint64(rec[12:], math.Float64bits(o.MBR.MinY))
		binary.LittleEndian.PutUint64(rec[20:], math.Float64bits(o.MBR.MaxX))
		binary.LittleEndian.PutUint64(rec[28:], math.Float64bits(o.MBR.MaxY))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes objects written by Write.
func Read(r io.Reader) ([]geom.Object, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("dataset: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("dataset: bad magic %q", m)
	}
	var n uint32
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("dataset: reading count: %w", err)
	}
	objs := make([]geom.Object, n)
	var rec [4 + 8*4]byte
	for i := range objs {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("dataset: reading record %d/%d: %w", i, n, err)
		}
		objs[i] = geom.Object{
			ID: binary.LittleEndian.Uint32(rec[0:]),
			MBR: geom.Rect{
				MinX: math.Float64frombits(binary.LittleEndian.Uint64(rec[4:])),
				MinY: math.Float64frombits(binary.LittleEndian.Uint64(rec[12:])),
				MaxX: math.Float64frombits(binary.LittleEndian.Uint64(rec[20:])),
				MaxY: math.Float64frombits(binary.LittleEndian.Uint64(rec[28:])),
			},
		}
	}
	return objs, nil
}

// SaveFile writes objs to the named file.
func SaveFile(path string, objs []geom.Object) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, objs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads objects from the named file.
func LoadFile(path string) ([]geom.Object, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
