package dataset

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/geom"
)

func TestGaussianClustersBasics(t *testing.T) {
	objs := GaussianClusters(1000, 4, 200, World, 1)
	if len(objs) != 1000 {
		t.Fatalf("len = %d", len(objs))
	}
	ids := map[uint32]bool{}
	for _, o := range objs {
		if !o.IsPoint() {
			t.Fatal("cluster objects must be points")
		}
		if !World.Contains(o.MBR) {
			t.Fatalf("object %v outside world", o.MBR)
		}
		if ids[o.ID] {
			t.Fatalf("duplicate id %d", o.ID)
		}
		ids[o.ID] = true
	}
}

func TestGaussianClustersDeterministic(t *testing.T) {
	a := GaussianClusters(100, 8, 150, World, 42)
	b := GaussianClusters(100, 8, 150, World, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give identical datasets")
		}
	}
	c := GaussianClusters(100, 8, 150, World, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

// skewScore is the fraction of a coarse grid's cells holding 95% of the
// data; low values mean concentrated (skewed) datasets.
func skewScore(objs []geom.Object) float64 {
	const k = 16
	cells := World.Grid(k)
	counts := make([]int, len(cells))
	for _, o := range objs {
		c := o.MBR.Center()
		col := int(float64(k) * (c.X - World.MinX) / World.Width())
		row := int(float64(k) * (c.Y - World.MinY) / World.Height())
		if col >= k {
			col = k - 1
		}
		if row >= k {
			row = k - 1
		}
		counts[row*k+col]++
	}
	// Count cells needed to reach 95% coverage, greedily.
	total := len(objs)
	covered, used := 0, 0
	for covered < total*95/100 {
		best := -1
		for i, c := range counts {
			if best < 0 || c > counts[best] {
				best = i
			}
			_ = c
		}
		covered += counts[best]
		counts[best] = -1
		used++
	}
	return float64(used) / float64(len(cells))
}

func TestClusterCountControlsSkew(t *testing.T) {
	skew1 := skewScore(GaussianClusters(1000, 1, 200, World, 5))
	skew128 := skewScore(GaussianClusters(1000, 128, 200, World, 5))
	if skew1 >= skew128 {
		t.Fatalf("k=1 should be more skewed than k=128: %v vs %v", skew1, skew128)
	}
	if skew128 < 0.3 {
		t.Fatalf("k=128 should be near-uniform, got score %v", skew128)
	}
}

func TestUniform(t *testing.T) {
	objs := Uniform(500, World, 9)
	if len(objs) != 500 {
		t.Fatalf("len = %d", len(objs))
	}
	if skewScore(objs) < 0.4 {
		t.Fatalf("uniform dataset scored too skewed: %v", skewScore(objs))
	}
}

func TestClusteredRects(t *testing.T) {
	objs := ClusteredRects(300, 4, 150, 50, World, 3)
	if len(objs) != 300 {
		t.Fatalf("len = %d", len(objs))
	}
	anyBox := false
	for _, o := range objs {
		if !World.Contains(o.MBR) {
			t.Fatalf("rect %v outside world", o.MBR)
		}
		if o.MBR.Width() > 50 || o.MBR.Height() > 50 {
			t.Fatalf("rect %v larger than maxSide", o.MBR)
		}
		if !o.IsPoint() {
			anyBox = true
		}
	}
	if !anyBox {
		t.Fatal("expected non-degenerate rectangles")
	}
}

func TestRailwayShape(t *testing.T) {
	cfg := DefaultRailway()
	objs := Railway(cfg, 7)
	if len(objs) < cfg.Segments*8/10 || len(objs) > cfg.Segments*13/10 {
		t.Fatalf("segment count %d not within 20-30%% of target %d", len(objs), cfg.Segments)
	}
	var diag float64
	for _, o := range objs {
		if !cfg.Bounds.Contains(o.MBR) {
			t.Fatalf("segment %v outside bounds", o.MBR)
		}
		diag += math.Hypot(o.MBR.Width(), o.MBR.Height())
	}
	// Segments should be short relative to the world.
	avg := diag / float64(len(objs))
	if avg > cfg.Bounds.Width()/50 {
		t.Fatalf("average segment diagonal %v too long", avg)
	}
	// Line data must be skewed: big empty areas.
	if s := skewScore(objs); s > 0.85 {
		t.Fatalf("railway data should leave empty space, skew score %v", s)
	}
}

func TestRailwayDeterministic(t *testing.T) {
	a := Railway(DefaultRailway(), 11)
	b := Railway(DefaultRailway(), 11)
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give identical railway")
		}
	}
}

func TestBoundsHelper(t *testing.T) {
	if Bounds(nil) != (geom.Rect{}) {
		t.Fatal("empty bounds should be zero")
	}
	objs := []geom.Object{
		geom.PointObject(1, geom.Pt(3, 4)),
		geom.PointObject(2, geom.Pt(-1, 10)),
	}
	if got, want := Bounds(objs), geom.R(-1, 4, 3, 10); got != want {
		t.Fatalf("Bounds = %v, want %v", got, want)
	}
}

func TestIORoundTrip(t *testing.T) {
	objs := GaussianClusters(137, 3, 100, World, 21)
	var buf bytes.Buffer
	if err := Write(&buf, objs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(objs) {
		t.Fatalf("len = %d, want %d", len(got), len(objs))
	}
	for i := range objs {
		if got[i] != objs[i] {
			t.Fatalf("object %d: got %v, want %v", i, got[i], objs[i])
		}
	}
}

func TestIOBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("JUNKxxxx"))); err == nil {
		t.Fatal("bad magic should error")
	}
}

func TestIOTruncated(t *testing.T) {
	objs := Uniform(10, World, 1)
	var buf bytes.Buffer
	if err := Write(&buf, objs); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Read(bytes.NewReader(data[:len(data)-5])); err == nil {
		t.Fatal("truncated stream should error")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.spd")
	objs := Railway(RailwayConfig{Segments: 500, Stations: 20, Degree: 2, Bounds: World, Jitter: 10}, 2)
	if err := SaveFile(path, objs); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(objs) {
		t.Fatalf("len = %d, want %d", len(got), len(objs))
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.spd")); err == nil {
		t.Fatal("missing file should error")
	}
}
