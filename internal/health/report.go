package health

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/geom"
)

// This file is the degraded partial-result contract. When a run opts in
// (core.Env.AllowPartial), a Report travels down the context to the
// shard router; instead of failing the whole join when a failure domain
// is unreachable, the router records a Gap per dead shard and answers
// from the live ones. The run's Result then carries a Completeness
// describing exactly what the answer is missing, so COUNT and window
// answers have explicit lower-bound semantics instead of silent holes.

// Gap describes one unreachable failure domain's missing contribution.
type Gap struct {
	// Relation is the logical relation the shard belongs to ("R"/"S").
	Relation string
	// Shard is the unreachable shard endpoint's name (e.g. "S2/2").
	Shard string
	// Bounds is the shard's advertised bounding rectangle, when its INFO
	// was fetched before the shard died; the zero Rect when unknown.
	Bounds geom.Rect
	// Count is the shard's advertised cardinality (0 when unknown): the
	// upper bound on objects the answer may be missing from this shard.
	Count int64
	// Queries counts the sub-queries this gap absorbed during the run.
	Queries int
	// Reason is the first root-cause error observed for this shard.
	Reason string
}

// Completeness reports how much of the fleet contributed to a degraded
// answer. A nil *Completeness (runs without AllowPartial) and an empty
// Gaps list both mean the answer is exact.
type Completeness struct {
	// ShardsTotal is the number of shard endpoints across both relations.
	ShardsTotal int
	// ShardsAnswered is how many of them contributed fully.
	ShardsAnswered int
	// Gaps lists the unreachable failure domains, in first-seen order.
	Gaps []Gap
}

// Complete reports whether the answer is exact (no gaps).
func (c *Completeness) Complete() bool { return c == nil || len(c.Gaps) == 0 }

// String renders the report for logs and the CLI:
//
//	partial: 3/4 shards answered; missing S2/2 (≤2863 objects, 17 queries): netsim: endpoint killed
func (c *Completeness) String() string {
	if c.Complete() {
		return "complete"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "partial: %d/%d shards answered", c.ShardsAnswered, c.ShardsTotal)
	for _, g := range c.Gaps {
		fmt.Fprintf(&b, "; missing %s/%s (≤%d objects, %d queries): %s",
			g.Relation, g.Shard, g.Count, g.Queries, g.Reason)
	}
	return b.String()
}

// Report collects the gaps of one run. It is installed into the run's
// context by the executor and consulted by the shard router; both sides
// may run many goroutines, so Report is safe for concurrent use. Gaps
// deduplicate per shard — a dead shard absorbs many sub-queries but
// yields one Gap whose Queries counter tallies them.
type Report struct {
	mu    sync.Mutex
	gaps  map[string]*Gap
	order []string
}

// NewReport returns an empty collector.
func NewReport() *Report {
	return &Report{gaps: make(map[string]*Gap)}
}

// Record notes that one sub-query against the named shard was absorbed
// as a gap. Bounds and count may be zero when the shard died before its
// INFO was fetched; a later call that knows them fills them in.
func (r *Report) Record(relation, shard string, bounds geom.Rect, count int64, reason string) {
	key := relation + "\x00" + shard
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gaps[key]
	if !ok {
		g = &Gap{Relation: relation, Shard: shard}
		r.gaps[key] = g
		r.order = append(r.order, key)
	}
	g.Queries++
	if g.Count == 0 {
		g.Count = count
	}
	if g.Bounds == (geom.Rect{}) {
		g.Bounds = bounds
	}
	if g.Reason == "" {
		g.Reason = reason
	}
}

// Gaps returns the collected gaps in first-seen order.
func (r *Report) Gaps() []Gap {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Gap, 0, len(r.order))
	for _, key := range r.order {
		out = append(out, *r.gaps[key])
	}
	return out
}

// Empty reports whether no gap has been recorded.
func (r *Report) Empty() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.order) == 0
}

// reportKey carries the run's Report down the context.
type reportKey struct{}

// WithReport returns a context under which the shard layer records
// unreachable-domain gaps into rep instead of failing the run — the
// degraded partial-result mode. Absent from the context, failures
// propagate exactly as before.
func WithReport(ctx context.Context, rep *Report) context.Context {
	return context.WithValue(ctx, reportKey{}, rep)
}

// ReportFrom returns the run's gap collector, or nil when the run did
// not opt into partial results.
func ReportFrom(ctx context.Context) *Report {
	rep, _ := ctx.Value(reportKey{}).(*Report)
	return rep
}
