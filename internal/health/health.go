// Package health tracks per-endpoint liveness for the serving stack.
//
// The paper's cost model assumes every server eventually answers; a real
// fleet does not. PR 3 retries and PR 6 replica failover are *reactive*:
// every probe re-discovers a dead endpoint by paying for a failed attempt
// first. This package makes failure knowledge *persistent* between
// probes: each endpoint gets a three-state circuit breaker
//
//	Closed ──(error rate / consecutive failures)──▶ Open
//	Open ──(cool-down elapsed, live trial)──▶ HalfOpen
//	Open ──(background INFO probe succeeds)──▶ Closed
//	HalfOpen ──(trial succeeds)──▶ Closed
//	HalfOpen ──(trial fails)──▶ Open
//
// scored by an EWMA over attempt outcomes and latencies. Callers consult
// Allow before spending bytes on an endpoint and report every outcome
// back; a Registry owns the background recovery probers (one cheap INFO
// probe per interval against each open breaker) so a dead replica is
// re-admitted promptly after it revives without a live query paying for
// the discovery.
//
// Everything here is advisory bookkeeping: a breaker never blocks a
// caller that chooses to ignore it, and with no registry wired in the
// serving stack behaves exactly as before (the goldens pin this).
package health

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// State is a circuit breaker's position.
type State int32

// Breaker states.
const (
	// Closed admits all traffic (the healthy steady state).
	Closed State = iota
	// Open admits no traffic until the cool-down elapses.
	Open
	// HalfOpen admits trial traffic whose outcome decides re-closing.
	HalfOpen
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "invalid"
	}
}

// ewmaAlpha weights the most recent outcome in the failure-rate and
// latency EWMAs. 0.25 means ~4 recent attempts dominate the score:
// reactive enough to trip within a handful of failures, smooth enough
// that one lost frame on a lossy link does not open the circuit.
const ewmaAlpha = 0.25

// Config parameterizes breakers. The zero value gets the defaults noted
// per field (withDefaults).
type Config struct {
	// ConsecutiveFailures opens a closed breaker after this many failed
	// attempts in a row, regardless of the EWMA (default 3). A hard-dead
	// endpoint trips in a bounded number of wasted probes.
	ConsecutiveFailures int
	// FailureRate opens a closed breaker when the EWMA failure rate
	// reaches this threshold (default 0.9) — the flapping-endpoint trip,
	// which consecutive counting alone would miss.
	FailureRate float64
	// MinSamples gates the FailureRate trip until the EWMA has seen this
	// many outcomes (default 8): a rate derived from two attempts is
	// noise.
	MinSamples int
	// OpenFor is the cool-down an open breaker holds before admitting a
	// live half-open trial (default 50ms). Each failed recovery probe
	// pushes the cool-down out again, so live traffic never trials an
	// endpoint the prober just saw dead.
	OpenFor time.Duration
	// ProbeInterval is the period of the background recovery prober
	// attached to an open breaker (default OpenFor). Zero with a zero
	// OpenFor means the 50ms default.
	ProbeInterval time.Duration
	// ProbeBudget bounds each recovery probe end-to-end (default 250ms),
	// so a hung endpoint cannot wedge the prober.
	ProbeBudget time.Duration
}

// withDefaults resolves the documented defaults.
func (c Config) withDefaults() Config {
	if c.ConsecutiveFailures <= 0 {
		c.ConsecutiveFailures = 3
	}
	if c.FailureRate <= 0 || c.FailureRate > 1 {
		c.FailureRate = 0.9
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 50 * time.Millisecond
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = c.OpenFor
	}
	if c.ProbeBudget <= 0 {
		c.ProbeBudget = 250 * time.Millisecond
	}
	return c
}

// Stats is a snapshot of one breaker's (or a registry's summed)
// transition counters. All counters are monotone, so snapshots taken
// before and after a run diff meaningfully.
type Stats struct {
	// Opens counts closed/half-open → open transitions.
	Opens int64
	// Closes counts open/half-open → closed transitions (recoveries).
	Closes int64
	// HalfOpens counts open → half-open transitions (live trials).
	HalfOpens int64
	// Skips counts attempts a caller routed around this endpoint because
	// the breaker was open — each one a probe that would have been wasted
	// re-discovering the failure.
	Skips int64
	// Probes counts background recovery probes issued.
	Probes int64
}

// Add returns the element-wise sum of two snapshots.
func (s Stats) Add(t Stats) Stats {
	return Stats{
		Opens:     s.Opens + t.Opens,
		Closes:    s.Closes + t.Closes,
		HalfOpens: s.HalfOpens + t.HalfOpens,
		Skips:     s.Skips + t.Skips,
		Probes:    s.Probes + t.Probes,
	}
}

// ProbeFunc issues one cheap liveness probe (an INFO round trip in the
// serving stack) against the breaker's endpoint.
type ProbeFunc func(ctx context.Context) error

// Breaker is the circuit breaker of one endpoint. All methods are safe
// for concurrent use.
type Breaker struct {
	name  string
	cfg   Config
	reg   *Registry // nil for a standalone breaker: no background prober
	probe ProbeFunc

	mu          sync.Mutex
	state       State
	consecutive int     // failed attempts in a row
	samples     int     // outcomes folded into the EWMAs
	ewmaFail    float64 // EWMA failure rate in [0, 1]
	ewmaLatNS   float64 // EWMA success latency, nanoseconds
	openedAt    time.Time
	proberLive  bool // a recovery prober goroutine is attached

	opens, closes, halfOpens, skips, probes atomic.Int64
}

// NewBreaker returns a standalone breaker (no background prober — tests
// and callers that drive recovery themselves). The serving stack obtains
// breakers from a Registry instead.
func NewBreaker(name string, cfg Config) *Breaker {
	return &Breaker{name: name, cfg: cfg.withDefaults()}
}

// Name returns the endpoint name the breaker guards.
func (b *Breaker) Name() string { return b.name }

// State returns the current breaker state.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Stats returns a snapshot of the transition counters.
func (b *Breaker) Stats() Stats {
	return Stats{
		Opens:     b.opens.Load(),
		Closes:    b.closes.Load(),
		HalfOpens: b.halfOpens.Load(),
		Skips:     b.skips.Load(),
		Probes:    b.probes.Load(),
	}
}

// FailureRate returns the EWMA failure rate in [0, 1].
func (b *Breaker) FailureRate() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ewmaFail
}

// Latency returns the EWMA of successful attempt latencies (0 until the
// first success).
func (b *Breaker) Latency() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return time.Duration(b.ewmaLatNS)
}

// Allow reports whether an attempt may be launched now. An open breaker
// whose cool-down has elapsed transitions to half-open and admits the
// attempt as the recovery trial. Allow mutates — use Admits for a pure
// liveness check.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != Open {
		return true
	}
	if time.Since(b.openedAt) < b.cfg.OpenFor {
		return false
	}
	b.state = HalfOpen
	b.halfOpens.Add(1)
	return true
}

// Admits reports whether Allow would admit an attempt, without changing
// state: the router's pure "is this whole endpoint dead" check.
func (b *Breaker) Admits() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != Open || time.Since(b.openedAt) >= b.cfg.OpenFor
}

// Skip records that a caller routed around this endpoint because the
// breaker held it open — one probe saved versus reactive failover.
func (b *Breaker) Skip() { b.skips.Add(1) }

// ReportSuccess folds one successful attempt of duration d (0 when the
// caller has no latency to report) into the score. Any success closes an
// open or half-open breaker: the endpoint answered, so it serves again.
func (b *Breaker) ReportSuccess(d time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.observe(0)
	if d > 0 {
		if b.ewmaLatNS == 0 {
			b.ewmaLatNS = float64(d)
		} else {
			b.ewmaLatNS += ewmaAlpha * (float64(d) - b.ewmaLatNS)
		}
	}
	b.consecutive = 0
	if b.state != Closed {
		b.toClosed()
	}
}

// ReportFailure folds one failed attempt into the score, tripping a
// closed breaker past either threshold and re-opening a half-open one
// whose trial just failed. Callers must not report failures the endpoint
// is innocent of (their own cancellation, a transport they closed).
func (b *Breaker) ReportFailure(error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.observe(1)
	b.consecutive++
	switch b.state {
	case HalfOpen:
		b.toOpen()
	case Closed:
		if b.consecutive >= b.cfg.ConsecutiveFailures ||
			(b.samples >= b.cfg.MinSamples && b.ewmaFail >= b.cfg.FailureRate) {
			b.toOpen()
		}
	}
}

// observe folds one outcome (0 success, 1 failure) into the failure-rate
// EWMA. Caller holds mu.
func (b *Breaker) observe(x float64) {
	b.samples++
	b.ewmaFail += ewmaAlpha * (x - b.ewmaFail)
}

// toOpen trips the breaker and attaches a recovery prober. Caller holds mu.
func (b *Breaker) toOpen() {
	b.state = Open
	b.openedAt = time.Now()
	b.opens.Add(1)
	b.startProber()
}

// toClosed re-admits the endpoint with a clean slate: the failure EWMA
// restarts so the next trip needs fresh evidence, not stale history.
// Caller holds mu.
func (b *Breaker) toClosed() {
	b.state = Closed
	b.consecutive = 0
	b.samples = 0
	b.ewmaFail = 0
	b.closes.Add(1)
}

// startProber attaches the background recovery prober if one can run and
// none is attached. Caller holds mu.
func (b *Breaker) startProber() {
	if b.probe == nil || b.reg == nil || b.proberLive {
		return
	}
	if !b.reg.track() {
		return // registry closed: no new probers
	}
	b.proberLive = true
	go b.proberLoop()
}

// proberLoop probes the open endpoint every ProbeInterval until it
// recovers, the breaker is closed by live traffic, or the registry shuts
// down. The prober is the half-open recovery path that costs no live
// query anything: one INFO round trip per interval, budget-bounded.
func (b *Breaker) proberLoop() {
	defer func() {
		b.mu.Lock()
		b.proberLive = false
		b.mu.Unlock()
		b.reg.wg.Done()
	}()
	t := time.NewTicker(b.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-b.reg.ctx.Done():
			return
		case <-t.C:
		}
		if b.State() == Closed {
			return // live traffic recovered it first
		}
		pctx, cancel := context.WithTimeout(b.reg.ctx, b.cfg.ProbeBudget)
		err := b.probe(pctx)
		cancel()
		b.probes.Add(1)
		if b.reg.ctx.Err() != nil {
			return // shut down mid-probe: the outcome proves nothing
		}
		if err == nil {
			b.ReportSuccess(0)
			return
		}
		// Still down: push the cool-down out so live traffic does not
		// spend a half-open trial on an endpoint the prober just saw dead.
		b.mu.Lock()
		if b.state == Open {
			b.openedAt = time.Now()
		}
		b.mu.Unlock()
	}
}

// Registry owns the breakers of one serving assembly and the lifecycle
// of their background recovery probers. Close is required: it stops the
// probers and waits for them, so no goroutine outlives the session.
type Registry struct {
	cfg    Config
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	breakers map[string]*Breaker
	order    []string
}

// NewRegistry returns a registry handing out breakers configured by cfg
// (zero-value fields get the documented defaults).
func NewRegistry(cfg Config) *Registry {
	ctx, cancel := context.WithCancel(context.Background())
	return &Registry{
		cfg:      cfg.withDefaults(),
		ctx:      ctx,
		cancel:   cancel,
		breakers: make(map[string]*Breaker),
	}
}

// Breaker returns the breaker registered under name, creating it with
// probe as its recovery probe on first use (later calls keep the first
// probe). A nil probe disables background recovery for that endpoint —
// only live half-open trials re-close it.
func (g *Registry) Breaker(name string, probe ProbeFunc) *Breaker {
	g.mu.Lock()
	defer g.mu.Unlock()
	if b, ok := g.breakers[name]; ok {
		return b
	}
	b := &Breaker{name: name, cfg: g.cfg, reg: g, probe: probe}
	g.breakers[name] = b
	g.order = append(g.order, name)
	return b
}

// Breakers returns the registered breakers in registration order.
func (g *Registry) Breakers() []*Breaker {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*Breaker, len(g.order))
	for i, name := range g.order {
		out[i] = g.breakers[name]
	}
	return out
}

// Stats returns the summed transition counters over all breakers.
func (g *Registry) Stats() Stats {
	var sum Stats
	for _, b := range g.Breakers() {
		sum = sum.Add(b.Stats())
	}
	return sum
}

// AllClosed reports whether every registered breaker is closed (the
// fleet-recovered check the chaos harness polls).
func (g *Registry) AllClosed() bool {
	for _, b := range g.Breakers() {
		if b.State() != Closed {
			return false
		}
	}
	return true
}

// track registers one prober goroutine with the shutdown group; it
// returns false once the registry is closed.
func (g *Registry) track() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return false
	}
	g.wg.Add(1)
	return true
}

// Close stops every background prober — cancelling any probe in flight —
// and waits for them to exit. Idempotent.
func (g *Registry) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	g.mu.Unlock()
	g.cancel()
	g.wg.Wait()
}
