package health

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/geom"
)

var errDown = errors.New("endpoint down")

// fastCfg trips after 2 consecutive failures and probes every few ms —
// quick enough for tests, slow enough to be deterministic.
func fastCfg() Config {
	return Config{
		ConsecutiveFailures: 2,
		OpenFor:             5 * time.Millisecond,
		ProbeInterval:       2 * time.Millisecond,
		ProbeBudget:         50 * time.Millisecond,
	}
}

func TestBreakerTripsOnConsecutiveFailures(t *testing.T) {
	b := NewBreaker("x", fastCfg())
	if b.State() != Closed || !b.Allow() {
		t.Fatalf("new breaker not closed/allowing")
	}
	b.ReportFailure(errDown)
	if b.State() != Closed {
		t.Fatalf("tripped after one failure; want %d consecutive", 2)
	}
	b.ReportFailure(errDown)
	if b.State() != Open {
		t.Fatalf("state after threshold failures = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatalf("open breaker admitted traffic inside the cool-down")
	}
	if got := b.Stats().Opens; got != 1 {
		t.Fatalf("Opens = %d, want 1", got)
	}
}

func TestBreakerTripsOnFailureRate(t *testing.T) {
	cfg := fastCfg()
	cfg.ConsecutiveFailures = 1000 // force the EWMA path
	cfg.FailureRate = 0.5
	cfg.MinSamples = 4
	b := NewBreaker("x", cfg)
	// Alternate success/failure: consecutive never exceeds 1, but the
	// EWMA hovers around 0.5 and must trip once MinSamples is reached.
	for i := 0; i < 20 && b.State() == Closed; i++ {
		if i%2 == 0 {
			b.ReportFailure(errDown)
		} else {
			b.ReportSuccess(time.Millisecond)
		}
	}
	if b.State() != Open {
		t.Fatalf("flapping endpoint never tripped the EWMA threshold (rate %.2f)", b.FailureRate())
	}
}

func TestBreakerHalfOpenTrialAndReclose(t *testing.T) {
	b := NewBreaker("x", fastCfg())
	b.ReportFailure(errDown)
	b.ReportFailure(errDown)
	if b.Allow() {
		t.Fatalf("admitted during cool-down")
	}
	time.Sleep(7 * time.Millisecond)
	if !b.Allow() {
		t.Fatalf("cool-down elapsed but no half-open trial admitted")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state after trial admission = %v, want half-open", b.State())
	}
	// Failed trial re-opens...
	b.ReportFailure(errDown)
	if b.State() != Open {
		t.Fatalf("failed trial left state %v, want open", b.State())
	}
	// ...and a successful trial after the next cool-down re-closes.
	time.Sleep(7 * time.Millisecond)
	if !b.Allow() {
		t.Fatalf("second trial not admitted")
	}
	b.ReportSuccess(time.Millisecond)
	if b.State() != Closed {
		t.Fatalf("successful trial left state %v, want closed", b.State())
	}
	st := b.Stats()
	if st.Opens != 2 || st.Closes != 1 || st.HalfOpens != 2 {
		t.Fatalf("transition counters = %+v, want 2 opens, 1 close, 2 half-opens", st)
	}
}

func TestRegistryProberReclosesBreaker(t *testing.T) {
	var down atomic.Bool
	down.Store(true)
	var probes atomic.Int64
	reg := NewRegistry(fastCfg())
	defer reg.Close()
	b := reg.Breaker("x", func(ctx context.Context) error {
		probes.Add(1)
		if down.Load() {
			return errDown
		}
		return nil
	})
	b.ReportFailure(errDown)
	b.ReportFailure(errDown)
	if b.State() != Open {
		t.Fatalf("breaker not open")
	}
	// While the endpoint stays down, probes fail and the breaker stays
	// open with the cool-down pushed out (no live trial admitted).
	deadline := time.Now().Add(time.Second)
	for probes.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if probes.Load() < 3 {
		t.Fatalf("prober issued %d probes, want ≥ 3", probes.Load())
	}
	if b.State() != Open {
		t.Fatalf("state with endpoint down = %v, want open", b.State())
	}
	// Revive: the next probe succeeds and the breaker re-closes with no
	// live traffic involved.
	down.Store(false)
	for b.State() != Closed && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if b.State() != Closed {
		t.Fatalf("breaker never re-closed after revive (state %v)", b.State())
	}
	if b.Stats().Probes == 0 {
		t.Fatalf("Probes counter is zero after recovery probing")
	}
}

// TestRegistryCloseStopsProberMidProbe is the half-open prober leak
// check: open a breaker whose probe blocks, close the registry while a
// probe is in flight, and verify both that Close returns (the probe's
// context is cancelled) and that no prober goroutine survives.
func TestRegistryCloseStopsProberMidProbe(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := fastCfg()
	cfg.ProbeBudget = time.Minute // only cancellation can end a probe
	reg := NewRegistry(cfg)
	entered := make(chan struct{}, 8)
	b := reg.Breaker("x", func(ctx context.Context) error {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-ctx.Done() // hang until the registry shuts the prober down
		return ctx.Err()
	})
	b.ReportFailure(errDown)
	b.ReportFailure(errDown)
	select {
	case <-entered:
	case <-time.After(time.Second):
		t.Fatalf("prober never started its probe")
	}
	done := make(chan struct{})
	go func() { reg.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatalf("registry Close hung on an in-flight probe")
	}
	// A breaker tripping after Close must not spawn a prober either.
	b.ReportSuccess(0)
	b.ReportFailure(errDown)
	b.ReportFailure(errDown)
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutines leaked: %d before, %d after registry close\n%s",
			before, now, buf[:runtime.Stack(buf, true)])
	}
}

func TestRegistryAggregation(t *testing.T) {
	reg := NewRegistry(fastCfg())
	defer reg.Close()
	a := reg.Breaker("a", nil)
	bb := reg.Breaker("b", nil)
	if got := reg.Breaker("a", nil); got != a {
		t.Fatalf("Breaker(a) returned a new instance on second call")
	}
	a.ReportFailure(errDown)
	a.ReportFailure(errDown)
	a.Skip()
	a.Skip()
	bb.ReportSuccess(time.Millisecond)
	if got := a.Stats().Opens; got != 1 {
		t.Fatalf("a.Opens = %d, want 1", got)
	}
	sum := reg.Stats()
	if sum.Opens != 1 || sum.Skips != 2 {
		t.Fatalf("registry sum = %+v, want 1 open / 2 skips", sum)
	}
	if reg.AllClosed() {
		t.Fatalf("AllClosed true with one breaker open")
	}
	names := make([]string, 0, 2)
	for _, b := range reg.Breakers() {
		names = append(names, b.Name())
	}
	if fmt.Sprint(names) != "[a b]" {
		t.Fatalf("Breakers order = %v, want [a b]", names)
	}
}

func TestReportDedupAndOrder(t *testing.T) {
	rep := NewReport()
	if !rep.Empty() {
		t.Fatalf("new report not empty")
	}
	bounds := geom.R(0, 0, 10, 10)
	rep.Record("S", "S2/2", geom.Rect{}, 0, "killed")
	rep.Record("S", "S2/2", bounds, 42, "killed again")
	rep.Record("R", "R1/2", bounds, 7, "severed")
	gaps := rep.Gaps()
	if len(gaps) != 2 {
		t.Fatalf("got %d gaps, want 2 (deduplicated)", len(gaps))
	}
	g := gaps[0]
	if g.Shard != "S2/2" || g.Queries != 2 || g.Count != 42 || g.Bounds != bounds || g.Reason != "killed" {
		t.Fatalf("dedup gap = %+v: want 2 queries, late-filled count/bounds, first reason", g)
	}
	if gaps[1].Shard != "R1/2" {
		t.Fatalf("gap order not first-seen: %+v", gaps)
	}

	c := &Completeness{ShardsTotal: 4, ShardsAnswered: 2, Gaps: gaps}
	if c.Complete() {
		t.Fatalf("report with gaps claims complete")
	}
	s := c.String()
	for _, want := range []string{"2/4 shards", "S/S2/2", "R/R1/2", "killed"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Completeness string %q missing %q", s, want)
		}
	}
	var nilC *Completeness
	if !nilC.Complete() || nilC.String() != "complete" {
		t.Fatalf("nil Completeness must read as complete")
	}
}

func TestReportContextPlumbing(t *testing.T) {
	if ReportFrom(context.Background()) != nil {
		t.Fatalf("ReportFrom on a bare context should be nil")
	}
	rep := NewReport()
	ctx := WithReport(context.Background(), rep)
	if ReportFrom(ctx) != rep {
		t.Fatalf("ReportFrom lost the collector")
	}
}
