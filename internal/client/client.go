// Package client models the mobile device of the paper: a resource-
// constrained host with a bounded object buffer, holding metered
// connections to the two non-cooperative dataset servers and issuing the
// primitive queries of §3 through them.
package client

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/bufpool"
	"repro/internal/geom"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// Device is the PDA: it owns the buffer constraint shared by all
// operations of one join execution. Algorithms consult CanHold before
// downloading and repartition (or stream probes) when a window does not
// fit.
type Device struct {
	// BufferObjects is the maximum number of objects the device can hold
	// at once; 0 means unlimited.
	BufferObjects int
}

// CanHold reports whether n objects fit in the buffer.
func (d Device) CanHold(n int) bool {
	return d.BufferObjects <= 0 || n <= d.BufferObjects
}

// RetryPolicy governs how a Remote re-issues queries after transient
// transport failures. Every protocol message is a pure, idempotent query
// (nothing on the server changes state), so re-issuing a request whose
// frame — or whose response — was lost is always semantically safe. Each
// attempt crosses the Metered wrapper, so retransmissions are charged to
// the meter exactly like first transmissions (Eq. 1).
//
// The zero value disables retries, reproducing the fail-fast behaviour of
// the original stack.
type RetryPolicy struct {
	// MaxAttempts is the total number of times one query may be issued;
	// values below 1 mean 1 (no retries).
	MaxAttempts int
	// Backoff is the wait before the first retry, doubling with every
	// further retry. Zero retries immediately.
	Backoff time.Duration
	// PerTryTimeout bounds each individual attempt; an attempt that
	// exceeds it is abandoned and retried (the run context's deadline
	// still bounds the query as a whole). Zero applies no per-attempt
	// deadline.
	PerTryTimeout time.Duration
	// Budget, when positive, bounds one logical query end-to-end: every
	// attempt, backoff sleep, and per-try timeout draws from the same
	// deadline instead of stacking PerTryTimeout × MaxAttempts. The worst
	// case of a query is then Budget, whatever the retry schedule — the
	// guarantee flat per-try timeouts cannot give. Zero applies no
	// budget.
	Budget time.Duration
}

// DefaultRetry is a sane policy for real, lossy links: four attempts with
// a short doubling backoff.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, Backoff: 2 * time.Millisecond}
}

// Option configures a Remote at construction.
type Option func(*Remote)

// WithRetry sets the remote's retry policy.
func WithRetry(p RetryPolicy) Option {
	return func(r *Remote) { r.retry = p }
}

// WithLedger arms fleet-wide tenant accounting on the remote: the meter
// attributes every frame to the tenant its context names and feeds the
// shared ledger, and the round-trip entry point rejects probes of
// tenants whose Eq. (1) spend has crossed their byte quota with a typed
// *netsim.QuotaError. One ledger is shared by every remote of a serving
// fleet, so quotas bound a tenant's spend across all links at once.
func WithLedger(l *netsim.Ledger) Option {
	return func(r *Remote) { r.ledger = l }
}

// WithScheduler arms multi-tenant probe scheduling on the remote's
// batcher: submissions queue in per-tenant lanes and the scheduler
// decides which lane's probes enter each envelope (strict priority
// tiers, deficit-round-robin within a tier, starvation bound). Requires
// batching (WithBatch, MaxBatch > 1) to have an injection point; without
// a batcher the option only arms the scheduler's quota admission. One
// scheduler is shared by every remote of a fleet so policies are
// consistent across links.
func WithScheduler(s *Scheduler) Option {
	return func(r *Remote) { r.sched = s }
}

// Remote is the client-side proxy to one dataset server over a metered
// transport. All methods are strictly request/response and carry a
// context: cancellation or an expired deadline abandons the round trip
// promptly, even against a hung server. A Remote is safe for concurrent
// use: metering is atomic and both transports accept concurrent in-flight
// round trips, so the concurrent executor may issue several queries to
// the same server at once.
//
// Remote owns the frame buffers of its round trips: requests are encoded
// into pooled buffers and recycled once the response arrives, and
// response frames are recycled as soon as they are decoded (decoded
// values never alias the frame). This assumes the server builds response
// frames rather than echoing request bytes — true of the dataset server,
// whose replies are always freshly encoded.
type Remote struct {
	name     string
	conn     netsim.RoundTripper
	m        *netsim.Meter
	retry    RetryPolicy
	retries  atomic.Int64
	lat      *LatencyTracker
	stats    *netsim.LinkStats
	batchCfg BatchConfig
	b        *batcher       // nil when batching is disabled
	ledger   *netsim.Ledger // nil unless WithLedger armed quotas
	sched    *Scheduler     // nil unless WithScheduler armed lanes
}

// NewRemote wraps a transport to server name, metering all traffic with
// link and tariff pricePerByte. An invalid link configuration is reported
// here — the configuration boundary — instead of crashing the process.
func NewRemote(name string, rt netsim.RoundTripper, link netsim.LinkConfig, pricePerByte float64, opts ...Option) (*Remote, error) {
	m, err := netsim.NewMeter(link, pricePerByte)
	if err != nil {
		return nil, fmt.Errorf("client: remote %s: %w", name, err)
	}
	conn := netsim.NewMetered(rt, m)
	r := &Remote{name: name, conn: conn, m: m,
		lat: NewLatencyTracker(0), stats: &netsim.LinkStats{}}
	conn.SetStats(r.stats)
	for _, o := range opts {
		o(r)
	}
	if r.ledger != nil {
		m.SetLedger(r.ledger)
	} else if r.sched != nil {
		// Lanes without quotas still want per-tenant attribution so
		// fairness is observable in the tenant columns.
		m.EnableTenants()
	}
	r.b = newBatcher(r, r.batchCfg)
	return r, nil
}

// Name returns the remote's diagnostic name.
func (r *Remote) Name() string { return r.name }

// Meter returns the meter accumulating this link's traffic.
func (r *Remote) Meter() *netsim.Meter { return r.m }

// PricePerByte returns the link's per-byte tariff, used for money-cost
// accounting.
func (r *Remote) PricePerByte() float64 { return r.m.PricePerByte() }

// Usage returns the accumulated traffic snapshot.
func (r *Remote) Usage() netsim.Usage { return r.m.Usage() }

// TenantUsage returns the tenant's attributed slice of this link's
// traffic (zero unless tenant mode is armed — see WithLedger and
// WithScheduler). Per-tenant slices sum column by column to Usage().
func (r *Remote) TenantUsage(id netsim.TenantID) netsim.Usage { return r.m.TenantUsage(id) }

// TenantIDs returns every tenant with attributed traffic on this link,
// sorted.
func (r *Remote) TenantIDs() []netsim.TenantID { return r.m.TenantIDs() }

// Retries returns how many re-issued attempts this remote has made (0 on
// a failure-free run).
func (r *Remote) Retries() int64 { return r.retries.Load() }

// Latency returns the tracker of this remote's recent successful
// round-trip attempt durations (one sample per attempt, windowed). The
// replica layer reads a high quantile off it as the hedge threshold;
// diagnostics may report p50/p99 from the same window.
func (r *Remote) Latency() *LatencyTracker { return r.lat }

// LinkStats returns the live link observation of this remote: the link
// parameters its meter charges against plus the measured RTT EWMA fed by
// every successful round trip. The online planner (package plan) reads
// it to hydrate the cost model from reality instead of static defaults.
func (r *Remote) LinkStats() netsim.LinkSnapshot {
	return netsim.LinkSnapshot{
		Config:  r.m.Link(),
		RTT:     r.stats.RTT(),
		Samples: r.stats.Samples(),
	}
}

// Close releases the underlying transport.
func (r *Remote) Close() error { return r.conn.Close() }

// retryable reports whether a failed attempt may be re-issued: transient
// transport faults (drops, severed connections, socket errors, per-try
// timeouts) are; a transport we closed ourselves is not, and a canceled
// or expired parent context stops the loop before this check.
func retryable(err error) bool {
	return !errors.Is(err, netsim.ErrClosed)
}

// roundTrip sends a pooled request frame and returns the response frame,
// re-issuing the request per the retry policy on transient transport
// failures. Ownership of the request buffer ends here: it is recycled on
// success and on every failure whose attempts all ran to completion. An
// abandoned attempt — one whose error carries the netsim.ErrFrameRetained
// mark (per-try timeout, cancellation, a transport shutdown mid-service)
// — may leave the frame referenced by an in-flight server worker that is
// still decoding it; once any attempt was abandoned the buffer is left
// to the garbage collector, even if a later retry succeeds or fails
// cleanly — recycling it would hand a buffer that is still being read to
// the next encoder. Retries themselves are safe: both the retry and the
// abandoned worker only read the frame. The caller owns the returned
// response frame and must release it with putFrame after decoding.
//
// The dataset server always encodes responses into fresh buffers, but a
// custom in-process Handler could echo the request frame back; the
// aliasing guard makes sure the shared backing is then released exactly
// once (as the response), never double-Put.
func (r *Remote) roundTrip(ctx context.Context, req []byte) ([]byte, error) {
	if r.ledger != nil {
		// Quota admission: a tenant over its fleet-wide byte budget is
		// rejected before any bytes are committed to the link. The frame
		// was never sent, so it goes straight back to the pool.
		if id := netsim.TenantOf(ctx); id != "" {
			if qerr := r.ledger.Check(id); qerr != nil {
				bufpool.Put(req)
				return nil, fmt.Errorf("%s: %w", r.name, qerr)
			}
		}
	}
	if r.retry.Budget > 0 {
		// One deadline for the whole attempt loop: retries and backoffs
		// spend from it rather than stacking their own timeouts.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.retry.Budget)
		defer cancel()
	}
	attempts := r.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var last error
	retained := false // some attempt may still reference req server-side
	for try := 0; try < attempts; try++ {
		if try > 0 {
			r.retries.Add(1)
			shift := try - 1
			if shift > 10 {
				shift = 10 // cap the doubling; avoids overflow on long loops
			}
			if backoff := r.retry.Backoff << shift; backoff > 0 {
				t := time.NewTimer(backoff)
				interrupted := false
				select {
				case <-t.C:
				case <-ctx.Done():
					t.Stop()
					last = ctx.Err()
					interrupted = true
				}
				if interrupted {
					break
				}
			}
		}
		tryCtx, cancel := ctx, context.CancelFunc(func() {})
		if r.retry.PerTryTimeout > 0 {
			tryCtx, cancel = context.WithTimeout(ctx, r.retry.PerTryTimeout)
		}
		t0 := time.Now()
		resp, err := r.conn.RoundTrip(tryCtx, req)
		cancel()
		if err == nil {
			// One latency sample per successful attempt: the signal the
			// hedge threshold (a high quantile of this window) is fed by.
			// Failed attempts are excluded — they surface as retries or
			// failover, not as tail latency.
			r.lat.Add(time.Since(t0))
			if !retained && !bufpool.SameBacking(req, resp) {
				bufpool.Put(req)
			}
			if wire.Type(resp) == wire.MsgError {
				serr := fmt.Errorf("%s: %w", r.name, wire.DecodeError(resp))
				bufpool.Put(resp)
				return nil, serr
			}
			return resp, nil
		}
		last = err
		if errors.Is(err, netsim.ErrFrameRetained) {
			retained = true
		}
		if ctx.Err() != nil || !retryable(err) {
			break
		}
	}
	if !retained {
		// Every attempt ran to completion (the transport no longer holds
		// the frame), so the request buffer can be recycled even though
		// the query failed.
		bufpool.Put(req)
	}
	return nil, fmt.Errorf("%s: %w", r.name, last)
}

// putFrame releases a decoded response frame back to the pool.
func putFrame(resp []byte) { bufpool.Put(resp) }

// Window returns all objects intersecting w.
func (r *Remote) Window(ctx context.Context, w geom.Rect) ([]geom.Object, error) {
	resp, err := r.roundTrip(ctx, wire.AppendWindow(bufpool.Get(), w))
	if err != nil {
		return nil, err
	}
	objs, err := wire.DecodeObjects(resp)
	putFrame(resp)
	return objs, err
}

// Count returns the number of objects intersecting w.
func (r *Remote) Count(ctx context.Context, w geom.Rect) (int, error) {
	resp, err := r.roundTrip(ctx, wire.AppendCount(bufpool.Get(), w))
	if err != nil {
		return 0, err
	}
	n, err := wire.DecodeCountReply(resp)
	putFrame(resp)
	return int(n), err
}

// AvgArea returns the mean MBR area of objects intersecting w.
func (r *Remote) AvgArea(ctx context.Context, w geom.Rect) (float64, error) {
	resp, err := r.roundTrip(ctx, wire.AppendAvgArea(bufpool.Get(), w))
	if err != nil {
		return 0, err
	}
	f, err := wire.DecodeFloatReply(resp)
	putFrame(resp)
	return f, err
}

// Range returns the objects within distance eps of p.
func (r *Remote) Range(ctx context.Context, p geom.Point, eps float64) ([]geom.Object, error) {
	resp, err := r.roundTrip(ctx, wire.AppendRange(bufpool.Get(), p, eps))
	if err != nil {
		return nil, err
	}
	objs, err := wire.DecodeObjects(resp)
	putFrame(resp)
	return objs, err
}

// RangeCount returns the number of objects within distance eps of p.
func (r *Remote) RangeCount(ctx context.Context, p geom.Point, eps float64) (int, error) {
	resp, err := r.roundTrip(ctx, wire.AppendRangeCount(bufpool.Get(), p, eps))
	if err != nil {
		return 0, err
	}
	n, err := wire.DecodeCountReply(resp)
	putFrame(resp)
	return int(n), err
}

// BucketRange submits many ε-range probes at once and returns one result
// group per probe, in probe order.
func (r *Remote) BucketRange(ctx context.Context, pts []geom.Point, eps float64) ([][]geom.Object, error) {
	resp, err := r.roundTrip(ctx, wire.AppendBucketRange(bufpool.Get(), pts, eps))
	if err != nil {
		return nil, err
	}
	groups, err := wire.DecodeBucketObjects(resp)
	putFrame(resp)
	return groups, err
}

// BucketRangeCount submits many aggregate ε-range probes at once.
func (r *Remote) BucketRangeCount(ctx context.Context, pts []geom.Point, eps float64) ([]int64, error) {
	resp, err := r.roundTrip(ctx, wire.AppendBucketRangeCount(bufpool.Get(), pts, eps))
	if err != nil {
		return nil, err
	}
	ns, err := wire.DecodeCountsReply(resp)
	putFrame(resp)
	return ns, err
}

// Info returns the server's advertised metadata.
func (r *Remote) Info(ctx context.Context) (wire.Info, error) {
	resp, err := r.roundTrip(ctx, wire.AppendInfo(bufpool.Get()))
	if err != nil {
		return wire.Info{}, err
	}
	info, err := wire.DecodeInfoReply(resp)
	putFrame(resp)
	return info, err
}

// LevelMBRs returns the MBRs of one R-tree level (SemiJoin only; the
// server refuses unless it publishes its index).
func (r *Remote) LevelMBRs(ctx context.Context, level int) ([]geom.Rect, error) {
	resp, err := r.roundTrip(ctx, wire.AppendMBRLevel(bufpool.Get(), level))
	if err != nil {
		return nil, err
	}
	rects, err := wire.DecodeRects(resp)
	putFrame(resp)
	return rects, err
}

// MBRMatch returns the distinct objects intersecting (within eps of) any
// of the rects (SemiJoin only).
func (r *Remote) MBRMatch(ctx context.Context, rects []geom.Rect, eps float64) ([]geom.Object, error) {
	resp, err := r.roundTrip(ctx, wire.AppendMBRMatch(bufpool.Get(), rects, eps))
	if err != nil {
		return nil, err
	}
	objs, err := wire.DecodeObjects(resp)
	putFrame(resp)
	return objs, err
}

// UploadJoin ships objects to the server, which joins them against its
// dataset and returns pairs with the uploaded ID first (SemiJoin only).
func (r *Remote) UploadJoin(ctx context.Context, objs []geom.Object, eps float64) ([]geom.Pair, error) {
	resp, err := r.roundTrip(ctx, wire.AppendUploadJoin(bufpool.Get(), objs, eps))
	if err != nil {
		return nil, err
	}
	pairs, err := wire.DecodePairs(resp)
	putFrame(resp)
	return pairs, err
}
