// Package client models the mobile device of the paper: a resource-
// constrained host with a bounded object buffer, holding metered
// connections to the two non-cooperative dataset servers and issuing the
// primitive queries of §3 through them.
package client

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// Device is the PDA: it owns the buffer constraint shared by all
// operations of one join execution. Algorithms consult CanHold before
// downloading and repartition (or stream probes) when a window does not
// fit.
type Device struct {
	// BufferObjects is the maximum number of objects the device can hold
	// at once; 0 means unlimited.
	BufferObjects int
}

// CanHold reports whether n objects fit in the buffer.
func (d Device) CanHold(n int) bool {
	return d.BufferObjects <= 0 || n <= d.BufferObjects
}

// Remote is the client-side proxy to one dataset server over a metered
// transport. All methods are strictly request/response. A Remote is safe
// for concurrent use: metering is atomic and both transports accept
// concurrent in-flight round trips, so the concurrent executor may issue
// several queries to the same server at once.
type Remote struct {
	name string
	conn netsim.RoundTripper
	m    *netsim.Meter
}

// NewRemote wraps a transport to server name, metering all traffic with
// link and tariff pricePerByte.
func NewRemote(name string, rt netsim.RoundTripper, link netsim.LinkConfig, pricePerByte float64) *Remote {
	m := netsim.NewMeter(link, pricePerByte)
	return &Remote{name: name, conn: netsim.NewMetered(rt, m), m: m}
}

// Name returns the remote's diagnostic name.
func (r *Remote) Name() string { return r.name }

// Meter returns the meter accumulating this link's traffic.
func (r *Remote) Meter() *netsim.Meter { return r.m }

// Usage returns the accumulated traffic snapshot.
func (r *Remote) Usage() netsim.Usage { return r.m.Usage() }

// Close releases the underlying transport.
func (r *Remote) Close() error { return r.conn.Close() }

func (r *Remote) roundTrip(req []byte) ([]byte, error) {
	resp, err := r.conn.RoundTrip(req)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", r.name, err)
	}
	if wire.Type(resp) == wire.MsgError {
		return nil, fmt.Errorf("%s: %w", r.name, wire.DecodeError(resp))
	}
	return resp, nil
}

// Window returns all objects intersecting w.
func (r *Remote) Window(w geom.Rect) ([]geom.Object, error) {
	resp, err := r.roundTrip(wire.EncodeWindow(w))
	if err != nil {
		return nil, err
	}
	return wire.DecodeObjects(resp)
}

// Count returns the number of objects intersecting w.
func (r *Remote) Count(w geom.Rect) (int, error) {
	resp, err := r.roundTrip(wire.EncodeCount(w))
	if err != nil {
		return 0, err
	}
	n, err := wire.DecodeCountReply(resp)
	return int(n), err
}

// AvgArea returns the mean MBR area of objects intersecting w.
func (r *Remote) AvgArea(w geom.Rect) (float64, error) {
	resp, err := r.roundTrip(wire.EncodeAvgArea(w))
	if err != nil {
		return 0, err
	}
	return wire.DecodeFloatReply(resp)
}

// Range returns the objects within distance eps of p.
func (r *Remote) Range(p geom.Point, eps float64) ([]geom.Object, error) {
	resp, err := r.roundTrip(wire.EncodeRange(p, eps))
	if err != nil {
		return nil, err
	}
	return wire.DecodeObjects(resp)
}

// RangeCount returns the number of objects within distance eps of p.
func (r *Remote) RangeCount(p geom.Point, eps float64) (int, error) {
	resp, err := r.roundTrip(wire.EncodeRangeCount(p, eps))
	if err != nil {
		return 0, err
	}
	n, err := wire.DecodeCountReply(resp)
	return int(n), err
}

// BucketRange submits many ε-range probes at once and returns one result
// group per probe, in probe order.
func (r *Remote) BucketRange(pts []geom.Point, eps float64) ([][]geom.Object, error) {
	resp, err := r.roundTrip(wire.EncodeBucketRange(pts, eps))
	if err != nil {
		return nil, err
	}
	return wire.DecodeBucketObjects(resp)
}

// BucketRangeCount submits many aggregate ε-range probes at once.
func (r *Remote) BucketRangeCount(pts []geom.Point, eps float64) ([]int64, error) {
	resp, err := r.roundTrip(wire.EncodeBucketRangeCount(pts, eps))
	if err != nil {
		return nil, err
	}
	return wire.DecodeCountsReply(resp)
}

// Info returns the server's advertised metadata.
func (r *Remote) Info() (wire.Info, error) {
	resp, err := r.roundTrip(wire.EncodeInfo())
	if err != nil {
		return wire.Info{}, err
	}
	return wire.DecodeInfoReply(resp)
}

// LevelMBRs returns the MBRs of one R-tree level (SemiJoin only; the
// server refuses unless it publishes its index).
func (r *Remote) LevelMBRs(level int) ([]geom.Rect, error) {
	resp, err := r.roundTrip(wire.EncodeMBRLevel(level))
	if err != nil {
		return nil, err
	}
	return wire.DecodeRects(resp)
}

// MBRMatch returns the distinct objects intersecting (within eps of) any
// of the rects (SemiJoin only).
func (r *Remote) MBRMatch(rects []geom.Rect, eps float64) ([]geom.Object, error) {
	resp, err := r.roundTrip(wire.EncodeMBRMatch(rects, eps))
	if err != nil {
		return nil, err
	}
	return wire.DecodeObjects(resp)
}

// UploadJoin ships objects to the server, which joins them against its
// dataset and returns pairs with the uploaded ID first (SemiJoin only).
func (r *Remote) UploadJoin(objs []geom.Object, eps float64) ([]geom.Pair, error) {
	resp, err := r.roundTrip(wire.EncodeUploadJoin(objs, eps))
	if err != nil {
		return nil, err
	}
	return wire.DecodePairs(resp)
}
