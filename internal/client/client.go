// Package client models the mobile device of the paper: a resource-
// constrained host with a bounded object buffer, holding metered
// connections to the two non-cooperative dataset servers and issuing the
// primitive queries of §3 through them.
package client

import (
	"fmt"

	"repro/internal/bufpool"
	"repro/internal/geom"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// Device is the PDA: it owns the buffer constraint shared by all
// operations of one join execution. Algorithms consult CanHold before
// downloading and repartition (or stream probes) when a window does not
// fit.
type Device struct {
	// BufferObjects is the maximum number of objects the device can hold
	// at once; 0 means unlimited.
	BufferObjects int
}

// CanHold reports whether n objects fit in the buffer.
func (d Device) CanHold(n int) bool {
	return d.BufferObjects <= 0 || n <= d.BufferObjects
}

// Remote is the client-side proxy to one dataset server over a metered
// transport. All methods are strictly request/response. A Remote is safe
// for concurrent use: metering is atomic and both transports accept
// concurrent in-flight round trips, so the concurrent executor may issue
// several queries to the same server at once.
//
// Remote owns the frame buffers of its round trips: requests are encoded
// into pooled buffers and recycled once the response arrives, and
// response frames are recycled as soon as they are decoded (decoded
// values never alias the frame). This assumes the server builds response
// frames rather than echoing request bytes — true of the dataset server,
// whose replies are always freshly encoded.
type Remote struct {
	name string
	conn netsim.RoundTripper
	m    *netsim.Meter
}

// NewRemote wraps a transport to server name, metering all traffic with
// link and tariff pricePerByte.
func NewRemote(name string, rt netsim.RoundTripper, link netsim.LinkConfig, pricePerByte float64) *Remote {
	m := netsim.NewMeter(link, pricePerByte)
	return &Remote{name: name, conn: netsim.NewMetered(rt, m), m: m}
}

// Name returns the remote's diagnostic name.
func (r *Remote) Name() string { return r.name }

// Meter returns the meter accumulating this link's traffic.
func (r *Remote) Meter() *netsim.Meter { return r.m }

// Usage returns the accumulated traffic snapshot.
func (r *Remote) Usage() netsim.Usage { return r.m.Usage() }

// Close releases the underlying transport.
func (r *Remote) Close() error { return r.conn.Close() }

// roundTrip sends a pooled request frame and returns the response frame.
// The request buffer is recycled on success (the transport no longer
// references it once the response is in hand); on error it may still be
// in flight, so it is left to the garbage collector. The caller owns the
// returned response frame and must release it with putFrame after
// decoding.
//
// The dataset server always encodes responses into fresh buffers, but a
// custom in-process Handler could echo the request frame back; the
// aliasing guard makes sure the shared backing is then released exactly
// once (as the response), never double-Put.
func (r *Remote) roundTrip(req []byte) ([]byte, error) {
	resp, err := r.conn.RoundTrip(req)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", r.name, err)
	}
	if !bufpool.SameBacking(req, resp) {
		bufpool.Put(req)
	}
	if wire.Type(resp) == wire.MsgError {
		err := fmt.Errorf("%s: %w", r.name, wire.DecodeError(resp))
		bufpool.Put(resp)
		return nil, err
	}
	return resp, nil
}

// putFrame releases a decoded response frame back to the pool.
func putFrame(resp []byte) { bufpool.Put(resp) }

// Window returns all objects intersecting w.
func (r *Remote) Window(w geom.Rect) ([]geom.Object, error) {
	resp, err := r.roundTrip(wire.AppendWindow(bufpool.Get(), w))
	if err != nil {
		return nil, err
	}
	objs, err := wire.DecodeObjects(resp)
	putFrame(resp)
	return objs, err
}

// Count returns the number of objects intersecting w.
func (r *Remote) Count(w geom.Rect) (int, error) {
	resp, err := r.roundTrip(wire.AppendCount(bufpool.Get(), w))
	if err != nil {
		return 0, err
	}
	n, err := wire.DecodeCountReply(resp)
	putFrame(resp)
	return int(n), err
}

// AvgArea returns the mean MBR area of objects intersecting w.
func (r *Remote) AvgArea(w geom.Rect) (float64, error) {
	resp, err := r.roundTrip(wire.AppendAvgArea(bufpool.Get(), w))
	if err != nil {
		return 0, err
	}
	f, err := wire.DecodeFloatReply(resp)
	putFrame(resp)
	return f, err
}

// Range returns the objects within distance eps of p.
func (r *Remote) Range(p geom.Point, eps float64) ([]geom.Object, error) {
	resp, err := r.roundTrip(wire.AppendRange(bufpool.Get(), p, eps))
	if err != nil {
		return nil, err
	}
	objs, err := wire.DecodeObjects(resp)
	putFrame(resp)
	return objs, err
}

// RangeCount returns the number of objects within distance eps of p.
func (r *Remote) RangeCount(p geom.Point, eps float64) (int, error) {
	resp, err := r.roundTrip(wire.AppendRangeCount(bufpool.Get(), p, eps))
	if err != nil {
		return 0, err
	}
	n, err := wire.DecodeCountReply(resp)
	putFrame(resp)
	return int(n), err
}

// BucketRange submits many ε-range probes at once and returns one result
// group per probe, in probe order.
func (r *Remote) BucketRange(pts []geom.Point, eps float64) ([][]geom.Object, error) {
	resp, err := r.roundTrip(wire.AppendBucketRange(bufpool.Get(), pts, eps))
	if err != nil {
		return nil, err
	}
	groups, err := wire.DecodeBucketObjects(resp)
	putFrame(resp)
	return groups, err
}

// BucketRangeCount submits many aggregate ε-range probes at once.
func (r *Remote) BucketRangeCount(pts []geom.Point, eps float64) ([]int64, error) {
	resp, err := r.roundTrip(wire.AppendBucketRangeCount(bufpool.Get(), pts, eps))
	if err != nil {
		return nil, err
	}
	ns, err := wire.DecodeCountsReply(resp)
	putFrame(resp)
	return ns, err
}

// Info returns the server's advertised metadata.
func (r *Remote) Info() (wire.Info, error) {
	resp, err := r.roundTrip(wire.AppendInfo(bufpool.Get()))
	if err != nil {
		return wire.Info{}, err
	}
	info, err := wire.DecodeInfoReply(resp)
	putFrame(resp)
	return info, err
}

// LevelMBRs returns the MBRs of one R-tree level (SemiJoin only; the
// server refuses unless it publishes its index).
func (r *Remote) LevelMBRs(level int) ([]geom.Rect, error) {
	resp, err := r.roundTrip(wire.AppendMBRLevel(bufpool.Get(), level))
	if err != nil {
		return nil, err
	}
	rects, err := wire.DecodeRects(resp)
	putFrame(resp)
	return rects, err
}

// MBRMatch returns the distinct objects intersecting (within eps of) any
// of the rects (SemiJoin only).
func (r *Remote) MBRMatch(rects []geom.Rect, eps float64) ([]geom.Object, error) {
	resp, err := r.roundTrip(wire.AppendMBRMatch(bufpool.Get(), rects, eps))
	if err != nil {
		return nil, err
	}
	objs, err := wire.DecodeObjects(resp)
	putFrame(resp)
	return objs, err
}

// UploadJoin ships objects to the server, which joins them against its
// dataset and returns pairs with the uploaded ID first (SemiJoin only).
func (r *Remote) UploadJoin(objs []geom.Object, eps float64) ([]geom.Pair, error) {
	resp, err := r.roundTrip(wire.AppendUploadJoin(bufpool.Get(), objs, eps))
	if err != nil {
		return nil, err
	}
	pairs, err := wire.DecodePairs(resp)
	putFrame(resp)
	return pairs, err
}
