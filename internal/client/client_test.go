package client

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// scriptedHandler returns canned responses regardless of the request.
type scriptedHandler struct {
	resp []byte
}

func (h scriptedHandler) Handle(req []byte) []byte { return h.resp }

func newScripted(t *testing.T, resp []byte) *Remote {
	t.Helper()
	tr := netsim.Serve(scriptedHandler{resp: resp})
	r, err := NewRemote("scripted", tr, netsim.DefaultLink(), 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func TestRemoteWrapsServerErrors(t *testing.T) {
	r := newScripted(t, wire.EncodeError("nope"))
	_, err := r.Count(context.Background(), geom.R(0, 0, 1, 1))
	if err == nil || !strings.Contains(err.Error(), "scripted") || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("err = %v, want wrapped server error", err)
	}
	var se *wire.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("expected *wire.ServerError in chain, got %T", err)
	}
}

func TestRemoteRejectsWrongReplyType(t *testing.T) {
	// Server answers a COUNT with an OBJECTS frame: decode must fail.
	r := newScripted(t, wire.EncodeObjects(nil))
	if _, err := r.Count(context.Background(), geom.R(0, 0, 1, 1)); err == nil {
		t.Fatal("type-mismatched reply should fail")
	}
}

func TestRemoteClosedTransport(t *testing.T) {
	tr := netsim.Serve(scriptedHandler{resp: wire.EncodeCountReply(1)})
	r, err := NewRemote("gone", tr, netsim.DefaultLink(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Count(context.Background(), geom.R(0, 0, 1, 1)); err == nil || !errors.Is(err, netsim.ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed in chain", err)
	}
}

func TestRemoteMetersFailedCallsUplinkOnly(t *testing.T) {
	tr := netsim.Serve(scriptedHandler{resp: wire.EncodeError("x")})
	r, err := NewRemote("err", tr, netsim.DefaultLink(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	_, _ = r.Count(context.Background(), geom.R(0, 0, 1, 1))
	u := r.Usage()
	// Both the query and the error reply cross the link and are charged.
	if u.Queries != 1 || u.Messages != 2 {
		t.Fatalf("usage = %+v", u)
	}
}

func TestRemoteName(t *testing.T) {
	r := newScripted(t, wire.EncodeCountReply(0))
	if r.Name() != "scripted" {
		t.Fatalf("name = %q", r.Name())
	}
	if r.Meter() == nil {
		t.Fatal("meter must exist")
	}
}

func TestDeviceBounds(t *testing.T) {
	cases := []struct {
		buffer, n int
		want      bool
	}{
		{0, 1 << 30, true}, // unlimited
		{1, 1, true},
		{1, 2, false},
		{800, 800, true},
		{800, 801, false},
	}
	for _, c := range cases {
		d := Device{BufferObjects: c.buffer}
		if got := d.CanHold(c.n); got != c.want {
			t.Errorf("Device{%d}.CanHold(%d) = %v, want %v", c.buffer, c.n, got, c.want)
		}
	}
}
