//go:build race

package client

// raceEnabled gates allocation-count assertions: the race detector's
// instrumentation allocates, so AllocsPerRun tests are meaningless (and
// fail) under -race.
const raceEnabled = true
