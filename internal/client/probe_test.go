package client

import (
	"context"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/wire"
)

// TestRemoteProbeSurface walks every query method of the Remote against
// a real server and cross-checks the answers against each other: counts
// must agree with the object lists they summarize, buckets with their
// per-point ranges, and the self-join must report at least the identity
// pairs. This pins the encode→round-trip→decode path of the full probe
// surface in one place.
func TestRemoteProbeSurface(t *testing.T) {
	objs := dataset.GaussianClusters(300, 4, 500, dataset.World, 31)
	tr := netsim.Serve(server.New("D", objs, server.PublishIndex()))
	r, err := NewRemote("D", tr, netsim.DefaultLink(), 2.5)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ctx := context.Background()

	if got := r.PricePerByte(); got != 2.5 {
		t.Fatalf("PricePerByte = %v, want 2.5", got)
	}
	if r.Latency() == nil {
		t.Fatal("Latency tracker must exist")
	}

	info, err := r.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if int(info.Count) != len(objs) {
		t.Fatalf("INFO count %d, want %d", info.Count, len(objs))
	}

	w := geom.R(1000, 1000, 7000, 7000)
	win, err := r.Window(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	cnt, err := r.Count(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	if cnt != len(win) || cnt == 0 {
		t.Fatalf("COUNT %d disagrees with WINDOW size %d (want both positive)", cnt, len(win))
	}
	area, err := r.AvgArea(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	if area < 0 {
		t.Fatalf("AVGAREA %v, want >= 0", area)
	}

	p := geom.Pt(4000, 4000)
	const eps = 500
	rng, err := r.Range(ctx, p, eps)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := r.RangeCount(ctx, p, eps)
	if err != nil {
		t.Fatal(err)
	}
	if rc != len(rng) {
		t.Fatalf("RANGECOUNT %d disagrees with RANGE size %d", rc, len(rng))
	}

	pts := []geom.Point{p, geom.Pt(2000, 2000)}
	bks, err := r.BucketRange(ctx, pts, eps)
	if err != nil {
		t.Fatal(err)
	}
	if len(bks) != len(pts) || len(bks[0]) != len(rng) {
		t.Fatalf("BUCKETRANGE shape %d buckets / %d first, want %d / %d",
			len(bks), len(bks[0]), len(pts), len(rng))
	}
	bcs, err := r.BucketRangeCount(ctx, pts, eps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if int(bcs[i]) != len(bks[i]) {
			t.Fatalf("BUCKETRANGECOUNT[%d] = %d disagrees with bucket size %d", i, bcs[i], len(bks[i]))
		}
	}

	mbrs, err := r.LevelMBRs(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(mbrs) == 0 {
		t.Fatal("LEVELMBRS answered no rectangles from a published index")
	}
	match, err := r.MBRMatch(ctx, mbrs[:1], eps)
	if err != nil {
		t.Fatal(err)
	}
	if len(match) == 0 {
		t.Fatal("MBRMATCH against the root MBR matched nothing")
	}

	// Uploading a sample of the server's own objects must at least report
	// every identity pair (distance zero <= eps).
	probe := objs[:20:20]
	pairs, err := r.UploadJoin(ctx, probe, eps)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) < len(probe) {
		t.Fatalf("UPLOADJOIN of %d resident objects reported %d pairs, want >= identity", len(probe), len(pairs))
	}

	// Every successful round trip above must have fed the latency window.
	if r.Latency().Len() == 0 {
		t.Fatal("probe latencies were not recorded")
	}
}

func TestDefaultRetryIsSane(t *testing.T) {
	p := DefaultRetry()
	if p.MaxAttempts < 2 || p.Backoff <= 0 {
		t.Fatalf("DefaultRetry = %+v, want multiple attempts with positive backoff", p)
	}
}

// TestDetachedCall covers the detached completion path the replica
// failover uses: a Call not owned by any batcher, completed by hand, and
// drained through the public Frame accessor.
func TestDetachedCall(t *testing.T) {
	c := NewDetachedCall("probe")
	done := make(chan struct{})
	go func() {
		c.CompleteFrame(wire.EncodeCountReply(7), nil)
		close(done)
	}()
	<-done
	resp, err := c.Frame()
	if err != nil {
		t.Fatal(err)
	}
	if n, err := wire.DecodeCountReply(resp); err != nil || n != 7 {
		t.Fatalf("decoded (%d, %v), want (7, nil)", n, err)
	}
	// A call delivers its frame exactly once; a second drain must refuse.
	if _, err := c.Count(); err == nil {
		t.Fatal("consumed call answered a second time")
	}
}

// TestLatencyTracker pins the ring semantics and the quantile gate the
// hedge threshold is built on.
func TestLatencyTracker(t *testing.T) {
	lt := NewLatencyTracker(4)
	if _, ok := lt.Quantile(99, 1); ok {
		t.Fatal("empty tracker answered a quantile")
	}
	for i := 1; i <= 4; i++ {
		lt.Add(time.Duration(i) * time.Millisecond)
	}
	if lt.Len() != 4 {
		t.Fatalf("Len = %d, want 4", lt.Len())
	}
	if _, ok := lt.Quantile(99, 5); ok {
		t.Fatal("quantile answered below the MinSamples gate")
	}
	if d, ok := lt.Quantile(50, 4); !ok || d != 2*time.Millisecond {
		t.Fatalf("p50 = (%v, %v), want (2ms, true)", d, ok)
	}
	if d, ok := lt.Quantile(100, 4); !ok || d != 4*time.Millisecond {
		t.Fatalf("p100 = (%v, %v), want (4ms, true)", d, ok)
	}
	if d, ok := lt.Quantile(0, 1); !ok || d != 1*time.Millisecond {
		t.Fatalf("p0 = (%v, %v), want (1ms, true)", d, ok)
	}
	if d, ok := lt.Quantile(200, 1); !ok || d != 4*time.Millisecond {
		t.Fatalf("clamped pct = (%v, %v), want (4ms, true)", d, ok)
	}

	// The window is a ring: a fifth sample evicts the oldest, so the
	// minimum shifts from 1ms to 2ms.
	lt.Add(10 * time.Millisecond)
	if lt.Len() != 4 {
		t.Fatalf("Len after wrap = %d, want 4", lt.Len())
	}
	if d, _ := lt.Quantile(0, 1); d != 2*time.Millisecond {
		t.Fatalf("post-wrap minimum %v, want 2ms (oldest sample evicted)", d)
	}

	// The default window applies to non-positive sizes.
	if cap(NewLatencyTracker(0).samples) != defaultLatencyWindow {
		t.Fatal("zero window did not select the default")
	}
}
