package client

import (
	"slices"
	"sync"
	"time"
)

// LatencyTracker keeps a bounded window of recent round-trip attempt
// durations and answers quantile queries over it. The replica layer
// feeds it one sample per successful non-speculative attempt and reads
// a high percentile back as the hedge threshold: "this probe has taken
// longer than p of its recent peers — race a second replica".
//
// The window is a fixed-size ring, so the tracker adapts to load shifts
// (old samples age out) and its memory is constant. Add is O(1) under a
// mutex; Quantile copies and sorts the window, which is cheap at the
// default size and called at most once per probe.
type LatencyTracker struct {
	mu      sync.Mutex
	samples []time.Duration // ring storage, len == cap once full
	next    int             // ring write cursor
	full    bool
}

// defaultLatencyWindow bounds the ring when NewLatencyTracker is given a
// non-positive size.
const defaultLatencyWindow = 256

// NewLatencyTracker returns a tracker windowed to the given number of
// samples (<= 0 selects the default of 256).
func NewLatencyTracker(window int) *LatencyTracker {
	if window <= 0 {
		window = defaultLatencyWindow
	}
	return &LatencyTracker{samples: make([]time.Duration, 0, window)}
}

// Add records one attempt duration.
func (t *LatencyTracker) Add(d time.Duration) {
	t.mu.Lock()
	if t.full {
		t.samples[t.next] = d
		t.next = (t.next + 1) % cap(t.samples)
	} else {
		t.samples = append(t.samples, d)
		if len(t.samples) == cap(t.samples) {
			t.full = true
		}
	}
	t.mu.Unlock()
}

// Len returns the number of samples currently windowed.
func (t *LatencyTracker) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.samples)
}

// Quantile returns the pct-th percentile (0 < pct <= 100) of the
// windowed samples by nearest-rank, and false when fewer than min
// samples have been observed — a hedge threshold derived from a handful
// of measurements would be noise, so callers gate on it.
func (t *LatencyTracker) Quantile(pct float64, min int) (time.Duration, bool) {
	t.mu.Lock()
	n := len(t.samples)
	if n == 0 || n < min {
		t.mu.Unlock()
		return 0, false
	}
	buf := make([]time.Duration, n)
	copy(buf, t.samples)
	t.mu.Unlock()
	slices.Sort(buf)
	if pct <= 0 {
		return buf[0], true
	}
	if pct > 100 {
		pct = 100
	}
	rank := int(float64(n)*pct/100+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= n {
		rank = n - 1
	}
	return buf[rank], true
}
