package client

import (
	"sync"

	"repro/internal/netsim"
)

// Multi-tenant probe scheduling. A serving fleet multiplexes many
// concurrent join sessions over shared links; the per-link batcher is
// the one point every probe funnels through, so that is where arbitration
// lives. Submissions queue in per-tenant lanes and the scheduler decides
// which lane's probes enter each envelope:
//
//   - strict priority tiers: a lane of higher Priority always contributes
//     its probes to the envelope before any lower tier is considered
//     (lower tiers still fill the envelope's remaining slots — riding in
//     the same frame delays nobody);
//   - deficit round-robin within a tier: each visit credits a lane
//     schedQuantum × Weight bytes of deficit, and the lane emits probes
//     while its deficit covers their request bytes — so under backlog,
//     byte shares within a tier converge to the weight ratio;
//   - starvation bound: a non-empty lane passed over StarvationBound
//     consecutive envelopes contributes its head probe to the next one
//     regardless of tier, so even the lowest tier makes progress while
//     high-priority traffic is saturating the link.
//
// One Scheduler is shared by every remote of a fleet, so policies (and
// the quota ledger it carries) are consistent across links. The lanes
// themselves are per-batcher — per link — which is what makes the
// fairness per-link, matching the per-link batching it arbitrates.

// schedQuantum is the DRR byte credit one visit grants a lane per unit
// of weight. It is a few typical probe frames, so small-weight lanes
// still emit at least one probe per round and the quantum — not the
// probe size — sets the granularity of fairness.
const schedQuantum = 256

// defaultStarvationBound is the default number of consecutive envelopes
// a waiting lane may be passed over before it is force-served.
const defaultStarvationBound = 8

// TenantPolicy is one tenant's scheduling class.
type TenantPolicy struct {
	// Priority is the strict tier: higher values are served first.
	Priority int
	// Weight is the deficit-round-robin weight within the tier; values
	// below 1 are treated as 1.
	Weight int
}

// Scheduler holds the fleet-wide scheduling policy: each tenant's
// priority tier and intra-tier weight, the starvation bound, and
// (optionally) the quota ledger admission consults. It carries no queue
// state — lanes live in each link's batcher — so one Scheduler serves
// any number of remotes concurrently.
type Scheduler struct {
	ledger *netsim.Ledger
	starve int

	mu  sync.RWMutex
	pol map[netsim.TenantID]TenantPolicy
}

// NewScheduler returns a scheduler with the default starvation bound.
// ledger may be nil (no quota admission at the lanes).
func NewScheduler(ledger *netsim.Ledger) *Scheduler {
	return &Scheduler{
		ledger: ledger,
		starve: defaultStarvationBound,
		pol:    make(map[netsim.TenantID]TenantPolicy),
	}
}

// Ledger returns the quota ledger admission consults (nil when quotas
// are not armed).
func (s *Scheduler) Ledger() *netsim.Ledger { return s.ledger }

// SetStarvationBound sets how many consecutive envelopes a non-empty
// lane may be passed over before it is force-served. Values below 1 mean
// 1. Must be called before traffic flows (it is not synchronized with
// the lanes).
func (s *Scheduler) SetStarvationBound(n int) {
	if n < 1 {
		n = 1
	}
	s.starve = n
}

// StarvationBound returns the configured bound.
func (s *Scheduler) StarvationBound() int { return s.starve }

// SetPolicy sets a tenant's scheduling class. Tenants without an
// explicit policy run at {Priority: 0, Weight: 1}.
func (s *Scheduler) SetPolicy(id netsim.TenantID, p TenantPolicy) {
	if p.Weight < 1 {
		p.Weight = 1
	}
	s.mu.Lock()
	s.pol[id] = p
	s.mu.Unlock()
}

// Policy returns the tenant's scheduling class (the default class for
// tenants never configured).
func (s *Scheduler) Policy(id netsim.TenantID) TenantPolicy {
	s.mu.RLock()
	p, ok := s.pol[id]
	s.mu.RUnlock()
	if !ok {
		return TenantPolicy{Priority: 0, Weight: 1}
	}
	return p
}

// admit is the lane-side quota gate: a tenant over its byte budget is
// rejected before its probe ever occupies queue space, so an exhausted
// tenant cannot poison envelopes other tenants ride in.
func (s *Scheduler) admit(id netsim.TenantID) error {
	if s.ledger == nil || id == "" {
		return nil
	}
	return s.ledger.Check(id)
}
