package client

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// flakyTransport fails the first failures round trips with err, then
// delegates to the wrapped transport.
type flakyTransport struct {
	rt       netsim.RoundTripper
	failures int
	err      error
	calls    int
}

func (f *flakyTransport) RoundTrip(ctx context.Context, req []byte) ([]byte, error) {
	f.calls++
	if f.calls <= f.failures {
		return nil, f.err
	}
	return f.rt.RoundTrip(ctx, req)
}

func (f *flakyTransport) Close() error { return f.rt.Close() }

func TestNewRemoteRejectsInvalidLink(t *testing.T) {
	tr := netsim.Serve(scriptedHandler{resp: wire.EncodeCountReply(1)})
	defer tr.Close()
	if _, err := NewRemote("bad", tr, netsim.LinkConfig{MTU: 10, HeaderBytes: 40}, 1); err == nil {
		t.Fatal("invalid link must fail NewRemote, not panic later")
	}
}

func TestRetryRecoversFromTransientFaults(t *testing.T) {
	inner := netsim.Serve(scriptedHandler{resp: wire.EncodeCountReply(9)})
	fl := &flakyTransport{rt: inner, failures: 2, err: netsim.ErrInjectedDrop}
	r, err := NewRemote("flaky", fl, netsim.DefaultLink(), 1,
		WithRetry(RetryPolicy{MaxAttempts: 4}))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	n, err := r.Count(context.Background(), geom.R(0, 0, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if n != 9 {
		t.Fatalf("count = %d, want 9", n)
	}
	if got := r.Retries(); got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
	// Every attempt's request crossed the metered link (Eq. 1 charges the
	// retransmissions); only the one delivered response was charged.
	u := r.Usage()
	if u.Queries != 3 {
		t.Fatalf("queries = %d, want 3 (1 original + 2 retransmissions)", u.Queries)
	}
	if u.Messages != 4 {
		t.Fatalf("messages = %d, want 4 (3 requests + 1 response)", u.Messages)
	}
}

func TestRetryExhaustionReportsLastError(t *testing.T) {
	inner := netsim.Serve(scriptedHandler{resp: wire.EncodeCountReply(1)})
	fl := &flakyTransport{rt: inner, failures: 1 << 30, err: netsim.ErrInjectedSever}
	r, err := NewRemote("dead", fl, netsim.DefaultLink(), 1,
		WithRetry(RetryPolicy{MaxAttempts: 3}))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Count(context.Background(), geom.R(0, 0, 1, 1)); !errors.Is(err, netsim.ErrInjectedSever) {
		t.Fatalf("err = %v, want ErrInjectedSever", err)
	}
	if fl.calls != 3 {
		t.Fatalf("attempts = %d, want 3", fl.calls)
	}
}

func TestRetryDoesNotRetryClosedTransport(t *testing.T) {
	inner := netsim.Serve(scriptedHandler{resp: wire.EncodeCountReply(1)})
	fl := &flakyTransport{rt: inner, failures: 1 << 30, err: netsim.ErrClosed}
	r, err := NewRemote("closed", fl, netsim.DefaultLink(), 1,
		WithRetry(RetryPolicy{MaxAttempts: 5}))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Count(context.Background(), geom.R(0, 0, 1, 1)); !errors.Is(err, netsim.ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if fl.calls != 1 {
		t.Fatalf("attempts = %d, want 1 (ErrClosed is permanent)", fl.calls)
	}
}

func TestRetryStopsOnCanceledContext(t *testing.T) {
	inner := netsim.Serve(scriptedHandler{resp: wire.EncodeCountReply(1)})
	fl := &flakyTransport{rt: inner, failures: 1 << 30, err: netsim.ErrInjectedDrop}
	r, err := NewRemote("canceled", fl, netsim.DefaultLink(), 1,
		WithRetry(RetryPolicy{MaxAttempts: 100, Backoff: time.Hour}))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := r.Count(ctx, geom.R(0, 0, 1, 1)); err == nil {
		t.Fatal("canceled context must fail the query")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancellation took %v; the hour-long backoff was not interrupted", elapsed)
	}
	if fl.calls > 2 {
		t.Fatalf("attempts = %d; canceled context must stop the retry loop", fl.calls)
	}
}

func TestRetryServerErrorIsTerminal(t *testing.T) {
	// A server that answers with a protocol error has spoken: re-asking
	// an idempotent query cannot change the verdict.
	inner := netsim.Serve(scriptedHandler{resp: wire.EncodeError("no")})
	fl := &flakyTransport{rt: inner}
	r, err := NewRemote("refused", fl, netsim.DefaultLink(), 1,
		WithRetry(RetryPolicy{MaxAttempts: 5}))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Count(context.Background(), geom.R(0, 0, 1, 1)); err == nil {
		t.Fatal("server error must surface")
	}
	if fl.calls != 1 {
		t.Fatalf("attempts = %d, want 1 (server errors are not retried)", fl.calls)
	}
}

// slowFirstHandler stalls its first call long enough for a per-try
// timeout to abandon it, then answers instantly.
type slowFirstHandler struct {
	calls atomic.Int32
	resp  []byte
}

func (h *slowFirstHandler) Handle(req []byte) []byte {
	if h.calls.Add(1) == 1 {
		time.Sleep(30 * time.Millisecond)
	}
	// Touch the request bytes the whole way through, so the race
	// detector patrols the abandoned attempt's frame: if the retry loop
	// recycled the buffer while this worker still reads it, -race fails.
	sum := byte(0)
	for _, b := range req {
		sum += b
	}
	_ = sum
	return h.resp
}

// TestRetryAbandonedAttemptDoesNotRecycleFrame reproduces the pooled-
// frame hazard: attempt 1 is abandoned by the per-try timeout while the
// single server worker is still decoding its request; the retry must
// succeed without ever returning that frame to the pool (the worker may
// still be reading it).
func TestRetryAbandonedAttemptDoesNotRecycleFrame(t *testing.T) {
	h := &slowFirstHandler{resp: wire.EncodeCountReply(5)}
	tr := netsim.Serve(h) // one worker: attempt 1 occupies it, then attempt 2 lands
	r, err := NewRemote("slowstart", tr, netsim.DefaultLink(), 1,
		WithRetry(RetryPolicy{MaxAttempts: 4, PerTryTimeout: 5 * time.Millisecond, Backoff: 20 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	n, err := r.Count(context.Background(), geom.R(0, 0, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("count = %d, want 5", n)
	}
	if r.Retries() == 0 {
		t.Fatal("the stalled first attempt should have been retried")
	}
}
