package client

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bufpool"
	"repro/internal/geom"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// This file implements probe multiplexing: a per-Remote batcher that
// coalesces outstanding request frames into one MsgBatch envelope,
// answered by the server with one MsgBatchReply — amortizing the
// per-frame packet overhead of Eq. (1), the meter's per-message charge,
// and (on latency-bearing links) the round trip across the batch.
//
// Callers submit asynchronously with GoBatch and collect each request's
// reply through its Call future. Three triggers cut a batch:
//
//   - size: the pending queue reaching MaxBatch dispatches immediately;
//   - linger: a timer armed when the queue becomes non-empty flushes
//     stragglers, so a lone request is never parked indefinitely;
//   - explicit: Flush dispatches whatever is pending right now.
//
// The linger is adaptive per link: timer flushes that caught only a
// single request halve it (lone callers should not wait), timer flushes
// that did coalesce grow it (more time buys fuller batches), and
// size-trigger flushes decay it gently (arrivals outpace the timer
// anyway). It always stays within [MinLinger, MaxLinger].
//
// A batch is retried as a unit by the Remote's RetryPolicy — every
// sub-request is an idempotent query, so re-issuing the whole envelope
// after a transport fault is as safe as re-issuing one query, and each
// attempt is charged to the meter like any other uplink frame.
//
// Error containment: a transport failure fails every Call of the batch,
// but a server-side per-sub-request failure arrives as a MsgError
// *sub-frame* and fails only its own Call — batch-mates complete
// normally (see Call.frame).

// BatchConfig configures a Remote's probe batcher.
type BatchConfig struct {
	// MaxBatch is the size trigger: a pending queue reaching this many
	// requests is dispatched immediately. Values ≤ 1 disable batching
	// (every request travels as its own frame, bit-identical to the
	// pre-batching wire format).
	MaxBatch int
	// Linger is the initial adaptive linger. Zero derives a default from
	// the link: max(500µs, RTT/4), clamped to the bounds below.
	Linger time.Duration
	// MinLinger and MaxLinger bound the adaptive linger. Zero values
	// default to 50µs and 2ms.
	MinLinger, MaxLinger time.Duration
	// MaxInflight bounds the dispatch goroutines one batcher may have in
	// flight at once for size-triggered cuts. Submitters that would
	// exceed it block in GoBatch until a dispatch completes —
	// backpressure instead of an unbounded goroutine spawn under
	// sustained load. Zero defaults to 4.
	MaxInflight int
}

// WithBatch enables probe batching on the remote with the given
// configuration.
func WithBatch(cfg BatchConfig) Option {
	return func(r *Remote) { r.batchCfg = cfg }
}

// Call is the future of one batched request: it completes when the frame
// carrying the request has been answered (or failed). A Call is consumed
// by exactly one accessor (Objects, Count, ...), which waits, decodes,
// and recycles the response frame.
type Call struct {
	name string // diagnostic producer name (the Remote's, or a router's)
	ctx  context.Context
	req  []byte
	resp []byte
	err  error
	done chan struct{}
	// settled arbitrates between completion and abandonment: whichever of
	// complete (the dispatcher) and frame (a waiter whose own context is
	// done) flips it first owns the call's outcome. A late completion
	// recycles its response instead of writing fields nobody reads.
	settled atomic.Bool
}

// NewDetachedCall returns a Call bound to no Remote: an aggregator that
// merges several underlying round trips into one logical reply (e.g. a
// shard router) produces the response frame itself and completes the
// call with CompleteFrame. name labels errors the way a Remote's name
// would.
func NewDetachedCall(name string) *Call {
	return &Call{name: name, done: make(chan struct{})}
}

// CompleteFrame finishes a detached call with a response frame (ownership
// passes to the call; the frame is recycled by the consuming accessor) or
// an error. It must be called exactly once.
func (c *Call) CompleteFrame(resp []byte, err error) { c.complete(resp, err) }

func (c *Call) complete(resp []byte, err error) {
	if !c.settled.CompareAndSwap(false, true) {
		// The waiter already abandoned this call on its own context; the
		// late response has no consumer, so recycle it here.
		if resp != nil {
			bufpool.Put(resp)
		}
		return
	}
	c.resp, c.err = resp, err
	close(c.done)
}

// frame waits for completion and returns the response frame, converting a
// per-sub-request MsgError sub-frame into this call's error — batch-mates
// are unaffected. The caller owns the returned frame.
//
// A call whose own context ends first is abandoned per that context:
// frame returns the context's error immediately even while the shared
// envelope round trip — detached from any single caller — is still in
// flight, so one caller's cancellation neither waits for nor poisons its
// batch-mates.
func (c *Call) frame() ([]byte, error) {
	if c.ctx == nil {
		<-c.done
	} else {
		select {
		case <-c.done:
		case <-c.ctx.Done():
			if c.settled.CompareAndSwap(false, true) {
				return nil, fmt.Errorf("%s: %w", c.name, c.ctx.Err())
			}
			// complete won the race; consume its outcome normally.
			<-c.done
		}
	}
	if c.err != nil {
		return nil, c.err
	}
	resp := c.resp
	c.resp = nil
	if resp == nil {
		return nil, fmt.Errorf("%s: call already consumed", c.name)
	}
	if wire.Type(resp) == wire.MsgError {
		err := fmt.Errorf("%s: %w", c.name, wire.DecodeError(resp))
		bufpool.Put(resp)
		return nil, err
	}
	return resp, nil
}

// Frame waits for completion and returns the raw response frame;
// ownership passes to the caller, which must release it with
// bufpool.Put once decoded. Aggregators that re-route replies (a
// replica set failing a batched probe over to a sibling replica, a
// router completing a detached call with a sub-reply) consume calls at
// the frame level; typed callers use the decoding accessors instead. A
// per-sub-request MsgError sub-frame is converted to an error here,
// exactly as the accessors would.
func (c *Call) Frame() ([]byte, error) { return c.frame() }

// Objects waits and decodes an OBJECTS response (WINDOW / RANGE probes).
func (c *Call) Objects() ([]geom.Object, error) {
	resp, err := c.frame()
	if err != nil {
		return nil, err
	}
	objs, err := wire.DecodeObjects(resp)
	putFrame(resp)
	return objs, err
}

// Count waits and decodes a COUNT-REPLY response (COUNT / RANGE-COUNT
// probes).
func (c *Call) Count() (int, error) {
	resp, err := c.frame()
	if err != nil {
		return 0, err
	}
	n, err := wire.DecodeCountReply(resp)
	putFrame(resp)
	return int(n), err
}

// cutReason records which trigger dispatched a batch, driving the
// adaptive linger.
type cutReason int

const (
	cutFull cutReason = iota
	cutTimer
	cutExplicit
)

// lane is one tenant's submission queue on one link (scheduler mode
// only). deficit and passed implement the DRR credit and the starvation
// bound; served marks lanes that contributed to the envelope being
// assembled, for the pass bookkeeping at the end of each pick; credited
// marks lanes that have drawn their quantum for the current DRR round —
// a round ends (and the flags clear) only when every credited lane is
// spent, so envelope-cap truncations never let credit inflow outrun
// service and distort the weighted shares.
type lane struct {
	queue    []*Call
	deficit  int64
	passed   int
	served   bool
	credited bool
}

// batcher is the per-link multiplexer. pending never exceeds max: the
// enqueue path cuts a batch the moment the queue fills. With a Scheduler
// armed, pending is replaced by per-tenant lanes and each envelope is
// assembled by pick() under the scheduling policy.
type batcher struct {
	rem        *Remote
	max        int
	minL, maxL int64         // linger bounds, ns
	linger     atomic.Int64  // current adaptive linger, ns
	sched      *Scheduler    // nil = legacy single-queue mode
	sem        chan struct{} // bounds in-flight spawned dispatches

	mu      sync.Mutex
	pending []*Call // legacy mode queue
	lanes   map[netsim.TenantID]*lane
	order   []netsim.TenantID // lane visit order (first-submission order)
	rr      int               // DRR round-robin start index into order
	npend   int               // total queued across lanes
	timer   *time.Timer
	armed   bool

	frames atomic.Int64 // dispatched frames (diagnostics and tests)
}

func newBatcher(r *Remote, cfg BatchConfig) *batcher {
	if cfg.MaxBatch <= 1 {
		return nil
	}
	b := &batcher{rem: r, max: cfg.MaxBatch, sched: r.sched}
	if b.sched != nil {
		b.lanes = make(map[netsim.TenantID]*lane)
	}
	inflight := cfg.MaxInflight
	if inflight <= 0 {
		inflight = 4
	}
	b.sem = make(chan struct{}, inflight)
	b.minL = int64(cfg.MinLinger)
	if b.minL <= 0 {
		b.minL = int64(50 * time.Microsecond)
	}
	b.maxL = int64(cfg.MaxLinger)
	if b.maxL < b.minL {
		b.maxL = int64(2 * time.Millisecond)
		if b.maxL < b.minL {
			b.maxL = b.minL
		}
	}
	l := int64(cfg.Linger)
	if l <= 0 {
		l = int64(500 * time.Microsecond)
		if rtt := int64(r.m.Link().RTT) / 4; rtt > l {
			l = rtt
		}
	}
	b.linger.Store(clamp64(l, b.minL, b.maxL))
	b.timer = time.AfterFunc(time.Duration(b.maxL), func() { b.flush(cutTimer) })
	b.timer.Stop()
	return b
}

func clamp64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// enqueue adds calls to the pending queue, cutting a full batch whenever
// the size trigger fires. All calls of one enqueue are appended under one
// lock acquisition, so a caller submitting exactly MaxBatch requests
// into an *empty* queue gets one frame containing exactly those
// requests; when concurrent submitters have left stragglers pending,
// those join the frame and the tail of this enqueue stays queued —
// correct, just a different grouping. Sequential runs always find the
// queue empty (core flushes each probe group before issuing the next),
// which is what the deterministic byte-accounting goldens rely on.
func (b *batcher) enqueue(calls []*Call) {
	if b.sched != nil {
		b.enqueueLanes(calls)
		return
	}
	var cut [][]*Call
	b.mu.Lock()
	for _, c := range calls {
		b.pending = append(b.pending, c)
		if len(b.pending) >= b.max {
			cut = append(cut, b.pending)
			b.pending = nil
		}
	}
	if len(b.pending) > 0 {
		if !b.armed {
			b.armed = true
			b.timer.Reset(time.Duration(b.linger.Load()))
		}
	} else if b.armed {
		b.armed = false
		b.timer.Stop()
	}
	b.mu.Unlock()
	b.spawn(cut)
}

// spawn dispatches size-triggered cuts on fresh goroutines, at most
// cap(b.sem) in flight at once. A submitter that would exceed the bound
// blocks here — backpressure on the producing session — instead of
// stacking goroutines on one link without limit. No lock is held while
// acquiring the semaphore, and dispatch never re-enters the batcher, so
// a full semaphore can only delay submitters, never deadlock them.
func (b *batcher) spawn(cut [][]*Call) {
	for _, batch := range cut {
		b.sem <- struct{}{}
		batch := batch
		go func() {
			defer func() { <-b.sem }()
			b.dispatch(batch, cutFull)
		}()
	}
}

// enqueueLanes is the scheduler-mode submission path: each call joins
// its tenant's lane (after the quota gate), and whenever the total
// backlog reaches the size trigger an envelope is assembled by pick()
// under the scheduling policy.
func (b *batcher) enqueueLanes(calls []*Call) {
	var cut [][]*Call
	var rejected []*Call
	var rejErrs []error
	b.mu.Lock()
	for _, c := range calls {
		id := netsim.TenantID("")
		if c.ctx != nil {
			id = netsim.TenantOf(c.ctx)
		}
		if err := b.sched.admit(id); err != nil {
			rejected = append(rejected, c)
			rejErrs = append(rejErrs, err)
			continue
		}
		ln := b.lanes[id]
		if ln == nil {
			ln = &lane{}
			b.lanes[id] = ln
			b.order = append(b.order, id)
		}
		ln.queue = append(ln.queue, c)
		b.npend++
		if b.npend >= b.max {
			if batch := b.pick(false); len(batch) > 0 {
				cut = append(cut, batch)
			}
		}
	}
	if b.npend > 0 {
		if !b.armed {
			b.armed = true
			b.timer.Reset(time.Duration(b.linger.Load()))
		}
	} else if b.armed {
		b.armed = false
		b.timer.Stop()
	}
	b.mu.Unlock()
	for i, c := range rejected {
		bufpool.Put(c.req)
		c.req = nil
		c.complete(nil, fmt.Errorf("%s: %w", b.rem.name, rejErrs[i]))
	}
	b.spawn(cut)
}

// flush dispatches whatever is pending. Explicit flushes run the round
// trip on the caller's goroutine (the caller is about to wait on the
// calls anyway); timer flushes run on the timer goroutine. In scheduler
// mode the backlog is drained in policy order, envelope by envelope,
// with deficits waived — the linger has expired, so nothing may stay
// parked.
func (b *batcher) flush(reason cutReason) {
	b.mu.Lock()
	var batches [][]*Call
	if b.sched != nil {
		for b.npend > 0 {
			batch := b.pick(true)
			if len(batch) == 0 {
				break
			}
			batches = append(batches, batch)
		}
	} else if len(b.pending) > 0 {
		batches = [][]*Call{b.pending}
		b.pending = nil
	}
	if b.armed {
		b.armed = false
		b.timer.Stop()
	}
	b.mu.Unlock()
	for _, batch := range batches {
		b.dispatch(batch, reason)
	}
}

// pick assembles one envelope (up to max calls) from the lanes under the
// scheduling policy. Caller holds b.mu. With force set (linger-expired
// flushes), DRR deficits are waived — priority order and the starvation
// guard still apply, but no probe stays parked for lack of credit.
func (b *batcher) pick(force bool) []*Call {
	batch := make([]*Call, 0, b.max)
	// Starvation guard: lanes passed over too many consecutive envelopes
	// contribute their head probe first, whatever their tier.
	starve := b.sched.StarvationBound()
	for _, id := range b.order {
		if len(batch) >= b.max {
			break
		}
		ln := b.lanes[id]
		if len(ln.queue) > 0 && ln.passed >= starve {
			batch = b.takeHead(ln, batch)
		}
	}
	// Strict priority tiers, deficit round-robin within each: the top
	// non-empty tier fills the envelope first; remaining slots fill down
	// tier by tier (sharing the frame delays nobody above).
	blocked := 0
	for len(batch) < b.max {
		tier, ok := b.topTier()
		if !ok {
			break
		}
		before := len(batch)
		batch = b.drrPass(tier, force, batch)
		if len(batch) == before {
			// The tier made no progress: every lane of it is spent for
			// the current round (or deficit-blocked). With a non-empty
			// envelope, stop — lower tiers must not overtake a blocked
			// higher tier, and the round resumes on the next pick. With
			// an empty envelope, start the tier's next round (bounded, so
			// a pathological probe cannot spin forever): an envelope must
			// eventually form or the backlog would only drain on flushes.
			if len(batch) > 0 {
				break
			}
			b.resetRound(tier)
			blocked++
			if blocked > 4096 {
				break
			}
		}
	}
	// Pass bookkeeping for the starvation bound.
	for _, id := range b.order {
		ln := b.lanes[id]
		if ln.served {
			ln.passed = 0
			ln.served = false
		} else if len(ln.queue) > 0 {
			ln.passed++
		} else {
			ln.passed = 0
		}
	}
	return batch
}

// topTier returns the highest priority among non-empty lanes.
func (b *batcher) topTier() (int, bool) {
	best, found := 0, false
	for _, id := range b.order {
		if len(b.lanes[id].queue) == 0 {
			continue
		}
		if p := b.sched.Policy(id).Priority; !found || p > best {
			best, found = p, true
		}
	}
	return best, found
}

// drrPass visits each lane of the tier once in round-robin order,
// taking probes while the lane's round credit covers their request
// bytes (force waives the credit check). A lane draws its quantum ×
// weight credit at most once per round — the credited flag — however
// many passes (and picks) the round spans, so service per round is
// exactly proportional to the weights even when envelope caps truncate
// a pass mid-way.
func (b *batcher) drrPass(tier int, force bool, batch []*Call) []*Call {
	n := len(b.order)
	for k := 0; k < n && len(batch) < b.max; k++ {
		id := b.order[(b.rr+k)%n]
		ln := b.lanes[id]
		pol := b.sched.Policy(id)
		if len(ln.queue) == 0 || pol.Priority != tier {
			continue
		}
		if !ln.credited {
			w := pol.Weight
			if w < 1 {
				w = 1
			}
			ln.deficit += int64(schedQuantum * w)
			ln.credited = true
		}
		for len(ln.queue) > 0 && len(batch) < b.max {
			cost := int64(len(ln.queue[0].req))
			if !force && cost > ln.deficit {
				break
			}
			ln.deficit -= cost
			if force && ln.deficit < 0 {
				// A waived take must not mortgage the lane's future
				// rounds: the flush already paid by draining the backlog.
				ln.deficit = 0
			}
			batch = b.takeHead(ln, batch)
		}
		if len(ln.queue) == 0 {
			// An idle lane keeps no credit: DRR fairness is among
			// backlogged lanes only.
			ln.deficit = 0
		}
	}
	if n > 0 {
		b.rr = (b.rr + 1) % n
	}
	return batch
}

// resetRound opens the tier's next DRR round: every lane may draw its
// quantum again.
func (b *batcher) resetRound(tier int) {
	for _, id := range b.order {
		if b.sched.Policy(id).Priority == tier {
			b.lanes[id].credited = false
		}
	}
}

// takeHead moves the lane's head call into the envelope.
func (b *batcher) takeHead(ln *lane, batch []*Call) []*Call {
	c := ln.queue[0]
	ln.queue[0] = nil
	ln.queue = ln.queue[1:]
	b.npend--
	ln.served = true
	return append(batch, c)
}

// adapt moves the linger after a dispatch, per the scheduler policy above.
func (b *batcher) adapt(reason cutReason, n int) {
	cur := b.linger.Load()
	switch reason {
	case cutTimer:
		if n <= 1 {
			cur /= 2
		} else {
			cur = cur * 5 / 4
		}
	case cutFull:
		cur = cur * 7 / 8
	case cutExplicit:
		return
	}
	b.linger.Store(clamp64(cur, b.minL, b.maxL))
}

// dispatch sends one batch as a single frame (bare for a batch of one —
// a straggler costs exactly what an unbatched request costs) and
// demultiplexes the reply to the waiting calls.
//
// The round trip is detached from any single caller: when all calls
// share one context (the single-session pattern — all probes of a join
// run share the run context) the trip runs under it directly, but a
// mixed batch runs under a derived context cancelled only once EVERY
// batched context is done. One caller's cancellation therefore never
// fails its batch-mates; the cancelled caller itself returns promptly
// through Call.frame's own-context watch.
func (b *batcher) dispatch(batch []*Call, reason cutReason) {
	b.frames.Add(1)
	b.adapt(reason, len(batch))
	if len(batch) == 1 {
		c := batch[0]
		ctx := c.ctx
		if ctx == nil {
			ctx = context.Background()
		}
		resp, err := b.rem.roundTrip(ctx, c.req)
		c.req = nil
		c.complete(resp, err)
		return
	}
	ctx, stop := dispatchContext(batch)
	defer stop()
	subs := make([][]byte, len(batch))
	for i, c := range batch {
		subs[i] = c.req
	}
	if b.sched != nil {
		// Multi-tenant envelope: stamp the per-tenant byte shares so the
		// meter attributes (and the ledger bills) the frame exactly.
		ctx = withTenantShares(ctx, batch)
	}
	frame := wire.AppendBatch(bufpool.Get(), subs)
	for _, c := range batch {
		bufpool.Put(c.req)
		c.req = nil
	}
	resp, err := b.rem.roundTrip(ctx, frame)
	if err != nil {
		for _, c := range batch {
			c.complete(nil, err)
		}
		return
	}
	subs, err = wire.DecodeBatchAppend(resp, wire.MsgBatchReply, subs[:0])
	if err == nil && len(subs) != len(batch) {
		err = fmt.Errorf("batch reply carries %d sub-frames, want %d", len(subs), len(batch))
	}
	if err != nil {
		err = fmt.Errorf("%s: %w", b.rem.name, err)
		for _, c := range batch {
			c.complete(nil, err)
		}
		bufpool.Put(resp)
		return
	}
	// Each call receives a private copy of its sub-reply so the shared
	// envelope frame can be recycled immediately; decoded values never
	// alias the copies either (the accessors recycle them after decoding).
	for i, c := range batch {
		buf := bufpool.GetCap(len(subs[i]))
		c.complete(append(buf, subs[i]...), nil)
	}
	bufpool.Put(resp)
}

// dispatchContext returns the context an envelope's round trip runs
// under, plus a stop func the dispatcher must call when the trip is
// over. Fast path: every call shares one context — use it directly (it
// carries the run's values: tenant, hedge mark, deadline). Otherwise the
// trip is detached: a fresh context cancelled only when ALL batched
// contexts are done, so the envelope outlives any single caller's
// cancellation but does not outlive the moment nobody wants its replies.
func dispatchContext(batch []*Call) (context.Context, func()) {
	first := batch[0].ctx
	shared := true
	for _, c := range batch[1:] {
		if c.ctx != first {
			shared = false
			break
		}
	}
	if shared {
		if first == nil {
			return context.Background(), func() {}
		}
		return first, func() {}
	}
	ctx, cancel := context.WithCancel(context.Background())
	stopped := make(chan struct{})
	go func() {
		// Wait each caller's context in turn; order is irrelevant for
		// "all done". A nil context is never done, so the trip can never
		// become all-abandoned — the watcher just retires.
		for _, c := range batch {
			if c.ctx == nil {
				return
			}
			select {
			case <-c.ctx.Done():
			case <-stopped:
				return
			}
		}
		cancel()
	}()
	var once sync.Once
	return ctx, func() {
		once.Do(func() {
			close(stopped)
			cancel()
		})
	}
}

// withTenantShares stamps ctx with the envelope's per-tenant request-
// byte shares (computed before the sub-frames are recycled). Response
// bytes are split by the same shares — a deliberate approximation: the
// reply's per-sub-frame sizes are unknown until decoded, and request-
// proportional attribution keeps the split deterministic and exact in
// total. A single-tenant envelope takes the cheaper WithTenant stamp.
func withTenantShares(ctx context.Context, batch []*Call) context.Context {
	shares := make([]netsim.TenantShare, 0, 2)
	for _, c := range batch {
		id := netsim.TenantID("")
		if c.ctx != nil {
			id = netsim.TenantOf(c.ctx)
		}
		n := len(c.req)
		found := false
		for i := range shares {
			if shares[i].ID == id {
				shares[i].Bytes += n
				found = true
				break
			}
		}
		if !found {
			shares = append(shares, netsim.TenantShare{ID: id, Bytes: n})
		}
	}
	if len(shares) == 1 {
		return netsim.WithTenant(ctx, shares[0].ID)
	}
	return netsim.WithShares(ctx, shares)
}

// --- Remote surface -------------------------------------------------------

// BatchEnabled reports whether this remote multiplexes probes.
func (r *Remote) BatchEnabled() bool { return r.b != nil }

// BatchFrames returns how many frames the batcher has dispatched
// (envelopes and bare stragglers alike). Diagnostics only.
func (r *Remote) BatchFrames() int64 {
	if r.b == nil {
		return 0
	}
	return r.b.frames.Load()
}

// GoBatch submits pre-encoded request frames (ownership of each buffer
// passes to the client) and returns one Call per request. The requests
// are enqueued atomically under one lock acquisition: concurrent
// submitters never interleave *within* one GoBatch's requests, though
// stragglers already pending may share its frames. Requests below the
// size trigger stay pending until the queue fills, the linger timer
// fires, or an explicit Flush dispatches them.
//
// With batching disabled each request is dispatched immediately as its
// own concurrent round trip, so callers need not special-case the
// configuration.
func (r *Remote) GoBatch(ctx context.Context, reqs [][]byte) []*Call {
	calls := make([]*Call, len(reqs))
	for i, req := range reqs {
		calls[i] = &Call{name: r.name, ctx: ctx, req: req, done: make(chan struct{})}
	}
	if r.b == nil {
		for _, c := range calls {
			c := c
			go func() {
				resp, err := r.roundTrip(c.ctx, c.req)
				c.req = nil
				c.complete(resp, err)
			}()
		}
		return calls
	}
	r.b.enqueue(calls)
	return calls
}

// Flush dispatches any pending batched requests immediately instead of
// waiting for the size or linger triggers. Callers submit a probe group
// with GoBatch, Flush the tail, then wait on the calls.
func (r *Remote) Flush() {
	if r.b != nil {
		r.b.flush(cutExplicit)
	}
}
