package client

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bufpool"
	"repro/internal/geom"
	"repro/internal/wire"
)

// This file implements probe multiplexing: a per-Remote batcher that
// coalesces outstanding request frames into one MsgBatch envelope,
// answered by the server with one MsgBatchReply — amortizing the
// per-frame packet overhead of Eq. (1), the meter's per-message charge,
// and (on latency-bearing links) the round trip across the batch.
//
// Callers submit asynchronously with GoBatch and collect each request's
// reply through its Call future. Three triggers cut a batch:
//
//   - size: the pending queue reaching MaxBatch dispatches immediately;
//   - linger: a timer armed when the queue becomes non-empty flushes
//     stragglers, so a lone request is never parked indefinitely;
//   - explicit: Flush dispatches whatever is pending right now.
//
// The linger is adaptive per link: timer flushes that caught only a
// single request halve it (lone callers should not wait), timer flushes
// that did coalesce grow it (more time buys fuller batches), and
// size-trigger flushes decay it gently (arrivals outpace the timer
// anyway). It always stays within [MinLinger, MaxLinger].
//
// A batch is retried as a unit by the Remote's RetryPolicy — every
// sub-request is an idempotent query, so re-issuing the whole envelope
// after a transport fault is as safe as re-issuing one query, and each
// attempt is charged to the meter like any other uplink frame.
//
// Error containment: a transport failure fails every Call of the batch,
// but a server-side per-sub-request failure arrives as a MsgError
// *sub-frame* and fails only its own Call — batch-mates complete
// normally (see Call.frame).

// BatchConfig configures a Remote's probe batcher.
type BatchConfig struct {
	// MaxBatch is the size trigger: a pending queue reaching this many
	// requests is dispatched immediately. Values ≤ 1 disable batching
	// (every request travels as its own frame, bit-identical to the
	// pre-batching wire format).
	MaxBatch int
	// Linger is the initial adaptive linger. Zero derives a default from
	// the link: max(500µs, RTT/4), clamped to the bounds below.
	Linger time.Duration
	// MinLinger and MaxLinger bound the adaptive linger. Zero values
	// default to 50µs and 2ms.
	MinLinger, MaxLinger time.Duration
}

// WithBatch enables probe batching on the remote with the given
// configuration.
func WithBatch(cfg BatchConfig) Option {
	return func(r *Remote) { r.batchCfg = cfg }
}

// Call is the future of one batched request: it completes when the frame
// carrying the request has been answered (or failed). A Call is consumed
// by exactly one accessor (Objects, Count, ...), which waits, decodes,
// and recycles the response frame.
type Call struct {
	name string // diagnostic producer name (the Remote's, or a router's)
	ctx  context.Context
	req  []byte
	resp []byte
	err  error
	done chan struct{}
}

// NewDetachedCall returns a Call bound to no Remote: an aggregator that
// merges several underlying round trips into one logical reply (e.g. a
// shard router) produces the response frame itself and completes the
// call with CompleteFrame. name labels errors the way a Remote's name
// would.
func NewDetachedCall(name string) *Call {
	return &Call{name: name, done: make(chan struct{})}
}

// CompleteFrame finishes a detached call with a response frame (ownership
// passes to the call; the frame is recycled by the consuming accessor) or
// an error. It must be called exactly once.
func (c *Call) CompleteFrame(resp []byte, err error) { c.complete(resp, err) }

func (c *Call) complete(resp []byte, err error) {
	c.resp, c.err = resp, err
	close(c.done)
}

// frame waits for completion and returns the response frame, converting a
// per-sub-request MsgError sub-frame into this call's error — batch-mates
// are unaffected. The caller owns the returned frame.
func (c *Call) frame() ([]byte, error) {
	<-c.done
	if c.err != nil {
		return nil, c.err
	}
	resp := c.resp
	c.resp = nil
	if resp == nil {
		return nil, fmt.Errorf("%s: call already consumed", c.name)
	}
	if wire.Type(resp) == wire.MsgError {
		err := fmt.Errorf("%s: %w", c.name, wire.DecodeError(resp))
		bufpool.Put(resp)
		return nil, err
	}
	return resp, nil
}

// Frame waits for completion and returns the raw response frame;
// ownership passes to the caller, which must release it with
// bufpool.Put once decoded. Aggregators that re-route replies (a
// replica set failing a batched probe over to a sibling replica, a
// router completing a detached call with a sub-reply) consume calls at
// the frame level; typed callers use the decoding accessors instead. A
// per-sub-request MsgError sub-frame is converted to an error here,
// exactly as the accessors would.
func (c *Call) Frame() ([]byte, error) { return c.frame() }

// Objects waits and decodes an OBJECTS response (WINDOW / RANGE probes).
func (c *Call) Objects() ([]geom.Object, error) {
	resp, err := c.frame()
	if err != nil {
		return nil, err
	}
	objs, err := wire.DecodeObjects(resp)
	putFrame(resp)
	return objs, err
}

// Count waits and decodes a COUNT-REPLY response (COUNT / RANGE-COUNT
// probes).
func (c *Call) Count() (int, error) {
	resp, err := c.frame()
	if err != nil {
		return 0, err
	}
	n, err := wire.DecodeCountReply(resp)
	putFrame(resp)
	return int(n), err
}

// cutReason records which trigger dispatched a batch, driving the
// adaptive linger.
type cutReason int

const (
	cutFull cutReason = iota
	cutTimer
	cutExplicit
)

// batcher is the per-link multiplexer. pending never exceeds max: the
// enqueue path cuts a batch the moment the queue fills.
type batcher struct {
	rem        *Remote
	max        int
	minL, maxL int64        // linger bounds, ns
	linger     atomic.Int64 // current adaptive linger, ns

	mu      sync.Mutex
	pending []*Call
	timer   *time.Timer
	armed   bool

	frames atomic.Int64 // dispatched frames (diagnostics and tests)
}

func newBatcher(r *Remote, cfg BatchConfig) *batcher {
	if cfg.MaxBatch <= 1 {
		return nil
	}
	b := &batcher{rem: r, max: cfg.MaxBatch}
	b.minL = int64(cfg.MinLinger)
	if b.minL <= 0 {
		b.minL = int64(50 * time.Microsecond)
	}
	b.maxL = int64(cfg.MaxLinger)
	if b.maxL < b.minL {
		b.maxL = int64(2 * time.Millisecond)
		if b.maxL < b.minL {
			b.maxL = b.minL
		}
	}
	l := int64(cfg.Linger)
	if l <= 0 {
		l = int64(500 * time.Microsecond)
		if rtt := int64(r.m.Link().RTT) / 4; rtt > l {
			l = rtt
		}
	}
	b.linger.Store(clamp64(l, b.minL, b.maxL))
	b.timer = time.AfterFunc(time.Duration(b.maxL), func() { b.flush(cutTimer) })
	b.timer.Stop()
	return b
}

func clamp64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// enqueue adds calls to the pending queue, cutting a full batch whenever
// the size trigger fires. All calls of one enqueue are appended under one
// lock acquisition, so a caller submitting exactly MaxBatch requests
// into an *empty* queue gets one frame containing exactly those
// requests; when concurrent submitters have left stragglers pending,
// those join the frame and the tail of this enqueue stays queued —
// correct, just a different grouping. Sequential runs always find the
// queue empty (core flushes each probe group before issuing the next),
// which is what the deterministic byte-accounting goldens rely on.
func (b *batcher) enqueue(calls []*Call) {
	var cut [][]*Call
	b.mu.Lock()
	for _, c := range calls {
		b.pending = append(b.pending, c)
		if len(b.pending) >= b.max {
			cut = append(cut, b.pending)
			b.pending = nil
		}
	}
	if len(b.pending) > 0 {
		if !b.armed {
			b.armed = true
			b.timer.Reset(time.Duration(b.linger.Load()))
		}
	} else if b.armed {
		b.armed = false
		b.timer.Stop()
	}
	b.mu.Unlock()
	for _, batch := range cut {
		go b.dispatch(batch, cutFull)
	}
}

// flush dispatches whatever is pending. Explicit flushes run the round
// trip on the caller's goroutine (the caller is about to wait on the
// calls anyway); timer flushes run on the timer goroutine.
func (b *batcher) flush(reason cutReason) {
	b.mu.Lock()
	batch := b.pending
	b.pending = nil
	if b.armed {
		b.armed = false
		b.timer.Stop()
	}
	b.mu.Unlock()
	if len(batch) > 0 {
		b.dispatch(batch, reason)
	}
}

// adapt moves the linger after a dispatch, per the scheduler policy above.
func (b *batcher) adapt(reason cutReason, n int) {
	cur := b.linger.Load()
	switch reason {
	case cutTimer:
		if n <= 1 {
			cur /= 2
		} else {
			cur = cur * 5 / 4
		}
	case cutFull:
		cur = cur * 7 / 8
	case cutExplicit:
		return
	}
	b.linger.Store(clamp64(cur, b.minL, b.maxL))
}

// dispatch sends one batch as a single frame (bare for a batch of one —
// a straggler costs exactly what an unbatched request costs) and
// demultiplexes the reply to the waiting calls. The round trip runs
// under the first call's context; callers that batch together are
// expected to share one (they do: all probes of a join run share the
// run context).
func (b *batcher) dispatch(batch []*Call, reason cutReason) {
	b.frames.Add(1)
	b.adapt(reason, len(batch))
	ctx := batch[0].ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if len(batch) == 1 {
		c := batch[0]
		resp, err := b.rem.roundTrip(ctx, c.req)
		c.req = nil
		c.complete(resp, err)
		return
	}
	subs := make([][]byte, len(batch))
	for i, c := range batch {
		subs[i] = c.req
	}
	frame := wire.AppendBatch(bufpool.Get(), subs)
	for _, c := range batch {
		bufpool.Put(c.req)
		c.req = nil
	}
	resp, err := b.rem.roundTrip(ctx, frame)
	if err != nil {
		for _, c := range batch {
			c.complete(nil, err)
		}
		return
	}
	subs, err = wire.DecodeBatchAppend(resp, wire.MsgBatchReply, subs[:0])
	if err == nil && len(subs) != len(batch) {
		err = fmt.Errorf("batch reply carries %d sub-frames, want %d", len(subs), len(batch))
	}
	if err != nil {
		err = fmt.Errorf("%s: %w", b.rem.name, err)
		for _, c := range batch {
			c.complete(nil, err)
		}
		bufpool.Put(resp)
		return
	}
	// Each call receives a private copy of its sub-reply so the shared
	// envelope frame can be recycled immediately; decoded values never
	// alias the copies either (the accessors recycle them after decoding).
	for i, c := range batch {
		buf := bufpool.GetCap(len(subs[i]))
		c.complete(append(buf, subs[i]...), nil)
	}
	bufpool.Put(resp)
}

// --- Remote surface -------------------------------------------------------

// BatchEnabled reports whether this remote multiplexes probes.
func (r *Remote) BatchEnabled() bool { return r.b != nil }

// BatchFrames returns how many frames the batcher has dispatched
// (envelopes and bare stragglers alike). Diagnostics only.
func (r *Remote) BatchFrames() int64 {
	if r.b == nil {
		return 0
	}
	return r.b.frames.Load()
}

// GoBatch submits pre-encoded request frames (ownership of each buffer
// passes to the client) and returns one Call per request. The requests
// are enqueued atomically under one lock acquisition: concurrent
// submitters never interleave *within* one GoBatch's requests, though
// stragglers already pending may share its frames. Requests below the
// size trigger stay pending until the queue fills, the linger timer
// fires, or an explicit Flush dispatches them.
//
// With batching disabled each request is dispatched immediately as its
// own concurrent round trip, so callers need not special-case the
// configuration.
func (r *Remote) GoBatch(ctx context.Context, reqs [][]byte) []*Call {
	calls := make([]*Call, len(reqs))
	for i, req := range reqs {
		calls[i] = &Call{name: r.name, ctx: ctx, req: req, done: make(chan struct{})}
	}
	if r.b == nil {
		for _, c := range calls {
			c := c
			go func() {
				resp, err := r.roundTrip(c.ctx, c.req)
				c.req = nil
				c.complete(resp, err)
			}()
		}
		return calls
	}
	r.b.enqueue(calls)
	return calls
}

// Flush dispatches any pending batched requests immediately instead of
// waiting for the size or linger triggers. Callers submit a probe group
// with GoBatch, Flush the tail, then wait on the calls.
func (r *Remote) Flush() {
	if r.b != nil {
		r.b.flush(cutExplicit)
	}
}
