package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/bufpool"
	"repro/internal/dataset"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/wire"
)

// --- white-box scheduler invariants ---------------------------------------
//
// pick() is a pure function of the lane state under b.mu, so the
// scheduling invariants — weighted fairness, strict priority,
// starvation bound — are tested directly against a hand-built batcher:
// deterministic, transport-free, and immune to timing.

// newLaneBatcher builds a dispatch-less batcher in scheduler mode.
func newLaneBatcher(sched *Scheduler, max int) *batcher {
	return &batcher{
		max:   max,
		sched: sched,
		lanes: make(map[netsim.TenantID]*lane),
	}
}

// fill appends n dummy calls of reqBytes each to the tenant's lane.
func (b *batcher) fill(id netsim.TenantID, n, reqBytes int) {
	ln := b.lanes[id]
	if ln == nil {
		ln = &lane{}
		b.lanes[id] = ln
		b.order = append(b.order, id)
	}
	ctx := netsim.WithTenant(context.Background(), id)
	for i := 0; i < n; i++ {
		c := &Call{name: string(id), ctx: ctx, req: make([]byte, reqBytes), done: make(chan struct{})}
		ln.queue = append(ln.queue, c)
		b.npend++
	}
}

func tenantOfCall(c *Call) netsim.TenantID { return netsim.TenantOf(c.ctx) }

// TestSchedulerWeightedFairness: two backlogged same-priority lanes with
// weights 1:3 converge to byte shares 1:3 within ±10% of the total.
func TestSchedulerWeightedFairness(t *testing.T) {
	sched := NewScheduler(nil)
	sched.SetPolicy("a", TenantPolicy{Priority: 0, Weight: 1})
	sched.SetPolicy("b", TenantPolicy{Priority: 0, Weight: 3})
	b := newLaneBatcher(sched, 8)

	bytes := map[netsim.TenantID]int{}
	total := 0
	const reqBytes = 300 // larger than one quantum, so credit takes rounds
	for pickN := 0; pickN < 200; pickN++ {
		// Keep both lanes backlogged so DRR fairness (a property of
		// backlogged lanes) is what is being measured.
		for _, id := range []netsim.TenantID{"a", "b"} {
			ln := b.lanes[id]
			if ln == nil || len(ln.queue) < b.max {
				b.fill(id, b.max, reqBytes)
			}
		}
		for _, c := range b.pick(false) {
			bytes[tenantOfCall(c)] += len(c.req)
			total += len(c.req)
		}
	}
	if total == 0 {
		t.Fatal("no bytes scheduled")
	}
	shareA := float64(bytes["a"]) / float64(total)
	shareB := float64(bytes["b"]) / float64(total)
	if diff := shareA - 0.25; diff < -0.10 || diff > 0.10 {
		t.Errorf("tenant a byte share = %.3f, want 0.25 ± 0.10 (a=%d b=%d)", shareA, bytes["a"], bytes["b"])
	}
	if diff := shareB - 0.75; diff < -0.10 || diff > 0.10 {
		t.Errorf("tenant b byte share = %.3f, want 0.75 ± 0.10", shareB)
	}
}

// TestSchedulerThreeWayFairness: weights 1:2:5 among three backlogged
// lanes, same tolerance.
func TestSchedulerThreeWayFairness(t *testing.T) {
	sched := NewScheduler(nil)
	weights := map[netsim.TenantID]int{"x": 1, "y": 2, "z": 5}
	for id, w := range weights {
		sched.SetPolicy(id, TenantPolicy{Weight: w})
	}
	b := newLaneBatcher(sched, 8)

	bytes := map[netsim.TenantID]int{}
	total := 0
	for pickN := 0; pickN < 300; pickN++ {
		for id := range weights {
			ln := b.lanes[id]
			if ln == nil || len(ln.queue) < b.max {
				b.fill(id, b.max, 200)
			}
		}
		for _, c := range b.pick(false) {
			bytes[tenantOfCall(c)] += len(c.req)
			total += len(c.req)
		}
	}
	for id, w := range weights {
		want := float64(w) / 8.0
		got := float64(bytes[id]) / float64(total)
		if diff := got - want; diff < -0.10 || diff > 0.10 {
			t.Errorf("tenant %s byte share = %.3f, want %.3f ± 0.10", id, got, want)
		}
	}
}

// TestSchedulerStrictPriority: with both tiers backlogged, the high tier
// drains completely before the low tier contributes a single probe
// (starvation guard pushed out of the way).
func TestSchedulerStrictPriority(t *testing.T) {
	sched := NewScheduler(nil)
	sched.SetStarvationBound(1000)
	sched.SetPolicy("high", TenantPolicy{Priority: 2, Weight: 1})
	sched.SetPolicy("low", TenantPolicy{Priority: 0, Weight: 1})
	b := newLaneBatcher(sched, 4)
	b.fill("low", 12, 100)
	b.fill("high", 12, 100)

	var sequence []netsim.TenantID
	for b.npend > 0 {
		batch := b.pick(true) // force: priority order is what's under test
		if len(batch) == 0 {
			t.Fatal("pick made no progress on a non-empty backlog")
		}
		for _, c := range batch {
			sequence = append(sequence, tenantOfCall(c))
		}
	}
	if len(sequence) != 24 {
		t.Fatalf("scheduled %d calls, want 24", len(sequence))
	}
	for i, id := range sequence[:12] {
		if id != "high" {
			t.Fatalf("slot %d went to %q before the high tier drained", i, id)
		}
	}
	for i, id := range sequence[12:] {
		if id != "low" {
			t.Fatalf("slot %d went to %q, want low after high drained", 12+i, id)
		}
	}
}

// TestSchedulerPriorityFillDown: when the high tier cannot fill an
// envelope, the remaining slots go to the lower tier in the SAME
// envelope — sharing the frame delays nobody.
func TestSchedulerPriorityFillDown(t *testing.T) {
	sched := NewScheduler(nil)
	sched.SetPolicy("high", TenantPolicy{Priority: 1})
	sched.SetPolicy("low", TenantPolicy{Priority: 0})
	b := newLaneBatcher(sched, 8)
	b.fill("high", 3, 50)
	b.fill("low", 8, 50)

	batch := b.pick(true)
	if len(batch) != 8 {
		t.Fatalf("envelope has %d calls, want 8", len(batch))
	}
	for i := 0; i < 3; i++ {
		if tenantOfCall(batch[i]) != "high" {
			t.Errorf("slot %d = %q, want high first", i, tenantOfCall(batch[i]))
		}
	}
	for i := 3; i < 8; i++ {
		if tenantOfCall(batch[i]) != "low" {
			t.Errorf("slot %d = %q, want low fill-down", i, tenantOfCall(batch[i]))
		}
	}
}

// TestSchedulerStarvationBound: a low-tier lane facing a saturating
// high tier is passed over at most StarvationBound consecutive
// envelopes before the guard forces its head probe through.
func TestSchedulerStarvationBound(t *testing.T) {
	const bound = 3
	sched := NewScheduler(nil)
	sched.SetStarvationBound(bound)
	sched.SetPolicy("high", TenantPolicy{Priority: 1})
	sched.SetPolicy("low", TenantPolicy{Priority: 0})
	b := newLaneBatcher(sched, 4)
	b.fill("low", 6, 100)

	lowScheduled := 0
	passedSinceServed := 0
	for pickN := 0; pickN < 40 && lowScheduled < 2; pickN++ {
		// The high tier re-saturates before every envelope.
		if ln := b.lanes["high"]; ln == nil || len(ln.queue) < b.max {
			b.fill("high", b.max, 100)
		}
		served := false
		for _, c := range b.pick(true) {
			if tenantOfCall(c) == "low" {
				lowScheduled++
				served = true
			}
		}
		if served {
			passedSinceServed = 0
		} else {
			passedSinceServed++
			if passedSinceServed > bound {
				t.Fatalf("low lane passed over %d consecutive envelopes, bound is %d", passedSinceServed, bound)
			}
		}
	}
	if lowScheduled < 2 {
		t.Fatalf("low lane scheduled only %d probes under saturation", lowScheduled)
	}
}

// TestSchedulerQuotaAdmission: an over-quota tenant's probes are
// rejected at the lane gate with the typed error while other tenants'
// probes proceed.
func TestSchedulerQuotaAdmission(t *testing.T) {
	ledger := netsim.NewLedger()
	ledger.SetQuota("poor", 100)
	ledger.Charge("poor", 150) // already exhausted
	sched := NewScheduler(ledger)

	if err := sched.admit("poor"); err == nil {
		t.Fatal("admit(poor) = nil, want quota error")
	} else {
		var qe *netsim.QuotaError
		if !errors.As(err, &qe) || !errors.Is(err, netsim.ErrOverQuota) {
			t.Fatalf("admit(poor) = %v, want *QuotaError matching ErrOverQuota", err)
		}
		if qe.Tenant != "poor" || qe.Spent != 150 || qe.Quota != 100 {
			t.Errorf("QuotaError = %+v, want {poor 150 100}", qe)
		}
	}
	if err := sched.admit("rich"); err != nil {
		t.Errorf("admit(rich) = %v, want nil (no quota set)", err)
	}
	if err := sched.admit(""); err != nil {
		t.Errorf("admit(anonymous) = %v, want nil", err)
	}
}

// --- end-to-end multi-tenant batching --------------------------------------

func newTenantRemote(t *testing.T, sched *Scheduler, maxBatch, workers int) *Remote {
	t.Helper()
	objs := dataset.Uniform(300, dataset.World, 11)
	tr := netsim.ServeParallel(server.New("T", objs), workers)
	r, err := NewRemote("T", tr, netsim.DefaultLink(), 1,
		WithBatch(BatchConfig{MaxBatch: maxBatch, Linger: time.Second, MaxLinger: time.Second}),
		WithScheduler(sched))
	if err != nil {
		t.Fatal(err)
	}
	if sched.Ledger() != nil {
		r.Meter().SetLedger(sched.Ledger())
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// TestTenantAttributionExact: probes of two tenants co-batched into
// shared envelopes; every tenant column sums exactly to the link meter's
// total, and the ledger's spend equals the attributed wire bytes.
func TestTenantAttributionExact(t *testing.T) {
	ledger := netsim.NewLedger()
	sched := NewScheduler(ledger)
	r := newTenantRemote(t, sched, 4, 2)
	w := dataset.World

	ctxA := netsim.WithTenant(context.Background(), "alice")
	ctxB := netsim.WithTenant(context.Background(), "bob")
	var calls []*Call
	// Interleave submissions so envelopes mix tenants (4-cut over
	// alternating lanes → every full envelope carries both).
	for i := 0; i < 12; i++ {
		calls = append(calls, r.GoBatch(ctxA, [][]byte{wire.AppendCount(bufpool.Get(), w)})...)
		calls = append(calls, r.GoBatch(ctxB, [][]byte{wire.AppendWindow(bufpool.Get(), w)})...)
	}
	r.Flush()
	for i, c := range calls {
		if _, err := c.Frame(); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}

	total := r.Usage()
	var sum netsim.Usage
	ids := r.TenantIDs()
	if len(ids) != 2 {
		t.Fatalf("tenant ids = %v, want [alice bob]", ids)
	}
	for _, id := range ids {
		sum = sum.Add(r.TenantUsage(id))
	}
	if sum != total {
		t.Errorf("tenant columns sum %+v\n != link total %+v", sum, total)
	}
	var spent int64
	for _, id := range ids {
		spent += ledger.Spent(id)
	}
	if spent != int64(total.WireBytes) {
		t.Errorf("ledger spend %d != metered wire bytes %d", spent, total.WireBytes)
	}
}

// TestTenantQuotaRejectsMidStream: a tenant whose spend crosses its
// quota has subsequent probes rejected with the typed error, while the
// other tenant's probes keep completing correctly.
func TestTenantQuotaRejectsMidStream(t *testing.T) {
	ledger := netsim.NewLedger()
	ledger.SetQuota("poor", 2000)
	sched := NewScheduler(ledger)
	r := newTenantRemote(t, sched, 4, 2)
	w := dataset.World

	ctxPoor := netsim.WithTenant(context.Background(), "poor")
	ctxRich := netsim.WithTenant(context.Background(), "rich")
	var rejected, completed int
	for i := 0; i < 20; i++ {
		cp := r.GoBatch(ctxPoor, [][]byte{wire.AppendWindow(bufpool.Get(), w)})[0]
		cr := r.GoBatch(ctxRich, [][]byte{wire.AppendCount(bufpool.Get(), w)})[0]
		r.Flush()
		if _, err := cp.Frame(); err != nil {
			if !errors.Is(err, netsim.ErrOverQuota) {
				t.Fatalf("poor call %d failed with %v, want quota error", i, err)
			}
			rejected++
		}
		if n, err := cr.Count(); err != nil || n != 300 {
			t.Fatalf("rich call %d: count %d, %v — must be unaffected", i, n, err)
		}
	}
	if rejected == 0 {
		t.Fatal("poor tenant was never rejected despite exceeding its quota")
	}
	if spent := ledger.Spent("poor"); spent < 2000 {
		t.Errorf("poor spend %d never reached the quota boundary", spent)
	}
	completed = 20 - rejected
	if completed == 0 {
		t.Error("poor tenant completed nothing — quota should reject only after real spend")
	}
}

// TestMixedTenantEnvelopeSharesDeterministic: splitByShares-driven
// attribution of a shared envelope is deterministic across identical
// runs (sequential submissions, one worker).
func TestMixedTenantEnvelopeSharesDeterministic(t *testing.T) {
	run := func() (netsim.Usage, netsim.Usage) {
		sched := NewScheduler(nil)
		r := newTenantRemote(t, sched, 4, 1)
		w := dataset.World
		ctxA := netsim.WithTenant(context.Background(), "a")
		ctxB := netsim.WithTenant(context.Background(), "b")
		var calls []*Call
		for i := 0; i < 6; i++ {
			calls = append(calls, r.GoBatch(ctxA, [][]byte{wire.AppendCount(bufpool.Get(), w)})...)
			calls = append(calls, r.GoBatch(ctxB, [][]byte{wire.AppendCount(bufpool.Get(), w)})...)
		}
		r.Flush()
		for _, c := range calls {
			if _, err := c.Count(); err != nil {
				t.Fatal(err)
			}
		}
		return r.TenantUsage("a"), r.TenantUsage("b")
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Errorf("attribution differs across identical runs:\n a: %+v vs %+v\n b: %+v vs %+v", a1, a2, b1, b2)
	}
}

// TestSchedulerConcurrentSubmitters: many goroutines across several
// tenants hammer one scheduled batcher; everything completes correctly
// and the attribution stays exact. Run with -race.
func TestSchedulerConcurrentSubmitters(t *testing.T) {
	ledger := netsim.NewLedger()
	sched := NewScheduler(ledger)
	sched.SetPolicy("t0", TenantPolicy{Priority: 1, Weight: 2})
	sched.SetPolicy("t1", TenantPolicy{Priority: 0, Weight: 1})
	sched.SetPolicy("t2", TenantPolicy{Priority: 0, Weight: 3})
	r := newTenantRemote(t, sched, 8, 4)
	w := dataset.World

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for g := 0; g < 6; g++ {
		id := netsim.TenantID(fmt.Sprintf("t%d", g%3))
		wg.Add(1)
		go func(id netsim.TenantID) {
			defer wg.Done()
			ctx := netsim.WithTenant(context.Background(), id)
			for i := 0; i < 30; i++ {
				c := r.GoBatch(ctx, [][]byte{wire.AppendCount(bufpool.Get(), w)})[0]
				if i%7 == 0 {
					r.Flush()
				}
				if n, err := c.Count(); err != nil {
					errc <- fmt.Errorf("%s: %w", id, err)
					return
				} else if n != 300 {
					errc <- fmt.Errorf("%s: count %d", id, n)
					return
				}
			}
		}(id)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			case <-time.After(2 * time.Millisecond):
				r.Flush() // keep stragglers moving without relying on the linger
			}
		}
	}()
	wg.Wait()
	close(done)
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	total := r.Usage()
	var sum netsim.Usage
	for _, id := range r.TenantIDs() {
		sum = sum.Add(r.TenantUsage(id))
	}
	if sum != total {
		t.Errorf("tenant columns sum %+v != link total %+v", sum, total)
	}
	var spent int64
	for _, id := range r.TenantIDs() {
		spent += ledger.Spent(id)
	}
	if spent != int64(total.WireBytes) {
		t.Errorf("ledger spend %d != metered wire %d", spent, total.WireBytes)
	}
}
