package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/bufpool"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/wire"
)

func newBatched(t *testing.T, objs []geom.Object, cfg BatchConfig, workers int) *Remote {
	t.Helper()
	tr := netsim.ServeParallel(server.New("B", objs), workers)
	r, err := NewRemote("B", tr, netsim.DefaultLink(), 1, WithBatch(cfg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// TestGoBatchSizeTriggerOneFrame: submitting exactly MaxBatch requests in
// one GoBatch yields exactly one wire frame carrying all of them.
func TestGoBatchSizeTriggerOneFrame(t *testing.T) {
	objs := dataset.Uniform(200, dataset.World, 3)
	r := newBatched(t, objs, BatchConfig{MaxBatch: 8, Linger: time.Second}, 1)
	w := dataset.Bounds(objs).Expand(1)

	reqs := make([][]byte, 8)
	for i := range reqs {
		reqs[i] = wire.AppendCount(bufpool.Get(), w)
	}
	calls := r.GoBatch(context.Background(), reqs)
	for i, c := range calls {
		n, err := c.Count()
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if n != 200 {
			t.Fatalf("call %d: count %d, want 200", i, n)
		}
	}
	u := r.Usage()
	if u.Messages != 2 { // one MsgBatch up, one MsgBatchReply down
		t.Errorf("messages = %d, want 2 (one envelope each way)", u.Messages)
	}
	if r.BatchFrames() != 1 {
		t.Errorf("batch frames = %d, want 1", r.BatchFrames())
	}
}

// TestGoBatchFlushDispatchesPartial: a partial group is parked until an
// explicit Flush, then answered as one envelope.
func TestGoBatchFlushDispatchesPartial(t *testing.T) {
	objs := dataset.Uniform(50, dataset.World, 4)
	r := newBatched(t, objs, BatchConfig{MaxBatch: 16, Linger: time.Second, MaxLinger: time.Second}, 1)
	w := dataset.Bounds(objs).Expand(1)

	reqs := [][]byte{
		wire.AppendCount(bufpool.Get(), w),
		wire.AppendWindow(bufpool.Get(), w),
		wire.AppendRange(bufpool.Get(), w.Center(), 100),
	}
	calls := r.GoBatch(context.Background(), reqs)
	r.Flush()
	if n, err := calls[0].Count(); err != nil || n != 50 {
		t.Fatalf("count: %d, %v", n, err)
	}
	if objs, err := calls[1].Objects(); err != nil || len(objs) != 50 {
		t.Fatalf("window: %d objs, %v", len(objs), err)
	}
	if _, err := calls[2].Objects(); err != nil {
		t.Fatalf("range: %v", err)
	}
	if got := r.Usage().Messages; got != 2 {
		t.Errorf("messages = %d, want 2", got)
	}
}

// TestBatchLingerFlushesStragglers: with no Flush and no full batch, the
// linger timer dispatches a lone request.
func TestBatchLingerFlushesStragglers(t *testing.T) {
	objs := dataset.Uniform(10, dataset.World, 5)
	r := newBatched(t, objs, BatchConfig{MaxBatch: 64, Linger: time.Millisecond}, 1)
	w := dataset.Bounds(objs).Expand(1)

	c := r.GoBatch(context.Background(), [][]byte{wire.AppendCount(bufpool.Get(), w)})[0]
	start := time.Now()
	n, err := c.Count()
	if err != nil || n != 10 {
		t.Fatalf("count: %d, %v", n, err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("straggler waited %v for the linger flush", d)
	}
}

// TestBatchPerSubRequestErrors pins the satellite fix: a server-side
// error for one sub-request surfaces on that Call only; batch-mates
// succeed. (Transport-level failures, by contrast, fail the whole batch.)
func TestBatchPerSubRequestErrors(t *testing.T) {
	objs := dataset.Uniform(30, dataset.World, 6)
	r := newBatched(t, objs, BatchConfig{MaxBatch: 3, Linger: time.Second}, 1)
	w := dataset.Bounds(objs).Expand(1)

	reqs := [][]byte{
		wire.AppendCount(bufpool.Get(), w),
		wire.AppendMBRLevel(bufpool.Get(), 0), // refused: index not published
		wire.AppendCount(bufpool.Get(), w),
	}
	calls := r.GoBatch(context.Background(), reqs)
	if n, err := calls[0].Count(); err != nil || n != 30 {
		t.Fatalf("call 0: %d, %v", n, err)
	}
	_, err := calls[1].frame()
	var se *wire.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("call 1: err = %v, want *wire.ServerError", err)
	}
	if n, err := calls[2].Count(); err != nil || n != 30 {
		t.Fatalf("call 2: %d, %v", n, err)
	}
}

// TestBatchConcurrentCallersDemux: many goroutines submitting distinct
// probes through one batcher each get their own answer back.
func TestBatchConcurrentCallersDemux(t *testing.T) {
	// One object per unit cell so every probe has a distinguishable count.
	var objs []geom.Object
	for i := 0; i < 64; i++ {
		for j := 0; j <= i%4; j++ { // cell i holds (i%4)+1 coincident points
			objs = append(objs, geom.PointObject(uint32(len(objs)), geom.Pt(float64(i)+0.5, 0.5)))
		}
	}
	r := newBatched(t, objs, BatchConfig{MaxBatch: 8, Linger: 200 * time.Microsecond}, 4)

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := geom.R(float64(i), 0, float64(i)+1, 1)
			c := r.GoBatch(context.Background(), [][]byte{wire.AppendCount(bufpool.Get(), w)})[0]
			n, err := c.Count()
			if err != nil {
				errs <- err
				return
			}
			if want := i%4 + 1; n != want {
				errs <- fmt.Errorf("probe %d: count %d, want %d", i, n, want)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if f, msgs := r.BatchFrames(), int64(r.Usage().Messages); msgs >= 128 {
		t.Errorf("no coalescing happened: %d frames for 64 probes (%d messages)", f, msgs)
	}
}

// TestBatchTransportFaultRetriesWholeEnvelope: a dropped envelope is
// re-issued as a unit by the retry policy and every call still completes.
func TestBatchTransportFaultRetriesWholeEnvelope(t *testing.T) {
	objs := dataset.Uniform(40, dataset.World, 8)
	tr := netsim.NewFaulty(netsim.ServeParallel(server.New("B", objs), 2), netsim.FaultConfig{
		Seed: 9, DropProb: 0.5, MaxConsecutive: 3,
	})
	r, err := NewRemote("B", tr, netsim.DefaultLink(), 1,
		WithRetry(RetryPolicy{MaxAttempts: 10, Backoff: 10 * time.Microsecond}),
		WithBatch(BatchConfig{MaxBatch: 4, Linger: time.Second}))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	w := dataset.Bounds(objs).Expand(1)
	reqs := make([][]byte, 4)
	for i := range reqs {
		reqs[i] = wire.AppendCount(bufpool.Get(), w)
	}
	for i, c := range r.GoBatch(context.Background(), reqs) {
		if n, err := c.Count(); err != nil || n != 40 {
			t.Fatalf("call %d: %d, %v", i, n, err)
		}
	}
	if r.Retries() == 0 {
		t.Log("no faults injected this run (seed-dependent); retry path not exercised")
	}
}

// TestBatchAdaptiveLingerStaysBounded drives both adaptation directions
// and checks the linger never escapes its bounds.
func TestBatchAdaptiveLingerStaysBounded(t *testing.T) {
	objs := dataset.Uniform(10, dataset.World, 10)
	min, max := 100*time.Microsecond, 2*time.Millisecond
	r := newBatched(t, objs, BatchConfig{
		MaxBatch: 2, Linger: 500 * time.Microsecond, MinLinger: min, MaxLinger: max,
	}, 2)
	w := dataset.Bounds(objs).Expand(1)
	check := func() {
		l := r.b.linger.Load()
		if l < int64(min) || l > int64(max) {
			t.Fatalf("linger %v escaped [%v, %v]", time.Duration(l), min, max)
		}
	}
	// Size-trigger flushes (full batches) decay the linger.
	for i := 0; i < 20; i++ {
		reqs := [][]byte{wire.AppendCount(bufpool.Get(), w), wire.AppendCount(bufpool.Get(), w)}
		for _, c := range r.GoBatch(context.Background(), reqs) {
			if _, err := c.Count(); err != nil {
				t.Fatal(err)
			}
		}
		check()
	}
	// Timer flushes of lone stragglers halve it toward the floor.
	for i := 0; i < 10; i++ {
		c := r.GoBatch(context.Background(), [][]byte{wire.AppendCount(bufpool.Get(), w)})[0]
		if _, err := c.Count(); err != nil {
			t.Fatal(err)
		}
		check()
	}
}

// TestGoBatchWithoutBatcher: a remote without WithBatch still serves
// GoBatch (each request as its own concurrent round trip).
func TestGoBatchWithoutBatcher(t *testing.T) {
	objs := dataset.Uniform(20, dataset.World, 11)
	tr := netsim.ServeParallel(server.New("B", objs), 2)
	r, err := NewRemote("B", tr, netsim.DefaultLink(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.BatchEnabled() {
		t.Fatal("batching should be disabled by default")
	}
	w := dataset.Bounds(objs).Expand(1)
	reqs := [][]byte{wire.AppendCount(bufpool.Get(), w), wire.AppendCount(bufpool.Get(), w)}
	for _, c := range r.GoBatch(context.Background(), reqs) {
		if n, err := c.Count(); err != nil || n != 20 {
			t.Fatalf("count: %d, %v", n, err)
		}
	}
	if got := r.Usage().Messages; got != 4 {
		t.Errorf("messages = %d, want 4 (two bare round trips)", got)
	}
}
