package client

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/bufpool"
	"repro/internal/dataset"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/wire"
)

// This file pins the batcher-sharing bugfix sweep: the detached dispatch
// context (one caller's cancellation must not poison its batch-mates),
// frame recycling on round-trip failure, and the bounded dispatch
// goroutine spawn.

// gateRT parks every round trip until the gate opens, honoring the
// caller's context while parked (a parked trip abandoned by its context
// marks the frame retained, like a real transport would). It lets a test
// hold an envelope in flight at a precise point.
type gateRT struct {
	inner netsim.RoundTripper
	gate  chan struct{}
}

func (g *gateRT) RoundTrip(ctx context.Context, req []byte) ([]byte, error) {
	select {
	case <-g.gate:
	case <-ctx.Done():
		return nil, netsim.RetainFrame(ctx.Err())
	}
	return g.inner.RoundTrip(ctx, req)
}

func (g *gateRT) Close() error { return g.inner.Close() }

// failRT fails every round trip to completion: the transport is done with
// the frame (nothing retained), the query just didn't get an answer.
type failRT struct{}

func (failRT) RoundTrip(ctx context.Context, req []byte) ([]byte, error) {
	return nil, errors.New("link down")
}

func (failRT) Close() error { return nil }

// TestBatchCancelledCallerDoesNotPoisonBatchMates is the regression test
// for the shared-context dispatch bug: the envelope's round trip used to
// run under batch[0].ctx, so cancelling the first submitter killed every
// batch-mate's call with it. Post-fix the trip is detached — cancelled
// only when ALL batched contexts are done — the cancelled caller returns
// promptly with its own context error, and the mate completes normally.
func TestBatchCancelledCallerDoesNotPoisonBatchMates(t *testing.T) {
	objs := dataset.Uniform(40, dataset.World, 11)
	gate := &gateRT{inner: netsim.ServeParallel(server.New("B", objs), 2), gate: make(chan struct{})}
	r, err := NewRemote("B", gate, netsim.DefaultLink(), 1,
		WithBatch(BatchConfig{MaxBatch: 2, Linger: time.Second, MaxLinger: time.Second}))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	w := dataset.Bounds(objs).Expand(1)

	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	c1 := r.GoBatch(ctx1, [][]byte{wire.AppendCount(bufpool.Get(), w)})[0]
	// The second submission fills the batch: the envelope dispatches and
	// parks on the gate with both calls aboard.
	c2 := r.GoBatch(context.Background(), [][]byte{wire.AppendCount(bufpool.Get(), w)})[0]

	// Cancel the first caller while the envelope is still in flight. Its
	// call must settle promptly with the caller's own context error even
	// though the shared trip is parked.
	errc := make(chan error, 1)
	go func() {
		_, err := c1.Count()
		errc <- err
	}()
	cancel1()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled caller: err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled caller still blocked on the shared envelope")
	}

	// Open the gate: the batch-mate's half of the envelope must complete
	// normally — pre-fix the trip had already died with ctx1.
	close(gate.gate)
	n, err := c2.Count()
	if err != nil {
		t.Fatalf("batch-mate poisoned by sibling cancellation: %v", err)
	}
	if n != 40 {
		t.Fatalf("batch-mate count = %d, want 40", n)
	}
}

// TestBatchAllCancelledAbandonsEnvelope: the detachment has a far edge —
// once EVERY batched context is done, nobody wants the replies, and the
// derived trip context must cancel so the transport is released.
func TestBatchAllCancelledAbandonsEnvelope(t *testing.T) {
	objs := dataset.Uniform(10, dataset.World, 12)
	gate := &gateRT{inner: netsim.ServeParallel(server.New("B", objs), 2), gate: make(chan struct{})}
	defer close(gate.gate)
	r, err := NewRemote("B", gate, netsim.DefaultLink(), 1,
		WithBatch(BatchConfig{MaxBatch: 2, Linger: time.Second, MaxLinger: time.Second}))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	w := dataset.Bounds(objs).Expand(1)

	ctx1, cancel1 := context.WithCancel(context.Background())
	ctx2, cancel2 := context.WithCancel(context.Background())
	c1 := r.GoBatch(ctx1, [][]byte{wire.AppendCount(bufpool.Get(), w)})[0]
	c2 := r.GoBatch(ctx2, [][]byte{wire.AppendCount(bufpool.Get(), w)})[0]
	cancel1()
	cancel2()
	for i, c := range []*Call{c1, c2} {
		if _, err := c.Count(); !errors.Is(err, context.Canceled) {
			t.Fatalf("call %d: err = %v, want context.Canceled", i, err)
		}
	}
	// With all callers gone the trip context cancels and the parked
	// round trip returns; the dispatch goroutine must not linger on the
	// gate forever. Settle detection: the semaphore slot frees.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if len(r.b.sem) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("dispatch still parked after every caller abandoned the envelope")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRoundTripFailureRecyclesFrames pins the frame-recycling fix: a
// round trip that fails with every attempt run to completion must return
// the encoded envelope — and, via the dispatch path, the per-call request
// frames — to the pool. Pre-fix the failure path leaked the request
// buffer on every error, which this allocation bound catches (each leaked
// pooled buffer costs a fresh allocation on the next run).
func TestRoundTripFailureRecyclesFrames(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	r, err := NewRemote("F", failRT{}, netsim.DefaultLink(), 1,
		WithBatch(BatchConfig{MaxBatch: 4, Linger: time.Second, MaxLinger: time.Second}))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	w := dataset.World

	run := func() {
		for round := 0; round < 10; round++ {
			reqs := make([][]byte, 4)
			for i := range reqs {
				reqs[i] = wire.AppendCount(bufpool.Get(), w)
			}
			calls := r.GoBatch(context.Background(), reqs)
			for _, c := range calls {
				if _, err := c.Count(); err == nil {
					t.Fatal("round trip unexpectedly succeeded")
				}
			}
		}
	}
	run() // warm the pool and the batcher
	avg := testing.AllocsPerRun(50, run)
	// A run (10 failed envelopes) allocates call futures, channels, and
	// error wrappers — but no frame buffers: the forty request frames and
	// the ten envelopes all come from (and return to) the warm pool.
	// Leaking the envelope on the failure path — the pre-fix bug — adds
	// ten allocations per run; the observed steady state is ~190.
	t.Logf("allocs/run = %.1f", avg)
	if avg > 196 {
		t.Errorf("allocs/run = %.1f, want ≤ 196 (frame buffers leaking on the failure path?)", avg)
	}
}

// TestBatchDispatchBounded pins the bounded-spawn fix: size-triggered
// cuts used to launch one goroutine each with no limit, so a burst of
// submissions against a slow link stacked goroutines without bound. Now
// at most MaxInflight dispatches run at once and excess submitters block
// in GoBatch (backpressure), and everything drains without deadlock.
func TestBatchDispatchBounded(t *testing.T) {
	objs := dataset.Uniform(25, dataset.World, 13)
	const inflight, submitters = 2, 8
	gate := &gateRT{inner: netsim.ServeParallel(server.New("B", objs), inflight), gate: make(chan struct{})}
	r, err := NewRemote("B", gate, netsim.DefaultLink(), 1,
		WithBatch(BatchConfig{MaxBatch: 2, MaxInflight: inflight, Linger: time.Second, MaxLinger: time.Second}))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	w := dataset.Bounds(objs).Expand(1)

	base := runtime.NumGoroutine()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var calls []*Call
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			reqs := [][]byte{ // one full cut per submitter
				wire.AppendCount(bufpool.Get(), w),
				wire.AppendCount(bufpool.Get(), w),
			}
			cs := r.GoBatch(context.Background(), reqs)
			mu.Lock()
			calls = append(calls, cs...)
			mu.Unlock()
		}()
	}

	// While the gate is closed, the goroutine population must stay
	// bounded: the submitters themselves plus at most MaxInflight parked
	// dispatches (plus watcher/timer slack) — NOT one goroutine per cut.
	time.Sleep(50 * time.Millisecond)
	if n := runtime.NumGoroutine(); n > base+submitters+inflight+4 {
		t.Errorf("goroutines while gated = %d (base %d), want ≤ base+%d",
			n, base, submitters+inflight+4)
	}

	close(gate.gate)
	wg.Wait()
	r.Flush()
	for i, c := range calls {
		if n, err := c.Count(); err != nil || n != 25 {
			t.Fatalf("call %d: count %d, %v", i, n, err)
		}
	}
	if got, want := len(calls), 2*submitters; got != want {
		t.Fatalf("collected %d calls, want %d", got, want)
	}

	// Leak check: once drained, the population returns to the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > %d\n%s", runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(2 * time.Millisecond)
	}
}
