package server

import (
	"context"
	"strings"
	"testing"

	"repro/internal/client"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/netsim"
	"repro/internal/wire"
)

func newRemote(t *testing.T, objs []geom.Object, opts ...Option) *client.Remote {
	t.Helper()
	srv := New("test", objs, opts...)
	tr := netsim.Serve(srv)
	r, err := client.NewRemote("test", tr, netsim.DefaultLink(), 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func testObjects() []geom.Object {
	return []geom.Object{
		geom.PointObject(1, geom.Pt(10, 10)),
		geom.PointObject(2, geom.Pt(20, 20)),
		geom.PointObject(3, geom.Pt(90, 90)),
		{ID: 4, MBR: geom.R(50, 50, 60, 60)},
	}
}

func TestWindowQuery(t *testing.T) {
	r := newRemote(t, testObjects())
	objs, err := r.Window(context.Background(), geom.R(0, 0, 25, 25))
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("got %d objects, want 2", len(objs))
	}
}

func TestCountQuery(t *testing.T) {
	r := newRemote(t, testObjects())
	n, err := r.Count(context.Background(), geom.R(0, 0, 100, 100))
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("count = %d, want 4", n)
	}
	n, err = r.Count(context.Background(), geom.R(200, 200, 300, 300))
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("count = %d, want 0", n)
	}
}

func TestRangeQuery(t *testing.T) {
	r := newRemote(t, testObjects())
	objs, err := r.Range(context.Background(), geom.Pt(12, 10), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 1 || objs[0].ID != 1 {
		t.Fatalf("got %v", objs)
	}
	n, err := r.RangeCount(context.Background(), geom.Pt(15, 15), 10)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("range count = %d, want 2", n)
	}
}

func TestBucketRange(t *testing.T) {
	r := newRemote(t, testObjects())
	groups, err := r.BucketRange(context.Background(), []geom.Point{geom.Pt(10, 10), geom.Pt(0, 0), geom.Pt(55, 55)}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("got %d groups", len(groups))
	}
	if len(groups[0]) != 1 || groups[0][0].ID != 1 {
		t.Fatalf("group 0 = %v", groups[0])
	}
	if len(groups[1]) != 0 {
		t.Fatalf("group 1 = %v", groups[1])
	}
	if len(groups[2]) != 1 || groups[2][0].ID != 4 {
		t.Fatalf("group 2 = %v", groups[2])
	}
	ns, err := r.BucketRangeCount(context.Background(), []geom.Point{geom.Pt(10, 10), geom.Pt(0, 0)}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ns[0] != 1 || ns[1] != 0 {
		t.Fatalf("counts = %v", ns)
	}
}

func TestInfo(t *testing.T) {
	r := newRemote(t, testObjects())
	info, err := r.Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.Count != 4 {
		t.Fatalf("count = %d", info.Count)
	}
	if info.TreeHeight != 0 {
		t.Fatal("non-publishing server must not reveal tree height")
	}
	rp := newRemote(t, testObjects(), PublishIndex())
	info, err = rp.Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.TreeHeight < 1 {
		t.Fatal("publishing server should reveal tree height")
	}
}

func TestAvgArea(t *testing.T) {
	r := newRemote(t, testObjects())
	got, err := r.AvgArea(context.Background(), geom.R(45, 45, 65, 65))
	if err != nil {
		t.Fatal(err)
	}
	if got != 100 {
		t.Fatalf("avg area = %v, want 100", got)
	}
}

func TestIndexOpsRefusedByDefault(t *testing.T) {
	r := newRemote(t, testObjects())
	if _, err := r.LevelMBRs(context.Background(), 0); err == nil || !strings.Contains(err.Error(), "does not publish") {
		t.Fatalf("LevelMBRs should be refused, got %v", err)
	}
	if _, err := r.MBRMatch(context.Background(), []geom.Rect{geom.R(0, 0, 1, 1)}, 0); err == nil {
		t.Fatal("MBRMatch should be refused")
	}
	if _, err := r.UploadJoin(context.Background(), testObjects(), 1); err == nil {
		t.Fatal("UploadJoin should be refused")
	}
}

func TestIndexOpsWithPublishIndex(t *testing.T) {
	objs := dataset.GaussianClusters(1500, 4, 300, dataset.World, 3)
	r := newRemote(t, objs, PublishIndex())
	info, err := r.Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	mbrs, err := r.LevelMBRs(context.Background(), int(info.TreeHeight)-1)
	if err != nil {
		t.Fatal(err)
	}
	if len(mbrs) != 1 {
		t.Fatalf("root level should have 1 MBR, got %d", len(mbrs))
	}
	leaf, err := r.LevelMBRs(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(leaf) < 4 {
		t.Fatalf("leaf level too small: %d", len(leaf))
	}

	matched, err := r.MBRMatch(context.Background(), leaf[:3], 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(matched) == 0 {
		t.Fatal("leaf MBRs should match objects")
	}
	// No duplicates even when MBRs overlap.
	seen := map[uint32]bool{}
	for _, o := range matched {
		if seen[o.ID] {
			t.Fatalf("duplicate object %d in MBRMatch", o.ID)
		}
		seen[o.ID] = true
	}

	pairs, err := r.UploadJoin(context.Background(), objs[:50], 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 {
		t.Fatal("upload join of the dataset against itself should match")
	}
}

func TestMalformedRequestsReturnErrors(t *testing.T) {
	srv := New("test", testObjects())
	cases := [][]byte{
		nil,
		{},
		{byte(wire.MsgWindow)},         // truncated
		{byte(wire.MsgCount), 1, 2},    // truncated
		{byte(wire.MsgBucketRange), 0}, // truncated
		{200},                          // unknown type
		wire.EncodeObjects(nil),        // response type as request
		append(wire.EncodeWindow(geom.R(0, 0, 1, 1)), 0xFF), // trailing byte
	}
	for i, req := range cases {
		resp := srv.Handle(req)
		if wire.Type(resp) != wire.MsgError {
			t.Errorf("case %d: got %v, want ERROR", i, wire.Type(resp))
		}
	}
}

func TestServerOverTCP(t *testing.T) {
	objs := dataset.Uniform(200, dataset.World, 5)
	srv, err := netsim.ListenAndServe("127.0.0.1:0", New("tcp-test", objs))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr, err := netsim.DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	r, err := client.NewRemote("tcp-test", tr, netsim.DefaultLink(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	n, err := r.Count(context.Background(), dataset.World)
	if err != nil {
		t.Fatal(err)
	}
	if n != 200 {
		t.Fatalf("count over TCP = %d", n)
	}
	objs2, err := r.Window(context.Background(), dataset.World)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs2) != 200 {
		t.Fatalf("window over TCP = %d objects", len(objs2))
	}
	if r.Usage().WireBytes == 0 {
		t.Fatal("TCP traffic was not metered")
	}
}

func TestMeteringCountsQueriesAndBytes(t *testing.T) {
	r := newRemote(t, testObjects())
	if _, err := r.Count(context.Background(), geom.R(0, 0, 100, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Window(context.Background(), geom.R(0, 0, 100, 100)); err != nil {
		t.Fatal(err)
	}
	u := r.Usage()
	if u.Queries != 2 {
		t.Fatalf("queries = %d, want 2", u.Queries)
	}
	if u.Messages != 4 {
		t.Fatalf("messages = %d, want 4", u.Messages)
	}
	// COUNT reply is 9 bytes payload; wire adds one 40-byte header.
	link := netsim.DefaultLink()
	wantDown := link.TB(1+wire.CountSize) + link.TB(5+4*wire.ObjectSize)
	if u.DownWireBytes != wantDown {
		t.Fatalf("down wire bytes = %d, want %d", u.DownWireBytes, wantDown)
	}
}

func TestDeviceCanHold(t *testing.T) {
	d := client.Device{BufferObjects: 10}
	if !d.CanHold(10) || d.CanHold(11) {
		t.Fatal("buffer bound incorrect")
	}
	unlimited := client.Device{}
	if !unlimited.CanHold(1 << 30) {
		t.Fatal("zero buffer should mean unlimited")
	}
}
