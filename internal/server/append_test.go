package server

import (
	"bytes"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/wire"
)

// TestHandleAppendMatchesHandle replays every request type through both
// entry points and requires bit-identical response frames — the invariant
// that lets the transports recycle buffers without changing a single
// metered byte. It also exercises the pooled scratch across repeated
// calls, so stale scratch state (a dirty bitset, an untruncated slice)
// would surface as a diff.
func TestHandleAppendMatchesHandle(t *testing.T) {
	objs := dataset.GaussianClusters(2000, 4, 300, dataset.World, 42)
	srv := New("S", objs, PublishIndex())
	w := geom.R(2000, 2000, 7000, 7000)
	pts := []geom.Point{{X: 3000, Y: 3000}, {X: 5000, Y: 5000}, {X: 100, Y: 100}}
	up := objs[:50]

	reqs := [][]byte{
		wire.EncodeWindow(w),
		wire.EncodeCount(w),
		wire.EncodeAvgArea(w),
		wire.EncodeRange(geom.Pt(4000, 4000), 500),
		wire.EncodeRangeCount(geom.Pt(4000, 4000), 500),
		wire.EncodeBucketRange(pts, 400),
		wire.EncodeBucketRangeCount(pts, 400),
		wire.EncodeInfo(),
		wire.EncodeMBRLevel(0),
		wire.EncodeMBRMatch([]geom.Rect{w, geom.R(0, 0, 100, 100)}, 50),
		wire.EncodeUploadJoin(up, 200),
		{byte(wire.MsgInvalid)},  // unsupported type
		wire.EncodeWindow(w)[:5], // malformed frame
	}
	for round := 0; round < 3; round++ { // reuse scratch across rounds
		for i, req := range reqs {
			want := srv.Handle(req)
			got := srv.HandleAppend(req, nil)
			if !bytes.Equal(got, want) {
				t.Fatalf("round %d req %d (%v): HandleAppend diverges from Handle", round, i, wire.Type(req))
			}
			prefixed := srv.HandleAppend(req, []byte{0xFF})
			if len(prefixed) < 1 || prefixed[0] != 0xFF || !bytes.Equal(prefixed[1:], want) {
				t.Fatalf("round %d req %d (%v): HandleAppend prefix misuse", round, i, wire.Type(req))
			}
		}
	}
}

// TestMBRMatchSparseIDs drives the MBR-MATCH dedup through its map
// fallback: object ids near the top of the uint32 range must not make
// the server size a bitset by maxID, and the results must still be
// distinct and complete.
func TestMBRMatchSparseIDs(t *testing.T) {
	objs := []geom.Object{
		{ID: 1<<31 + 5, MBR: geom.R(0, 0, 10, 10)},
		{ID: 1<<32 - 1, MBR: geom.R(5, 5, 15, 15)},
		{ID: 3, MBR: geom.R(100, 100, 110, 110)},
	}
	srv := New("sparse", objs, PublishIndex())
	// Overlapping rects so both matching objects are seen twice.
	req := wire.EncodeMBRMatch([]geom.Rect{geom.R(0, 0, 20, 20), geom.R(4, 4, 16, 16)}, 0)
	for round := 0; round < 2; round++ { // second round reuses scratch
		got, err := wire.DecodeObjects(srv.Handle(req))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 {
			t.Fatalf("round %d: got %d objects, want 2 distinct", round, len(got))
		}
		if got[0].ID == got[1].ID {
			t.Fatalf("round %d: duplicate id %d", round, got[0].ID)
		}
	}
}

// TestHandleAppendSteadyStateAllocs verifies the tentpole: with a warmed
// scratch pool and a capacious destination buffer, answering aggregate
// queries allocates nothing.
func TestHandleAppendSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc counts are meaningless")
	}
	objs := dataset.GaussianClusters(5000, 4, 300, dataset.World, 43)
	srv := New("S", objs)
	countReq := wire.EncodeCount(geom.R(2000, 2000, 7000, 7000))
	rangeReq := wire.EncodeRangeCount(geom.Pt(4000, 4000), 600)
	windowReq := wire.EncodeWindow(geom.R(3000, 3000, 6000, 6000))
	dst := make([]byte, 0, 1<<20)
	// Warm the scratch pool and high-water marks.
	for i := 0; i < 8; i++ {
		srv.HandleAppend(countReq, dst)
		srv.HandleAppend(rangeReq, dst)
		srv.HandleAppend(windowReq, dst)
	}
	for name, req := range map[string][]byte{
		"count": countReq, "rangecount": rangeReq, "window": windowReq,
	} {
		req := req
		avg := testing.AllocsPerRun(200, func() {
			srv.HandleAppend(req, dst)
		})
		if avg > 0.05 {
			t.Errorf("%s: HandleAppend allocates %v times per request at steady state", name, avg)
		}
	}
}
