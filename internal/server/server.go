// Package server implements a non-cooperative spatial dataset server: it
// holds one dataset indexed by an aggregate R-tree and answers the
// primitive queries of the paper (§3) — WINDOW, COUNT, ε-RANGE — plus the
// bucket and aggregate variants of §3.1, over any transport from package
// netsim.
//
// Servers never expose their index to normal clients. The SemiJoin
// comparator of §5.3 requires an index-publishing, cooperative protocol;
// those message types are answered only when the server is constructed
// with PublishIndex, mirroring the paper's observation that "in practice,
// SemiJoin cannot be applied in our problem".
package server

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/memjoin"
	"repro/internal/rtree"
	"repro/internal/wire"
)

// Server answers wire-protocol requests for one spatial dataset.
// It implements netsim.Handler and is safe for concurrent requests
// (the tree is immutable after construction).
type Server struct {
	name         string
	tree         *rtree.Tree
	publishIndex bool
	pointData    bool
}

// Option configures a Server.
type Option func(*Server)

// PublishIndex enables the cooperative SemiJoin message types
// (MBR-LEVEL, MBR-MATCH, UPLOAD-JOIN). Off by default.
func PublishIndex() Option {
	return func(s *Server) { s.publishIndex = true }
}

// New builds a server named name (diagnostics only) over the given
// objects, bulk-loading the aR-tree.
func New(name string, objs []geom.Object, opts ...Option) *Server {
	s := &Server{name: name, tree: rtree.Bulk(objs), pointData: true}
	for _, o := range objs {
		if !o.IsPoint() {
			s.pointData = false
			break
		}
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Name returns the diagnostic name.
func (s *Server) Name() string { return s.name }

// Len returns the dataset cardinality.
func (s *Server) Len() int { return s.tree.Len() }

// Tree exposes the underlying index for in-process white-box tests.
func (s *Server) Tree() *rtree.Tree { return s.tree }

// Handle implements netsim.Handler: decode one request frame, answer one
// response frame. Malformed or unsupported requests produce MsgError
// frames rather than panics, so a misbehaving client cannot crash the
// server.
func (s *Server) Handle(req []byte) []byte {
	switch wire.Type(req) {
	case wire.MsgWindow:
		w, err := wire.DecodeWindowLike(req, wire.MsgWindow)
		if err != nil {
			return wire.EncodeError(err.Error())
		}
		return wire.EncodeObjects(s.tree.Search(w, nil))

	case wire.MsgCount:
		w, err := wire.DecodeWindowLike(req, wire.MsgCount)
		if err != nil {
			return wire.EncodeError(err.Error())
		}
		return wire.EncodeCountReply(int64(s.tree.Count(w)))

	case wire.MsgAvgArea:
		w, err := wire.DecodeWindowLike(req, wire.MsgAvgArea)
		if err != nil {
			return wire.EncodeError(err.Error())
		}
		return wire.EncodeFloatReply(s.tree.AvgArea(w))

	case wire.MsgRange:
		p, eps, err := wire.DecodeRangeLike(req, wire.MsgRange)
		if err != nil {
			return wire.EncodeError(err.Error())
		}
		return wire.EncodeObjects(s.tree.SearchDist(p, eps, nil))

	case wire.MsgRangeCount:
		p, eps, err := wire.DecodeRangeLike(req, wire.MsgRangeCount)
		if err != nil {
			return wire.EncodeError(err.Error())
		}
		return wire.EncodeCountReply(int64(s.tree.CountDist(p, eps)))

	case wire.MsgBucketRange:
		pts, eps, err := wire.DecodeBucketRangeLike(req, wire.MsgBucketRange)
		if err != nil {
			return wire.EncodeError(err.Error())
		}
		groups := make([][]geom.Object, len(pts))
		for i, p := range pts {
			groups[i] = s.tree.SearchDist(p, eps, nil)
		}
		return wire.EncodeBucketObjects(groups)

	case wire.MsgBucketRangeCount:
		pts, eps, err := wire.DecodeBucketRangeLike(req, wire.MsgBucketRangeCount)
		if err != nil {
			return wire.EncodeError(err.Error())
		}
		ns := make([]int64, len(pts))
		for i, p := range pts {
			ns[i] = int64(s.tree.CountDist(p, eps))
		}
		return wire.EncodeCountsReply(ns)

	case wire.MsgInfo:
		info := wire.Info{
			Count:     int64(s.tree.Len()),
			Bounds:    s.tree.Bounds(),
			PointData: s.pointData,
		}
		if s.publishIndex {
			info.TreeHeight = int32(s.tree.Height())
		}
		return wire.EncodeInfoReply(info)

	case wire.MsgMBRLevel:
		if !s.publishIndex {
			return wire.EncodeError(s.name + " does not publish its index")
		}
		level, err := wire.DecodeMBRLevel(req)
		if err != nil {
			return wire.EncodeError(err.Error())
		}
		mbrs, err := s.tree.LevelMBRs(level)
		if err != nil {
			return wire.EncodeError(err.Error())
		}
		return wire.EncodeRects(mbrs)

	case wire.MsgMBRMatch:
		if !s.publishIndex {
			return wire.EncodeError(s.name + " does not publish its index")
		}
		rects, eps, err := wire.DecodeMBRMatch(req)
		if err != nil {
			return wire.EncodeError(err.Error())
		}
		return wire.EncodeObjects(s.matchMBRs(rects, eps))

	case wire.MsgUploadJoin:
		if !s.publishIndex {
			return wire.EncodeError(s.name + " does not accept uploads")
		}
		objs, eps, err := wire.DecodeUploadJoin(req)
		if err != nil {
			return wire.EncodeError(err.Error())
		}
		return wire.EncodePairs(s.uploadJoin(objs, eps))

	default:
		return wire.EncodeError(fmt.Sprintf("%s: unsupported request %v", s.name, wire.Type(req)))
	}
}

// matchMBRs returns the distinct objects intersecting (within eps of) any
// of the rects.
func (s *Server) matchMBRs(rects []geom.Rect, eps float64) []geom.Object {
	seen := make(map[uint32]bool)
	var out []geom.Object
	for _, r := range rects {
		q := r
		if eps > 0 {
			q = r.Expand(eps)
		}
		for _, o := range s.tree.Search(q, nil) {
			if eps > 0 && !o.MBR.WithinDist(r, eps) {
				continue
			}
			if !seen[o.ID] {
				seen[o.ID] = true
				out = append(out, o)
			}
		}
	}
	return out
}

// uploadJoin joins uploaded objects against the local dataset and returns
// pairs (uploaded ID first). It reuses the device-side grid join.
func (s *Server) uploadJoin(objs []geom.Object, eps float64) []geom.Pair {
	local := s.tree.All(nil)
	pred := memjoin.Intersection()
	if eps > 0 {
		pred = memjoin.WithinDist(eps)
	}
	pairs := memjoin.GridJoin(objs, local, pred, memjoin.Options{}, nil)
	return memjoin.DedupPairs(pairs)
}
