// Package server implements a non-cooperative spatial dataset server: it
// holds one dataset indexed by an aggregate R-tree and answers the
// primitive queries of the paper (§3) — WINDOW, COUNT, ε-RANGE — plus the
// bucket and aggregate variants of §3.1, over any transport from package
// netsim.
//
// Servers never expose their index to normal clients. The SemiJoin
// comparator of §5.3 requires an index-publishing, cooperative protocol;
// those message types are answered only when the server is constructed
// with PublishIndex, mirroring the paper's observation that "in practice,
// SemiJoin cannot be applied in our problem".
//
// The handlers are allocation-free in steady state: requests decode into
// pooled per-handler scratch buffers, index queries run through the
// aR-tree's visitor traversals, and replies are appended into the
// caller-provided buffer (HandleAppend), so a serving loop that recycles
// its frame buffers (as both netsim transports do) stays off the
// allocator entirely.
package server

import (
	"fmt"
	"sync"

	"repro/internal/geom"
	"repro/internal/memjoin"
	"repro/internal/rtree"
	"repro/internal/wire"
)

// Server answers wire-protocol requests for one spatial dataset.
// It implements netsim.Handler and netsim.AppendHandler and is safe for
// concurrent requests (the tree is immutable after construction; mutable
// per-request state lives in pooled scratch).
type Server struct {
	name         string
	tree         *rtree.Tree
	publishIndex bool
	pointData    bool

	// all is the dataset in tree order, precomputed once so UPLOAD-JOIN
	// never re-materializes it per request. Only publishing servers can
	// receive UPLOAD-JOIN, so it is built only under PublishIndex.
	all []geom.Object
	// maxID sizes the scratch bitset used for MBR-MATCH deduplication
	// when denseIDs holds; dataset ids are dense in practice (datagen
	// numbers them 0..n-1), but nothing enforces that, so sparse id
	// spaces fall back to map-based dedup instead of a maxID-sized
	// bitset.
	maxID    uint32
	denseIDs bool

	scratch sync.Pool
}

// handlerScratch is the reusable per-request state of one in-flight
// Handle call. Every slice is truncated, never freed, so each field
// converges to its workload high-water mark.
type handlerScratch struct {
	objs    []geom.Object   // query results, flat across bucket groups
	lens    []int           // bucket reply group lengths
	pts     []geom.Point    // decoded bucket probe points
	rects   []geom.Rect     // decoded MBR-MATCH rectangles
	up      []geom.Object   // decoded UPLOAD-JOIN objects
	counts  []int64         // bucket aggregate answers
	pairs   []geom.Pair     // UPLOAD-JOIN results
	seen    []uint64        // MBR-MATCH dedup bitset (dense id spaces)
	seenMap map[uint32]bool // MBR-MATCH dedup fallback (sparse id spaces)
	subs    [][]byte        // decoded MsgBatch sub-frame views
	joiner  *memjoin.Joiner
}

// Option configures a Server.
type Option func(*Server)

// PublishIndex enables the cooperative SemiJoin message types
// (MBR-LEVEL, MBR-MATCH, UPLOAD-JOIN). Off by default.
func PublishIndex() Option {
	return func(s *Server) { s.publishIndex = true }
}

// New builds a server named name (diagnostics only) over the given
// objects, bulk-loading the aR-tree.
func New(name string, objs []geom.Object, opts ...Option) *Server {
	s := &Server{name: name, tree: rtree.Bulk(objs), pointData: true}
	for _, o := range objs {
		if !o.IsPoint() {
			s.pointData = false
		}
		if o.ID > s.maxID {
			s.maxID = o.ID
		}
	}
	// The bitset costs maxID/64 words per scratch, which is only a win
	// while ids stay within a small multiple of the cardinality.
	s.denseIDs = int64(s.maxID) <= 4*int64(len(objs))+1024
	s.scratch.New = func() any {
		return &handlerScratch{joiner: memjoin.NewJoiner()}
	}
	for _, o := range opts {
		o(s)
	}
	if s.publishIndex {
		// Only publishing servers answer UPLOAD-JOIN, the one consumer of
		// the materialized dataset snapshot.
		s.all = s.tree.All(nil)
	}
	return s
}

// Name returns the diagnostic name.
func (s *Server) Name() string { return s.name }

// Len returns the dataset cardinality.
func (s *Server) Len() int { return s.tree.Len() }

// Tree exposes the underlying index for in-process white-box tests.
func (s *Server) Tree() *rtree.Tree { return s.tree }

// Handle implements netsim.Handler: decode one request frame, answer one
// freshly allocated response frame. Transports that recycle buffers use
// HandleAppend instead; both produce bit-identical frames.
func (s *Server) Handle(req []byte) []byte {
	return s.HandleAppend(req, nil)
}

// HandleAppend implements netsim.AppendHandler: decode one request frame
// and append exactly one response frame to dst, returning the extended
// slice. Malformed or unsupported requests produce MsgError frames rather
// than panics, so a misbehaving client cannot crash the server. The
// request frame is not retained, and with a capacious dst the call does
// not allocate.
func (s *Server) HandleAppend(req, dst []byte) []byte {
	sc := s.scratch.Get().(*handlerScratch)
	defer s.scratch.Put(sc)

	if wire.Type(req) == wire.MsgBatch {
		return s.handleBatch(req, dst, sc)
	}
	return s.handleOne(req, dst, sc)
}

// handleBatch answers a MsgBatch envelope: one MsgBatchReply carrying one
// response sub-frame per sub-request, in order. Sub-requests are handled
// independently — a malformed, unsupported, or refused sub-request yields
// a MsgError *sub*-frame in its slot while its batch-mates are answered
// normally; only a malformed envelope fails the frame as a whole. The
// scratch is reused across sub-requests (each handler resets the fields
// it touches), so a batch of N probes costs the same server-side state as
// N separate frames.
func (s *Server) handleBatch(req, dst []byte, sc *handlerScratch) []byte {
	// The sub views alias the request frame; drop them before returning —
	// on the error path too, where the decoder may have appended some
	// views before failing — so the pooled scratch does not pin the
	// transport's recycled buffer.
	defer func() {
		for i := range sc.subs {
			sc.subs[i] = nil
		}
	}()
	var err error
	sc.subs, err = wire.DecodeBatchAppend(req, wire.MsgBatch, sc.subs[:0])
	if err != nil {
		return wire.AppendError(dst, err.Error())
	}
	dst = wire.AppendBatchReplyHeader(dst, len(sc.subs))
	for _, sub := range sc.subs {
		var off int
		dst, off = wire.BeginBatchEntry(dst)
		if wire.Type(sub) == wire.MsgBatch {
			dst = wire.AppendError(dst, s.name+": nested batch")
		} else {
			dst = s.handleOne(sub, dst, sc)
		}
		dst = wire.EndBatchEntry(dst, off)
	}
	return dst
}

// handleOne answers a single (non-batch) request frame into dst.
func (s *Server) handleOne(req, dst []byte, sc *handlerScratch) []byte {
	switch wire.Type(req) {
	case wire.MsgWindow:
		w, err := wire.DecodeWindowLike(req, wire.MsgWindow)
		if err != nil {
			return wire.AppendError(dst, err.Error())
		}
		sc.objs = s.tree.Search(w, sc.objs[:0])
		return wire.AppendObjects(dst, sc.objs)

	case wire.MsgCount:
		w, err := wire.DecodeWindowLike(req, wire.MsgCount)
		if err != nil {
			return wire.AppendError(dst, err.Error())
		}
		return wire.AppendCountReply(dst, int64(s.tree.Count(w)))

	case wire.MsgAvgArea:
		w, err := wire.DecodeWindowLike(req, wire.MsgAvgArea)
		if err != nil {
			return wire.AppendError(dst, err.Error())
		}
		return wire.AppendFloatReply(dst, s.tree.AvgArea(w))

	case wire.MsgRange:
		p, eps, err := wire.DecodeRangeLike(req, wire.MsgRange)
		if err != nil {
			return wire.AppendError(dst, err.Error())
		}
		sc.objs = s.tree.SearchDist(p, eps, sc.objs[:0])
		return wire.AppendObjects(dst, sc.objs)

	case wire.MsgRangeCount:
		p, eps, err := wire.DecodeRangeLike(req, wire.MsgRangeCount)
		if err != nil {
			return wire.AppendError(dst, err.Error())
		}
		return wire.AppendCountReply(dst, int64(s.tree.CountDist(p, eps)))

	case wire.MsgBucketRange:
		var eps float64
		var err error
		sc.pts, eps, err = wire.DecodeBucketRangeLikeAppend(req, wire.MsgBucketRange, sc.pts[:0])
		if err != nil {
			return wire.AppendError(dst, err.Error())
		}
		sc.objs = sc.objs[:0]
		sc.lens = sc.lens[:0]
		for _, p := range sc.pts {
			before := len(sc.objs)
			sc.objs = s.tree.SearchDist(p, eps, sc.objs)
			sc.lens = append(sc.lens, len(sc.objs)-before)
		}
		return wire.AppendBucketObjectsFlat(dst, sc.lens, sc.objs)

	case wire.MsgBucketRangeCount:
		var eps float64
		var err error
		sc.pts, eps, err = wire.DecodeBucketRangeLikeAppend(req, wire.MsgBucketRangeCount, sc.pts[:0])
		if err != nil {
			return wire.AppendError(dst, err.Error())
		}
		sc.counts = sc.counts[:0]
		for _, p := range sc.pts {
			sc.counts = append(sc.counts, int64(s.tree.CountDist(p, eps)))
		}
		return wire.AppendCountsReply(dst, sc.counts)

	case wire.MsgInfo:
		info := wire.Info{
			Count:     int64(s.tree.Len()),
			Bounds:    s.tree.Bounds(),
			PointData: s.pointData,
		}
		if s.publishIndex {
			info.TreeHeight = int32(s.tree.Height())
		}
		return wire.AppendInfoReply(dst, info)

	case wire.MsgMBRLevel:
		if !s.publishIndex {
			return wire.AppendError(dst, s.name+" does not publish its index")
		}
		level, err := wire.DecodeMBRLevel(req)
		if err != nil {
			return wire.AppendError(dst, err.Error())
		}
		mbrs, err := s.tree.LevelMBRs(level)
		if err != nil {
			return wire.AppendError(dst, err.Error())
		}
		return wire.AppendRects(dst, mbrs)

	case wire.MsgMBRMatch:
		if !s.publishIndex {
			return wire.AppendError(dst, s.name+" does not publish its index")
		}
		var eps float64
		var err error
		sc.rects, eps, err = wire.DecodeMBRMatchAppend(req, sc.rects[:0])
		if err != nil {
			return wire.AppendError(dst, err.Error())
		}
		sc.objs = s.matchMBRs(sc, sc.rects, eps)
		return wire.AppendObjects(dst, sc.objs)

	case wire.MsgUploadJoin:
		if !s.publishIndex {
			return wire.AppendError(dst, s.name+" does not accept uploads")
		}
		var eps float64
		var err error
		sc.up, eps, err = wire.DecodeUploadJoinAppend(req, sc.up[:0])
		if err != nil {
			return wire.AppendError(dst, err.Error())
		}
		return wire.AppendPairs(dst, s.uploadJoin(sc, sc.up, eps))

	default:
		return wire.AppendError(dst, fmt.Sprintf("%s: unsupported request %v", s.name, wire.Type(req)))
	}
}

// matchMBRs collects into sc.objs the distinct objects intersecting
// (within eps of) any of the rects, in first-seen traversal order —
// identical to the historical map-based implementation. Dense id spaces
// dedup through the scratch bitset; sparse ones (where a maxID-sized
// bitset would dwarf the dataset) fall back to the scratch map, which
// scales with the result instead.
func (s *Server) matchMBRs(sc *handlerScratch, rects []geom.Rect, eps float64) []geom.Object {
	var dedup func(id uint32) bool // reports first sighting
	if s.denseIDs {
		words := int(s.maxID/64) + 1
		if cap(sc.seen) < words {
			sc.seen = make([]uint64, words)
		} else {
			sc.seen = sc.seen[:words]
			for i := range sc.seen {
				sc.seen[i] = 0
			}
		}
		dedup = func(id uint32) bool {
			if sc.seen[id/64]&(1<<(id%64)) != 0 {
				return false
			}
			sc.seen[id/64] |= 1 << (id % 64)
			return true
		}
	} else {
		if sc.seenMap == nil {
			sc.seenMap = make(map[uint32]bool)
		} else {
			clear(sc.seenMap)
		}
		dedup = func(id uint32) bool {
			if sc.seenMap[id] {
				return false
			}
			sc.seenMap[id] = true
			return true
		}
	}
	out := sc.objs[:0]
	for _, r := range rects {
		q := r
		if eps > 0 {
			q = r.Expand(eps)
		}
		r := r
		s.tree.SearchFunc(q, func(o geom.Object) bool {
			if eps > 0 && !o.MBR.WithinDist(r, eps) {
				return true
			}
			if dedup(o.ID) {
				out = append(out, o)
			}
			return true
		})
	}
	sc.objs = out
	return out
}

// uploadJoin joins uploaded objects against the local dataset and returns
// pairs (uploaded ID first). It reuses the device-side grid join through
// the scratch's Joiner and pair buffer.
func (s *Server) uploadJoin(sc *handlerScratch, objs []geom.Object, eps float64) []geom.Pair {
	pred := memjoin.Intersection()
	if eps > 0 {
		pred = memjoin.WithinDist(eps)
	}
	sc.pairs = sc.joiner.GridJoin(objs, s.all, pred, memjoin.Options{}, sc.pairs[:0])
	sc.pairs = memjoin.DedupPairs(sc.pairs)
	return sc.pairs
}
