package server

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/wire"
)

// TestHandleBatchMatchesIndividualReplies is the core batching
// invariant on the server side: every sub-reply of a MsgBatchReply is
// bit-identical to the frame the server would have produced for the same
// request sent alone.
func TestHandleBatchMatchesIndividualReplies(t *testing.T) {
	objs := dataset.GaussianClusters(500, 3, 300, dataset.World, 5)
	srv := New("R", objs)
	bounds := srv.Tree().Bounds()

	reqs := [][]byte{
		wire.EncodeCount(bounds),
		wire.EncodeWindow(bounds),
		wire.EncodeRange(bounds.Center(), 400),
		wire.EncodeRangeCount(bounds.Center(), 400),
		wire.EncodeAvgArea(bounds),
		wire.EncodeInfo(),
		wire.EncodeBucketRange([]geom.Point{bounds.Center(), {X: 0, Y: 0}}, 250),
	}
	resp := srv.Handle(wire.EncodeBatch(reqs))
	subs, err := wire.DecodeBatch(resp, wire.MsgBatchReply)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != len(reqs) {
		t.Fatalf("%d sub-replies, want %d", len(subs), len(reqs))
	}
	for i, req := range reqs {
		solo := srv.Handle(req)
		if !bytes.Equal(subs[i], solo) {
			t.Errorf("sub-reply %d (%v) differs from solo reply", i, wire.Type(req))
		}
	}
}

// TestHandleBatchPerSubErrors pins the error isolation contract: a bad
// sub-request produces a MsgError sub-frame in its slot while its
// batch-mates are answered normally.
func TestHandleBatchPerSubErrors(t *testing.T) {
	srv := New("R", dataset.Uniform(100, dataset.World, 1))
	// Expand beyond the dataset hull so the float32 wire rounding of the
	// window cannot clip hull objects out of the COUNT.
	w := srv.Tree().Bounds().Expand(1)

	reqs := [][]byte{
		wire.EncodeCount(w),
		{byte(wire.MsgWindow), 1, 2},                  // truncated window
		wire.EncodeMBRLevel(0),                        // refused: index not published
		wire.EncodeBatch([][]byte{wire.EncodeInfo()}), // nested batch
		wire.EncodeCount(w),
	}
	resp := srv.Handle(wire.EncodeBatch(reqs))
	subs, err := wire.DecodeBatch(resp, wire.MsgBatchReply)
	if err != nil {
		t.Fatal(err)
	}
	wantTypes := []wire.MsgType{
		wire.MsgCountReply, wire.MsgError, wire.MsgError, wire.MsgError, wire.MsgCountReply,
	}
	for i, want := range wantTypes {
		if got := wire.Type(subs[i]); got != want {
			t.Errorf("sub %d type = %v, want %v", i, got, want)
		}
	}
	if n, err := wire.DecodeCountReply(subs[0]); err != nil || n != 100 {
		t.Errorf("sub 0 count = %d, %v; want 100", n, err)
	}
	var serr *wire.ServerError
	if err := wire.DecodeError(subs[3]); !errors.As(err, &serr) {
		t.Errorf("nested batch sub: %v, want ServerError", err)
	}
}

// TestHandleBatchMalformedEnvelope: only a broken envelope fails the
// whole frame.
func TestHandleBatchMalformedEnvelope(t *testing.T) {
	srv := New("R", dataset.Uniform(10, dataset.World, 1))
	resp := srv.Handle([]byte{byte(wire.MsgBatch), 9, 0, 0, 0})
	if wire.Type(resp) != wire.MsgError {
		t.Fatalf("reply type = %v, want MsgError", wire.Type(resp))
	}
}

// TestHandleBatchEmpty: an empty batch is answered with an empty reply.
func TestHandleBatchEmpty(t *testing.T) {
	srv := New("R", dataset.Uniform(10, dataset.World, 1))
	resp := srv.Handle(wire.EncodeBatch(nil))
	subs, err := wire.DecodeBatch(resp, wire.MsgBatchReply)
	if err != nil || len(subs) != 0 {
		t.Fatalf("empty batch: subs %d, err %v", len(subs), err)
	}
}
