package server

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/wire"
)

// FuzzHandleAppend throws arbitrary frames — including batch envelopes
// wrapping arbitrary sub-frames — at a live server. The contract under
// test: no input panics, and every input gets exactly one well-formed
// reply frame (a batch gets a batch reply or a whole-frame error; any
// other input gets a single reply frame).
func FuzzHandleAppend(f *testing.F) {
	objs := dataset.GaussianClusters(200, 2, 300, dataset.World, 1)
	srv := New("F", objs, PublishIndex())
	bounds := srv.Tree().Bounds()

	f.Add(wire.EncodeCount(bounds))
	f.Add(wire.EncodeWindow(bounds))
	f.Add(wire.EncodeRange(bounds.Center(), 100))
	f.Add(wire.EncodeBucketRangeCount([]geom.Point{bounds.Center()}, 50))
	f.Add(wire.EncodeMBRLevel(1))
	f.Add(wire.EncodeInfo())
	f.Add(wire.EncodeBatch([][]byte{wire.EncodeCount(bounds), wire.EncodeInfo()}))
	f.Add(wire.EncodeBatch([][]byte{wire.EncodeBatch(nil)}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, frame []byte) {
		resp := srv.Handle(frame)
		if len(resp) == 0 {
			t.Fatalf("empty reply for %x", frame)
		}
		if wire.Type(frame) == wire.MsgBatch {
			if wire.Type(resp) == wire.MsgError {
				return // malformed envelope, refused whole
			}
			subs, err := wire.DecodeBatch(resp, wire.MsgBatchReply)
			if err != nil {
				t.Fatalf("batch reply does not decode: %v", err)
			}
			if reqs, rerr := wire.DecodeBatch(frame, wire.MsgBatch); rerr == nil && len(subs) != len(reqs) {
				t.Fatalf("%d sub-replies for %d sub-requests", len(subs), len(reqs))
			}
		}
	})
}
