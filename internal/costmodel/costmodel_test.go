package costmodel

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func params() Params {
	p := Default()
	p.Buffer = 800
	return p
}

func stats(nr, ns int, eps float64) Stats {
	return Stats{W: geom.R(0, 0, 1000, 1000), NR: nr, NS: ns, Eps: eps}
}

func TestTaqMatchesEquation7(t *testing.T) {
	p := params()
	// Taq = (BH+BQ) + (BH+BA)
	want := float64(40+p.BQ) + float64(40+p.BA)
	if got := p.Taq(); got != want {
		t.Fatalf("Taq = %v, want %v", got, want)
	}
}

func TestC1MatchesEquation2(t *testing.T) {
	p := params()
	st := stats(100, 200, 5)
	want := 2*p.QueryBytes() + p.TB(100*p.BObj) + p.TB(200*p.BObj)
	if got := p.C1(st); math.Abs(got-want) > 1e-9 {
		t.Fatalf("C1 = %v, want %v", got, want)
	}
}

func TestC1InfeasibleWhenBufferExceeded(t *testing.T) {
	p := params()
	if got := p.C1(stats(500, 301, 5)); !math.IsInf(got, 1) {
		t.Fatalf("C1 over buffer = %v, want +Inf", got)
	}
	if got := p.C1(stats(500, 300, 5)); math.IsInf(got, 1) {
		t.Fatal("C1 at buffer limit should be finite")
	}
	p.Buffer = 0 // unlimited
	if got := p.C1(stats(1e6, 1e6, 5)); math.IsInf(got, 1) {
		t.Fatal("C1 with unlimited buffer should be finite")
	}
}

func TestC2MatchesEquation4(t *testing.T) {
	p := params()
	st := stats(10, 1000, 20)
	perProbe := math.Pi * 20 * 20 / (1000 * 1000) * 1000 // π ε² / area × |Sw|
	tdq := p.QueryBytes() + p.TB(int(math.Ceil(perProbe*float64(p.BObj))))
	want := p.QueryBytes() + p.TB(10*p.BObj) + 10*tdq
	if got := p.C2(st); math.Abs(got-want) > 1e-9 {
		t.Fatalf("C2 = %v, want %v", got, want)
	}
}

func TestC3IsSymmetricToC2(t *testing.T) {
	p := params()
	st := stats(10, 1000, 20)
	swapped := stats(1000, 10, 20)
	if got, want := p.C3(st), p.C2(swapped); math.Abs(got-want) > 1e-9 {
		t.Fatalf("C3 = %v, want C2 of swapped = %v", got, want)
	}
}

func TestC2PrefersSmallOuter(t *testing.T) {
	p := params()
	st := stats(10, 5000, 10)
	if c2, c3 := p.C2(st), p.C3(st); c2 >= c3 {
		t.Fatalf("with tiny R, C2 (%v) should beat C3 (%v)", c2, c3)
	}
	st = stats(5000, 10, 10)
	if c2, c3 := p.C2(st), p.C3(st); c3 >= c2 {
		t.Fatalf("with tiny S, C3 (%v) should beat C2 (%v)", c3, c2)
	}
}

func TestBucketCheaperThanSingleProbes(t *testing.T) {
	p := params()
	st := stats(200, 2000, 10)
	single := p.C2(st)
	p.Bucket = true
	bucket := p.C2(st)
	if bucket >= single {
		t.Fatalf("bucket C2 (%v) should be cheaper than single-probe C2 (%v)", bucket, single)
	}
}

func TestProbeAreaPointsVsRects(t *testing.T) {
	stPoints := stats(10, 100, 5)
	stRects := stats(10, 100, 5)
	stRects.AvgAreaR, stRects.AvgAreaS = 100, 100
	if ap, ar := stPoints.probeArea(0, 0), stRects.probeArea(100, 100); ar <= ap {
		t.Fatalf("rect probes (%v) should cover more area than point probes (%v)", ar, ap)
	}
	// Intersection join of points: zero probe area.
	stZero := stats(10, 100, 0)
	if got := stZero.probeArea(0, 0); got != 0 {
		t.Fatalf("point intersection probe area = %v, want 0", got)
	}
}

func TestExpectedProbeResultClamped(t *testing.T) {
	st := Stats{W: geom.R(0, 0, 1, 1), NR: 1, NS: 100, Eps: 10}
	if got := st.expectedProbeResult(100, 0, 0); got != 100 {
		t.Fatalf("expected clamp to |inner|, got %v", got)
	}
	stDeg := Stats{W: geom.RectFromPoint(geom.Pt(1, 1)), NS: 7, Eps: 1}
	if got := stDeg.expectedProbeResult(7, 0, 0); got != 7 {
		t.Fatalf("degenerate window should assume all inner objects, got %v", got)
	}
}

func TestC4UniformIncludesAggregateCost(t *testing.T) {
	p := params()
	st := stats(0, 0, 5)
	// Empty window: just the 2k² aggregate queries.
	if got, want := p.C4Uniform(st, 2), 8*p.Taq(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("C4(empty) = %v, want %v", got, want)
	}
}

func TestC4UniformGrowsWithK(t *testing.T) {
	p := params()
	st := stats(4, 4, 5)
	// With almost no data, more partitions just cost more aggregates.
	if c2, c4 := p.C4Uniform(st, 2), p.C4Uniform(st, 4); c4 <= c2 {
		t.Fatalf("k=4 (%v) should cost more than k=2 (%v) on tiny data", c4, c2)
	}
}

func TestC4UniformTerminates(t *testing.T) {
	p := params()
	st := stats(1_000_000, 1_000_000, 5)
	got := p.C4Uniform(st, 2)
	if math.IsInf(got, 1) || math.IsNaN(got) || got <= 0 {
		t.Fatalf("C4 on huge input = %v", got)
	}
}

func TestBestPhysical(t *testing.T) {
	p := params()
	// Small balanced inputs: HBSJ should win (no probe overhead).
	op, cost := p.BestPhysical(stats(50, 50, 5))
	if op != 1 || math.IsInf(cost, 1) {
		t.Fatalf("op = %d cost = %v, want HBSJ", op, cost)
	}
	// Huge S, tiny R, over buffer: NLSJ with outer R (op 2).
	op, _ = p.BestPhysical(stats(3, 5000, 5))
	if op != 2 {
		t.Fatalf("op = %d, want 2 (outer R)", op)
	}
	// Huge R, tiny S, over buffer: NLSJ with outer S (op 3).
	op, _ = p.BestPhysical(stats(5000, 3, 5))
	if op != 3 {
		t.Fatalf("op = %d, want 3 (outer S)", op)
	}
}

func TestAsymmetricPricesShiftChoice(t *testing.T) {
	p := params()
	p.Buffer = 1 // force NLSJ
	st := stats(100, 100, 5)
	// Equal sizes, but downloading from S is 10× more expensive, so the
	// cheaper plan downloads the outer from R (C2: outer R, probes to S)
	// only if probe traffic is small... compare both directions under
	// both tariffs and assert the ordering flips.
	p.PriceS = 10
	c2exp, c3exp := p.C2(st), p.C3(st)
	p.PriceS = 1
	p.PriceR = 10
	c2cheap, c3cheap := p.C2(st), p.C3(st)
	if (c2exp < c3exp) == (c2cheap < c3cheap) {
		t.Fatalf("tariff change should flip NLSJ direction: (%v,%v) vs (%v,%v)",
			c2exp, c3exp, c2cheap, c3cheap)
	}
}

func TestQueryBytesAndBH(t *testing.T) {
	p := params()
	if p.BH() != 40 {
		t.Fatalf("BH = %d", p.BH())
	}
	if p.QueryBytes() != float64(40+p.BQ) {
		t.Fatalf("QueryBytes = %v", p.QueryBytes())
	}
}
