// Package costmodel implements the transfer-cost model of §3.1 of the
// paper: equations (1)-(8) estimating the bytes (and monetary cost) of
// executing each candidate physical operator on a window, given only the
// object counts |Rw| and |Sw| obtained from COUNT queries.
//
// The model is used by the join algorithms to *decide*; the bytes the
// experiments *report* are metered on the transport (package netsim) and
// are independent of these estimates.
package costmodel

import (
	"math"

	"repro/internal/geom"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// Params bundles the constants of the model.
type Params struct {
	// Link provides MTU and BH for Eq. (1).
	Link netsim.LinkConfig
	// BQ is the size of a query frame in bytes.
	BQ int
	// BA is the size of an aggregate answer in bytes.
	BA int
	// BObj is the size of one object record in bytes.
	BObj int
	// PriceR and PriceS are the per-byte tariffs bR and bS.
	PriceR, PriceS float64
	// Buffer is the device's object capacity; HBSJ is infeasible (cost
	// +Inf) when |Rw|+|Sw| exceeds it.
	Buffer int
	// Bucket selects the bucket-query variants (Eq. 6) for NLSJ costs.
	Bucket bool
}

// The record sizes of §3.1, derived from the wire format in exactly one
// place so a protocol change cannot desynchronize the model from the
// bytes the meter will actually charge. The compile-time pins below fail
// the build when the wire layout shifts: that is deliberate — re-derive
// the golden byte tables and update the pins in the same change, never
// let the model drift silently.
const (
	// BQWire is the size of a window/count query frame: one type byte
	// plus an encoded rectangle.
	BQWire = 1 + wire.RectSize
	// BAWire is the size of an aggregate answer record.
	BAWire = wire.CountSize
	// BObjWire is the size of one object record (the paper's BObj = 20).
	BObjWire = wire.ObjectSize
)

// Compile-time guards: each pair underflows (negative untyped constant
// converted to uint) unless the wire constant still has the pinned
// value the cost model and golden tables were calibrated against.
const (
	_ uint = BQWire - 17
	_ uint = 17 - BQWire
	_ uint = BAWire - 8
	_ uint = 8 - BAWire
	_ uint = BObjWire - 20
	_ uint = 20 - BObjWire
)

// Default returns the parameters used throughout the experiments: WiFi
// link, 20-byte objects, equal unit tariffs, and an 800-object buffer.
func Default() Params {
	return Params{
		Link:   netsim.DefaultLink(),
		BQ:     BQWire,
		BA:     BAWire,
		BObj:   BObjWire,
		PriceR: 1,
		PriceS: 1,
		Buffer: 800,
	}
}

// TB is Eq. (1): the wire bytes for a payload of b bytes.
func (p Params) TB(b int) float64 { return float64(p.Link.TB(b)) }

// BH returns the per-packet header size.
func (p Params) BH() int { return p.Link.HeaderBytes }

// QueryBytes is the uplink cost of posting one query: BH + BQ (§3.1).
func (p Params) QueryBytes() float64 { return float64(p.BH() + p.BQ) }

// Taq is Eq. (7): the bytes of sending one aggregate query and receiving
// its one-record answer.
func (p Params) Taq() float64 {
	return float64(p.BH()+p.BQ) + float64(p.BH()+p.BA)
}

// Stats carries the per-window statistics the model consumes.
type Stats struct {
	// W is the window under consideration.
	W geom.Rect
	// NR and NS are |Rw| and |Sw|.
	NR, NS int
	// Eps is the distance-join threshold; 0 for intersection joins.
	Eps float64
	// AvgAreaR and AvgAreaS are mean object-MBR areas (0 for points),
	// used to widen the per-probe selectivity for polygon data.
	AvgAreaR, AvgAreaS float64
	// CountProbeR marks iceberg semi-joins whose R-outer NLSJ probes are
	// aggregate RANGE-COUNT queries: each probe's reply is one BA-byte
	// count instead of the matching objects, which changes C2 radically.
	CountProbeR bool
	// DensityFactor inflates the expected per-probe result beyond the
	// uniformity assumption of Eq. (3): the online planner sets it to the
	// measured peak-to-mean density ratio (from quadrant counts or
	// per-shard INFO skew) so NLSJ estimates stop under-pricing probes
	// that land in clusters. 0 (or 1) keeps the paper's uniform estimate.
	DensityFactor float64
}

// probeArea estimates the area of one NLSJ probe's qualifying region
// around an outer object: π ε² for point data (as in Eq. 3), widened by
// the average inner-object extent for rectangle data (Minkowski sum).
func (st Stats) probeArea(outerAvgArea, innerAvgArea float64) float64 {
	side := 0.0
	if outerAvgArea > 0 {
		side += math.Sqrt(outerAvgArea)
	}
	if innerAvgArea > 0 {
		side += math.Sqrt(innerAvgArea)
	}
	if st.Eps > 0 {
		a := math.Pi * st.Eps * st.Eps
		if side > 0 {
			// Expanded-rectangle probe: (side+2ε)² approximates the
			// Minkowski region of a square of the average side.
			return (side + 2*st.Eps) * (side + 2*st.Eps)
		}
		return a
	}
	return side * side
}

// expectedProbeResult estimates the number of inner objects matched by
// one outer probe, assuming uniformity inside w (as Eq. 3 does).
func (st Stats) expectedProbeResult(inner int, outerAvgArea, innerAvgArea float64) float64 {
	area := st.W.Area()
	if area <= 0 {
		if inner > 0 {
			return float64(inner)
		}
		return 0
	}
	exp := st.probeArea(outerAvgArea, innerAvgArea) / area * float64(inner)
	if st.DensityFactor > 1 {
		exp *= st.DensityFactor
	}
	if exp > float64(inner) {
		exp = float64(inner)
	}
	return exp
}

// PerProbeMatches is the exported form of expectedProbeResult for the
// online planner (package plan): the expected number of inner objects
// matched by one outer probe, under uniformity inside st.W scaled by
// st.DensityFactor.
func (st Stats) PerProbeMatches(inner int, outerAvgArea, innerAvgArea float64) float64 {
	return st.expectedProbeResult(inner, outerAvgArea, innerAvgArea)
}

// Infeasible is the cost of operators that cannot run (e.g. HBSJ without
// memory).
var Infeasible = math.Inf(1)

// C1 is Eq. (2): download both windows and join on the device (HBSJ).
// Returns +Inf when the buffer cannot hold |Rw|+|Sw| objects.
func (p Params) C1(st Stats) float64 {
	if p.Buffer > 0 && st.NR+st.NS > p.Buffer {
		return Infeasible
	}
	q := (p.PriceR + p.PriceS) * p.QueryBytes()
	return q +
		p.PriceR*p.TB(st.NR*p.BObj) +
		p.PriceS*p.TB(st.NS*p.BObj)
}

// C2 estimates NLSJ with R as the outer relation: download Rw, probe S
// with one ε-range query per object (Eq. 4), or with bucket submission
// (Eq. 6) when p.Bucket is set. For iceberg count probes
// (Stats.CountProbeR) each probe's reply is one aggregate answer.
func (p Params) C2(st Stats) float64 {
	return p.nlsj(st, st.NR, st.NS, p.PriceR, p.PriceS, st.AvgAreaR, st.AvgAreaS, st.CountProbeR)
}

// C3 estimates NLSJ with S as the outer relation (the symmetric case of
// Eq. 4/6).
func (p Params) C3(st Stats) float64 {
	return p.nlsj(st, st.NS, st.NR, p.PriceS, p.PriceR, st.AvgAreaS, st.AvgAreaR, false)
}

// nlsj computes the NLSJ cost with `outer` objects downloaded from the
// outer site (tariff priceOuter) and probes answered by the inner site
// (tariff priceInner).
func (p Params) nlsj(st Stats, outer, inner int, priceOuter, priceInner, outerAvg, innerAvg float64, countProbe bool) float64 {
	perProbe := st.expectedProbeResult(inner, outerAvg, innerAvg)
	probeReply := int(math.Ceil(perProbe * float64(p.BObj)))
	if countProbe {
		probeReply = p.BA
	}
	if !p.Bucket {
		// Eq. (4): initial window query + outer download, then one
		// ε-range query and its result per outer object (Eq. 3).
		tdq := p.QueryBytes() + p.TB(probeReply)
		return priceOuter*p.QueryBytes() +
			priceOuter*p.TB(outer*p.BObj) +
			priceInner*float64(outer)*tdq
	}
	// Eq. (6): the outer objects are downloaded from the outer site and
	// uploaded to the inner site as one bucket; results return in one
	// stream with a per-probe record (Eq. 5).
	tdq := p.TB((probeReply + p.BObj) * outer)
	return (priceOuter+priceInner)*p.QueryBytes() +
		(priceOuter+priceInner)*p.TB(outer*p.BObj) +
		priceInner*tdq
}

// C4Uniform is MobiJoin's estimate of Eq. (8): the cost of repartitioning
// w into a k×k grid (2k² aggregate queries) and then processing every
// subwindow, *assuming the data are uniform inside w*. Under that
// assumption each subwindow holds NR/k² and NS/k² objects; the recursion
// bottoms out when a subwindow's best non-partitioning operator is
// cheaper than partitioning further, exactly as the paper describes the
// heuristic (§3.2). This deliberately reproduces MobiJoin's blind spot:
// it never anticipates pruning, nor skew inside w.
func (p Params) C4Uniform(st Stats, k int) float64 {
	if k < 2 {
		k = 2
	}
	agg := 2 * float64(k*k) * p.Taq() * avgPrice(p)
	sub := Stats{
		W:        st.W.Quadrant(0), // representative cell of the k×k grid
		NR:       st.NR / (k * k),
		NS:       st.NS / (k * k),
		Eps:      st.Eps,
		AvgAreaR: st.AvgAreaR,
		AvgAreaS: st.AvgAreaS,
	}
	if k != 2 {
		// Generalize the representative cell to a k×k grid cell.
		cells := st.W.Grid(k)
		sub.W = cells[0]
	}
	if sub.NR == 0 || sub.NS == 0 {
		// Uniform split with empty cells: only the aggregate queries.
		return agg
	}
	best := math.Min(p.C1(sub), math.Min(p.C2(sub), p.C3(sub)))
	deeper := p.C4Uniform(sub, k)
	if deeper < best {
		best = deeper
	}
	return agg + float64(k*k)*best
}

func avgPrice(p Params) float64 { return (p.PriceR + p.PriceS) / 2 }

// BestPhysical returns the cheaper of C1, C2, C3 and its identifier:
// 1 for HBSJ, 2 for NLSJ with outer R, 3 for NLSJ with outer S.
func (p Params) BestPhysical(st Stats) (int, float64) {
	c1, c2, c3 := p.C1(st), p.C2(st), p.C3(st)
	best, op := c1, 1
	if c2 < best {
		best, op = c2, 2
	}
	if c3 < best {
		best, op = c3, 3
	}
	return op, best
}
