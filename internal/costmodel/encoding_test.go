package costmodel

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/wire"
)

// TestWireConstantsMatchEncodings closes the loop the compile-time
// guards cannot: BQ/BA/BObj are pinned to the wire package's declared
// sizes at compile time, and this test pins the declared sizes to the
// *actual* encoder output. A codec change that grows a frame without
// updating its declared size — silently desynchronizing Eq. 1's inputs
// from what crosses the simulated link — fails here.
func TestWireConstantsMatchEncodings(t *testing.T) {
	rect := geom.Rect{MinX: 1, MinY: 2, MaxX: 3, MaxY: 4}
	objs := []geom.Object{
		{ID: 1, MBR: rect},
		{ID: 2, MBR: rect},
		{ID: 3, MBR: rect},
	}

	// BQ: the COUNT/window query frame, type byte included.
	if got := len(wire.AppendCount(nil, rect)); got != BQWire {
		t.Errorf("COUNT query encodes to %d bytes, BQWire is %d", got, BQWire)
	}
	if got := len(wire.AppendWindow(nil, rect)); got != BQWire {
		t.Errorf("WINDOW query encodes to %d bytes, BQWire is %d", got, BQWire)
	}

	// BA: the aggregate answer record (the reply frame adds one type byte).
	if got := len(wire.AppendCountReply(nil, 42)) - 1; got != BAWire {
		t.Errorf("COUNT reply record is %d bytes, BAWire is %d", got, BAWire)
	}

	// BObj: the per-object marginal cost of an object stream.
	one := len(wire.AppendObjects(nil, objs[:1]))
	two := len(wire.AppendObjects(nil, objs[:2]))
	three := len(wire.AppendObjects(nil, objs))
	if two-one != BObjWire || three-two != BObjWire {
		t.Errorf("object stream marginal sizes %d/%d bytes, BObjWire is %d",
			two-one, three-two, BObjWire)
	}

	// The planner's semi-join estimate prices MBR relays and pair streams
	// with wire.RectSize and wire.PairSize; pin those to their encoders.
	oneR := len(wire.AppendRects(nil, []geom.Rect{rect}))
	twoR := len(wire.AppendRects(nil, []geom.Rect{rect, rect}))
	if twoR-oneR != wire.RectSize {
		t.Errorf("rect stream marginal size %d bytes, wire.RectSize is %d", twoR-oneR, wire.RectSize)
	}
	pairs := []geom.Pair{{RID: 1, SID: 2}, {RID: 3, SID: 4}}
	oneP := len(wire.AppendPairs(nil, pairs[:1]))
	twoP := len(wire.AppendPairs(nil, pairs))
	if twoP-oneP != wire.PairSize {
		t.Errorf("pair stream marginal size %d bytes, wire.PairSize is %d", twoP-oneP, wire.PairSize)
	}

	// Default() must expose exactly the wire-derived trio.
	d := Default()
	if d.BQ != BQWire || d.BA != BAWire || d.BObj != BObjWire {
		t.Errorf("Default() = BQ %d BA %d BObj %d, want %d/%d/%d",
			d.BQ, d.BA, d.BObj, BQWire, BAWire, BObjWire)
	}
}
