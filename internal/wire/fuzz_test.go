package wire

import (
	"bytes"
	"testing"

	"repro/internal/geom"
)

// The decoders are the trust boundary of the server and of the client's
// reply demultiplexer: every frame that arrives off a socket goes through
// them before anything else touches it. The fuzz targets below assert the
// two properties the rest of the stack relies on: no input can panic a
// decoder, and an input a decoder accepts re-encodes to the same bytes
// (so accepted frames are canonical and metering is well defined).
//
// CI runs each target briefly (make fuzz); longer local runs:
//
//	go test -run '^$' -fuzz FuzzDecodeBatch -fuzztime 60s ./internal/wire

func FuzzDecodeBatch(f *testing.F) {
	f.Add(EncodeBatch(nil))
	f.Add(EncodeBatch([][]byte{EncodeInfo()}))
	f.Add(EncodeBatch([][]byte{
		EncodeCount(geom.R(0, 0, 10, 10)),
		EncodeRange(geom.Pt(1, 2), 3),
		EncodeBucketRange([]geom.Point{{X: 1, Y: 2}}, 5),
	}))
	f.Add(EncodeBatchReply([][]byte{EncodeCountReply(7), EncodeError("x")}))
	f.Add([]byte{byte(MsgBatch), 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, frame []byte) {
		for _, want := range []MsgType{MsgBatch, MsgBatchReply} {
			subs, err := DecodeBatch(frame, want)
			if err != nil {
				continue
			}
			// Round-trip: an accepted envelope is canonical.
			re := appendBatchFrame(nil, want, subs)
			if !bytes.Equal(re, frame) {
				t.Fatalf("re-encode differs:\n in %x\nout %x", frame, re)
			}
		}
	})
}

func FuzzDecodeRequests(f *testing.F) {
	f.Add(EncodeWindow(geom.R(0, 0, 1, 1)))
	f.Add(EncodeCount(geom.R(-5, -5, 5, 5)))
	f.Add(EncodeRange(geom.Pt(3, 4), 2.5))
	f.Add(EncodeBucketRange([]geom.Point{{X: 1, Y: 2}, {X: 3, Y: 4}}, 9))
	f.Add(EncodeMBRMatch([]geom.Rect{{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}}, 2))
	f.Add(EncodeUploadJoin([]geom.Object{geom.PointObject(1, geom.Pt(5, 6))}, 0))
	f.Add(EncodeMBRLevel(2))
	f.Fuzz(func(t *testing.T, frame []byte) {
		// None of these may panic, whatever the bytes.
		DecodeWindowLike(frame, MsgWindow)
		DecodeWindowLike(frame, MsgCount)
		DecodeWindowLike(frame, MsgAvgArea)
		DecodeRangeLike(frame, MsgRange)
		DecodeRangeLike(frame, MsgRangeCount)
		DecodeBucketRangeLike(frame, MsgBucketRange)
		DecodeBucketRangeLike(frame, MsgBucketRangeCount)
		DecodeMBRLevel(frame)
		DecodeMBRMatch(frame)
		DecodeUploadJoin(frame)
	})
}

func FuzzDecodeResponses(f *testing.F) {
	f.Add(EncodeObjects([]geom.Object{geom.PointObject(9, geom.Pt(1, 1))}))
	f.Add(EncodeCountReply(-3))
	f.Add(EncodeCountsReply([]int64{1, 2, 3}))
	f.Add(EncodeFloatReply(3.14))
	f.Add(EncodeBucketObjects([][]geom.Object{nil, {geom.PointObject(1, geom.Pt(0, 0))}}))
	f.Add(EncodeInfoReply(Info{Count: 10, TreeHeight: 2, PointData: true}))
	f.Add(EncodeRects([]geom.Rect{{MaxX: 1, MaxY: 1}}))
	f.Add(EncodePairs([]geom.Pair{{RID: 1, SID: 2}}))
	f.Add(EncodeError("boom"))
	f.Fuzz(func(t *testing.T, frame []byte) {
		DecodeObjects(frame)
		DecodeCountReply(frame)
		DecodeCountsReply(frame)
		DecodeFloatReply(frame)
		DecodeBucketObjects(frame)
		DecodeInfoReply(frame)
		DecodeRects(frame)
		DecodePairs(frame)
		DecodeError(frame)
	})
}
