package wire

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/geom"
)

func TestBatchRoundTrip(t *testing.T) {
	subs := [][]byte{
		EncodeCount(geom.R(0, 0, 10, 10)),
		EncodeRange(geom.Pt(3, 4), 2.5),
		EncodeInfo(),
		EncodeWindow(geom.R(-5, -5, 5, 5)),
	}
	frame := EncodeBatch(subs)
	if Type(frame) != MsgBatch {
		t.Fatalf("type = %v, want MsgBatch", Type(frame))
	}
	got, err := DecodeBatch(frame, MsgBatch)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(subs) {
		t.Fatalf("decoded %d sub-frames, want %d", len(got), len(subs))
	}
	for i := range subs {
		if !bytes.Equal(got[i], subs[i]) {
			t.Errorf("sub %d = %x, want %x", i, got[i], subs[i])
		}
	}
}

func TestBatchReplyIncrementalMatchesWhole(t *testing.T) {
	subs := [][]byte{
		EncodeCountReply(42),
		EncodeObjects([]geom.Object{geom.PointObject(7, geom.Pt(1, 2))}),
		EncodeError("boom"),
	}
	whole := EncodeBatchReply(subs)

	inc := AppendBatchReplyHeader(nil, len(subs))
	for _, s := range subs {
		var off int
		inc, off = BeginBatchEntry(inc)
		inc = append(inc, s...)
		inc = EndBatchEntry(inc, off)
	}
	if !bytes.Equal(whole, inc) {
		t.Errorf("incremental encoding differs:\nwhole %x\ninc   %x", whole, inc)
	}
}

func TestBatchEmptyAndAppendForms(t *testing.T) {
	empty := EncodeBatch(nil)
	subs, err := DecodeBatch(empty, MsgBatch)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 0 {
		t.Fatalf("empty batch decoded %d subs", len(subs))
	}
	// Append form over a prefilled buffer produces the same frame bytes.
	pre := append([]byte("xyz"), AppendBatch(nil, [][]byte{EncodeInfo()})...)
	app := AppendBatch([]byte("xyz"), [][]byte{EncodeInfo()})
	if !bytes.Equal(pre, app) {
		t.Errorf("append form differs: %x vs %x", pre, app)
	}
}

func TestBatchDecodeRejectsMalformed(t *testing.T) {
	good := EncodeBatch([][]byte{EncodeCount(geom.R(0, 0, 1, 1)), EncodeInfo()})
	cases := map[string][]byte{
		"empty":              {},
		"wrong type":         EncodeInfo(),
		"short header":       good[:3],
		"truncated entry":    good[:len(good)-1],
		"trailing bytes":     append(append([]byte{}, good...), 0xff),
		"giant count":        {byte(MsgBatch), 0xff, 0xff, 0xff, 0xff},
		"entry past end":     {byte(MsgBatch), 1, 0, 0, 0, 200, 0, 0, 0},
		"entry header short": {byte(MsgBatch), 1, 0, 0, 0, 9},
	}
	for name, frame := range cases {
		if _, err := DecodeBatch(frame, MsgBatch); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	// Lying about the count must fail even when entries parse.
	lied := append([]byte{}, good...)
	lied[1] = 1 // two entries present, one advertised
	if _, err := DecodeBatch(lied, MsgBatch); !errors.Is(err, ErrTrailing) {
		t.Errorf("undercounted batch: err = %v, want ErrTrailing", err)
	}
	// want must be an envelope type.
	if _, err := DecodeBatch(good, MsgCount); !errors.Is(err, ErrBadType) {
		t.Errorf("non-envelope want: err = %v, want ErrBadType", err)
	}
}

func TestBatchOverheadConstants(t *testing.T) {
	subs := [][]byte{EncodeInfo(), EncodeCountReply(1)}
	frame := EncodeBatch(subs)
	want := BatchHdr + 2*BatchEntryHdr + len(subs[0]) + len(subs[1])
	if len(frame) != want {
		t.Errorf("frame size %d, want %d", len(frame), want)
	}
}
