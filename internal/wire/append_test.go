package wire

import (
	"bytes"
	"testing"

	"repro/internal/geom"
)

// TestAppendEncodersMatchEncode pins the core invariant of the pooled
// codec: every Append* form produces bytes identical to its Encode*
// form, with or without a pre-existing prefix in the destination buffer.
// Metered byte counts therefore cannot depend on which form a caller
// uses.
func TestAppendEncodersMatchEncode(t *testing.T) {
	w := geom.R(1, 2, 300, 400)
	p := geom.Pt(7, 9)
	pts := []geom.Point{{X: 1, Y: 2}, {X: 3, Y: 4}, {X: 5, Y: 6}}
	rects := []geom.Rect{geom.R(0, 0, 1, 1), geom.R(2, 2, 5, 9)}
	objs := []geom.Object{
		{ID: 1, MBR: geom.R(0, 0, 2, 2)},
		{ID: 9, MBR: geom.R(5, 5, 6, 8)},
	}
	groups := [][]geom.Object{objs, nil, {objs[1]}}
	pairs := []geom.Pair{{RID: 1, SID: 2}, {RID: 3, SID: 4}}
	ns := []int64{0, -5, 1 << 40}
	info := Info{Count: 42, Bounds: w, TreeHeight: 3, PointData: true}

	cases := []struct {
		name   string
		enc    []byte
		append func(dst []byte) []byte
	}{
		{"window", EncodeWindow(w), func(d []byte) []byte { return AppendWindow(d, w) }},
		{"count", EncodeCount(w), func(d []byte) []byte { return AppendCount(d, w) }},
		{"avgarea", EncodeAvgArea(w), func(d []byte) []byte { return AppendAvgArea(d, w) }},
		{"range", EncodeRange(p, 2.5), func(d []byte) []byte { return AppendRange(d, p, 2.5) }},
		{"rangecount", EncodeRangeCount(p, 2.5), func(d []byte) []byte { return AppendRangeCount(d, p, 2.5) }},
		{"bucketrange", EncodeBucketRange(pts, 3), func(d []byte) []byte { return AppendBucketRange(d, pts, 3) }},
		{"bucketrangecount", EncodeBucketRangeCount(pts, 3), func(d []byte) []byte { return AppendBucketRangeCount(d, pts, 3) }},
		{"info", EncodeInfo(), AppendInfo},
		{"mbrlevel", EncodeMBRLevel(2), func(d []byte) []byte { return AppendMBRLevel(d, 2) }},
		{"mbrmatch", EncodeMBRMatch(rects, 1.5), func(d []byte) []byte { return AppendMBRMatch(d, rects, 1.5) }},
		{"uploadjoin", EncodeUploadJoin(objs, 1.5), func(d []byte) []byte { return AppendUploadJoin(d, objs, 1.5) }},
		{"objects", EncodeObjects(objs), func(d []byte) []byte { return AppendObjects(d, objs) }},
		{"countreply", EncodeCountReply(-7), func(d []byte) []byte { return AppendCountReply(d, -7) }},
		{"countsreply", EncodeCountsReply(ns), func(d []byte) []byte { return AppendCountsReply(d, ns) }},
		{"floatreply", EncodeFloatReply(3.25), func(d []byte) []byte { return AppendFloatReply(d, 3.25) }},
		{"bucketobjects", EncodeBucketObjects(groups), func(d []byte) []byte { return AppendBucketObjects(d, groups) }},
		{"inforeply", EncodeInfoReply(info), func(d []byte) []byte { return AppendInfoReply(d, info) }},
		{"rects", EncodeRects(rects), func(d []byte) []byte { return AppendRects(d, rects) }},
		{"pairs", EncodePairs(pairs), func(d []byte) []byte { return AppendPairs(d, pairs) }},
		{"error", EncodeError("boom"), func(d []byte) []byte { return AppendError(d, "boom") }},
	}
	for _, tc := range cases {
		if got := tc.append(nil); !bytes.Equal(got, tc.enc) {
			t.Errorf("%s: Append(nil) = %x, Encode = %x", tc.name, got, tc.enc)
		}
		prefix := []byte{0xAA, 0xBB}
		got := tc.append(append([]byte(nil), prefix...))
		if !bytes.Equal(got[:2], prefix) {
			t.Errorf("%s: prefix clobbered", tc.name)
		}
		if !bytes.Equal(got[2:], tc.enc) {
			t.Errorf("%s: Append(prefix) payload = %x, Encode = %x", tc.name, got[2:], tc.enc)
		}
	}
}

// TestAppendBucketObjectsFlatMatchesNested checks the flat (scratch-
// friendly) bucket encoder against the nested one, including empty
// groups.
func TestAppendBucketObjectsFlatMatchesNested(t *testing.T) {
	groups := [][]geom.Object{
		{{ID: 1, MBR: geom.R(0, 0, 1, 1)}, {ID: 2, MBR: geom.R(1, 1, 2, 2)}},
		nil,
		{{ID: 3, MBR: geom.R(4, 4, 5, 5)}},
	}
	var lens []int
	var flat []geom.Object
	for _, g := range groups {
		lens = append(lens, len(g))
		flat = append(flat, g...)
	}
	want := EncodeBucketObjects(groups)
	got := AppendBucketObjectsFlat(nil, lens, flat)
	if !bytes.Equal(got, want) {
		t.Fatalf("flat = %x, nested = %x", got, want)
	}
}

// TestScratchDecodersMatchPlain checks every DecodeXAppend variant
// against its allocating form, both from empty and from non-empty
// scratch (the appended records must land after the existing ones).
func TestScratchDecodersMatchPlain(t *testing.T) {
	objs := []geom.Object{
		{ID: 1, MBR: geom.R(0, 0, 2, 2)},
		{ID: 9, MBR: geom.R(5, 5, 6, 8)},
	}
	rects := []geom.Rect{geom.R(0, 0, 1, 1), geom.R(2, 2, 5, 9)}
	pts := []geom.Point{{X: 1, Y: 2}, {X: 3, Y: 4}}
	pairs := []geom.Pair{{RID: 1, SID: 2}, {RID: 3, SID: 4}}
	ns := []int64{5, -2}

	scratch := make([]geom.Object, 1, 8)
	scratch[0] = geom.Object{ID: 77}
	got, err := DecodeObjectsAppend(EncodeObjects(objs), scratch)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].ID != 77 || got[1] != objs[0] || got[2] != objs[1] {
		t.Fatalf("DecodeObjectsAppend = %+v", got)
	}

	rs, err := DecodeRectsAppend(EncodeRects(rects), nil)
	if err != nil || len(rs) != 2 || rs[0] != rects[0] || rs[1] != rects[1] {
		t.Fatalf("DecodeRectsAppend = %+v, %v", rs, err)
	}

	ps, err := DecodePairsAppend(EncodePairs(pairs), nil)
	if err != nil || len(ps) != 2 || ps[0] != pairs[0] || ps[1] != pairs[1] {
		t.Fatalf("DecodePairsAppend = %+v, %v", ps, err)
	}

	cs, err := DecodeCountsReplyAppend(EncodeCountsReply(ns), nil)
	if err != nil || len(cs) != 2 || cs[0] != 5 || cs[1] != -2 {
		t.Fatalf("DecodeCountsReplyAppend = %+v, %v", cs, err)
	}

	dp, eps, err := DecodeBucketRangeLikeAppend(EncodeBucketRange(pts, 3), MsgBucketRange, nil)
	if err != nil || eps != 3 || len(dp) != 2 {
		t.Fatalf("DecodeBucketRangeLikeAppend = %+v, %v, %v", dp, eps, err)
	}

	dr, eps, err := DecodeMBRMatchAppend(EncodeMBRMatch(rects, 1.5), nil)
	if err != nil || eps != 1.5 || len(dr) != 2 {
		t.Fatalf("DecodeMBRMatchAppend = %+v, %v, %v", dr, eps, err)
	}

	du, eps, err := DecodeUploadJoinAppend(EncodeUploadJoin(objs, 0), nil)
	if err != nil || eps != 0 || len(du) != 2 {
		t.Fatalf("DecodeUploadJoinAppend = %+v, %v, %v", du, eps, err)
	}
}
