package wire

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Type returns the message type of a frame without decoding the payload.
func Type(frame []byte) MsgType {
	if len(frame) == 0 {
		return MsgInvalid
	}
	return MsgType(frame[0])
}

func check(frame []byte, want MsgType, minLen int) error {
	if len(frame) < 1 {
		return ErrShortFrame
	}
	if MsgType(frame[0]) != want {
		return fmt.Errorf("%w: got %v, want %v", ErrBadType, MsgType(frame[0]), want)
	}
	if len(frame) < minLen {
		return fmt.Errorf("%w: %d bytes, need at least %d for %v", ErrShortFrame, len(frame), minLen, want)
	}
	return nil
}

// DecodeWindowLike decodes WINDOW, COUNT and AVG-AREA requests, which all
// carry a single rectangle.
func DecodeWindowLike(frame []byte, want MsgType) (geom.Rect, error) {
	if err := check(frame, want, 1+RectSize); err != nil {
		return geom.Rect{}, err
	}
	if len(frame) != 1+RectSize {
		return geom.Rect{}, ErrTrailing
	}
	return getRect(frame[1:]), nil
}

// DecodeRangeLike decodes RANGE and RANGE-COUNT requests.
func DecodeRangeLike(frame []byte, want MsgType) (geom.Point, float64, error) {
	if err := check(frame, want, 1+PointSize+4); err != nil {
		return geom.Point{}, 0, err
	}
	if len(frame) != 1+PointSize+4 {
		return geom.Point{}, 0, ErrTrailing
	}
	p := getPoint(frame[1:])
	eps := float64(f32(frame[1+PointSize:]))
	return p, eps, nil
}

func f32(b []byte) float32 {
	return math.Float32frombits(le.Uint32(b))
}

// DecodeBucketRangeLike decodes BUCKET-RANGE and BUCKET-RANGE-COUNT
// requests.
func DecodeBucketRangeLike(frame []byte, want MsgType) ([]geom.Point, float64, error) {
	if err := check(frame, want, 1+4+4); err != nil {
		return nil, 0, err
	}
	eps := float64(f32(frame[1:]))
	n := int(le.Uint32(frame[5:]))
	if len(frame) != 9+PointSize*n {
		return nil, 0, fmt.Errorf("%w: bucket of %d points", ErrShortFrame, n)
	}
	pts := make([]geom.Point, n)
	off := 9
	for i := range pts {
		pts[i] = getPoint(frame[off:])
		off += PointSize
	}
	return pts, eps, nil
}

// DecodeMBRLevel decodes an MBR-LEVEL request.
func DecodeMBRLevel(frame []byte) (int, error) {
	if err := check(frame, MsgMBRLevel, 1+4); err != nil {
		return 0, err
	}
	return int(le.Uint32(frame[1:])), nil
}

// DecodeMBRMatch decodes an MBR-MATCH request.
func DecodeMBRMatch(frame []byte) ([]geom.Rect, float64, error) {
	if err := check(frame, MsgMBRMatch, 1+4+4); err != nil {
		return nil, 0, err
	}
	eps := float64(f32(frame[1:]))
	n := int(le.Uint32(frame[5:]))
	if len(frame) != 9+RectSize*n {
		return nil, 0, fmt.Errorf("%w: batch of %d rects", ErrShortFrame, n)
	}
	rects := make([]geom.Rect, n)
	off := 9
	for i := range rects {
		rects[i] = getRect(frame[off:])
		off += RectSize
	}
	return rects, eps, nil
}

// DecodeUploadJoin decodes an UPLOAD-JOIN request.
func DecodeUploadJoin(frame []byte) ([]geom.Object, float64, error) {
	if err := check(frame, MsgUploadJoin, 1+4+4); err != nil {
		return nil, 0, err
	}
	eps := float64(f32(frame[1:]))
	n := int(le.Uint32(frame[5:]))
	if len(frame) != 9+ObjectSize*n {
		return nil, 0, fmt.Errorf("%w: upload of %d objects", ErrShortFrame, n)
	}
	objs := make([]geom.Object, n)
	off := 9
	for i := range objs {
		objs[i] = getObject(frame[off:])
		off += ObjectSize
	}
	return objs, eps, nil
}

// DecodeObjects decodes an OBJECTS response.
func DecodeObjects(frame []byte) ([]geom.Object, error) {
	if err := check(frame, MsgObjects, 1+4); err != nil {
		return nil, err
	}
	n := int(le.Uint32(frame[1:]))
	if len(frame) != 5+ObjectSize*n {
		return nil, fmt.Errorf("%w: objects response of %d", ErrShortFrame, n)
	}
	objs := make([]geom.Object, n)
	off := 5
	for i := range objs {
		objs[i] = getObject(frame[off:])
		off += ObjectSize
	}
	return objs, nil
}

// DecodeCountReply decodes a COUNT-REPLY response.
func DecodeCountReply(frame []byte) (int64, error) {
	if err := check(frame, MsgCountReply, 1+CountSize); err != nil {
		return 0, err
	}
	return int64(le.Uint64(frame[1:])), nil
}

// DecodeCountsReply decodes a COUNTS-REPLY response.
func DecodeCountsReply(frame []byte) ([]int64, error) {
	if err := check(frame, MsgCountsReply, 1+4); err != nil {
		return nil, err
	}
	n := int(le.Uint32(frame[1:]))
	if len(frame) != 5+CountSize*n {
		return nil, fmt.Errorf("%w: counts response of %d", ErrShortFrame, n)
	}
	ns := make([]int64, n)
	off := 5
	for i := range ns {
		ns[i] = int64(le.Uint64(frame[off:]))
		off += CountSize
	}
	return ns, nil
}

// DecodeFloatReply decodes a FLOAT-REPLY response.
func DecodeFloatReply(frame []byte) (float64, error) {
	if err := check(frame, MsgFloatReply, 1+8); err != nil {
		return 0, err
	}
	return getFloat64(frame[1:]), nil
}

// DecodeBucketObjects decodes a BUCKET-OBJECTS response.
func DecodeBucketObjects(frame []byte) ([][]geom.Object, error) {
	if err := check(frame, MsgBucketObjects, 1+4); err != nil {
		return nil, err
	}
	n := int(le.Uint32(frame[1:]))
	groups := make([][]geom.Object, n)
	off := 5
	for i := range groups {
		if off+4 > len(frame) {
			return nil, fmt.Errorf("%w: bucket group header %d", ErrShortFrame, i)
		}
		m := int(le.Uint32(frame[off:]))
		off += 4
		if off+ObjectSize*m > len(frame) {
			return nil, fmt.Errorf("%w: bucket group %d of %d objects", ErrShortFrame, i, m)
		}
		g := make([]geom.Object, m)
		for j := range g {
			g[j] = getObject(frame[off:])
			off += ObjectSize
		}
		groups[i] = g
	}
	if off != len(frame) {
		return nil, ErrTrailing
	}
	return groups, nil
}

// DecodeInfoReply decodes an INFO-REPLY response.
func DecodeInfoReply(frame []byte) (Info, error) {
	if err := check(frame, MsgInfoReply, 1+8+RectSize+4+1); err != nil {
		return Info{}, err
	}
	return Info{
		Count:      int64(le.Uint64(frame[1:])),
		Bounds:     getRect(frame[9:]),
		TreeHeight: int32(le.Uint32(frame[9+RectSize:])),
		PointData:  frame[9+RectSize+4] == 1,
	}, nil
}

// DecodeRects decodes a RECTS response.
func DecodeRects(frame []byte) ([]geom.Rect, error) {
	if err := check(frame, MsgRects, 1+4); err != nil {
		return nil, err
	}
	n := int(le.Uint32(frame[1:]))
	if len(frame) != 5+RectSize*n {
		return nil, fmt.Errorf("%w: rects response of %d", ErrShortFrame, n)
	}
	rects := make([]geom.Rect, n)
	off := 5
	for i := range rects {
		rects[i] = getRect(frame[off:])
		off += RectSize
	}
	return rects, nil
}

// DecodePairs decodes a PAIRS response.
func DecodePairs(frame []byte) ([]geom.Pair, error) {
	if err := check(frame, MsgPairs, 1+4); err != nil {
		return nil, err
	}
	n := int(le.Uint32(frame[1:]))
	if len(frame) != 5+PairSize*n {
		return nil, fmt.Errorf("%w: pairs response of %d", ErrShortFrame, n)
	}
	pairs := make([]geom.Pair, n)
	off := 5
	for i := range pairs {
		pairs[i] = geom.Pair{RID: le.Uint32(frame[off:]), SID: le.Uint32(frame[off+4:])}
		off += PairSize
	}
	return pairs, nil
}

// DecodeError decodes an ERROR response into a Go error.
func DecodeError(frame []byte) error {
	if err := check(frame, MsgError, 1+4); err != nil {
		return err
	}
	n := int(le.Uint32(frame[1:]))
	if len(frame) < 5+n {
		return ErrShortFrame
	}
	return &ServerError{Msg: string(frame[5 : 5+n])}
}

// ServerError is an error reported by a dataset server.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "server: " + e.Msg }
