package wire

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/geom"
)

// Decoders for repeated payloads come in two forms: DecodeXAppend appends
// the decoded records to a caller-provided slice (typically a per-handler
// scratch buffer) and allocates nothing when capacity suffices; DecodeX is
// the convenience form returning a fresh exact-length slice. Decoded
// records never alias the frame, so the frame's buffer may be recycled
// (bufpool.Put) as soon as decoding returns.

// repeatedPayload validates the shared shape of every repeated-payload
// frame — a hdr-byte header whose last four bytes are the record count,
// followed by exactly n records of rec bytes — and returns n. what is
// the ErrShortFrame detail format (must contain one %d for the count).
// The per-record copy loops stay monomorphic at each call site: routing
// them through a func parameter costs an indirect call per record, which
// is measurable on the wire benchmark.
func repeatedPayload(frame []byte, want MsgType, hdr, rec int, what string) (int, error) {
	if err := check(frame, want, hdr); err != nil {
		return 0, err
	}
	n := int(le.Uint32(frame[hdr-4:]))
	if len(frame) != hdr+rec*n {
		return 0, fmt.Errorf("%w: "+what, ErrShortFrame, n)
	}
	return n, nil
}

// Header sizes of the two repeated-payload layouts: responses are
// [type][n:4]; eps-carrying requests are [type][eps:4][n:4].
const (
	replyHdr = 1 + 4
	epsHdr   = 1 + 4 + 4
)

// Type returns the message type of a frame without decoding the payload.
func Type(frame []byte) MsgType {
	if len(frame) == 0 {
		return MsgInvalid
	}
	return MsgType(frame[0])
}

func check(frame []byte, want MsgType, minLen int) error {
	if len(frame) < 1 {
		return ErrShortFrame
	}
	if MsgType(frame[0]) != want {
		return fmt.Errorf("%w: got %v, want %v", ErrBadType, MsgType(frame[0]), want)
	}
	if len(frame) < minLen {
		return fmt.Errorf("%w: %d bytes, need at least %d for %v", ErrShortFrame, len(frame), minLen, want)
	}
	return nil
}

// DecodeWindowLike decodes WINDOW, COUNT and AVG-AREA requests, which all
// carry a single rectangle.
func DecodeWindowLike(frame []byte, want MsgType) (geom.Rect, error) {
	if err := check(frame, want, 1+RectSize); err != nil {
		return geom.Rect{}, err
	}
	if len(frame) != 1+RectSize {
		return geom.Rect{}, ErrTrailing
	}
	return getRect(frame[1:]), nil
}

// DecodeRangeLike decodes RANGE and RANGE-COUNT requests.
func DecodeRangeLike(frame []byte, want MsgType) (geom.Point, float64, error) {
	if err := check(frame, want, 1+PointSize+4); err != nil {
		return geom.Point{}, 0, err
	}
	if len(frame) != 1+PointSize+4 {
		return geom.Point{}, 0, ErrTrailing
	}
	p := getPoint(frame[1:])
	eps := float64(f32(frame[1+PointSize:]))
	return p, eps, nil
}

func f32(b []byte) float32 {
	return math.Float32frombits(le.Uint32(b))
}

// DecodeBucketRangeLike decodes BUCKET-RANGE and BUCKET-RANGE-COUNT
// requests.
func DecodeBucketRangeLike(frame []byte, want MsgType) ([]geom.Point, float64, error) {
	return DecodeBucketRangeLikeAppend(frame, want, nil)
}

// DecodeBucketRangeLikeAppend is DecodeBucketRangeLike appending the probe
// points to dst.
func DecodeBucketRangeLikeAppend(frame []byte, want MsgType, dst []geom.Point) ([]geom.Point, float64, error) {
	n, err := repeatedPayload(frame, want, epsHdr, PointSize, "bucket of %d points")
	if err != nil {
		return dst, 0, err
	}
	dst = slices.Grow(dst, n)
	for off := epsHdr; n > 0; n, off = n-1, off+PointSize {
		dst = append(dst, getPoint(frame[off:]))
	}
	return dst, float64(f32(frame[1:])), nil
}

// DecodeMBRLevel decodes an MBR-LEVEL request.
func DecodeMBRLevel(frame []byte) (int, error) {
	if err := check(frame, MsgMBRLevel, 1+4); err != nil {
		return 0, err
	}
	return int(le.Uint32(frame[1:])), nil
}

// DecodeMBRMatch decodes an MBR-MATCH request.
func DecodeMBRMatch(frame []byte) ([]geom.Rect, float64, error) {
	return DecodeMBRMatchAppend(frame, nil)
}

// DecodeMBRMatchAppend is DecodeMBRMatch appending the rectangles to dst.
func DecodeMBRMatchAppend(frame []byte, dst []geom.Rect) ([]geom.Rect, float64, error) {
	n, err := repeatedPayload(frame, MsgMBRMatch, epsHdr, RectSize, "batch of %d rects")
	if err != nil {
		return dst, 0, err
	}
	dst = slices.Grow(dst, n)
	for off := epsHdr; n > 0; n, off = n-1, off+RectSize {
		dst = append(dst, getRect(frame[off:]))
	}
	return dst, float64(f32(frame[1:])), nil
}

// DecodeUploadJoin decodes an UPLOAD-JOIN request.
func DecodeUploadJoin(frame []byte) ([]geom.Object, float64, error) {
	return DecodeUploadJoinAppend(frame, nil)
}

// DecodeUploadJoinAppend is DecodeUploadJoin appending the objects to dst.
func DecodeUploadJoinAppend(frame []byte, dst []geom.Object) ([]geom.Object, float64, error) {
	n, err := repeatedPayload(frame, MsgUploadJoin, epsHdr, ObjectSize, "upload of %d objects")
	if err != nil {
		return dst, 0, err
	}
	dst = slices.Grow(dst, n)
	for off := epsHdr; n > 0; n, off = n-1, off+ObjectSize {
		dst = append(dst, getObject(frame[off:]))
	}
	return dst, float64(f32(frame[1:])), nil
}

// DecodeObjects decodes an OBJECTS response.
func DecodeObjects(frame []byte) ([]geom.Object, error) {
	return DecodeObjectsAppend(frame, nil)
}

// DecodeObjectsAppend is DecodeObjects appending the objects to dst.
func DecodeObjectsAppend(frame []byte, dst []geom.Object) ([]geom.Object, error) {
	n, err := repeatedPayload(frame, MsgObjects, replyHdr, ObjectSize, "objects response of %d")
	if err != nil {
		return dst, err
	}
	dst = slices.Grow(dst, n)
	for off := replyHdr; n > 0; n, off = n-1, off+ObjectSize {
		dst = append(dst, getObject(frame[off:]))
	}
	return dst, nil
}

// DecodeCountReply decodes a COUNT-REPLY response.
func DecodeCountReply(frame []byte) (int64, error) {
	if err := check(frame, MsgCountReply, 1+CountSize); err != nil {
		return 0, err
	}
	return int64(le.Uint64(frame[1:])), nil
}

// DecodeCountsReply decodes a COUNTS-REPLY response.
func DecodeCountsReply(frame []byte) ([]int64, error) {
	return DecodeCountsReplyAppend(frame, nil)
}

// DecodeCountsReplyAppend is DecodeCountsReply appending the counts to dst.
func DecodeCountsReplyAppend(frame []byte, dst []int64) ([]int64, error) {
	n, err := repeatedPayload(frame, MsgCountsReply, replyHdr, CountSize, "counts response of %d")
	if err != nil {
		return dst, err
	}
	dst = slices.Grow(dst, n)
	for off := replyHdr; n > 0; n, off = n-1, off+CountSize {
		dst = append(dst, int64(le.Uint64(frame[off:])))
	}
	return dst, nil
}

// DecodeFloatReply decodes a FLOAT-REPLY response.
func DecodeFloatReply(frame []byte) (float64, error) {
	if err := check(frame, MsgFloatReply, 1+8); err != nil {
		return 0, err
	}
	return getFloat64(frame[1:]), nil
}

// DecodeBucketObjects decodes a BUCKET-OBJECTS response.
func DecodeBucketObjects(frame []byte) ([][]geom.Object, error) {
	if err := check(frame, MsgBucketObjects, 1+4); err != nil {
		return nil, err
	}
	n := int(le.Uint32(frame[1:]))
	groups := make([][]geom.Object, n)
	off := 5
	for i := range groups {
		if off+4 > len(frame) {
			return nil, fmt.Errorf("%w: bucket group header %d", ErrShortFrame, i)
		}
		m := int(le.Uint32(frame[off:]))
		off += 4
		if off+ObjectSize*m > len(frame) {
			return nil, fmt.Errorf("%w: bucket group %d of %d objects", ErrShortFrame, i, m)
		}
		g := make([]geom.Object, m)
		for j := range g {
			g[j] = getObject(frame[off:])
			off += ObjectSize
		}
		groups[i] = g
	}
	if off != len(frame) {
		return nil, ErrTrailing
	}
	return groups, nil
}

// DecodeInfoReply decodes an INFO-REPLY response.
func DecodeInfoReply(frame []byte) (Info, error) {
	if err := check(frame, MsgInfoReply, 1+8+RectSize+4+1); err != nil {
		return Info{}, err
	}
	return Info{
		Count:      int64(le.Uint64(frame[1:])),
		Bounds:     getRect(frame[9:]),
		TreeHeight: int32(le.Uint32(frame[9+RectSize:])),
		PointData:  frame[9+RectSize+4] == 1,
	}, nil
}

// DecodeRects decodes a RECTS response.
func DecodeRects(frame []byte) ([]geom.Rect, error) {
	return DecodeRectsAppend(frame, nil)
}

// DecodeRectsAppend is DecodeRects appending the rectangles to dst.
func DecodeRectsAppend(frame []byte, dst []geom.Rect) ([]geom.Rect, error) {
	n, err := repeatedPayload(frame, MsgRects, replyHdr, RectSize, "rects response of %d")
	if err != nil {
		return dst, err
	}
	dst = slices.Grow(dst, n)
	for off := replyHdr; n > 0; n, off = n-1, off+RectSize {
		dst = append(dst, getRect(frame[off:]))
	}
	return dst, nil
}

// DecodePairs decodes a PAIRS response.
func DecodePairs(frame []byte) ([]geom.Pair, error) {
	return DecodePairsAppend(frame, nil)
}

// DecodePairsAppend is DecodePairs appending the pairs to dst.
func DecodePairsAppend(frame []byte, dst []geom.Pair) ([]geom.Pair, error) {
	n, err := repeatedPayload(frame, MsgPairs, replyHdr, PairSize, "pairs response of %d")
	if err != nil {
		return dst, err
	}
	dst = slices.Grow(dst, n)
	for off := replyHdr; n > 0; n, off = n-1, off+PairSize {
		dst = append(dst, geom.Pair{RID: le.Uint32(frame[off:]), SID: le.Uint32(frame[off+4:])})
	}
	return dst, nil
}

// DecodeBatch decodes a batch envelope (MsgBatch or MsgBatchReply,
// selected by want) into its sub-frames.
func DecodeBatch(frame []byte, want MsgType) ([][]byte, error) {
	return DecodeBatchAppend(frame, want, nil)
}

// DecodeBatchAppend is DecodeBatch appending the sub-frames to dst. The
// returned sub-frames are zero-copy views into frame: they must not be
// used after the frame's buffer is recycled.
func DecodeBatchAppend(frame []byte, want MsgType, dst [][]byte) ([][]byte, error) {
	if want != MsgBatch && want != MsgBatchReply {
		return dst, fmt.Errorf("%w: %v is not a batch envelope", ErrBadType, want)
	}
	if err := check(frame, want, BatchHdr); err != nil {
		return dst, err
	}
	// Every entry needs at least its length prefix, so an envelope
	// advertising more entries than could possibly fit is rejected in O(1)
	// instead of looping (fuzzed frames routinely claim 4G entries). The
	// bound is computed in uint64: on 32-bit platforms a hostile count
	// would otherwise wrap int (or go negative) past the guard and panic
	// the slices.Grow below.
	n32 := le.Uint32(frame[1:])
	if uint64(n32)*BatchEntryHdr > uint64(len(frame)-BatchHdr) {
		return dst, fmt.Errorf("%w: batch of %d sub-frames in %d bytes", ErrShortFrame, n32, len(frame))
	}
	n := int(n32)
	dst = slices.Grow(dst, n)
	off := BatchHdr
	for i := 0; i < n; i++ {
		if len(frame)-off < BatchEntryHdr {
			return dst, fmt.Errorf("%w: batch entry %d header", ErrShortFrame, i)
		}
		m := int(le.Uint32(frame[off:]))
		off += BatchEntryHdr
		if m > len(frame)-off {
			return dst, fmt.Errorf("%w: batch entry %d of %d bytes", ErrShortFrame, i, m)
		}
		dst = append(dst, frame[off:off+m:off+m])
		off += m
	}
	if off != len(frame) {
		return dst, ErrTrailing
	}
	return dst, nil
}

// DecodeError decodes an ERROR response into a Go error.
func DecodeError(frame []byte) error {
	if err := check(frame, MsgError, 1+4); err != nil {
		return err
	}
	n := int(le.Uint32(frame[1:]))
	if len(frame) < 5+n {
		return ErrShortFrame
	}
	return &ServerError{Msg: string(frame[5 : 5+n])}
}

// ServerError is an error reported by a dataset server.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "server: " + e.Msg }
