// Package wire defines the binary protocol spoken between the mobile
// client and the dataset servers, and the exact on-the-wire sizes of every
// message. All byte accounting in the repository derives from the
// encodings in this package.
//
// A message is a single frame:
//
//	[1 byte type][payload...]
//
// The transport layer (package netsim) is responsible for delivering whole
// frames and for charging the TCP/IP packetization overhead of Eq. (1) of
// the paper; this package only defines payload layouts.
//
// Layout conventions: little-endian; coordinates are float32 on the wire
// (the paper's PDA prototype used compact object records; 20-byte objects
// match the cost model default Bobj = 20); identifiers and cardinalities
// are uint32; money-free aggregate answers are int64 (BA = 8 bytes).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"slices"

	"repro/internal/geom"
)

// MsgType identifies a frame's meaning.
type MsgType uint8

// Request message types. WINDOW, COUNT and RANGE are the primitive-query
// interface of the paper (§3). BUCKETRANGE is the bucket submission of
// §3.1. RANGECOUNT supports iceberg semi-joins (a COUNT over an ε-range,
// still a plain aggregate query for the server). AVGAREA returns the
// average object-MBR area intersecting a window (the extra aggregate
// mentioned in §3.1 for polygon data). The MBRLEVEL / MBRMATCH / UPLOADJOIN
// trio exists only for the SemiJoin comparator of §5.3 and models the
// index-publishing, cooperative protocol of Tan et al. [16].
const (
	MsgInvalid MsgType = iota
	MsgWindow
	MsgCount
	MsgRange
	MsgBucketRange
	MsgRangeCount
	MsgBucketRangeCount
	MsgAvgArea
	MsgInfo
	MsgMBRLevel
	MsgMBRMatch
	MsgUploadJoin

	// Response types.
	MsgObjects
	MsgCountReply
	MsgBucketObjects
	MsgCountsReply
	MsgFloatReply
	MsgInfoReply
	MsgRects
	MsgPairs
	MsgError

	// MsgBatch is the multiplexing envelope: one frame carrying any number
	// of complete request sub-frames, answered by one MsgBatchReply frame
	// carrying exactly one response sub-frame per sub-request, in order.
	// Batching amortizes the per-frame packet overhead of Eq. (1) — and,
	// on latency-bearing links, the round trip — across the batch. Batches
	// do not nest. The types are appended after the pre-batching ones so
	// that every existing frame is bit-identical on the wire.
	MsgBatch
	MsgBatchReply
)

// String implements fmt.Stringer for diagnostics.
func (t MsgType) String() string {
	switch t {
	case MsgWindow:
		return "WINDOW"
	case MsgCount:
		return "COUNT"
	case MsgRange:
		return "RANGE"
	case MsgBucketRange:
		return "BUCKET-RANGE"
	case MsgRangeCount:
		return "RANGE-COUNT"
	case MsgBucketRangeCount:
		return "BUCKET-RANGE-COUNT"
	case MsgAvgArea:
		return "AVG-AREA"
	case MsgInfo:
		return "INFO"
	case MsgMBRLevel:
		return "MBR-LEVEL"
	case MsgMBRMatch:
		return "MBR-MATCH"
	case MsgUploadJoin:
		return "UPLOAD-JOIN"
	case MsgObjects:
		return "OBJECTS"
	case MsgCountReply:
		return "COUNT-REPLY"
	case MsgBucketObjects:
		return "BUCKET-OBJECTS"
	case MsgCountsReply:
		return "COUNTS-REPLY"
	case MsgFloatReply:
		return "FLOAT-REPLY"
	case MsgInfoReply:
		return "INFO-REPLY"
	case MsgRects:
		return "RECTS"
	case MsgPairs:
		return "PAIRS"
	case MsgError:
		return "ERROR"
	case MsgBatch:
		return "BATCH"
	case MsgBatchReply:
		return "BATCH-REPLY"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Fixed wire sizes in bytes.
const (
	// ObjectSize is the encoded size of one spatial object:
	// uint32 id + 4×float32 MBR. This is the cost model's default Bobj.
	ObjectSize = 4 + 4*4
	// RectSize is the encoded size of one rectangle.
	RectSize = 4 * 4
	// PointSize is the encoded size of one point.
	PointSize = 2 * 4
	// CountSize is the encoded size of one aggregate answer (BA).
	CountSize = 8
	// PairSize is the encoded size of one join-result pair.
	PairSize = 4 + 4
)

// Errors returned by the decoders.
var (
	ErrShortFrame = errors.New("wire: frame too short")
	ErrBadType    = errors.New("wire: unexpected message type")
	ErrTrailing   = errors.New("wire: trailing bytes after payload")
)

var le = binary.LittleEndian

// --- primitive encoders -------------------------------------------------

func putRect(b []byte, r geom.Rect) {
	le.PutUint32(b[0:], math.Float32bits(float32(r.MinX)))
	le.PutUint32(b[4:], math.Float32bits(float32(r.MinY)))
	le.PutUint32(b[8:], math.Float32bits(float32(r.MaxX)))
	le.PutUint32(b[12:], math.Float32bits(float32(r.MaxY)))
}

func getRect(b []byte) geom.Rect {
	return geom.Rect{
		MinX: float64(math.Float32frombits(le.Uint32(b[0:]))),
		MinY: float64(math.Float32frombits(le.Uint32(b[4:]))),
		MaxX: float64(math.Float32frombits(le.Uint32(b[8:]))),
		MaxY: float64(math.Float32frombits(le.Uint32(b[12:]))),
	}
}

func putPoint(b []byte, p geom.Point) {
	le.PutUint32(b[0:], math.Float32bits(float32(p.X)))
	le.PutUint32(b[4:], math.Float32bits(float32(p.Y)))
}

func getPoint(b []byte) geom.Point {
	return geom.Point{
		X: float64(math.Float32frombits(le.Uint32(b[0:]))),
		Y: float64(math.Float32frombits(le.Uint32(b[4:]))),
	}
}

func putObject(b []byte, o geom.Object) {
	le.PutUint32(b[0:], o.ID)
	putRect(b[4:], o.MBR)
}

func getObject(b []byte) geom.Object {
	return geom.Object{ID: le.Uint32(b[0:]), MBR: getRect(b[4:])}
}

func putFloat64(b []byte, f float64) { le.PutUint64(b, math.Float64bits(f)) }
func getFloat64(b []byte) float64    { return math.Float64frombits(le.Uint64(b)) }

// --- append-style encoding ------------------------------------------------

// All frame encoders come in two forms: AppendX appends the frame to a
// caller-provided buffer (typically obtained from package bufpool) and
// returns the extended slice, allocating nothing when capacity suffices;
// EncodeX is the convenience form allocating a fresh exact-length frame.
// Both produce bit-identical bytes, so metering never depends on which
// form a caller uses.

// grow extends dst by n bytes and returns the extended slice plus the
// n-byte window to fill.
func grow(dst []byte, n int) ([]byte, []byte) {
	l := len(dst)
	dst = slices.Grow(dst, n)[:l+n]
	return dst, dst[l:]
}

// appendRectFrame appends a [type + rect] frame (WINDOW, COUNT, AVG-AREA).
func appendRectFrame(dst []byte, t MsgType, w geom.Rect) []byte {
	dst, b := grow(dst, 1+RectSize)
	b[0] = byte(t)
	putRect(b[1:], w)
	return dst
}

// AppendWindow appends a WINDOW query frame for window w.
// Frame: type + rect = 17 bytes.
func AppendWindow(dst []byte, w geom.Rect) []byte {
	return appendRectFrame(dst, MsgWindow, w)
}

// AppendCount appends a COUNT query frame for window w.
func AppendCount(dst []byte, w geom.Rect) []byte {
	return appendRectFrame(dst, MsgCount, w)
}

// AppendAvgArea appends an AVG-AREA aggregate query frame for window w.
func AppendAvgArea(dst []byte, w geom.Rect) []byte {
	return appendRectFrame(dst, MsgAvgArea, w)
}

func appendRangeFrame(dst []byte, t MsgType, p geom.Point, eps float64) []byte {
	dst, b := grow(dst, 1+PointSize+4)
	b[0] = byte(t)
	putPoint(b[1:], p)
	le.PutUint32(b[1+PointSize:], math.Float32bits(float32(eps)))
	return dst
}

// AppendRange appends an ε-RANGE query frame around point p.
// Frame: type + point + eps(float32) = 13 bytes.
func AppendRange(dst []byte, p geom.Point, eps float64) []byte {
	return appendRangeFrame(dst, MsgRange, p, eps)
}

// AppendRangeCount appends a COUNT-over-ε-range aggregate query frame.
func AppendRangeCount(dst []byte, p geom.Point, eps float64) []byte {
	return appendRangeFrame(dst, MsgRangeCount, p, eps)
}

func appendBucketRangeFrame(dst []byte, t MsgType, pts []geom.Point, eps float64) []byte {
	dst, b := grow(dst, 1+4+4+PointSize*len(pts))
	b[0] = byte(t)
	le.PutUint32(b[1:], math.Float32bits(float32(eps)))
	le.PutUint32(b[5:], uint32(len(pts)))
	off := 9
	for _, p := range pts {
		putPoint(b[off:], p)
		off += PointSize
	}
	return dst
}

// AppendBucketRange appends a bucket of ε-RANGE queries submitted at once
// (§3.1, "bucket queries"). Frame: type + eps + n + n points.
func AppendBucketRange(dst []byte, pts []geom.Point, eps float64) []byte {
	return appendBucketRangeFrame(dst, MsgBucketRange, pts, eps)
}

// AppendBucketRangeCount is the aggregate variant of AppendBucketRange:
// the server answers with one count per probe point instead of objects.
func AppendBucketRangeCount(dst []byte, pts []geom.Point, eps float64) []byte {
	return appendBucketRangeFrame(dst, MsgBucketRangeCount, pts, eps)
}

// AppendInfo appends a dataset-info request frame.
func AppendInfo(dst []byte) []byte { return append(dst, byte(MsgInfo)) }

// AppendMBRLevel appends a SemiJoin-only request frame for the MBRs of
// one R-tree level. Level 0 is the leaf level.
func AppendMBRLevel(dst []byte, level int) []byte {
	dst, b := grow(dst, 1+4)
	b[0] = byte(MsgMBRLevel)
	le.PutUint32(b[1:], uint32(level))
	return dst
}

// AppendMBRMatch appends a SemiJoin-only batch request frame: return all
// objects intersecting (or within eps of) any of the given rectangles.
func AppendMBRMatch(dst []byte, rects []geom.Rect, eps float64) []byte {
	dst, b := grow(dst, 1+4+4+RectSize*len(rects))
	b[0] = byte(MsgMBRMatch)
	le.PutUint32(b[1:], math.Float32bits(float32(eps)))
	le.PutUint32(b[5:], uint32(len(rects)))
	off := 9
	for _, r := range rects {
		putRect(b[off:], r)
		off += RectSize
	}
	return dst
}

// AppendUploadJoin appends a SemiJoin-only request frame: join the
// uploaded objects against the server's dataset with predicate distance
// ≤ eps (eps = 0 means MBR intersection) and return the qualifying pairs
// with the uploaded object's ID first.
func AppendUploadJoin(dst []byte, objs []geom.Object, eps float64) []byte {
	dst, b := grow(dst, 1+4+4+ObjectSize*len(objs))
	b[0] = byte(MsgUploadJoin)
	le.PutUint32(b[1:], math.Float32bits(float32(eps)))
	le.PutUint32(b[5:], uint32(len(objs)))
	off := 9
	for _, o := range objs {
		putObject(b[off:], o)
		off += ObjectSize
	}
	return dst
}

// AppendObjects appends an OBJECTS response frame.
func AppendObjects(dst []byte, objs []geom.Object) []byte {
	dst, b := grow(dst, 1+4+ObjectSize*len(objs))
	b[0] = byte(MsgObjects)
	le.PutUint32(b[1:], uint32(len(objs)))
	off := 5
	for _, o := range objs {
		putObject(b[off:], o)
		off += ObjectSize
	}
	return dst
}

// AppendCountReply appends a single aggregate answer frame.
func AppendCountReply(dst []byte, n int64) []byte {
	dst, b := grow(dst, 1+CountSize)
	b[0] = byte(MsgCountReply)
	le.PutUint64(b[1:], uint64(n))
	return dst
}

// AppendCountsReply appends one aggregate answer per probe of a bucket
// aggregate request.
func AppendCountsReply(dst []byte, ns []int64) []byte {
	dst, b := grow(dst, 1+4+CountSize*len(ns))
	b[0] = byte(MsgCountsReply)
	le.PutUint32(b[1:], uint32(len(ns)))
	off := 5
	for _, n := range ns {
		le.PutUint64(b[off:], uint64(n))
		off += CountSize
	}
	return dst
}

// AppendFloatReply appends a floating-point aggregate answer (AVG-AREA).
func AppendFloatReply(dst []byte, f float64) []byte {
	dst, b := grow(dst, 1+8)
	b[0] = byte(MsgFloatReply)
	putFloat64(b[1:], f)
	return dst
}

// AppendBucketObjects appends the response frame to a bucket ε-RANGE
// request: for each probe, the number of result objects followed by the
// objects, concatenated in probe order. This matches Eq. (5): each
// probe's answer carries an extra per-probe record (the count header).
func AppendBucketObjects(dst []byte, groups [][]geom.Object) []byte {
	size := 1 + 4
	for _, g := range groups {
		size += 4 + ObjectSize*len(g)
	}
	dst, b := grow(dst, size)
	b[0] = byte(MsgBucketObjects)
	le.PutUint32(b[1:], uint32(len(groups)))
	off := 5
	for _, g := range groups {
		le.PutUint32(b[off:], uint32(len(g)))
		off += 4
		for _, o := range g {
			putObject(b[off:], o)
			off += ObjectSize
		}
	}
	return dst
}

// AppendBucketObjectsFlat is AppendBucketObjects for a flattened group
// representation: lens[i] objects of the i-th probe, stored consecutively
// in objs. It lets a server build bucket replies from reusable scratch
// slices instead of materializing a [][]Object; the produced bytes are
// identical to AppendBucketObjects on the equivalent nested slices.
func AppendBucketObjectsFlat(dst []byte, lens []int, objs []geom.Object) []byte {
	size := 1 + 4 + 4*len(lens) + ObjectSize*len(objs)
	dst, b := grow(dst, size)
	b[0] = byte(MsgBucketObjects)
	le.PutUint32(b[1:], uint32(len(lens)))
	off := 5
	next := 0
	for _, n := range lens {
		le.PutUint32(b[off:], uint32(n))
		off += 4
		for _, o := range objs[next : next+n] {
			putObject(b[off:], o)
			off += ObjectSize
		}
		next += n
	}
	return dst
}

// AppendRects appends a RECTS response frame (R-tree level MBRs).
func AppendRects(dst []byte, rects []geom.Rect) []byte {
	dst, b := grow(dst, 1+4+RectSize*len(rects))
	b[0] = byte(MsgRects)
	le.PutUint32(b[1:], uint32(len(rects)))
	off := 5
	for _, r := range rects {
		putRect(b[off:], r)
		off += RectSize
	}
	return dst
}

// AppendPairs appends a PAIRS response frame (UPLOAD-JOIN results).
func AppendPairs(dst []byte, pairs []geom.Pair) []byte {
	dst, b := grow(dst, 1+4+PairSize*len(pairs))
	b[0] = byte(MsgPairs)
	le.PutUint32(b[1:], uint32(len(pairs)))
	off := 5
	for _, p := range pairs {
		le.PutUint32(b[off:], p.RID)
		le.PutUint32(b[off+4:], p.SID)
		off += PairSize
	}
	return dst
}

// AppendInfoReply appends a dataset-metadata response frame.
func AppendInfoReply(dst []byte, info Info) []byte {
	dst, b := grow(dst, 1+8+RectSize+4+1)
	b[0] = byte(MsgInfoReply)
	le.PutUint64(b[1:], uint64(info.Count))
	putRect(b[9:], info.Bounds)
	le.PutUint32(b[9+RectSize:], uint32(info.TreeHeight))
	if info.PointData {
		b[9+RectSize+4] = 1
	} else {
		b[9+RectSize+4] = 0
	}
	return dst
}

// --- batch envelope -------------------------------------------------------

// The batch envelope layout is shared by MsgBatch and MsgBatchReply:
//
//	[type:1][n:4] then n × ([len:4][sub-frame bytes])
//
// Each sub-frame is a complete frame of this protocol (type byte
// included). Request envelopes carry request sub-frames; reply envelopes
// carry one response sub-frame per sub-request, in submission order — a
// sub-request the server cannot answer yields a MsgError *sub*-frame, so
// one bad probe never fails its batch-mates.

// BatchHdr is the fixed envelope overhead and BatchEntryHdr the per-sub
// overhead, exposed so cost accounting and tests can reason about the
// amortization arithmetic.
const (
	BatchHdr      = 1 + 4
	BatchEntryHdr = 4
)

func appendBatchFrame(dst []byte, t MsgType, subs [][]byte) []byte {
	size := BatchHdr
	for _, s := range subs {
		size += BatchEntryHdr + len(s)
	}
	dst, b := grow(dst, size)
	b[0] = byte(t)
	le.PutUint32(b[1:], uint32(len(subs)))
	off := BatchHdr
	for _, s := range subs {
		le.PutUint32(b[off:], uint32(len(s)))
		off += BatchEntryHdr
		copy(b[off:], s)
		off += len(s)
	}
	return dst
}

// AppendBatch appends a MsgBatch request envelope around the given
// request sub-frames.
func AppendBatch(dst []byte, subs [][]byte) []byte {
	return appendBatchFrame(dst, MsgBatch, subs)
}

// AppendBatchReply appends a MsgBatchReply envelope around the given
// response sub-frames.
func AppendBatchReply(dst []byte, subs [][]byte) []byte {
	return appendBatchFrame(dst, MsgBatchReply, subs)
}

// AppendBatchReplyHeader appends the envelope header of a MsgBatchReply
// that will carry n sub-replies. Servers build replies incrementally:
// header, then for each sub-request BeginBatchEntry / append the reply /
// EndBatchEntry — so sub-replies of unknown size are encoded straight
// into the caller's buffer without intermediate copies.
func AppendBatchReplyHeader(dst []byte, n int) []byte {
	dst, b := grow(dst, BatchHdr)
	b[0] = byte(MsgBatchReply)
	le.PutUint32(b[1:], uint32(n))
	return dst
}

// BeginBatchEntry reserves the 4-byte length prefix of the next batch
// entry and returns the extended slice plus the prefix offset to hand to
// EndBatchEntry once the entry's sub-frame has been appended.
func BeginBatchEntry(dst []byte) ([]byte, int) {
	off := len(dst)
	dst, b := grow(dst, BatchEntryHdr)
	le.PutUint32(b, 0)
	return dst, off
}

// EndBatchEntry patches the length prefix reserved at off with the size
// of the bytes appended since.
func EndBatchEntry(dst []byte, off int) []byte {
	le.PutUint32(dst[off:], uint32(len(dst)-off-BatchEntryHdr))
	return dst
}

// EncodeBatch encodes a MsgBatch request envelope.
func EncodeBatch(subs [][]byte) []byte { return AppendBatch(nil, subs) }

// EncodeBatchReply encodes a MsgBatchReply envelope.
func EncodeBatchReply(subs [][]byte) []byte { return AppendBatchReply(nil, subs) }

// AppendError appends a server-side error frame.
func AppendError(dst []byte, msg string) []byte {
	dst, b := grow(dst, 1+4+len(msg))
	b[0] = byte(MsgError)
	le.PutUint32(b[1:], uint32(len(msg)))
	copy(b[5:], msg)
	return dst
}

// --- request frames -----------------------------------------------------

// EncodeWindow encodes a WINDOW query for window w.
// Frame: type + rect = 17 bytes.
func EncodeWindow(w geom.Rect) []byte { return AppendWindow(nil, w) }

// EncodeCount encodes a COUNT query for window w.
func EncodeCount(w geom.Rect) []byte { return AppendCount(nil, w) }

// EncodeAvgArea encodes an AVG-AREA aggregate query for window w.
func EncodeAvgArea(w geom.Rect) []byte { return AppendAvgArea(nil, w) }

// EncodeRange encodes an ε-RANGE query around point p.
// Frame: type + point + eps(float32) = 13 bytes.
func EncodeRange(p geom.Point, eps float64) []byte { return AppendRange(nil, p, eps) }

// EncodeRangeCount encodes a COUNT-over-ε-range aggregate query.
func EncodeRangeCount(p geom.Point, eps float64) []byte {
	return AppendRangeCount(nil, p, eps)
}

// EncodeBucketRange encodes a bucket of ε-RANGE queries submitted at once
// (§3.1, "bucket queries"). Frame: type + eps + n + n points.
func EncodeBucketRange(pts []geom.Point, eps float64) []byte {
	return AppendBucketRange(nil, pts, eps)
}

// EncodeBucketRangeCount is the aggregate variant of EncodeBucketRange:
// the server answers with one count per probe point instead of objects.
func EncodeBucketRangeCount(pts []geom.Point, eps float64) []byte {
	return AppendBucketRangeCount(nil, pts, eps)
}

// EncodeInfo encodes a dataset-info request (cardinality and bounds).
// Servers routinely advertise this much (it is the acknowledgment
// metadata the paper assumes available).
func EncodeInfo() []byte { return AppendInfo(nil) }

// EncodeMBRLevel encodes a SemiJoin-only request for the MBRs of one
// R-tree level. Level 0 is the leaf level.
func EncodeMBRLevel(level int) []byte { return AppendMBRLevel(nil, level) }

// EncodeMBRMatch encodes a SemiJoin-only batch request: return all objects
// intersecting (or within eps of) any of the given rectangles.
func EncodeMBRMatch(rects []geom.Rect, eps float64) []byte {
	return AppendMBRMatch(nil, rects, eps)
}

// EncodeUploadJoin encodes a SemiJoin-only request: join the uploaded
// objects against the server's dataset with predicate distance ≤ eps
// (eps = 0 means MBR intersection) and return the qualifying pairs with
// the uploaded object's ID first.
func EncodeUploadJoin(objs []geom.Object, eps float64) []byte {
	return AppendUploadJoin(nil, objs, eps)
}

// --- response frames ----------------------------------------------------

// EncodeObjects encodes an OBJECTS response.
func EncodeObjects(objs []geom.Object) []byte { return AppendObjects(nil, objs) }

// EncodeCountReply encodes a single aggregate answer.
func EncodeCountReply(n int64) []byte { return AppendCountReply(nil, n) }

// EncodeCountsReply encodes one aggregate answer per probe of a bucket
// aggregate request.
func EncodeCountsReply(ns []int64) []byte { return AppendCountsReply(nil, ns) }

// EncodeFloatReply encodes a floating-point aggregate answer (AVG-AREA).
func EncodeFloatReply(f float64) []byte { return AppendFloatReply(nil, f) }

// EncodeBucketObjects encodes the response to a bucket ε-RANGE request:
// for each probe, the number of result objects followed by the objects,
// concatenated in probe order. This matches Eq. (5): each probe's answer
// carries an extra per-probe record (the count header).
func EncodeBucketObjects(groups [][]geom.Object) []byte {
	return AppendBucketObjects(nil, groups)
}

// Info is the public dataset metadata a server advertises.
type Info struct {
	Count      int64     // dataset cardinality
	Bounds     geom.Rect // dataset bounding rectangle
	TreeHeight int32     // R-tree height (published only for SemiJoin runs)
	PointData  bool      // true when every object has a degenerate MBR
}

// EncodeInfoReply encodes dataset metadata.
func EncodeInfoReply(info Info) []byte { return AppendInfoReply(nil, info) }

// EncodeRects encodes a RECTS response (R-tree level MBRs).
func EncodeRects(rects []geom.Rect) []byte { return AppendRects(nil, rects) }

// EncodePairs encodes a PAIRS response (UPLOAD-JOIN results).
func EncodePairs(pairs []geom.Pair) []byte { return AppendPairs(nil, pairs) }

// EncodeError encodes a server-side error message.
func EncodeError(msg string) []byte { return AppendError(nil, msg) }
