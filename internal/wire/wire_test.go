package wire

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func rnd() *rand.Rand { return rand.New(rand.NewSource(42)) }

func randObjects(r *rand.Rand, n int) []geom.Object {
	objs := make([]geom.Object, n)
	for i := range objs {
		x := float64(r.Intn(10000)) / 4
		y := float64(r.Intn(10000)) / 4
		objs[i] = geom.Object{
			ID:  r.Uint32(),
			MBR: geom.R(x, y, x+float64(r.Intn(100))/4, y+float64(r.Intn(100))/4),
		}
	}
	return objs
}

func TestWindowRoundTrip(t *testing.T) {
	w := geom.R(1.5, -2.25, 100.75, 200.5)
	frame := EncodeWindow(w)
	if len(frame) != 1+RectSize {
		t.Fatalf("frame size = %d, want %d", len(frame), 1+RectSize)
	}
	if Type(frame) != MsgWindow {
		t.Fatalf("type = %v, want WINDOW", Type(frame))
	}
	got, err := DecodeWindowLike(frame, MsgWindow)
	if err != nil {
		t.Fatal(err)
	}
	if got != w {
		t.Fatalf("round trip = %v, want %v", got, w)
	}
}

func TestCountAndAvgAreaRoundTrip(t *testing.T) {
	w := geom.R(0, 0, 8, 8)
	for _, mt := range []MsgType{MsgCount, MsgAvgArea} {
		var frame []byte
		if mt == MsgCount {
			frame = EncodeCount(w)
		} else {
			frame = EncodeAvgArea(w)
		}
		got, err := DecodeWindowLike(frame, mt)
		if err != nil {
			t.Fatalf("%v: %v", mt, err)
		}
		if got != w {
			t.Fatalf("%v: got %v, want %v", mt, got, w)
		}
	}
}

func TestRangeRoundTrip(t *testing.T) {
	p := geom.Pt(3.25, -7.5)
	frame := EncodeRange(p, 12.5)
	gotP, gotEps, err := DecodeRangeLike(frame, MsgRange)
	if err != nil {
		t.Fatal(err)
	}
	if gotP != p || gotEps != 12.5 {
		t.Fatalf("got (%v, %v), want (%v, 12.5)", gotP, gotEps, p)
	}
	cnt := EncodeRangeCount(p, 12.5)
	if Type(cnt) != MsgRangeCount {
		t.Fatalf("type = %v, want RANGE-COUNT", Type(cnt))
	}
	if _, _, err := DecodeRangeLike(cnt, MsgRangeCount); err != nil {
		t.Fatal(err)
	}
}

func TestBucketRangeRoundTrip(t *testing.T) {
	pts := []geom.Point{geom.Pt(1, 2), geom.Pt(3, 4), geom.Pt(-5.5, 6.25)}
	frame := EncodeBucketRange(pts, 2.5)
	gotPts, gotEps, err := DecodeBucketRangeLike(frame, MsgBucketRange)
	if err != nil {
		t.Fatal(err)
	}
	if gotEps != 2.5 || len(gotPts) != len(pts) {
		t.Fatalf("got eps=%v n=%d", gotEps, len(gotPts))
	}
	for i := range pts {
		if gotPts[i] != pts[i] {
			t.Fatalf("point %d: got %v, want %v", i, gotPts[i], pts[i])
		}
	}
}

func TestBucketRangeEmpty(t *testing.T) {
	frame := EncodeBucketRange(nil, 1)
	pts, _, err := DecodeBucketRangeLike(frame, MsgBucketRange)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 0 {
		t.Fatalf("got %d points, want 0", len(pts))
	}
}

func TestObjectsRoundTrip(t *testing.T) {
	objs := randObjects(rnd(), 57)
	frame := EncodeObjects(objs)
	if want := 5 + ObjectSize*57; len(frame) != want {
		t.Fatalf("frame size = %d, want %d", len(frame), want)
	}
	got, err := DecodeObjects(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(objs) {
		t.Fatalf("got %d objects, want %d", len(got), len(objs))
	}
	for i := range objs {
		if got[i] != objs[i] {
			t.Fatalf("object %d: got %v, want %v", i, got[i], objs[i])
		}
	}
}

func TestCountReplyRoundTrip(t *testing.T) {
	for _, n := range []int64{0, 1, -1, 1 << 40} {
		got, err := DecodeCountReply(EncodeCountReply(n))
		if err != nil {
			t.Fatal(err)
		}
		if got != n {
			t.Fatalf("got %d, want %d", got, n)
		}
	}
}

func TestCountsReplyRoundTrip(t *testing.T) {
	ns := []int64{5, 0, 123456789, -3}
	got, err := DecodeCountsReply(EncodeCountsReply(ns))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ns) {
		t.Fatal("length mismatch")
	}
	for i := range ns {
		if got[i] != ns[i] {
			t.Fatalf("count %d: got %d, want %d", i, got[i], ns[i])
		}
	}
}

func TestFloatReplyRoundTrip(t *testing.T) {
	got, err := DecodeFloatReply(EncodeFloatReply(3.14159))
	if err != nil {
		t.Fatal(err)
	}
	if got != 3.14159 {
		t.Fatalf("got %v", got)
	}
}

func TestBucketObjectsRoundTrip(t *testing.T) {
	r := rnd()
	groups := [][]geom.Object{
		randObjects(r, 3),
		nil,
		randObjects(r, 1),
		randObjects(r, 10),
	}
	frame := EncodeBucketObjects(groups)
	got, err := DecodeBucketObjects(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(groups) {
		t.Fatalf("got %d groups, want %d", len(got), len(groups))
	}
	for i, g := range groups {
		if len(got[i]) != len(g) {
			t.Fatalf("group %d: got %d objects, want %d", i, len(got[i]), len(g))
		}
		for j := range g {
			if got[i][j] != g[j] {
				t.Fatalf("group %d object %d mismatch", i, j)
			}
		}
	}
}

func TestInfoRoundTrip(t *testing.T) {
	info := Info{Count: 35000, Bounds: geom.R(0, 0, 10000, 10000), TreeHeight: 4}
	got, err := DecodeInfoReply(EncodeInfoReply(info))
	if err != nil {
		t.Fatal(err)
	}
	if got != info {
		t.Fatalf("got %+v, want %+v", got, info)
	}
	if len(EncodeInfo()) != 1 {
		t.Fatal("INFO request should be a single byte")
	}
}

func TestMBRLevelRoundTrip(t *testing.T) {
	lvl, err := DecodeMBRLevel(EncodeMBRLevel(2))
	if err != nil {
		t.Fatal(err)
	}
	if lvl != 2 {
		t.Fatalf("got level %d, want 2", lvl)
	}
}

func TestMBRMatchRoundTrip(t *testing.T) {
	rects := []geom.Rect{geom.R(0, 0, 1, 1), geom.R(5, 5, 9, 9)}
	got, eps, err := DecodeMBRMatch(EncodeMBRMatch(rects, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if eps != 0.5 || len(got) != 2 || got[0] != rects[0] || got[1] != rects[1] {
		t.Fatalf("got %v eps=%v", got, eps)
	}
}

func TestUploadJoinRoundTrip(t *testing.T) {
	objs := randObjects(rnd(), 7)
	got, eps, err := DecodeUploadJoin(EncodeUploadJoin(objs, 1.25))
	if err != nil {
		t.Fatal(err)
	}
	if eps != 1.25 || len(got) != 7 {
		t.Fatalf("got %d objs eps=%v", len(got), eps)
	}
	for i := range objs {
		if got[i] != objs[i] {
			t.Fatalf("object %d mismatch", i)
		}
	}
}

func TestRectsRoundTrip(t *testing.T) {
	rects := []geom.Rect{geom.R(0, 0, 1, 1), geom.R(2, 2, 3, 3), geom.R(-1, -1, 0, 0)}
	got, err := DecodeRects(EncodeRects(rects))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rects) {
		t.Fatal("length mismatch")
	}
	for i := range rects {
		if got[i] != rects[i] {
			t.Fatalf("rect %d mismatch", i)
		}
	}
}

func TestPairsRoundTrip(t *testing.T) {
	pairs := []geom.Pair{{RID: 1, SID: 2}, {RID: 7, SID: 7}, {RID: 0, SID: 4000000000}}
	got, err := DecodePairs(EncodePairs(pairs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pairs) {
		t.Fatal("length mismatch")
	}
	for i := range pairs {
		if got[i] != pairs[i] {
			t.Fatalf("pair %d: got %v, want %v", i, got[i], pairs[i])
		}
	}
}

func TestErrorRoundTrip(t *testing.T) {
	err := DecodeError(EncodeError("window out of bounds"))
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("expected *ServerError, got %T", err)
	}
	if se.Msg != "window out of bounds" {
		t.Fatalf("msg = %q", se.Msg)
	}
}

func TestDecodeRejectsWrongType(t *testing.T) {
	frame := EncodeCount(geom.R(0, 0, 1, 1))
	if _, err := DecodeWindowLike(frame, MsgWindow); !errors.Is(err, ErrBadType) {
		t.Fatalf("expected ErrBadType, got %v", err)
	}
}

func TestDecodeRejectsShortFrames(t *testing.T) {
	cases := []struct {
		name string
		f    func([]byte) error
		full []byte
	}{
		{"objects", func(b []byte) error { _, err := DecodeObjects(b); return err }, EncodeObjects(randObjects(rnd(), 3))},
		{"count", func(b []byte) error { _, err := DecodeCountReply(b); return err }, EncodeCountReply(9)},
		{"rects", func(b []byte) error { _, err := DecodeRects(b); return err }, EncodeRects([]geom.Rect{geom.R(0, 0, 1, 1)})},
		{"pairs", func(b []byte) error { _, err := DecodePairs(b); return err }, EncodePairs([]geom.Pair{{RID: 1, SID: 2}})},
		{"window", func(b []byte) error { _, err := DecodeWindowLike(b, MsgWindow); return err }, EncodeWindow(geom.R(0, 0, 1, 1))},
		{"bucketobjs", func(b []byte) error { _, err := DecodeBucketObjects(b); return err }, EncodeBucketObjects([][]geom.Object{randObjects(rnd(), 2)})},
	}
	for _, c := range cases {
		for cut := 1; cut < len(c.full); cut += 3 {
			if err := c.f(c.full[:cut]); err == nil {
				t.Errorf("%s: truncation to %d bytes not detected", c.name, cut)
			}
		}
	}
}

func TestDecodeEmptyFrame(t *testing.T) {
	if Type(nil) != MsgInvalid {
		t.Error("Type(nil) should be MsgInvalid")
	}
	if _, err := DecodeObjects(nil); err == nil {
		t.Error("DecodeObjects(nil) should fail")
	}
}

func TestQuickObjectsRoundTrip(t *testing.T) {
	r := rnd()
	f := func() bool {
		objs := randObjects(r, r.Intn(64))
		got, err := DecodeObjects(EncodeObjects(objs))
		if err != nil || len(got) != len(objs) {
			return false
		}
		for i := range objs {
			if got[i] != objs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMsgTypeStrings(t *testing.T) {
	named := []MsgType{
		MsgWindow, MsgCount, MsgRange, MsgBucketRange, MsgRangeCount,
		MsgBucketRangeCount, MsgAvgArea, MsgInfo, MsgMBRLevel, MsgMBRMatch,
		MsgUploadJoin, MsgObjects, MsgCountReply, MsgBucketObjects,
		MsgCountsReply, MsgFloatReply, MsgInfoReply, MsgRects, MsgPairs, MsgError,
	}
	seen := map[string]bool{}
	for _, mt := range named {
		s := mt.String()
		if s == "" || seen[s] {
			t.Fatalf("duplicate or empty string for %d: %q", mt, s)
		}
		seen[s] = true
	}
	if MsgType(200).String() != "MsgType(200)" {
		t.Fatalf("unknown type string = %q", MsgType(200).String())
	}
}
