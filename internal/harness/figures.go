package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/server"
)

// spec returns the distance-join spec used by the synthetic experiments.
func (cfg Config) spec() core.Spec {
	return core.Spec{Kind: core.Distance, Eps: cfg.Eps}
}

// Fig6a reproduces Figure 6(a): total bytes of UpJoin across cluster
// counts for α ∈ {0.15, 0.20, 0.25, 0.30}.
func Fig6a(cfg Config) (*Table, error) {
	t := &Table{ID: "fig6a", Title: "Parameter α for UpJoin", XName: "clusters"}
	alphas := []float64{0.15, 0.20, 0.25, 0.30}
	var xs []string
	for _, k := range Clusters {
		xs = append(xs, fmt.Sprint(k))
	}
	for _, alpha := range alphas {
		alg := core.UpJoin{Alpha: alpha}
		for _, k := range Clusters {
			k := k
			cell, err := averageOver(cfg, func(run int) (core.Stats, int, error) {
				robjs, sobjs := synthPair(cfg, k, run)
				return runOnce(alg, robjs, sobjs, cfg, cfg.spec(), int64(run))
			})
			if err != nil {
				return nil, err
			}
			cell.Algorithm = fmt.Sprintf("α=%.2f", alpha)
			cell.X = fmt.Sprint(k)
			t.Cells = append(t.Cells, cell)
		}
	}
	sortCells(t.Cells, xs)
	return t, nil
}

// Fig6b reproduces Figure 6(b): total bytes of SrJoin across cluster
// counts for ρ ∈ {30%, 50%, 100%, 200%, 350%} of the average density.
func Fig6b(cfg Config) (*Table, error) {
	t := &Table{ID: "fig6b", Title: "Parameter ρ for SrJoin", XName: "clusters"}
	rhos := []float64{0.30, 0.50, 1.00, 2.00, 3.50}
	var xs []string
	for _, k := range Clusters {
		xs = append(xs, fmt.Sprint(k))
	}
	for _, rho := range rhos {
		alg := core.SrJoin{Rho: rho}
		for _, k := range Clusters {
			k := k
			cell, err := averageOver(cfg, func(run int) (core.Stats, int, error) {
				robjs, sobjs := synthPair(cfg, k, run)
				return runOnce(alg, robjs, sobjs, cfg, cfg.spec(), int64(run))
			})
			if err != nil {
				return nil, err
			}
			cell.Algorithm = fmt.Sprintf("ρ=%.0f%%", rho*100)
			cell.X = fmt.Sprint(k)
			t.Cells = append(t.Cells, cell)
		}
	}
	sortCells(t.Cells, xs)
	return t, nil
}

// threeWay runs srJoin/upJoin/mobiJoin across cluster counts with the
// given buffer — the shape of Figures 7(a) and 7(b).
func threeWay(cfg Config, id, title string) (*Table, error) {
	t := &Table{ID: id, Title: title, XName: "clusters"}
	algs := []core.Algorithm{core.SrJoin{}, core.UpJoin{}, core.MobiJoin{}}
	var xs []string
	for _, k := range Clusters {
		xs = append(xs, fmt.Sprint(k))
	}
	for _, alg := range algs {
		for _, k := range Clusters {
			k := k
			cell, err := averageOver(cfg, func(run int) (core.Stats, int, error) {
				robjs, sobjs := synthPair(cfg, k, run)
				return runOnce(alg, robjs, sobjs, cfg, cfg.spec(), int64(run))
			})
			if err != nil {
				return nil, err
			}
			cell.Algorithm = alg.Name()
			cell.X = fmt.Sprint(k)
			t.Cells = append(t.Cells, cell)
		}
	}
	sortCells(t.Cells, xs)
	return t, nil
}

// Fig7a reproduces Figure 7(a): the three algorithms with a 100-object
// buffer.
func Fig7a(cfg Config) (*Table, error) {
	cfg.Buffer = 100
	return threeWay(cfg, "fig7a", "srJoin vs upJoin vs mobiJoin, buffer=100")
}

// Fig7b reproduces Figure 7(b): the three algorithms with an 800-object
// buffer.
func Fig7b(cfg Config) (*Table, error) {
	cfg.Buffer = 800
	return threeWay(cfg, "fig7b", "srJoin vs upJoin vs mobiJoin, buffer=800")
}

// realDataEps is the distance threshold of the real-data experiments:
// a third of the synthetic default, because ε-range probes against the
// dense 35K-segment railway return ~2·ε/segmentLength segments each, and
// the paper's "hotels near railways" queries use city-scale radii that
// match only a handful of segments.
func realDataEps(cfg Config) float64 {
	return dataset.World.Width() * 0.0025
}

// railway returns the shared large dataset for the real-data experiments
// (~35K segments; cached across calls because generation is costly).
var railwayCache = map[int64][]geom.Object{}

func railwayData(seed int64) []geom.Object {
	if objs, ok := railwayCache[seed]; ok {
		return objs
	}
	objs := dataset.Railway(dataset.DefaultRailway(), seed)
	railwayCache[seed] = objs
	return objs
}

// Fig8a reproduces Figure 8(a): the bucket versions of the three
// algorithms joining the railway dataset (as R) with a 1000-point
// synthetic dataset (as S), varying the synthetic skew.
func Fig8a(cfg Config) (*Table, error) {
	cfg.Bucket = true
	cfg.Eps = realDataEps(cfg)
	t := &Table{ID: "fig8a", Title: "Real data: srJoin/upJoin vs mobiJoin (bucket versions)", XName: "clusters"}
	algs := []core.Algorithm{core.SrJoin{}, core.UpJoin{}, core.MobiJoin{}}
	rail := railwayData(cfg.BaseSeed)
	var xs []string
	for _, k := range Clusters {
		xs = append(xs, fmt.Sprint(k))
	}
	for _, alg := range algs {
		for _, k := range Clusters {
			k := k
			cell, err := averageOver(cfg, func(run int) (core.Stats, int, error) {
				_, sobjs := synthPair(cfg, k, run)
				return runOnce(alg, rail, sobjs, cfg, cfg.spec(), int64(run))
			})
			if err != nil {
				return nil, err
			}
			cell.Algorithm = alg.Name()
			cell.X = fmt.Sprint(k)
			t.Cells = append(t.Cells, cell)
		}
	}
	sortCells(t.Cells, xs)
	return t, nil
}

// Fig8b reproduces Figure 8(b): bucket upJoin and srJoin against the
// index-publishing SemiJoin on the railway ⋈ synthetic workload.
func Fig8b(cfg Config) (*Table, error) {
	cfg.Bucket = true
	cfg.Eps = realDataEps(cfg)
	t := &Table{ID: "fig8b", Title: "Real data: upJoin/srJoin vs semiJoin", XName: "clusters"}
	algs := []core.Algorithm{core.UpJoin{}, core.SrJoin{}, core.SemiJoin{}}
	rail := railwayData(cfg.BaseSeed)
	var xs []string
	for _, k := range Clusters {
		xs = append(xs, fmt.Sprint(k))
	}
	for _, alg := range algs {
		for _, k := range Clusters {
			k := k
			cell, err := averageOver(cfg, func(run int) (core.Stats, int, error) {
				_, sobjs := synthPair(cfg, k, run)
				return runOnce(alg, rail, sobjs, cfg, cfg.spec(), int64(run), server.PublishIndex())
			})
			if err != nil {
				return nil, err
			}
			cell.Algorithm = alg.Name()
			cell.X = fmt.Sprint(k)
			t.Cells = append(t.Cells, cell)
		}
	}
	sortCells(t.Cells, xs)
	return t, nil
}

// All runs every figure; the map keys are the experiment ids of
// DESIGN.md §6.
var All = map[string]func(Config) (*Table, error){
	"6a": Fig6a,
	"6b": Fig6b,
	"7a": Fig7a,
	"7b": Fig7b,
	"8a": Fig8a,
	"8b": Fig8b,
}
