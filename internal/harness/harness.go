// Package harness defines and runs the paper's experiments: for every
// figure of the evaluation section (§5) it builds the workload, executes
// the competing algorithms over fresh in-process servers, averages the
// metered byte counts over several seeded runs, and renders the series
// the paper plots.
package harness

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/shard"
)

// Clusters is the x-axis of all synthetic experiments (paper Figs. 6-8).
var Clusters = []int{1, 2, 4, 8, 16, 128}

// Config controls one experiment run.
type Config struct {
	// Runs is the number of seeded repetitions averaged per point; the
	// paper uses 10.
	Runs int
	// BaseSeed offsets the dataset seeds, for sensitivity checks.
	BaseSeed int64
	// Points is the synthetic dataset cardinality (paper: 1000).
	Points int
	// Sigma is the Gaussian cluster spread.
	Sigma float64
	// Eps is the distance-join threshold.
	Eps float64
	// Buffer is the device capacity in objects.
	Buffer int
	// Bucket enables bucket query submission.
	Bucket bool
	// Parallelism enables the concurrent execution engine for every run
	// (0/1 = sequential). Measured byte counts are identical either way;
	// the knob only changes wall-clock time.
	Parallelism int
	// BatchSize, when > 1, multiplexes probes into MsgBatch envelopes of
	// up to this many sub-requests per link. Unlike Parallelism this
	// changes the framing, so measured byte counts shift (fewer frames,
	// fewer packet headers); results are identical.
	BatchSize int
	// Shards, when > 1, splits each relation across this many in-process
	// servers behind a scatter–gather shard.Router. Results are identical
	// to the unsharded run; byte totals shift (one link per shard, its
	// own INFO round trip, per-shard pruning).
	Shards int
	// TreeFanout, when >= 2, stacks the shard endpoints under a
	// hierarchical aggregation tree with this fanout per interior node
	// (see shard.NewTree). Results are identical to the flat scatter;
	// byte totals additionally account the interior uplinks.
	TreeFanout int
	// Replicas, when > 1, serves each shard from this many identical
	// replica servers behind a shard.ReplicaSet (round-robin load
	// balancing with failover). Results are identical; summed byte totals
	// match the unreplicated run when hedging stays off.
	Replicas int
	// HedgePct arms percentile-triggered hedged reads on the replica
	// sets when > 0 (needs Replicas > 1). Hedge traffic costs real bytes
	// and shifts measured totals.
	HedgePct float64
	// Link selects the physical link parameters of every metered link
	// (Eq. 1). The zero value means the WiFi default (MTU 1500, BH 40);
	// netsim.DialupLink() reproduces the paper's dial-up alternative.
	Link netsim.LinkConfig
}

// link resolves the configured link, defaulting to WiFi.
func (c Config) link() netsim.LinkConfig {
	if c.Link == (netsim.LinkConfig{}) {
		return netsim.DefaultLink()
	}
	return c.Link
}

// Defaults mirror §5: 1000-point datasets, buffer 800 (40% of total),
// averaged over 10 runs. Sigma and Eps are our calibration (DESIGN.md
// §6): σ = 2.5% of the world side keeps k=1 clusters compact while
// k=128 approaches uniformity; ε = 0.75% of the side yields non-trivial
// result sets without the ε-expansion dominating partition cells.
func Defaults() Config {
	return Config{
		Runs:     10,
		BaseSeed: 1,
		Points:   1000,
		Sigma:    dataset.World.Width() * 0.025,
		Eps:      dataset.World.Width() * 0.0075,
		Buffer:   800,
	}
}

// Cell is one measured data point.
type Cell struct {
	Algorithm string
	X         string  // x-axis label (cluster count, α value, ...)
	Bytes     float64 // mean total wire bytes
	Queries   float64 // mean query count
	Pairs     float64 // mean result cardinality (sanity)
}

// Table is a named collection of cells, one experiment's output.
type Table struct {
	ID    string // e.g. "fig7a"
	Title string
	XName string
	Cells []Cell
}

// Series returns the ordered distinct series names (algorithms).
func (t *Table) Series() []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range t.Cells {
		if !seen[c.Algorithm] {
			seen[c.Algorithm] = true
			out = append(out, c.Algorithm)
		}
	}
	return out
}

// XValues returns the ordered distinct x labels.
func (t *Table) XValues() []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range t.Cells {
		if !seen[c.X] {
			seen[c.X] = true
			out = append(out, c.X)
		}
	}
	return out
}

// Get returns the cell for (algorithm, x), if present.
func (t *Table) Get(alg, x string) (Cell, bool) {
	for _, c := range t.Cells {
		if c.Algorithm == alg && c.X == x {
			return c, true
		}
	}
	return Cell{}, false
}

// Render writes the table as fixed-width text, one row per x value and
// one column per algorithm — the same layout as the paper's plots.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s (mean total bytes)\n", strings.ToUpper(t.ID), t.Title)
	series := t.Series()
	fmt.Fprintf(w, "%-10s", t.XName)
	for _, s := range series {
		fmt.Fprintf(w, "%14s", s)
	}
	fmt.Fprintln(w)
	for _, x := range t.XValues() {
		fmt.Fprintf(w, "%-10s", x)
		for _, s := range series {
			if c, ok := t.Get(s, x); ok {
				fmt.Fprintf(w, "%14.0f", c.Bytes)
			} else {
				fmt.Fprintf(w, "%14s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

// runOnce executes one algorithm over freshly served datasets and returns
// its stats and result size.
func runOnce(alg core.Algorithm, robjs, sobjs []geom.Object, cfg Config, spec core.Spec, seed int64, opts ...server.Option) (core.Stats, int, error) {
	workers := cfg.Parallelism
	if workers < 1 {
		workers = 1
	}
	var copts []client.Option
	if cfg.BatchSize > 1 {
		copts = append(copts, client.WithBatch(client.BatchConfig{MaxBatch: cfg.BatchSize}))
	}
	r, err := serveSide("R", robjs, cfg, workers, opts, copts)
	if err != nil {
		return core.Stats{}, 0, err
	}
	defer r.Close()
	s, err := serveSide("S", sobjs, cfg, workers, opts, copts)
	if err != nil {
		return core.Stats{}, 0, err
	}
	defer s.Close()
	model := costmodel.Default()
	model.Bucket = cfg.Bucket
	model.Link = cfg.link()
	env := core.NewEnv(r, s, client.Device{BufferObjects: cfg.Buffer}, model, dataset.World)
	env.Seed = seed
	env.Parallelism = cfg.Parallelism
	env.BatchSize = cfg.BatchSize
	res, err := alg.Run(context.Background(), env, spec)
	if err != nil {
		return core.Stats{}, 0, fmt.Errorf("%s: %w", alg.Name(), err)
	}
	n := len(res.Pairs)
	if spec.Kind == core.IcebergSemi {
		n = len(res.Objects)
	}
	return res.Stats, n, nil
}

// serveSide boots one relation's in-process serving stack: a single
// server (the default), cfg.Shards partition servers behind a
// scatter–gather router, and/or cfg.Replicas replica servers per shard.
func serveSide(name string, objs []geom.Object, cfg Config, workers int, sopts []server.Option, copts []client.Option) (core.Probe, error) {
	if cfg.Shards <= 1 && cfg.Replicas <= 1 {
		tr := netsim.ServeParallel(server.New(name, objs, sopts...), workers)
		rem, err := client.NewRemote(name, tr, cfg.link(), 1, copts...)
		if err != nil {
			tr.Close()
			return nil, err
		}
		return rem, nil
	}
	return shard.ServeLocal(name, objs, shard.LocalConfig{
		Shards: cfg.Shards, Replicas: cfg.Replicas, Workers: workers,
		TreeFanout: cfg.TreeFanout,
		HedgePct:   cfg.HedgePct, Link: cfg.link(), Price: 1,
		ServerOpts: sopts, ClientOpts: copts,
	})
}

// synthPair generates the run's two synthetic datasets with independent
// cluster centers, as in §5 ("clustered around k randomly selected
// centers").
func synthPair(cfg Config, k int, run int) (robjs, sobjs []geom.Object) {
	seedR := cfg.BaseSeed + int64(run)*1000 + int64(k)*2
	seedS := seedR + 1
	robjs = dataset.GaussianClusters(cfg.Points, k, cfg.Sigma, dataset.World, seedR)
	sobjs = dataset.GaussianClusters(cfg.Points, k, cfg.Sigma, dataset.World, seedS)
	return robjs, sobjs
}

// averageOver runs f Runs times and returns mean stats/pairs.
func averageOver(cfg Config, f func(run int) (core.Stats, int, error)) (Cell, error) {
	var bytes, queries, pairs float64
	for run := 0; run < cfg.Runs; run++ {
		st, n, err := f(run)
		if err != nil {
			return Cell{}, err
		}
		bytes += float64(st.TotalBytes())
		queries += float64(st.TotalQueries())
		pairs += float64(n)
	}
	r := float64(cfg.Runs)
	return Cell{Bytes: bytes / r, Queries: queries / r, Pairs: pairs / r}, nil
}

// sortCells orders cells by series then x for stable output.
func sortCells(cells []Cell, xs []string) {
	rank := map[string]int{}
	for i, x := range xs {
		rank[x] = i
	}
	sort.SliceStable(cells, func(i, j int) bool {
		if cells[i].Algorithm != cells[j].Algorithm {
			return cells[i].Algorithm < cells[j].Algorithm
		}
		return rank[cells[i].X] < rank[cells[j].X]
	})
}
