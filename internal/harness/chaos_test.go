package harness

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

// goroutineCount counts live goroutines after giving stragglers a short
// grace period to unwind (retried because shutdown is asynchronous: the
// registry's probers and the servers' worker pools exit after Close
// returns their wait).
func stableGoroutines(t *testing.T, want int) int {
	t.Helper()
	n := runtime.NumGoroutine()
	deadline := time.Now().Add(5 * time.Second)
	for n > want && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

// TestChaosScenarios replays every committed scenario file and fails on
// any violated expectation. Each scenario is also a goroutine-leak
// check: the fleet, the registry's recovery probers, and any hung round
// trips must all unwind once the run's resources close.
func TestChaosScenarios(t *testing.T) {
	files, err := ScenarioFiles(filepath.Join("testdata", "scenarios"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 4 {
		t.Fatalf("expected at least the four committed scenarios, found %d", len(files))
	}
	for _, path := range files {
		sc, err := LoadScenario(path)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(sc.Name, func(t *testing.T) {
			before := runtime.NumGoroutine()
			rep, err := RunScenario(sc)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Violations) > 0 {
				t.Errorf("scenario %s: %d violation(s):\n  %s",
					sc.Name, len(rep.Violations), strings.Join(rep.Violations, "\n  "))
			}
			if after := stableGoroutines(t, before); after > before {
				t.Errorf("scenario %s leaked goroutines: %d before, %d after", sc.Name, before, after)
			}
			t.Logf("%s: pairs=%d wall=%v completeness=%v skips=%d",
				rep.Scenario, rep.Pairs, rep.Wall.Round(time.Millisecond), rep.Completeness, rep.Usage.BreakerSkips)
		})
	}
}

// TestChaosScenarioValidation pins the harness's scenario hygiene:
// unknown fields and unknown enum values are loud errors, not silent
// no-ops — a typo in a fault plan must not quietly disable the fault.
func TestChaosScenarioValidation(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"topologgy": {"shards": 2}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadScenario(bad); err == nil {
		t.Fatal("unknown scenario field was accepted")
	}

	if _, err := RunScenario(&Scenario{Query: ChaosQuery{Algorithm: "quantum"}}); err == nil {
		t.Fatal("unknown algorithm was accepted")
	}
	if _, err := RunScenario(&Scenario{Query: ChaosQuery{Kind: "cartesian"}}); err == nil {
		t.Fatal("unknown join kind was accepted")
	}
}

// TestChaosQueryAlgorithms pins the name → algorithm mapping scenario
// files use, including the planner-driven "auto".
func TestChaosQueryAlgorithms(t *testing.T) {
	for _, name := range []string{"naive", "grid", "mobijoin", "upjoin", "srjoin", "semijoin", "auto"} {
		alg, err := ChaosQuery{Algorithm: name}.algorithm()
		if err != nil {
			t.Fatalf("algorithm %q rejected: %v", name, err)
		}
		if !strings.EqualFold(alg.Name(), name) {
			t.Errorf("algorithm %q resolved to %q", name, alg.Name())
		}
	}
}

// TestChaosMatch pins the target pattern semantics the scenario files
// rely on: exact match, or prefix with a trailing '*'.
func TestChaosMatch(t *testing.T) {
	cases := []struct {
		pattern, name string
		want          bool
	}{
		{"S2/2-r1", "S2/2-r1", true},
		{"S2/2-r1", "S2/2-r2", false},
		{"S2/2-*", "S2/2-r1", true},
		{"S2/2-*", "S2/2-r2", true},
		{"S2/2-*", "S1/2-r1", false},
		{"*", "anything", true},
		{"R", "R", true},
		{"R", "R-r1", false},
	}
	for _, c := range cases {
		if got := match(c.pattern, c.name); got != c.want {
			t.Errorf("match(%q, %q) = %v, want %v", c.pattern, c.name, got, c.want)
		}
	}
}
