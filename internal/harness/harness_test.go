package harness

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig keeps harness tests fast: small datasets, one run.
func tinyConfig() Config {
	cfg := Defaults()
	cfg.Runs = 1
	cfg.Points = 200
	return cfg
}

func checkTable(t *testing.T, tab *Table, wantSeries int) {
	t.Helper()
	if len(tab.Cells) != wantSeries*len(Clusters) {
		t.Fatalf("%s: %d cells, want %d", tab.ID, len(tab.Cells), wantSeries*len(Clusters))
	}
	if len(tab.Series()) != wantSeries {
		t.Fatalf("%s: %d series, want %d", tab.ID, len(tab.Series()), wantSeries)
	}
	if len(tab.XValues()) != len(Clusters) {
		t.Fatalf("%s: %d x values", tab.ID, len(tab.XValues()))
	}
	for _, c := range tab.Cells {
		if c.Bytes <= 0 {
			t.Fatalf("%s: non-positive bytes for %s/%s", tab.ID, c.Algorithm, c.X)
		}
		if c.Queries <= 0 {
			t.Fatalf("%s: no queries for %s/%s", tab.ID, c.Algorithm, c.X)
		}
	}
}

func TestFig6aShape(t *testing.T) {
	tab, err := Fig6a(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 4) // four α values
}

func TestFig6bShape(t *testing.T) {
	tab, err := Fig6b(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 5) // five ρ values
}

func TestFig7Shapes(t *testing.T) {
	for _, fn := range []func(Config) (*Table, error){Fig7a, Fig7b} {
		tab, err := fn(tinyConfig())
		if err != nil {
			t.Fatal(err)
		}
		checkTable(t, tab, 3)
	}
}

func TestFig8Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("railway generation is slow")
	}
	cfg := tinyConfig()
	for _, fn := range []func(Config) (*Table, error){Fig8a, Fig8b} {
		tab, err := fn(cfg)
		if err != nil {
			t.Fatal(err)
		}
		checkTable(t, tab, 3)
	}
}

func TestAllRegistryComplete(t *testing.T) {
	for _, id := range []string{"6a", "6b", "7a", "7b", "8a", "8b"} {
		if All[id] == nil {
			t.Fatalf("figure %s missing from registry", id)
		}
	}
	if len(All) != 6 {
		t.Fatalf("registry has %d entries, want 6", len(All))
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID: "t", Title: "demo", XName: "k",
		Cells: []Cell{
			{Algorithm: "a", X: "1", Bytes: 100},
			{Algorithm: "a", X: "2", Bytes: 200},
			{Algorithm: "b", X: "1", Bytes: 300},
		},
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "k", "a", "b", "100", "300", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if _, ok := tab.Get("a", "2"); !ok {
		t.Fatal("Get(a,2) should exist")
	}
	if _, ok := tab.Get("b", "2"); ok {
		t.Fatal("Get(b,2) should not exist")
	}
}

// TestFig7bHeadlineShape asserts the paper's qualitative claim on a
// small-but-real configuration: for strongly skewed data MobiJoin must
// not beat UpJoin by more than noise, and for uniform data all three
// must be within a factor of two of each other.
func TestFig7bHeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	cfg := Defaults()
	cfg.Runs = 5
	tab, err := Fig7b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mobi2, _ := tab.Get("mobiJoin", "2")
	up2, _ := tab.Get("upJoin", "2")
	if up2.Bytes > mobi2.Bytes*1.5 {
		t.Errorf("k=2: upJoin (%v) should not lose badly to mobiJoin (%v)", up2.Bytes, mobi2.Bytes)
	}
	mobi128, _ := tab.Get("mobiJoin", "128")
	up128, _ := tab.Get("upJoin", "128")
	sr128, _ := tab.Get("srJoin", "128")
	for name, v := range map[string]float64{"upJoin": up128.Bytes, "srJoin": sr128.Bytes} {
		if v > 2*mobi128.Bytes {
			t.Errorf("k=128: %s (%v) should be within 2x of mobiJoin (%v)", name, v, mobi128.Bytes)
		}
	}
}
