package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/health"
	"repro/internal/netsim"
	"repro/internal/shard"
)

// This file is the declarative chaos scenario harness: a Scenario file
// (JSON, stdlib-decoded) describes a sharded+replicated fleet, a fault
// plan (per-link probabilistic faults plus a timed kill/revive/hang/sever
// schedule), one join query, and the expected outcome — complete or
// degraded, which shards may be missing, how the wall clock must be
// bounded, and which oracle the answer must match. RunScenario builds
// the fleet through shard.ServeLocal (the same boot path the sessions
// use), injects netsim.Switch kill-switches and netsim.Faulty lossy
// links below the meters (a request that dies at a killed endpoint was
// still charged like a real transmission), replays the schedule on the
// wall clock, runs the query, and checks every expectation, returning
// the violations as data rather than asserting — the chaos test battery
// and the CLIs share the harness.

// Scenario is one declarative chaos drill.
type Scenario struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	// Topology sizes the fleet and the synthetic workload.
	Topology Topology `json:"topology"`
	// Query selects the algorithm and join spec to run under fire.
	Query ChaosQuery `json:"query"`
	// Retry is the per-link retry policy (zero value: fail fast).
	Retry ChaosRetry `json:"retry"`
	// Breaker arms circuit breakers with these thresholds. Nil arms
	// breakers with the health.Config defaults when Replicas > 1.
	Breaker *ChaosBreaker `json:"breaker"`
	// Faults attaches probabilistic fault injection to matching links.
	Faults []FaultRule `json:"faults"`
	// Schedule is the timed chaos plan, relative to query start.
	Schedule []Event `json:"schedule"`
	// AllowPartial opts the run into degraded partial results.
	AllowPartial bool `json:"allow_partial"`
	// BudgetMS bounds each logical probe (retries+hedges+failovers).
	BudgetMS int `json:"budget_ms"`
	// DeadlineMS bounds the whole run's context.
	DeadlineMS int `json:"deadline_ms"`
	// Expect declares the acceptable outcome.
	Expect Expect `json:"expect"`
}

// Topology sizes the fleet and the synthetic datasets.
type Topology struct {
	Shards   int `json:"shards"`
	Replicas int `json:"replicas"`
	Workers  int `json:"workers"`
	// TreeFanout >= 2 stacks the shards under a hierarchical
	// aggregation tree with this fanout per interior node; gap names
	// stay in leaf shard units regardless of depth.
	TreeFanout int `json:"tree_fanout"`
	// Points per relation, spread over Clusters Gaussian clusters of
	// spread Sigma (dataset.GaussianClusters; Seed and Seed+1).
	Points   int     `json:"points"`
	Clusters int     `json:"clusters"`
	Sigma    float64 `json:"sigma"`
	Seed     int64   `json:"seed"`
	// HedgePct arms hedged reads when > 0.
	HedgePct float64 `json:"hedge_pct"`
	// RTTMicros simulates link latency (0: instantaneous links).
	RTTMicros int `json:"rtt_micros"`
	// Buffer is the device capacity in objects (0: unlimited).
	Buffer int `json:"buffer"`
}

// ChaosQuery selects the join to run.
type ChaosQuery struct {
	// Algorithm: naive, grid, mobijoin, upjoin, srjoin, semijoin.
	Algorithm string `json:"algorithm"`
	// Kind: intersection, distance, iceberg.
	Kind       string  `json:"kind"`
	Eps        float64 `json:"eps"`
	MinMatches int     `json:"min_matches"`
}

// ChaosRetry mirrors client.RetryPolicy in milliseconds.
type ChaosRetry struct {
	MaxAttempts     int `json:"max_attempts"`
	BackoffMS       int `json:"backoff_ms"`
	PerTryTimeoutMS int `json:"per_try_timeout_ms"`
}

// ChaosBreaker mirrors health.Config in milliseconds.
type ChaosBreaker struct {
	ConsecutiveFailures int     `json:"consecutive_failures"`
	FailureRate         float64 `json:"failure_rate"`
	MinSamples          int     `json:"min_samples"`
	OpenForMS           int     `json:"open_for_ms"`
	ProbeIntervalMS     int     `json:"probe_interval_ms"`
	ProbeBudgetMS       int     `json:"probe_budget_ms"`
}

// FaultRule attaches a netsim.Faulty to every link whose endpoint name
// matches Target.
type FaultRule struct {
	// Target matches endpoint names: exact, or a prefix with a trailing
	// '*' ("S2/2-*" matches every replica of shard 2 of S).
	Target         string  `json:"target"`
	DropProb       float64 `json:"drop_prob"`
	SeverProb      float64 `json:"sever_prob"`
	DelayProb      float64 `json:"delay_prob"`
	DelayMS        int     `json:"delay_ms"`
	Seed           int64   `json:"seed"`
	MaxConsecutive int     `json:"max_consecutive"`
}

// Event is one timed chaos action.
type Event struct {
	AtMS int `json:"at_ms"`
	// Action: kill, revive, hang, sever.
	Action string `json:"action"`
	Target string `json:"target"`
	// N is the sever count (default 1).
	N int `json:"n"`
}

// Expect declares the acceptable outcome of a scenario.
type Expect struct {
	// Complete: the run must answer with zero gaps.
	Complete bool `json:"complete"`
	// GapShards lists exactly the shards that may be missing (endpoint
	// names like "S2/2"). Order-insensitive; empty with Complete false
	// means "any gaps".
	GapShards []string `json:"gap_shards"`
	// MinShardsAnswered lower-bounds Completeness.ShardsAnswered.
	MinShardsAnswered int `json:"min_shards_answered"`
	// MaxWallMS upper-bounds the run's wall time (0: unchecked).
	MaxWallMS int `json:"max_wall_ms"`
	// MinBreakerSkips lower-bounds the probes saved by open breakers.
	MinBreakerSkips int `json:"min_breaker_skips"`
	// Oracle: "full" (result equals the full local join), "live" (result
	// equals the local join over the non-gap shards' objects), or ""
	// /"none" (result unchecked).
	Oracle string `json:"oracle"`
	// BreakerRecloses: after the schedule's last revive, every breaker
	// must return to Closed within ReviveWindowMS.
	BreakerRecloses bool `json:"breaker_recloses"`
	ReviveWindowMS  int  `json:"revive_window_ms"`
}

// ChaosReport is the observed outcome of one scenario run.
type ChaosReport struct {
	Scenario string
	// Pairs is the result size (pairs, or objects for iceberg).
	Pairs int
	// Completeness is the run's shard coverage (nil when AllowPartial
	// was off).
	Completeness *health.Completeness
	// Wall is the query's wall time (schedule waiting excluded).
	Wall time.Duration
	// Usage is the combined metered traffic of both relations.
	Usage netsim.Usage
	// BreakersReclosed reports whether every breaker was Closed by the
	// revive deadline (only meaningful with Expect.BreakerRecloses).
	BreakersReclosed bool
	// Violations lists every failed expectation, empty on a green run.
	Violations []string
}

// LoadScenario decodes one scenario file.
func LoadScenario(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sc Scenario
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("harness: scenario %s: %w", filepath.Base(path), err)
	}
	if sc.Name == "" {
		sc.Name = strings.TrimSuffix(filepath.Base(path), ".json")
	}
	return &sc, nil
}

// ScenarioFiles lists the committed scenario files of a directory.
func ScenarioFiles(dir string) ([]string, error) {
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	return files, nil
}

// match reports whether an endpoint name matches a target pattern
// (exact, or prefix with a trailing '*').
func match(pattern, name string) bool {
	if p, ok := strings.CutSuffix(pattern, "*"); ok {
		return strings.HasPrefix(name, p)
	}
	return pattern == name
}

func (q ChaosQuery) algorithm() (core.Algorithm, error) {
	switch strings.ToLower(q.Algorithm) {
	case "", "upjoin":
		return core.UpJoin{}, nil
	case "srjoin":
		return core.SrJoin{}, nil
	case "grid":
		return core.Grid{}, nil
	case "naive":
		return core.Naive{}, nil
	case "mobijoin":
		return core.MobiJoin{}, nil
	case "semijoin":
		return core.SemiJoin{}, nil
	case "auto":
		return core.Auto{}, nil
	}
	return nil, fmt.Errorf("harness: unknown algorithm %q", q.Algorithm)
}

func (q ChaosQuery) spec() (core.Spec, error) {
	spec := core.Spec{Eps: q.Eps, MinMatches: q.MinMatches}
	switch strings.ToLower(q.Kind) {
	case "", "distance":
		spec.Kind = core.Distance
	case "intersection":
		spec.Kind = core.Intersection
	case "iceberg":
		spec.Kind = core.IcebergSemi
	default:
		return core.Spec{}, fmt.Errorf("harness: unknown join kind %q", q.Kind)
	}
	return spec, nil
}

func (b *ChaosBreaker) config() health.Config {
	if b == nil {
		return health.Config{}
	}
	return health.Config{
		ConsecutiveFailures: b.ConsecutiveFailures,
		FailureRate:         b.FailureRate,
		MinSamples:          b.MinSamples,
		OpenFor:             time.Duration(b.OpenForMS) * time.Millisecond,
		ProbeInterval:       time.Duration(b.ProbeIntervalMS) * time.Millisecond,
		ProbeBudget:         time.Duration(b.ProbeBudgetMS) * time.Millisecond,
	}
}

// RunScenario executes one chaos drill and checks its expectations. The
// returned report carries the violations as data; err is reserved for
// harness failures (bad scenario, boot failure) — a red expectation is
// not an error.
func RunScenario(sc *Scenario) (*ChaosReport, error) {
	alg, err := sc.Query.algorithm()
	if err != nil {
		return nil, err
	}
	spec, err := sc.Query.spec()
	if err != nil {
		return nil, err
	}
	top := sc.Topology
	if top.Points <= 0 {
		top.Points = 400
	}
	if top.Clusters <= 0 {
		top.Clusters = 4
	}
	if top.Sigma <= 0 {
		top.Sigma = 800
	}
	workers := max(top.Workers, 1)
	robjs := dataset.GaussianClusters(top.Points, top.Clusters, top.Sigma, dataset.World, top.Seed)
	sobjs := dataset.GaussianClusters(top.Points, top.Clusters, top.Sigma, dataset.World, top.Seed+1)

	retry := client.RetryPolicy{
		MaxAttempts:   sc.Retry.MaxAttempts,
		Backoff:       time.Duration(sc.Retry.BackoffMS) * time.Millisecond,
		PerTryTimeout: time.Duration(sc.Retry.PerTryTimeoutMS) * time.Millisecond,
	}
	budget := time.Duration(sc.BudgetMS) * time.Millisecond
	if budget > 0 {
		retry.Budget = budget
	}
	var reg *health.Registry
	if top.Replicas > 1 {
		reg = health.NewRegistry(sc.Breaker.config())
		defer reg.Close()
	}

	// Every endpoint transport gets a kill switch (registered by name for
	// the schedule) and, when a fault rule matches, a lossy link on top.
	var swMu sync.Mutex
	switches := map[string]*netsim.Switch{}
	link := netsim.DefaultLink()
	link.RTT = time.Duration(top.RTTMicros) * time.Microsecond
	lcfg := shard.LocalConfig{
		Shards: top.Shards, Replicas: top.Replicas, Workers: workers,
		TreeFanout: top.TreeFanout,
		HedgePct:   top.HedgePct, Link: link, Price: 1,
		ClientOpts: []client.Option{client.WithRetry(retry)},
		Health:     reg, Budget: budget,
		WrapTransport: func(name string, rt netsim.RoundTripper) netsim.RoundTripper {
			sw := netsim.NewSwitch(rt)
			swMu.Lock()
			switches[name] = sw
			swMu.Unlock()
			var out netsim.RoundTripper = sw
			for _, f := range sc.Faults {
				if match(f.Target, name) {
					out = netsim.NewFaulty(out, netsim.FaultConfig{
						Seed:           f.Seed,
						DropProb:       f.DropProb,
						SeverProb:      f.SeverProb,
						DelayProb:      f.DelayProb,
						Delay:          time.Duration(f.DelayMS) * time.Millisecond,
						MaxConsecutive: f.MaxConsecutive,
					})
				}
			}
			return out
		},
	}
	remR, err := shard.ServeLocal("R", robjs, lcfg)
	if err != nil {
		return nil, fmt.Errorf("harness: boot R: %w", err)
	}
	defer remR.Close()
	remS, err := shard.ServeLocal("S", sobjs, lcfg)
	if err != nil {
		return nil, fmt.Errorf("harness: boot S: %w", err)
	}
	defer remS.Close()

	env := core.NewEnv(remR, remS, client.Device{BufferObjects: top.Buffer}, costmodel.Default(), geom.Rect{})
	env.Seed = top.Seed
	env.Parallelism = workers
	env.AllowPartial = sc.AllowPartial

	apply := func(ev Event) {
		swMu.Lock()
		defer swMu.Unlock()
		for name, sw := range switches {
			if !match(ev.Target, name) {
				continue
			}
			switch strings.ToLower(ev.Action) {
			case "kill":
				sw.Kill()
			case "revive":
				sw.Revive()
			case "hang":
				sw.Hang()
			case "sever":
				sw.Sever(max(ev.N, 1))
			}
		}
	}
	// Pre-start events apply synchronously (no race with the query's
	// first probe); the rest replay on the wall clock from t0.
	var timers []*time.Timer
	lastRevive := 0
	for _, ev := range sc.Schedule {
		if ev.AtMS <= 0 {
			apply(ev)
		} else {
			ev := ev
			timers = append(timers, time.AfterFunc(time.Duration(ev.AtMS)*time.Millisecond, func() { apply(ev) }))
		}
		if strings.EqualFold(ev.Action, "revive") && ev.AtMS > lastRevive {
			lastRevive = ev.AtMS
		}
	}
	defer func() {
		for _, t := range timers {
			t.Stop()
		}
	}()

	ctx := context.Background()
	if sc.DeadlineMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(sc.DeadlineMS)*time.Millisecond)
		defer cancel()
	}
	t0 := time.Now()
	res, runErr := alg.Run(ctx, env, spec)
	wall := time.Since(t0)
	if runErr != nil {
		return nil, fmt.Errorf("harness: scenario %s: run: %w", sc.Name, runErr)
	}

	rep := &ChaosReport{
		Scenario:     sc.Name,
		Completeness: res.Completeness,
		Wall:         wall,
		Usage:        remR.Usage().Add(remS.Usage()),
	}
	rep.Pairs = len(res.Pairs)
	if spec.Kind == core.IcebergSemi {
		rep.Pairs = len(res.Objects)
	}

	// Re-close check: after the schedule's last revive, the registry's
	// probers must walk every breaker back to Closed within the window.
	if sc.Expect.BreakerRecloses && reg != nil {
		window := time.Duration(sc.Expect.ReviveWindowMS) * time.Millisecond
		if window <= 0 {
			window = time.Second
		}
		deadline := t0.Add(time.Duration(lastRevive)*time.Millisecond + window)
		for {
			if reg.AllClosed() {
				rep.BreakersReclosed = true
				break
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}

	rep.Violations = sc.check(rep, res, spec, robjs, sobjs)
	return rep, nil
}

// check evaluates every declared expectation against the observed run.
func (sc *Scenario) check(rep *ChaosReport, res *core.Result, spec core.Spec, robjs, sobjs []geom.Object) []string {
	var v []string
	exp := sc.Expect
	comp := rep.Completeness
	if sc.AllowPartial && comp == nil {
		v = append(v, "AllowPartial run returned no Completeness report")
	}
	if exp.Complete {
		if comp != nil && !comp.Complete() {
			v = append(v, fmt.Sprintf("expected a complete answer, got %s", comp))
		}
	} else if comp != nil {
		if comp.Complete() {
			v = append(v, "expected a degraded answer, got a complete one (chaos did not bite)")
		}
		if len(exp.GapShards) > 0 {
			want := map[string]bool{}
			for _, s := range exp.GapShards {
				want[s] = true
			}
			got := map[string]bool{}
			for _, g := range comp.Gaps {
				got[g.Shard] = true
				if !want[g.Shard] {
					v = append(v, fmt.Sprintf("unexpected gap shard %s (%s)", g.Shard, g.Reason))
				}
			}
			for s := range want {
				if !got[s] {
					v = append(v, fmt.Sprintf("expected gap shard %s is not in the report", s))
				}
			}
		}
		if exp.MinShardsAnswered > 0 && comp.ShardsAnswered < exp.MinShardsAnswered {
			v = append(v, fmt.Sprintf("%d/%d shards answered, want >= %d",
				comp.ShardsAnswered, comp.ShardsTotal, exp.MinShardsAnswered))
		}
	}
	if exp.MaxWallMS > 0 && rep.Wall > time.Duration(exp.MaxWallMS)*time.Millisecond {
		v = append(v, fmt.Sprintf("wall time %v exceeds the declared bound %dms", rep.Wall, exp.MaxWallMS))
	}
	if exp.MinBreakerSkips > 0 && rep.Usage.BreakerSkips < exp.MinBreakerSkips {
		v = append(v, fmt.Sprintf("BreakerSkips = %d, want >= %d (proactive skip not observed)",
			rep.Usage.BreakerSkips, exp.MinBreakerSkips))
	}
	if exp.BreakerRecloses && !rep.BreakersReclosed {
		v = append(v, "breakers did not re-close within the revive window")
	}
	switch strings.ToLower(exp.Oracle) {
	case "", "none":
	case "full":
		if msg := oracleDiff(res, spec, robjs, sobjs); msg != "" {
			v = append(v, "full oracle: "+msg)
		}
	case "live":
		liveR := liveObjects(robjs, "R", sc.Topology.Shards, exp.GapShards)
		liveS := liveObjects(sobjs, "S", sc.Topology.Shards, exp.GapShards)
		if msg := oracleDiff(res, spec, liveR, liveS); msg != "" {
			v = append(v, "live oracle: "+msg)
		}
	default:
		v = append(v, fmt.Sprintf("unknown oracle mode %q", exp.Oracle))
	}
	return v
}

// liveObjects drops the objects assigned to the declared gap shards of
// one relation, reproducing exactly what the fleet could still see.
func liveObjects(objs []geom.Object, relation string, shards int, gaps []string) []geom.Object {
	if shards < 1 {
		shards = 1
	}
	parts := shard.Assign(objs, shards)
	var out []geom.Object
	for i, part := range parts {
		name := relation
		if shards > 1 {
			name = fmt.Sprintf("%s%d/%d", relation, i+1, shards)
		}
		dead := false
		for _, g := range gaps {
			if g == name {
				dead = true
				break
			}
		}
		if !dead {
			out = append(out, part...)
		}
	}
	return out
}

// oracleDiff compares a run's result with the local oracle over the
// given objects (window: the union of their bounds, the same resolution
// an unset Env.Window performs over the live fleet's advertised INFOs).
func oracleDiff(res *core.Result, spec core.Spec, robjs, sobjs []geom.Object) string {
	window := boundsOf(robjs).Union(boundsOf(sobjs))
	want := core.Oracle(robjs, sobjs, spec, window)
	if spec.Kind == core.IcebergSemi {
		if len(res.Objects) != len(want.Objects) {
			return fmt.Sprintf("%d objects, oracle has %d", len(res.Objects), len(want.Objects))
		}
		for i := range want.Objects {
			if res.Objects[i].ID != want.Objects[i].ID {
				return fmt.Sprintf("object %d is #%d, oracle has #%d", i, res.Objects[i].ID, want.Objects[i].ID)
			}
		}
		return ""
	}
	if len(res.Pairs) != len(want.Pairs) {
		return fmt.Sprintf("%d pairs, oracle has %d", len(res.Pairs), len(want.Pairs))
	}
	for i := range want.Pairs {
		if res.Pairs[i] != want.Pairs[i] {
			return fmt.Sprintf("pair %d is %v, oracle has %v", i, res.Pairs[i], want.Pairs[i])
		}
	}
	return ""
}

// boundsOf unions the MBRs of a relation's objects.
func boundsOf(objs []geom.Object) geom.Rect {
	if len(objs) == 0 {
		return geom.Rect{}
	}
	b := objs[0].MBR
	for _, o := range objs[1:] {
		b = b.Union(o.MBR)
	}
	return b
}
