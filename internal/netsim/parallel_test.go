package netsim

import (
	"bytes"
	"context"
	"encoding/binary"
	"sync"
	"testing"
	"time"
)

// mirrorHandler returns the request frame unchanged (after an optional
// artificial service time).
type mirrorHandler struct{ delay time.Duration }

func (h mirrorHandler) Handle(req []byte) []byte {
	if h.delay > 0 {
		time.Sleep(h.delay)
	}
	out := make([]byte, len(req))
	copy(out, req)
	return out
}

// frameFor builds a distinguishable frame for request i.
func frameFor(i int) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(i))
	return b[:]
}

// TestChannelTransportConcurrentRoundTrips hammers a single-worker and a
// multi-worker channel transport from many goroutines and checks every
// caller gets its own response back.
func TestChannelTransportConcurrentRoundTrips(t *testing.T) {
	for _, workers := range []int{1, 4} {
		tr := ServeParallel(mirrorHandler{}, workers)
		var wg sync.WaitGroup
		errs := make(chan error, 64)
		for i := 0; i < 64; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				req := frameFor(i)
				resp, err := tr.RoundTrip(context.Background(), req)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(resp, req) {
					t.Errorf("workers=%d: response %x for request %x", workers, resp, req)
				}
			}(i)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		tr.Close()
	}
}

// TestChannelTransportParallelServiceOverlaps shows multiple workers
// actually service requests concurrently: 8 requests of 10ms each finish
// far sooner than 80ms on a 8-worker transport.
func TestChannelTransportParallelServiceOverlaps(t *testing.T) {
	const d = 10 * time.Millisecond
	tr := ServeParallel(mirrorHandler{delay: d}, 8)
	defer tr.Close()
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := tr.RoundTrip(context.Background(), frameFor(i)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 6*d {
		t.Fatalf("8 overlapping 10ms requests took %v; workers are not concurrent", elapsed)
	}
}

// TestTCPTransportConcurrentRoundTrips exercises the TCP connection pool
// under concurrent callers, including a pool smaller than the caller
// count (forcing waits for free connections).
func TestTCPTransportConcurrentRoundTrips(t *testing.T) {
	srv, err := ListenAndServe("127.0.0.1:0", mirrorHandler{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, maxConns := range []int{1, 2, 8} {
		tr, err := DialTCPPool(srv.Addr(), maxConns)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for i := 0; i < 32; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				req := frameFor(i)
				resp, err := tr.RoundTrip(context.Background(), req)
				if err != nil {
					t.Errorf("maxConns=%d: %v", maxConns, err)
					return
				}
				if !bytes.Equal(resp, req) {
					t.Errorf("maxConns=%d: response %x for request %x", maxConns, resp, req)
				}
			}(i)
		}
		wg.Wait()
		tr.Close()
	}
}

// TestTCPTransportClosedReturnsErrClosed pins the error after Close.
func TestTCPTransportClosedReturnsErrClosed(t *testing.T) {
	srv, err := ListenAndServe("127.0.0.1:0", mirrorHandler{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.RoundTrip(context.Background(), frameFor(1)); err != ErrClosed {
		t.Fatalf("round trip after close: %v, want ErrClosed", err)
	}
}

// TestMeterConcurrentCharges checks the lock-free meter sums exactly
// under concurrent charging from both directions.
func TestMeterConcurrentChargesBothDirections(t *testing.T) {
	m := mustMeter(t, DefaultLink(), 2)
	const (
		goroutines = 8
		perG       = 500
		payload    = 100
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dir := Up
			if g%2 == 1 {
				dir = Down
			}
			for i := 0; i < perG; i++ {
				m.Charge(payload, dir)
			}
		}(g)
	}
	wg.Wait()
	u := m.Usage()
	frames := goroutines * perG
	if u.Messages != frames {
		t.Fatalf("messages %d, want %d", u.Messages, frames)
	}
	if u.PayloadBytes != frames*payload {
		t.Fatalf("payload %d, want %d", u.PayloadBytes, frames*payload)
	}
	wantWire := frames * DefaultLink().TB(payload)
	if u.WireBytes != wantWire {
		t.Fatalf("wire %d, want %d", u.WireBytes, wantWire)
	}
	if u.UpWireBytes+u.DownWireBytes != u.WireBytes {
		t.Fatal("direction split does not sum to total")
	}
	if u.Queries != frames/2 {
		t.Fatalf("queries %d, want %d", u.Queries, frames/2)
	}
	if m.Cost() != 2*float64(wantWire) {
		t.Fatalf("cost %v, want %v", m.Cost(), 2*float64(wantWire))
	}
}

// TestLinkRTTSimulatedLatency checks the optional RTT is paid per round
// trip on a metered connection and never affects byte accounting.
func TestLinkRTTSimulatedLatency(t *testing.T) {
	link := DefaultLink()
	link.RTT = 5 * time.Millisecond
	tr := Serve(mirrorHandler{})
	defer tr.Close()
	m := mustMeter(t, link, 1)
	c := NewMetered(tr, m)
	start := time.Now()
	const trips = 4
	for i := 0; i < trips; i++ {
		if _, err := c.RoundTrip(context.Background(), frameFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < trips*link.RTT {
		t.Fatalf("%d round trips took %v, want >= %v", trips, elapsed, trips*link.RTT)
	}

	m0 := mustMeter(t, DefaultLink(), 1) // same link, no RTT
	tr2 := Serve(mirrorHandler{})
	defer tr2.Close()
	c2 := NewMetered(tr2, m0)
	for i := 0; i < trips; i++ {
		if _, err := c2.RoundTrip(context.Background(), frameFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if m.Usage() != m0.Usage() {
		t.Fatalf("RTT changed accounting: %+v vs %+v", m.Usage(), m0.Usage())
	}
}

// TestLinkConfigValidateRTT pins RTT validation.
func TestLinkConfigValidateRTT(t *testing.T) {
	lc := DefaultLink()
	lc.RTT = -time.Second
	if err := lc.Validate(); err == nil {
		t.Fatal("negative RTT should be invalid")
	}
}
