package netsim

import (
	"context"
	"errors"
	"testing"
)

// --- splitByShares ---------------------------------------------------------

func sharesFor(weights ...int) []TenantShare {
	out := make([]TenantShare, len(weights))
	for i, w := range weights {
		out[i] = TenantShare{ID: TenantID(rune('a' + i)), Bytes: w}
	}
	return out
}

// TestSplitBySharesExact: whatever the weights, the parts sum exactly to
// the total — the invariant the per-tenant columns' exhaustiveness rests
// on — and each part is within one unit of its ideal proportional value.
func TestSplitBySharesExact(t *testing.T) {
	cases := []struct {
		total   int
		weights []int
	}{
		{100, []int{1, 1}},
		{101, []int{1, 1}},
		{7, []int{3, 5, 9}},
		{1, []int{1000, 1}},
		{0, []int{4, 4}},
		{1000003, []int{7, 11, 13, 17}},
		{55, []int{0, 10}},
		{55, []int{10, 0}},
		{9, []int{1, 1, 1, 1, 1, 1, 1}},
	}
	for _, tc := range cases {
		shares := sharesFor(tc.weights...)
		parts := splitByShares(tc.total, shares)
		sum, weight := 0, 0
		for _, w := range tc.weights {
			weight += w
		}
		for i, p := range parts {
			sum += p
			ideal := float64(tc.total) * float64(tc.weights[i]) / float64(weight)
			if d := float64(p) - ideal; d > 1 || d < -1 {
				t.Errorf("split(%d, %v)[%d] = %d, ideal %.2f (off by more than one unit)",
					tc.total, tc.weights, i, p, ideal)
			}
		}
		if sum != tc.total {
			t.Errorf("split(%d, %v) sums to %d", tc.total, tc.weights, sum)
		}
	}
}

// TestSplitBySharesDeterministic: equal inputs produce equal splits, and
// remainder ties go to the earliest share.
func TestSplitBySharesDeterministic(t *testing.T) {
	shares := sharesFor(1, 1, 1)
	a := splitByShares(4, shares)
	b := splitByShares(4, shares)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("split not deterministic: %v vs %v", a, b)
		}
	}
	// 4 over three equal weights: 1 each plus one leftover unit, which the
	// tie break hands to the first share.
	if a[0] != 2 || a[1] != 1 || a[2] != 1 {
		t.Errorf("split(4, [1 1 1]) = %v, want [2 1 1] (tie to earliest)", a)
	}
}

// TestSplitBySharesDegenerate: all-zero (or negative) weights collapse to
// the first share so the sum still balances.
func TestSplitBySharesDegenerate(t *testing.T) {
	got := splitByShares(42, sharesFor(0, 0, 0))
	if got[0] != 42 || got[1] != 0 || got[2] != 0 {
		t.Errorf("all-zero weights: split = %v, want [42 0 0]", got)
	}
	got = splitByShares(10, []TenantShare{{ID: "x", Bytes: -5}, {ID: "y", Bytes: 5}})
	if got[0] != 0 || got[1] != 10 {
		t.Errorf("negative weight clamps to zero: split = %v, want [0 10]", got)
	}
	if got := splitByShares(5, nil); len(got) != 0 {
		t.Errorf("empty shares: split = %v, want []", got)
	}
}

// --- Ledger ----------------------------------------------------------------

func TestLedgerQuotaCheck(t *testing.T) {
	l := NewLedger()
	l.SetQuota("a", 100)

	if err := l.Check("a"); err != nil {
		t.Fatalf("fresh tenant under quota: %v", err)
	}
	if err := l.Check("unlimited"); err != nil {
		t.Fatalf("unlimited tenant: %v", err)
	}
	l.Charge("a", 99)
	if err := l.Check("a"); err != nil {
		t.Fatalf("one byte of headroom left: %v", err)
	}
	l.Charge("a", 1) // exactly at quota: spent >= quota rejects
	err := l.Check("a")
	if err == nil {
		t.Fatal("tenant at quota admitted")
	}
	if !errors.Is(err, ErrOverQuota) {
		t.Errorf("quota rejection does not match ErrOverQuota: %v", err)
	}
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("quota rejection is not a *QuotaError: %T", err)
	}
	if qe.Tenant != "a" || qe.Spent != 100 || qe.Quota != 100 {
		t.Errorf("QuotaError = %+v, want {a 100 100}", *qe)
	}
	if got := l.Spent("a"); got != 100 {
		t.Errorf("Spent = %d, want 100", got)
	}
	if got := l.Quota("a"); got != 100 {
		t.Errorf("Quota = %d, want 100", got)
	}
}

// --- context stamps --------------------------------------------------------

func TestTenantContextStamps(t *testing.T) {
	ctx := context.Background()
	if id := TenantOf(ctx); id != "" {
		t.Fatalf("unstamped ctx: tenant %q, want anonymous", id)
	}
	ctx = WithTenant(ctx, "alice")
	if id := TenantOf(ctx); id != "alice" {
		t.Fatalf("tenant = %q, want alice", id)
	}
	shares := []TenantShare{{ID: "alice", Bytes: 3}, {ID: "bob", Bytes: 5}}
	sctx := WithShares(ctx, shares)
	got := sharesOf(sctx)
	if len(got) != 2 || got[0].ID != "alice" || got[1].ID != "bob" {
		t.Fatalf("sharesOf = %v", got)
	}
	if s := sharesOf(ctx); s != nil {
		t.Fatalf("plain tenant ctx leaks shares: %v", s)
	}
}

// --- meter attribution -----------------------------------------------------

// TestMeterTenantColumnsSumToTotals drives frames under single-tenant,
// anonymous, and multi-share contexts through a metered transport and
// checks the exhaustiveness invariant: per-tenant columns sum exactly to
// the link totals, and the ledger carries the same wire bytes.
func TestMeterTenantColumnsSumToTotals(t *testing.T) {
	m, err := NewMeter(DefaultLink(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ledger := NewLedger()
	m.SetLedger(ledger)
	if !m.TenantMode() {
		t.Fatal("SetLedger did not arm tenant mode")
	}
	tr := Serve(echoHandler{})
	c := NewMetered(tr, m)
	defer c.Close()

	frame := func(n int) []byte { return make([]byte, n) }
	ctxs := []context.Context{
		WithTenant(context.Background(), "alice"),
		WithTenant(context.Background(), "bob"),
		context.Background(), // anonymous lane
		WithShares(context.Background(), []TenantShare{{ID: "alice", Bytes: 70}, {ID: "bob", Bytes: 30}}),
		WithShares(context.Background(), []TenantShare{{ID: "alice", Bytes: 1}, {ID: "bob", Bytes: 1}, {ID: "", Bytes: 1}}),
	}
	sizes := []int{100, 333, 57, 1400, 901}
	for i, ctx := range ctxs {
		if _, err := c.RoundTrip(ctx, frame(sizes[i])); err != nil {
			t.Fatalf("round trip %d: %v", i, err)
		}
	}

	total := m.Usage()
	var sum Usage
	ids := m.TenantIDs()
	for _, id := range ids {
		u := m.TenantUsage(id)
		sum.Messages += u.Messages
		sum.PayloadBytes += u.PayloadBytes
		sum.WireBytes += u.WireBytes
		sum.Packets += u.Packets
		sum.UpWireBytes += u.UpWireBytes
		sum.DownWireBytes += u.DownWireBytes
		sum.Queries += u.Queries
		sum.HedgedMessages += u.HedgedMessages
		sum.HedgedWireBytes += u.HedgedWireBytes
	}
	if sum.Messages != total.Messages || sum.PayloadBytes != total.PayloadBytes ||
		sum.WireBytes != total.WireBytes || sum.Packets != total.Packets ||
		sum.UpWireBytes != total.UpWireBytes || sum.DownWireBytes != total.DownWireBytes ||
		sum.Queries != total.Queries {
		t.Errorf("tenant columns do not sum to link totals:\n sum   %+v\n total %+v", sum, total)
	}

	var ledgerSum int64
	for _, id := range ids {
		ledgerSum += ledger.Spent(id)
	}
	if ledgerSum != int64(total.WireBytes) {
		t.Errorf("ledger spend %d, link wire bytes %d", ledgerSum, total.WireBytes)
	}

	// The anonymous lane took the unstamped frame and its share of the
	// three-way envelope — it must appear in the ID list.
	found := false
	for _, id := range ids {
		if id == "" {
			found = true
		}
	}
	if !found {
		t.Errorf("anonymous tenant missing from TenantIDs: %v", ids)
	}
}

// TestMeterTenantModeOffIsUntouched: without EnableTenants the
// attribution path never runs — no tenant accounts exist even when
// contexts carry tenant stamps. (The byte-accounting goldens rely on the
// off state being bit-identical; this pins the cheaper observable.)
func TestMeterTenantModeOffIsUntouched(t *testing.T) {
	m, err := NewMeter(DefaultLink(), 1)
	if err != nil {
		t.Fatal(err)
	}
	tr := Serve(echoHandler{})
	c := NewMetered(tr, m)
	defer c.Close()
	if _, err := c.RoundTrip(WithTenant(context.Background(), "alice"), make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if ids := m.TenantIDs(); len(ids) != 0 {
		t.Errorf("tenant accounts materialized with tenant mode off: %v", ids)
	}
	if u := m.TenantUsage("alice"); u != (Usage{}) {
		t.Errorf("TenantUsage non-zero with tenant mode off: %+v", u)
	}
}
