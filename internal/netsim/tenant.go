package netsim

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Multi-tenant accounting. A long-lived join service multiplexes many
// concurrent sessions over one shared fleet of metered links, so the
// Eq. (1) bill — so far a per-link total — must additionally be
// attributable to the tenant that caused each transfer. Three pieces
// cooperate:
//
//   - a TenantID rides the context of every probe (WithTenant), so the
//     Metered wrapper knows whom to bill when a frame crosses the link;
//   - the Meter keeps per-tenant attribution columns next to its link
//     totals: every charged frame is split across the tenants named by
//     the context, largest-remainder-exact, so the per-tenant slices
//     always sum to the link totals column by column;
//   - a fleet-wide Ledger accumulates each tenant's wire-byte spend
//     across all links and enforces byte quotas: once a tenant's spend
//     crosses its budget, admission points reject further probes with a
//     typed *QuotaError.
//
// Single-tenant stacks never enter tenant mode: no context carries a
// tenant, no attribution runs, and the metered totals stay bit-identical
// to the pre-multi-tenant goldens.

// TenantID names one tenant of a shared fleet. The empty ID is the
// anonymous default lane: traffic whose context names no tenant is
// attributed to it, so the per-tenant columns stay exhaustive.
type TenantID string

type tenantKey struct{}

// WithTenant stamps ctx with the tenant on whose behalf subsequent
// probes run. Every frame metered under the returned context is
// attributed to (and, with a ledger armed, billed against) that tenant.
func WithTenant(ctx context.Context, id TenantID) context.Context {
	return context.WithValue(ctx, tenantKey{}, id)
}

// TenantOf returns the tenant stamped on ctx, or the empty (anonymous)
// tenant.
func TenantOf(ctx context.Context) TenantID {
	id, _ := ctx.Value(tenantKey{}).(TenantID)
	return id
}

// TenantShare is one tenant's part of a frame that carries several
// tenants' payloads (a batch envelope with co-batched sub-requests).
// Bytes is the tenant's sub-payload size, the weight by which the
// envelope's metered bytes are split.
type TenantShare struct {
	ID    TenantID
	Bytes int
}

type sharesKey struct{}

// WithShares stamps ctx with an explicit multi-tenant attribution for
// the frames metered under it. The batcher uses it for envelopes whose
// sub-requests belong to different tenants; it takes precedence over a
// single WithTenant stamp.
func WithShares(ctx context.Context, shares []TenantShare) context.Context {
	return context.WithValue(ctx, sharesKey{}, shares)
}

func sharesOf(ctx context.Context) []TenantShare {
	s, _ := ctx.Value(sharesKey{}).([]TenantShare)
	return s
}

// --- quota ledger ---------------------------------------------------------

// ErrOverQuota matches (with errors.Is) the typed *QuotaError an
// admission point returns when a tenant's Eq. (1) spend has crossed its
// byte budget.
var ErrOverQuota = errors.New("netsim: tenant over byte quota")

// QuotaError reports a probe rejected because its tenant exhausted its
// byte quota. It matches ErrOverQuota under errors.Is.
type QuotaError struct {
	Tenant TenantID
	Spent  int64
	Quota  int64
}

// Error implements error.
func (e *QuotaError) Error() string {
	return fmt.Sprintf("netsim: tenant %q over byte quota (spent %d of %d)", string(e.Tenant), e.Spent, e.Quota)
}

// Is matches ErrOverQuota, so callers can test the error class without
// destructuring.
func (e *QuotaError) Is(target error) bool { return target == ErrOverQuota }

// Ledger accumulates each tenant's wire-byte spend across every metered
// link of a fleet and holds the byte quotas admission is checked
// against. One Ledger is shared by all links of a serving fleet; meters
// feed it as they attribute frames, so Spent is always the same Eq. (1)
// total the per-link tenant columns sum to.
type Ledger struct {
	mu   sync.RWMutex
	acct map[TenantID]*ledgerAccount
}

type ledgerAccount struct {
	quota int64 // 0 = unlimited
	spent atomic.Int64
}

// NewLedger returns an empty ledger (no quotas: every tenant unlimited).
func NewLedger() *Ledger {
	return &Ledger{acct: make(map[TenantID]*ledgerAccount)}
}

func (l *Ledger) account(id TenantID) *ledgerAccount {
	l.mu.RLock()
	a := l.acct[id]
	l.mu.RUnlock()
	if a != nil {
		return a
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if a = l.acct[id]; a == nil {
		a = &ledgerAccount{}
		l.acct[id] = a
	}
	return a
}

// SetQuota sets the tenant's byte budget; 0 means unlimited.
func (l *Ledger) SetQuota(id TenantID, bytes int64) {
	l.account(id).quota = bytes
}

// Quota returns the tenant's byte budget (0 = unlimited).
func (l *Ledger) Quota(id TenantID) int64 { return l.account(id).quota }

// Charge adds wire bytes to the tenant's fleet-wide spend. Meters call
// it as they attribute frames; the crossing frame itself is never
// clipped (rejection happens at the next admission), so a tenant may
// finish marginally over budget — by at most one frame per link.
func (l *Ledger) Charge(id TenantID, wire int) {
	l.account(id).spent.Add(int64(wire))
}

// Spent returns the tenant's accumulated fleet-wide wire-byte spend.
func (l *Ledger) Spent(id TenantID) int64 { return l.account(id).spent.Load() }

// Check returns a typed *QuotaError when the tenant's spend has reached
// its quota, nil otherwise (including for unlimited tenants). Admission
// points — the probe scheduler's lanes, the client's round-trip entry —
// call it before committing bytes to the link.
func (l *Ledger) Check(id TenantID) error {
	a := l.account(id)
	if a.quota <= 0 {
		return nil
	}
	if spent := a.spent.Load(); spent >= a.quota {
		return &QuotaError{Tenant: id, Spent: spent, Quota: a.quota}
	}
	return nil
}

// --- per-meter tenant attribution -----------------------------------------

// tenantAccount mirrors the Meter's counters for one tenant's slice of
// the link traffic. All additive, all atomics.
type tenantAccount struct {
	messages        atomic.Int64
	payloadBytes    atomic.Int64
	wireBytes       atomic.Int64
	packets         atomic.Int64
	upWireBytes     atomic.Int64
	downWireBytes   atomic.Int64
	queries         atomic.Int64
	hedgedMessages  atomic.Int64
	hedgedWireBytes atomic.Int64
}

func (a *tenantAccount) usage() Usage {
	return Usage{
		Messages:        int(a.messages.Load()),
		PayloadBytes:    int(a.payloadBytes.Load()),
		WireBytes:       int(a.wireBytes.Load()),
		Packets:         int(a.packets.Load()),
		UpWireBytes:     int(a.upWireBytes.Load()),
		DownWireBytes:   int(a.downWireBytes.Load()),
		Queries:         int(a.queries.Load()),
		HedgedMessages:  int(a.hedgedMessages.Load()),
		HedgedWireBytes: int(a.hedgedWireBytes.Load()),
	}
}

// EnableTenants puts the meter in tenant mode: every charged frame is
// additionally attributed to the tenants its context names (the empty
// tenant when it names none). Off — the default — the attribution path
// is never touched and charging stays exactly the pre-multi-tenant hot
// path.
func (m *Meter) EnableTenants() { m.tenantMode.Store(true) }

// SetLedger arms fleet-wide quota accounting: every attributed wire byte
// is also charged to the tenant's ledger account. Implies EnableTenants.
func (m *Meter) SetLedger(l *Ledger) {
	m.ledger = l
	m.EnableTenants()
}

// Ledger returns the fleet ledger this meter feeds (nil when quotas are
// not armed).
func (m *Meter) Ledger() *Ledger { return m.ledger }

// TenantMode reports whether the meter attributes traffic per tenant.
func (m *Meter) TenantMode() bool { return m.tenantMode.Load() }

func (m *Meter) tenantAccount(id TenantID) *tenantAccount {
	if a, ok := m.tenants.Load(id); ok {
		return a.(*tenantAccount)
	}
	a, _ := m.tenants.LoadOrStore(id, &tenantAccount{})
	return a.(*tenantAccount)
}

// TenantUsage returns the tenant's attributed slice of this link's
// traffic. Column by column, the slices of all tenants (including the
// empty anonymous tenant) sum exactly to Usage(): shared envelope frames
// are split largest-remainder by sub-payload size, so no byte, packet,
// or message is double-counted or dropped.
func (m *Meter) TenantUsage(id TenantID) Usage {
	if a, ok := m.tenants.Load(id); ok {
		return a.(*tenantAccount).usage()
	}
	return Usage{}
}

// TenantIDs returns every tenant with attributed traffic on this link,
// sorted for determinism.
func (m *Meter) TenantIDs() []TenantID {
	var ids []TenantID
	m.tenants.Range(func(k, _ any) bool {
		ids = append(ids, k.(TenantID))
		return true
	})
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// attribute books one already-charged frame to the tenants named by
// ctx. Called by the Metered wrapper under tenant mode only.
func (m *Meter) attribute(ctx context.Context, payload, wire int, dir Direction, hedged bool) {
	shares := sharesOf(ctx)
	if len(shares) == 0 {
		// Single-tenant frame (or anonymous): the whole frame belongs to
		// one account — no splitting, no allocation.
		m.attributeOne(TenantOf(ctx), payload, wire, m.link.Packets(payload), 1, dir, hedged)
		return
	}
	pkts := m.link.Packets(payload)
	payloadSplit := splitByShares(payload, shares)
	wireSplit := splitByShares(wire, shares)
	pktSplit := splitByShares(pkts, shares)
	msgSplit := splitByShares(1, shares)
	for i, sh := range shares {
		m.attributeOne(sh.ID, payloadSplit[i], wireSplit[i], pktSplit[i], msgSplit[i], dir, hedged)
	}
}

func (m *Meter) attributeOne(id TenantID, payload, wire, pkts, msgs int, dir Direction, hedged bool) {
	a := m.tenantAccount(id)
	a.messages.Add(int64(msgs))
	a.payloadBytes.Add(int64(payload))
	a.wireBytes.Add(int64(wire))
	a.packets.Add(int64(pkts))
	if dir == Up {
		a.upWireBytes.Add(int64(wire))
		a.queries.Add(int64(msgs))
	} else {
		a.downWireBytes.Add(int64(wire))
	}
	if hedged {
		a.hedgedMessages.Add(int64(msgs))
		a.hedgedWireBytes.Add(int64(wire))
	}
	if m.ledger != nil {
		m.ledger.Charge(id, wire)
	}
}

// splitByShares divides total across the shares proportionally to their
// Bytes weights, exactly: the parts sum to total. Rounding follows the
// largest-remainder method with ties broken by share order, so the split
// is deterministic for a deterministic share list.
func splitByShares(total int, shares []TenantShare) []int {
	out := make([]int, len(shares))
	var weight int64
	for _, sh := range shares {
		w := sh.Bytes
		if w < 0 {
			w = 0
		}
		weight += int64(w)
	}
	if weight == 0 {
		// Degenerate (all-zero weights): everything to the first share so
		// the sum still balances.
		if len(out) > 0 {
			out[0] = total
		}
		return out
	}
	assigned := 0
	type rem struct {
		idx  int
		frac int64
	}
	rems := make([]rem, len(shares))
	for i, sh := range shares {
		w := int64(sh.Bytes)
		if w < 0 {
			w = 0
		}
		q := int64(total) * w
		out[i] = int(q / weight)
		rems[i] = rem{idx: i, frac: q % weight}
		assigned += out[i]
	}
	// Hand the leftover units to the largest remainders, earliest index
	// winning ties.
	sort.SliceStable(rems, func(i, j int) bool { return rems[i].frac > rems[j].frac })
	for k := 0; k < total-assigned; k++ {
		out[rems[k%len(rems)].idx]++
	}
	return out
}
