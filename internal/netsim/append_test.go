package netsim

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/bufpool"
)

// appendEcho implements AppendHandler: it answers with a transformed copy
// of the request, appended to the provided buffer.
type appendEcho struct{ handleCalls, appendCalls int }

func (e *appendEcho) Handle(req []byte) []byte {
	e.handleCalls++
	return e.HandleAppend(req, nil)
}

func (e *appendEcho) HandleAppend(req, dst []byte) []byte {
	e.appendCalls++
	for _, b := range req {
		dst = append(dst, b+1)
	}
	return dst
}

// TestChannelTransportPrefersAppendHandler checks that the in-process
// serving loop routes through HandleAppend and that the response is
// correct (and releasable).
func TestChannelTransportPrefersAppendHandler(t *testing.T) {
	h := &appendEcho{}
	tr := Serve(h)
	defer tr.Close()
	resp, err := tr.RoundTrip(context.Background(), []byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, []byte{2, 3, 4}) {
		t.Fatalf("resp = %v", resp)
	}
	if h.appendCalls != 1 || h.handleCalls != 0 {
		t.Fatalf("append/handle calls = %d/%d, want 1/0", h.appendCalls, h.handleCalls)
	}
	bufpool.Put(resp)
}

// TestTCPTransportAppendHandler drives the pooled TCP serving loop with
// an AppendHandler across repeated frames on one connection.
func TestTCPTransportAppendHandler(t *testing.T) {
	h := &appendEcho{}
	srv, err := ListenAndServe("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for i := 0; i < 50; i++ {
		req := []byte{byte(i), byte(i + 1)}
		resp, err := tr.RoundTrip(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(resp, []byte{byte(i) + 1, byte(i) + 2}) {
			t.Fatalf("frame %d: resp = %v", i, resp)
		}
		bufpool.Put(resp)
	}
}

// TestPlainHandlerFramesNotRecycled checks the conservative path: an
// echoing plain Handler must keep working over TCP, where its response
// aliases the request buffer — the serving loop must not recycle either.
func TestPlainHandlerFramesNotRecycled(t *testing.T) {
	srv, err := ListenAndServe("127.0.0.1:0", HandlerFunc(func(req []byte) []byte {
		return req // aliases the read buffer
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for i := 0; i < 20; i++ {
		payload := bytes.Repeat([]byte{byte(i)}, 64)
		resp, err := tr.RoundTrip(context.Background(), payload)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(resp, payload) {
			t.Fatalf("frame %d corrupted", i)
		}
	}
}
