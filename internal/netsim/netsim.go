// Package netsim models the metered wireless link between the mobile
// device and the dataset servers.
//
// The paper's cost metric is the number of transferred bytes including
// TCP/IP packetization overhead (Eq. 1):
//
//	TB(B) = B + BH * ceil(B / (MTU - BH))
//
// where BH is the per-packet header size (40 bytes for TCP/IP) and MTU the
// maximum transmission unit of the physical layer (1500 for Ethernet/WiFi,
// 576 for dial-up). Every frame that crosses a transport in this package
// is charged according to this formula through a Meter; experiment results
// report metered totals, never estimates.
//
// Two transports implement the same RoundTripper interface: a
// channel-based in-process transport in which each server is a goroutine
// peer, and a TCP transport over real sockets (package net). Algorithms
// are transport-agnostic.
//
// Both transports and the Meter are safe for concurrent use, so a device
// may keep several requests in flight at once — to both servers, or even
// several to the same server. Byte accounting is per frame and therefore
// independent of how requests interleave: a concurrent execution meters
// exactly the same totals as a sequential one issuing the same requests.
package netsim

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// LinkConfig describes the physical link parameters of Eq. (1).
type LinkConfig struct {
	// MTU is the maximum transmission unit in bytes.
	MTU int
	// HeaderBytes is the per-packet TCP/IP header overhead (BH).
	HeaderBytes int
	// RTT, when positive, simulates the link's round-trip latency: every
	// round trip over a Metered connection blocks for this duration.
	// Latency is wall-clock only — it never affects byte accounting — and
	// exists so that pipelined executions can demonstrate their overlap
	// (several in-flight requests pay their RTTs concurrently).
	RTT time.Duration
}

// DefaultLink returns the paper's WiFi/Ethernet link: MTU 1500, BH 40.
func DefaultLink() LinkConfig { return LinkConfig{MTU: 1500, HeaderBytes: 40} }

// DialupLink returns the paper's dial-up alternative: MTU 576, BH 40.
func DialupLink() LinkConfig { return LinkConfig{MTU: 576, HeaderBytes: 40} }

// Validate reports whether the configuration is usable.
func (lc LinkConfig) Validate() error {
	if lc.HeaderBytes < 0 {
		return fmt.Errorf("netsim: negative header size %d", lc.HeaderBytes)
	}
	if lc.MTU <= lc.HeaderBytes {
		return fmt.Errorf("netsim: MTU %d must exceed header size %d", lc.MTU, lc.HeaderBytes)
	}
	if lc.RTT < 0 {
		return fmt.Errorf("netsim: negative RTT %v", lc.RTT)
	}
	return nil
}

// Packets returns the number of network packets needed to carry a payload
// of b bytes. A zero-byte payload still occupies one packet (the request
// must be delivered), matching the BH+BQ query-cost term of §3.1.
func (lc LinkConfig) Packets(b int) int {
	if b <= 0 {
		return 1
	}
	perPacket := lc.MTU - lc.HeaderBytes
	return (b + perPacket - 1) / perPacket
}

// TB returns the total transferred bytes for a payload of b bytes,
// including per-packet header overhead — Eq. (1) of the paper.
func (lc LinkConfig) TB(b int) int {
	return b + lc.HeaderBytes*lc.Packets(b)
}

// Direction distinguishes uplink (device → server) from downlink
// (server → device) traffic in the accounting breakdown.
type Direction int

// Directions of transfer relative to the mobile device.
const (
	Up   Direction = iota // device → server (queries, uploads)
	Down                  // server → device (results)
)

// Usage is an immutable snapshot of the traffic that crossed one metered
// link, with the breakdown the experiments report.
type Usage struct {
	// Messages is the number of frames transferred.
	Messages int
	// PayloadBytes is the sum of frame sizes before packetization.
	PayloadBytes int
	// WireBytes is the metered total after Eq. (1): payload + headers.
	WireBytes int
	// Packets is the number of network packets used.
	Packets int
	// UpWireBytes and DownWireBytes split WireBytes by direction.
	UpWireBytes   int
	DownWireBytes int
	// Queries counts uplink frames (each uplink frame is one query).
	Queries int
	// HedgedMessages and HedgedWireBytes sub-account the frames charged
	// on speculative hedge attempts (round trips issued under a
	// WithHedged context by a replica set racing a straggling primary).
	// They are included in Messages/WireBytes — a hedge costs real bytes
	// per Eq. (1) like any transfer — so primary traffic is always
	// WireBytes − HedgedWireBytes, keeping the bill decomposable into
	// "what an unhedged run would have paid" plus "what the tail
	// insurance cost".
	HedgedMessages  int
	HedgedWireBytes int
	// BreakerOpens and BreakerSkips surface the endpoint's circuit-
	// breaker activity (internal/health) in the same additive snapshot
	// the experiments already report: how often a replica link was
	// declared dead, and how many attempts were routed around it while
	// open — each skip a probe (and its Eq. 1 bytes) saved versus
	// reactive failover. The Meter never writes them; replica sets and
	// routers fold their breakers' counters in when exporting Usage, so
	// unarmed stacks report zero and stay bit-identical to the goldens.
	BreakerOpens int
	BreakerSkips int
}

// Add returns the element-wise sum of two usage snapshots.
func (u Usage) Add(v Usage) Usage {
	return Usage{
		Messages:        u.Messages + v.Messages,
		PayloadBytes:    u.PayloadBytes + v.PayloadBytes,
		WireBytes:       u.WireBytes + v.WireBytes,
		Packets:         u.Packets + v.Packets,
		UpWireBytes:     u.UpWireBytes + v.UpWireBytes,
		DownWireBytes:   u.DownWireBytes + v.DownWireBytes,
		Queries:         u.Queries + v.Queries,
		HedgedMessages:  u.HedgedMessages + v.HedgedMessages,
		HedgedWireBytes: u.HedgedWireBytes + v.HedgedWireBytes,
		BreakerOpens:    u.BreakerOpens + v.BreakerOpens,
		BreakerSkips:    u.BreakerSkips + v.BreakerSkips,
	}
}

// Meter accumulates the byte accounting of one device↔server link. All
// counters are lock-free atomics, so any number of in-flight requests can
// charge concurrently without contending; a Usage snapshot taken while
// requests are in flight may mix charges from different frames, but
// snapshots taken at quiescent points (as the executor does, before and
// after a run) are exact.
type Meter struct {
	link LinkConfig
	// price is the tariff (bR or bS) applied to WireBytes when computing
	// monetary cost. The experiments use equal prices.
	price float64

	messages        atomic.Int64
	payloadBytes    atomic.Int64
	wireBytes       atomic.Int64
	packets         atomic.Int64
	upWireBytes     atomic.Int64
	downWireBytes   atomic.Int64
	queries         atomic.Int64
	hedgedMessages  atomic.Int64
	hedgedWireBytes atomic.Int64

	// Tenant attribution (see tenant.go). tenantMode gates the whole
	// feature: off, charging never touches the map and the hot path is
	// exactly the single-tenant one.
	tenantMode atomic.Bool
	tenants    sync.Map // TenantID -> *tenantAccount
	ledger     *Ledger
}

// NewMeter returns a Meter for the given link and per-byte price. An
// invalid link configuration is a configuration-boundary error, reported
// to the caller rather than crashing the process.
func NewMeter(link LinkConfig, pricePerByte float64) (*Meter, error) {
	if err := link.Validate(); err != nil {
		return nil, err
	}
	return &Meter{link: link, price: pricePerByte}, nil
}

// Link returns the link configuration the meter charges against.
func (m *Meter) Link() LinkConfig { return m.link }

// PricePerByte returns the tariff applied by Cost.
func (m *Meter) PricePerByte() float64 { return m.price }

// Charge records the transfer of one frame of the given payload size in
// the given direction and returns the wire bytes charged.
func (m *Meter) Charge(payload int, dir Direction) int {
	wire := m.link.TB(payload)
	pkts := m.link.Packets(payload)
	m.messages.Add(1)
	m.payloadBytes.Add(int64(payload))
	m.wireBytes.Add(int64(wire))
	m.packets.Add(int64(pkts))
	if dir == Up {
		m.upWireBytes.Add(int64(wire))
		m.queries.Add(1)
	} else {
		m.downWireBytes.Add(int64(wire))
	}
	return wire
}

// MarkHedged sub-accounts one already-charged frame of wire bytes as
// hedge traffic. The Metered wrapper calls it for every frame charged
// under a WithHedged context; the bytes stay in the main totals, this
// only tags them in the hedged column.
func (m *Meter) MarkHedged(wire int) {
	m.hedgedMessages.Add(1)
	m.hedgedWireBytes.Add(int64(wire))
}

// Usage returns a snapshot of the accumulated accounting.
func (m *Meter) Usage() Usage {
	return Usage{
		Messages:        int(m.messages.Load()),
		PayloadBytes:    int(m.payloadBytes.Load()),
		WireBytes:       int(m.wireBytes.Load()),
		Packets:         int(m.packets.Load()),
		UpWireBytes:     int(m.upWireBytes.Load()),
		DownWireBytes:   int(m.downWireBytes.Load()),
		Queries:         int(m.queries.Load()),
		HedgedMessages:  int(m.hedgedMessages.Load()),
		HedgedWireBytes: int(m.hedgedWireBytes.Load()),
	}
}

// Reset clears the accumulated accounting (between experiment runs),
// including the per-tenant attribution columns. The fleet ledger, being
// shared billing state rather than per-link accounting, is not touched.
func (m *Meter) Reset() {
	m.messages.Store(0)
	m.payloadBytes.Store(0)
	m.wireBytes.Store(0)
	m.packets.Store(0)
	m.upWireBytes.Store(0)
	m.downWireBytes.Store(0)
	m.queries.Store(0)
	m.hedgedMessages.Store(0)
	m.hedgedWireBytes.Store(0)
	m.tenants.Range(func(k, _ any) bool {
		m.tenants.Delete(k)
		return true
	})
}

// Cost returns the monetary cost of the traffic so far: price × WireBytes.
func (m *Meter) Cost() float64 {
	return m.price * float64(m.wireBytes.Load())
}

// ErrFrameRetained marks (via errors.Is) transport errors after which
// the request frame may still be referenced by an in-flight peer — a
// round trip abandoned mid-service leaves a server worker that is still
// decoding the buffer. Callers that recycle request frames on failure
// must leave retained frames to the garbage collector; errors without
// the mark guarantee the transport holds no reference, so the frame may
// go straight back to the pool. Transports wrap the abandonment paths
// with RetainFrame; completed failures (a dropped frame that was never
// sent, a severed response after the server finished) stay unmarked.
var ErrFrameRetained = errors.New("netsim: request frame may still be referenced")

type retainedError struct{ err error }

func (e retainedError) Error() string { return e.err.Error() }

// Unwrap exposes both the underlying error and the retention mark, so
// errors.Is sees ErrClosed/context errors and ErrFrameRetained alike.
func (e retainedError) Unwrap() []error { return []error{e.err, ErrFrameRetained} }

// RetainFrame marks err as an abandonment: the request frame backing the
// failed round trip may still be read by the peer.
func RetainFrame(err error) error { return retainedError{err: err} }

// RoundTripper is the client's view of a server connection: send one
// request frame, receive one response frame. Implementations must be safe
// for concurrent round trips from multiple goroutines; the concurrent
// executor keeps several requests in flight per server. (The sequential
// executor, Parallelism ≤ 1, still issues strictly one round trip at a
// time per server, as a single-threaded PDA does.)
//
// RoundTrip must honor ctx: when the context is canceled or its deadline
// passes mid-flight, the call returns promptly with the context's error
// instead of blocking on a hung or slow peer. A round trip abandoned this
// way may leave the underlying connection in an unusable state; transports
// discard such connections rather than reuse them.
type RoundTripper interface {
	RoundTrip(ctx context.Context, req []byte) (resp []byte, err error)
	Close() error
}

// sleepCtx blocks for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// hedgedKey marks a context as belonging to a speculative hedge attempt.
type hedgedKey struct{}

// WithHedged returns a context under which every metered frame is
// sub-accounted in the link's hedged column. Replica sets wrap the
// context of a secondary (hedge) attempt with it, so all traffic the
// attempt causes — including retries — is visible as tail-insurance
// spend in the Usage breakdown.
func WithHedged(ctx context.Context) context.Context {
	return context.WithValue(ctx, hedgedKey{}, true)
}

// IsHedged reports whether ctx marks a hedge attempt.
func IsHedged(ctx context.Context) bool {
	v, _ := ctx.Value(hedgedKey{}).(bool)
	return v
}

// Metered wraps a RoundTripper, charging every request and response to a
// Meter. It is the only path by which algorithm traffic reaches a server,
// so no transfer escapes accounting. Metered is safe for concurrent use
// when the wrapped transport is.
type Metered struct {
	rt RoundTripper
	m  *Meter
	// stats, when non-nil, observes the measured duration of every
	// successful round trip (lock-free; see LinkStats). Byte accounting
	// is unaffected — observation is timing-only.
	stats *LinkStats
}

// NewMetered wraps rt so that all traffic is charged to meter.
func NewMetered(rt RoundTripper, meter *Meter) *Metered {
	return &Metered{rt: rt, m: meter}
}

// SetStats installs a live link-stats observer: every successful round
// trip's wall-clock duration is folded into its RTT EWMA. Must be called
// before the first round trip (it is not synchronized with them).
func (c *Metered) SetStats(s *LinkStats) { c.stats = s }

// Meter returns the meter charged by this connection.
func (c *Metered) Meter() *Meter { return c.m }

// RoundTrip implements RoundTripper. Every attempt that reaches this
// wrapper charges its request frame to the meter, so when a caller
// re-issues a query after a fault, the retransmission is accounted like
// any other uplink frame (Eq. 1). Responses are charged only when they
// actually arrive.
func (c *Metered) RoundTrip(ctx context.Context, req []byte) ([]byte, error) {
	hedged := IsHedged(ctx)
	tenanted := c.m.tenantMode.Load()
	start := time.Now()
	wire := c.m.Charge(len(req), Up)
	if hedged {
		c.m.MarkHedged(wire)
	}
	if tenanted {
		c.m.attribute(ctx, len(req), wire, Up, hedged)
	}
	if rtt := c.m.link.RTT; rtt > 0 {
		if err := sleepCtx(ctx, rtt); err != nil {
			return nil, err
		}
	}
	resp, err := c.rt.RoundTrip(ctx, req)
	if err != nil {
		return nil, err
	}
	wire = c.m.Charge(len(resp), Down)
	if hedged {
		c.m.MarkHedged(wire)
	}
	if tenanted {
		c.m.attribute(ctx, len(resp), wire, Down, hedged)
	}
	c.stats.ObserveRTT(time.Since(start))
	return resp, nil
}

// Close implements RoundTripper.
func (c *Metered) Close() error { return c.rt.Close() }
