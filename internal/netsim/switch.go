package netsim

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/bufpool"
)

// ErrKilled reports a request against an endpoint a chaos schedule has
// taken down. Like the injected faults of fault.go it is a transient
// transport error — retry, failover, and breaker layers treat it as such
// — and unlike ErrClosed it never means "we hung up ourselves".
var ErrKilled = errors.New("netsim: endpoint killed (chaos)")

// Switch modes.
const (
	switchAlive int32 = iota
	switchDead
	switchHung
)

// Switch gates a transport for chaos drills: a scenario schedule can
// kill the endpoint (every round trip fails instantly with ErrKilled),
// hang it (round trips block until revival or their context expires —
// the nastier failure mode, which only deadline budgets bound), sever
// the next n responses in flight, and revive it. The zero-cost alive
// path is a single atomic load, so a Switch can wrap production-shaped
// fleets without distorting latency.
//
// A Switch composes with Faulty (probabilistic faults) and sits below
// the Metered wrapper, so requests that die at a killed endpoint were
// still charged like real transmissions — exactly what a device probing
// a dead server pays.
type Switch struct {
	rt     RoundTripper
	mode   atomic.Int32
	severs atomic.Int32 // responses still to sever (one-shot each)

	mu   sync.Mutex
	wake chan struct{} // closed on revive; waited on by hung round trips
}

// NewSwitch wraps rt alive.
func NewSwitch(rt RoundTripper) *Switch {
	return &Switch{rt: rt, wake: make(chan struct{})}
}

// Kill makes every subsequent round trip fail instantly with ErrKilled.
func (s *Switch) Kill() { s.set(switchDead) }

// Hang makes every subsequent round trip block until Revive or its
// context gives up — a wedged server, the failure mode flat timeouts
// stack badly against.
func (s *Switch) Hang() { s.set(switchHung) }

// Revive restores normal service and wakes every hung round trip.
func (s *Switch) Revive() {
	s.mu.Lock()
	if s.mode.Swap(switchAlive) == switchHung {
		close(s.wake)
		s.wake = make(chan struct{})
	}
	s.mu.Unlock()
}

// Sever arranges for the next n round trips to lose their response after
// the server has served it (ErrInjectedSever — the paid-for-but-lost
// reply of fault.go), modeling a connection cut mid-flight.
func (s *Switch) Sever(n int) { s.severs.Add(int32(n)) }

// Alive reports whether the switch currently serves.
func (s *Switch) Alive() bool { return s.mode.Load() == switchAlive }

func (s *Switch) set(mode int32) {
	s.mu.Lock()
	if s.mode.Swap(mode) == switchHung && mode != switchHung {
		close(s.wake)
		s.wake = make(chan struct{})
	}
	s.mu.Unlock()
}

// RoundTrip implements RoundTripper.
func (s *Switch) RoundTrip(ctx context.Context, req []byte) ([]byte, error) {
	for {
		switch s.mode.Load() {
		case switchDead:
			return nil, ErrKilled
		case switchHung:
			s.mu.Lock()
			wake := s.wake
			// Re-check under mu: Revive may have swapped the channel
			// between the mode load and here.
			if s.mode.Load() != switchHung {
				s.mu.Unlock()
				continue
			}
			s.mu.Unlock()
			select {
			case <-wake:
				continue // revived (or re-moded): re-evaluate
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if n := s.severs.Load(); n > 0 && s.severs.CompareAndSwap(n, n-1) {
			resp, err := s.rt.RoundTrip(ctx, req)
			if err != nil {
				return nil, err
			}
			if !bufpool.SameBacking(req, resp) {
				bufpool.Put(resp)
			}
			return nil, ErrInjectedSever
		}
		return s.rt.RoundTrip(ctx, req)
	}
}

// Close implements RoundTripper, waking any hung round trips first so
// they fail with their context rather than blocking shutdown.
func (s *Switch) Close() error {
	s.Revive()
	return s.rt.Close()
}
