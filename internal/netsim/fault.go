package netsim

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"repro/internal/bufpool"
)

// Fault-injection errors. Both model transient link failures and are
// retryable: the protocol consists exclusively of idempotent queries, so
// a client may safely re-issue the request (the retransmission is charged
// to the meter by the Metered wrapper above this one).
var (
	// ErrInjectedDrop reports a request frame lost before it reached the
	// server.
	ErrInjectedDrop = errors.New("netsim: request dropped (injected fault)")
	// ErrInjectedSever reports a connection severed after the server
	// processed the request: the response frame is lost in flight.
	ErrInjectedSever = errors.New("netsim: connection severed (injected fault)")
)

// FaultConfig parameterizes a Faulty transport. All faults derive from a
// seeded RNG, so a sequential run injects an identical fault schedule
// every time; under concurrency the schedule depends on arrival order,
// which is fine for chaos tests that assert result equivalence rather
// than byte totals.
type FaultConfig struct {
	// Seed drives the fault schedule.
	Seed int64
	// DropProb is the probability that a request frame vanishes before
	// reaching the server (the handler never runs).
	DropProb float64
	// SeverProb is the probability that the connection is severed after
	// the server handled the request, losing the response in flight. The
	// server-side work happens; the device never sees the answer.
	SeverProb float64
	// DelayProb and Delay inject wall-clock latency into a fraction of
	// round trips. Latency never affects byte accounting.
	DelayProb float64
	Delay     time.Duration
	// MaxConsecutive bounds how many drop/sever faults may occur in a row
	// across the transport, so a client with bounded retries always makes
	// progress. 0 means 3.
	MaxConsecutive int
}

// FaultStats counts the faults a Faulty transport has injected.
type FaultStats struct {
	Drops, Severs, Delays int
}

// Faulty wraps a RoundTripper with deterministic, seeded fault injection
// for tests: requests are dropped, responses severed, or round trips
// delayed according to FaultConfig. It sits below the Metered wrapper, so
// every attempt — including ones whose frames are then lost — is charged
// exactly like a real transmission.
type Faulty struct {
	rt  RoundTripper
	cfg FaultConfig

	mu          sync.Mutex
	rng         *rand.Rand
	consecutive int
	stats       FaultStats
}

// NewFaulty wraps rt with the given fault schedule.
func NewFaulty(rt RoundTripper, cfg FaultConfig) *Faulty {
	return &Faulty{rt: rt, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats returns the faults injected so far.
func (f *Faulty) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// decide draws this round trip's faults from the seeded schedule.
func (f *Faulty) decide() (drop, sever, delay bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	maxRun := f.cfg.MaxConsecutive
	if maxRun <= 0 {
		maxRun = 3
	}
	if f.consecutive < maxRun {
		r := f.rng.Float64()
		switch {
		case r < f.cfg.DropProb:
			drop = true
			f.stats.Drops++
		case r < f.cfg.DropProb+f.cfg.SeverProb:
			sever = true
			f.stats.Severs++
		}
	}
	if drop || sever {
		f.consecutive++
	} else {
		f.consecutive = 0
	}
	if f.cfg.DelayProb > 0 && f.rng.Float64() < f.cfg.DelayProb {
		delay = true
		f.stats.Delays++
	}
	return drop, sever, delay
}

// RoundTrip implements RoundTripper.
func (f *Faulty) RoundTrip(ctx context.Context, req []byte) ([]byte, error) {
	drop, sever, delay := f.decide()
	if delay {
		if err := sleepCtx(ctx, f.cfg.Delay); err != nil {
			return nil, err
		}
	}
	if drop {
		return nil, ErrInjectedDrop
	}
	resp, err := f.rt.RoundTrip(ctx, req)
	if err != nil {
		return nil, err
	}
	if sever {
		// The response existed but never reached the device; its frame is
		// dead here and goes back to the pool — unless it aliases the
		// request (an echo handler does), which the caller may be about
		// to retransmit.
		if !bufpool.SameBacking(req, resp) {
			bufpool.Put(resp)
		}
		return nil, ErrInjectedSever
	}
	return resp, nil
}

// Close implements RoundTripper.
func (f *Faulty) Close() error { return f.rt.Close() }
