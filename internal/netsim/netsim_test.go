package netsim

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"testing/quick"
)

// mustMeter builds a Meter or fails the test — for links known valid.
func mustMeter(t testing.TB, link LinkConfig, price float64) *Meter {
	t.Helper()
	m, err := NewMeter(link, price)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMeterRejectsInvalidLink(t *testing.T) {
	if _, err := NewMeter(LinkConfig{MTU: 40, HeaderBytes: 40}, 1); err == nil {
		t.Fatal("invalid link must be rejected at the configuration boundary")
	}
	if _, err := NewMeter(LinkConfig{MTU: 1500, HeaderBytes: 40, RTT: -1}, 1); err == nil {
		t.Fatal("negative RTT must be rejected")
	}
}

func TestTBMatchesPaperEquation(t *testing.T) {
	link := DefaultLink() // MTU 1500, BH 40 → 1460 payload bytes per packet
	cases := []struct {
		payload, wantPackets, wantTB int
	}{
		{0, 1, 40},         // empty query still needs a packet
		{1, 1, 41},         // one byte
		{1460, 1, 1500},    // exactly one full packet
		{1461, 2, 1541},    // spills into a second packet
		{2920, 2, 3000},    // exactly two packets
		{14600, 10, 15000}, // ten packets
	}
	for _, c := range cases {
		if got := link.Packets(c.payload); got != c.wantPackets {
			t.Errorf("Packets(%d) = %d, want %d", c.payload, got, c.wantPackets)
		}
		if got := link.TB(c.payload); got != c.wantTB {
			t.Errorf("TB(%d) = %d, want %d", c.payload, got, c.wantTB)
		}
	}
}

func TestTBDialup(t *testing.T) {
	link := DialupLink() // MTU 576 → 536 payload bytes per packet
	if got := link.TB(536); got != 576 {
		t.Errorf("TB(536) = %d, want 576", got)
	}
	if got := link.TB(537); got != 537+80 {
		t.Errorf("TB(537) = %d, want %d", got, 537+80)
	}
}

func TestLinkValidate(t *testing.T) {
	if err := DefaultLink().Validate(); err != nil {
		t.Fatalf("default link invalid: %v", err)
	}
	if err := (LinkConfig{MTU: 40, HeaderBytes: 40}).Validate(); err == nil {
		t.Fatal("MTU == header should be invalid")
	}
	if err := (LinkConfig{MTU: 100, HeaderBytes: -1}).Validate(); err == nil {
		t.Fatal("negative header should be invalid")
	}
}

func TestQuickTBMonotoneAndSuperlinear(t *testing.T) {
	link := DefaultLink()
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		// Monotone in payload, and TB(x) >= x + BH.
		return link.TB(x) <= link.TB(y) && link.TB(x) >= x+link.HeaderBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestMeterAccumulates(t *testing.T) {
	m := mustMeter(t, DefaultLink(), 2.0)
	m.Charge(10, Up)
	m.Charge(3000, Down)
	u := m.Usage()
	if u.Messages != 2 {
		t.Errorf("Messages = %d, want 2", u.Messages)
	}
	if u.PayloadBytes != 3010 {
		t.Errorf("PayloadBytes = %d, want 3010", u.PayloadBytes)
	}
	wantWire := DefaultLink().TB(10) + DefaultLink().TB(3000)
	if u.WireBytes != wantWire {
		t.Errorf("WireBytes = %d, want %d", u.WireBytes, wantWire)
	}
	if u.Queries != 1 {
		t.Errorf("Queries = %d, want 1", u.Queries)
	}
	if u.UpWireBytes != DefaultLink().TB(10) {
		t.Errorf("UpWireBytes = %d", u.UpWireBytes)
	}
	if u.DownWireBytes != DefaultLink().TB(3000) {
		t.Errorf("DownWireBytes = %d", u.DownWireBytes)
	}
	if got, want := m.Cost(), 2.0*float64(wantWire); got != want {
		t.Errorf("Cost = %v, want %v", got, want)
	}
	m.Reset()
	if m.Usage() != (Usage{}) {
		t.Error("Reset did not clear usage")
	}
}

func TestMeterConcurrentCharges(t *testing.T) {
	m := mustMeter(t, DefaultLink(), 1)
	var wg sync.WaitGroup
	const goroutines, per = 8, 500
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Charge(100, Up)
			}
		}()
	}
	wg.Wait()
	u := m.Usage()
	if u.Messages != goroutines*per {
		t.Fatalf("Messages = %d, want %d", u.Messages, goroutines*per)
	}
	if u.WireBytes != goroutines*per*DefaultLink().TB(100) {
		t.Fatalf("WireBytes = %d", u.WireBytes)
	}
}

func TestUsageAdd(t *testing.T) {
	a := Usage{Messages: 1, PayloadBytes: 2, WireBytes: 3, Packets: 4, UpWireBytes: 5, DownWireBytes: 6, Queries: 7}
	b := Usage{Messages: 10, PayloadBytes: 20, WireBytes: 30, Packets: 40, UpWireBytes: 50, DownWireBytes: 60, Queries: 70}
	got := a.Add(b)
	want := Usage{Messages: 11, PayloadBytes: 22, WireBytes: 33, Packets: 44, UpWireBytes: 55, DownWireBytes: 66, Queries: 77}
	if got != want {
		t.Fatalf("Add = %+v, want %+v", got, want)
	}
}

// echoHandler responds with the request prefixed by "echo:".
type echoHandler struct{}

func (echoHandler) Handle(req []byte) []byte {
	return append([]byte("echo:"), req...)
}

func TestChannelTransportRoundTrip(t *testing.T) {
	tr := Serve(echoHandler{})
	defer tr.Close()
	resp, err := tr.RoundTrip(context.Background(), []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "echo:hello" {
		t.Fatalf("resp = %q", resp)
	}
}

func TestChannelTransportClose(t *testing.T) {
	tr := Serve(echoHandler{})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.RoundTrip(context.Background(), []byte("x")); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	// Double close is safe.
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMeteredChargesBothDirections(t *testing.T) {
	tr := Serve(echoHandler{})
	defer tr.Close()
	m := mustMeter(t, DefaultLink(), 1)
	c := NewMetered(tr, m)
	req := bytes.Repeat([]byte("q"), 100)
	resp, err := c.RoundTrip(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	u := m.Usage()
	if u.Messages != 2 || u.Queries != 1 {
		t.Fatalf("usage = %+v", u)
	}
	wantWire := DefaultLink().TB(100) + DefaultLink().TB(len(resp))
	if u.WireBytes != wantWire {
		t.Fatalf("WireBytes = %d, want %d", u.WireBytes, wantWire)
	}
	if c.Meter() != m {
		t.Fatal("Meter accessor mismatch")
	}
}

func TestHandlerFunc(t *testing.T) {
	h := HandlerFunc(func(req []byte) []byte { return []byte{req[0] + 1} })
	if got := h.Handle([]byte{41}); got[0] != 42 {
		t.Fatalf("got %v", got)
	}
}

func TestTCPTransportRoundTrip(t *testing.T) {
	srv, err := ListenAndServe("127.0.0.1:0", echoHandler{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for i := 0; i < 10; i++ {
		resp, err := tr.RoundTrip(context.Background(), []byte("ping"))
		if err != nil {
			t.Fatal(err)
		}
		if string(resp) != "echo:ping" {
			t.Fatalf("resp = %q", resp)
		}
	}
}

func TestTCPLargeFrame(t *testing.T) {
	srv, err := ListenAndServe("127.0.0.1:0", echoHandler{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	big := bytes.Repeat([]byte{7}, 1<<20)
	resp, err := tr.RoundTrip(context.Background(), big)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != len(big)+5 {
		t.Fatalf("resp len = %d", len(resp))
	}
}

func TestTCPMultipleClients(t *testing.T) {
	srv, err := ListenAndServe("127.0.0.1:0", echoHandler{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr, err := DialTCP(srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer tr.Close()
			for j := 0; j < 20; j++ {
				if _, err := tr.RoundTrip(context.Background(), []byte("x")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestTCPServerCloseUnblocksClients(t *testing.T) {
	srv, err := ListenAndServe("127.0.0.1:0", echoHandler{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.RoundTrip(context.Background(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.RoundTrip(context.Background(), []byte("x")); err == nil {
		t.Fatal("round trip after server close should fail")
	}
	// Idempotent close.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestChannelAndTCPAccountIdentically(t *testing.T) {
	h := echoHandler{}
	ct := Serve(h)
	defer ct.Close()
	srv, err := ListenAndServe("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tt, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tt.Close()

	m1 := mustMeter(t, DefaultLink(), 1)
	m2 := mustMeter(t, DefaultLink(), 1)
	c1 := NewMetered(ct, m1)
	c2 := NewMetered(tt, m2)
	payloads := [][]byte{[]byte("a"), bytes.Repeat([]byte("b"), 5000), []byte("ccc")}
	for _, p := range payloads {
		if _, err := c1.RoundTrip(context.Background(), p); err != nil {
			t.Fatal(err)
		}
		if _, err := c2.RoundTrip(context.Background(), p); err != nil {
			t.Fatal(err)
		}
	}
	if m1.Usage() != m2.Usage() {
		t.Fatalf("accounting diverged:\nchannel %+v\ntcp     %+v", m1.Usage(), m2.Usage())
	}
}
