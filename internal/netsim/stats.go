package netsim

import (
	"math"
	"sync/atomic"
	"time"
)

// LinkStats is a lock-free observer of one metered link's live transport
// behaviour: an exponentially weighted moving average of measured
// round-trip times plus a sample counter. It complements the Meter —
// which accounts *bytes* exactly — with the *timing* signal the online
// planner consumes (package plan): measured RTT distinguishes a LAN-fast
// link from a high-latency cellular one even when both charge identical
// Eq. (1) byte totals.
//
// All state is a pair of atomics updated by compare-and-swap, so any
// number of concurrent round trips can observe without contention and
// readers never block a writer. The EWMA is deliberately coarse (α =
// 1/8, the TCP SRTT constant): the planner needs "sub-millisecond vs
// hundreds of milliseconds", not a percentile-exact distribution — the
// replica layer's LatencyTracker keeps serving that need for hedging.
type LinkStats struct {
	// ewmaNanos holds the current SRTT estimate as float64 bits; zero
	// means "no sample yet".
	ewmaNanos atomic.Uint64
	samples   atomic.Int64
}

// ewmaAlpha is the smoothing factor of the SRTT estimate (TCP's 1/8).
const ewmaAlpha = 0.125

// ObserveRTT folds one measured round-trip duration into the EWMA.
func (s *LinkStats) ObserveRTT(d time.Duration) {
	if s == nil || d < 0 {
		return
	}
	v := float64(d.Nanoseconds())
	for {
		old := s.ewmaNanos.Load()
		var next float64
		if old == 0 {
			next = v
		} else {
			cur := math.Float64frombits(old)
			next = cur + ewmaAlpha*(v-cur)
		}
		if s.ewmaNanos.CompareAndSwap(old, math.Float64bits(next)) {
			s.samples.Add(1)
			return
		}
	}
}

// RTT returns the current smoothed round-trip estimate (0 before the
// first sample).
func (s *LinkStats) RTT() time.Duration {
	if s == nil {
		return 0
	}
	bits := s.ewmaNanos.Load()
	if bits == 0 {
		return 0
	}
	return time.Duration(math.Float64frombits(bits))
}

// Samples returns how many round trips have been observed.
func (s *LinkStats) Samples() int64 {
	if s == nil {
		return 0
	}
	return s.samples.Load()
}

// LinkSnapshot is one endpoint's live link observation, as consumed by
// the online planner: the physical link parameters the Meter charges
// against (Eq. 1), the measured RTT EWMA, and the sample count that
// qualifies it. Endpoints aggregating several links (shard routers,
// replica sets) report a sample-weighted merge.
type LinkSnapshot struct {
	// Config is the link's Eq. (1) parameters (MTU, header bytes, and
	// the simulated base RTT, when any).
	Config LinkConfig
	// RTT is the measured round-trip EWMA (0 = never measured).
	RTT time.Duration
	// Samples counts the round trips behind RTT.
	Samples int64
}

// Merge folds another snapshot into s, weighting the RTT estimates by
// their sample counts and keeping s's link config (aggregates are
// assumed homogeneous; the first link's parameters stand for the set).
func (s LinkSnapshot) Merge(o LinkSnapshot) LinkSnapshot {
	if s.Config == (LinkConfig{}) {
		s.Config = o.Config
	}
	total := s.Samples + o.Samples
	if total > 0 {
		s.RTT = time.Duration(
			(float64(s.RTT)*float64(s.Samples) + float64(o.RTT)*float64(o.Samples)) / float64(total))
	}
	s.Samples = total
	return s
}
