package netsim

import (
	"errors"
	"sync"
)

// Handler processes one request frame and produces one response frame.
// Dataset servers implement this. Handlers must be safe for concurrent
// calls when served with more than one worker.
type Handler interface {
	Handle(req []byte) (resp []byte)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(req []byte) []byte

// Handle implements Handler.
func (f HandlerFunc) Handle(req []byte) []byte { return f(req) }

// ErrClosed is returned by transports after Close.
var ErrClosed = errors.New("netsim: transport closed")

// ChannelTransport is an in-process RoundTripper in which the server runs
// as one or more goroutine peers, receiving request frames over a channel
// and answering over per-request reply channels. This models the paper's
// device↔server message exchange without sockets while preserving exact
// frame sizes for metering.
//
// RoundTrip is safe for concurrent use: each call carries its own reply
// channel, so responses can never be delivered to the wrong caller. With
// a single worker (Serve) concurrent requests queue and are answered one
// at a time; ServeParallel keeps several requests in service at once.
type ChannelTransport struct {
	reqs chan chanReq

	closeOnce sync.Once
	closed    chan struct{}
	done      chan struct{} // all server goroutines exited
}

type chanReq struct {
	frame []byte
	reply chan []byte
}

// Serve starts a single goroutine running h as a server peer and returns
// the client's transport to it. The goroutine exits when the transport is
// closed.
func Serve(h Handler) *ChannelTransport { return ServeParallel(h, 1) }

// ServeParallel starts workers goroutines running h as a server peer, so
// up to workers requests are serviced concurrently (h must tolerate
// concurrent Handle calls; the dataset server does — its index is
// immutable). workers < 1 is treated as 1. All goroutines exit when the
// transport is closed.
func ServeParallel(h Handler, workers int) *ChannelTransport {
	if workers < 1 {
		workers = 1
	}
	t := &ChannelTransport{
		reqs:   make(chan chanReq),
		closed: make(chan struct{}),
		done:   make(chan struct{}),
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case r := <-t.reqs:
					r.reply <- h.Handle(r.frame)
				case <-t.closed:
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(t.done)
	}()
	return t
}

// RoundTrip implements RoundTripper.
func (t *ChannelTransport) RoundTrip(req []byte) ([]byte, error) {
	r := chanReq{frame: req, reply: make(chan []byte, 1)}
	select {
	case t.reqs <- r:
	case <-t.closed:
		return nil, ErrClosed
	}
	select {
	case resp := <-r.reply:
		return resp, nil
	case <-t.closed:
		return nil, ErrClosed
	}
}

// Close implements RoundTripper; it stops the server goroutines.
func (t *ChannelTransport) Close() error {
	t.closeOnce.Do(func() { close(t.closed) })
	<-t.done
	return nil
}
