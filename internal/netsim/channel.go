package netsim

import (
	"context"
	"errors"
	"sync"

	"repro/internal/bufpool"
)

// Handler processes one request frame and produces one response frame.
// Dataset servers implement this. Handlers must be safe for concurrent
// calls when served with more than one worker.
type Handler interface {
	Handle(req []byte) (resp []byte)
}

// AppendHandler is the zero-allocation variant of Handler: the response
// frame is appended to a buffer the serving loop provides (and recycles
// once the frame has been delivered). Both transports probe for it and
// fall back to Handle, so implementing it is strictly an optimization —
// the frames must be bit-identical either way.
type AppendHandler interface {
	Handler
	HandleAppend(req, dst []byte) []byte
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(req []byte) []byte

// Handle implements Handler.
func (f HandlerFunc) Handle(req []byte) []byte { return f(req) }

// handleInto answers req with h, appending into a pooled buffer when h
// supports it. Ownership of the returned frame passes to the consumer of
// its bytes, which should bufpool.Put it once decoded (Putting a frame
// that did not come from the pool is harmless).
func handleInto(h Handler, req []byte) []byte {
	if ah, ok := h.(AppendHandler); ok {
		return ah.HandleAppend(req, bufpool.Get())
	}
	return h.Handle(req)
}

// ErrClosed is returned by transports after Close.
var ErrClosed = errors.New("netsim: transport closed")

// ChannelTransport is an in-process RoundTripper in which the server runs
// as one or more goroutine peers, receiving request frames over a channel
// and answering over per-request reply channels. This models the paper's
// device↔server message exchange without sockets while preserving exact
// frame sizes for metering.
//
// RoundTrip is safe for concurrent use: each call carries its own reply
// channel, so responses can never be delivered to the wrong caller. With
// a single worker (Serve) concurrent requests queue and are answered one
// at a time; ServeParallel keeps several requests in service at once.
type ChannelTransport struct {
	reqs chan chanReq

	closeOnce sync.Once
	closed    chan struct{}
	done      chan struct{} // all server goroutines exited
}

type chanReq struct {
	frame []byte
	reply chan []byte
}

// Serve starts a single goroutine running h as a server peer and returns
// the client's transport to it. The goroutine exits when the transport is
// closed.
func Serve(h Handler) *ChannelTransport { return ServeParallel(h, 1) }

// ServeParallel starts workers goroutines running h as a server peer, so
// up to workers requests are serviced concurrently (h must tolerate
// concurrent Handle calls; the dataset server does — its index is
// immutable). workers < 1 is treated as 1. All goroutines exit when the
// transport is closed.
func ServeParallel(h Handler, workers int) *ChannelTransport {
	if workers < 1 {
		workers = 1
	}
	t := &ChannelTransport{
		reqs:   make(chan chanReq),
		closed: make(chan struct{}),
		done:   make(chan struct{}),
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case r := <-t.reqs:
					r.reply <- handleInto(h, r.frame)
				case <-t.closed:
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(t.done)
	}()
	return t
}

// replyChanPool recycles the per-request reply channels, the last
// per-round-trip allocation of the in-process transport.
var replyChanPool = sync.Pool{
	New: func() any { return make(chan []byte, 1) },
}

// RoundTrip implements RoundTripper. When the handler supports
// AppendHandler, the returned frame is backed by the shared buffer pool;
// the caller may bufpool.Put it after consuming its bytes. A canceled
// context abandons the round trip immediately, even when every server
// worker is hung inside a handler.
func (t *ChannelTransport) RoundTrip(ctx context.Context, req []byte) ([]byte, error) {
	reply := replyChanPool.Get().(chan []byte)
	r := chanReq{frame: req, reply: reply}
	select {
	case t.reqs <- r:
	case <-t.closed:
		replyChanPool.Put(reply)
		return nil, ErrClosed
	case <-ctx.Done():
		replyChanPool.Put(reply)
		return nil, ctx.Err()
	}
	select {
	case resp := <-r.reply:
		replyChanPool.Put(reply)
		return resp, nil
	case <-t.closed:
		// The request is in service (reqs is unbuffered, so a worker holds
		// it) and its late reply will land in this channel: a reaper waits
		// for it so the reply frame and the channel return to their pools
		// instead of leaking, while the error is marked retained — the
		// worker may still be reading the request buffer.
		go reapAbandoned(req, reply)
		return nil, RetainFrame(ErrClosed)
	case <-ctx.Done():
		// Same: the in-flight request's late reply may still land here.
		go reapAbandoned(req, reply)
		return nil, RetainFrame(ctx.Err())
	}
}

// reapAbandoned drains the late reply of an abandoned round trip,
// recycling the reply frame and the reply channel. Workers always answer
// exactly once (they finish the request in hand even during shutdown),
// so the reaper is guaranteed to terminate. The request frame is NOT
// recycled here: the abandoning caller may be retrying with the same
// buffer, so its ownership stays with the caller (which must leave it to
// the garbage collector, per ErrFrameRetained).
func reapAbandoned(req []byte, reply chan []byte) {
	resp := <-reply
	if !bufpool.SameBacking(req, resp) {
		bufpool.Put(resp)
	}
	replyChanPool.Put(reply)
}

// Close implements RoundTripper; it stops the server goroutines.
func (t *ChannelTransport) Close() error {
	t.closeOnce.Do(func() { close(t.closed) })
	<-t.done
	return nil
}
