package netsim

import (
	"errors"
	"sync"
)

// Handler processes one request frame and produces one response frame.
// Dataset servers implement this.
type Handler interface {
	Handle(req []byte) (resp []byte)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(req []byte) []byte

// Handle implements Handler.
func (f HandlerFunc) Handle(req []byte) []byte { return f(req) }

// ErrClosed is returned by transports after Close.
var ErrClosed = errors.New("netsim: transport closed")

// ChannelTransport is an in-process RoundTripper in which the server runs
// as its own goroutine peer, receiving request frames over a channel and
// answering over per-request reply channels. This models the paper's
// device↔server message exchange without sockets while preserving exact
// frame sizes for metering.
type ChannelTransport struct {
	reqs chan chanReq

	closeOnce sync.Once
	closed    chan struct{}
	done      chan struct{} // server goroutine exited
}

type chanReq struct {
	frame []byte
	reply chan []byte
}

// Serve starts a goroutine running h as a server peer and returns the
// client's transport to it. The goroutine exits when the transport is
// closed.
func Serve(h Handler) *ChannelTransport {
	t := &ChannelTransport{
		reqs:   make(chan chanReq),
		closed: make(chan struct{}),
		done:   make(chan struct{}),
	}
	go func() {
		defer close(t.done)
		for {
			select {
			case r := <-t.reqs:
				r.reply <- h.Handle(r.frame)
			case <-t.closed:
				return
			}
		}
	}()
	return t
}

// RoundTrip implements RoundTripper.
func (t *ChannelTransport) RoundTrip(req []byte) ([]byte, error) {
	r := chanReq{frame: req, reply: make(chan []byte, 1)}
	select {
	case t.reqs <- r:
	case <-t.closed:
		return nil, ErrClosed
	}
	select {
	case resp := <-r.reply:
		return resp, nil
	case <-t.closed:
		return nil, ErrClosed
	}
}

// Close implements RoundTripper; it stops the server goroutine.
func (t *ChannelTransport) Close() error {
	t.closeOnce.Do(func() { close(t.closed) })
	<-t.done
	return nil
}
