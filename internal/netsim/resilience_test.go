package netsim

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestTCPPoolSurvivesServerRestart is the pool-health guarantee:
// concurrent round trips while the server is killed and restarted on the
// same address must observe errors only transiently — the pool evicts
// broken connections and re-dials — and no pooled frame may be recycled
// twice (the race detector and bufpool aliasing guards patrol that).
func TestTCPPoolSurvivesServerRestart(t *testing.T) {
	srv, err := ListenAndServe("127.0.0.1:0", echoHandler{})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	tr, err := DialTCPPool(addr, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	const workers = 8
	var (
		wg        sync.WaitGroup
		successes atomic.Int64
		failures  atomic.Int64
		stop      atomic.Bool
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !stop.Load() {
				resp, err := tr.RoundTrip(context.Background(), []byte("ping"))
				if err != nil {
					failures.Add(1)
					time.Sleep(time.Millisecond)
					continue
				}
				if string(resp) != "echo:ping" {
					t.Errorf("worker %d: corrupted frame %q after restart", w, resp)
					stop.Store(true)
					return
				}
				successes.Add(1)
			}
		}(w)
	}

	// Let traffic flow, kill the server mid-flight, restart it on the
	// same address (retrying the bind briefly), repeat.
	for round := 0; round < 3; round++ {
		time.Sleep(20 * time.Millisecond)
		if err := srv.Close(); err != nil {
			t.Error(err)
		}
		time.Sleep(10 * time.Millisecond) // in-flight trips fail here
		var rerr error
		for attempt := 0; attempt < 100; attempt++ {
			srv, rerr = ListenAndServe(addr, echoHandler{})
			if rerr == nil {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if rerr != nil {
			t.Fatalf("round %d: could not rebind %s: %v", round, addr, rerr)
		}
	}
	time.Sleep(20 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	defer srv.Close()

	if successes.Load() == 0 {
		t.Fatal("no round trip ever succeeded")
	}
	if failures.Load() == 0 {
		t.Fatal("vacuous restart test: no round trip ever failed")
	}
	// The pool must recover after the final restart: stale pooled
	// connections are evicted one failed attempt at a time (a real
	// client's RetryPolicy makes these attempts), after which a fresh
	// dial succeeds.
	recovered := false
	for attempt := 0; attempt < 16 && !recovered; attempt++ {
		_, err := tr.RoundTrip(context.Background(), []byte("again"))
		recovered = err == nil
	}
	if !recovered {
		t.Fatal("pool did not recover after restarts")
	}
}

// TestTCPShutdownDrainsInFlight submits a slow request, shuts the server
// down mid-service, and requires the response to be delivered before the
// connection closes.
func TestTCPShutdownDrainsInFlight(t *testing.T) {
	h := mirrorHandler{delay: 50 * time.Millisecond}
	srv, err := ListenAndServe("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	resp := make(chan error, 1)
	go func() {
		r, err := tr.RoundTrip(context.Background(), frameFor(7))
		if err == nil && len(r) == 0 {
			err = errors.New("empty response")
		}
		resp <- err
	}()
	time.Sleep(10 * time.Millisecond) // request is now in service
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-resp:
		if err != nil {
			t.Fatalf("in-flight request lost during drain: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("drained response never arrived")
	}
	// After the drain the server is gone: new round trips must fail.
	if _, err := tr.RoundTrip(context.Background(), frameFor(8)); err == nil {
		t.Fatal("round trip succeeded against a drained server")
	}
}

// TestTCPShutdownTimeoutForcesClose bounds the drain: a handler stuck
// longer than the context's deadline is cut off.
func TestTCPShutdownTimeoutForcesClose(t *testing.T) {
	h := mirrorHandler{delay: time.Second}
	srv, err := ListenAndServe("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	go tr.RoundTrip(context.Background(), frameFor(1)) //nolint:errcheck // the drain cuts it
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = srv.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("bounded shutdown took %v", elapsed)
	}
}

// TestTCPShutdownIdle drains a server with idle connections immediately.
func TestTCPShutdownIdle(t *testing.T) {
	srv, err := ListenAndServe("127.0.0.1:0", echoHandler{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.RoundTrip(context.Background(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("idle drain took %v", elapsed)
	}
	// Shutdown after shutdown is a calm no-op.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestTCPRoundTripHonorsCancellation interrupts a round trip against a
// slow handler mid-read.
func TestTCPRoundTripHonorsCancellation(t *testing.T) {
	h := mirrorHandler{delay: time.Second}
	srv, err := ListenAndServe("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = tr.RoundTrip(ctx, frameFor(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	// The abandoned connection must not poison the pool: once the slow
	// server answers are irrelevant, a fresh round trip re-dials.
	srv2, err := ListenAndServe("127.0.0.1:0", echoHandler{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	tr2, err := DialTCP(srv2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	if _, err := tr2.RoundTrip(context.Background(), []byte("x")); err != nil {
		t.Fatal(err)
	}
}

// TestTCPRoundTripHonorsDeadline applies a context deadline to the
// socket reads of a round trip.
func TestTCPRoundTripHonorsDeadline(t *testing.T) {
	h := mirrorHandler{delay: time.Second}
	srv, err := ListenAndServe("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := tr.RoundTrip(ctx, frameFor(1)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
}

// TestChannelRoundTripHonorsCancellation covers the in-process transport:
// a hung single worker must not block a canceled caller.
func TestChannelRoundTripHonorsCancellation(t *testing.T) {
	block := make(chan struct{})
	tr := Serve(HandlerFunc(func(req []byte) []byte {
		<-block
		return req
	}))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := tr.RoundTrip(ctx, []byte("x")); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(block)
	tr.Close()
}

// TestFaultyInjectsDeterministically pins the seeded fault schedule and
// the MaxConsecutive progress guarantee.
func TestFaultyInjectsDeterministically(t *testing.T) {
	run := func() ([]error, FaultStats) {
		inner := Serve(echoHandler{})
		defer inner.Close()
		f := NewFaulty(inner, FaultConfig{Seed: 5, DropProb: 0.3, SeverProb: 0.2, MaxConsecutive: 2})
		var errs []error
		for i := 0; i < 200; i++ {
			_, err := f.RoundTrip(context.Background(), []byte("q"))
			errs = append(errs, err)
		}
		return errs, f.Stats()
	}
	errsA, statsA := run()
	errsB, statsB := run()
	if statsA != statsB {
		t.Fatalf("same seed, different schedules: %+v vs %+v", statsA, statsB)
	}
	if statsA.Drops == 0 || statsA.Severs == 0 {
		t.Fatalf("fault mix not exercised: %+v", statsA)
	}
	consecutive := 0
	for i, err := range errsA {
		if !errors.Is(err, errsB[i]) && !(err == nil && errsB[i] == nil) {
			t.Fatalf("schedule diverged at %d: %v vs %v", i, err, errsB[i])
		}
		if err != nil {
			consecutive++
			if consecutive > 2 {
				t.Fatalf("%d consecutive faults despite MaxConsecutive=2", consecutive)
			}
		} else {
			consecutive = 0
		}
	}
}

// TestFaultySeverReturnsAfterServerWork verifies sever semantics: the
// handler runs (the response existed) but the caller sees an error.
func TestFaultySeverReturnsAfterServerWork(t *testing.T) {
	var served atomic.Int64
	inner := Serve(HandlerFunc(func(req []byte) []byte {
		served.Add(1)
		return append([]byte(nil), req...)
	}))
	defer inner.Close()
	f := NewFaulty(inner, FaultConfig{Seed: 1, SeverProb: 1, MaxConsecutive: 1 << 30})
	if _, err := f.RoundTrip(context.Background(), []byte("q")); !errors.Is(err, ErrInjectedSever) {
		t.Fatalf("err = %v, want ErrInjectedSever", err)
	}
	if served.Load() != 1 {
		t.Fatalf("served = %d; a severed response implies the server did the work", served.Load())
	}
	f2 := NewFaulty(inner, FaultConfig{Seed: 1, DropProb: 1, MaxConsecutive: 1 << 30})
	if _, err := f2.RoundTrip(context.Background(), []byte("q")); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("err = %v, want ErrInjectedDrop", err)
	}
	if served.Load() != 1 {
		t.Fatalf("served = %d; a dropped request must never reach the server", served.Load())
	}
}
