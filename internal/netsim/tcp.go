package netsim

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bufpool"
)

// TCP framing: each frame is preceded by a 4-byte little-endian length.
// The length prefix is transport plumbing, not protocol payload; metering
// (Eq. 1) is applied to the frame itself by the Metered wrapper, exactly
// as for the channel transport, so both transports account identically.

const maxFrame = 64 << 20 // sanity bound for the length prefix

func writeFrame(w io.Writer, frame []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(frame)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(frame)
	return err
}

// readFrame reads one length-prefixed frame into a pooled buffer.
// Ownership of the returned frame passes to the caller, which should
// bufpool.Put it once its bytes are dead.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("netsim: frame of %d bytes exceeds limit", n)
	}
	frame := bufpool.GetCap(int(n))[:n]
	if _, err := io.ReadFull(r, frame); err != nil {
		bufpool.Put(frame)
		return nil, err
	}
	return frame, nil
}

// TCPServer serves a Handler over a TCP listener, one goroutine per
// connection, frames delimited by length prefixes. It supports two ways
// down: Close (abrupt: every connection is cut, in-flight requests are
// lost) and Shutdown (drain: in-flight requests complete and their
// responses are written before the connections close).
type TCPServer struct {
	ln net.Listener
	h  Handler

	// draining is read on the per-request serving path, so it is atomic
	// rather than guarded by mu: the hot path takes no server-wide lock.
	draining atomic.Bool

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// ListenAndServe starts a TCP server for h on addr (e.g. "127.0.0.1:0")
// and returns it once the listener is bound. Use Addr to discover the
// bound address and Close to shut down.
func ListenAndServe(addr string, h Handler) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &TCPServer{ln: ln, h: h, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's bound address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	ah, appendable := s.h.(AppendHandler)
	for {
		req, err := readFrame(conn)
		if err != nil {
			return // client closed, broken frame, or drain poisoned the read
		}
		if appendable {
			// Zero-allocation steady state: request and response buffers
			// cycle through the pool. HandleAppend's contract — the
			// response is appended to our buffer and the request is not
			// retained — makes both frames dead after the write. The
			// aliasing guard protects the pool against a handler that
			// breaks the contract by answering with the request's own
			// bytes: the shared backing is then Put exactly once.
			resp := ah.HandleAppend(req, bufpool.Get())
			err = writeFrame(conn, resp)
			if !bufpool.SameBacking(req, resp) {
				bufpool.Put(req)
			}
			bufpool.Put(resp)
		} else {
			// A plain Handler may retain the request or answer with a
			// frame aliasing it (an echo handler does), so neither buffer
			// can be recycled safely.
			err = writeFrame(conn, s.h.Handle(req))
		}
		if err != nil || s.draining.Load() {
			// Under drain the current request's response has just been
			// written; the connection closes before accepting another.
			return
		}
	}
}

// Close stops the listener and all open connections, waiting for the
// connection goroutines to exit. Requests in flight are lost; use
// Shutdown to drain them first.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Shutdown gracefully drains the server: it stops accepting new
// connections, lets every request already read off a socket complete and
// write its response, unblocks idle connections, and waits for all
// connection goroutines to exit. When ctx expires first, the remaining
// connections are cut (their in-flight requests are lost, as with Close)
// and ctx.Err() is returned. Shutdown after Close (or a second Shutdown)
// drains whatever connections remain.
func (s *TCPServer) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	var err error
	if !alreadyClosed {
		err = s.ln.Close()
	}
	// Poison reads rather than closing connections: a goroutine idle in
	// readFrame fails out of it immediately, while one that has already
	// read its request is untouched — the handler runs and the response
	// write completes, after which serveConn observes draining and
	// closes the connection itself. This leaves no window in which a
	// fully-read request can be dropped.
	for conn := range s.conns {
		conn.SetReadDeadline(aLongTimeAgo)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return err
	case <-ctx.Done():
		// Force-close the stragglers. Their goroutines are stuck inside
		// the handler and cannot be interrupted, so — like net/http's
		// Shutdown — return without waiting for them; each exits as soon
		// as its handler call returns.
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		return ctx.Err()
	}
}

// TCPTransport is a RoundTripper over a small pool of TCP connections to
// one server. A single connection carries strictly alternating
// request/response frames, so concurrent round trips each claim their own
// connection: the pool starts with one and dials more on demand, up to
// maxConns, beyond which round trips wait for a free connection. The
// server side already serves every connection independently, so in-flight
// frames on different connections never interleave.
//
// Connection count is transport plumbing: metering (Eq. 1) charges frames
// identically whether they share one socket or use several.
type TCPTransport struct {
	addr  string
	slots chan struct{} // capacity = max concurrent connections

	mu     sync.Mutex
	free   []net.Conn
	conns  map[net.Conn]struct{}
	closed bool
}

// defaultMaxConns bounds the connections DialTCP may open on demand.
const defaultMaxConns = 8

// DialTCP connects to a TCPServer at addr with the default connection
// bound (8), dialing the first connection eagerly so a bad address fails
// fast.
func DialTCP(addr string) (*TCPTransport, error) {
	return DialTCPPool(addr, defaultMaxConns)
}

// DialTCPPool connects to a TCPServer at addr, allowing up to maxConns
// concurrent in-flight round trips (maxConns < 1 is treated as 1).
func DialTCPPool(addr string, maxConns int) (*TCPTransport, error) {
	if maxConns < 1 {
		maxConns = 1
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	t := &TCPTransport{
		addr:  addr,
		slots: make(chan struct{}, maxConns),
		free:  []net.Conn{conn},
		conns: map[net.Conn]struct{}{conn: {}},
	}
	return t, nil
}

// acquire returns a free or freshly dialed connection, waiting when
// maxConns are already in flight. It gives up when ctx is done.
func (t *TCPTransport) acquire(ctx context.Context) (net.Conn, error) {
	select {
	case t.slots <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		<-t.slots
		return nil, ErrClosed
	}
	if n := len(t.free); n > 0 {
		conn := t.free[n-1]
		t.free = t.free[:n-1]
		t.mu.Unlock()
		return conn, nil
	}
	t.mu.Unlock()
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", t.addr)
	if err != nil {
		<-t.slots
		return nil, err
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close()
		<-t.slots
		return nil, ErrClosed
	}
	t.conns[conn] = struct{}{}
	t.mu.Unlock()
	return conn, nil
}

// release returns a healthy connection to the pool; broken connections
// are discarded (the next acquire redials).
func (t *TCPTransport) release(conn net.Conn, healthy bool) {
	t.mu.Lock()
	if !healthy || t.closed {
		conn.Close()
		delete(t.conns, conn)
	} else {
		t.free = append(t.free, conn)
	}
	t.mu.Unlock()
	<-t.slots
}

// aLongTimeAgo is a non-zero time far in the past, used to force pending
// socket reads and writes to fail immediately (as net/http does).
var aLongTimeAgo = time.Unix(1, 0)

// RoundTrip implements RoundTripper. It is safe for concurrent use. The
// context's deadline is applied to the socket reads and writes of this
// round trip, and cancellation interrupts them mid-flight; a round trip
// abandoned either way discards its connection (the stream is no longer
// frame-aligned), so the next acquire re-dials.
func (t *TCPTransport) RoundTrip(ctx context.Context, req []byte) ([]byte, error) {
	conn, err := t.acquire(ctx)
	if err != nil {
		return nil, err
	}
	deadline, hasDeadline := ctx.Deadline()
	conn.SetDeadline(deadline) // zero deadline clears any previous one
	// Interrupt the socket when ctx is canceled mid-flight.
	stop := context.AfterFunc(ctx, func() { conn.SetDeadline(aLongTimeAgo) })
	var resp []byte
	err = writeFrame(conn, req)
	if err == nil {
		resp, err = readFrame(conn)
	}
	healthy := err == nil
	if !stop() {
		// The cancel hook ran (or is running): the connection's deadline
		// state is poisoned, so never return it to the pool.
		healthy = false
	}
	t.release(conn, healthy)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			// Surface the cancellation/deadline as such, not as the socket
			// error it manifested as.
			err = cerr
		} else if ne, ok := err.(net.Error); ok && ne.Timeout() && hasDeadline {
			// The socket deadline (set from ctx) can fire a hair before
			// the context's own timer reports it.
			err = context.DeadlineExceeded
		}
		return nil, err
	}
	return resp, nil
}

// Close implements RoundTripper: it closes every pooled connection.
// In-flight round trips fail as their connections close.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	var err error
	for conn := range t.conns {
		if cerr := conn.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	t.conns = map[net.Conn]struct{}{}
	t.free = nil
	return err
}
