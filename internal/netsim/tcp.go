package netsim

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCP framing: each frame is preceded by a 4-byte little-endian length.
// The length prefix is transport plumbing, not protocol payload; metering
// (Eq. 1) is applied to the frame itself by the Metered wrapper, exactly
// as for the channel transport, so both transports account identically.

const maxFrame = 64 << 20 // sanity bound for the length prefix

func writeFrame(w io.Writer, frame []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(frame)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(frame)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("netsim: frame of %d bytes exceeds limit", n)
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(r, frame); err != nil {
		return nil, err
	}
	return frame, nil
}

// TCPServer serves a Handler over a TCP listener, one goroutine per
// connection, frames delimited by length prefixes.
type TCPServer struct {
	ln net.Listener
	h  Handler

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// ListenAndServe starts a TCP server for h on addr (e.g. "127.0.0.1:0")
// and returns it once the listener is bound. Use Addr to discover the
// bound address and Close to shut down.
func ListenAndServe(addr string, h Handler) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &TCPServer{ln: ln, h: h, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's bound address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		req, err := readFrame(conn)
		if err != nil {
			return // client closed or broken frame
		}
		if err := writeFrame(conn, s.h.Handle(req)); err != nil {
			return
		}
	}
}

// Close stops the listener and all open connections, waiting for the
// connection goroutines to exit.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// TCPTransport is a RoundTripper over a single TCP connection.
type TCPTransport struct {
	conn net.Conn
}

// DialTCP connects to a TCPServer at addr.
func DialTCP(addr string) (*TCPTransport, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &TCPTransport{conn: conn}, nil
}

// RoundTrip implements RoundTripper.
func (t *TCPTransport) RoundTrip(req []byte) ([]byte, error) {
	if err := writeFrame(t.conn, req); err != nil {
		return nil, err
	}
	return readFrame(t.conn)
}

// Close implements RoundTripper.
func (t *TCPTransport) Close() error { return t.conn.Close() }
