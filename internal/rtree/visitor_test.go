package rtree

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func randomObjects(n int, seed int64) []geom.Object {
	rng := rand.New(rand.NewSource(seed))
	objs := make([]geom.Object, n)
	for i := range objs {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		objs[i] = geom.Object{
			ID:  uint32(i),
			MBR: geom.R(x, y, x+rng.Float64()*20, y+rng.Float64()*20),
		}
	}
	return objs
}

// TestSearchFuncMatchesSearch checks that the visitor traversal yields
// exactly the objects of Search, in the same order — the property that
// keeps response frames bit-identical after the visitor rewrite.
func TestSearchFuncMatchesSearch(t *testing.T) {
	tr := Bulk(randomObjects(3000, 1))
	for _, w := range []geom.Rect{
		geom.R(0, 0, 1000, 1000),
		geom.R(100, 100, 400, 300),
		geom.R(990, 990, 999, 999),
		geom.R(-50, -50, -1, -1),
	} {
		want := tr.Search(w, nil)
		var got []geom.Object
		done := tr.SearchFunc(w, func(o geom.Object) bool {
			got = append(got, o)
			return true
		})
		if !done {
			t.Fatalf("window %v: traversal reported early stop", w)
		}
		if len(got) != len(want) {
			t.Fatalf("window %v: visitor saw %d objects, Search %d", w, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("window %v: order diverges at %d: %+v vs %+v", w, i, got[i], want[i])
			}
		}
	}
}

// TestSearchFuncEarlyStop checks that returning false halts the
// traversal immediately.
func TestSearchFuncEarlyStop(t *testing.T) {
	tr := Bulk(randomObjects(500, 2))
	seen := 0
	done := tr.SearchFunc(geom.R(0, 0, 1000, 1000), func(geom.Object) bool {
		seen++
		return seen < 10
	})
	if done {
		t.Fatal("expected early stop")
	}
	if seen != 10 {
		t.Fatalf("visited %d objects after stop at 10", seen)
	}
}

// TestSearchDistFuncMatchesSearchDist mirrors the window test for the
// distance traversal.
func TestSearchDistFuncMatchesSearchDist(t *testing.T) {
	tr := Bulk(randomObjects(3000, 3))
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		p := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		eps := rng.Float64() * 80
		want := tr.SearchDist(p, eps, nil)
		var got []geom.Object
		tr.SearchDistFunc(p, eps, func(o geom.Object) bool {
			got = append(got, o)
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("probe %v eps %v: visitor %d, SearchDist %d", p, eps, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("probe %v eps %v: order diverges at %d", p, eps, j)
			}
		}
	}
}

// TestCountDistMatchesMaterialized checks the aggregate distance count —
// including its fully-within-eps subtree shortcut — against the
// materializing oracle, across probes chosen so that many subtrees fall
// entirely inside the radius.
func TestCountDistMatchesMaterialized(t *testing.T) {
	tr := Bulk(randomObjects(5000, 5))
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		p := geom.Pt(rng.Float64()*1200-100, rng.Float64()*1200-100)
		eps := rng.Float64() * 600 // large radii exercise the count shortcut
		want := len(tr.SearchDist(p, eps, nil))
		if got := tr.CountDist(p, eps); got != want {
			t.Fatalf("probe %v eps %v: CountDist %d, oracle %d", p, eps, got, want)
		}
	}
	if got := tr.CountDist(geom.Pt(500, 500), 1e6); got != tr.Len() {
		t.Fatalf("all-covering radius: CountDist %d, want %d", got, tr.Len())
	}
}

// TestAvgAreaMatchesSliceOracle pins the visitor-fold AvgArea against
// the slice-based computation it replaced.
func TestAvgAreaMatchesSliceOracle(t *testing.T) {
	tr := Bulk(randomObjects(2000, 7))
	for _, w := range []geom.Rect{
		geom.R(0, 0, 1000, 1000),
		geom.R(250, 250, 600, 700),
		geom.R(-10, -10, -1, -1),
	} {
		var sum float64
		var n int
		for _, o := range tr.Search(w, nil) {
			sum += o.MBR.Area()
			n++
		}
		want := 0.0
		if n > 0 {
			want = sum / float64(n)
		}
		if got := tr.AvgArea(w); got != want {
			t.Fatalf("window %v: AvgArea %v, oracle %v", w, got, want)
		}
	}
}

// TestVisitorEmptyTree checks the visitors and aggregates on the zero
// tree.
func TestVisitorEmptyTree(t *testing.T) {
	var tr Tree
	if !tr.SearchFunc(geom.R(0, 0, 1, 1), func(geom.Object) bool { t.Fatal("visited"); return true }) {
		t.Fatal("empty SearchFunc reported early stop")
	}
	if !tr.SearchDistFunc(geom.Pt(0, 0), 5, func(geom.Object) bool { t.Fatal("visited"); return true }) {
		t.Fatal("empty SearchDistFunc reported early stop")
	}
	if n := tr.CountDist(geom.Pt(0, 0), 5); n != 0 {
		t.Fatalf("empty CountDist = %d", n)
	}
}
