package rtree

import "repro/internal/geom"

// Insert adds one object to the tree, growing it with Guttman's
// least-enlargement descent and quadratic node splitting. Aggregate
// counts along the insertion path are maintained incrementally.
func (t *Tree) Insert(o geom.Object) {
	if t.root == nil {
		t.root = &node{leaf: true, objects: []geom.Object{o}}
		t.root.recompute()
		t.height = 1
		return
	}
	split := insertInto(t.root, o)
	if split != nil {
		// Root split: grow the tree by one level.
		newRoot := &node{children: []*node{t.root, split}}
		newRoot.recompute()
		t.root = newRoot
		t.height++
	}
}

// insertInto descends to a leaf, inserts, and returns a new sibling node
// if nd was split (nil otherwise). nd's mbr and count are updated.
func insertInto(nd *node, o geom.Object) *node {
	if nd.leaf {
		nd.objects = append(nd.objects, o)
		if len(nd.objects) > MaxEntries {
			return splitLeaf(nd)
		}
		nd.mbr = nd.mbr.Union(o.MBR)
		nd.count++
		return nil
	}
	best := chooseSubtree(nd, o.MBR)
	split := insertInto(best, o)
	if split != nil {
		nd.children = append(nd.children, split)
		if len(nd.children) > MaxEntries {
			return splitInternal(nd)
		}
	}
	nd.recompute()
	return nil
}

// chooseSubtree picks the child whose MBR needs the least enlargement to
// include r, breaking ties by smaller area.
func chooseSubtree(nd *node, r geom.Rect) *node {
	var best *node
	bestEnlarge, bestArea := 0.0, 0.0
	for _, c := range nd.children {
		area := c.mbr.Area()
		enlarged := c.mbr.Union(r).Area() - area
		if best == nil || enlarged < bestEnlarge ||
			(enlarged == bestEnlarge && area < bestArea) {
			best, bestEnlarge, bestArea = c, enlarged, area
		}
	}
	return best
}

// splitLeaf splits an overfull leaf with the quadratic method and returns
// the new sibling. Both nodes are recomputed.
func splitLeaf(nd *node) *node {
	rects := make([]geom.Rect, len(nd.objects))
	for i, o := range nd.objects {
		rects[i] = o.MBR
	}
	aIdx, bIdx := quadraticSeeds(rects)
	groupA, groupB := assignGroups(rects, aIdx, bIdx)

	objs := nd.objects
	nd.objects = pickObjects(objs, groupA)
	sib := &node{leaf: true, objects: pickObjects(objs, groupB)}
	nd.recompute()
	sib.recompute()
	return sib
}

// splitInternal splits an overfull internal node.
func splitInternal(nd *node) *node {
	rects := make([]geom.Rect, len(nd.children))
	for i, c := range nd.children {
		rects[i] = c.mbr
	}
	aIdx, bIdx := quadraticSeeds(rects)
	groupA, groupB := assignGroups(rects, aIdx, bIdx)

	kids := nd.children
	nd.children = pickNodes(kids, groupA)
	sib := &node{children: pickNodes(kids, groupB)}
	nd.recompute()
	sib.recompute()
	return sib
}

// quadraticSeeds returns the pair of entries wasting the most area when
// grouped together (Guttman's PickSeeds).
func quadraticSeeds(rects []geom.Rect) (int, int) {
	ai, bi := 0, 1
	worst := -1.0
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			waste := rects[i].Union(rects[j]).Area() - rects[i].Area() - rects[j].Area()
			if waste > worst {
				worst, ai, bi = waste, i, j
			}
		}
	}
	return ai, bi
}

// assignGroups distributes entries between the two seed groups by least
// enlargement, forcing assignment when a group must absorb all remaining
// entries to reach MinEntries.
func assignGroups(rects []geom.Rect, aSeed, bSeed int) (groupA, groupB []int) {
	groupA = []int{aSeed}
	groupB = []int{bSeed}
	mbrA, mbrB := rects[aSeed], rects[bSeed]
	remaining := make([]int, 0, len(rects)-2)
	for i := range rects {
		if i != aSeed && i != bSeed {
			remaining = append(remaining, i)
		}
	}
	for len(remaining) > 0 {
		// Force assignment if one group needs all the rest.
		if len(groupA)+len(remaining) == MinEntries {
			groupA = append(groupA, remaining...)
			break
		}
		if len(groupB)+len(remaining) == MinEntries {
			groupB = append(groupB, remaining...)
			break
		}
		// PickNext: entry with greatest preference difference.
		bestIdx, bestDiff := 0, -1.0
		for k, i := range remaining {
			dA := mbrA.Union(rects[i]).Area() - mbrA.Area()
			dB := mbrB.Union(rects[i]).Area() - mbrB.Area()
			diff := dA - dB
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestDiff, bestIdx = diff, k
			}
		}
		i := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		dA := mbrA.Union(rects[i]).Area() - mbrA.Area()
		dB := mbrB.Union(rects[i]).Area() - mbrB.Area()
		if dA < dB || (dA == dB && len(groupA) < len(groupB)) {
			groupA = append(groupA, i)
			mbrA = mbrA.Union(rects[i])
		} else {
			groupB = append(groupB, i)
			mbrB = mbrB.Union(rects[i])
		}
	}
	return groupA, groupB
}

func pickObjects(objs []geom.Object, idx []int) []geom.Object {
	out := make([]geom.Object, 0, len(idx))
	for _, i := range idx {
		out = append(out, objs[i])
	}
	return out
}

func pickNodes(nodes []*node, idx []int) []*node {
	out := make([]*node, 0, len(idx))
	for _, i := range idx {
		out = append(out, nodes[i])
	}
	return out
}
