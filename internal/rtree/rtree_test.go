package rtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func randObjects(rnd *rand.Rand, n int) []geom.Object {
	objs := make([]geom.Object, n)
	for i := range objs {
		x := rnd.Float64() * 1000
		y := rnd.Float64() * 1000
		w := rnd.Float64() * 20
		h := rnd.Float64() * 20
		objs[i] = geom.Object{ID: uint32(i), MBR: geom.R(x, y, x+w, y+h)}
	}
	return objs
}

func randPoints(rnd *rand.Rand, n int) []geom.Object {
	objs := make([]geom.Object, n)
	for i := range objs {
		objs[i] = geom.PointObject(uint32(i), geom.Pt(rnd.Float64()*1000, rnd.Float64()*1000))
	}
	return objs
}

// bruteSearch is the oracle for window queries.
func bruteSearch(objs []geom.Object, w geom.Rect) []uint32 {
	var ids []uint32
	for _, o := range objs {
		if o.MBR.Intersects(w) {
			ids = append(ids, o.ID)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func idsOf(objs []geom.Object) []uint32 {
	ids := make([]uint32, len(objs))
	for i, o := range objs {
		ids[i] = o.ID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func equalIDs(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyTree(t *testing.T) {
	tr := Bulk(nil)
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Fatalf("empty tree: len=%d height=%d", tr.Len(), tr.Height())
	}
	if got := tr.Search(geom.R(0, 0, 1, 1), nil); len(got) != 0 {
		t.Fatal("search on empty tree should be empty")
	}
	if tr.Count(geom.R(0, 0, 1, 1)) != 0 {
		t.Fatal("count on empty tree should be 0")
	}
	if _, err := tr.LevelMBRs(0); err == nil {
		t.Fatal("LevelMBRs on empty tree should error")
	}
	var zero Tree
	if zero.Len() != 0 {
		t.Fatal("zero tree should be empty")
	}
}

func TestBulkSingleObject(t *testing.T) {
	o := geom.PointObject(9, geom.Pt(5, 5))
	tr := Bulk([]geom.Object{o})
	if tr.Len() != 1 || tr.Height() != 1 {
		t.Fatalf("len=%d height=%d", tr.Len(), tr.Height())
	}
	got := tr.Search(geom.R(0, 0, 10, 10), nil)
	if len(got) != 1 || got[0] != o {
		t.Fatalf("got %v", got)
	}
}

func TestBulkSearchMatchesBruteForce(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	objs := randObjects(rnd, 2000)
	tr := Bulk(objs)
	if tr.Len() != 2000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < 100; i++ {
		w := geom.R(rnd.Float64()*1000, rnd.Float64()*1000,
			rnd.Float64()*1000, rnd.Float64()*1000)
		got := idsOf(tr.Search(w, nil))
		want := bruteSearch(objs, w)
		if !equalIDs(got, want) {
			t.Fatalf("window %v: got %d ids, want %d", w, len(got), len(want))
		}
	}
}

func TestCountMatchesSearch(t *testing.T) {
	rnd := rand.New(rand.NewSource(8))
	objs := randObjects(rnd, 3000)
	tr := Bulk(objs)
	for i := 0; i < 200; i++ {
		w := geom.R(rnd.Float64()*1000, rnd.Float64()*1000,
			rnd.Float64()*1000, rnd.Float64()*1000)
		if got, want := tr.Count(w), len(tr.Search(w, nil)); got != want {
			t.Fatalf("window %v: Count=%d Search=%d", w, got, want)
		}
	}
	// Whole-space count uses the root aggregate.
	if got := tr.Count(geom.R(-1, -1, 2000, 2000)); got != 3000 {
		t.Fatalf("full count = %d", got)
	}
}

func TestSearchDistMatchesBruteForce(t *testing.T) {
	rnd := rand.New(rand.NewSource(9))
	objs := randPoints(rnd, 1500)
	tr := Bulk(objs)
	for i := 0; i < 100; i++ {
		p := geom.Pt(rnd.Float64()*1000, rnd.Float64()*1000)
		eps := rnd.Float64() * 50
		got := idsOf(tr.SearchDist(p, eps, nil))
		var want []uint32
		for _, o := range objs {
			if o.MBR.DistToPoint(p) <= eps {
				want = append(want, o.ID)
			}
		}
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		if !equalIDs(got, want) {
			t.Fatalf("p=%v eps=%v: got %d, want %d", p, eps, len(got), len(want))
		}
		if tr.CountDist(p, eps) != len(want) {
			t.Fatalf("CountDist mismatch")
		}
	}
}

func TestInsertMatchesBulk(t *testing.T) {
	rnd := rand.New(rand.NewSource(10))
	objs := randObjects(rnd, 1200)
	var tr Tree
	for _, o := range objs {
		tr.Insert(o)
	}
	if tr.Len() != len(objs) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(objs))
	}
	for i := 0; i < 80; i++ {
		w := geom.R(rnd.Float64()*1000, rnd.Float64()*1000,
			rnd.Float64()*1000, rnd.Float64()*1000)
		got := idsOf(tr.Search(w, nil))
		want := bruteSearch(objs, w)
		if !equalIDs(got, want) {
			t.Fatalf("insert-built search mismatch for %v: got %d want %d", w, len(got), len(want))
		}
		if tr.Count(w) != len(want) {
			t.Fatalf("insert-built count mismatch for %v", w)
		}
	}
}

func TestInsertIntoBulkTree(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	objs := randObjects(rnd, 500)
	tr := Bulk(objs[:300])
	for _, o := range objs[300:] {
		tr.Insert(o)
	}
	w := geom.R(100, 100, 900, 900)
	got := idsOf(tr.Search(w, nil))
	want := bruteSearch(objs, w)
	if !equalIDs(got, want) {
		t.Fatalf("mixed-built search mismatch: got %d want %d", len(got), len(want))
	}
}

// checkInvariants walks the tree verifying MBR containment, aggregate
// counts, and fill bounds.
func checkInvariants(t *testing.T, tr *Tree) {
	t.Helper()
	if tr.root == nil {
		return
	}
	var walk func(nd *node, depth int) int
	walk = func(nd *node, depth int) int {
		if nd.leaf {
			if depth != tr.height-1 {
				t.Fatalf("leaf at depth %d, height %d (unbalanced)", depth, tr.height)
			}
			if nd.count != len(nd.objects) {
				t.Fatalf("leaf count %d != %d objects", nd.count, len(nd.objects))
			}
			for _, o := range nd.objects {
				if !nd.mbr.Contains(o.MBR) {
					t.Fatalf("leaf mbr %v does not contain object %v", nd.mbr, o.MBR)
				}
			}
			return nd.count
		}
		if len(nd.children) > MaxEntries {
			t.Fatalf("internal node with %d children", len(nd.children))
		}
		sum := 0
		for _, c := range nd.children {
			if !nd.mbr.Contains(c.mbr) {
				t.Fatalf("node mbr %v does not contain child %v", nd.mbr, c.mbr)
			}
			sum += walk(c, depth+1)
		}
		if nd.count != sum {
			t.Fatalf("aggregate count %d != children sum %d", nd.count, sum)
		}
		return sum
	}
	total := walk(tr.root, 0)
	if total != tr.Len() {
		t.Fatalf("walked %d objects, Len() = %d", total, tr.Len())
	}
}

func TestInvariantsBulk(t *testing.T) {
	rnd := rand.New(rand.NewSource(12))
	for _, n := range []int{1, 2, 16, 17, 100, 1000, 5000} {
		tr := Bulk(randObjects(rnd, n))
		checkInvariants(t, tr)
	}
}

func TestInvariantsInsert(t *testing.T) {
	rnd := rand.New(rand.NewSource(13))
	var tr Tree
	for i, o := range randObjects(rnd, 800) {
		tr.Insert(o)
		if i%97 == 0 {
			checkInvariants(t, &tr)
		}
	}
	checkInvariants(t, &tr)
}

func TestLevelMBRs(t *testing.T) {
	rnd := rand.New(rand.NewSource(14))
	objs := randObjects(rnd, MaxEntries*MaxEntries*2) // guarantees >= 3 levels
	tr := Bulk(objs)
	if tr.Height() < 3 {
		t.Fatalf("height %d too small for the test", tr.Height())
	}
	// Leaf level covers all objects.
	leaves, err := tr.LevelMBRs(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		found := false
		for _, m := range leaves {
			if m.Contains(o.MBR) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("object %v not covered by any leaf MBR", o.MBR)
		}
	}
	// Root level is a single rect equal to bounds.
	top, err := tr.LevelMBRs(tr.Height() - 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 || top[0] != tr.Bounds() {
		t.Fatalf("root level = %v, bounds %v", top, tr.Bounds())
	}
	// Level sizes shrink as we go up.
	prev := len(leaves)
	for lvl := 1; lvl < tr.Height(); lvl++ {
		ms, err := tr.LevelMBRs(lvl)
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) >= prev {
			t.Fatalf("level %d has %d MBRs, level below had %d", lvl, len(ms), prev)
		}
		prev = len(ms)
	}
	if _, err := tr.LevelMBRs(tr.Height()); err == nil {
		t.Fatal("out-of-range level should error")
	}
	if _, err := tr.LevelMBRs(-1); err == nil {
		t.Fatal("negative level should error")
	}
}

func TestAll(t *testing.T) {
	rnd := rand.New(rand.NewSource(15))
	objs := randObjects(rnd, 700)
	tr := Bulk(objs)
	got := idsOf(tr.All(nil))
	want := idsOf(objs)
	if !equalIDs(got, want) {
		t.Fatalf("All returned %d ids, want %d", len(got), len(want))
	}
}

func TestAvgArea(t *testing.T) {
	objs := []geom.Object{
		{ID: 1, MBR: geom.R(0, 0, 2, 2)},     // area 4
		{ID: 2, MBR: geom.R(10, 10, 14, 14)}, // area 16
	}
	tr := Bulk(objs)
	if got := tr.AvgArea(geom.R(-1, -1, 20, 20)); got != 10 {
		t.Fatalf("AvgArea = %v, want 10", got)
	}
	if got := tr.AvgArea(geom.R(0, 0, 3, 3)); got != 4 {
		t.Fatalf("AvgArea(partial) = %v, want 4", got)
	}
	if got := tr.AvgArea(geom.R(100, 100, 101, 101)); got != 0 {
		t.Fatalf("AvgArea(empty) = %v, want 0", got)
	}
}

func TestQuickCountEqualsBrute(t *testing.T) {
	rnd := rand.New(rand.NewSource(16))
	objs := randObjects(rnd, 400)
	tr := Bulk(objs)
	f := func(x1, y1, x2, y2 uint16) bool {
		w := geom.R(float64(x1%1000), float64(y1%1000), float64(x2%1000), float64(y2%1000))
		return tr.Count(w) == len(bruteSearch(objs, w))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateObjectsAllowed(t *testing.T) {
	o := geom.PointObject(1, geom.Pt(5, 5))
	tr := Bulk([]geom.Object{o, o, o})
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (duplicates kept)", tr.Len())
	}
	if got := tr.Count(geom.R(4, 4, 6, 6)); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
}
