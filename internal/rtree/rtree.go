// Package rtree implements an aggregate R-tree (aR-tree) over spatial
// objects: an R-tree whose internal entries additionally store the number
// of objects in their subtree, so that COUNT window queries are answered
// without visiting fully-covered subtrees. The paper's servers answer
// COUNT queries from exactly this kind of structure (§3, citing the
// aR-tree of Papadias et al. [11]).
//
// Trees are bulk-loaded with the Sort-Tile-Recursive (STR) algorithm and
// also support incremental insertion (quadratic split), so servers can be
// built from static snapshots or grown dynamically. The tree additionally
// exposes the MBRs of a whole level, which the SemiJoin comparator of
// §5.3 transfers between servers.
package rtree

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"sync"

	"repro/internal/geom"
)

// Degree bounds for tree nodes: a 4 KiB page holds on the order of 64
// 20-byte object records plus header, the fanout regime of the paper's
// servers; MinEntries = 40% fill per Guttman.
const (
	MaxEntries = 64
	MinEntries = 26
)

type node struct {
	mbr      geom.Rect
	count    int // aggregate: number of objects in the subtree
	leaf     bool
	children []*node       // internal nodes
	objects  []geom.Object // leaf nodes
}

// Tree is an aggregate R-tree. The zero value is an empty tree ready for
// Insert; use Bulk for efficient construction from a slice.
type Tree struct {
	root   *node
	height int // number of levels; 0 for empty, 1 for a single leaf
}

// Bulk builds a tree from objs using STR bulk loading. The input slice is
// not retained; objects are copied into leaves.
func Bulk(objs []geom.Object) *Tree {
	t := &Tree{}
	if len(objs) == 0 {
		return t
	}
	leaves := strLeaves(objs)
	level := leaves
	t.height = 1
	for len(level) > 1 {
		level = strPack(level)
		t.height++
	}
	t.root = level[0]
	return t
}

// strLeaves tiles the objects into leaf nodes ordered by x then y.
func strLeaves(objs []geom.Object) []*node {
	sorted := make([]geom.Object, len(objs))
	copy(sorted, objs)
	n := len(sorted)
	leafCount := (n + MaxEntries - 1) / MaxEntries
	sliceCount := int(math.Ceil(math.Sqrt(float64(leafCount))))
	perSlice := sliceCount * MaxEntries

	slices.SortFunc(sorted, func(a, b geom.Object) int {
		return cmp.Compare(a.MBR.Center().X, b.MBR.Center().X)
	})
	leaves := make([]*node, 0, leafCount)
	for start := 0; start < n; start += perSlice {
		end := min(start+perSlice, n)
		slice := sorted[start:end]
		slices.SortFunc(slice, func(a, b geom.Object) int {
			return cmp.Compare(a.MBR.Center().Y, b.MBR.Center().Y)
		})
		for s := 0; s < len(slice); s += MaxEntries {
			e := min(s+MaxEntries, len(slice))
			leaf := &node{leaf: true, objects: append([]geom.Object(nil), slice[s:e]...)}
			leaf.recompute()
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

// strPack groups a level of nodes into parents using the same tiling.
func strPack(level []*node) []*node {
	n := len(level)
	parentCount := (n + MaxEntries - 1) / MaxEntries
	sliceCount := int(math.Ceil(math.Sqrt(float64(parentCount))))
	perSlice := sliceCount * MaxEntries

	slices.SortFunc(level, func(a, b *node) int {
		return cmp.Compare(a.mbr.Center().X, b.mbr.Center().X)
	})
	parents := make([]*node, 0, parentCount)
	for start := 0; start < n; start += perSlice {
		end := min(start+perSlice, n)
		slice := level[start:end]
		slices.SortFunc(slice, func(a, b *node) int {
			return cmp.Compare(a.mbr.Center().Y, b.mbr.Center().Y)
		})
		for s := 0; s < len(slice); s += MaxEntries {
			e := min(s+MaxEntries, len(slice))
			p := &node{children: append([]*node(nil), slice[s:e]...)}
			p.recompute()
			parents = append(parents, p)
		}
	}
	return parents
}

// recompute refreshes mbr and count from the node's entries.
func (nd *node) recompute() {
	if nd.leaf {
		nd.count = len(nd.objects)
		if len(nd.objects) == 0 {
			nd.mbr = geom.Rect{}
			return
		}
		mbr := nd.objects[0].MBR
		for _, o := range nd.objects[1:] {
			mbr = mbr.Union(o.MBR)
		}
		nd.mbr = mbr
		return
	}
	nd.count = 0
	if len(nd.children) == 0 {
		nd.mbr = geom.Rect{}
		return
	}
	mbr := nd.children[0].mbr
	for _, c := range nd.children {
		nd.count += c.count
		mbr = mbr.Union(c.mbr)
	}
	nd.mbr = mbr
}

// Len returns the number of objects in the tree.
func (t *Tree) Len() int {
	if t.root == nil {
		return 0
	}
	return t.root.count
}

// Height returns the number of levels (0 for an empty tree; leaves are
// level 0 when addressing LevelMBRs).
func (t *Tree) Height() int { return t.height }

// Bounds returns the MBR of all objects. The empty tree has zero bounds.
func (t *Tree) Bounds() geom.Rect {
	if t.root == nil {
		return geom.Rect{}
	}
	return t.root.mbr
}

// stackPool recycles the explicit traversal stacks of the visitor
// methods, so a query allocates nothing however deep the tree.
var stackPool = sync.Pool{
	New: func() any { s := make([]*node, 0, 64); return &s },
}

func getStack() *[]*node  { return stackPool.Get().(*[]*node) }
func putStack(s *[]*node) { *s = (*s)[:0]; stackPool.Put(s) }

// push appends the children of nd in reverse, so that popping from the
// stack's tail visits them in their stored order — the visitor methods
// therefore yield objects in exactly the order of the old recursive
// traversal, which keeps response frames bit-identical.
func push(s []*node, children []*node) []*node {
	for i := len(children) - 1; i >= 0; i-- {
		s = append(s, children[i])
	}
	return s
}

// SearchFunc calls visit for every object whose MBR intersects w, in the
// tree's traversal order, stopping early when visit returns false. It
// reports whether the traversal ran to completion. The traversal uses an
// explicit, pooled stack and allocates nothing.
func (t *Tree) SearchFunc(w geom.Rect, visit func(o geom.Object) bool) bool {
	if t.root == nil {
		return true
	}
	sp := getStack()
	defer putStack(sp)
	stack := append(*sp, t.root)
	for len(stack) > 0 {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !nd.mbr.Intersects(w) {
			continue
		}
		if nd.leaf {
			for _, o := range nd.objects {
				if o.MBR.Intersects(w) && !visit(o) {
					*sp = stack
					return false
				}
			}
			continue
		}
		stack = push(stack, nd.children)
	}
	*sp = stack
	return true
}

// Search appends to dst all objects whose MBR intersects w and returns
// the extended slice.
func (t *Tree) Search(w geom.Rect, dst []geom.Object) []geom.Object {
	t.SearchFunc(w, func(o geom.Object) bool {
		dst = append(dst, o)
		return true
	})
	return dst
}

// Count returns the exact number of objects whose MBR intersects w.
// Subtrees entirely inside w contribute their aggregate count without
// descent; only boundary nodes are expanded.
func (t *Tree) Count(w geom.Rect) int {
	if t.root == nil {
		return 0
	}
	return countNode(t.root, w)
}

func countNode(nd *node, w geom.Rect) int {
	if !nd.mbr.Intersects(w) {
		return 0
	}
	if w.Contains(nd.mbr) {
		return nd.count
	}
	if nd.leaf {
		n := 0
		for _, o := range nd.objects {
			if o.MBR.Intersects(w) {
				n++
			}
		}
		return n
	}
	n := 0
	for _, c := range nd.children {
		n += countNode(c, w)
	}
	return n
}

// SearchDistFunc calls visit for every object whose MBR lies within
// Euclidean distance eps of point p, in the tree's traversal order,
// stopping early when visit returns false. It reports whether the
// traversal ran to completion. Like SearchFunc it allocates nothing.
func (t *Tree) SearchDistFunc(p geom.Point, eps float64, visit func(o geom.Object) bool) bool {
	if t.root == nil {
		return true
	}
	sp := getStack()
	defer putStack(sp)
	stack := append(*sp, t.root)
	for len(stack) > 0 {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if nd.mbr.DistToPoint(p) > eps {
			continue
		}
		if nd.leaf {
			for _, o := range nd.objects {
				if o.MBR.DistToPoint(p) <= eps && !visit(o) {
					*sp = stack
					return false
				}
			}
			continue
		}
		stack = push(stack, nd.children)
	}
	*sp = stack
	return true
}

// SearchDist appends to dst all objects whose MBR lies within Euclidean
// distance eps of point p and returns the extended slice.
func (t *Tree) SearchDist(p geom.Point, eps float64, dst []geom.Object) []geom.Object {
	t.SearchDistFunc(p, eps, func(o geom.Object) bool {
		dst = append(dst, o)
		return true
	})
	return dst
}

// CountDist returns the number of objects within distance eps of p.
// Like Count, it is a pure aggregate traversal: a subtree whose MBR lies
// entirely within eps of p contributes its stored count without descent
// (every object MBR inside such a node is itself within eps), and no
// result objects are ever materialized.
func (t *Tree) CountDist(p geom.Point, eps float64) int {
	if t.root == nil {
		return 0
	}
	n := 0
	sp := getStack()
	defer putStack(sp)
	stack := append(*sp, t.root)
	for len(stack) > 0 {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if nd.mbr.DistToPoint(p) > eps {
			continue
		}
		if nd.mbr.MaxDistToPoint(p) <= eps {
			n += nd.count
			continue
		}
		if nd.leaf {
			for _, o := range nd.objects {
				if o.MBR.DistToPoint(p) <= eps {
					n++
				}
			}
			continue
		}
		stack = push(stack, nd.children)
	}
	*sp = stack
	return n
}

// AvgArea returns the average MBR area of the objects intersecting w,
// and 0 when no object intersects. It backs the AVG-AREA aggregate the
// paper adds for polygon datasets (§3.1). The fold runs over the visitor,
// so no result slice is materialized.
func (t *Tree) AvgArea(w geom.Rect) float64 {
	var sum float64
	var n int
	t.SearchFunc(w, func(o geom.Object) bool {
		sum += o.MBR.Area()
		n++
		return true
	})
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// LevelMBRs returns the MBRs of all nodes at the given level, where level
// 0 is the leaf level and Height()-1 is the root. It returns an error for
// an out-of-range level or an empty tree.
func (t *Tree) LevelMBRs(level int) ([]geom.Rect, error) {
	if t.root == nil {
		return nil, fmt.Errorf("rtree: level %d of empty tree", level)
	}
	if level < 0 || level >= t.height {
		return nil, fmt.Errorf("rtree: level %d out of range [0,%d)", level, t.height)
	}
	depth := t.height - 1 - level // root is depth 0
	var out []geom.Rect
	var walk func(nd *node, d int)
	walk = func(nd *node, d int) {
		if d == depth {
			out = append(out, nd.mbr)
			return
		}
		for _, c := range nd.children {
			walk(c, d+1)
		}
	}
	walk(t.root, 0)
	return out, nil
}

// All appends every object in the tree to dst and returns the result.
func (t *Tree) All(dst []geom.Object) []geom.Object {
	if t.root == nil {
		return dst
	}
	var walk func(nd *node)
	walk = func(nd *node) {
		if nd.leaf {
			dst = append(dst, nd.objects...)
			return
		}
		for _, c := range nd.children {
			walk(c)
		}
	}
	walk(t.root)
	return dst
}
