package shard

import "repro/internal/netsim"

// Per-tenant attribution surfaces for the fleet topologies. Like Usage,
// each is an additive sum over the endpoint's links, so a tenant's slice
// of a router (or tree, or replica set) sums column by column with every
// other tenant's to the endpoint's own Usage(). Endpoints without the
// seam — anything that is not a *client.Remote, *ReplicaSet, or
// *Aggregator — contribute zero, matching the optional-interface pattern
// LinkStats uses.

// endpointTenantUsage reads an endpoint's per-tenant attribution when it
// exposes one.
func endpointTenantUsage(e Endpoint, id netsim.TenantID) netsim.Usage {
	if tu, ok := e.(interface {
		TenantUsage(netsim.TenantID) netsim.Usage
	}); ok {
		return tu.TenantUsage(id)
	}
	return netsim.Usage{}
}

// TenantUsage returns the tenant's attributed slice of the relation's
// traffic, summed over all shard links.
func (r *Router) TenantUsage(id netsim.TenantID) netsim.Usage {
	var sum netsim.Usage
	for _, s := range r.shards {
		sum = sum.Add(endpointTenantUsage(s, id))
	}
	return sum
}

// TenantUsage returns the tenant's attributed slice of the shard's
// traffic, summed over all replica links.
func (rs *ReplicaSet) TenantUsage(id netsim.TenantID) netsim.Usage {
	var sum netsim.Usage
	for _, r := range rs.replicas {
		sum = sum.Add(r.TenantUsage(id))
	}
	return sum
}

// TenantUsage returns the tenant's attributed slice of the subtree's
// traffic: every leaf and interior link below this node. The synthetic
// uplink meter is charged outside any tenant context, so it contributes
// only through the subtree's own links.
func (a *Aggregator) TenantUsage(id netsim.TenantID) netsim.Usage {
	return a.Router.TenantUsage(id)
}
