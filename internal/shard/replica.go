package shard

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/bufpool"
	"repro/internal/client"
	"repro/internal/geom"
	"repro/internal/health"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// This file makes each shard a replica set. A ReplicaSet presents N
// servers holding the *same* partition as one logical endpoint with
// three behaviours a single Remote cannot offer:
//
//   - Load balancing: every probe is assigned a primary replica by a
//     deterministic rotation (seeded round-robin), spreading the read
//     load evenly — no replica starves, and a sequential run issues a
//     reproducible request schedule, which the byte goldens rely on.
//
//   - Hedged reads: when a probe has been in flight longer than a high
//     percentile of the recent attempt-latency window (HedgePct, fed by
//     the client.LatencyTracker), the same probe is speculatively
//     re-issued on the next replica. The first reply wins; the loser is
//     cancelled through the context plumbing and its traffic is
//     sub-accounted in the meter's hedged column. Every query in the
//     protocol is idempotent, so racing two replicas is always
//     semantically safe — the reply is consumed exactly once, never
//     merged twice.
//
//   - Failover: a replica that drops the request, severs the
//     connection, or is simply dead fails the attempt; the probe is
//     re-issued on the next untried replica. Only terminal failures
//     (parent context cancelled, transport closed by us) propagate.
//
// A ReplicaSet implements the same query surface as client.Remote
// (core.Probe / shard.Endpoint), so it slots under the scatter–gather
// Router unchanged: a fleet of S shards × R replicas serves every
// algorithm unmodified. With a single replica every call delegates
// verbatim to the one Remote — bit-identical on the wire, pinned by the
// goldens.

// ReplicaConfig parameterizes a ReplicaSet.
type ReplicaConfig struct {
	// HedgePct, when > 0, enables hedged reads: a probe still in flight
	// after the HedgePct-th percentile of the recent latency window is
	// raced against the next replica. 95 is a sane production value —
	// roughly one probe in twenty pays a second request for a shot at
	// cutting the tail.
	HedgePct float64
	// HedgeAfter overrides the percentile threshold with a fixed delay
	// when positive. A negative value hedges every probe immediately
	// with no timer — deterministic total speculation, for tests and
	// goldens that pin the hedged-bytes column.
	HedgeAfter time.Duration
	// MinSamples gates percentile hedging until the latency window has
	// at least this many observations (default 16): a threshold derived
	// from a handful of samples is noise.
	MinSamples int
	// Seed offsets the round-robin rotation, so the primary-selection
	// schedule is a pure function of (Seed, probe sequence).
	Seed int64
	// Health, when non-nil, arms one circuit breaker per replica from
	// the registry (keyed by the replica's name, with a cheap INFO round
	// trip as its background recovery probe). Selection then skips
	// replicas whose breaker is open — a known-dead replica costs zero
	// probes until it recovers — and every attempt outcome feeds the
	// breaker's EWMA score. Nil keeps the pre-breaker behaviour exactly:
	// every failure is re-discovered by a live attempt.
	Health *health.Registry
	// Budget, when positive, bounds each logical probe end-to-end: the
	// primary attempt, failovers, and any hedge all draw from one
	// deadline, so the worst case of a probe is Budget regardless of how
	// many replicas it walks. Zero applies no budget.
	Budget time.Duration
}

// ReplicaStats counts the replica-layer decisions of one set. Every
// launched hedge resolves exactly once as a win (the speculative reply
// was consumed) or a loss (it was cancelled, or it failed), so after
// quiescence Hedges == HedgeWins + HedgeLosses — the property suite
// pins this.
type ReplicaStats struct {
	// Hedges counts speculative secondary attempts launched.
	Hedges int64
	// HedgeWins counts hedges whose reply won the race and was consumed.
	HedgeWins int64
	// HedgeLosses counts hedges cancelled or failed; their reply was
	// never consumed.
	HedgeLosses int64
	// Failovers counts probes re-issued on a sibling replica after a
	// transport fault.
	Failovers int64
}

// ReplicaSet serves one shard from several identical replica servers,
// implementing the full Endpoint/core.Probe query surface.
type ReplicaSet struct {
	name     string
	replicas []*client.Remote
	cfg      ReplicaConfig
	next     atomic.Uint64
	lat      *client.LatencyTracker
	// brk holds one breaker per replica when cfg.Health armed them
	// (nil otherwise — the unarmed fast path is byte-identical to the
	// pre-breaker code).
	brk []*health.Breaker
	// setSkips counts whole-set skips: sub-queries a router routed
	// around this shard because no replica admitted traffic.
	setSkips atomic.Int64

	hedges, hedgeWins, hedgeLosses, failovers atomic.Int64
}

// NewReplicaSet assembles a replica set named name over the given
// replicas, which must serve identical data over links with one shared
// per-byte tariff.
func NewReplicaSet(name string, replicas []*client.Remote, cfg ReplicaConfig) (*ReplicaSet, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("shard: replica set %s needs at least one replica", name)
	}
	price := replicas[0].PricePerByte()
	for _, r := range replicas[1:] {
		if r.PricePerByte() != price {
			return nil, fmt.Errorf("shard: replica set %s: replica tariffs differ (%v vs %v)",
				name, price, r.PricePerByte())
		}
	}
	rs := &ReplicaSet{name: name, replicas: replicas, cfg: cfg,
		lat: client.NewLatencyTracker(0)}
	n := int64(len(replicas))
	rs.next.Store(uint64(((cfg.Seed % n) + n) % n))
	if cfg.Health != nil {
		rs.brk = make([]*health.Breaker, len(replicas))
		for i, rem := range replicas {
			rem := rem
			rs.brk[i] = cfg.Health.Breaker(rem.Name(), func(ctx context.Context) error {
				_, err := rem.Info(ctx)
				return err
			})
		}
	}
	return rs, nil
}

// Name returns the replica set's diagnostic name (the shard's).
func (rs *ReplicaSet) Name() string { return rs.name }

// Replicas exposes the replica remotes (tests and diagnostics).
func (rs *ReplicaSet) Replicas() []*client.Remote { return rs.replicas }

// Stats returns the replica-layer decision counters.
func (rs *ReplicaSet) Stats() ReplicaStats {
	return ReplicaStats{
		Hedges:      rs.hedges.Load(),
		HedgeWins:   rs.hedgeWins.Load(),
		HedgeLosses: rs.hedgeLosses.Load(),
		Failovers:   rs.failovers.Load(),
	}
}

// Latency returns the set's attempt-latency window (primary attempts
// only; hedges would bias the tail the threshold is derived from).
func (rs *ReplicaSet) Latency() *client.LatencyTracker { return rs.lat }

// Usage returns the shard's accumulated traffic: the sum over all
// replica links (every netsim.Usage field, the hedged column included,
// is an additive total).
func (rs *ReplicaSet) Usage() netsim.Usage {
	var sum netsim.Usage
	for _, r := range rs.replicas {
		sum = sum.Add(r.Usage())
	}
	for _, b := range rs.brk {
		st := b.Stats()
		sum.BreakerOpens += int(st.Opens)
		sum.BreakerSkips += int(st.Skips)
	}
	sum.BreakerSkips += int(rs.setSkips.Load())
	return sum
}

// Healthy reports whether at least one replica currently admits traffic
// (always true unarmed). The router's scatter consults it under partial
// mode to route around a whole-dead shard before wasting a probe.
func (rs *ReplicaSet) Healthy() bool {
	if rs.brk == nil {
		return true
	}
	for _, b := range rs.brk {
		if b.Admits() {
			return true
		}
	}
	return false
}

// RoutedAround records that a caller skipped this whole shard because no
// replica admitted traffic — one sub-query saved, surfaced in the
// Usage breaker-skip column.
func (rs *ReplicaSet) RoutedAround() { rs.setSkips.Add(1) }

// Breakers exposes the per-replica breakers (nil unarmed; tests and
// diagnostics).
func (rs *ReplicaSet) Breakers() []*health.Breaker { return rs.brk }

// allow reports whether replica i's breaker admits an attempt now
// (always true unarmed). May transition the breaker to half-open.
func (rs *ReplicaSet) allow(i int) bool {
	return rs.brk == nil || rs.brk[i].Allow()
}

// score feeds one attempt outcome to replica i's breaker. Failures the
// endpoint is innocent of are excluded: our own cancellation (a lost
// hedge race, a spent budget — actx is the attempt's context) and a
// transport we closed. A per-try timeout inside the Remote does count:
// the attempt context was alive, the endpoint just never answered.
func (rs *ReplicaSet) score(i int, err error, d time.Duration, actx context.Context) {
	if rs.brk == nil {
		return
	}
	if err == nil {
		rs.brk[i].ReportSuccess(d)
		return
	}
	if actx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, netsim.ErrClosed) {
		return
	}
	rs.brk[i].ReportFailure(err)
}

// PricePerByte returns the shared per-byte tariff of the replica links.
func (rs *ReplicaSet) PricePerByte() float64 { return rs.replicas[0].PricePerByte() }

// LinkStats merges the live link observations of every replica link
// (sample-weighted RTT EWMA), for the online planner.
func (rs *ReplicaSet) LinkStats() netsim.LinkSnapshot {
	var snap netsim.LinkSnapshot
	for _, r := range rs.replicas {
		snap = snap.Merge(r.LinkStats())
	}
	return snap
}

// Retries sums the re-issued attempts across all replica links.
func (rs *ReplicaSet) Retries() int64 {
	var n int64
	for _, r := range rs.replicas {
		n += r.Retries()
	}
	return n
}

// Close releases every replica transport, returning the first error.
func (rs *ReplicaSet) Close() error {
	var first error
	for _, r := range rs.replicas {
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// hedgeDelay resolves the current hedge threshold: a fixed override, an
// unconditional hedge (HedgeAfter < 0), or the configured percentile of
// the latency window once enough samples exist.
func (rs *ReplicaSet) hedgeDelay() (time.Duration, bool) {
	if rs.cfg.HedgeAfter < 0 {
		return 0, true
	}
	if rs.cfg.HedgeAfter > 0 {
		return rs.cfg.HedgeAfter, true
	}
	if rs.cfg.HedgePct <= 0 {
		return 0, false
	}
	min := rs.cfg.MinSamples
	if min <= 0 {
		min = 16
	}
	return rs.lat.Quantile(rs.cfg.HedgePct, min)
}

// failoverable reports whether a failed attempt may move to a sibling
// replica: transient transport faults are; a transport we closed
// ourselves is not (mirrors the Remote's retry gate).
func failoverable(err error) bool {
	return !errors.Is(err, netsim.ErrClosed)
}

// probe runs one idempotent query against the set: primary by rotation,
// hedged after the threshold, failed over on transport faults. The
// winning reply is consumed exactly once; the losing attempt is
// cancelled when probe returns (the deferred cancel — the PR 3 context
// plumbing reaches every transport) and its buffered completion is
// dropped, so no goroutine outlives the probe beyond its cancellation.
func probe[T any](ctx context.Context, rs *ReplicaSet, f func(ctx context.Context, rem *client.Remote) (T, error)) (T, error) {
	var zero T
	if rs.cfg.Budget > 0 {
		// One deadline for the whole probe: primary, failovers, and the
		// hedge all spend from it, so the probe's worst case is Budget
		// however many replicas it walks.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rs.cfg.Budget)
		defer cancel()
	}
	n := len(rs.replicas)
	if n == 1 {
		if rs.brk == nil {
			return f(ctx, rs.replicas[0])
		}
		// A lone replica is probed regardless of its breaker (there is
		// nowhere else to go), but the outcome still feeds the score so
		// Healthy() and the recovery prober see reality.
		t0 := time.Now()
		v, err := f(ctx, rs.replicas[0])
		rs.score(0, err, time.Since(t0), ctx)
		return v, err
	}
	if err := ctx.Err(); err != nil {
		return zero, fmt.Errorf("%s: %w", rs.name, err)
	}
	start := int(rs.next.Add(1)-1) % n
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type outcome struct {
		val    T
		err    error
		idx    int
		hedged bool
	}
	// Buffered to the attempt budget: a losing attempt's completion
	// never blocks its goroutine, even after probe has returned.
	ch := make(chan outcome, n)
	tried, inflight := 0, 0
	// forced queues the breaker-open replicas a primary or failover may
	// be forced onto when no admitted replica remains: the probe has to
	// go somewhere, and a forced trial doubles as the half-open recovery
	// attempt. Hedges never draw from it — a speculative attempt against
	// a known-dead replica is pure waste (the hedge-skip satellite).
	var forced []int
	// pick returns the next attempt's replica: the rotation order with
	// open-circuit replicas skipped before any frame is spent on them.
	// Each skip-over of an open replica in favour of an admitted one is
	// counted on its breaker — that is the probe saved versus reactive
	// failover. Unarmed (rs.brk == nil) this is exactly the pre-breaker
	// rotation.
	pick := func(hedged bool) int {
		var skippedNow []int
		for tried < n {
			idx := (start + tried) % n
			tried++
			if rs.allow(idx) {
				for _, s := range skippedNow {
					rs.brk[s].Skip()
				}
				forced = append(forced, skippedNow...)
				return idx
			}
			skippedNow = append(skippedNow, idx)
		}
		if hedged {
			for _, s := range skippedNow {
				rs.brk[s].Skip()
			}
			forced = append(forced, skippedNow...)
			return -1
		}
		forced = append(forced, skippedNow...)
		if len(forced) > 0 {
			idx := forced[0]
			forced = forced[1:]
			return idx
		}
		return -1
	}
	launch := func(hedged bool) bool {
		idx := pick(hedged)
		if idx < 0 {
			return false
		}
		rem := rs.replicas[idx]
		inflight++
		actx := pctx
		if hedged {
			actx = netsim.WithHedged(pctx)
			rs.hedges.Add(1)
		}
		go func() {
			t0 := time.Now()
			v, err := f(actx, rem)
			if err == nil && !hedged {
				rs.lat.Add(time.Since(t0))
			}
			rs.score(idx, err, time.Since(t0), actx)
			ch <- outcome{val: v, err: err, idx: idx, hedged: hedged}
		}()
		return true
	}
	launch(false)
	var hedgeC <-chan time.Time
	hedgeLaunched, hedgeResolved := false, false
	if d, ok := rs.hedgeDelay(); ok {
		if d <= 0 {
			hedgeLaunched = launch(true)
		} else {
			t := time.NewTimer(d)
			defer t.Stop()
			hedgeC = t.C
		}
	}
	var firstErr error
	for {
		select {
		case <-hedgeC:
			hedgeC = nil
			if launch(true) {
				hedgeLaunched = true
			}
		case out := <-ch:
			inflight--
			if out.err == nil {
				if out.hedged {
					rs.hedgeWins.Add(1)
				} else if hedgeLaunched && !hedgeResolved {
					// The speculative attempt lost the race: it is
					// cancelled by the deferred cancel and counted here,
					// exactly once.
					rs.hedgeLosses.Add(1)
				}
				return out.val, nil
			}
			if out.hedged {
				hedgeResolved = true
				rs.hedgeLosses.Add(1)
			}
			if firstErr == nil ||
				(errors.Is(firstErr, context.Canceled) && !errors.Is(out.err, context.Canceled)) {
				firstErr = out.err
			}
			if ctx.Err() == nil && failoverable(out.err) && launch(false) {
				rs.failovers.Add(1)
			}
			if inflight == 0 {
				return zero, firstErr
			}
		}
	}
}

// --- the Endpoint / core.Probe query surface ------------------------------

// Info returns the shard's advertised metadata (replicas are identical,
// so any replica's answer is the shard's).
func (rs *ReplicaSet) Info(ctx context.Context) (wire.Info, error) {
	return probe(ctx, rs, func(ctx context.Context, rem *client.Remote) (wire.Info, error) {
		return rem.Info(ctx)
	})
}

// Count returns the number of objects intersecting w.
func (rs *ReplicaSet) Count(ctx context.Context, w geom.Rect) (int, error) {
	return probe(ctx, rs, func(ctx context.Context, rem *client.Remote) (int, error) {
		return rem.Count(ctx, w)
	})
}

// Window returns all objects intersecting w.
func (rs *ReplicaSet) Window(ctx context.Context, w geom.Rect) ([]geom.Object, error) {
	return probe(ctx, rs, func(ctx context.Context, rem *client.Remote) ([]geom.Object, error) {
		return rem.Window(ctx, w)
	})
}

// AvgArea returns the mean MBR area of objects intersecting w.
func (rs *ReplicaSet) AvgArea(ctx context.Context, w geom.Rect) (float64, error) {
	return probe(ctx, rs, func(ctx context.Context, rem *client.Remote) (float64, error) {
		return rem.AvgArea(ctx, w)
	})
}

// Range returns the objects within distance eps of p.
func (rs *ReplicaSet) Range(ctx context.Context, p geom.Point, eps float64) ([]geom.Object, error) {
	return probe(ctx, rs, func(ctx context.Context, rem *client.Remote) ([]geom.Object, error) {
		return rem.Range(ctx, p, eps)
	})
}

// RangeCount returns the number of objects within distance eps of p.
func (rs *ReplicaSet) RangeCount(ctx context.Context, p geom.Point, eps float64) (int, error) {
	return probe(ctx, rs, func(ctx context.Context, rem *client.Remote) (int, error) {
		return rem.RangeCount(ctx, p, eps)
	})
}

// BucketRange submits many ε-range probes at once.
func (rs *ReplicaSet) BucketRange(ctx context.Context, pts []geom.Point, eps float64) ([][]geom.Object, error) {
	return probe(ctx, rs, func(ctx context.Context, rem *client.Remote) ([][]geom.Object, error) {
		return rem.BucketRange(ctx, pts, eps)
	})
}

// BucketRangeCount is the aggregate variant of BucketRange.
func (rs *ReplicaSet) BucketRangeCount(ctx context.Context, pts []geom.Point, eps float64) ([]int64, error) {
	return probe(ctx, rs, func(ctx context.Context, rem *client.Remote) ([]int64, error) {
		return rem.BucketRangeCount(ctx, pts, eps)
	})
}

// LevelMBRs returns the MBRs of one R-tree level (SemiJoin only).
func (rs *ReplicaSet) LevelMBRs(ctx context.Context, level int) ([]geom.Rect, error) {
	return probe(ctx, rs, func(ctx context.Context, rem *client.Remote) ([]geom.Rect, error) {
		return rem.LevelMBRs(ctx, level)
	})
}

// MBRMatch returns the distinct objects intersecting (within eps of)
// any of the rects (SemiJoin only).
func (rs *ReplicaSet) MBRMatch(ctx context.Context, rects []geom.Rect, eps float64) ([]geom.Object, error) {
	return probe(ctx, rs, func(ctx context.Context, rem *client.Remote) ([]geom.Object, error) {
		return rem.MBRMatch(ctx, rects, eps)
	})
}

// UploadJoin ships objects to the shard and returns the join pairs
// (SemiJoin only; a pure query server-side, so it is as idempotent as
// the rest of the protocol).
func (rs *ReplicaSet) UploadJoin(ctx context.Context, objs []geom.Object, eps float64) ([]geom.Pair, error) {
	return probe(ctx, rs, func(ctx context.Context, rem *client.Remote) ([]geom.Pair, error) {
		return rem.UploadJoin(ctx, objs, eps)
	})
}

// GoBatch routes each pre-encoded probe frame to its rotation-selected
// primary replica's batcher, so frames bound for the same replica link
// still coalesce into MsgBatch envelopes there. A failed sub-call fails
// over to the next replica (the envelope retry inside the Remote runs
// first; this layer moves to a sibling when the link itself is beyond
// retry). Batched probes are not hedged — a batcher intentionally
// delays dispatch, so an in-flight-time threshold would hedge every
// lingering frame; failover covers the availability story and the
// synchronous path covers the tail.
func (rs *ReplicaSet) GoBatch(ctx context.Context, reqs [][]byte) []*client.Call {
	n := len(rs.replicas)
	if n == 1 {
		return rs.replicas[0].GoBatch(ctx, reqs)
	}
	calls := make([]*client.Call, len(reqs))
	for i, req := range reqs {
		c := client.NewDetachedCall(rs.name)
		calls[i] = c
		start := rs.batchStart(n)
		// Private copy for failover: submitting a frame passes its
		// ownership to the batcher, so a retry on a sibling needs its own.
		spare := append(bufpool.Get(), req...)
		sub := rs.replicas[start].GoBatch(ctx, [][]byte{req})[0]
		go func() {
			resp, err := sub.Frame()
			rs.score(start, err, 0, ctx)
			for k := 1; err != nil && k < n && ctx.Err() == nil && failoverable(err); k++ {
				rs.failovers.Add(1)
				var frame []byte
				if k == n-1 {
					frame, spare = spare, nil // last attempt consumes the spare
				} else {
					frame = append(bufpool.Get(), spare...)
				}
				idx := (start + k) % n
				rem := rs.replicas[idx]
				next := rem.GoBatch(ctx, [][]byte{frame})[0]
				rem.Flush()
				resp, err = next.Frame()
				rs.score(idx, err, 0, ctx)
			}
			if spare != nil {
				bufpool.Put(spare)
			}
			c.CompleteFrame(resp, err)
		}()
	}
	return calls
}

// batchStart picks the rotation-selected primary replica for one batched
// frame, advancing past replicas whose breaker is open (each advance a
// skip: a frame not spent on a known-dead link). When every replica is
// open it falls back to the plain rotation choice — the frame has to go
// somewhere, and the attempt doubles as the recovery trial. Failover
// then walks the rotation from there regardless of breakers: the sibling
// frames are already paid for, and their outcomes re-score the breakers
// either way.
func (rs *ReplicaSet) batchStart(n int) int {
	start := int(rs.next.Add(1)-1) % n
	if rs.brk == nil {
		return start
	}
	for k := 0; k < n; k++ {
		idx := (start + k) % n
		if rs.brk[idx].Allow() {
			for j := 0; j < k; j++ {
				rs.brk[(start+j)%n].Skip()
			}
			return idx
		}
	}
	return start
}

// Flush dispatches whatever is pending in every replica link's batcher.
func (rs *ReplicaSet) Flush() {
	for _, r := range rs.replicas {
		r.Flush()
	}
}
