package shard

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/health"
	"repro/internal/netsim"
)

// countingRT counts round trips before delegating, optionally failing
// while dead — the observable floor of the stack: a breaker skip is a
// call that never shows up here.
type countingRT struct {
	inner netsim.RoundTripper
	calls atomic.Int64
	dead  atomic.Bool
}

func (rt *countingRT) RoundTrip(ctx context.Context, req []byte) ([]byte, error) {
	rt.calls.Add(1)
	if rt.dead.Load() {
		return nil, errReplicaDown
	}
	return rt.inner.RoundTrip(ctx, req)
}

func (rt *countingRT) Close() error { return rt.inner.Close() }

// quietBreakers is a breaker config whose cool-down and probe cadence
// are far beyond the test horizon: once open, a breaker stays open and
// no background prober fires — so transport call counts are exactly the
// live traffic.
func quietBreakers() health.Config {
	return health.Config{
		ConsecutiveFailures: 2,
		OpenFor:             time.Hour,
		ProbeInterval:       time.Hour,
	}
}

// TestReplicaBreakerSkipsKnownDeadReplica pins the acceptance property
// of proactive skipping: after a replica's breaker opens, rotation stops
// spending probes on it — its transport receives zero further calls —
// and the saved probes are observable in Usage().BreakerSkips, which a
// reactive-failover stack (no breaker) would have paid as real attempts.
func TestReplicaBreakerSkipsKnownDeadReplica(t *testing.T) {
	objs := dataset.GaussianClusters(120, 3, 600, dataset.World, 21)
	w := dataset.World
	reg := health.NewRegistry(quietBreakers())
	defer reg.Close()
	rts := make([]*countingRT, 2)
	rs := newTestReplicaSet(t, objs, 2, ReplicaConfig{Health: reg},
		func(i int, rt netsim.RoundTripper) netsim.RoundTripper {
			rts[i] = &countingRT{inner: rt}
			return rts[i]
		})
	want, err := rs.Count(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	rts[0].dead.Store(true)
	// Drive probes until the dead replica's breaker trips (2 consecutive
	// failures, each discovered by a live attempt that fails over).
	for k := 0; k < 4; k++ {
		if _, err := rs.Count(context.Background(), w); err != nil {
			t.Fatalf("probe %d with one dead replica: %v", k, err)
		}
	}
	if rs.Breakers()[0].State() != health.Open {
		t.Fatalf("replica 0 breaker %v after repeated failures, want Open", rs.Breakers()[0].State())
	}
	deadCalls := rts[0].calls.Load()
	const probes = 10
	for k := 0; k < probes; k++ {
		got, err := rs.Count(context.Background(), w)
		if err != nil {
			t.Fatalf("probe %d with breaker open: %v", k, err)
		}
		if got != want {
			t.Fatalf("probe %d: count %d, want %d", k, got, want)
		}
	}
	if n := rts[0].calls.Load(); n != deadCalls {
		t.Fatalf("open-circuit replica received %d more calls; a known-dead replica must cost zero probes", n-deadCalls)
	}
	u := rs.Usage()
	if u.BreakerOpens != 1 {
		t.Fatalf("Usage().BreakerOpens = %d, want 1", u.BreakerOpens)
	}
	// Rotation alternates primaries, so about half of the probes wanted
	// the dead replica first: each such probe is one saved attempt.
	if u.BreakerSkips < probes/2 {
		t.Fatalf("Usage().BreakerSkips = %d over %d probes, want >= %d saved attempts",
			u.BreakerSkips, probes, probes/2)
	}
}

// TestReplicaHedgeSkipsOpenBreaker pins the hedge/breaker interaction:
// with hedging armed to fire on every probe, an open-circuit sibling
// must make the hedge not launch at all — zero speculative attempts
// against a known-dead replica, zero calls on its transport, and the
// hedge counter frozen while the breaker is open.
func TestReplicaHedgeSkipsOpenBreaker(t *testing.T) {
	objs := dataset.GaussianClusters(120, 3, 600, dataset.World, 22)
	w := dataset.World
	reg := health.NewRegistry(quietBreakers())
	defer reg.Close()
	rts := make([]*countingRT, 2)
	rs := newTestReplicaSet(t, objs, 2, ReplicaConfig{Health: reg, HedgeAfter: -1},
		func(i int, rt netsim.RoundTripper) netsim.RoundTripper {
			rts[i] = &countingRT{inner: rt}
			return rts[i]
		})
	want, err := rs.Count(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	rts[1].dead.Store(true)
	for k := 0; k < 4; k++ {
		if _, err := rs.Count(context.Background(), w); err != nil {
			t.Fatalf("probe %d while tripping the breaker: %v", k, err)
		}
	}
	if rs.Breakers()[1].State() != health.Open {
		t.Fatalf("replica 1 breaker %v after repeated failures, want Open", rs.Breakers()[1].State())
	}
	hedges0 := rs.Stats().Hedges
	deadCalls := rts[1].calls.Load()
	for k := 0; k < 10; k++ {
		got, err := rs.Count(context.Background(), w)
		if err != nil {
			t.Fatalf("probe %d with open sibling: %v", k, err)
		}
		if got != want {
			t.Fatalf("probe %d: count %d, want %d", k, got, want)
		}
	}
	st := rs.Stats()
	if st.Hedges != hedges0 {
		t.Fatalf("%d hedges launched against an open-circuit sibling, want 0 (wasted hedges)",
			st.Hedges-hedges0)
	}
	if n := rts[1].calls.Load(); n != deadCalls {
		t.Fatalf("open-circuit replica received %d speculative calls, want 0", n-deadCalls)
	}
}

// TestReplicaBreakerRecovers revives a dead replica and lets the
// registry's background INFO prober re-close its breaker: traffic must
// return to the replica without any live probe paying the rediscovery.
func TestReplicaBreakerRecovers(t *testing.T) {
	objs := dataset.GaussianClusters(120, 3, 600, dataset.World, 23)
	w := dataset.World
	reg := health.NewRegistry(health.Config{
		ConsecutiveFailures: 2,
		OpenFor:             time.Hour, // live trials never happen; recovery is the prober's
		ProbeInterval:       2 * time.Millisecond,
		ProbeBudget:         time.Second,
	})
	defer reg.Close()
	rts := make([]*countingRT, 2)
	rs := newTestReplicaSet(t, objs, 2, ReplicaConfig{Health: reg},
		func(i int, rt netsim.RoundTripper) netsim.RoundTripper {
			rts[i] = &countingRT{inner: rt}
			return rts[i]
		})
	rts[0].dead.Store(true)
	for k := 0; k < 4; k++ {
		if _, err := rs.Count(context.Background(), w); err != nil {
			t.Fatal(err)
		}
	}
	if rs.Breakers()[0].State() != health.Open {
		t.Fatalf("breaker %v, want Open", rs.Breakers()[0].State())
	}
	rts[0].dead.Store(false)
	deadline := time.Now().Add(2 * time.Second)
	for rs.Breakers()[0].State() != health.Closed {
		if time.Now().After(deadline) {
			t.Fatalf("breaker still %v 2s after revival; prober did not re-close it",
				rs.Breakers()[0].State())
		}
		time.Sleep(time.Millisecond)
	}
	if !rs.Healthy() {
		t.Fatal("set not Healthy after breaker re-closed")
	}
	if n := rs.Breakers()[0].Stats().Probes; n == 0 {
		t.Fatal("breaker re-closed with zero recovery probes recorded")
	}
}

// TestRouterRoutesAroundDeadShardPartial drives the router path: a
// 2-shard relation with one shard fully dead under partial mode answers
// with the live shard's contribution, records the dead shard as a gap
// with its advertised bounds and count, and skips the dead shard before
// spending a probe once its breakers are open.
func TestRouterRoutesAroundDeadShardPartial(t *testing.T) {
	objs := dataset.GaussianClusters(400, 4, 800, dataset.World, 24)
	parts := Assign(objs, 2)
	reg := health.NewRegistry(quietBreakers())
	defer reg.Close()
	var dead atomic.Bool
	var s2calls atomic.Int64
	router, err := ServeLocal("D", objs, LocalConfig{
		Shards: 2, Replicas: 2, Health: reg,
		Link: netsim.DefaultLink(), Price: 1,
		WrapTransport: func(name string, rt netsim.RoundTripper) netsim.RoundTripper {
			if len(name) >= 4 && name[:4] == "D2/2" {
				return &gateDeadRT{inner: rt, dead: &dead, calls: &s2calls}
			}
			return rt
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	w := dataset.World
	ctx := context.Background()
	// Warm the INFO cache while everything is alive, so the dead shard's
	// gap later carries its advertised bounds and cardinality.
	if _, err := router.Info(ctx); err != nil {
		t.Fatal(err)
	}
	full, err := router.Count(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	dead.Store(true)
	rep := health.NewReport()
	pctx := health.WithReport(ctx, rep)
	// First partial probes trip the shard-2 breakers via live failures.
	var got int
	for k := 0; k < 4; k++ {
		if got, err = router.Count(pctx, w); err != nil {
			t.Fatalf("partial count %d: %v", k, err)
		}
	}
	liveOnly := 0
	for _, o := range parts[0] {
		if o.MBR.Intersects(w) {
			liveOnly++
		}
	}
	if got != liveOnly {
		t.Fatalf("partial count %d, want live shard's %d (full answer was %d)", got, liveOnly, full)
	}
	gaps := rep.Gaps()
	if len(gaps) != 1 {
		t.Fatalf("%d gaps recorded, want 1 (the dead shard): %+v", len(gaps), gaps)
	}
	g := gaps[0]
	if g.Relation != "D" || g.Shard != "D2/2" {
		t.Fatalf("gap names %s/%s, want D/D2/2", g.Relation, g.Shard)
	}
	if g.Count != int64(len(parts[1])) {
		t.Fatalf("gap advertises %d objects, want the dead shard's %d", g.Count, len(parts[1]))
	}
	// Once the shard's breakers are open the router skips it proactively.
	if !routerShardHealthy(router, 0) {
		t.Fatal("live shard reported unhealthy")
	}
	if routerShardHealthy(router, 1) {
		t.Fatal("dead shard still reported healthy after breaker trips")
	}
	calls0 := s2calls.Load()
	for k := 0; k < 6; k++ {
		if _, err := router.Count(pctx, w); err != nil {
			t.Fatal(err)
		}
	}
	if n := s2calls.Load(); n != calls0 {
		t.Fatalf("dead shard's links received %d more calls after its breakers opened, want 0", n-calls0)
	}
	if u := router.Usage(); u.BreakerSkips == 0 {
		t.Fatal("no breaker skips recorded while routing around a dead shard")
	}
}

// gateDeadRT fails round trips while *dead is set, counting every call.
type gateDeadRT struct {
	inner netsim.RoundTripper
	dead  *atomic.Bool
	calls *atomic.Int64
}

func (rt *gateDeadRT) RoundTrip(ctx context.Context, req []byte) ([]byte, error) {
	rt.calls.Add(1)
	if rt.dead.Load() {
		return nil, errReplicaDown
	}
	return rt.inner.RoundTrip(ctx, req)
}

func (rt *gateDeadRT) Close() error { return rt.inner.Close() }

func routerShardHealthy(r *Router, i int) bool {
	h, ok := r.Shards()[i].(interface{ Healthy() bool })
	if !ok {
		return true
	}
	return h.Healthy()
}

// TestReplicaBudgetBoundsProbe pins deadline-budget propagation at the
// replica layer: with every replica hanging until cancelled, a probe
// must return once its budget is spent — not after per-try timeouts
// stacked across replicas.
func TestReplicaBudgetBoundsProbe(t *testing.T) {
	objs := dataset.GaussianClusters(60, 2, 600, dataset.World, 25)
	rs := newTestReplicaSet(t, objs, 3, ReplicaConfig{Budget: 80 * time.Millisecond},
		func(i int, rt netsim.RoundTripper) netsim.RoundTripper {
			return hangRT{inner: rt}
		})
	t0 := time.Now()
	_, err := rs.Count(context.Background(), dataset.World)
	elapsed := time.Since(t0)
	if err == nil {
		t.Fatal("probe against all-hung replicas succeeded")
	}
	if elapsed > time.Second {
		t.Fatalf("probe took %v; budget of 80ms should bound the walk across 3 hung replicas", elapsed)
	}
}

// hangRT parks every round trip until the context gives up.
type hangRT struct{ inner netsim.RoundTripper }

func (rt hangRT) RoundTrip(ctx context.Context, req []byte) ([]byte, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

func (rt hangRT) Close() error { return rt.inner.Close() }
