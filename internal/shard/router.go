package shard

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"
	"time"

	"repro/internal/bufpool"
	"repro/internal/client"
	"repro/internal/geom"
	"repro/internal/health"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// Endpoint is the query surface the router scatters over — the same
// method set client.Remote exposes (and core.Probe demands). Two
// implementations exist: *client.Remote (one shard behind one metered
// link, the PR 5 shape) and *ReplicaSet (one shard behind N replica
// links with load balancing, hedging, and failover). The router is
// indifferent: scatter–gather, routing pruning, and batched multiplexing
// compose identically over either.
type Endpoint interface {
	Name() string
	Info(ctx context.Context) (wire.Info, error)
	Count(ctx context.Context, w geom.Rect) (int, error)
	Window(ctx context.Context, w geom.Rect) ([]geom.Object, error)
	AvgArea(ctx context.Context, w geom.Rect) (float64, error)
	Range(ctx context.Context, p geom.Point, eps float64) ([]geom.Object, error)
	RangeCount(ctx context.Context, p geom.Point, eps float64) (int, error)
	BucketRange(ctx context.Context, pts []geom.Point, eps float64) ([][]geom.Object, error)
	BucketRangeCount(ctx context.Context, pts []geom.Point, eps float64) ([]int64, error)
	LevelMBRs(ctx context.Context, level int) ([]geom.Rect, error)
	MBRMatch(ctx context.Context, rects []geom.Rect, eps float64) ([]geom.Object, error)
	UploadJoin(ctx context.Context, objs []geom.Object, eps float64) ([]geom.Pair, error)
	GoBatch(ctx context.Context, reqs [][]byte) []*client.Call
	Flush()
	Usage() netsim.Usage
	PricePerByte() float64
	Retries() int64
	Close() error
}

// Remotes adapts a slice of shard remotes to the Endpoint slice
// NewRouter consumes (the replica-free wiring).
func Remotes(rems []*client.Remote) []Endpoint {
	out := make([]Endpoint, len(rems))
	for i, r := range rems {
		out[i] = r
	}
	return out
}

// Router presents N shard servers as one logical relation: it implements
// the same query surface as client.Remote (core.Probe), so every core
// algorithm runs unmodified against a sharded relation. Queries scatter
// to the shards whose advertised bounds can contribute and the replies
// gather into one logical answer:
//
//   - COUNT / RANGE-COUNT fan out to the overlapping shards and sum.
//     Because Assign places each object on exactly one shard, per-shard
//     counts are disjoint and the sum is the exact unsharded answer.
//   - WINDOW / RANGE / MBR-MATCH scatter–gather and merge the object
//     lists in deterministic (ID) order; no deduplication is needed, for
//     the same disjointness reason.
//   - Bucket queries ship to each shard only the probes within reach of
//     its bounds and reassemble the per-probe groups in probe order,
//     summing counts (aggregate buckets) or merging objects.
//   - UPLOAD-JOIN uploads to each shard only the objects within ε of its
//     bounds; the per-shard pair lists concatenate without duplicates.
//   - INFO fans out once, caches the per-shard metadata for routing, and
//     merges it (count-sum, bounds-union, min tree height).
//
// A Router over exactly one shard is a pure pass-through: every call
// delegates verbatim to the single Remote, so a 1-sharded relation is
// bit-identical on the wire to the unsharded protocol (the golden tests
// pin this).
//
// Scatter requests to different shards run concurrently (bounded by
// WithParallelism); the first failure cancels the sibling sub-queries
// and surfaces the root-cause error. Per-shard-link resilience and
// batching come from the shard Remotes themselves: construct them with
// client.WithRetry / client.WithBatch and the router's scatter rides on
// both.
type Router struct {
	name     string
	relation string // logical relation gaps are reported under; defaults to name
	shards   []Endpoint
	par      int // max concurrent sub-queries per scatter; 0 = all shards

	// Shard metadata for routing, fetched once (one INFO per shard link,
	// metered like any query) on first use. Guarded by mu rather than a
	// sync.Once so a transient failure does not poison the router for
	// the session's later runs. Under partial mode the cache may be
	// partial: infoOK marks the shards whose INFO arrived, infoErr keeps
	// each dead shard's root cause for gap reports, and infoRetryAt
	// spaces re-probes of each dead shard individually so one flapping
	// shard's cooldown neither costs each query a fresh timeout nor
	// delays the INFO refresh of a different shard that revives sooner.
	mu          sync.Mutex
	ready       bool
	infos       []wire.Info
	infoOK      []bool
	infoErr     []error
	infoRetryAt []time.Time
	merged      wire.Info
}

// infoRetryCooldown spaces INFO re-probes of a dead shard under partial
// mode. A revived shard rejoins routing at the first query after the
// cooldown; until then its absence is reported as a gap, not re-paid.
const infoRetryCooldown = 250 * time.Millisecond

// healthChecked is implemented by endpoints that track their own
// liveness (*ReplicaSet with breakers armed). Under partial mode the
// router consults Healthy before scattering to a shard, so a shard whose
// every replica is open-circuit is routed around — gap recorded, probe
// saved — instead of re-discovered by a doomed attempt.
type healthChecked interface {
	Healthy() bool
	RoutedAround()
}

// errAllOpen reports a shard skipped because no replica admits
// traffic (every breaker open).
var errAllOpen = errors.New("shard: all replicas open-circuit")

// RouterOption configures a Router at construction.
type RouterOption func(*Router)

// WithRelation reports this router's gaps under relation instead of its
// own name. Interior aggregation-tree nodes use it: a gap is meaningful
// to the caller only as "<relation> is missing shard X", regardless of
// which tree level discovered it.
func WithRelation(relation string) RouterOption {
	return func(r *Router) { r.relation = relation }
}

// WithParallelism bounds how many shard sub-queries one scatter issues
// concurrently. 1 reproduces a strictly sequential scatter (the paper's
// single-threaded device, extended shard by shard); 0 or >= the shard
// count lets every sub-query fly at once. The request set per shard link
// is identical either way, so metered bytes never depend on this knob.
func WithParallelism(n int) RouterOption {
	return func(r *Router) { r.par = n }
}

// NewRouter assembles a router named name over the given shard
// endpoints (plain remotes or replica sets — see Remotes for the
// former). All shard links must share one per-byte tariff: the
// money-cost account (Eq. 1 × price) is computed from the merged usage,
// which is only exact under a uniform price.
func NewRouter(name string, shards []Endpoint, opts ...RouterOption) (*Router, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("shard: router %s needs at least one shard", name)
	}
	price := shards[0].PricePerByte()
	for _, s := range shards[1:] {
		if s.PricePerByte() != price {
			return nil, fmt.Errorf("shard: router %s: shard tariffs differ (%v vs %v)",
				name, price, s.PricePerByte())
		}
	}
	r := &Router{name: name, relation: name, shards: shards}
	for _, o := range opts {
		o(r)
	}
	return r, nil
}

// Name returns the router's diagnostic name.
func (r *Router) Name() string { return r.name }

// Shards exposes the shard endpoints (tests and diagnostics).
func (r *Router) Shards() []Endpoint { return r.shards }

// NumShards returns the number of leaf shards behind this router. For a
// flat router that is simply len(shards); in an aggregation tree each
// interior child reports its own leaf count, so the root answer is the
// fleet size regardless of topology — which keeps Completeness
// accounting (ShardsTotal, ShardsAnswered) in leaf units at any depth.
func (r *Router) NumShards() int {
	n := 0
	for _, s := range r.shards {
		if sub, ok := s.(interface{ NumShards() int }); ok {
			n += sub.NumShards()
		} else {
			n++
		}
	}
	return n
}

// ShardUsages returns the accumulated traffic of every shard link, in
// shard order.
func (r *Router) ShardUsages() []netsim.Usage {
	out := make([]netsim.Usage, len(r.shards))
	for i, s := range r.shards {
		out[i] = s.Usage()
	}
	return out
}

// LevelUsages returns the accumulated traffic of every level of the
// routing topology, root outward: index 0 sums the links into the root
// device (this router's direct children), index 1 the links one hop
// below, and so on. A flat router yields one level — identical to
// Usage(). An aggregation tree yields one entry per level: interior
// children contribute their uplink meter (the bytes that actually
// crossed the link into the level above) and recurse, leaves contribute
// their full link usage. The scaling benchmarks and Explain read level 0
// to show the root fan-in staying ~flat while leaf traffic grows with N.
func (r *Router) LevelUsages() []netsim.Usage {
	var levels []netsim.Usage
	frontier := slices.Clone(r.shards)
	for len(frontier) > 0 {
		var sum netsim.Usage
		var next []Endpoint
		for _, s := range frontier {
			if agg, ok := s.(*Aggregator); ok {
				sum = sum.Add(agg.UplinkUsage())
				next = append(next, agg.Router.shards...)
				continue
			}
			sum = sum.Add(s.Usage())
		}
		levels = append(levels, sum)
		frontier = next
	}
	return levels
}

// Usage returns the relation's accumulated traffic: the sum over all
// shard links (every netsim.Usage field is an additive total).
func (r *Router) Usage() netsim.Usage {
	var sum netsim.Usage
	for _, s := range r.shards {
		sum = sum.Add(s.Usage())
	}
	return sum
}

// PricePerByte returns the shared per-byte tariff of the shard links.
func (r *Router) PricePerByte() float64 { return r.shards[0].PricePerByte() }

// LinkStats merges the live link observations of every shard endpoint
// (sample-weighted RTT EWMA, first shard's link parameters standing for
// the homogeneous fleet). Endpoints without an observer contribute
// nothing.
func (r *Router) LinkStats() netsim.LinkSnapshot {
	var snap netsim.LinkSnapshot
	for _, s := range r.shards {
		if ls, ok := s.(interface{ LinkStats() netsim.LinkSnapshot }); ok {
			snap = snap.Merge(ls.LinkStats())
		}
	}
	return snap
}

// ShardInfos returns every shard's advertised metadata in shard order,
// fetching (and caching) the INFO fan-out if it has not happened yet.
// The online planner reads it to measure placement skew: a relation
// whose objects pile onto few shards violates the cost model's
// uniformity assumption at the fleet level, exactly like a dense
// quadrant does at the window level.
func (r *Router) ShardInfos(ctx context.Context) ([]wire.Info, error) {
	if err := r.ensureInfo(ctx); err != nil {
		return nil, err
	}
	return r.snapshotInfos(), nil
}

// Retries sums the re-issued attempts across all shard links.
func (r *Router) Retries() int64 {
	var n int64
	for _, s := range r.shards {
		n += s.Retries()
	}
	return n
}

// Close releases every shard transport, returning the first error.
func (r *Router) Close() error {
	var first error
	for _, s := range r.shards {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// solo reports whether this router is a single-shard pass-through.
func (r *Router) solo() bool { return len(r.shards) == 1 }

// ensureInfo fetches every shard's INFO once (concurrently, all metered)
// and caches the per-shard metadata that routing decisions read. Safe
// for concurrent callers; a failure leaves the router un-poisoned so the
// next call retries.
//
// Under partial mode (a health.Report in ctx) a shard whose INFO fails
// is absorbed instead of failing the fetch: the live shards' metadata is
// cached and served, the dead shard is reported as a gap by every query
// until it answers, and its INFO is re-probed after infoRetryCooldown so
// a revived shard rejoins routing without each query paying the
// discovery.
func (r *Router) ensureInfo(ctx context.Context) error {
	rep := health.ReportFrom(ctx)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ready {
		return nil
	}
	n := len(r.shards)
	if r.infos == nil {
		r.infos = make([]wire.Info, n)
		r.infoOK = make([]bool, n)
		r.infoErr = make([]error, n)
		r.infoRetryAt = make([]time.Time, n)
	}
	// The cooldown is per shard: a shard inside its own re-probe window
	// stays out of this fetch (its absence is this query's gap), while a
	// sibling whose window has lapsed — or that was never dead — is
	// probed normally. One flapping shard therefore never delays the
	// INFO refresh of the rest of the fleet.
	now := time.Now()
	var missing []int
	for i, ok := range r.infoOK {
		if ok {
			continue
		}
		if rep != nil && !r.infoRetryAt[i].IsZero() && now.Before(r.infoRetryAt[i]) {
			continue
		}
		missing = append(missing, i)
	}
	if len(missing) == 0 {
		// Every dead shard is cooling down: serve the cached partial
		// metadata; the dead shards' absence is a gap for this query.
		r.recordInfoGapsLocked(rep)
		return nil
	}
	// Per-index slots written by the scatter goroutines, folded into the
	// shared cache only after scatter has joined (r.mu is held, but the
	// closures run on other goroutines).
	got := make([]wire.Info, n)
	ok := make([]bool, n)
	errs := make([]error, n)
	scatterErr := r.scatter(ctx, missing, func(ctx context.Context, i int) error {
		info, err := r.shards[i].Info(ctx)
		if err != nil {
			if rep != nil && ctx.Err() == nil {
				errs[i] = err // absorbed: the sibling INFOs continue
				return nil
			}
			return err
		}
		got[i], ok[i] = info, true
		return nil
	})
	if scatterErr != nil {
		return scatterErr
	}
	for _, i := range missing {
		if ok[i] {
			r.infos[i], r.infoOK[i], r.infoErr[i] = got[i], true, nil
			r.infoRetryAt[i] = time.Time{}
		} else {
			r.infoErr[i] = errs[i]
			r.infoRetryAt[i] = time.Now().Add(infoRetryCooldown)
		}
	}
	// Dead shards hold the zero Info (count 0), so merging the whole
	// cache covers exactly the shards that answered.
	r.merged = mergeInfos(r.infos)
	allOK := true
	for _, okNow := range r.infoOK {
		if !okNow {
			allOK = false
			break
		}
	}
	if allOK {
		r.ready = true
		return nil
	}
	r.recordInfoGapsLocked(rep)
	return nil
}

// recordInfoGapsLocked records one gap per INFO-dead shard for the
// calling query. Caller holds r.mu; rep is non-nil (the partial path is
// the only one that leaves shards INFO-dead).
func (r *Router) recordInfoGapsLocked(rep *health.Report) {
	for i, ok := range r.infoOK {
		if ok {
			continue
		}
		if lg, isTree := r.shards[i].(leafGapper); isTree {
			// A dead interior node stands for its whole subtree: expand
			// the gap to the leaf shard names the caller knows.
			lg.recordLeafGaps(rep, r.relation, r.infoErr[i])
			continue
		}
		reason := "info unavailable"
		if r.infoErr[i] != nil {
			reason = r.infoErr[i].Error()
		}
		rep.Record(r.relation, r.shards[i].Name(), geom.Rect{}, 0, reason)
	}
}

// snapshotInfos returns a stable copy of the per-shard routing metadata.
// Under partial mode the cache mutates between queries (dead shards
// re-probe after the cooldown), so routing works on a snapshot instead
// of racing the refresh.
func (r *Router) snapshotInfos() []wire.Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	return slices.Clone(r.infos)
}

// gap records shard i's missing contribution for one sub-query, with
// the shard's advertised bounds and cardinality when its INFO was
// fetched before it died. When the child is itself an aggregation-tree
// node, the gap expands to the leaf shard names behind it — the report
// is always in leaf units, whatever the topology.
func (r *Router) gap(rep *health.Report, i int, err error) {
	if lg, isTree := r.shards[i].(leafGapper); isTree {
		lg.recordLeafGaps(rep, r.relation, err)
		return
	}
	var bounds geom.Rect
	var count int64
	r.mu.Lock()
	if r.infoOK != nil && r.infoOK[i] {
		bounds, count = r.infos[i].Bounds, int64(r.infos[i].Count)
	}
	r.mu.Unlock()
	reason := "unreachable"
	if err != nil {
		reason = err.Error()
	}
	rep.Record(r.relation, r.shards[i].Name(), bounds, count, reason)
}

// leafGapper is implemented by interior tree nodes: recordLeafGaps
// reports the unreachable node's missing contribution as one gap per
// leaf shard in its subtree, under the caller's relation name.
type leafGapper interface {
	recordLeafGaps(rep *health.Report, relation string, err error)
}

// recordLeafGaps reports every leaf shard behind this router as a gap —
// invoked when a parent routed around this whole subtree. Leaves that
// are themselves interior nodes recurse.
func (r *Router) recordLeafGaps(rep *health.Report, relation string, err error) {
	reason := "unreachable"
	if err != nil {
		reason = err.Error()
	}
	r.mu.Lock()
	infos := slices.Clone(r.infos)
	oks := slices.Clone(r.infoOK)
	r.mu.Unlock()
	for i, s := range r.shards {
		if lg, isTree := s.(leafGapper); isTree {
			lg.recordLeafGaps(rep, relation, err)
			continue
		}
		var bounds geom.Rect
		var count int64
		if oks != nil && oks[i] {
			bounds, count = infos[i].Bounds, int64(infos[i].Count)
		}
		rep.Record(relation, s.Name(), bounds, count, reason)
	}
}

// absorb wraps a per-shard scatter func for partial mode: a shard whose
// every replica is open-circuit is skipped before any probe is spent on
// it, and a sub-query failure (parent context still alive) records a
// completeness gap instead of cancelling the sibling sub-queries. With
// no collector in ctx it returns f unchanged, so the fail-fast path is
// exactly the pre-partial code.
func (r *Router) absorb(rep *health.Report, f func(ctx context.Context, i int) error) func(ctx context.Context, i int) error {
	if rep == nil {
		return f
	}
	return func(ctx context.Context, i int) error {
		if h, ok := r.shards[i].(healthChecked); ok && !h.Healthy() {
			h.RoutedAround()
			r.gap(rep, i, errAllOpen)
			return nil
		}
		err := f(ctx, i)
		if err == nil || ctx.Err() != nil {
			return err
		}
		r.gap(rep, i, err)
		return nil
	}
}

// soloSkip reports whether the lone shard of a pass-through router is
// known-dead under partial mode (gap recorded, probe saved).
func (r *Router) soloSkip(rep *health.Report) bool {
	if rep == nil {
		return false
	}
	h, ok := r.shards[0].(healthChecked)
	if !ok || h.Healthy() {
		return false
	}
	h.RoutedAround()
	r.gap(rep, 0, errAllOpen)
	return true
}

// soloErr absorbs a solo pass-through failure under partial mode: the
// gap is recorded and the query answers empty instead of failing.
func (r *Router) soloErr(ctx context.Context, rep *health.Report, err error) error {
	if err == nil || rep == nil || ctx.Err() != nil {
		return err
	}
	r.gap(rep, 0, err)
	return nil
}

// scatter runs f for every target shard, concurrently up to the router's
// parallelism bound. The first failure cancels the sibling sub-queries
// still in flight; scatter joins every goroutine before returning and
// reports the root cause (a real error is preferred over the secondary
// context.Canceled it provoked).
func (r *Router) scatter(ctx context.Context, targets []int, f func(ctx context.Context, shard int) error) error {
	if len(targets) == 0 {
		return nil
	}
	if len(targets) == 1 || r.par == 1 {
		for _, t := range targets {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := f(ctx, t); err != nil {
				return err
			}
		}
		return nil
	}
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var slots chan struct{}
	if r.par > 1 && r.par < len(targets) {
		slots = make(chan struct{}, r.par)
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	record := func(err error) {
		if err == nil {
			return
		}
		mu.Lock()
		if first == nil || (errors.Is(first, context.Canceled) && !errors.Is(err, context.Canceled)) {
			first = err
		}
		mu.Unlock()
		cancel()
	}
	for _, t := range targets {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			if slots != nil {
				slots <- struct{}{}
				defer func() { <-slots }()
			}
			if err := sctx.Err(); err != nil {
				record(err)
				return
			}
			record(f(sctx, t))
		}()
	}
	wg.Wait()
	return first
}

// rectTargets returns the shards whose advertised bounds intersect w
// (empty shards never qualify). Pruned shards cannot hold a qualifying
// object, so skipping them is exact — and free: no bytes cross their
// links. The helpers take an infos snapshot (see snapshotInfos) so
// routing never races a partial-mode cache refresh; an INFO-dead shard
// holds the zero Info and is pruned like an empty one (its gap was
// already recorded by ensureInfo).
func rectTargets(infos []wire.Info, w geom.Rect) []int {
	var out []int
	for i, info := range infos {
		if info.Count > 0 && info.Bounds.Intersects(w) {
			out = append(out, i)
		}
	}
	return out
}

// pointTargets returns the shards whose bounds lie within eps of p.
func pointTargets(infos []wire.Info, p geom.Point, eps float64) []int {
	var out []int
	for i, info := range infos {
		if info.Count > 0 && info.Bounds.DistToPoint(p) <= eps {
			out = append(out, i)
		}
	}
	return out
}

// nonEmptyTargets returns every shard holding at least one object.
func nonEmptyTargets(infos []wire.Info) []int {
	var out []int
	for i, info := range infos {
		if info.Count > 0 {
			out = append(out, i)
		}
	}
	return out
}

// Info returns the merged relation metadata (fetching and caching the
// per-shard INFOs on first use).
func (r *Router) Info(ctx context.Context) (wire.Info, error) {
	if r.solo() {
		rep := health.ReportFrom(ctx)
		if r.soloSkip(rep) {
			return wire.Info{}, nil
		}
		info, err := r.shards[0].Info(ctx)
		if err := r.soloErr(ctx, rep, err); err != nil {
			return wire.Info{}, err
		}
		return info, nil
	}
	if err := r.ensureInfo(ctx); err != nil {
		return wire.Info{}, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.merged, nil
}

// Count returns the number of objects intersecting w: the sum of the
// overlapping shards' disjoint COUNT answers.
func (r *Router) Count(ctx context.Context, w geom.Rect) (int, error) {
	if r.solo() {
		rep := health.ReportFrom(ctx)
		if r.soloSkip(rep) {
			return 0, nil
		}
		n, err := r.shards[0].Count(ctx, w)
		if err := r.soloErr(ctx, rep, err); err != nil {
			return 0, err
		}
		return n, nil
	}
	rep := health.ReportFrom(ctx)
	if err := r.ensureInfo(ctx); err != nil {
		return 0, err
	}
	targets := rectTargets(r.snapshotInfos(), w)
	counts := make([]int, len(r.shards))
	err := r.scatter(ctx, targets, r.absorb(rep, func(ctx context.Context, i int) error {
		n, err := r.shards[i].Count(ctx, w)
		counts[i] = n
		return err
	}))
	if err != nil {
		return 0, err
	}
	sum := 0
	for _, n := range counts {
		sum += n
	}
	return sum, nil
}

// Window returns all objects intersecting w, gathered from the
// overlapping shards and merged in ID order.
func (r *Router) Window(ctx context.Context, w geom.Rect) ([]geom.Object, error) {
	if r.solo() {
		rep := health.ReportFrom(ctx)
		if r.soloSkip(rep) {
			return nil, nil
		}
		objs, err := r.shards[0].Window(ctx, w)
		if err := r.soloErr(ctx, rep, err); err != nil {
			return nil, err
		}
		return objs, nil
	}
	rep := health.ReportFrom(ctx)
	if err := r.ensureInfo(ctx); err != nil {
		return nil, err
	}
	targets := rectTargets(r.snapshotInfos(), w)
	parts := make([][]geom.Object, len(r.shards))
	err := r.scatter(ctx, targets, r.absorb(rep, func(ctx context.Context, i int) error {
		objs, err := r.shards[i].Window(ctx, w)
		parts[i] = objs
		return err
	}))
	if err != nil {
		return nil, err
	}
	return MergeObjects(nil, parts), nil
}

// AvgArea returns the mean MBR area over the objects intersecting w. The
// per-shard means are weighted by per-shard COUNTs (one extra aggregate
// query per overlapping shard — the only merged statistic that needs a
// companion query).
func (r *Router) AvgArea(ctx context.Context, w geom.Rect) (float64, error) {
	if r.solo() {
		rep := health.ReportFrom(ctx)
		if r.soloSkip(rep) {
			return 0, nil
		}
		a, err := r.shards[0].AvgArea(ctx, w)
		if err := r.soloErr(ctx, rep, err); err != nil {
			return 0, err
		}
		return a, nil
	}
	rep := health.ReportFrom(ctx)
	if err := r.ensureInfo(ctx); err != nil {
		return 0, err
	}
	targets := rectTargets(r.snapshotInfos(), w)
	counts := make([]int, len(r.shards))
	avgs := make([]float64, len(r.shards))
	err := r.scatter(ctx, targets, r.absorb(rep, func(ctx context.Context, i int) error {
		n, err := r.shards[i].Count(ctx, w)
		if err != nil {
			return err
		}
		a, err := r.shards[i].AvgArea(ctx, w)
		if err != nil {
			return err
		}
		counts[i], avgs[i] = n, a
		return nil
	}))
	if err != nil {
		return 0, err
	}
	total, weighted := 0, 0.0
	for i := range r.shards {
		total += counts[i]
		weighted += float64(counts[i]) * avgs[i]
	}
	if total == 0 {
		return 0, nil
	}
	return weighted / float64(total), nil
}

// Range returns the objects within eps of p, merged in ID order.
func (r *Router) Range(ctx context.Context, p geom.Point, eps float64) ([]geom.Object, error) {
	if r.solo() {
		rep := health.ReportFrom(ctx)
		if r.soloSkip(rep) {
			return nil, nil
		}
		objs, err := r.shards[0].Range(ctx, p, eps)
		if err := r.soloErr(ctx, rep, err); err != nil {
			return nil, err
		}
		return objs, nil
	}
	rep := health.ReportFrom(ctx)
	if err := r.ensureInfo(ctx); err != nil {
		return nil, err
	}
	targets := pointTargets(r.snapshotInfos(), p, eps)
	parts := make([][]geom.Object, len(r.shards))
	err := r.scatter(ctx, targets, r.absorb(rep, func(ctx context.Context, i int) error {
		objs, err := r.shards[i].Range(ctx, p, eps)
		parts[i] = objs
		return err
	}))
	if err != nil {
		return nil, err
	}
	return MergeObjects(nil, parts), nil
}

// RangeCount returns the number of objects within eps of p: the sum over
// the shards within reach.
func (r *Router) RangeCount(ctx context.Context, p geom.Point, eps float64) (int, error) {
	if r.solo() {
		rep := health.ReportFrom(ctx)
		if r.soloSkip(rep) {
			return 0, nil
		}
		n, err := r.shards[0].RangeCount(ctx, p, eps)
		if err := r.soloErr(ctx, rep, err); err != nil {
			return 0, err
		}
		return n, nil
	}
	rep := health.ReportFrom(ctx)
	if err := r.ensureInfo(ctx); err != nil {
		return 0, err
	}
	targets := pointTargets(r.snapshotInfos(), p, eps)
	counts := make([]int, len(r.shards))
	err := r.scatter(ctx, targets, r.absorb(rep, func(ctx context.Context, i int) error {
		n, err := r.shards[i].RangeCount(ctx, p, eps)
		counts[i] = n
		return err
	}))
	if err != nil {
		return 0, err
	}
	sum := 0
	for _, n := range counts {
		sum += n
	}
	return sum, nil
}

// BucketRange submits many ε-range probes at once. Each shard receives
// only the probes within eps of its bounds; the per-probe result groups
// reassemble in probe order, each group merged in ID order.
func (r *Router) BucketRange(ctx context.Context, pts []geom.Point, eps float64) ([][]geom.Object, error) {
	if r.solo() {
		rep := health.ReportFrom(ctx)
		if r.soloSkip(rep) {
			return make([][]geom.Object, len(pts)), nil
		}
		groups, err := r.shards[0].BucketRange(ctx, pts, eps)
		if err := r.soloErr(ctx, rep, err); err != nil {
			return nil, err
		}
		if groups == nil {
			groups = make([][]geom.Object, len(pts))
		}
		return groups, nil
	}
	rep := health.ReportFrom(ctx)
	if err := r.ensureInfo(ctx); err != nil {
		return nil, err
	}
	targets, idxs := bucketTargets(r.snapshotInfos(), pts, eps)
	out := make([][]geom.Object, len(pts))
	var mu sync.Mutex
	err := r.scatter(ctx, targets, r.absorb(rep, func(ctx context.Context, i int) error {
		sub := make([]geom.Point, len(idxs[i]))
		for k, pi := range idxs[i] {
			sub[k] = pts[pi]
		}
		groups, err := r.shards[i].BucketRange(ctx, sub, eps)
		if err != nil {
			return err
		}
		if len(groups) != len(sub) {
			return fmt.Errorf("shard: %s: bucket reply carries %d groups, want %d",
				r.shards[i].Name(), len(groups), len(sub))
		}
		mu.Lock()
		for k, g := range groups {
			out[idxs[i][k]] = append(out[idxs[i][k]], g...)
		}
		mu.Unlock()
		return nil
	}))
	if err != nil {
		return nil, err
	}
	for _, g := range out {
		sortObjects(g)
	}
	return out, nil
}

// BucketRangeCount is the aggregate variant of BucketRange: per-probe
// counts summed across the shards within reach of each probe.
func (r *Router) BucketRangeCount(ctx context.Context, pts []geom.Point, eps float64) ([]int64, error) {
	if r.solo() {
		rep := health.ReportFrom(ctx)
		if r.soloSkip(rep) {
			return make([]int64, len(pts)), nil
		}
		ns, err := r.shards[0].BucketRangeCount(ctx, pts, eps)
		if err := r.soloErr(ctx, rep, err); err != nil {
			return nil, err
		}
		if ns == nil {
			ns = make([]int64, len(pts))
		}
		return ns, nil
	}
	rep := health.ReportFrom(ctx)
	if err := r.ensureInfo(ctx); err != nil {
		return nil, err
	}
	targets, idxs := bucketTargets(r.snapshotInfos(), pts, eps)
	out := make([]int64, len(pts))
	var mu sync.Mutex
	err := r.scatter(ctx, targets, r.absorb(rep, func(ctx context.Context, i int) error {
		sub := make([]geom.Point, len(idxs[i]))
		for k, pi := range idxs[i] {
			sub[k] = pts[pi]
		}
		ns, err := r.shards[i].BucketRangeCount(ctx, sub, eps)
		if err != nil {
			return err
		}
		if len(ns) != len(sub) {
			return fmt.Errorf("shard: %s: bucket reply carries %d counts, want %d",
				r.shards[i].Name(), len(ns), len(sub))
		}
		mu.Lock()
		for k, n := range ns {
			out[idxs[i][k]] += n
		}
		mu.Unlock()
		return nil
	}))
	if err != nil {
		return nil, err
	}
	return out, nil
}

// bucketTargets plans a bucket scatter: for each shard, the indices of
// the probes within eps of its bounds; targets lists the shards with at
// least one probe to answer.
func bucketTargets(infos []wire.Info, pts []geom.Point, eps float64) (targets []int, idxs [][]int) {
	idxs = make([][]int, len(infos))
	for i, info := range infos {
		if info.Count == 0 {
			continue
		}
		for pi, p := range pts {
			if info.Bounds.DistToPoint(p) <= eps {
				idxs[i] = append(idxs[i], pi)
			}
		}
		if len(idxs[i]) > 0 {
			targets = append(targets, i)
		}
	}
	return targets, idxs
}

// LevelMBRs returns the concatenated MBRs of one R-tree level across the
// non-empty shards, in shard order. The level is clamped per shard to
// its published height, so the "second-to-last level" derived from the
// merged (minimum) height is valid everywhere.
func (r *Router) LevelMBRs(ctx context.Context, level int) ([]geom.Rect, error) {
	if r.solo() {
		rep := health.ReportFrom(ctx)
		if r.soloSkip(rep) {
			return nil, nil
		}
		rects, err := r.shards[0].LevelMBRs(ctx, level)
		if err := r.soloErr(ctx, rep, err); err != nil {
			return nil, err
		}
		return rects, nil
	}
	rep := health.ReportFrom(ctx)
	if err := r.ensureInfo(ctx); err != nil {
		return nil, err
	}
	infos := r.snapshotInfos()
	targets := nonEmptyTargets(infos)
	parts := make([][]geom.Rect, len(r.shards))
	err := r.scatter(ctx, targets, r.absorb(rep, func(ctx context.Context, i int) error {
		lvl := level
		if h := int(infos[i].TreeHeight); h > 0 && lvl >= h {
			lvl = h - 1
		}
		rects, err := r.shards[i].LevelMBRs(ctx, lvl)
		parts[i] = rects
		return err
	}))
	if err != nil {
		return nil, err
	}
	var out []geom.Rect
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// MBRMatch returns the distinct objects intersecting (within eps of) any
// of the rects. Each shard is asked only about the rects within eps of
// its bounds; the answers merge in ID order (distinct by construction:
// every object lives on one shard, and each shard deduplicates its own
// answer).
func (r *Router) MBRMatch(ctx context.Context, rects []geom.Rect, eps float64) ([]geom.Object, error) {
	if r.solo() {
		rep := health.ReportFrom(ctx)
		if r.soloSkip(rep) {
			return nil, nil
		}
		objs, err := r.shards[0].MBRMatch(ctx, rects, eps)
		if err := r.soloErr(ctx, rep, err); err != nil {
			return nil, err
		}
		return objs, nil
	}
	rep := health.ReportFrom(ctx)
	if err := r.ensureInfo(ctx); err != nil {
		return nil, err
	}
	subs := make([][]geom.Rect, len(r.shards))
	var targets []int
	for i, info := range r.snapshotInfos() {
		if info.Count == 0 {
			continue
		}
		for _, rect := range rects {
			if rect.WithinDist(info.Bounds, eps) {
				subs[i] = append(subs[i], rect)
			}
		}
		if len(subs[i]) > 0 {
			targets = append(targets, i)
		}
	}
	parts := make([][]geom.Object, len(r.shards))
	err := r.scatter(ctx, targets, r.absorb(rep, func(ctx context.Context, i int) error {
		objs, err := r.shards[i].MBRMatch(ctx, subs[i], eps)
		parts[i] = objs
		return err
	}))
	if err != nil {
		return nil, err
	}
	return MergeObjects(nil, parts), nil
}

// UploadJoin ships the objects to every shard within ε reach of them and
// concatenates the per-shard pair lists (duplicate-free: the joined-side
// objects are disjoint across shards) in deterministic (uploaded ID,
// matched ID) order.
func (r *Router) UploadJoin(ctx context.Context, objs []geom.Object, eps float64) ([]geom.Pair, error) {
	if r.solo() {
		rep := health.ReportFrom(ctx)
		if r.soloSkip(rep) {
			return nil, nil
		}
		pairs, err := r.shards[0].UploadJoin(ctx, objs, eps)
		if err := r.soloErr(ctx, rep, err); err != nil {
			return nil, err
		}
		return pairs, nil
	}
	rep := health.ReportFrom(ctx)
	if err := r.ensureInfo(ctx); err != nil {
		return nil, err
	}
	subs := make([][]geom.Object, len(r.shards))
	var targets []int
	for i, info := range r.snapshotInfos() {
		if info.Count == 0 {
			continue
		}
		for _, o := range objs {
			if o.MBR.WithinDist(info.Bounds, eps) {
				subs[i] = append(subs[i], o)
			}
		}
		if len(subs[i]) > 0 {
			targets = append(targets, i)
		}
	}
	parts := make([][]geom.Pair, len(r.shards))
	err := r.scatter(ctx, targets, r.absorb(rep, func(ctx context.Context, i int) error {
		pairs, err := r.shards[i].UploadJoin(ctx, subs[i], eps)
		parts[i] = pairs
		return err
	}))
	if err != nil {
		return nil, err
	}
	return mergePairs(parts), nil
}

// --- batched probe multiplexing -------------------------------------------

// GoBatch accepts the same pre-encoded probe frames client.Remote.GoBatch
// does (the four probe types the core multiplexes: COUNT, WINDOW, RANGE,
// RANGE-COUNT) and routes each to its overlapping shards *through the
// shard Remotes' own batchers* — so sub-requests bound for the same shard
// link still coalesce into MsgBatch envelopes there. Each returned Call
// completes with the merged logical reply (summed counts, ID-ordered
// objects), re-encoded as a response frame so the standard accessors
// decode it. A probe with no overlapping shard completes locally with the
// empty answer, costing zero bytes.
//
// Under partial mode a shard whose every replica is open-circuit is
// dropped from each probe's target list before any frame ships (gap
// recorded, probes saved), and a sub-call failure with the parent
// context still alive contributes a gap instead of failing the merged
// call — the lower-bound answer assembles from the shards that replied.
func (r *Router) GoBatch(ctx context.Context, reqs [][]byte) []*client.Call {
	rep := health.ReportFrom(ctx)
	if r.solo() {
		if r.soloSkip(rep) {
			// Known-dead lone shard: answer every probe empty locally.
			calls := make([]*client.Call, len(reqs))
			for i, req := range reqs {
				calls[i] = client.NewDetachedCall(r.name)
				buf := bufpool.Get()
				switch wire.Type(req) {
				case wire.MsgWindow, wire.MsgRange:
					buf = wire.AppendObjects(buf, nil)
				default:
					buf = wire.AppendCountReply(buf, 0)
				}
				bufpool.Put(req)
				calls[i].CompleteFrame(buf, nil)
			}
			return calls
		}
		return r.shards[0].GoBatch(ctx, reqs)
	}
	calls := make([]*client.Call, len(reqs))
	for i := range calls {
		calls[i] = client.NewDetachedCall(r.name)
	}
	if err := r.ensureInfo(ctx); err != nil {
		for i, req := range reqs {
			bufpool.Put(req)
			calls[i].CompleteFrame(nil, err)
		}
		return calls
	}
	infos := r.snapshotInfos()
	// Shards with no admitting replica right now: routed around for this
	// whole batch (one gap per absorbed probe, no frames shipped).
	down := make([]bool, len(r.shards))
	if rep != nil {
		for i, s := range r.shards {
			if h, ok := s.(healthChecked); ok && !h.Healthy() {
				down[i] = true
			}
		}
	}
	// Routing plan: per shard, the sub-request frames (private copies —
	// one original may fan out to several shards) and the index of the
	// router call each answers. Each wait keeps its shard index so a
	// gather failure can be attributed as that shard's gap.
	type subWait struct {
		c     *client.Call
		shard int
	}
	perShard := make([][][]byte, len(r.shards))
	perShardCall := make([][]int, len(r.shards))
	objects := make([]bool, len(reqs)) // merge mode per call: objects vs count
	waits := make([][]subWait, len(reqs))
	for qi, req := range reqs {
		var targets []int
		switch wire.Type(req) {
		case wire.MsgCount:
			w, err := wire.DecodeWindowLike(req, wire.MsgCount)
			if err != nil {
				bufpool.Put(req)
				calls[qi].CompleteFrame(nil, fmt.Errorf("%s: %w", r.name, err))
				continue
			}
			targets = rectTargets(infos, w)
		case wire.MsgWindow:
			w, err := wire.DecodeWindowLike(req, wire.MsgWindow)
			if err != nil {
				bufpool.Put(req)
				calls[qi].CompleteFrame(nil, fmt.Errorf("%s: %w", r.name, err))
				continue
			}
			objects[qi] = true
			targets = rectTargets(infos, w)
		case wire.MsgRange, wire.MsgRangeCount:
			t := wire.Type(req)
			p, eps, err := wire.DecodeRangeLike(req, t)
			if err != nil {
				bufpool.Put(req)
				calls[qi].CompleteFrame(nil, fmt.Errorf("%s: %w", r.name, err))
				continue
			}
			objects[qi] = t == wire.MsgRange
			targets = pointTargets(infos, p, eps)
		default:
			bufpool.Put(req)
			calls[qi].CompleteFrame(nil, fmt.Errorf("shard: %s: cannot route batched %v", r.name, wire.Type(req)))
			continue
		}
		if rep != nil {
			kept := targets[:0]
			for _, t := range targets {
				if down[t] {
					if h, ok := r.shards[t].(healthChecked); ok {
						h.RoutedAround()
					}
					r.gap(rep, t, errAllOpen)
					continue
				}
				kept = append(kept, t)
			}
			targets = kept
		}
		if len(targets) == 0 {
			// No shard can contribute: answer the empty result locally.
			buf := bufpool.Get()
			if objects[qi] {
				buf = wire.AppendObjects(buf, nil)
			} else {
				buf = wire.AppendCountReply(buf, 0)
			}
			bufpool.Put(req)
			calls[qi].CompleteFrame(buf, nil)
			continue
		}
		for _, t := range targets {
			perShard[t] = append(perShard[t], append(bufpool.Get(), req...))
			perShardCall[t] = append(perShardCall[t], qi)
		}
		bufpool.Put(req)
	}
	// Submit per shard — one GoBatch per shard link, preserving request
	// order, so the shard batcher sees the same deterministic grouping a
	// direct client would produce.
	for t, frames := range perShard {
		if len(frames) == 0 {
			continue
		}
		subCalls := r.shards[t].GoBatch(ctx, frames)
		for k, c := range subCalls {
			qi := perShardCall[t][k]
			waits[qi] = append(waits[qi], subWait{c: c, shard: t})
		}
	}
	// Gather: one goroutine per router call waits on its shard sub-calls
	// and completes the detached call with the merged reply. Every
	// sub-call is drained even after a failure so its pooled reply frame
	// is recycled. Under partial mode a failed sub-call becomes its
	// shard's gap and the merge proceeds without its contribution.
	for qi := range reqs {
		if len(waits[qi]) == 0 {
			continue // already completed locally above
		}
		go func(qi int) {
			var firstErr error
			fail := func(w subWait, err error) {
				if rep != nil && ctx.Err() == nil {
					r.gap(rep, w.shard, err)
					return
				}
				if firstErr == nil {
					firstErr = err
				}
			}
			if objects[qi] {
				parts := make([][]geom.Object, 0, len(waits[qi]))
				for _, w := range waits[qi] {
					objs, err := w.c.Objects()
					if err != nil {
						fail(w, err)
						continue
					}
					parts = append(parts, objs)
				}
				if firstErr != nil {
					calls[qi].CompleteFrame(nil, firstErr)
					return
				}
				all := MergeObjects(nil, parts)
				calls[qi].CompleteFrame(wire.AppendObjects(bufpool.Get(), all), nil)
				return
			}
			sum := int64(0)
			for _, w := range waits[qi] {
				n, err := w.c.Count()
				if err != nil {
					fail(w, err)
					continue
				}
				sum += int64(n)
			}
			if firstErr != nil {
				calls[qi].CompleteFrame(nil, firstErr)
				return
			}
			calls[qi].CompleteFrame(wire.AppendCountReply(bufpool.Get(), sum), nil)
		}(qi)
	}
	return calls
}

// Flush dispatches whatever is pending in every shard link's batcher.
func (r *Router) Flush() {
	for _, s := range r.shards {
		s.Flush()
	}
}
