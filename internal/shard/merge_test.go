package shard

import (
	"math/rand"
	"slices"
	"testing"

	"repro/internal/geom"
)

// randomParts fabricates k per-shard object lists with globally unique
// IDs in shuffled arrival order — the shape a scatter gather sees.
func randomParts(rng *rand.Rand, k, perPart int) [][]geom.Object {
	total := k * perPart
	ids := rng.Perm(total)
	parts := make([][]geom.Object, k)
	at := 0
	for i := range parts {
		n := perPart
		if i%3 == 0 && i > 0 {
			n = rng.Intn(perPart + 1) // uneven parts, sometimes empty
		}
		for j := 0; j < n && at < total; j++ {
			id := uint32(ids[at] + 1)
			at++
			parts[i] = append(parts[i], geom.Object{
				ID:  id,
				MBR: geom.R(float64(id), float64(id), float64(id)+1, float64(id)+1),
			})
		}
	}
	return parts
}

// flattenSorted is the reference merge: concatenate everything and sort.
func flattenSorted(parts [][]geom.Object) []geom.Object {
	var out []geom.Object
	for _, p := range parts {
		out = append(out, p...)
	}
	sortObjects(out)
	return out
}

// TestMergeObjectsMatchesReference drives the k-way heap merge against
// the naive concat+sort reference over many random shapes: part counts
// from 0 to 16, uneven and empty parts, single contributors.
func TestMergeObjectsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		k := rng.Intn(17)
		per := rng.Intn(40)
		parts := randomParts(rng, k, per)
		want := flattenSorted(slicesDeepClone(parts))
		got := MergeObjects(nil, parts)
		if !slices.Equal(got, want) {
			t.Fatalf("trial %d (k=%d per=%d): merge diverges from reference\n got %v\nwant %v",
				trial, k, per, got, want)
		}
	}
}

func slicesDeepClone(parts [][]geom.Object) [][]geom.Object {
	out := make([][]geom.Object, len(parts))
	for i, p := range parts {
		out[i] = slices.Clone(p)
	}
	return out
}

// TestMergeObjectsAssociative pins the property the aggregation tree
// rests on: merging partial merges equals merging everything at once, so
// any tree shape gathers the exact flat result.
func TestMergeObjectsAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		parts := randomParts(rng, 2+rng.Intn(12), 1+rng.Intn(30))
		flat := MergeObjects(nil, slicesDeepClone(parts))
		// Random two-level tree: contiguous groups of random width,
		// each partially merged, then merged at the "root".
		var partials [][]geom.Object
		rest := slicesDeepClone(parts)
		for len(rest) > 0 {
			w := 1 + rng.Intn(4)
			if w > len(rest) {
				w = len(rest)
			}
			partials = append(partials, MergeObjects(nil, rest[:w]))
			rest = rest[w:]
		}
		tree := MergeObjects(nil, partials)
		if !slices.Equal(tree, flat) {
			t.Fatalf("trial %d: tree-of-merges diverges from flat merge", trial)
		}
	}
}

// TestMergeObjectsAppendsToDst pins the reuse contract: results append
// after dst's existing elements and reuse its capacity.
func TestMergeObjectsAppendsToDst(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	parts := randomParts(rng, 4, 8)
	want := flattenSorted(slicesDeepClone(parts))
	prefix := geom.Object{ID: 999999}
	dst := append(make([]geom.Object, 0, 64), prefix)
	got := MergeObjects(dst, parts)
	if got[0] != prefix {
		t.Fatalf("merge clobbered dst prefix: %+v", got[0])
	}
	if !slices.Equal(got[1:], want) {
		t.Fatalf("merged tail diverges from reference")
	}
}

// TestMergeObjectsZeroAlloc pins the satellite guarantee: with a warm
// dst and pooled heap scratch, a k-way merge allocates nothing.
func TestMergeObjectsZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc counts are meaningless")
	}
	rng := rand.New(rand.NewSource(17))
	parts := randomParts(rng, 8, 64)
	dst := MergeObjects(nil, parts) // warm dst capacity and the pool
	allocs := testing.AllocsPerRun(100, func() {
		dst = MergeObjects(dst[:0], parts)
	})
	if allocs != 0 {
		t.Fatalf("MergeObjects allocates %.1f times per merge, want 0", allocs)
	}
}
