package shard

import (
	"cmp"
	"slices"
	"sync"

	"repro/internal/geom"
	"repro/internal/wire"
)

// This file holds the gather-side merge logic shared by the flat Router
// and the tree Aggregator. Both shapes assemble the same logical answers
// from per-shard partial replies — COUNT sums, ID-ordered object lists,
// (RID, SID)-ordered pair lists, merged INFO metadata — so the code lives
// in one place and the two paths cannot diverge: a tree of any depth is
// bit-identical to the flat scatter because every level runs exactly
// these functions.

// sortObjects puts a gathered object list into deterministic ID order.
// IDs are unique within a relation and each lives on exactly one shard,
// so the merged list is duplicate-free and the order total.
func sortObjects(objs []geom.Object) {
	slices.SortFunc(objs, func(a, b geom.Object) int {
		return cmp.Compare(a.ID, b.ID)
	})
}

// mergeHeap is the pooled scratch state of one k-way merge: a binary
// min-heap of part indices keyed by each part's current head ID, plus the
// per-part cursor positions. Both slices are reused across merges.
type mergeHeap struct {
	heap []int // part indices, heap-ordered by head object ID
	pos  []int // cursor into each part (indexed by part, not heap slot)
}

var mergePool = sync.Pool{New: func() any { return new(mergeHeap) }}

// headID returns the ID at part p's cursor.
func (h *mergeHeap) headID(parts [][]geom.Object, p int) uint32 {
	return parts[p][h.pos[p]].ID
}

// siftDown restores the heap property from slot i.
func (h *mergeHeap) siftDown(parts [][]geom.Object, i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && h.headID(parts, h.heap[l]) < h.headID(parts, h.heap[least]) {
			least = l
		}
		if r < n && h.headID(parts, h.heap[r]) < h.headID(parts, h.heap[least]) {
			least = r
		}
		if least == i {
			return
		}
		h.heap[i], h.heap[least] = h.heap[least], h.heap[i]
		i = least
	}
}

// MergeObjects merges per-shard object lists into one ID-ordered list,
// appended to dst (pass dst[:0] to reuse a previous result's capacity).
// Each part is sorted in place first — server replies arrive in index
// traversal order — and the sorted runs are then combined by a pooled
// k-way heap merge: one pass, no per-element comparison against more
// than log k heads, and zero allocations beyond dst's own growth. The
// flat router and every tree level merge through this one function, so
// the gathered order is identical at any depth. IDs are unique across
// parts (each object lives on exactly one shard), so the output is
// duplicate-free and the order total.
func MergeObjects(dst []geom.Object, parts [][]geom.Object) []geom.Object {
	live := 0
	total := 0
	last := -1
	for i, p := range parts {
		if len(p) == 0 {
			continue
		}
		live++
		total += len(p)
		last = i
	}
	switch live {
	case 0:
		return dst
	case 1:
		// One contributing shard: its reply only needs the ID sort.
		at := len(dst)
		dst = append(dst, parts[last]...)
		sortObjects(dst[at:])
		return dst
	}
	if need := len(dst) + total; cap(dst) < need {
		grown := make([]geom.Object, len(dst), need)
		copy(grown, dst)
		dst = grown
	}
	h := mergePool.Get().(*mergeHeap)
	h.heap = h.heap[:0]
	if cap(h.pos) < len(parts) {
		h.pos = make([]int, len(parts))
	}
	h.pos = h.pos[:len(parts)]
	for i, p := range parts {
		h.pos[i] = 0
		if len(p) == 0 {
			continue
		}
		sortObjects(p)
		h.heap = append(h.heap, i)
	}
	// Heapify, then pop the global minimum until every run is drained.
	for i := len(h.heap)/2 - 1; i >= 0; i-- {
		h.siftDown(parts, i)
	}
	for len(h.heap) > 0 {
		p := h.heap[0]
		dst = append(dst, parts[p][h.pos[p]])
		h.pos[p]++
		if h.pos[p] == len(parts[p]) {
			n := len(h.heap) - 1
			h.heap[0] = h.heap[n]
			h.heap = h.heap[:n]
		}
		h.siftDown(parts, 0)
	}
	mergePool.Put(h)
	return dst
}

// mergePairs concatenates per-shard pair lists into deterministic
// (uploaded ID, matched ID) order. Duplicate-free by construction: the
// joined-side objects are disjoint across shards.
func mergePairs(parts [][]geom.Pair) []geom.Pair {
	var out []geom.Pair
	for _, p := range parts {
		out = append(out, p...)
	}
	slices.SortFunc(out, func(a, b geom.Pair) int {
		if a.RID != b.RID {
			return cmp.Compare(a.RID, b.RID)
		}
		return cmp.Compare(a.SID, b.SID)
	})
	return out
}

// mergeInfos folds per-shard metadata into the relation's: cardinalities
// sum, bounds union (empty shards contribute nothing), PointData holds
// iff it holds on every non-empty shard, and TreeHeight is the minimum
// published height over non-empty shards — the deepest level guaranteed
// to exist in every shard tree — or 0 when any shard withholds its index.
// The fold is associative, so an aggregation tree merging level by level
// reaches the same relation metadata as the flat fan-out.
func mergeInfos(infos []wire.Info) wire.Info {
	var m wire.Info
	m.PointData = true
	first := true
	for _, info := range infos {
		m.Count += info.Count
		if info.Count == 0 {
			continue
		}
		if first {
			m.Bounds = info.Bounds
			m.TreeHeight = info.TreeHeight
			first = false
		} else {
			m.Bounds = m.Bounds.Union(info.Bounds)
			if info.TreeHeight < m.TreeHeight {
				m.TreeHeight = info.TreeHeight
			}
		}
		if !info.PointData {
			m.PointData = false
		}
	}
	return m
}
