package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bufpool"
	"repro/internal/client"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/wire"
)

// newTestRouter shards objs across n in-process servers behind a Router,
// plus a single unsharded oracle remote over the same dataset.
func newTestRouter(t testing.TB, objs []geom.Object, n int, copts []client.Option, ropts []RouterOption, sopts ...server.Option) (*Router, *client.Remote) {
	t.Helper()
	parts := Assign(objs, n)
	rems := make([]*client.Remote, n)
	for i, part := range parts {
		name := fmt.Sprintf("D%d/%d", i+1, n)
		tr := netsim.Serve(server.New(name, part, sopts...))
		rem, err := client.NewRemote(name, tr, netsim.DefaultLink(), 1, copts...)
		if err != nil {
			t.Fatal(err)
		}
		rems[i] = rem
	}
	router, err := NewRouter("D", Remotes(rems), ropts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { router.Close() })

	tr := netsim.Serve(server.New("D", objs, sopts...))
	oracle, err := client.NewRemote("D", tr, netsim.DefaultLink(), 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { oracle.Close() })
	return router, oracle
}

// sameObjects compares two answers as sets: the router merges in ID
// order, a single server (and the solo pass-through) answers in tree
// order, so both sides are sorted before the element-wise check.
func sameObjects(t *testing.T, what string, got, want []geom.Object) {
	t.Helper()
	sortObjects(got)
	sortObjects(want)
	if len(got) != len(want) {
		t.Fatalf("%s: %d objects, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: object %d = %+v, want %+v", what, i, got[i], want[i])
		}
	}
}

// TestRouterMatchesSingleServer is the merge-semantics guarantee: every
// query type answered through the router over {1, 2, 3, 4} shards equals
// the single unsharded server's answer (object lists compared as sets via
// ID order; counts exactly).
func TestRouterMatchesSingleServer(t *testing.T) {
	objs := dataset.GaussianClusters(500, 4, 600, dataset.World, 11)
	rng := rand.New(rand.NewSource(12))
	ctx := context.Background()
	for _, n := range []int{1, 2, 3, 4} {
		router, oracle := newTestRouter(t, objs, n, nil, nil, server.PublishIndex())

		info, err := router.Info(ctx)
		if err != nil {
			t.Fatal(err)
		}
		winfo, err := oracle.Info(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if info.Count != winfo.Count || info.Bounds != winfo.Bounds || info.PointData != winfo.PointData {
			t.Fatalf("n=%d: merged info %+v, oracle %+v", n, info, winfo)
		}
		if info.TreeHeight == 0 {
			t.Fatalf("n=%d: merged info hides the published index", n)
		}

		for trial := 0; trial < 40; trial++ {
			x := dataset.World.MinX + rng.Float64()*dataset.World.Width()
			y := dataset.World.MinY + rng.Float64()*dataset.World.Height()
			w := geom.R(x, y, x+rng.Float64()*4000, y+rng.Float64()*4000)
			p := geom.Pt(x, y)
			eps := rng.Float64() * 500

			gotN, err := router.Count(ctx, w)
			if err != nil {
				t.Fatal(err)
			}
			wantN, err := oracle.Count(ctx, w)
			if err != nil {
				t.Fatal(err)
			}
			if gotN != wantN {
				t.Fatalf("n=%d COUNT %v: %d, want %d", n, w, gotN, wantN)
			}

			gotO, err := router.Window(ctx, w)
			if err != nil {
				t.Fatal(err)
			}
			wantO, err := oracle.Window(ctx, w)
			if err != nil {
				t.Fatal(err)
			}
			sameObjects(t, fmt.Sprintf("n=%d WINDOW %v", n, w), gotO, wantO)

			gotR, err := router.Range(ctx, p, eps)
			if err != nil {
				t.Fatal(err)
			}
			wantR, err := oracle.Range(ctx, p, eps)
			if err != nil {
				t.Fatal(err)
			}
			sameObjects(t, fmt.Sprintf("n=%d RANGE %v", n, p), gotR, wantR)

			gotRC, err := router.RangeCount(ctx, p, eps)
			if err != nil {
				t.Fatal(err)
			}
			wantRC, err := oracle.RangeCount(ctx, p, eps)
			if err != nil {
				t.Fatal(err)
			}
			if gotRC != wantRC {
				t.Fatalf("n=%d RANGE-COUNT %v: %d, want %d", n, p, gotRC, wantRC)
			}

			gotA, err := router.AvgArea(ctx, w)
			if err != nil {
				t.Fatal(err)
			}
			wantA, err := oracle.AvgArea(ctx, w)
			if err != nil {
				t.Fatal(err)
			}
			if diff := gotA - wantA; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("n=%d AVG-AREA %v: %v, want %v", n, w, gotA, wantA)
			}
		}

		// Bucket probes: per-probe groups reassemble in probe order.
		pts := make([]geom.Point, 25)
		for i := range pts {
			pts[i] = geom.Pt(
				dataset.World.MinX+rng.Float64()*dataset.World.Width(),
				dataset.World.MinY+rng.Float64()*dataset.World.Height(),
			)
		}
		const eps = 400.0
		gotG, err := router.BucketRange(ctx, pts, eps)
		if err != nil {
			t.Fatal(err)
		}
		wantG, err := oracle.BucketRange(ctx, pts, eps)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotG) != len(wantG) {
			t.Fatalf("n=%d: %d bucket groups, want %d", n, len(gotG), len(wantG))
		}
		for i := range gotG {
			sameObjects(t, fmt.Sprintf("n=%d bucket group %d", n, i), gotG[i], wantG[i])
		}
		gotC, err := router.BucketRangeCount(ctx, pts, eps)
		if err != nil {
			t.Fatal(err)
		}
		wantC, err := oracle.BucketRangeCount(ctx, pts, eps)
		if err != nil {
			t.Fatal(err)
		}
		for i := range gotC {
			if gotC[i] != wantC[i] {
				t.Fatalf("n=%d bucket count %d: %d, want %d", n, i, gotC[i], wantC[i])
			}
		}

		// SemiJoin surface: MBR-MATCH unions per-shard answers; UPLOAD-JOIN
		// concatenates disjoint pair lists; LevelMBRs covers the dataset.
		rects := []geom.Rect{
			geom.R(0, 0, 4000, 4000),
			geom.R(6000, 6000, 9000, 9000),
			geom.R(2000, 5000, 3000, 8000),
		}
		gotM, err := router.MBRMatch(ctx, rects, 100)
		if err != nil {
			t.Fatal(err)
		}
		wantM, err := oracle.MBRMatch(ctx, rects, 100)
		if err != nil {
			t.Fatal(err)
		}
		sameObjects(t, fmt.Sprintf("n=%d MBR-MATCH", n), gotM, wantM)

		up := dataset.GaussianClusters(80, 2, 500, dataset.World, 13)
		gotP, err := router.UploadJoin(ctx, up, 300)
		if err != nil {
			t.Fatal(err)
		}
		wantP, err := oracle.UploadJoin(ctx, up, 300)
		if err != nil {
			t.Fatal(err)
		}
		pairKey := func(p geom.Pair) uint64 { return uint64(p.RID)<<32 | uint64(p.SID) }
		if len(gotP) != len(wantP) {
			t.Fatalf("n=%d UPLOAD-JOIN: %d pairs, want %d", n, len(gotP), len(wantP))
		}
		seen := make(map[uint64]bool, len(wantP))
		for _, p := range wantP {
			seen[pairKey(p)] = true
		}
		for _, p := range gotP {
			if !seen[pairKey(p)] {
				t.Fatalf("n=%d UPLOAD-JOIN: unexpected pair %+v", n, p)
			}
		}

		mbrs, err := router.LevelMBRs(ctx, 1)
		if err != nil {
			t.Fatal(err)
		}
		// Coverage is checked with a hair of slack: level MBRs cross the
		// wire as float32, so an advertised edge can round past a boundary
		// object by under the coordinate resolution — true of the unsharded
		// protocol too.
		const slack = 1e-2
		for _, o := range objs {
			covered := false
			for _, m := range mbrs {
				if m.Expand(slack).Intersects(o.MBR) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("n=%d: object %d not covered by any level-1 MBR", n, o.ID)
			}
		}
	}
}

// TestRouterCountSumOverRandomWindows is the protocol-level half of the
// COUNT-sum property: 1000 random windows answered over real shard links
// match the unsharded server exactly.
func TestRouterCountSumOverRandomWindows(t *testing.T) {
	objs := dataset.Uniform(600, dataset.World, 21)
	router, oracle := newTestRouter(t, objs, 4, nil, nil)
	rng := rand.New(rand.NewSource(22))
	ctx := context.Background()
	for trial := 0; trial < 1000; trial++ {
		x := dataset.World.MinX + rng.Float64()*dataset.World.Width()
		y := dataset.World.MinY + rng.Float64()*dataset.World.Height()
		w := geom.R(x, y, x+rng.Float64()*5000, y+rng.Float64()*5000)
		got, err := router.Count(ctx, w)
		if err != nil {
			t.Fatal(err)
		}
		want, err := oracle.Count(ctx, w)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("window %v: router count %d, oracle %d", w, got, want)
		}
	}
}

// TestRouterGoBatch drives the batched path: pre-encoded COUNT, WINDOW,
// RANGE and RANGE-COUNT frames routed through per-shard-link batchers
// must complete with the same answers the typed methods give.
func TestRouterGoBatch(t *testing.T) {
	objs := dataset.GaussianClusters(400, 3, 500, dataset.World, 31)
	copts := []client.Option{client.WithBatch(client.BatchConfig{
		MaxBatch: 8, Linger: 50 * time.Millisecond, MaxLinger: 50 * time.Millisecond,
	})}
	router, _ := newTestRouter(t, objs, 3, copts, nil)
	ctx := context.Background()

	w1 := geom.R(1000, 1000, 6000, 6000)
	w2 := geom.R(7000, 7000, 9500, 9500)
	p := geom.Pt(5000, 5000)
	reqs := [][]byte{
		wire.AppendCount(bufpool.Get(), w1),
		wire.AppendWindow(bufpool.Get(), w2),
		wire.AppendRange(bufpool.Get(), p, 600),
		wire.AppendRangeCount(bufpool.Get(), p, 600),
		wire.AppendCount(bufpool.Get(), geom.R(-9000, -9000, -8000, -8000)), // no shard overlaps
	}
	calls := router.GoBatch(ctx, reqs)
	router.Flush()

	gotN, err := calls[0].Count()
	if err != nil {
		t.Fatal(err)
	}
	wantN, err := router.Count(ctx, w1)
	if err != nil {
		t.Fatal(err)
	}
	if gotN != wantN {
		t.Fatalf("batched COUNT %d, typed %d", gotN, wantN)
	}

	gotO, err := calls[1].Objects()
	if err != nil {
		t.Fatal(err)
	}
	wantO, err := router.Window(ctx, w2)
	if err != nil {
		t.Fatal(err)
	}
	sameObjects(t, "batched WINDOW", gotO, wantO)

	gotR, err := calls[2].Objects()
	if err != nil {
		t.Fatal(err)
	}
	wantR, err := router.Range(ctx, p, 600)
	if err != nil {
		t.Fatal(err)
	}
	sameObjects(t, "batched RANGE", gotR, wantR)

	gotRC, err := calls[3].Count()
	if err != nil {
		t.Fatal(err)
	}
	wantRC, err := router.RangeCount(ctx, p, 600)
	if err != nil {
		t.Fatal(err)
	}
	if gotRC != wantRC {
		t.Fatalf("batched RANGE-COUNT %d, typed %d", gotRC, wantRC)
	}

	if n, err := calls[4].Count(); err != nil || n != 0 {
		t.Fatalf("off-space COUNT = (%d, %v), want (0, nil)", n, err)
	}
}

// TestRouterSoloIsBitIdenticalPassThrough: the 1-shard router must meter
// exactly the bytes of a direct remote for an identical call sequence —
// the wire-compatibility half of the sharding guarantee.
func TestRouterSoloIsBitIdenticalPassThrough(t *testing.T) {
	objs := dataset.GaussianClusters(300, 4, 500, dataset.World, 41)
	router, oracle := newTestRouter(t, objs, 1, nil, nil)
	ctx := context.Background()
	drive := func(q interface {
		Info(context.Context) (wire.Info, error)
		Count(context.Context, geom.Rect) (int, error)
		Window(context.Context, geom.Rect) ([]geom.Object, error)
		RangeCount(context.Context, geom.Point, float64) (int, error)
	}) {
		if _, err := q.Info(ctx); err != nil {
			t.Fatal(err)
		}
		if _, err := q.Count(ctx, geom.R(0, 0, 5000, 5000)); err != nil {
			t.Fatal(err)
		}
		if _, err := q.Window(ctx, geom.R(2000, 2000, 4000, 4000)); err != nil {
			t.Fatal(err)
		}
		if _, err := q.RangeCount(ctx, geom.Pt(5000, 5000), 800); err != nil {
			t.Fatal(err)
		}
	}
	drive(router)
	drive(oracle)
	if got, want := router.Usage(), oracle.Usage(); got != want {
		t.Fatalf("solo router usage %+v, direct remote %+v", got, want)
	}
}

// failAfterRT passes round trips through until a trigger count, then
// fails every call — a shard server crashing mid-join.
type failAfterRT struct {
	inner netsim.RoundTripper
	after int32
	n     atomic.Int32
}

var errShardDown = errors.New("shard server down")

func (f *failAfterRT) RoundTrip(ctx context.Context, req []byte) ([]byte, error) {
	if f.n.Add(1) > f.after {
		return nil, errShardDown
	}
	return f.inner.RoundTrip(ctx, req)
}

func (f *failAfterRT) Close() error { return f.inner.Close() }

// TestRouterShardFailureSurfacesRootCause kills one shard after its INFO
// answer: the next scatter must fail promptly with the dead shard's error
// (not a generic cancellation), and no goroutine may outlive the router.
func TestRouterShardFailureSurfacesRootCause(t *testing.T) {
	baseline := runtime.NumGoroutine()
	objs := dataset.GaussianClusters(400, 4, 800, dataset.World, 51)
	parts := Assign(objs, 3)
	rems := make([]*client.Remote, 3)
	for i, part := range parts {
		name := fmt.Sprintf("D%d/3", i+1)
		var rt netsim.RoundTripper = netsim.Serve(server.New(name, part))
		if i == 1 {
			rt = &failAfterRT{inner: rt, after: 1} // INFO succeeds, everything after fails
		}
		rem, err := client.NewRemote(name, rt, netsim.DefaultLink(), 1)
		if err != nil {
			t.Fatal(err)
		}
		rems[i] = rem
	}
	router, err := NewRouter("D", Remotes(rems))
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	start := time.Now()
	_, err = router.Count(ctx, dataset.World)
	if err == nil {
		t.Fatal("Count over a dead shard succeeded")
	}
	if !errors.Is(err, errShardDown) {
		t.Fatalf("error %v does not unwrap to the shard fault", err)
	}
	if !strings.Contains(err.Error(), "D2/3") {
		t.Fatalf("error %q does not name the dead shard", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("failure took %v to surface", elapsed)
	}
	router.Close()
	waitGoroutines(t, baseline)
}

// blockingRT parks every round trip after a trigger count until released.
type blockingRT struct {
	inner   netsim.RoundTripper
	after   int32
	n       atomic.Int32
	once    sync.Once
	reached chan struct{}
	release chan struct{}
}

func (b *blockingRT) RoundTrip(ctx context.Context, req []byte) ([]byte, error) {
	if b.n.Add(1) > b.after {
		b.once.Do(func() { close(b.reached) })
		select {
		case <-b.release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return b.inner.RoundTrip(ctx, req)
}

func (b *blockingRT) Close() error { return b.inner.Close() }

// TestRouterCancelMidScatter hangs one shard mid-scatter and cancels the
// context: the scatter must return promptly with context.Canceled, all
// sibling sub-queries must be joined, and no worker may leak.
func TestRouterCancelMidScatter(t *testing.T) {
	baseline := runtime.NumGoroutine()
	objs := dataset.GaussianClusters(400, 4, 800, dataset.World, 61)
	parts := Assign(objs, 3)
	hang := &blockingRT{after: 1, reached: make(chan struct{}), release: make(chan struct{})}
	rems := make([]*client.Remote, 3)
	for i, part := range parts {
		name := fmt.Sprintf("D%d/3", i+1)
		var rt netsim.RoundTripper = netsim.Serve(server.New(name, part))
		if i == 2 {
			hang.inner = rt
			rt = hang
		}
		rem, err := client.NewRemote(name, rt, netsim.DefaultLink(), 1)
		if err != nil {
			t.Fatal(err)
		}
		rems[i] = rem
	}
	router, err := NewRouter("D", Remotes(rems))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := router.Window(ctx, dataset.World)
		done <- err
	}()
	select {
	case <-hang.reached:
	case <-time.After(2 * time.Second):
		t.Fatal("scatter never reached the hung shard")
	}
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("scatter did not return within 2s of cancellation")
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}
	close(hang.release)
	router.Close()
	waitGoroutines(t, baseline)
}

// waitGoroutines polls until the goroutine count settles back to at most
// base, failing the test otherwise.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d > %d\n%s", runtime.NumGoroutine(), base, buf[:n])
}

// TestRouterRejectsMixedTariffs: the money-cost account needs one shared
// per-byte price; construction must refuse a mix.
func TestRouterRejectsMixedTariffs(t *testing.T) {
	objs := dataset.Uniform(10, dataset.World, 71)
	a, err := client.NewRemote("A", netsim.Serve(server.New("A", objs)), netsim.DefaultLink(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := client.NewRemote("B", netsim.Serve(server.New("B", objs)), netsim.DefaultLink(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := NewRouter("D", Remotes([]*client.Remote{a, b})); err == nil {
		t.Fatal("NewRouter accepted mixed tariffs")
	}
	if _, err := NewRouter("D", nil); err == nil {
		t.Fatal("NewRouter accepted zero shards")
	}
}
