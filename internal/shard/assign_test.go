package shard

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// randomObjects generates a mixed point/rectangle dataset inside bounds.
func randomObjects(rng *rand.Rand, n int, bounds geom.Rect) []geom.Object {
	objs := make([]geom.Object, n)
	for i := range objs {
		x := bounds.MinX + rng.Float64()*bounds.Width()
		y := bounds.MinY + rng.Float64()*bounds.Height()
		if rng.Intn(2) == 0 {
			objs[i] = geom.PointObject(uint32(i), geom.Pt(x, y))
		} else {
			objs[i] = geom.Object{
				ID:  uint32(i),
				MBR: geom.R(x, y, x+rng.Float64()*40, y+rng.Float64()*40),
			}
		}
	}
	return objs
}

// TestAssignExactlyOneShard is the assignment's core property: over many
// random datasets and shard counts, every object lands on exactly one
// shard — the partitions are disjoint and their union is the dataset.
// This is what makes per-shard COUNT answers disjoint, and so COUNT-sum
// exact.
func TestAssignExactlyOneShard(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bounds := geom.R(0, 0, 10000, 10000)
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		size := rng.Intn(400)
		objs := randomObjects(rng, size, bounds)
		parts := Assign(objs, n)
		if len(parts) != n {
			t.Fatalf("trial %d: Assign returned %d partitions, want %d", trial, len(parts), n)
		}
		seen := make(map[uint32]int)
		total := 0
		for si, part := range parts {
			total += len(part)
			for _, o := range part {
				if prev, dup := seen[o.ID]; dup {
					t.Fatalf("trial %d: object %d on shards %d and %d", trial, o.ID, prev, si)
				}
				seen[o.ID] = si
			}
		}
		if total != len(objs) {
			t.Fatalf("trial %d: %d objects across shards, dataset has %d", trial, total, len(objs))
		}
		for _, o := range objs {
			if _, ok := seen[o.ID]; !ok {
				t.Fatalf("trial %d: object %d assigned to no shard", trial, o.ID)
			}
		}
	}
}

// TestAssignIsDeterministic: assignment is a pure function of (objs, n) —
// shard servers and the router must agree on the partitioning without
// coordination.
func TestAssignIsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	objs := randomObjects(rng, 300, geom.R(0, 0, 10000, 10000))
	for _, n := range []int{1, 2, 3, 4, 7} {
		a, b := Assign(objs, n), Assign(objs, n)
		for i := range a {
			if len(a[i]) != len(b[i]) {
				t.Fatalf("n=%d: shard %d sized %d then %d", n, i, len(a[i]), len(b[i]))
			}
			for k := range a[i] {
				if a[i][k].ID != b[i][k].ID {
					t.Fatalf("n=%d: shard %d object %d differs between runs", n, i, k)
				}
			}
		}
	}
}

// TestTilesCoverIsExhaustive: the tile layout covers every point of the
// bounds (closed tiles sharing edges), tiles the full area exactly once,
// and every object's center lies in its assigned tile's row/column cell.
func TestTilesCoverIsExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bounds := geom.R(-500, 200, 7500, 4200)
	for n := 1; n <= 10; n++ {
		tiles := Tiles(bounds, n)
		if len(tiles) != n {
			t.Fatalf("n=%d: %d tiles", n, len(tiles))
		}
		var area float64
		for _, tile := range tiles {
			area += tile.Area()
			if !bounds.Contains(tile) {
				t.Fatalf("n=%d: tile %v escapes bounds %v", n, tile, bounds)
			}
		}
		if diff := area - bounds.Area(); diff > 1e-6*bounds.Area() || diff < -1e-6*bounds.Area() {
			t.Fatalf("n=%d: tile areas sum to %v, bounds area %v", n, area, bounds.Area())
		}
		for trial := 0; trial < 1000; trial++ {
			p := geom.Pt(
				bounds.MinX+rng.Float64()*bounds.Width(),
				bounds.MinY+rng.Float64()*bounds.Height(),
			)
			covered := false
			for _, tile := range tiles {
				if tile.ContainsPoint(p) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("n=%d: point %v in bounds but in no tile", n, p)
			}
			// The assignment function must agree with the cover: the chosen
			// tile actually contains the point.
			rows, cols := Grid(n)
			idx := tileIndex(p, bounds, rows, cols)
			if !tiles[idx].ContainsPoint(p) {
				t.Fatalf("n=%d: point %v assigned to tile %d = %v, which misses it", n, p, idx, tiles[idx])
			}
		}
	}
}

// TestBoundaryObjectsLandOnExactlyOneShard pins the overlap-free boundary
// rule: centers exactly on interior tile edges (shared by two closed
// tiles) are still assigned to exactly one shard.
func TestBoundaryObjectsLandOnExactlyOneShard(t *testing.T) {
	// A 4-shard 2×2 layout over [0,100]²: centers on the shared edges
	// x=50 and y=50, plus the four corners of the cross.
	var objs []geom.Object
	id := uint32(0)
	for _, p := range []geom.Point{
		{X: 50, Y: 10}, {X: 50, Y: 50}, {X: 50, Y: 90},
		{X: 10, Y: 50}, {X: 90, Y: 50},
		{X: 0, Y: 0}, {X: 100, Y: 100}, {X: 0, Y: 100}, {X: 100, Y: 0},
	} {
		objs = append(objs, geom.PointObject(id, p))
		id++
	}
	parts := Assign(objs, 4)
	seen := make(map[uint32]bool)
	for _, part := range parts {
		for _, o := range part {
			if seen[o.ID] {
				t.Fatalf("boundary object %d assigned twice", o.ID)
			}
			seen[o.ID] = true
		}
	}
	if len(seen) != len(objs) {
		t.Fatalf("%d of %d boundary objects assigned", len(seen), len(objs))
	}
}

// TestCountSumEqualsUnsharded is the COUNT-merge exactness property: for
// 1000 random windows, the sum of per-shard intersection counts equals
// the unsharded count — the invariant that makes the router's summed
// COUNT answers (and every pruning decision derived from them) exact.
func TestCountSumEqualsUnsharded(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bounds := geom.R(0, 0, 10000, 10000)
	objs := randomObjects(rng, 500, bounds)
	count := func(objs []geom.Object, w geom.Rect) int {
		n := 0
		for _, o := range objs {
			if o.MBR.Intersects(w) {
				n++
			}
		}
		return n
	}
	for _, n := range []int{1, 2, 3, 4, 8} {
		parts := Assign(objs, n)
		for trial := 0; trial < 1000; trial++ {
			x := bounds.MinX + rng.Float64()*bounds.Width()
			y := bounds.MinY + rng.Float64()*bounds.Height()
			w := geom.R(x, y, x+rng.Float64()*3000, y+rng.Float64()*3000)
			sum := 0
			for _, part := range parts {
				sum += count(part, w)
			}
			if want := count(objs, w); sum != want {
				t.Fatalf("n=%d window %v: shard count-sum %d, unsharded %d", n, w, sum, want)
			}
		}
	}
}

// TestHashFallbackSpreadsDegenerateLayouts: coincident centers defeat
// spatial tiling; the hash fallback must still fill every shard when the
// cardinality allows.
func TestHashFallbackSpreadsDegenerateLayouts(t *testing.T) {
	objs := make([]geom.Object, 64)
	for i := range objs {
		objs[i] = geom.PointObject(uint32(i), geom.Pt(42, 42))
	}
	parts := Assign(objs, 4)
	for i, part := range parts {
		if len(part) == 0 {
			t.Fatalf("shard %d empty under hash fallback", i)
		}
	}
	// Fewer objects than shards: some shards must stay empty, but every
	// object is still placed exactly once.
	parts = Assign(objs[:2], 4)
	total := 0
	for _, part := range parts {
		total += len(part)
	}
	if total != 2 {
		t.Fatalf("placed %d of 2 objects", total)
	}
}

// TestGridFactorization pins the tile-grid shape.
func TestGridFactorization(t *testing.T) {
	cases := map[int][2]int{1: {1, 1}, 2: {1, 2}, 3: {1, 3}, 4: {2, 2}, 6: {2, 3}, 9: {3, 3}, 12: {3, 4}}
	for n, want := range cases {
		r, c := Grid(n)
		if r != want[0] || c != want[1] {
			t.Errorf("Grid(%d) = %d×%d, want %d×%d", n, r, c, want[0], want[1])
		}
	}
}
