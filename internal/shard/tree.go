package shard

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bufpool"
	"repro/internal/client"
	"repro/internal/geom"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// Aggregator is an interior node of a hierarchical scatter–gather tree:
// it fronts a subtree of shard endpoints behind the same Endpoint
// surface the router scatters over, so a parent router (or another
// aggregator) sees it as a single fat shard. The flat router's fan-in
// wall — root-link bytes, reply frames, and merge CPU all O(N) in the
// shard count — becomes O(fanout) at every level, because each interior
// node *partially merges* its children's replies before forwarding up:
//
//   - COUNT / RANGE-COUNT forward one summed integer, not N (exact:
//     Assign places each object on exactly one leaf, so subtree counts
//     are disjoint — summing is associative and the tree total equals
//     the flat total at any depth).
//   - WINDOW / RANGE / MBR-MATCH forward one ID-ordered object list,
//     k-way-merged from the children by the same MergeObjects the flat
//     router uses, so the gathered order is bit-identical at any depth.
//   - Bucket queries reassemble per-probe groups (counts summed, object
//     groups merged) before forwarding.
//   - UPLOAD-JOIN prunes the upload set against each child's advertised
//     bounds on the way down and concatenates the disjoint pair lists
//     on the way up.
//   - INFO folds child metadata (count-sum, bounds-union, min height)
//     into one subtree summary.
//
// The embedded Router supplies all of that: scatter, bounds-based
// pruning, partial-mode absorption, and the shared merge layer. What the
// Aggregator adds is the accounting and health semantics of being an
// interior node:
//
//   - Its uplink — the link between this node and its parent — is a real
//     metered link (Eq. 1: per-message overhead + payload + packets,
//     priced like every other hop). Every delegated query charges the
//     encoded request frame up and the partially-merged reply frame
//     down, so LevelUsages can show the root link staying ~flat while
//     leaf traffic grows with N, and money cost accounts every level.
//   - It folds child breaker state into a gossiped subtree health
//     summary (see Healthy), so the parent routes around a dead subtree
//     without paying per-query discovery.
//   - Routed-around or failed subtrees report completeness gaps in leaf
//     shard units (recordLeafGaps), so AllowPartial composes up the
//     tree exactly as it does flat.
type Aggregator struct {
	*Router

	// uplink meters the traffic this node exchanges with its parent,
	// priced at the fleet tariff. Directions follow the leaf-link
	// convention (the parent is this link's client): requests charge
	// Up, replies charge Down.
	uplink *netsim.Meter

	// skips counts how often a parent routed around this subtree while
	// its summary said dead — the tree-level analogue of ReplicaSet's
	// per-set breaker skips, folded into Usage().BreakerSkips.
	skips atomic.Int64

	// Gossiped subtree health summary: refreshed from the children at
	// most once per gossip interval, so a parent's Healthy() check costs
	// a cached bool, not a subtree walk per query.
	healthMu sync.Mutex
	healthAt time.Time
	healthOK bool
}

// subtreeGossipInterval is how long an aggregator trusts its cached
// subtree health summary before re-folding child breaker state. The
// interval bounds staleness the same way breaker probe intervals do: a
// subtree that died stays "healthy" for at most one interval before the
// parent starts routing around it, and a revived one waits at most one
// interval to rejoin.
const subtreeGossipInterval = 50 * time.Millisecond

// NewAggregator builds an interior tree node named name over children,
// with a metered uplink of the given link shape. Gaps are reported under
// relation (the logical relation this subtree serves). The children may
// be leaf endpoints (Remotes, ReplicaSets) or further Aggregators.
func NewAggregator(name, relation string, children []Endpoint, link netsim.LinkConfig, opts ...RouterOption) (*Aggregator, error) {
	ropts := append([]RouterOption{WithRelation(relation)}, opts...)
	r, err := NewRouter(name, children, ropts...)
	if err != nil {
		return nil, err
	}
	m, err := netsim.NewMeter(link, r.PricePerByte())
	if err != nil {
		return nil, err
	}
	return &Aggregator{Router: r, uplink: m}, nil
}

// UplinkUsage returns the traffic this node has exchanged with its
// parent — the partially-merged view. LevelUsages sums these per tree
// level; the difference against the children's own usage is the fan-in
// the partial merges absorbed.
func (a *Aggregator) UplinkUsage() netsim.Usage { return a.uplink.Usage() }

// Usage returns the subtree's accumulated traffic: every interior and
// leaf link below this node plus this node's own uplink — so a root
// router's Usage() (and with it Stats.TotalBytes and the Eq. 1 money
// cost) accounts every hop a byte crossed, and the hedged/breaker
// columns of the leaves surface unchanged. Parent route-arounds of this
// subtree fold into BreakerSkips like a replica set's.
func (a *Aggregator) Usage() netsim.Usage {
	u := a.Router.Usage().Add(a.uplink.Usage())
	u.BreakerSkips += int(a.skips.Load())
	return u
}

// Healthy reports the gossiped subtree summary: the subtree can serve
// while at least one child admits traffic (children without their own
// health tracking count as healthy). The fold is cached for
// subtreeGossipInterval — parents read a summary, they do not walk the
// tree — and composes recursively: a child aggregator answers from its
// own cache, which is exactly the gossip model (each node periodically
// folds its children's state and serves the digest upward).
func (a *Aggregator) Healthy() bool {
	a.healthMu.Lock()
	defer a.healthMu.Unlock()
	now := time.Now()
	if a.healthAt.IsZero() || now.Sub(a.healthAt) >= subtreeGossipInterval {
		a.healthOK = a.foldHealth()
		a.healthAt = now
	}
	return a.healthOK
}

// foldHealth recomputes the subtree summary from the children.
func (a *Aggregator) foldHealth() bool {
	for _, s := range a.Router.shards {
		h, tracked := s.(healthChecked)
		if !tracked || h.Healthy() {
			return true
		}
	}
	return false
}

// RoutedAround records that a parent skipped this subtree because the
// summary said no child admits traffic.
func (a *Aggregator) RoutedAround() { a.skips.Add(1) }

// SubtreeHealth counts the live and total leaf shards below this node
// (diagnostics; a leaf without health tracking counts live).
func (a *Aggregator) SubtreeHealth() (live, total int) {
	return subtreeHealth(a.Router)
}

func subtreeHealth(r *Router) (live, total int) {
	for _, s := range r.shards {
		if agg, ok := s.(*Aggregator); ok {
			l, t := subtreeHealth(agg.Router)
			live += l
			total += t
			continue
		}
		total++
		if h, ok := s.(healthChecked); ok && !h.Healthy() {
			continue
		}
		live++
	}
	return live, total
}

// charge meters one frame crossing the uplink: encode into a pooled
// buffer (the same append-style codec the real transport uses, so the
// size is exactly what the wire would carry), charge, recycle.
func (a *Aggregator) charge(dir netsim.Direction, encode func([]byte) []byte) {
	buf := encode(bufpool.Get())
	a.uplink.Charge(len(buf), dir)
	bufpool.Put(buf)
}

// --- Endpoint surface: delegate to the embedded router, metering the
// partially-merged request/reply across the uplink -----------------------

func (a *Aggregator) Info(ctx context.Context) (wire.Info, error) {
	a.charge(netsim.Up, wire.AppendInfo)
	info, err := a.Router.Info(ctx)
	if err != nil {
		return wire.Info{}, err
	}
	a.charge(netsim.Down, func(dst []byte) []byte { return wire.AppendInfoReply(dst, info) })
	return info, nil
}

func (a *Aggregator) Count(ctx context.Context, w geom.Rect) (int, error) {
	a.charge(netsim.Up, func(dst []byte) []byte { return wire.AppendCount(dst, w) })
	n, err := a.Router.Count(ctx, w)
	if err != nil {
		return 0, err
	}
	a.charge(netsim.Down, func(dst []byte) []byte { return wire.AppendCountReply(dst, int64(n)) })
	return n, nil
}

func (a *Aggregator) Window(ctx context.Context, w geom.Rect) ([]geom.Object, error) {
	a.charge(netsim.Up, func(dst []byte) []byte { return wire.AppendWindow(dst, w) })
	objs, err := a.Router.Window(ctx, w)
	if err != nil {
		return nil, err
	}
	a.charge(netsim.Down, func(dst []byte) []byte { return wire.AppendObjects(dst, objs) })
	return objs, nil
}

func (a *Aggregator) AvgArea(ctx context.Context, w geom.Rect) (float64, error) {
	a.charge(netsim.Up, func(dst []byte) []byte { return wire.AppendAvgArea(dst, w) })
	v, err := a.Router.AvgArea(ctx, w)
	if err != nil {
		return 0, err
	}
	a.charge(netsim.Down, func(dst []byte) []byte { return wire.AppendFloatReply(dst, v) })
	return v, nil
}

func (a *Aggregator) Range(ctx context.Context, p geom.Point, eps float64) ([]geom.Object, error) {
	a.charge(netsim.Up, func(dst []byte) []byte { return wire.AppendRange(dst, p, eps) })
	objs, err := a.Router.Range(ctx, p, eps)
	if err != nil {
		return nil, err
	}
	a.charge(netsim.Down, func(dst []byte) []byte { return wire.AppendObjects(dst, objs) })
	return objs, nil
}

func (a *Aggregator) RangeCount(ctx context.Context, p geom.Point, eps float64) (int, error) {
	a.charge(netsim.Up, func(dst []byte) []byte { return wire.AppendRangeCount(dst, p, eps) })
	n, err := a.Router.RangeCount(ctx, p, eps)
	if err != nil {
		return 0, err
	}
	a.charge(netsim.Down, func(dst []byte) []byte { return wire.AppendCountReply(dst, int64(n)) })
	return n, nil
}

func (a *Aggregator) BucketRange(ctx context.Context, pts []geom.Point, eps float64) ([][]geom.Object, error) {
	a.charge(netsim.Up, func(dst []byte) []byte { return wire.AppendBucketRange(dst, pts, eps) })
	groups, err := a.Router.BucketRange(ctx, pts, eps)
	if err != nil {
		return nil, err
	}
	a.charge(netsim.Down, func(dst []byte) []byte { return wire.AppendBucketObjects(dst, groups) })
	return groups, nil
}

func (a *Aggregator) BucketRangeCount(ctx context.Context, pts []geom.Point, eps float64) ([]int64, error) {
	a.charge(netsim.Up, func(dst []byte) []byte { return wire.AppendBucketRangeCount(dst, pts, eps) })
	ns, err := a.Router.BucketRangeCount(ctx, pts, eps)
	if err != nil {
		return nil, err
	}
	a.charge(netsim.Down, func(dst []byte) []byte { return wire.AppendCountsReply(dst, ns) })
	return ns, nil
}

func (a *Aggregator) LevelMBRs(ctx context.Context, level int) ([]geom.Rect, error) {
	a.charge(netsim.Up, func(dst []byte) []byte { return wire.AppendMBRLevel(dst, level) })
	rects, err := a.Router.LevelMBRs(ctx, level)
	if err != nil {
		return nil, err
	}
	a.charge(netsim.Down, func(dst []byte) []byte { return wire.AppendRects(dst, rects) })
	return rects, nil
}

func (a *Aggregator) MBRMatch(ctx context.Context, rects []geom.Rect, eps float64) ([]geom.Object, error) {
	a.charge(netsim.Up, func(dst []byte) []byte { return wire.AppendMBRMatch(dst, rects, eps) })
	objs, err := a.Router.MBRMatch(ctx, rects, eps)
	if err != nil {
		return nil, err
	}
	a.charge(netsim.Down, func(dst []byte) []byte { return wire.AppendObjects(dst, objs) })
	return objs, nil
}

func (a *Aggregator) UploadJoin(ctx context.Context, objs []geom.Object, eps float64) ([]geom.Pair, error) {
	// The upload crossing this uplink is the set already pruned by the
	// level above; this node prunes further per child on the way down.
	a.charge(netsim.Up, func(dst []byte) []byte { return wire.AppendUploadJoin(dst, objs, eps) })
	pairs, err := a.Router.UploadJoin(ctx, objs, eps)
	if err != nil {
		return nil, err
	}
	a.charge(netsim.Down, func(dst []byte) []byte { return wire.AppendPairs(dst, pairs) })
	return pairs, nil
}

// GoBatch forwards pre-encoded probe frames into the subtree — each
// request charges the uplink on the way in, and each partially-merged
// reply frame charges it on the way out. The embedded router does the
// actual routing (through the children's own batchers, so same-link
// sub-requests still coalesce into MsgBatch envelopes at every level);
// this wrapper only intercepts each reply frame for metering before
// passing ownership through to the caller.
func (a *Aggregator) GoBatch(ctx context.Context, reqs [][]byte) []*client.Call {
	for _, req := range reqs {
		a.uplink.Charge(len(req), netsim.Up)
	}
	inner := a.Router.GoBatch(ctx, reqs)
	out := make([]*client.Call, len(inner))
	for i, in := range inner {
		o := client.NewDetachedCall(a.name)
		out[i] = o
		go func(in, o *client.Call) {
			frame, err := in.Frame()
			if err == nil {
				a.uplink.Charge(len(frame), netsim.Down)
			}
			o.CompleteFrame(frame, err)
		}(in, o)
	}
	return out
}

// --- tree assembly --------------------------------------------------------

// NewTree builds a hierarchical scatter–gather router over the given
// leaf shard endpoints: consecutive leaves (spatially adjacent — Assign
// tiles space in index order) group under Aggregator nodes, levels
// stack until the root fans out to at most fanout children, and the
// returned Router is that root. With fanout < 2 or no more leaves than
// fanout, the tree degenerates to the flat router — one level, same
// object — so a "tree of depth 1" is not merely equivalent to the flat
// scatter, it is the flat scatter.
//
// Interior uplinks share the leaf link shape and tariff: the cost model
// prices every byte crossing every level, so a deeper tree trades more
// total hops for an O(fanout) root fan-in.
//
// A trailing group that would hold a single leaf is folded into its
// left sibling (fanout+1 wide) rather than wrapped in a degenerate
// one-child aggregator that would meter a pointless extra hop.
func NewTree(name string, leaves []Endpoint, fanout int, link netsim.LinkConfig, opts ...RouterOption) (*Router, error) {
	level := leaves
	for depth := 1; fanout >= 2 && len(level) > fanout; depth++ {
		var next []Endpoint
		for lo := 0; lo < len(level); {
			hi := lo + fanout
			if hi > len(level) || len(level)-hi == 1 {
				hi = len(level)
			}
			agg, err := NewAggregator(
				fmt.Sprintf("%s@%d.%d", name, depth, len(next)+1),
				name, level[lo:hi:hi], link, opts...)
			if err != nil {
				return nil, err
			}
			next = append(next, agg)
			lo = hi
		}
		level = next
	}
	return NewRouter(name, level, opts...)
}
