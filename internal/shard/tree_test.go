package shard

import (
	"context"
	"fmt"
	"math/rand"
	"slices"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bufpool"
	"repro/internal/client"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/health"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/wire"
)

// newTestTree shards objs across n in-process servers stacked under a
// NewTree of the given fanout, plus a flat router over an identical
// second fleet as the reference.
func newTestTree(t testing.TB, objs []geom.Object, n, fanout int) (tree, flat *Router) {
	t.Helper()
	boot := func(cfg LocalConfig) *Router {
		r, err := ServeLocal("D", objs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { r.Close() })
		return r
	}
	sopts := []server.Option{server.PublishIndex()}
	tree = boot(LocalConfig{Shards: n, TreeFanout: fanout, Link: netsim.DefaultLink(), Price: 1, Workers: 4, ServerOpts: sopts})
	flat = boot(LocalConfig{Shards: n, Link: netsim.DefaultLink(), Price: 1, Workers: 4, ServerOpts: sopts})
	return tree, flat
}

// leafNames walks a routing topology and returns every leaf endpoint
// name in left-to-right order.
func leafNames(r *Router) []string {
	var out []string
	for _, s := range r.Shards() {
		if agg, ok := s.(*Aggregator); ok {
			out = append(out, leafNames(agg.Router)...)
			continue
		}
		out = append(out, s.Name())
	}
	return out
}

// treeDepth returns the number of levels below the root router.
func treeDepth(r *Router) int {
	deepest := 1
	for _, s := range r.Shards() {
		if agg, ok := s.(*Aggregator); ok {
			if d := 1 + treeDepth(agg.Router); d > deepest {
				deepest = d
			}
		}
	}
	return deepest
}

// TestTreeTopologyProperties is the structural property suite: for every
// (shards, fanout) shape, each leaf shard appears in exactly one leaf
// position of the tree, in the same order the flat router would scatter
// over; the root fans out to at most fanout children (plus at most one
// absorbed singleton); NumShards reports leaves, not children; and
// fanout >= shards degenerates to the flat router.
func TestTreeTopologyProperties(t *testing.T) {
	objs := dataset.Uniform(512, dataset.World, 31)
	for _, tc := range []struct{ shards, fanout, wantDepth int }{
		{4, 4, 1}, // degenerate: flat
		{4, 2, 2},
		{8, 2, 3},
		{9, 2, 3}, // odd fleet: trailing singleton absorbed
		{16, 4, 2},
		{64, 8, 2},
		{7, 3, 2},
	} {
		t.Run(fmt.Sprintf("shards=%d/fanout=%d", tc.shards, tc.fanout), func(t *testing.T) {
			parts := Assign(objs, tc.shards)
			eps := make([]Endpoint, len(parts))
			for i := range parts {
				eps[i] = &stubLeaf{name: fmt.Sprintf("D%d/%d", i+1, tc.shards)}
			}
			root, err := NewTree("D", eps, tc.fanout, netsim.DefaultLink())
			if err != nil {
				t.Fatal(err)
			}
			var want []string
			for _, e := range eps {
				want = append(want, e.Name())
			}
			got := leafNames(root)
			if !slices.Equal(got, want) {
				t.Fatalf("leaves %v, want every shard exactly once in order: %v", got, want)
			}
			if n := root.NumShards(); n != tc.shards {
				t.Fatalf("NumShards() = %d, want leaf count %d", n, tc.shards)
			}
			if d := treeDepth(root); d != tc.wantDepth {
				t.Fatalf("depth %d, want %d", d, tc.wantDepth)
			}
			if len(root.Shards()) > tc.fanout {
				t.Fatalf("root fans out to %d children, want <= fanout %d", len(root.Shards()), tc.fanout)
			}
			if tc.wantDepth == 1 {
				for _, s := range root.Shards() {
					if _, ok := s.(*Aggregator); ok {
						t.Fatal("fanout >= shards must degenerate to the flat router, found an interior node")
					}
				}
			}
		})
	}
}

// stubLeaf is a minimal Endpoint for topology-only assertions.
type stubLeaf struct {
	name  string
	usage netsim.Usage
}

func (s *stubLeaf) Name() string                                  { return s.name }
func (s *stubLeaf) Info(context.Context) (wire.Info, error)       { return wire.Info{}, nil }
func (s *stubLeaf) Count(context.Context, geom.Rect) (int, error) { return 0, nil }
func (s *stubLeaf) Window(context.Context, geom.Rect) ([]geom.Object, error) {
	return nil, nil
}
func (s *stubLeaf) AvgArea(context.Context, geom.Rect) (float64, error) { return 0, nil }
func (s *stubLeaf) Range(context.Context, geom.Point, float64) ([]geom.Object, error) {
	return nil, nil
}
func (s *stubLeaf) RangeCount(context.Context, geom.Point, float64) (int, error) { return 0, nil }
func (s *stubLeaf) BucketRange(_ context.Context, pts []geom.Point, _ float64) ([][]geom.Object, error) {
	return make([][]geom.Object, len(pts)), nil
}
func (s *stubLeaf) BucketRangeCount(_ context.Context, pts []geom.Point, _ float64) ([]int64, error) {
	return make([]int64, len(pts)), nil
}
func (s *stubLeaf) LevelMBRs(context.Context, int) ([]geom.Rect, error) { return nil, nil }
func (s *stubLeaf) MBRMatch(context.Context, []geom.Rect, float64) ([]geom.Object, error) {
	return nil, nil
}
func (s *stubLeaf) UploadJoin(context.Context, []geom.Object, float64) ([]geom.Pair, error) {
	return nil, nil
}
func (s *stubLeaf) GoBatch(context.Context, [][]byte) []*client.Call { return nil }
func (s *stubLeaf) Flush()                                           {}
func (s *stubLeaf) Usage() netsim.Usage                              { return s.usage }
func (s *stubLeaf) PricePerByte() float64                            { return 1 }
func (s *stubLeaf) Retries() int64                                   { return 0 }
func (s *stubLeaf) Close() error                                     { return nil }

// TestTreeMatchesFlatRouter drives every query type through a depth-2
// and depth-3 tree and a flat router over identical fleets, asserting
// byte-for-byte equal answers — the merge layer is shared, so the
// gathered order is identical at any depth.
func TestTreeMatchesFlatRouter(t *testing.T) {
	objs := dataset.GaussianClusters(600, 5, 700, dataset.World, 33)
	rng := rand.New(rand.NewSource(35))
	for _, tc := range []struct{ shards, fanout int }{
		{4, 2},
		{8, 2},
		{9, 3},
	} {
		t.Run(fmt.Sprintf("shards=%d/fanout=%d", tc.shards, tc.fanout), func(t *testing.T) {
			tree, flat := newTestTree(t, objs, tc.shards, tc.fanout)
			ctx := context.Background()

			ti, err := tree.Info(ctx)
			if err != nil {
				t.Fatal(err)
			}
			fi, err := flat.Info(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if ti != fi {
				t.Fatalf("merged info diverges: tree %+v, flat %+v", ti, fi)
			}

			windows := []geom.Rect{dataset.World, geom.R(0, 0, 4000, 4000), geom.R(3000, 2000, 8000, 9000)}
			for i := 0; i < 6; i++ {
				x, y := rng.Float64()*9000, rng.Float64()*9000
				windows = append(windows, geom.R(x, y, x+rng.Float64()*2500, y+rng.Float64()*2500))
			}
			for _, w := range windows {
				tn, err := tree.Count(ctx, w)
				if err != nil {
					t.Fatal(err)
				}
				fn, err := flat.Count(ctx, w)
				if err != nil {
					t.Fatal(err)
				}
				if tn != fn {
					t.Fatalf("Count(%v): tree %d, flat %d", w, tn, fn)
				}
				tw, err := tree.Window(ctx, w)
				if err != nil {
					t.Fatal(err)
				}
				fw, err := flat.Window(ctx, w)
				if err != nil {
					t.Fatal(err)
				}
				if !slices.Equal(tw, fw) {
					t.Fatalf("Window(%v): tree and flat answers diverge (%d vs %d objects)", w, len(tw), len(fw))
				}
				ta, err := tree.AvgArea(ctx, w)
				if err != nil {
					t.Fatal(err)
				}
				fa, err := flat.AvgArea(ctx, w)
				if err != nil {
					t.Fatal(err)
				}
				if ta != fa {
					t.Fatalf("AvgArea(%v): tree %v, flat %v", w, ta, fa)
				}
			}

			pts := make([]geom.Point, 24)
			for i := range pts {
				pts[i] = geom.Pt(rng.Float64()*10000, rng.Float64()*10000)
			}
			const eps = 900
			for _, p := range pts[:8] {
				tr, err := tree.Range(ctx, p, eps)
				if err != nil {
					t.Fatal(err)
				}
				fr, err := flat.Range(ctx, p, eps)
				if err != nil {
					t.Fatal(err)
				}
				if !slices.Equal(tr, fr) {
					t.Fatalf("Range(%v): answers diverge", p)
				}
				tn, err := tree.RangeCount(ctx, p, eps)
				if err != nil {
					t.Fatal(err)
				}
				fn, err := flat.RangeCount(ctx, p, eps)
				if err != nil {
					t.Fatal(err)
				}
				if tn != fn {
					t.Fatalf("RangeCount(%v): tree %d, flat %d", p, tn, fn)
				}
			}

			tg, err := tree.BucketRange(ctx, pts, eps)
			if err != nil {
				t.Fatal(err)
			}
			fg, err := flat.BucketRange(ctx, pts, eps)
			if err != nil {
				t.Fatal(err)
			}
			if len(tg) != len(fg) {
				t.Fatalf("BucketRange groups: %d vs %d", len(tg), len(fg))
			}
			for i := range tg {
				if !slices.Equal(tg[i], fg[i]) {
					t.Fatalf("BucketRange group %d diverges", i)
				}
			}
			tc2, err := tree.BucketRangeCount(ctx, pts, eps)
			if err != nil {
				t.Fatal(err)
			}
			fc2, err := flat.BucketRangeCount(ctx, pts, eps)
			if err != nil {
				t.Fatal(err)
			}
			if !slices.Equal(tc2, fc2) {
				t.Fatalf("BucketRangeCount diverges: %v vs %v", tc2, fc2)
			}

			tm, err := tree.LevelMBRs(ctx, 0)
			if err != nil {
				t.Fatal(err)
			}
			fm, err := flat.LevelMBRs(ctx, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !slices.Equal(tm, fm) {
				t.Fatalf("LevelMBRs diverges: %d vs %d rects", len(tm), len(fm))
			}
			tmm, err := tree.MBRMatch(ctx, tm[:min(len(tm), 6)], eps)
			if err != nil {
				t.Fatal(err)
			}
			fmm, err := flat.MBRMatch(ctx, fm[:min(len(fm), 6)], eps)
			if err != nil {
				t.Fatal(err)
			}
			if !slices.Equal(tmm, fmm) {
				t.Fatalf("MBRMatch diverges")
			}

			uploads := slices.Clone(objs[:80])
			tp, err := tree.UploadJoin(ctx, uploads, eps)
			if err != nil {
				t.Fatal(err)
			}
			fp, err := flat.UploadJoin(ctx, uploads, eps)
			if err != nil {
				t.Fatal(err)
			}
			if !slices.Equal(tp, fp) {
				t.Fatalf("UploadJoin diverges: %d vs %d pairs", len(tp), len(fp))
			}

			// Leaf-level traffic is identical too: the same sub-queries hit
			// the same leaf servers whether an aggregator or the device
			// itself scattered them. (AvgArea is the one exception — its
			// companion COUNT re-issues per level — so this comparison runs
			// on the query mix above minus nothing: the companion COUNTs the
			// tree adds are answered by the same leaves with the same bytes
			// per query; assert >= instead of == to keep this robust.)
			treeLeaves := tree.LevelUsages()
			flatLeaves := flat.LevelUsages()
			if len(treeLeaves) < 2 {
				t.Fatalf("tree reports %d levels, want >= 2", len(treeLeaves))
			}
			if got, want := treeLeaves[len(treeLeaves)-1].WireBytes, flatLeaves[0].WireBytes; got < want {
				t.Fatalf("tree leaf level carried %d wire bytes, flat %d — leaves must see at least the flat load", got, want)
			}
		})
	}
}

// TestTreeGoBatchMatchesFlat drives the batched probe path through both
// topologies: identical merged replies per call.
func TestTreeGoBatchMatchesFlat(t *testing.T) {
	objs := dataset.GaussianClusters(500, 4, 800, dataset.World, 37)
	tree, flat := newTestTree(t, objs, 8, 2)
	ctx := context.Background()
	if _, err := tree.Info(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := flat.Info(ctx); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(39))
	frames := func() [][]byte {
		var reqs [][]byte
		for i := 0; i < 12; i++ {
			x, y := rng.Float64()*8000, rng.Float64()*8000
			switch i % 4 {
			case 0:
				reqs = append(reqs, wire.AppendCount(bufpool.Get(), geom.R(x, y, x+2000, y+2000)))
			case 1:
				reqs = append(reqs, wire.AppendWindow(bufpool.Get(), geom.R(x, y, x+1500, y+1500)))
			case 2:
				reqs = append(reqs, wire.AppendRange(bufpool.Get(), geom.Pt(x, y), 700))
			default:
				reqs = append(reqs, wire.AppendRangeCount(bufpool.Get(), geom.Pt(x, y), 700))
			}
		}
		return reqs
	}
	rng = rand.New(rand.NewSource(39))
	treeReqs := frames()
	rng = rand.New(rand.NewSource(39))
	flatReqs := frames()
	tCalls := tree.GoBatch(ctx, treeReqs)
	fCalls := flat.GoBatch(ctx, flatReqs)
	tree.Flush()
	flat.Flush()
	for i := range tCalls {
		tf, terr := tCalls[i].Frame()
		ff, ferr := fCalls[i].Frame()
		if (terr == nil) != (ferr == nil) {
			t.Fatalf("call %d: tree err %v, flat err %v", i, terr, ferr)
		}
		if !slices.Equal(tf, ff) {
			t.Fatalf("call %d: merged reply frames diverge (%d vs %d bytes)", i, len(tf), len(ff))
		}
		bufpool.Put(tf)
		bufpool.Put(ff)
	}
}

// TestTreeRootBytesScaling is the headline acceptance criterion: growing
// the fleet 8× (8 → 64 shards) under an aggregate-heavy workload grows
// the root-link wire bytes >= 6× with the flat scatter but <= 2× under
// the tree overlay — the interior partial merges absorb the fan-in.
func TestTreeRootBytesScaling(t *testing.T) {
	objs := dataset.Uniform(4096, dataset.World, 41)
	const fanout = 8
	rootBytes := func(n, fanout int) int {
		r, err := ServeLocal("D", objs, LocalConfig{
			Shards: n, TreeFanout: fanout, Workers: 8,
			Link: netsim.DefaultLink(), Price: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		ctx := context.Background()
		if _, err := r.Info(ctx); err != nil {
			t.Fatal(err)
		}
		before := r.LevelUsages()[0].WireBytes
		for i := 0; i < 16; i++ {
			if _, err := r.Count(ctx, dataset.World); err != nil {
				t.Fatal(err)
			}
			if _, err := r.RangeCount(ctx, geom.Pt(5000, 5000), 8000); err != nil {
				t.Fatal(err)
			}
		}
		return r.LevelUsages()[0].WireBytes - before
	}
	flat8 := rootBytes(8, 0)
	flat64 := rootBytes(64, 0)
	tree8 := rootBytes(8, fanout)   // degenerates to flat: the baseline
	tree64 := rootBytes(64, fanout) // two levels: root sees 8 children
	flatGrowth := float64(flat64) / float64(flat8)
	treeGrowth := float64(tree64) / float64(tree8)
	t.Logf("root bytes 8→64 shards: flat %d→%d (%.1f×), tree %d→%d (%.1f×)",
		flat8, flat64, flatGrowth, tree8, tree64, treeGrowth)
	if flatGrowth < 6 {
		t.Fatalf("flat root bytes grew only %.1f× from 8→64 shards, expected >= 6×", flatGrowth)
	}
	if treeGrowth > 2 {
		t.Fatalf("tree root bytes grew %.1f× from 8→64 shards, want <= 2×", treeGrowth)
	}
}

// TestTreeUsageAccountsEveryLevel pins the byte accounting: the root
// Usage must equal leaf traffic plus every interior uplink, and the
// hedged/breaker columns of the leaves must surface in the root fold.
func TestTreeUsageAccountsEveryLevel(t *testing.T) {
	leaves := make([]Endpoint, 8)
	for i := range leaves {
		leaves[i] = &stubLeaf{
			name: fmt.Sprintf("D%d/8", i+1),
			usage: netsim.Usage{
				WireBytes: 100, HedgedWireBytes: 7, HedgedMessages: 1,
				BreakerOpens: 1, BreakerSkips: 2,
			},
		}
	}
	root, err := NewTree("D", leaves, 2, netsim.DefaultLink())
	if err != nil {
		t.Fatal(err)
	}
	u := root.Usage()
	if u.HedgedWireBytes != 8*7 || u.HedgedMessages != 8 {
		t.Fatalf("hedged columns lost in the tree fold: %+v", u)
	}
	if u.BreakerOpens != 8 || u.BreakerSkips != 16 {
		t.Fatalf("breaker columns lost in the tree fold: %+v", u)
	}
	// Wire bytes: leaves carry 8×100; interior uplinks are unused (no
	// queries ran), so the fold is exactly the leaf sum here.
	if u.WireBytes != 800 {
		t.Fatalf("WireBytes = %d, want 800", u.WireBytes)
	}
	lv := root.LevelUsages()
	if len(lv) != 3 {
		t.Fatalf("%d levels for 8 leaves at fanout 2, want 3", len(lv))
	}
	if lv[2].WireBytes != 800 {
		t.Fatalf("leaf level carries %d wire bytes, want 800", lv[2].WireBytes)
	}
}

// TestTreeRoutesAroundDeadSubtree kills every replica of one subtree's
// shards after the INFO warm-up and asserts the tentpole's failure
// semantics: partial queries keep answering from the live subtree, the
// gaps come back in leaf shard units, the subtree summary goes unhealthy
// within one gossip interval, and the root's route-around is visible in
// BreakerSkips while the dead links receive no further traffic.
func TestTreeRoutesAroundDeadSubtree(t *testing.T) {
	objs := dataset.GaussianClusters(400, 4, 800, dataset.World, 43)
	parts := Assign(objs, 4)
	reg := health.NewRegistry(quietBreakers())
	defer reg.Close()
	var dead atomic.Bool
	var deadCalls atomic.Int64
	router, err := ServeLocal("D", objs, LocalConfig{
		Shards: 4, Replicas: 2, TreeFanout: 2, Health: reg,
		Link: netsim.DefaultLink(), Price: 1,
		WrapTransport: func(name string, rt netsim.RoundTripper) netsim.RoundTripper {
			// Shards 3 and 4 form the right subtree at fanout 2.
			if len(name) >= 4 && (name[:4] == "D3/4" || name[:4] == "D4/4") {
				return &gateDeadRT{inner: rt, dead: &dead, calls: &deadCalls}
			}
			return rt
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	ctx := context.Background()
	if _, err := router.Info(ctx); err != nil {
		t.Fatal(err)
	}
	if n := router.NumShards(); n != 4 {
		t.Fatalf("NumShards() = %d, want 4 leaves", n)
	}
	dead.Store(true)
	rep := health.NewReport()
	pctx := health.WithReport(ctx, rep)
	var got int
	for k := 0; k < 6; k++ {
		if got, err = router.Count(pctx, dataset.World); err != nil {
			t.Fatalf("partial count %d: %v", k, err)
		}
	}
	if want := len(parts[0]) + len(parts[1]); got != want {
		t.Fatalf("partial count %d, want the live subtree's %d", got, want)
	}
	gaps := rep.Gaps()
	var names []string
	for _, g := range gaps {
		if g.Relation != "D" {
			t.Fatalf("gap relation %q, want D (leaf units under the root relation)", g.Relation)
		}
		names = append(names, g.Shard)
	}
	slices.Sort(names)
	if !slices.Equal(names, []string{"D3/4", "D4/4"}) {
		t.Fatalf("gap shards %v, want the dead subtree's leaves [D3/4 D4/4]", names)
	}
	// Let the gossiped summary refresh, then: the subtree must fold to
	// unhealthy and further queries must not touch the dead links.
	time.Sleep(subtreeGossipInterval + 10*time.Millisecond)
	deadAgg, ok := router.Shards()[1].(*Aggregator)
	if !ok {
		t.Fatalf("child 1 is %T, want *Aggregator", router.Shards()[1])
	}
	if deadAgg.Healthy() {
		t.Fatal("dead subtree still reports healthy after its breakers opened")
	}
	if live, total := deadAgg.SubtreeHealth(); live != 0 || total != 2 {
		t.Fatalf("dead subtree health %d/%d, want 0/2", live, total)
	}
	calls0 := deadCalls.Load()
	for k := 0; k < 6; k++ {
		if _, err := router.Count(pctx, dataset.World); err != nil {
			t.Fatal(err)
		}
	}
	if n := deadCalls.Load(); n != calls0 {
		t.Fatalf("dead subtree's links received %d more calls after route-around, want 0", n-calls0)
	}
	if u := router.Usage(); u.BreakerSkips == 0 {
		t.Fatal("no breaker skips recorded while routing around a dead subtree")
	}
}

// TestRouterInfoCooldownPerShard pins the satellite fix: the INFO
// re-probe cooldown is per shard, so a still-cooling dead shard does not
// block the refresh that revives a sibling whose cooldown has lapsed.
func TestRouterInfoCooldownPerShard(t *testing.T) {
	objs := dataset.GaussianClusters(200, 3, 600, dataset.World, 45)
	var dead1, dead2 atomic.Bool
	var calls1, calls2 atomic.Int64
	router, err := ServeLocal("D", objs, LocalConfig{
		Shards: 3, Link: netsim.DefaultLink(), Price: 1,
		WrapTransport: func(name string, rt netsim.RoundTripper) netsim.RoundTripper {
			switch name {
			case "D1/3":
				return &gateDeadRT{inner: rt, dead: &dead1, calls: &calls1}
			case "D2/3":
				return &gateDeadRT{inner: rt, dead: &dead2, calls: &calls2}
			}
			return rt
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	dead1.Store(true)
	dead2.Store(true)
	rep := health.NewReport()
	pctx := health.WithReport(context.Background(), rep)
	if _, err := router.Info(pctx); err != nil {
		t.Fatal(err)
	}
	if n := len(rep.Gaps()); n != 2 {
		t.Fatalf("%d gaps after partial INFO, want 2", n)
	}
	// Both dead shards are cooling down. Lapse shard 2's cooldown only
	// (white box: backdate its re-probe deadline) and revive it.
	dead2.Store(false)
	router.mu.Lock()
	router.infoRetryAt[1] = time.Now().Add(-time.Millisecond)
	still := router.infoRetryAt[0]
	router.mu.Unlock()
	if !time.Now().Before(still) {
		t.Fatal("test invariant: shard 1 must still be inside its cooldown")
	}
	probes1 := calls1.Load()
	rep2 := health.NewReport()
	if _, err := router.Info(health.WithReport(context.Background(), rep2)); err != nil {
		t.Fatal(err)
	}
	// Shard 2 rejoined: its INFO was re-probed despite shard 1 cooling.
	router.mu.Lock()
	ok2 := router.infoOK[1]
	router.mu.Unlock()
	if !ok2 {
		t.Fatal("revived shard 2 not re-probed while shard 1 cools down (router-global cooldown regression)")
	}
	// Shard 1's cooldown was honored: no new probe paid against it, and
	// it is this query's only gap.
	if n := calls1.Load(); n != probes1 {
		t.Fatalf("still-cooling shard 1 re-probed (%d new calls), want 0", n-probes1)
	}
	gaps := rep2.Gaps()
	if len(gaps) != 1 || gaps[0].Shard != "D1/3" {
		t.Fatalf("gaps after partial refresh: %+v, want exactly D1/3", gaps)
	}
}
