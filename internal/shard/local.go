package shard

import (
	"fmt"

	"repro/internal/client"
	"repro/internal/geom"
	"repro/internal/netsim"
	"repro/internal/server"
)

// ServeLocal boots one relation's in-process sharded serving stack: the
// dataset is partitioned with Assign, each partition gets its own server
// (workers goroutines each) and metered remote over link at price, and
// the remotes are wired behind a Router whose scatter parallelism is
// workers. Shard servers and remotes are named "<name>i/n" (plain name
// when n == 1, whose router is the bit-identical pass-through). Both the
// repro session and the experiment harness assemble their sharded
// relations through this one constructor, so the boot sequence cannot
// diverge between them.
func ServeLocal(name string, objs []geom.Object, shards, workers int, link netsim.LinkConfig, price float64, sopts []server.Option, copts []client.Option) (*Router, error) {
	parts := Assign(objs, shards)
	rems := make([]*client.Remote, len(parts))
	fail := func(err error) (*Router, error) {
		for _, r := range rems {
			if r != nil {
				r.Close()
			}
		}
		return nil, err
	}
	for i, part := range parts {
		sname := name
		if len(parts) > 1 {
			sname = fmt.Sprintf("%s%d/%d", name, i+1, len(parts))
		}
		rt := netsim.ServeParallel(server.New(sname, part, sopts...), workers)
		rem, err := client.NewRemote(sname, rt, link, price, copts...)
		if err != nil {
			rt.Close()
			return fail(err)
		}
		rems[i] = rem
	}
	router, err := NewRouter(name, rems, WithParallelism(workers))
	if err != nil {
		return fail(err)
	}
	return router, nil
}
