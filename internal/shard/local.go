package shard

import (
	"fmt"
	"time"

	"repro/internal/client"
	"repro/internal/geom"
	"repro/internal/health"
	"repro/internal/netsim"
	"repro/internal/server"
)

// LocalConfig parameterizes ServeLocal's in-process fleet.
type LocalConfig struct {
	// Shards is the partition count (< 1 means 1: unsharded).
	Shards int
	// Replicas is the number of identical servers per shard (< 1 means
	// 1: no replication). With more than one, each shard is wired behind
	// a ReplicaSet instead of a bare Remote.
	Replicas int
	// Workers sizes each server's goroutine pool and the router's
	// scatter parallelism (< 1 means 1).
	Workers int
	// HedgePct enables percentile-triggered hedged reads on each
	// replica set when > 0 (ignored with a single replica).
	HedgePct float64
	// TreeFanout, when >= 2, stacks the shard endpoints under a
	// hierarchical aggregation tree (NewTree) with that fanout per
	// interior node instead of the flat scatter. Interior uplinks share
	// the leaf Link shape and Price. 0 (or a fanout no smaller than the
	// shard count) keeps the flat router.
	TreeFanout int
	// Link and Price configure every device↔server meter identically.
	Link  netsim.LinkConfig
	Price float64
	// ServerOpts and ClientOpts apply to every server and remote.
	ServerOpts []server.Option
	ClientOpts []client.Option
	// Health, when non-nil, arms a circuit breaker per replica endpoint
	// in that registry: known-dead replicas are skipped before a probe is
	// wasted and recovered by the registry's background INFO probers.
	// Nil leaves the fleet breaker-free (bit-identical to before).
	Health *health.Registry
	// Budget, when > 0, bounds each ReplicaSet probe end to end:
	// retries, hedges, and failovers all draw from this one deadline
	// instead of stacking flat per-try timeouts.
	Budget time.Duration
	// WrapTransport, when non-nil, wraps each replica server's transport
	// (named as the replica endpoint) before the metered link is layered
	// on top — the chaos harness injects kill switches and lossy links
	// here, so faulted requests are still charged like real ones.
	WrapTransport func(name string, rt netsim.RoundTripper) netsim.RoundTripper
}

// ServeLocal boots one relation's in-process sharded serving stack: the
// dataset is partitioned with Assign, each partition gets cfg.Replicas
// identical servers (cfg.Workers goroutines each) with a metered remote
// over cfg.Link at cfg.Price, and the endpoints are wired behind a
// Router whose scatter parallelism is cfg.Workers. Shard servers are
// named "<name>i/n" (plain name when n == 1, whose router is the
// bit-identical pass-through); replica servers append "-rj", e.g.
// "R1/2-r2". Both the repro session and the experiment harness assemble
// their sharded relations through this one constructor, so the boot
// sequence cannot diverge between them.
func ServeLocal(name string, objs []geom.Object, cfg LocalConfig) (*Router, error) {
	shards := max(cfg.Shards, 1)
	replicas := max(cfg.Replicas, 1)
	workers := max(cfg.Workers, 1)
	parts := Assign(objs, shards)
	eps := make([]Endpoint, len(parts))
	fail := func(err error) (*Router, error) {
		for _, e := range eps {
			if e != nil {
				e.Close()
			}
		}
		return nil, err
	}
	boot := func(sname string, part []geom.Object) (*client.Remote, error) {
		var rt netsim.RoundTripper = netsim.ServeParallel(server.New(sname, part, cfg.ServerOpts...), workers)
		if cfg.WrapTransport != nil {
			rt = cfg.WrapTransport(sname, rt)
		}
		rem, err := client.NewRemote(sname, rt, cfg.Link, cfg.Price, cfg.ClientOpts...)
		if err != nil {
			rt.Close()
			return nil, err
		}
		return rem, nil
	}
	for i, part := range parts {
		sname := name
		if len(parts) > 1 {
			sname = fmt.Sprintf("%s%d/%d", name, i+1, len(parts))
		}
		if replicas == 1 {
			rem, err := boot(sname, part)
			if err != nil {
				return fail(err)
			}
			eps[i] = rem
			continue
		}
		rems := make([]*client.Remote, 0, replicas)
		for j := 0; j < replicas; j++ {
			rem, err := boot(fmt.Sprintf("%s-r%d", sname, j+1), part)
			if err != nil {
				for _, r := range rems {
					r.Close()
				}
				return fail(err)
			}
			rems = append(rems, rem)
		}
		// Seeding the rotation by shard index keeps replica selection a
		// pure function of the boot layout, so sequential runs replay the
		// exact same request schedule (the goldens depend on it).
		rset, err := NewReplicaSet(sname, rems, ReplicaConfig{
			HedgePct: cfg.HedgePct,
			Seed:     int64(i),
			Health:   cfg.Health,
			Budget:   cfg.Budget,
		})
		if err != nil {
			for _, r := range rems {
				r.Close()
			}
			return fail(err)
		}
		eps[i] = rset
	}
	var router *Router
	var err error
	if cfg.TreeFanout >= 2 {
		router, err = NewTree(name, eps, cfg.TreeFanout, cfg.Link, WithParallelism(workers))
	} else {
		router, err = NewRouter(name, eps, WithParallelism(workers))
	}
	if err != nil {
		return fail(err)
	}
	return router, nil
}
