package shard

import (
	"cmp"
	"context"
	"fmt"
	"slices"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/netsim"
	"repro/internal/server"
)

// newLocalOracle serves objs from one plain unsharded in-process server —
// the reference every ServeLocal layout must agree with.
func newLocalOracle(t *testing.T, objs []geom.Object) *client.Remote {
	t.Helper()
	tr := netsim.Serve(server.New("D", objs, server.PublishIndex()))
	oracle, err := client.NewRemote("D", tr, netsim.DefaultLink(), 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { oracle.Close() })
	return oracle
}

func samePairs(t *testing.T, what string, got, want []geom.Pair) {
	t.Helper()
	order := func(a, b geom.Pair) int {
		if c := cmp.Compare(a.RID, b.RID); c != 0 {
			return c
		}
		return cmp.Compare(a.SID, b.SID)
	}
	slices.SortFunc(got, order)
	slices.SortFunc(want, order)
	if !slices.Equal(got, want) {
		t.Fatalf("%s: %d pairs, want %d (or contents differ)", what, len(got), len(want))
	}
}

// TestServeLocalMatchesOracle drives the shared boot constructor across
// the shards × replicas grid and checks every probe type the device
// issues against a single unsharded server. This is the seam both the
// repro session and the experiment harness assemble their fleets
// through, so a divergence here breaks every replicated consumer at once.
func TestServeLocalMatchesOracle(t *testing.T) {
	objs := dataset.GaussianClusters(400, 4, 500, dataset.World, 21)
	oracle := newLocalOracle(t, objs)
	ctx := context.Background()
	w := geom.R(1000, 1000, 6000, 6000)
	p := geom.Pt(4000, 4000)
	const eps = 400

	for _, tc := range []struct{ shards, replicas int }{
		{1, 1}, {1, 2}, {2, 1}, {2, 2}, {3, 3},
	} {
		t.Run(fmt.Sprintf("shards%d-replicas%d", tc.shards, tc.replicas), func(t *testing.T) {
			router, err := ServeLocal("D", objs, LocalConfig{
				Shards: tc.shards, Replicas: tc.replicas, Workers: 2,
				Link: netsim.DefaultLink(), Price: 1,
				ServerOpts: []server.Option{server.PublishIndex()},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer router.Close()
			if router.Name() != "D" || router.NumShards() != max(tc.shards, 1) {
				t.Fatalf("router %q over %d shards, want D over %d",
					router.Name(), router.NumShards(), tc.shards)
			}

			info, err := router.Info(ctx)
			if err != nil {
				t.Fatal(err)
			}
			oinfo, err := oracle.Info(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if info.Count != oinfo.Count {
				t.Fatalf("INFO count %d, oracle %d", info.Count, oinfo.Count)
			}

			cnt, err := router.Count(ctx, w)
			if err != nil {
				t.Fatal(err)
			}
			ocnt, err := oracle.Count(ctx, w)
			if err != nil {
				t.Fatal(err)
			}
			if cnt != ocnt {
				t.Fatalf("COUNT %d, oracle %d", cnt, ocnt)
			}

			win, err := router.Window(ctx, w)
			if err != nil {
				t.Fatal(err)
			}
			owin, err := oracle.Window(ctx, w)
			if err != nil {
				t.Fatal(err)
			}
			sameObjects(t, "WINDOW", win, owin)

			rng, err := router.Range(ctx, p, eps)
			if err != nil {
				t.Fatal(err)
			}
			orng, err := oracle.Range(ctx, p, eps)
			if err != nil {
				t.Fatal(err)
			}
			sameObjects(t, "RANGE", rng, orng)

			rc, err := router.RangeCount(ctx, p, eps)
			if err != nil {
				t.Fatal(err)
			}
			if rc != len(orng) {
				t.Fatalf("RANGECOUNT %d, oracle %d", rc, len(orng))
			}

			pts := []geom.Point{p, geom.Pt(2000, 2000), geom.Pt(6500, 1500)}
			bks, err := router.BucketRange(ctx, pts, eps)
			if err != nil {
				t.Fatal(err)
			}
			obks, err := oracle.BucketRange(ctx, pts, eps)
			if err != nil {
				t.Fatal(err)
			}
			for i := range pts {
				sameObjects(t, fmt.Sprintf("BUCKETRANGE[%d]", i), bks[i], obks[i])
			}
			bcs, err := router.BucketRangeCount(ctx, pts, eps)
			if err != nil {
				t.Fatal(err)
			}
			for i := range pts {
				if int(bcs[i]) != len(obks[i]) {
					t.Fatalf("BUCKETRANGECOUNT[%d] = %d, oracle %d", i, bcs[i], len(obks[i]))
				}
			}

			probe := objs[:50:50]
			pairs, err := router.UploadJoin(ctx, probe, eps)
			if err != nil {
				t.Fatal(err)
			}
			opairs, err := oracle.UploadJoin(ctx, probe, eps)
			if err != nil {
				t.Fatal(err)
			}
			samePairs(t, "UPLOADJOIN", pairs, opairs)

			mbrs, err := router.LevelMBRs(ctx, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(mbrs) == 0 {
				t.Fatal("LEVELMBRS: published index answered no rectangles")
			}
			match, err := router.MBRMatch(ctx, mbrs[:1], eps)
			if err != nil {
				t.Fatal(err)
			}
			if len(match) == 0 {
				t.Fatal("MBRMATCH against the root MBR matched nothing")
			}
			if _, err := router.AvgArea(ctx, w); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestServeLocalReplicaWiring pins the boot topology itself: shard and
// replica naming, the endpoint types behind the router, the shared
// tariff, and the usage/retry/latency plumbing the accounting and the
// hedging policy hang off.
func TestServeLocalReplicaWiring(t *testing.T) {
	objs := dataset.GaussianClusters(200, 4, 500, dataset.World, 23)
	router, err := ServeLocal("R", objs, LocalConfig{
		Shards: 2, Replicas: 2, Workers: 2, HedgePct: 95,
		Link: netsim.DefaultLink(), Price: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	eps := router.Shards()
	if len(eps) != 2 {
		t.Fatalf("%d endpoints, want 2", len(eps))
	}
	for i, ep := range eps {
		rs, ok := ep.(*ReplicaSet)
		if !ok {
			t.Fatalf("shard %d endpoint is %T, want *ReplicaSet", i, ep)
		}
		wantName := fmt.Sprintf("R%d/2", i+1)
		if rs.Name() != wantName {
			t.Errorf("shard %d named %q, want %q", i, rs.Name(), wantName)
		}
		reps := rs.Replicas()
		if len(reps) != 2 {
			t.Fatalf("shard %d has %d replicas, want 2", i, len(reps))
		}
		for j, rem := range reps {
			if want := fmt.Sprintf("%s-r%d", wantName, j+1); rem.Name() != want {
				t.Errorf("replica named %q, want %q", rem.Name(), want)
			}
		}
		if rs.PricePerByte() != 3 {
			t.Errorf("shard %d tariff %v, want 3", i, rs.PricePerByte())
		}
		if rs.Retries() != 0 || rs.Latency().Len() != 0 {
			t.Errorf("shard %d booted with stale counters: retries %d, latency window %d",
				i, rs.Retries(), rs.Latency().Len())
		}
	}

	// One probe must meter traffic on exactly one replica link of the
	// selected shard, and the set's Usage must be the per-replica sum.
	if _, err := router.Count(context.Background(), dataset.World); err != nil {
		t.Fatal(err)
	}
	for i, ep := range eps {
		rs := ep.(*ReplicaSet)
		var sum int
		for _, rem := range rs.Replicas() {
			sum += rem.Usage().WireBytes
		}
		if got := rs.Usage().WireBytes; got != sum || got == 0 {
			t.Errorf("shard %d usage %d, per-replica sum %d (both must be positive and equal)",
				i, got, sum)
		}
	}

	// ServeLocal with one replica wires bare remotes — the bit-identical
	// pass-through layout the byte goldens compare against.
	plain, err := ServeLocal("R", objs, LocalConfig{
		Shards: 2, Workers: 1, Link: netsim.DefaultLink(), Price: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	for i, ep := range plain.Shards() {
		if _, ok := ep.(*client.Remote); !ok {
			t.Fatalf("unreplicated shard %d endpoint is %T, want *client.Remote", i, ep)
		}
	}
}

// TestReplicaHedgeDelayResolution covers the threshold policy table of
// hedgeDelay: fixed override, unconditional hedge, disabled, and the
// percentile path gated on MinSamples.
func TestReplicaHedgeDelayResolution(t *testing.T) {
	objs := dataset.GaussianClusters(50, 2, 300, dataset.World, 29)
	boot := func(cfg ReplicaConfig) *ReplicaSet {
		t.Helper()
		rems := make([]*client.Remote, 2)
		for j := range rems {
			tr := netsim.Serve(server.New("D", objs))
			rem, err := client.NewRemote("D", tr, netsim.DefaultLink(), 1)
			if err != nil {
				t.Fatal(err)
			}
			rems[j] = rem
		}
		rs, err := NewReplicaSet("D", rems, cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { rs.Close() })
		return rs
	}

	if d, ok := boot(ReplicaConfig{HedgeAfter: time.Second}).hedgeDelay(); !ok || d != time.Second {
		t.Errorf("fixed override: (%v, %v), want (1s, true)", d, ok)
	}
	if d, ok := boot(ReplicaConfig{HedgeAfter: -1}).hedgeDelay(); !ok || d != 0 {
		t.Errorf("always-hedge: (%v, %v), want (0, true)", d, ok)
	}
	if _, ok := boot(ReplicaConfig{}).hedgeDelay(); ok {
		t.Error("hedging disabled, yet hedgeDelay armed")
	}

	pctl := boot(ReplicaConfig{HedgePct: 90, MinSamples: 4})
	if _, ok := pctl.hedgeDelay(); ok {
		t.Error("percentile threshold armed before MinSamples observations")
	}
	for i := 0; i < 4; i++ {
		pctl.Latency().Add(time.Duration(i+1) * time.Millisecond)
	}
	if d, ok := pctl.hedgeDelay(); !ok || d != 4*time.Millisecond {
		t.Errorf("percentile threshold (%v, %v), want (4ms, true)", d, ok)
	}
}
