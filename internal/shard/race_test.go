//go:build race

package shard

// raceEnabled gates allocation-count assertions: the race detector's
// instrumentation allocates, so AllocsPerRun tests are meaningless (and
// fail) under -race.
const raceEnabled = true
