// Package shard splits one logical relation across many dataset servers
// and routes the paper's primitive queries to them, so that the core
// algorithms — written for the one-server-per-relation setting of the
// paper — run unmodified against a horizontally partitioned relation.
//
// The package has two halves:
//
//   - Assignment (this file): a deterministic, overlap-free partitioning
//     of a dataset into n shards. The primary layout is spatial tiling —
//     the dataset bounds are cut into an r×c grid of tiles and every
//     object is assigned by its MBR center, boundary objects landing on
//     exactly one tile via half-open cell arithmetic — with a hash
//     fallback (FNV over the object ID) for degenerate layouts where
//     tiling cannot spread the data.
//
//   - Routing (router.go): a scatter–gather Router implementing the same
//     query surface as client.Remote (core.Probe) over the shard links.
//
// Because the assignment places every object on exactly one shard,
// per-shard COUNT answers are disjoint and their sum is the exact
// unsharded COUNT for any window — the property that keeps the cost
// model's |Rw| and |Sw| estimates (Eq. 2–6) and the pruning decisions
// bit-for-bit explainable on sharded runs.
package shard

import (
	"hash/fnv"

	"repro/internal/geom"
)

// Grid returns the tile grid dimensions (rows × cols) used for n shards:
// the most balanced factorization r*c = n with r <= c, so 4 shards tile
// 2×2, 6 tile 2×3, and a prime n degrades to a 1×n strip.
func Grid(n int) (rows, cols int) {
	if n < 1 {
		return 1, 1
	}
	rows = 1
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			rows = d
		}
	}
	return rows, n / rows
}

// Tiles returns the n spatial tiles covering bounds, row-major from the
// bottom-left, for the Grid(n) layout. Adjacent tiles share edges (closed
// rectangles), so the cover is exhaustive: every point of bounds lies in
// at least one tile, and the tile interiors are pairwise disjoint.
func Tiles(bounds geom.Rect, n int) []geom.Rect {
	rows, cols := Grid(n)
	w, h := bounds.Width(), bounds.Height()
	tiles := make([]geom.Rect, 0, n)
	for row := 0; row < rows; row++ {
		y0 := bounds.MinY + h*float64(row)/float64(rows)
		y1 := bounds.MinY + h*float64(row+1)/float64(rows)
		for col := 0; col < cols; col++ {
			x0 := bounds.MinX + w*float64(col)/float64(cols)
			x1 := bounds.MinX + w*float64(col+1)/float64(cols)
			tiles = append(tiles, geom.Rect{MinX: x0, MinY: y0, MaxX: x1, MaxY: y1})
		}
	}
	return tiles
}

// tileIndex maps a point to exactly one tile of the Grid(n) layout over
// bounds. The cell arithmetic is half-open — a center exactly on an
// interior tile edge belongs to the higher cell — and clamped, so every
// point of bounds (edges included) maps to one valid index. This is the
// overlap-free boundary rule: tiles share edges as rectangles, but no
// object is ever assigned to two of them.
func tileIndex(p geom.Point, bounds geom.Rect, rows, cols int) int {
	col, row := 0, 0
	if w := bounds.Width(); w > 0 {
		col = int((p.X - bounds.MinX) / w * float64(cols))
	}
	if h := bounds.Height(); h > 0 {
		row = int((p.Y - bounds.MinY) / h * float64(rows))
	}
	col = min(max(col, 0), cols-1)
	row = min(max(row, 0), rows-1)
	return row*cols + col
}

// hashIndex is the fallback assignment: FNV-1a over the object ID, mod n.
// It ignores geometry entirely, trading routing locality for guaranteed
// spread on degenerate layouts (coincident centers, zero-extent bounds).
func hashIndex(id uint32, n int) int {
	h := fnv.New32a()
	h.Write([]byte{byte(id), byte(id >> 8), byte(id >> 16), byte(id >> 24)})
	return int(h.Sum32() % uint32(n))
}

// Assign partitions objs into exactly n shards. Every object lands on
// exactly one shard (partitions are disjoint and their union is objs,
// order preserved within each shard). The spatial tiling over the
// dataset's bounds is used when it spreads the data — every tile of the
// layout receives at least one object whenever objs has at least n
// objects — and the hash fallback otherwise, so no shard is left empty
// when the cardinality allows. Assignment is a pure function of
// (objs, n): the same dataset shards identically everywhere, which the
// deterministic byte-accounting goldens rely on.
func Assign(objs []geom.Object, n int) [][]geom.Object {
	if n < 1 {
		n = 1
	}
	parts := make([][]geom.Object, n)
	if n == 1 {
		parts[0] = objs
		return parts
	}
	bounds := objectBounds(objs)
	rows, cols := Grid(n)
	if bounds.Width() > 0 || bounds.Height() > 0 {
		for _, o := range objs {
			i := tileIndex(o.MBR.Center(), bounds, rows, cols)
			parts[i] = append(parts[i], o)
		}
		if len(objs) < n || allNonEmpty(parts) {
			return parts
		}
	}
	// Degenerate layout (all centers coincident, or some tile ended up
	// empty while the cardinality could fill it): fall back to hashing.
	for i := range parts {
		parts[i] = nil
	}
	for _, o := range objs {
		i := hashIndex(o.ID, n)
		parts[i] = append(parts[i], o)
	}
	return parts
}

// objectBounds is the MBR of all object centers — the reference frame of
// the tile layout. (Centers, not full MBRs: assignment is by center, so
// tiling the center space spreads objects evenly even when a few large
// rectangles would stretch the object-MBR bounds.)
func objectBounds(objs []geom.Object) geom.Rect {
	if len(objs) == 0 {
		return geom.Rect{}
	}
	b := geom.RectFromPoint(objs[0].MBR.Center())
	for _, o := range objs[1:] {
		b = b.Union(geom.RectFromPoint(o.MBR.Center()))
	}
	return b
}

func allNonEmpty(parts [][]geom.Object) bool {
	for _, p := range parts {
		if len(p) == 0 {
			return false
		}
	}
	return true
}
