package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bufpool"
	"repro/internal/client"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/wire"
)

// selLog records the order in which replica transports receive requests,
// so tests can observe the selection policy from below.
type selLog struct {
	mu  sync.Mutex
	seq []int
}

func (l *selLog) record(id int) {
	l.mu.Lock()
	l.seq = append(l.seq, id)
	l.mu.Unlock()
}

func (l *selLog) sequence() []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]int(nil), l.seq...)
}

// taggedRT stamps every round trip into a selLog before delegating.
type taggedRT struct {
	inner netsim.RoundTripper
	id    int
	log   *selLog
}

func (rt *taggedRT) RoundTrip(ctx context.Context, req []byte) ([]byte, error) {
	rt.log.record(rt.id)
	return rt.inner.RoundTrip(ctx, req)
}

func (rt *taggedRT) Close() error { return rt.inner.Close() }

// newTestReplicaSet serves objs from n identical replica servers behind
// one ReplicaSet. wrap, when non-nil, intercepts each replica's
// transport (fault injection, selection logging).
func newTestReplicaSet(t testing.TB, objs []geom.Object, n int, cfg ReplicaConfig,
	wrap func(i int, rt netsim.RoundTripper) netsim.RoundTripper, copts ...client.Option) *ReplicaSet {
	t.Helper()
	rems := make([]*client.Remote, n)
	for i := range rems {
		name := fmt.Sprintf("D-r%d", i+1)
		var rt netsim.RoundTripper = netsim.Serve(server.New(name, objs))
		if wrap != nil {
			rt = wrap(i, rt)
		}
		rem, err := client.NewRemote(name, rt, netsim.DefaultLink(), 1, copts...)
		if err != nil {
			t.Fatal(err)
		}
		rems[i] = rem
	}
	rs, err := NewReplicaSet("D", rems, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rs.Close() })
	return rs
}

// TestReplicaSelectionDeterministicAndFair pins the selection policy:
// with hedging off and sequential probes, two same-seed replica sets
// produce identical replica sequences (seeded determinism), the rotation
// is strict round-robin, and over one full rotation every replica serves
// at least once — no starvation.
func TestReplicaSelectionDeterministicAndFair(t *testing.T) {
	objs := dataset.GaussianClusters(120, 3, 600, dataset.World, 11)
	w := dataset.World
	const n, probes = 3, 12
	run := func(seed int64) []int {
		log := &selLog{}
		rs := newTestReplicaSet(t, objs, n, ReplicaConfig{Seed: seed},
			func(i int, rt netsim.RoundTripper) netsim.RoundTripper {
				return &taggedRT{inner: rt, id: i, log: log}
			})
		for k := 0; k < probes; k++ {
			if _, err := rs.Count(context.Background(), w); err != nil {
				t.Fatal(err)
			}
		}
		return log.sequence()
	}
	a, b := run(7), run(7)
	if len(a) != probes {
		t.Fatalf("selection log has %d entries, want %d (no hedge, no failover)", len(a), probes)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed runs diverge at probe %d: replica %d vs %d", i, a[i], b[i])
		}
	}
	served := make([]int, n)
	for i, id := range a {
		served[id]++
		if i > 0 && id != (a[i-1]+1)%n {
			t.Fatalf("probe %d went to replica %d after %d: rotation is not round-robin", i, id, a[i-1])
		}
	}
	for id, c := range served {
		if c == 0 {
			t.Fatalf("replica %d never selected over %d probes: starvation", id, probes)
		}
	}
	if c := run(8); c[0] == a[0] {
		t.Fatalf("seeds 7 and 8 start at the same replica %d: seed does not offset the rotation", c[0])
	}
}

// flakyRT fails round trips while dead is set.
type flakyRT struct {
	inner netsim.RoundTripper
	dead  atomic.Bool
}

var errReplicaDown = errors.New("replica down")

func (rt *flakyRT) RoundTrip(ctx context.Context, req []byte) ([]byte, error) {
	if rt.dead.Load() {
		return nil, errReplicaDown
	}
	return rt.inner.RoundTrip(ctx, req)
}

func (rt *flakyRT) Close() error { return rt.inner.Close() }

// TestReplicaFailover kills one of two replicas outright: every probe
// must still answer correctly via the survivor, the failover counter
// must advance, and killing the survivor too must surface the real
// transport error (not a context cancellation).
func TestReplicaFailover(t *testing.T) {
	objs := dataset.GaussianClusters(120, 3, 600, dataset.World, 12)
	w := dataset.World
	flaky := make([]*flakyRT, 2)
	rs := newTestReplicaSet(t, objs, 2, ReplicaConfig{},
		func(i int, rt netsim.RoundTripper) netsim.RoundTripper {
			flaky[i] = &flakyRT{inner: rt}
			return flaky[i]
		})
	want, err := rs.Count(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	flaky[0].dead.Store(true)
	for k := 0; k < 6; k++ {
		got, err := rs.Count(context.Background(), w)
		if err != nil {
			t.Fatalf("probe %d with one dead replica: %v", k, err)
		}
		if got != want {
			t.Fatalf("probe %d: count %d via failover, want %d", k, got, want)
		}
	}
	st := rs.Stats()
	if st.Failovers == 0 {
		t.Fatal("one replica dead for 6 probes, yet Failovers == 0")
	}
	if st.Hedges != 0 {
		t.Fatalf("hedging is off, yet %d hedges launched", st.Hedges)
	}
	flaky[1].dead.Store(true)
	if _, err := rs.Count(context.Background(), w); !errors.Is(err, errReplicaDown) {
		t.Fatalf("both replicas dead: got %v, want the transport's own error", err)
	}
}

// gatePair synchronizes a deterministic hedge race: the slow replica
// never answers (it parks until cancelled), and the fast replica's reply
// is gated until the slow replica's request has been charged — so every
// probe's byte accounting is schedule-independent.
type gatePair struct {
	slowCalls atomic.Int64
	fastCalls atomic.Int64
}

type slowGateRT struct{ g *gatePair }

func (rt *slowGateRT) RoundTrip(ctx context.Context, req []byte) ([]byte, error) {
	rt.g.slowCalls.Add(1)
	<-ctx.Done()
	return nil, ctx.Err()
}

func (rt *slowGateRT) Close() error { return nil }

type fastGateRT struct {
	inner netsim.RoundTripper
	g     *gatePair
}

func (rt *fastGateRT) RoundTrip(ctx context.Context, req []byte) ([]byte, error) {
	n := rt.fastRound()
	for rt.g.slowCalls.Load() < n {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		default:
			time.Sleep(50 * time.Microsecond)
		}
	}
	return rt.inner.RoundTrip(ctx, req)
}

func (rt *fastGateRT) fastRound() int64 { return rt.g.fastCalls.Add(1) }

func (rt *fastGateRT) Close() error { return rt.inner.Close() }

// newGatedHedgeSet builds the deterministic always-hedge fixture:
// replica 1 answers (after the gate), replica 2 parks until cancelled.
func newGatedHedgeSet(t testing.TB, objs []geom.Object) *ReplicaSet {
	t.Helper()
	g := &gatePair{}
	return newTestReplicaSet(t, objs, 2, ReplicaConfig{HedgeAfter: -1},
		func(i int, rt netsim.RoundTripper) netsim.RoundTripper {
			if i == 1 {
				rt.Close() // the parked replica never uses its server
				return &slowGateRT{g: g}
			}
			return &fastGateRT{inner: rt, g: g}
		})
}

// TestReplicaHedgeAccountedExactlyOnce drives the always-hedge fixture
// through a rotation of probes and pins the hedge bookkeeping: every
// probe launches exactly one hedge, every hedge resolves exactly once
// (Hedges == HedgeWins + HedgeLosses), and the fastest-of-two reply is
// consumed exactly once — the count answer never doubles.
func TestReplicaHedgeAccountedExactlyOnce(t *testing.T) {
	objs := dataset.GaussianClusters(120, 3, 600, dataset.World, 13)
	w := dataset.World
	rs := newGatedHedgeSet(t, objs)
	oracle := 0
	for _, o := range objs {
		if o.MBR.Intersects(w) {
			oracle++
		}
	}
	const probes = 8
	for k := 0; k < probes; k++ {
		got, err := rs.Count(context.Background(), w)
		if err != nil {
			t.Fatalf("probe %d: %v", k, err)
		}
		if got != oracle {
			t.Fatalf("probe %d: count %d, oracle %d — a doubled value means the race merged both replies", k, got, oracle)
		}
	}
	st := rs.Stats()
	if st.Hedges != probes {
		t.Fatalf("launched %d hedges over %d always-hedge probes", st.Hedges, probes)
	}
	if st.Hedges != st.HedgeWins+st.HedgeLosses {
		t.Fatalf("hedge ledger imbalanced: %d launched, %d wins + %d losses", st.Hedges, st.HedgeWins, st.HedgeLosses)
	}
	// The rotation alternates the parked replica between primary and
	// hedge roles, so wins and losses split the probes exactly in half.
	if st.HedgeWins != probes/2 || st.HedgeLosses != probes/2 {
		t.Fatalf("wins/losses = %d/%d, want %d/%d under the alternating fixture",
			st.HedgeWins, st.HedgeLosses, probes/2, probes/2)
	}
}

// TestReplicaHedgeGoldenBytes pins the hedged byte accounting of the
// deterministic fixture: the replica set's merged usage is exactly the
// per-replica sum, the hedged column holds exactly the speculative
// attempts' frames, and primary traffic (WireBytes − HedgedWireBytes) is
// exactly what an unhedged, unreplicated run of the same probes meters.
func TestReplicaHedgeGoldenBytes(t *testing.T) {
	objs := dataset.GaussianClusters(120, 3, 600, dataset.World, 13)
	w := dataset.World
	rs := newGatedHedgeSet(t, objs)
	const probes = 8
	for k := 0; k < probes; k++ {
		if _, err := rs.Count(context.Background(), w); err != nil {
			t.Fatalf("probe %d: %v", k, err)
		}
	}
	use := rs.Usage()
	perLink := rs.Replicas()[0].Usage().Add(rs.Replicas()[1].Usage())
	if use != perLink {
		t.Fatalf("merged usage %+v differs from per-replica sum %+v", use, perLink)
	}
	oracle, err := rs.Count(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	// Exact per-frame costs under Eq. 1, derived from the wire encoding
	// itself so the golden arithmetic is self-documenting:
	link := netsim.DefaultLink()
	reqWire := link.TB(len(wire.AppendCount(nil, w)))
	respWire := link.TB(len(wire.AppendCountReply(nil, int64(oracle))))
	// The rotation alternates roles each probe. When the fast replica is
	// primary, it carries a plain request+reply and the parked replica
	// charges one hedged request-only frame (its reply never exists —
	// Metered charges responses only on arrival). When the parked replica
	// is primary, it charges a plain request-only frame and the fast
	// replica carries a hedged request+reply that wins the race.
	wantTotal := probes * (reqWire + respWire + reqWire)
	wantHedged := probes/2*reqWire + probes/2*(reqWire+respWire)
	if use.WireBytes != wantTotal {
		t.Errorf("total wire bytes %d, golden %d", use.WireBytes, wantTotal)
	}
	if use.HedgedWireBytes != wantHedged {
		t.Errorf("hedged wire bytes %d, golden %d", use.HedgedWireBytes, wantHedged)
	}
	if want := probes/2 + probes/2*2; use.HedgedMessages != want {
		t.Errorf("hedged messages %d, golden %d", use.HedgedMessages, want)
	}
	// Primary traffic decomposes to the unhedged bill: the full exchange
	// of every probe plus the parked primaries' orphaned request frames.
	wantPrimary := probes/2*(reqWire+respWire) + probes/2*reqWire
	if primary := use.WireBytes - use.HedgedWireBytes; primary != wantPrimary {
		t.Errorf("primary (non-hedged) wire bytes %d, golden %d", primary, wantPrimary)
	}
}

// TestReplicaSoloPassThrough pins the single-replica wiring: a 1-replica
// set delegates verbatim, so its metered bytes are bit-identical to a
// bare remote issuing the same probes, with zero replica-layer activity.
func TestReplicaSoloPassThrough(t *testing.T) {
	objs := dataset.GaussianClusters(120, 3, 600, dataset.World, 14)
	w := dataset.World
	rs := newTestReplicaSet(t, objs, 1, ReplicaConfig{HedgePct: 99}, nil)

	tr := netsim.Serve(server.New("D", objs))
	direct, err := client.NewRemote("D", tr, netsim.DefaultLink(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()

	ctx := context.Background()
	if _, err := rs.Count(ctx, w); err != nil {
		t.Fatal(err)
	}
	if _, err := direct.Count(ctx, w); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Window(ctx, w); err != nil {
		t.Fatal(err)
	}
	if _, err := direct.Window(ctx, w); err != nil {
		t.Fatal(err)
	}
	if got, want := rs.Usage(), direct.Usage(); got != want {
		t.Fatalf("1-replica set metered %+v, direct remote %+v", got, want)
	}
	if st := rs.Stats(); st != (ReplicaStats{}) {
		t.Fatalf("1-replica set recorded replica-layer activity: %+v", st)
	}
}

// TestReplicaBatchFailover drives the batched path: pre-encoded frames
// split round-robin across the replicas' batchers, and when the replica
// holding a frame dies, the frame's private copy is re-submitted to the
// survivor — every call still completes with the right answer.
func TestReplicaBatchFailover(t *testing.T) {
	objs := dataset.GaussianClusters(150, 3, 600, dataset.World, 15)
	w := dataset.World
	for _, killFirst := range []bool{false, true} {
		name := "healthy"
		if killFirst {
			name = "kill-primary"
		}
		t.Run(name, func(t *testing.T) {
			flaky := make([]*flakyRT, 2)
			rs := newTestReplicaSet(t, objs, 2, ReplicaConfig{},
				func(i int, rt netsim.RoundTripper) netsim.RoundTripper {
					flaky[i] = &flakyRT{inner: rt}
					return flaky[i]
				}, client.WithBatch(client.BatchConfig{MaxBatch: 4}))
			want, err := rs.Count(context.Background(), w)
			if err != nil {
				t.Fatal(err)
			}
			if killFirst {
				flaky[0].dead.Store(true)
				flaky[1].dead.Store(false)
			}
			const frames = 6
			reqs := make([][]byte, frames)
			for i := range reqs {
				reqs[i] = wire.AppendCount(bufpool.Get(), w)
			}
			calls := rs.GoBatch(context.Background(), reqs)
			rs.Flush()
			for i, c := range calls {
				got, err := c.Count()
				if err != nil {
					t.Fatalf("frame %d: %v", i, err)
				}
				if got != want {
					t.Fatalf("frame %d: count %d, want %d", i, got, want)
				}
			}
			st := rs.Stats()
			if killFirst && st.Failovers == 0 {
				t.Fatal("primary replica dead, yet no batched frame failed over")
			}
			if !killFirst && st.Failovers != 0 {
				t.Fatalf("healthy replicas, yet %d failovers", st.Failovers)
			}
		})
	}
}
