// Package plan is the online cost-based planner: it scores every
// candidate physical operator for a join window with the §3.1 cost model
// (internal/costmodel), hydrated from *live* observations instead of
// static defaults — the measured link configuration and RTT of each
// metered link (netsim.LinkSnapshot), retry rates folded into effective
// per-byte tariffs, per-shard skew from INFO, and measured quadrant
// counts sharpening the uniformity assumption of Eq. (3).
//
// The planner is deliberately decoupled from the execution engine
// (internal/core imports this package, never the reverse): it consumes a
// plain Observations value and returns a scored Decision. The engine's
// Auto algorithm turns observation phases into Observations, commits the
// cheapest candidate, and calls back between phases (NLSJRemainder) to
// decide mid-join re-plans.
package plan

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/costmodel"
	"repro/internal/geom"
	"repro/internal/netsim"
	"repro/internal/rtree"
	"repro/internal/wire"
)

// Op identifies one candidate physical operator.
type Op int

// Candidate operators.
const (
	// OpHBSJ downloads both windows and joins on the device (Eq. 2).
	OpHBSJ Op = iota
	// OpNLSJR is the nested-loop join with R as the outer relation (Eq. 4/6).
	OpNLSJR
	// OpNLSJS is the nested-loop join with S as the outer relation.
	OpNLSJS
	// OpGrid splits the window into its quadrants once and applies the
	// best physical operator per surviving quadrant (COUNT pruning).
	OpGrid
	// OpPartition is adaptive recursive partitioning driven by density
	// bitmaps (SrJoin's strategy, §4.2), seeded with the measured
	// quadrants.
	OpPartition
	// OpSemiJoin is the cooperative index-publishing semi-join (§5.3).
	OpSemiJoin
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpHBSJ:
		return "hbsj"
	case OpNLSJR:
		return "nlsj-outer-R"
	case OpNLSJS:
		return "nlsj-outer-S"
	case OpGrid:
		return "grid"
	case OpPartition:
		return "partition"
	case OpSemiJoin:
		return "semijoin"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// LinkObs is the live state of one metered link, assembled from the
// lock-free stats observer (netsim.LinkStats) and the endpoint's meter.
type LinkObs struct {
	// Config is the link's current physical parameters (MTU, BH) — fed to
	// Eq. (1) instead of a static default.
	Config netsim.LinkConfig
	// RTT is the smoothed round-trip time measured on the link; zero when
	// no sample has been observed yet.
	RTT time.Duration
	// Samples is the number of RTT observations behind the estimate.
	Samples int64
	// Price is the advertised per-byte tariff.
	Price float64
	// Queries and Retries are the endpoint's cumulative query and
	// re-issued-attempt counters; their ratio inflates the effective
	// tariff (a retried request pays for its failed attempts too).
	Queries, Retries int64
}

// effectivePrice is the per-useful-byte tariff after folding in the
// link's measured retry rate: re-issued attempts are metered, so a link
// retrying r% of its queries costs (1+r) per byte that helps the join.
func (l LinkObs) effectivePrice() float64 {
	price := l.Price
	if price <= 0 {
		price = 1
	}
	if l.Queries > 0 && l.Retries > 0 {
		rate := float64(l.Retries) / float64(l.Queries)
		if rate > 3 {
			rate = 3 // clamp: a pathological link should not zero out a candidate
		}
		price *= 1 + rate
	}
	return price
}

// Observations is everything the planner knows about a join when a plan
// (or re-plan) is requested. Zero-valued optional fields mean "not
// measured".
type Observations struct {
	// Window is the effective query window.
	Window geom.Rect
	// NR and NS are the window's measured cardinalities.
	NR, NS int
	// Eps is the distance threshold (0 for intersection).
	Eps float64
	// Iceberg marks iceberg semantics (no semi-join candidate).
	Iceberg bool
	// CountProbeR marks iceberg runs whose R-outer probes are aggregate
	// counts (Eq. 7 replies instead of object streams).
	CountProbeR bool
	// AvgAreaR and AvgAreaS are mean object-MBR areas (0 for points).
	AvgAreaR, AvgAreaS float64
	// TreeHeightR and TreeHeightS are the advertised R-tree heights (0 =
	// index not published; disables the semi-join candidate).
	TreeHeightR, TreeHeightS int32
	// WholeSpace reports that the window covers both datasets (required
	// by the semi-join candidate).
	WholeSpace bool
	// Buffer is the device capacity in objects.
	Buffer int
	// Bucket enables the bucket-submission NLSJ variants (Eq. 6).
	Bucket bool
	// LinkR and LinkS are the live link observations.
	LinkR, LinkS LinkObs
	// QuadR and QuadS are measured quadrant counts; nil when the observe
	// phase has not (yet) paid for them.
	QuadR, QuadS *[4]int
	// SkewR and SkewS are peak-to-mean per-shard count ratios from the
	// routers' INFO metadata (1 = even or unsharded). A free density
	// prior: it costs no queries, the INFO round trips already happened.
	SkewR, SkewS float64
}

// quadOf returns the side's quadrant counts, estimating a uniform split
// when they were not measured.
func quadOf(q *[4]int, n int) [4]int {
	if q != nil {
		return *q
	}
	s := n / 4
	return [4]int{s, s, s, n - 3*s}
}

// densityFactor is the measured peak-to-mean density ratio of one side:
// from quadrant counts when available, else the per-shard skew prior.
func densityFactor(q *[4]int, n int, skew float64) float64 {
	if q != nil && n > 0 {
		maxq := 0
		for _, v := range q {
			if v > maxq {
				maxq = v
			}
		}
		f := float64(maxq) * 4 / float64(n)
		if f < 1 {
			f = 1
		}
		return f
	}
	if skew > 1 {
		return skew
	}
	return 1
}

// Candidate is one scored operator.
type Candidate struct {
	Op Op
	// Cost is the decision score: effective-tariff-priced wire bytes plus
	// the planner's optional latency term (TimeWeight).
	Cost float64
	// Bytes is the unpriced wire-byte estimate (Eq. 1 totals).
	Bytes float64
	// Queries is the estimated uplink request count, the RTT multiplier.
	Queries float64
	// Feasible reports whether the operator can run at all here.
	Feasible bool
	// Note explains the estimate (assumptions, density factor applied).
	Note string
}

// Decision is the outcome of one Choose call.
type Decision struct {
	// Chosen is the committed candidate (cheapest feasible).
	Chosen Candidate
	// Candidates is the full scored table, cheapest feasible first.
	Candidates []Candidate
	// Params is the hydrated cost model the scores were computed with.
	Params costmodel.Params
	// DensityR and DensityS are the density factors applied per side.
	DensityR, DensityS float64
}

// Planner scores candidates. The zero value is ready to use.
type Planner struct {
	// TimeWeight converts estimated latency into cost units: each
	// candidate's score gains TimeWeight × (estimated queries × measured
	// RTT, in seconds). 0 (the default) reproduces the paper's objective —
	// transferred bytes/money only — with RTT still reported for
	// visibility.
	TimeWeight float64
	// CommitMargin is the factor by which the cheapest candidate must
	// undercut the best partition-family alternative for the engine to
	// commit without paying for quadrant statistics first. 0 means 1.5.
	CommitMargin float64
	// ReplanMargin is the factor by which a mid-join alternative must
	// undercut the committed plan's remaining cost before the engine
	// switches operators. 0 means 1.3.
	ReplanMargin float64
}

func (p Planner) commitMargin() float64 {
	if p.CommitMargin <= 0 {
		return 1.5
	}
	return p.CommitMargin
}

// ReplanFactor returns the configured (or default) re-plan margin.
func (p Planner) ReplanFactor() float64 {
	if p.ReplanMargin <= 0 {
		return 1.3
	}
	return p.ReplanMargin
}

// Hydrate assembles the cost-model parameters from live observations:
// the measured link configuration, wire-derived record sizes, and
// retry-rate-inflated effective tariffs.
func (p Planner) Hydrate(obs Observations) costmodel.Params {
	link := obs.LinkR.Config
	if link.MTU <= link.HeaderBytes || link.HeaderBytes <= 0 {
		link = obs.LinkS.Config
	}
	if link.MTU <= link.HeaderBytes || link.HeaderBytes <= 0 {
		link = netsim.DefaultLink()
	}
	return costmodel.Params{
		Link:   link,
		BQ:     costmodel.BQWire,
		BA:     costmodel.BAWire,
		BObj:   costmodel.BObjWire,
		PriceR: obs.LinkR.effectivePrice(),
		PriceS: obs.LinkS.effectivePrice(),
		Buffer: obs.Buffer,
		Bucket: obs.Bucket,
	}
}

// baseStats builds the model statistics for the whole window.
func baseStats(obs Observations) costmodel.Stats {
	return costmodel.Stats{
		W:           obs.Window,
		NR:          obs.NR,
		NS:          obs.NS,
		Eps:         obs.Eps,
		AvgAreaR:    obs.AvgAreaR,
		AvgAreaS:    obs.AvgAreaS,
		CountProbeR: obs.CountProbeR,
	}
}

// rtt returns the representative round-trip time for latency estimates:
// the slower of the two measured links (a probe loop is bottlenecked by
// its own link, and the planner does not know the per-candidate split).
func rtt(obs Observations) time.Duration {
	r := obs.LinkR.RTT
	if obs.LinkS.RTT > r {
		r = obs.LinkS.RTT
	}
	return r
}

// Choose scores every applicable candidate under the hydrated model and
// returns the cheapest feasible one. With measured quadrant counts the
// partition-family candidates (OpGrid, OpPartition) are scored from the
// real distribution; without them they fall back to the uniformity
// assumption, exactly like MobiJoin's Eq. (8).
func (p Planner) Choose(obs Observations) Decision {
	prm := p.Hydrate(obs)
	unit := prm
	unit.PriceR, unit.PriceS = 1, 1

	dR := densityFactor(obs.QuadR, obs.NR, obs.SkewR)
	dS := densityFactor(obs.QuadS, obs.NS, obs.SkewS)

	base := baseStats(obs)
	// NLSJ inner-side densities: a probe's reply grows with the *inner*
	// dataset's clustering, so C2 (inner S) takes dS and C3 takes dR.
	stC2 := base
	stC2.DensityFactor = dS
	stC3 := base
	stC3.DensityFactor = dR

	var cands []Candidate
	add := func(op Op, cost, bytes, queries float64, note string) {
		cands = append(cands, Candidate{
			Op: op, Cost: cost, Bytes: bytes, Queries: queries,
			Feasible: !math.IsInf(cost, 1), Note: note,
		})
	}

	add(OpHBSJ, prm.C1(base), unit.C1(base), 2, "download both, join on device")
	add(OpNLSJR, prm.C2(stC2), unit.C2(stC2), nlsjQueries(obs, obs.NR),
		fmt.Sprintf("outer R, inner density ×%.1f", dS))
	add(OpNLSJS, prm.C3(stC3), unit.C3(stC3), nlsjQueries(obs, obs.NS),
		fmt.Sprintf("outer S, inner density ×%.1f", dR))

	qr, qs := quadOf(obs.QuadR, obs.NR), quadOf(obs.QuadS, obs.NS)
	measured := obs.QuadR != nil && obs.QuadS != nil
	gridNote, partNote := "uniform split assumed", "uniform split assumed"
	if measured {
		gridNote, partNote = "measured quadrants", "measured quadrants"
	}
	gamma := colocation(qr, qs, obs.NR, obs.NS, measured)
	gc, gb, gq := gridEstimate(prm, unit, obs, qr, qs, measured)
	add(OpGrid, gc, gb, gq, gridNote)
	pc, pb, pq := partitionEstimate(prm, unit, obs, qr, qs, measured, dR, dS, gamma)
	if measured {
		partNote = fmt.Sprintf("measured quadrants, colocation %.2f", gamma)
	}
	add(OpPartition, pc, pb, pq, partNote)

	if obs.TreeHeightR > 0 && obs.TreeHeightS > 0 && obs.WholeSpace && !obs.Iceberg {
		sc, sb := semiJoinEstimate(prm, unit, obs)
		add(OpSemiJoin, sc, sb, 3, "index-publishing relay")
	}

	// Latency term: estimated request count × measured RTT, weighted.
	lat := rtt(obs).Seconds()
	if p.TimeWeight > 0 && lat > 0 {
		for i := range cands {
			cands[i].Cost += p.TimeWeight * lat * cands[i].Queries
		}
	}

	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].Feasible != cands[j].Feasible {
			return cands[i].Feasible
		}
		if cands[i].Cost != cands[j].Cost {
			return cands[i].Cost < cands[j].Cost
		}
		// Equal estimated cost: fewer round trips wins — on a half-duplex
		// link every query is dead air the estimate does not price.
		return cands[i].Queries < cands[j].Queries
	})
	return Decision{
		Chosen:     cands[0],
		Candidates: cands,
		Params:     prm,
		DensityR:   dR,
		DensityS:   dS,
	}
}

// CommitsWithoutStats reports whether the decision's winner undercuts
// every partition-family alternative by the commit margin: when it does,
// measuring quadrant statistics cannot plausibly change the choice and
// the engine commits immediately (Eq. 10's principle — statistics must
// cost less than they can save).
func (p Planner) CommitsWithoutStats(d Decision) bool {
	if d.Chosen.Op == OpGrid || d.Chosen.Op == OpPartition {
		return false
	}
	margin := p.commitMargin()
	for _, c := range d.Candidates {
		if !c.Feasible || (c.Op != OpGrid && c.Op != OpPartition) {
			continue
		}
		if d.Chosen.Cost*margin > c.Cost {
			return false
		}
	}
	return true
}

// nlsjQueries estimates the uplink requests of an NLSJ with the given
// outer cardinality: the outer window query plus one probe per outer
// object, or per bucket of Buffer objects under bucket submission.
func nlsjQueries(obs Observations, outer int) float64 {
	if obs.Bucket && obs.Buffer > 0 {
		return 1 + math.Ceil(float64(outer)/float64(obs.Buffer))
	}
	return 1 + float64(outer)
}

// subStats builds per-quadrant statistics assuming uniformity inside the
// quadrant (the measured counts already capture the coarse skew).
func subStats(obs Observations, w geom.Rect, nr, ns int) costmodel.Stats {
	return costmodel.Stats{
		W: w, NR: nr, NS: ns, Eps: obs.Eps,
		AvgAreaR: obs.AvgAreaR, AvgAreaS: obs.AvgAreaS,
		CountProbeR: obs.CountProbeR,
	}
}

// bestPhysical returns the cheapest operator cost for a leaf window,
// splitting recursively (with the aggregate-query overhead of the split)
// when HBSJ does not fit and NLSJ is dearer than partitioning deeper.
func bestPhysical(prm costmodel.Params, obs Observations, st costmodel.Stats, depth int) float64 {
	c1 := prm.C1(st)
	c2 := prm.C2(st)
	c3 := prm.C3(st)
	best := math.Min(c1, math.Min(c2, c3))
	if depth <= 0 || st.NR+st.NS == 0 {
		return best
	}
	// One more split: eight aggregate queries, four uniform subwindows.
	sub := subStats(obs, st.W.Quadrant(0), st.NR/4, st.NS/4)
	split := 8*prm.Taq()*avg(prm) + 4*bestPhysical(prm, obs, sub, depth-1)
	return math.Min(best, split)
}

func avg(prm costmodel.Params) float64 { return (prm.PriceR + prm.PriceS) / 2 }

// gridEstimate scores OpGrid: one level of quadrant pruning, then the
// best physical operator per surviving quadrant. With measured quadrant
// counts the aggregate queries are already paid for (sunk by the observe
// phase); under the uniform assumption they are charged.
func gridEstimate(prm, unit costmodel.Params, obs Observations, qr, qs [4]int, measured bool) (cost, bytes, queries float64) {
	quads := obs.Window.Quadrants()
	if !measured {
		agg := 8 * prm.Taq() * avg(prm)
		cost += agg
		bytes += 8 * unit.Taq()
		queries += 8
	}
	for i, q := range quads {
		if qr[i] == 0 || qs[i] == 0 {
			continue
		}
		st := subStats(obs, q, qr[i], qs[i])
		cost += bestPhysical(prm, obs, st, 3)
		bytes += bestPhysical(unit, obs, st, 3)
		queries += 2 + float64(min(qr[i], qs[i]))/4
	}
	return cost, bytes, queries
}

// colocation measures how much the two sides' mass coincides across the
// measured quadrants: 4·Σ qr[i]·qs[i] / (NR·NS). Uniform or independent
// distributions score ≈1, perfectly co-located clusters approach 4, and
// clusters sitting in different quadrants fall below 1 — the regime where
// recursive partitioning prunes almost everything, because one side's
// dense cells are the other side's empty ones.
func colocation(qr, qs [4]int, nr, ns int, measured bool) float64 {
	if !measured || nr == 0 || ns == 0 {
		return 1
	}
	var dot float64
	for i := range qr {
		dot += float64(qr[i]) * float64(qs[i])
	}
	return 4 * dot / (float64(nr) * float64(ns))
}

// skewSplit distributes n over four children under density factor d
// (peak-to-mean): the densest child takes d·n/4 and the rest share the
// remainder — the self-similarity assumption that clustered data stays
// clustered at finer scales.
func skewSplit(n int, d float64) [4]int {
	peak := int(math.Round(d * float64(n) / 4))
	if peak > n {
		peak = n
	}
	rest := n - peak
	return [4]int{peak, rest / 3, rest / 3, rest - 2*(rest/3)}
}

// recPartition estimates adaptive recursive partitioning of one window:
// each level either applies the cheapest physical operator or pays eight
// aggregate queries and recurses into children whose counts repeat the
// measured per-side density factors. The measured colocation decides
// whether the dense children of the two sides land in the same cell
// (co-located clusters: little pruning) or in different cells
// (independent clusters: the dense-R child meets a thin S slice and the
// recursion prunes hard — the effect that makes SrJoin win on skewed
// workloads).
func recPartition(prm costmodel.Params, obs Observations, st costmodel.Stats, dR, dS, gamma float64, depth int) float64 {
	best := math.Min(prm.C1(st), math.Min(prm.C2(st), prm.C3(st)))
	if depth <= 0 || st.NR == 0 || st.NS == 0 {
		return best
	}
	split := 8 * prm.Taq() * avg(prm)
	nrs := skewSplit(st.NR, dR)
	nss := skewSplit(st.NS, dS)
	if gamma < 1 {
		nss[0], nss[1] = nss[1], nss[0] // dense S lands where R thins out
	}
	for j := range nrs {
		if nrs[j] == 0 || nss[j] == 0 {
			continue // pruned for free by the aggregate counts
		}
		split += recPartition(prm, obs, subStats(obs, st.W.Quadrant(j), nrs[j], nss[j]), dR, dS, gamma, depth-1)
		if split >= best {
			break // the split alternative already lost
		}
	}
	return math.Min(best, split)
}

// partitionEstimate scores OpPartition: similarity-driven adaptive
// recursion (SrJoin, Fig. 5) over the measured level-one quadrants, with
// deeper levels extrapolated by recPartition's self-similar skew model.
func partitionEstimate(prm, unit costmodel.Params, obs Observations, qr, qs [4]int, measured bool, dR, dS, gamma float64) (cost, bytes, queries float64) {
	if !measured {
		cost += 8 * prm.Taq() * avg(prm)
		bytes += 8 * unit.Taq()
		queries += 8
	}
	quads := obs.Window.Quadrants()
	for i, q := range quads {
		if qr[i] == 0 || qs[i] == 0 {
			continue
		}
		st := subStats(obs, q, qr[i], qs[i])
		cost += recPartition(prm, obs, st, dR, dS, gamma, 5)
		bytes += recPartition(unit, obs, st, dR, dS, gamma, 5)
		queries += 4
	}
	return cost, bytes, queries
}

// semiJoinEstimate scores OpSemiJoin: relay one R-tree level of the
// larger (source) dataset to the smaller (target), relay the matched
// target objects back, download the pairs. Conservatively assumes every
// target object matches some source MBR.
func semiJoinEstimate(prm, unit costmodel.Params, obs Observations) (cost, bytes float64) {
	srcN, tgtN := obs.NS, obs.NR
	priceSrc, priceTgt := prm.PriceS, prm.PriceR
	if obs.NR > obs.NS {
		srcN, tgtN = obs.NR, obs.NS
		priceSrc, priceTgt = prm.PriceR, prm.PriceS
	}
	mbrs := (srcN + rtree.MaxEntries - 1) / rtree.MaxEntries
	st := baseStats(obs)
	expPairs := st.PerProbeMatches(tgtN, obs.AvgAreaR, obs.AvgAreaS) * float64(srcN)
	if lim := float64(srcN) * float64(tgtN); expPairs > lim {
		expPairs = lim
	}
	est := func(p costmodel.Params, pSrc, pTgt float64) float64 {
		return pSrc*(p.QueryBytes()+p.TB(mbrs*wire.RectSize)) + // level download
			pTgt*(p.TB(mbrs*wire.RectSize)+p.TB(tgtN*p.BObj)) + // MBR match relay
			pSrc*(p.TB(tgtN*p.BObj)+p.TB(int(expPairs)*wire.PairSize)) // upload join
	}
	return est(prm, priceSrc, priceTgt), est(unit, 1, 1)
}

// NLSJRemainder is the mid-join checkpoint of a committed NLSJ: with the
// outer window already downloaded (sunk) and the inner side's quadrant
// counts just measured, it estimates the bytes still to pay on each of
// two futures — finishing the probe phase versus switching to
// per-quadrant inner-window downloads joined against the outer objects
// already on the device. outerByQuad counts the outer objects whose
// probe region touches each quadrant (computed locally, no traffic);
// innerQuad are the measured inner counts. outerR reports whether the
// outer side is R.
func (p Planner) NLSJRemainder(prm costmodel.Params, obs Observations, outerR bool, outerByQuad, innerQuad [4]int) (probeCost, gridCost float64) {
	priceInner := prm.PriceS
	outerAvg, innerAvg := obs.AvgAreaR, obs.AvgAreaS
	if !outerR {
		priceInner = prm.PriceR
		outerAvg, innerAvg = obs.AvgAreaS, obs.AvgAreaR
	}
	quads := obs.Window.Quadrants()
	for i, q := range quads {
		inner, outer := innerQuad[i], outerByQuad[i]
		if outer == 0 {
			continue // no probes land here; the grid future prunes it free
		}
		st := costmodel.Stats{
			W: q, Eps: obs.Eps,
			AvgAreaR: obs.AvgAreaR, AvgAreaS: obs.AvgAreaS,
			CountProbeR: obs.CountProbeR,
		}
		per := st.PerProbeMatches(inner, outerAvg, innerAvg)
		reply := prm.TB(int(math.Ceil(per * float64(prm.BObj))))
		if obs.CountProbeR && outerR {
			reply = prm.TB(prm.BA)
		}
		probeCost += priceInner * float64(outer) * (prm.QueryBytes() + reply)
		if inner == 0 {
			continue // grid future downloads nothing here either
		}
		fetch := priceInner * (prm.QueryBytes() + prm.TB(inner*prm.BObj))
		if obs.Buffer > 0 && inner > obs.Buffer {
			// The quadrant would need further splitting before it fits
			// next to the outer objects: charge one level of counts.
			fetch += 4 * prm.Taq() * priceInner
		}
		gridCost += fetch
	}
	return probeCost, gridCost
}
