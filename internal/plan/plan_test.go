package plan

import (
	"math"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/netsim"
)

var world = geom.Rect{MinX: 0, MinY: 0, MaxX: 10000, MaxY: 10000}

func obsOf(nr, ns, buffer int, eps float64) Observations {
	return Observations{Window: world, NR: nr, NS: ns, Eps: eps, Buffer: buffer}
}

func findCand(t *testing.T, d Decision, op Op) Candidate {
	t.Helper()
	for _, c := range d.Candidates {
		if c.Op == op {
			return c
		}
	}
	t.Fatalf("no %v candidate in %+v", op, d.Candidates)
	return Candidate{}
}

// Tiny datasets that fit the buffer: downloading both windows beats any
// probe loop, so HBSJ must win outright.
func TestChooseTinyFitsPicksHBSJ(t *testing.T) {
	d := Planner{}.Choose(obsOf(20, 20, 500, 0))
	if d.Chosen.Op != OpHBSJ {
		t.Fatalf("chose %v, want hbsj; table %+v", d.Chosen.Op, d.Candidates)
	}
	if !d.Chosen.Feasible {
		t.Fatal("winner marked infeasible")
	}
}

// Over-buffer windows make HBSJ infeasible (+Inf, Eq. 2's memory
// constraint) and the planner must rank it last, never choose it.
func TestChooseOverBufferRejectsHBSJ(t *testing.T) {
	d := Planner{}.Choose(obsOf(400, 400, 100, 0))
	hbsj := findCand(t, d, OpHBSJ)
	if hbsj.Feasible || !math.IsInf(hbsj.Cost, 1) {
		t.Fatalf("hbsj should be infeasible: %+v", hbsj)
	}
	if d.Chosen.Op == OpHBSJ {
		t.Fatal("chose the infeasible hbsj")
	}
	if last := d.Candidates[len(d.Candidates)-1]; last.Op != OpHBSJ {
		t.Fatalf("infeasible candidate not sorted last: %+v", d.Candidates)
	}
}

// Equal-cost candidates are tie-broken by estimated request count: on a
// half-duplex link, fewer round trips is strictly better.
func TestChooseTieBreaksOnQueries(t *testing.T) {
	// Clustered quadrant counts typically drive grid and partition to the
	// same leaf sums; whenever any two candidates tie, the sort must put
	// the one with fewer queries first.
	qr := [4]int{300, 100, 100, 100}
	qs := [4]int{300, 100, 100, 100}
	obs := obsOf(600, 600, 200, 75)
	obs.QuadR, obs.QuadS = &qr, &qs
	d := Planner{}.Choose(obs)
	for i := 1; i < len(d.Candidates); i++ {
		a, b := d.Candidates[i-1], d.Candidates[i]
		if a.Feasible && b.Feasible && a.Cost == b.Cost && a.Queries > b.Queries {
			t.Fatalf("tie not broken by queries: %+v before %+v", a, b)
		}
	}
}

// CommitsWithoutStats: a runaway-cheap HBSJ commits without paying for
// quadrant counts; a partition-family winner never does.
func TestCommitsWithoutStats(t *testing.T) {
	p := Planner{}
	tiny := p.Choose(obsOf(20, 20, 500, 0))
	if tiny.Chosen.Op != OpHBSJ {
		t.Fatalf("setup: tiny workload chose %v", tiny.Chosen.Op)
	}
	if !p.CommitsWithoutStats(tiny) {
		t.Fatal("clear HBSJ win should commit without statistics")
	}
	// The same decision under an absurd margin must refuse to commit.
	if (Planner{CommitMargin: 1000}).CommitsWithoutStats(tiny) {
		t.Fatal("margin 1000 should force a statistics phase")
	}
	// Large over-buffer workload: partition-family wins, never commits
	// without the measured counts it plans to exploit.
	big := p.Choose(obsOf(600, 600, 200, 0))
	if big.Chosen.Op == OpGrid || big.Chosen.Op == OpPartition {
		if p.CommitsWithoutStats(big) {
			t.Fatal("partition-family choice must measure quadrants first")
		}
	}
}

// Hydrate folds measured retry rates into effective per-byte tariffs,
// clamped so a pathological link cannot zero out a candidate.
func TestHydrateRetryInflation(t *testing.T) {
	obs := obsOf(100, 100, 500, 0)
	obs.LinkR = LinkObs{Price: 2, Queries: 100, Retries: 50}
	obs.LinkS = LinkObs{Price: 1, Queries: 100, Retries: 1000}
	prm := Planner{}.Hydrate(obs)
	if want := 2 * 1.5; prm.PriceR != want {
		t.Fatalf("PriceR = %v, want %v (50%% retries on tariff 2)", prm.PriceR, want)
	}
	// Retry rate 10 clamps to 3: effective price 1×(1+3) = 4.
	if want := 4.0; prm.PriceS != want {
		t.Fatalf("PriceS = %v, want %v (clamped retry rate)", prm.PriceS, want)
	}
	// No link config observed: the default link's framing applies.
	def := netsim.DefaultLink()
	if prm.Link.MTU != def.MTU || prm.Link.HeaderBytes != def.HeaderBytes {
		t.Fatalf("link not defaulted: %+v", prm.Link)
	}
}

func TestHydrateUsesObservedLinkConfig(t *testing.T) {
	obs := obsOf(100, 100, 500, 0)
	obs.LinkR.Config = netsim.DialupLink()
	prm := Planner{}.Hydrate(obs)
	if prm.Link != netsim.DialupLink() {
		t.Fatalf("hydrated link %+v, want the observed dialup config", prm.Link)
	}
}

func TestDensityFactor(t *testing.T) {
	q := [4]int{40, 20, 20, 20}
	if got := densityFactor(&q, 100, 0); got != 1.6 {
		t.Fatalf("measured density = %v, want 1.6", got)
	}
	if got := densityFactor(nil, 100, 2.5); got != 2.5 {
		t.Fatalf("skew fallback = %v, want 2.5", got)
	}
	if got := densityFactor(nil, 100, 0); got != 1 {
		t.Fatalf("no information = %v, want 1", got)
	}
	uniform := [4]int{25, 25, 25, 25}
	if got := densityFactor(&uniform, 100, 9); got != 1 {
		t.Fatalf("measured uniform must override the skew prior: %v", got)
	}
}

func TestColocation(t *testing.T) {
	aligned := [4]int{100, 0, 0, 0}
	anti := [4]int{0, 100, 0, 0}
	uniform := [4]int{25, 25, 25, 25}
	if got := colocation(aligned, aligned, 100, 100, true); got != 4 {
		t.Fatalf("co-located clusters = %v, want 4", got)
	}
	if got := colocation(aligned, anti, 100, 100, true); got != 0 {
		t.Fatalf("anti-located clusters = %v, want 0", got)
	}
	if got := colocation(uniform, uniform, 100, 100, true); got != 1 {
		t.Fatalf("uniform = %v, want 1", got)
	}
	if got := colocation(aligned, anti, 100, 100, false); got != 1 {
		t.Fatalf("unmeasured must be neutral: %v", got)
	}
}

func TestSkewSplit(t *testing.T) {
	for _, tc := range []struct {
		n    int
		d    float64
		peak int
	}{{100, 1, 25}, {100, 2, 50}, {100, 4, 100}, {7, 3, 5}} {
		got := skewSplit(tc.n, tc.d)
		sum := 0
		for _, v := range got {
			sum += v
		}
		if sum != tc.n {
			t.Fatalf("skewSplit(%d,%v) = %v loses mass (sum %d)", tc.n, tc.d, got, sum)
		}
		if got[0] != tc.peak {
			t.Fatalf("skewSplit(%d,%v) peak = %d, want %d", tc.n, tc.d, got[0], tc.peak)
		}
	}
}

// NLSJRemainder's two futures must cross over with the probe load: few
// outer objects favour finishing the probes, many outers over a dense
// inner quadrant favour downloading the quadrant once.
func TestNLSJRemainderCrossover(t *testing.T) {
	p := Planner{}
	obs := obsOf(0, 0, 1000, 600)
	prm := p.Hydrate(obs)
	inner := [4]int{200, 0, 0, 0}
	fewOuters := [4]int{3, 0, 0, 0}
	manyOuters := [4]int{50, 0, 0, 0}

	probeFew, gridFew := p.NLSJRemainder(prm, obs, true, fewOuters, inner)
	probeMany, gridMany := p.NLSJRemainder(prm, obs, true, manyOuters, inner)
	if probeFew >= gridFew {
		t.Fatalf("3 probes (%v) should beat a 200-object download (%v)", probeFew, gridFew)
	}
	if probeMany <= gridMany {
		t.Fatalf("50 probes into a dense quadrant (%v) should lose to one download (%v)", probeMany, gridMany)
	}
	if gridFew != gridMany {
		t.Fatalf("grid future must not depend on the outer count: %v vs %v", gridFew, gridMany)
	}
}

// Quadrants no probe touches are free in both futures.
func TestNLSJRemainderPrunesUntouchedQuadrants(t *testing.T) {
	p := Planner{}
	obs := obsOf(0, 0, 1000, 600)
	prm := p.Hydrate(obs)
	probe, grid := p.NLSJRemainder(prm, obs, true, [4]int{0, 0, 0, 0}, [4]int{200, 200, 200, 200})
	if probe != 0 || grid != 0 {
		t.Fatalf("no outers anywhere: want 0/0, got %v/%v", probe, grid)
	}
}

func TestReplanFactorDefaults(t *testing.T) {
	if got := (Planner{}).ReplanFactor(); got != 1.3 {
		t.Fatalf("default replan margin = %v, want 1.3", got)
	}
	if got := (Planner{ReplanMargin: 2}).ReplanFactor(); got != 2 {
		t.Fatalf("explicit replan margin = %v, want 2", got)
	}
}

// TimeWeight adds measured-RTT latency to the score: with an extreme
// weight on a slow link, the fewest-queries candidate must win.
func TestTimeWeightPenalizesChattyCandidates(t *testing.T) {
	obs := obsOf(400, 400, 100, 0)
	obs.LinkR.RTT = 500 * time.Millisecond
	base := Planner{}.Choose(obs)
	weighted := Planner{TimeWeight: 1e6}.Choose(obs)
	minQ := math.Inf(1)
	for _, c := range weighted.Candidates {
		if c.Feasible && c.Queries < minQ {
			minQ = c.Queries
		}
	}
	if weighted.Chosen.Queries != minQ {
		t.Fatalf("extreme TimeWeight chose %v with %v queries, min feasible is %v",
			weighted.Chosen.Op, weighted.Chosen.Queries, minQ)
	}
	if base.Chosen.Cost >= weighted.Chosen.Cost {
		t.Fatalf("latency term should raise scores: %v -> %v", base.Chosen.Cost, weighted.Chosen.Cost)
	}
}

func TestOpString(t *testing.T) {
	want := map[Op]string{
		OpHBSJ: "hbsj", OpNLSJR: "nlsj-outer-R", OpNLSJS: "nlsj-outer-S",
		OpGrid: "grid", OpPartition: "partition", OpSemiJoin: "semijoin",
	}
	for op, s := range want {
		if op.String() != s {
			t.Fatalf("%d.String() = %q, want %q", int(op), op.String(), s)
		}
	}
}
