package memjoin

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func randObjs(n int, seed int64) []geom.Object {
	rng := rand.New(rand.NewSource(seed))
	objs := make([]geom.Object, n)
	for i := range objs {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		objs[i] = geom.Object{ID: uint32(i), MBR: geom.R(x, y, x+rng.Float64()*15, y+rng.Float64()*15)}
	}
	return objs
}

// TestJoinerMatchesNestedLoop checks the CSR-bucketed Joiner against the
// quadratic oracle, reusing one Joiner across many invocations of
// different sizes so stale buckets or stamps would surface.
func TestJoinerMatchesNestedLoop(t *testing.T) {
	j := NewJoiner()
	for i, tc := range []struct {
		nr, ns int
		eps    float64
	}{
		{200, 300, 0}, {300, 200, 25}, {50, 1000, 10}, {1000, 50, 0}, {1, 1, 5}, {400, 400, 60},
	} {
		r := randObjs(tc.nr, int64(100+i))
		s := randObjs(tc.ns, int64(200+i))
		pred := Intersection()
		if tc.eps > 0 {
			pred = WithinDist(tc.eps)
		}
		got := j.GridJoin(r, s, pred, Options{}, nil)
		want := NestedLoop(r, s, pred, Options{}, nil)
		SortPairs(got)
		SortPairs(want)
		if len(got) != len(want) {
			t.Fatalf("case %d: joiner %d pairs, oracle %d", i, len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("case %d: pair %d: %v vs %v", i, k, got[k], want[k])
			}
		}
	}
}

// TestJoinerEmissionOrderStable pins that the pooled package-level
// GridJoin and an owned Joiner emit identical pair sequences (the order
// the historical map-based implementation produced).
func TestJoinerEmissionOrderStable(t *testing.T) {
	r := randObjs(500, 1)
	s := randObjs(600, 2)
	pred := WithinDist(20)
	a := GridJoin(r, s, pred, Options{}, nil)
	b := NewJoiner().GridJoin(r, s, pred, Options{}, nil)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("emission order diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestJoinerSteadyStateAllocs verifies that repeated joins through the
// pooled GridJoin stop allocating once buffers reach their high-water
// mark (the destination slice is caller-reused here, as HBSJ does).
func TestJoinerSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc counts are meaningless")
	}
	r := randObjs(800, 3)
	s := randObjs(800, 4)
	pred := WithinDist(15)
	dst := make([]geom.Pair, 0, 4096)
	for i := 0; i < 4; i++ { // warm the pool
		dst = GridJoin(r, s, pred, Options{}, dst[:0])
	}
	avg := testing.AllocsPerRun(100, func() {
		dst = GridJoin(r, s, pred, Options{}, dst[:0])
	})
	if avg > 0.05 {
		t.Fatalf("pooled GridJoin allocates %v times per join at steady state", avg)
	}
}
