package memjoin

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func randPoints(rnd *rand.Rand, n int, idBase uint32) []geom.Object {
	objs := make([]geom.Object, n)
	for i := range objs {
		objs[i] = geom.PointObject(idBase+uint32(i), geom.Pt(rnd.Float64()*100, rnd.Float64()*100))
	}
	return objs
}

func randRects(rnd *rand.Rand, n int, idBase uint32) []geom.Object {
	objs := make([]geom.Object, n)
	for i := range objs {
		x, y := rnd.Float64()*100, rnd.Float64()*100
		objs[i] = geom.Object{ID: idBase + uint32(i), MBR: geom.R(x, y, x+rnd.Float64()*5, y+rnd.Float64()*5)}
	}
	return objs
}

func pairsEqual(a, b []geom.Pair) bool {
	a = DedupPairs(append([]geom.Pair(nil), a...))
	b = DedupPairs(append([]geom.Pair(nil), b...))
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPredMatch(t *testing.T) {
	a, b := geom.R(0, 0, 1, 1), geom.R(2, 0, 3, 1)
	if Intersection().Match(a, b) {
		t.Error("disjoint rects should not intersect")
	}
	if !WithinDist(1).Match(a, b) {
		t.Error("rects at distance 1 should match eps=1")
	}
	if WithinDist(0.5).Match(a, b) {
		t.Error("rects at distance 1 should not match eps=0.5")
	}
	if !Intersection().Match(a, geom.R(1, 1, 2, 2)) {
		t.Error("touching rects intersect")
	}
}

func TestAllAlgorithmsAgreeIntersection(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	r := randRects(rnd, 300, 0)
	s := randRects(rnd, 250, 10000)
	opt := Options{Window: geom.R(0, 0, 110, 110), Dedup: false}
	pred := Intersection()
	nl := NestedLoop(r, s, pred, opt, nil)
	gj := GridJoin(r, s, pred, opt, nil)
	ps := PlaneSweep(r, s, pred, opt, nil)
	if !pairsEqual(nl, gj) {
		t.Fatalf("grid join disagrees with nested loop: %d vs %d", len(gj), len(nl))
	}
	if !pairsEqual(nl, ps) {
		t.Fatalf("plane sweep disagrees with nested loop: %d vs %d", len(ps), len(nl))
	}
	if len(nl) == 0 {
		t.Fatal("workload produced no pairs; test is vacuous")
	}
}

func TestAllAlgorithmsAgreeDistance(t *testing.T) {
	rnd := rand.New(rand.NewSource(2))
	r := randPoints(rnd, 400, 0)
	s := randPoints(rnd, 350, 10000)
	for _, eps := range []float64{0.5, 2, 10} {
		pred := WithinDist(eps)
		opt := Options{Window: geom.R(0, 0, 110, 110), Dedup: false}
		nl := NestedLoop(r, s, pred, opt, nil)
		gj := GridJoin(r, s, pred, opt, nil)
		ps := PlaneSweep(r, s, pred, opt, nil)
		if !pairsEqual(nl, gj) {
			t.Fatalf("eps=%v: grid join %d vs nested loop %d", eps, len(gj), len(nl))
		}
		if !pairsEqual(nl, ps) {
			t.Fatalf("eps=%v: plane sweep %d vs nested loop %d", eps, len(ps), len(nl))
		}
		if len(nl) == 0 {
			t.Fatalf("eps=%v produced no pairs; test is vacuous", eps)
		}
	}
}

func TestEmptyInputs(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	r := randPoints(rnd, 10, 0)
	opt := Options{Window: geom.R(0, 0, 100, 100)}
	if got := GridJoin(nil, r, Intersection(), opt, nil); len(got) != 0 {
		t.Fatal("empty R should give empty result")
	}
	if got := GridJoin(r, nil, Intersection(), opt, nil); len(got) != 0 {
		t.Fatal("empty S should give empty result")
	}
	if got := PlaneSweep(nil, nil, Intersection(), opt, nil); len(got) != 0 {
		t.Fatal("empty join should be empty")
	}
}

func TestDedupAcrossPartitionsExactlyOnce(t *testing.T) {
	// Objects near the boundary of two partitions; running the join per
	// partition with Dedup must produce each qualifying pair exactly once.
	rnd := rand.New(rand.NewSource(4))
	r := randPoints(rnd, 200, 0)
	s := randPoints(rnd, 200, 10000)
	eps := 5.0
	pred := WithinDist(eps)

	// Oracle without partitioning.
	oracle := NestedLoop(r, s, pred, Options{}, nil)
	oracle = DedupPairs(oracle)

	// The root region is expanded by eps/2 before partitioning, exactly
	// as the distributed engine treats its root window: reference points
	// of edge pairs can fall up to eps/2 outside the data space.
	world := geom.R(0, 0, 100, 100).Expand(eps / 2)
	var got []geom.Pair
	for _, cell := range world.Grid(4) {
		// Each partition sees objects within eps/2-expanded cell, as the
		// paper prescribes for distance joins (§3).
		ext := cell.Expand(eps)
		var rp, sp []geom.Object
		for _, o := range r {
			if o.MBR.Intersects(ext) {
				rp = append(rp, o)
			}
		}
		for _, o := range s {
			if o.MBR.Intersects(ext) {
				sp = append(sp, o)
			}
		}
		got = GridJoin(rp, sp, pred, Options{Window: cell, Dedup: true}, got)
	}
	// No duplicates even before dedup.
	before := len(got)
	got = DedupPairs(got)
	if len(got) != before {
		t.Fatalf("partitioned join emitted %d duplicates", before-len(got))
	}
	if !pairsEqual(oracle, got) {
		t.Fatalf("partitioned join found %d pairs, oracle %d", len(got), len(oracle))
	}
	if len(oracle) == 0 {
		t.Fatal("vacuous test: no pairs")
	}
}

func TestGridJoinDegenerateExtent(t *testing.T) {
	// All build objects at the same point: grid cells collapse; the
	// implementation must fall back to nested loop.
	r := []geom.Object{geom.PointObject(1, geom.Pt(5, 5)), geom.PointObject(2, geom.Pt(5, 5))}
	s := []geom.Object{geom.PointObject(10, geom.Pt(5, 5))}
	got := GridJoin(r, s, Intersection(), Options{}, nil)
	if len(got) != 2 {
		t.Fatalf("got %d pairs, want 2", len(got))
	}
}

func TestGridJoinSwapsToSmallerBuildSide(t *testing.T) {
	// Correctness must hold regardless of which side is larger.
	rnd := rand.New(rand.NewSource(5))
	small := randPoints(rnd, 20, 0)
	large := randPoints(rnd, 400, 10000)
	pred := WithinDist(3)
	a := GridJoin(small, large, pred, Options{}, nil)
	b := NestedLoop(small, large, pred, Options{}, nil)
	if !pairsEqual(a, b) {
		t.Fatalf("small-R: %d vs %d", len(a), len(b))
	}
	c := GridJoin(large, small, pred, Options{}, nil)
	d := NestedLoop(large, small, pred, Options{}, nil)
	if !pairsEqual(c, d) {
		t.Fatalf("large-R: %d vs %d", len(c), len(d))
	}
}

func TestDedupPairs(t *testing.T) {
	ps := []geom.Pair{{RID: 2, SID: 1}, {RID: 1, SID: 1}, {RID: 2, SID: 1}, {RID: 1, SID: 2}}
	out := DedupPairs(ps)
	want := []geom.Pair{{RID: 1, SID: 1}, {RID: 1, SID: 2}, {RID: 2, SID: 1}}
	if len(out) != len(want) {
		t.Fatalf("got %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("got %v, want %v", out, want)
		}
	}
	if got := DedupPairs(nil); len(got) != 0 {
		t.Fatal("nil input should stay empty")
	}
	single := []geom.Pair{{RID: 5, SID: 6}}
	if got := DedupPairs(single); len(got) != 1 || got[0] != single[0] {
		t.Fatal("single pair should be unchanged")
	}
}

func BenchmarkGridJoin1000x1000(b *testing.B) {
	rnd := rand.New(rand.NewSource(6))
	r := randPoints(rnd, 1000, 0)
	s := randPoints(rnd, 1000, 100000)
	pred := WithinDist(2)
	opt := Options{Window: geom.R(0, 0, 110, 110)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GridJoin(r, s, pred, opt, nil)
	}
}

func BenchmarkPlaneSweep1000x1000(b *testing.B) {
	rnd := rand.New(rand.NewSource(7))
	r := randPoints(rnd, 1000, 0)
	s := randPoints(rnd, 1000, 100000)
	pred := WithinDist(2)
	opt := Options{Window: geom.R(0, 0, 110, 110)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PlaneSweep(r, s, pred, opt, nil)
	}
}
