// Package memjoin provides the main-memory spatial join algorithms the
// mobile device runs over downloaded partitions: a spatial-hash (grid)
// join in the spirit of PBSM's in-memory phase, a plane-sweep join, and a
// nested-loop join. All three produce identical result sets; the grid
// join is the default used by HBSJ, the others serve as oracles and as
// fallbacks for degenerate extents.
//
// Join predicates are expressed as a Pred: MBR intersection (the filter
// step of an intersection join) or within-ε distance (distance joins).
// Duplicate avoidance across partitions uses the reference-point rule
// from package geom: a pair is reported only if its reference point lies
// in the partition window being processed.
package memjoin

import (
	"cmp"
	"math"
	"slices"
	"sync"

	"repro/internal/geom"
)

// Pred is a join predicate over two object MBRs.
type Pred struct {
	// Eps is the distance threshold; 0 means plain MBR intersection.
	Eps float64
}

// Intersection is the MBR-intersection predicate.
func Intersection() Pred { return Pred{} }

// WithinDist is the distance predicate: MinDist(a, b) <= eps.
func WithinDist(eps float64) Pred { return Pred{Eps: eps} }

// Match reports whether the predicate holds for MBRs a and b.
func (p Pred) Match(a, b geom.Rect) bool {
	if p.Eps <= 0 {
		return a.Intersects(b)
	}
	return a.WithinDist(b, p.Eps)
}

// refMatch applies duplicate avoidance: the pair qualifies only if the
// reference point of the symmetrically ε/2-expanded MBR pair
// (geom.RefPointEps) falls inside w.
func (p Pred) refMatch(a, b geom.Rect, w geom.Rect, dedup bool) bool {
	if !p.Match(a, b) {
		return false
	}
	if !dedup {
		return true
	}
	rp, ok := geom.RefPointEps(a, b, p.Eps)
	return ok && w.ContainsPoint(rp)
}

// Options controls a main-memory join invocation.
type Options struct {
	// Window is the partition being joined; used for duplicate avoidance.
	Window geom.Rect
	// Dedup enables the reference-point rule. Callers joining exactly one
	// partition can disable it to keep pairs whose reference point falls
	// outside (e.g. ε-neighbors of objects near the window edge).
	Dedup bool
}

// Joiner is the reusable state of the spatial-hash join: the grid-cell
// buckets (in compressed sparse row form), the per-candidate stamp array,
// and nothing else. A Joiner amortizes all of its allocations across
// invocations, so a session running HBSJ over many partitions joins each
// one without touching the allocator. A Joiner is not safe for concurrent
// use; concurrent callers take one each from the pool (see GridJoin) or
// own one per worker.
type Joiner struct {
	cellStart []int32 // CSR offsets: cell c's build indices at items[cellStart[c]:cellStart[c+1]]
	cellCur   []int32 // fill cursors (pass 2 scratch)
	items     []int32 // build indices grouped by covered cell
	stamp     []int32 // per-build-object stamp for per-probe candidate dedup
}

// NewJoiner returns an empty Joiner; its buffers grow to the workload's
// high-water mark on first use and are reused afterwards.
func NewJoiner() *Joiner { return &Joiner{} }

// joinerPool backs the package-level GridJoin so that every caller —
// including concurrent HBSJ workers — gets buffer reuse without owning a
// Joiner explicitly.
var joinerPool = sync.Pool{New: func() any { return NewJoiner() }}

// GridJoin performs a spatial-hash join of r and s under pred, appending
// qualifying pairs to dst. The grid resolution adapts to the input size.
// This is the in-memory half of HBSJ. The call is backed by a pooled
// Joiner, so its grid and stamp buffers are reused across invocations.
func GridJoin(r, s []geom.Object, pred Pred, opt Options, dst []geom.Pair) []geom.Pair {
	j := joinerPool.Get().(*Joiner)
	dst = j.GridJoin(r, s, pred, opt, dst)
	joinerPool.Put(j)
	return dst
}

// grow32 resizes s to length n, reallocating only when capacity is short.
func grow32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// GridJoin is the Joiner-owned form of the package-level GridJoin; it
// emits exactly the same pairs in the same order.
func (j *Joiner) GridJoin(r, s []geom.Object, pred Pred, opt Options, dst []geom.Pair) []geom.Pair {
	if len(r) == 0 || len(s) == 0 {
		return dst
	}
	// Hash the smaller side; probe with the larger.
	swapped := false
	build, probe := r, s
	if len(s) < len(r) {
		build, probe = s, r
		swapped = true
	}

	// Grid over the union extent, expanded by eps so probes stay in range.
	extent := build[0].MBR
	for _, o := range build[1:] {
		extent = extent.Union(o.MBR)
	}
	if pred.Eps > 0 {
		extent = extent.Expand(pred.Eps)
	}
	k := int(math.Sqrt(float64(len(build)))) + 1
	if k > 64 {
		k = 64
	}
	cw := extent.Width() / float64(k)
	ch := extent.Height() / float64(k)
	if cw <= 0 || ch <= 0 {
		// Degenerate extent: everything in one cell — nested loop.
		return NestedLoop(r, s, pred, opt, dst)
	}

	cellOf := func(x, y float64) (int, int) {
		cx := int((x - extent.MinX) / cw)
		cy := int((y - extent.MinY) / ch)
		if cx < 0 {
			cx = 0
		}
		if cx >= k {
			cx = k - 1
		}
		if cy < 0 {
			cy = 0
		}
		if cy >= k {
			cy = k - 1
		}
		return cx, cy
	}

	// Bucket the build side in CSR form: count per cell, prefix-sum into
	// offsets, then fill — two passes, zero per-cell allocations, and each
	// cell's candidate list keeps build order (the same order the old
	// map-of-slices produced, so pair emission order is unchanged).
	cells := k * k
	j.cellStart = grow32(j.cellStart, cells+1)
	for i := range j.cellStart {
		j.cellStart[i] = 0
	}
	total := 0
	for _, o := range build {
		x0, y0 := cellOf(o.MBR.MinX, o.MBR.MinY)
		x1, y1 := cellOf(o.MBR.MaxX, o.MBR.MaxY)
		for cy := y0; cy <= y1; cy++ {
			for cx := x0; cx <= x1; cx++ {
				j.cellStart[cy*k+cx+1]++
				total++
			}
		}
	}
	for c := 0; c < cells; c++ {
		j.cellStart[c+1] += j.cellStart[c]
	}
	j.cellCur = grow32(j.cellCur, cells)
	copy(j.cellCur, j.cellStart[:cells])
	j.items = grow32(j.items, total)
	for i, o := range build {
		x0, y0 := cellOf(o.MBR.MinX, o.MBR.MinY)
		x1, y1 := cellOf(o.MBR.MaxX, o.MBR.MaxY)
		for cy := y0; cy <= y1; cy++ {
			for cx := x0; cx <= x1; cx++ {
				c := cy*k + cx
				j.items[j.cellCur[c]] = int32(i)
				j.cellCur[c]++
			}
		}
	}

	// To avoid emitting a pair once per shared cell, dedup candidates per
	// probe with a stamp array.
	j.stamp = grow32(j.stamp, len(build))
	for i := range j.stamp {
		j.stamp[i] = -1
	}
	for pi, po := range probe {
		q := po.MBR
		if pred.Eps > 0 {
			q = q.Expand(pred.Eps)
		}
		x0, y0 := cellOf(q.MinX, q.MinY)
		x1, y1 := cellOf(q.MaxX, q.MaxY)
		for cy := y0; cy <= y1; cy++ {
			for cx := x0; cx <= x1; cx++ {
				c := cy*k + cx
				for _, bi := range j.items[j.cellStart[c]:j.cellStart[c+1]] {
					if j.stamp[bi] == int32(pi) {
						continue
					}
					j.stamp[bi] = int32(pi)
					var a, b geom.Object
					if swapped {
						a, b = po, build[bi]
					} else {
						a, b = build[bi], po
					}
					if pred.refMatch(a.MBR, b.MBR, opt.Window, opt.Dedup) {
						dst = append(dst, geom.Pair{RID: a.ID, SID: b.ID})
					}
				}
			}
		}
	}
	return dst
}

// PlaneSweep joins r and s by sorting on MinX (expanded by eps on the R
// side) and sweeping. It is the classical forward-sweep filter join.
func PlaneSweep(r, s []geom.Object, pred Pred, opt Options, dst []geom.Pair) []geom.Pair {
	if len(r) == 0 || len(s) == 0 {
		return dst
	}
	rs := make([]geom.Object, len(r))
	copy(rs, r)
	ss := make([]geom.Object, len(s))
	copy(ss, s)
	eps := pred.Eps
	byMinX := func(a, b geom.Object) int { return cmp.Compare(a.MBR.MinX, b.MBR.MinX) }
	slices.SortFunc(rs, byMinX)
	slices.SortFunc(ss, byMinX)

	i, j := 0, 0
	for i < len(rs) && j < len(ss) {
		if rs[i].MBR.MinX-eps <= ss[j].MBR.MinX {
			// rs[i] opens first: scan ss from j while within x reach.
			lim := rs[i].MBR.MaxX + eps
			for jj := j; jj < len(ss) && ss[jj].MBR.MinX <= lim; jj++ {
				if pred.refMatch(rs[i].MBR, ss[jj].MBR, opt.Window, opt.Dedup) {
					dst = append(dst, geom.Pair{RID: rs[i].ID, SID: ss[jj].ID})
				}
			}
			i++
		} else {
			lim := ss[j].MBR.MaxX + eps
			for ii := i; ii < len(rs) && rs[ii].MBR.MinX-eps <= lim+eps; ii++ {
				if rs[ii].MBR.MinX-eps > ss[j].MBR.MaxX+eps {
					break
				}
				if pred.refMatch(rs[ii].MBR, ss[j].MBR, opt.Window, opt.Dedup) {
					dst = append(dst, geom.Pair{RID: rs[ii].ID, SID: ss[j].ID})
				}
			}
			j++
		}
	}
	return dst
}

// NestedLoop is the quadratic oracle join.
func NestedLoop(r, s []geom.Object, pred Pred, opt Options, dst []geom.Pair) []geom.Pair {
	for _, a := range r {
		for _, b := range s {
			if pred.refMatch(a.MBR, b.MBR, opt.Window, opt.Dedup) {
				dst = append(dst, geom.Pair{RID: a.ID, SID: b.ID})
			}
		}
	}
	return dst
}

// SortPairs orders pairs by (RID, SID); used to compare result sets.
// slices.SortFunc avoids the reflection-based swapper of sort.Slice on
// this extremely hot comparator (every partition's pairs pass through
// DedupPairs).
func SortPairs(ps []geom.Pair) {
	slices.SortFunc(ps, func(a, b geom.Pair) int {
		if c := cmp.Compare(a.RID, b.RID); c != 0 {
			return c
		}
		return cmp.Compare(a.SID, b.SID)
	})
}

// DedupPairs sorts and removes duplicate pairs in place, returning the
// compacted slice.
func DedupPairs(ps []geom.Pair) []geom.Pair {
	if len(ps) < 2 {
		return ps
	}
	SortPairs(ps)
	out := ps[:1]
	for _, p := range ps[1:] {
		if p != out[len(out)-1] {
			out = append(out, p)
		}
	}
	return out
}
