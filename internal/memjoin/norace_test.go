//go:build !race

package memjoin

const raceEnabled = false
